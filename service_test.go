// Tests for the concurrent query service layer: the shared compiled-
// query cache (hit/miss/invalidation semantics and result transparency),
// prepared statements, and -race stress over one shared Database.
package perm_test

import (
	"fmt"
	"sync"
	"testing"

	"perm"
)

// cachePair builds two databases over the same script, one with the
// compiled-query cache enabled (the default) and one without.
func cachePair(t testing.TB, script string) (on, off *perm.Database) {
	t.Helper()
	on = perm.NewDatabase()
	off = perm.NewDatabaseWithOptions(perm.Options{DisableQueryCache: true})
	on.MustExec(script)
	off.MustExec(script)
	return on, off
}

// serviceProvCorpus adds provenance-computing shapes on top of the
// plain-SQL logic corpus for the cache transparency check.
var serviceProvCorpus = []string{
	`SELECT PROVENANCE n FROM nums WHERE n > 1`,
	`SELECT PROVENANCE a, b FROM pairs ORDER BY a, b`,
	`SELECT PROVENANCE r.a, s.c FROM r, s WHERE r.a = s.a`,
	`SELECT PROVENANCE a, count(*) FROM pairs GROUP BY a`,
	`SELECT PROVENANCE b FROM ryview`,
	`SELECT PROVENANCE n FROM nums WHERE n IN (SELECT a FROM pairs)`,
	`SELECT PROVENANCE a FROM pairs UNION SELECT n FROM nums WHERE n <= 2`,
	`SELECT PROVENANCE x FROM empty_t`,
}

// TestQueryCacheTransparency: every corpus query must produce byte-
// identical results with the cache enabled and disabled — both on the
// cold run (miss + store) and the warm run (served from cache).
func TestQueryCacheTransparency(t *testing.T) {
	on, off := cachePair(t, vecFixture)
	corpus := append(append([]string{}, logicCorpus...), serviceProvCorpus...)
	for _, q := range corpus {
		want, err := off.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for pass := 0; pass < 2; pass++ { // pass 0 misses, pass 1 hits
			got, err := on.Query(q)
			if err != nil {
				t.Fatalf("%s (pass %d): %v", q, pass, err)
			}
			if got.String() != want.String() {
				t.Errorf("%s (pass %d):\ncache on:\n%s\ncache off:\n%s", q, pass, got, want)
			}
		}
	}
	st := on.QueryCacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("transparency run exercised no cache traffic: %+v", st)
	}
	if off.QueryCacheStats().Hits != 0 {
		t.Fatalf("disabled cache served hits: %+v", off.QueryCacheStats())
	}
}

// TestQueryCacheInvalidation: DML and DDL must invalidate cached
// artifacts — a repeated query sees fresh data, and dropping/recreating
// a table never serves a plan compiled for the old schema.
func TestQueryCacheInvalidation(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec(`CREATE TABLE tt (x int); INSERT INTO tt VALUES (1), (2)`)

	const q = `SELECT count(*) FROM tt`
	res := db.MustQuery(q)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("count = %s", res.Rows[0][0])
	}
	// Warm the cache, then mutate.
	db.MustQuery(q)
	hitsBefore := db.QueryCacheStats().Hits
	if hitsBefore == 0 {
		t.Fatal("second query did not hit the cache")
	}
	db.MustExec(`INSERT INTO tt VALUES (3)`)
	if got := db.MustQuery(q).Rows[0][0].Int(); got != 3 {
		t.Fatalf("stale result after DML: count = %d", got)
	}
	if st := db.QueryCacheStats(); st.Invalidations == 0 {
		t.Fatalf("DML did not invalidate: %+v", st)
	}

	// Schema change under the same name: the cached tree for the old
	// schema must not survive.
	db.MustExec(`DROP TABLE tt; CREATE TABLE tt (x int, y text); INSERT INTO tt VALUES (7, 'seven')`)
	res = db.MustQuery(`SELECT count(*) FROM tt`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("count after recreate = %s", res.Rows[0][0])
	}
	res = db.MustQuery(`SELECT y FROM tt`)
	if res.Rows[0][0].String() != "seven" {
		t.Fatalf("new column not visible: %s", res.Rows[0][0])
	}
}

// TestPreparedStatement: the embedded Prepare/Run API recompiles across
// DDL and serves fresh data across DML.
func TestPreparedStatement(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec(`CREATE TABLE tt (x int); INSERT INTO tt VALUES (1), (2)`)
	p, err := db.Prepare(`SELECT PROVENANCE x FROM tt ORDER BY x`)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := p.Columns()
	if err != nil || len(cols) != 2 || cols[1] != "prov_tt_x" {
		t.Fatalf("Columns = %v, %v", cols, err)
	}
	res, err := p.Run()
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("run 1: %v %v", res, err)
	}
	db.MustExec(`INSERT INTO tt VALUES (3)`)
	res, err = p.Run()
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("run after DML: %v %v", res, err)
	}
	db.MustExec(`CREATE TABLE unrelated (z int)`)
	res, err = p.Run()
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("run after DDL: %v %v", res, err)
	}
	if _, err := db.Prepare(`CREATE TABLE nope (x int)`); err == nil {
		t.Fatal("preparing DDL must fail")
	}
}

// TestIntrospectionRacesDDL: Tables, Views and TableRowCount must be
// safe against concurrent DDL (they read through the catalog lock).
func TestIntrospectionRacesDDL(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec(`CREATE TABLE base (x int); INSERT INTO base VALUES (1)`)
	db.MustExec(`CREATE VIEW basev AS SELECT x FROM base`)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 60; i++ {
			name := fmt.Sprintf("ddl_%d", i)
			db.MustExec(fmt.Sprintf(`CREATE TABLE %s (a int)`, name))
			db.MustExec(fmt.Sprintf(`CREATE VIEW %s_v AS SELECT a FROM %s`, name, name))
			db.MustExec(fmt.Sprintf(`DROP VIEW %s_v`, name))
			db.MustExec(fmt.Sprintf(`DROP TABLE %s`, name))
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, name := range db.Tables() {
					// Tables may vanish between listing and counting; an
					// error is fine, a race or wrong count is not.
					if n, err := db.TableRowCount(name); err == nil && name == "base" && n != 1 {
						t.Errorf("base count = %d", n)
						return
					}
				}
				db.Views()
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentMixedWorkload is the service-layer stress gate: many
// goroutines mixing cached reads, provenance queries, DML, DDL and
// prepared statements against one shared Database. Run under -race.
func TestConcurrentMixedWorkload(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec(`CREATE TABLE shop (name text, numempl int)`)
	db.MustExec(`INSERT INTO shop VALUES ('Merdies', 3), ('Edeka', 7), ('Spar', 1)`)
	db.MustExec(`CREATE TABLE sales (sname text, itemid int)`)
	db.MustExec(`INSERT INTO sales VALUES ('Merdies', 1), ('Edeka', 2), ('Merdies', 3)`)

	iters := 40
	if testing.Short() {
		iters = 12
	}
	const workers = 6
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scratch := fmt.Sprintf("scratch_%d", g)
			if _, err := db.Exec(fmt.Sprintf(`CREATE TABLE %s (x int)`, scratch)); err != nil {
				t.Error(err)
				return
			}
			p, err := db.Prepare(`SELECT PROVENANCE name FROM shop WHERE numempl > 0`)
			if err != nil {
				t.Error(err)
				return
			}
			inserted := 0
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0: // cached read on the shared table
					res, err := db.Query(`SELECT count(*) FROM shop`)
					if err != nil {
						t.Error(err)
						return
					}
					if res.Rows[0][0].Int() != 3 {
						t.Errorf("shop count = %d", res.Rows[0][0].Int())
						return
					}
				case 1: // provenance join
					if _, err := db.Query(`SELECT PROVENANCE s.name FROM shop s, sales sa WHERE s.name = sa.sname`); err != nil {
						t.Error(err)
						return
					}
				case 2: // DML on the private table
					if _, err := db.Exec(fmt.Sprintf(`INSERT INTO %s VALUES (%d)`, scratch, i)); err != nil {
						t.Error(err)
						return
					}
					inserted++
				case 3: // prepared execute (recompiles across version bumps)
					res, err := p.Run()
					if err != nil {
						t.Error(err)
						return
					}
					if len(res.Rows) != 3 {
						t.Errorf("prepared rows = %d", len(res.Rows))
						return
					}
				case 4: // DDL churn
					tmp := fmt.Sprintf("tmp_%d_%d", g, i)
					if _, err := db.Exec(fmt.Sprintf(`CREATE TABLE %s (a int)`, tmp)); err != nil {
						t.Error(err)
						return
					}
					if _, err := db.Exec(fmt.Sprintf(`DROP TABLE %s`, tmp)); err != nil {
						t.Error(err)
						return
					}
				}
			}
			res, err := db.Query(fmt.Sprintf(`SELECT count(*) FROM %s`, scratch))
			if err != nil {
				t.Error(err)
				return
			}
			if got := int(res.Rows[0][0].Int()); got != inserted {
				t.Errorf("goroutine %d: scratch rows = %d, want %d", g, got, inserted)
			}
		}(g)
	}
	wg.Wait()
}
