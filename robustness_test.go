package perm_test

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"perm"
	"perm/internal/fault"
	"perm/internal/obs"
	"perm/internal/session"
	"perm/internal/spill"
)

// leakCheck snapshots the goroutine count and fails the test if more
// goroutines are still alive at cleanup time (after a settling grace
// period for exiting workers) than at the start.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d at start, %d at cleanup\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// leakedSpillFDs scans the process's open file descriptors for spill
// temp files (they are unlinked at creation, so a leak is visible only
// as a still-open descriptor). Returns nil on platforms without
// /proc/self/fd.
func leakedSpillFDs() []string {
	if runtime.GOOS != "linux" {
		return nil
	}
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return nil
	}
	var leaks []string
	for _, e := range ents {
		if dst, err := os.Readlink("/proc/self/fd/" + e.Name()); err == nil &&
			strings.Contains(dst, spill.FilePrefix) {
			leaks = append(leaks, dst)
		}
	}
	return leaks
}

func mustInjector(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	inj, err := fault.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestStatementTimeout: a statement exceeding its timeout returns a
// structured timeout error (code, query ID) within twice the timeout —
// in serial, parallel and spilling configurations — and the engine
// stays fully usable.
func TestStatementTimeout(t *testing.T) {
	leakCheck(t)
	// A 65k x 65k cross join: never completes before the timeout.
	const longQuery = `SELECT count(*) FROM big a, big b WHERE a.b + b.b > 1`
	const timeout = time.Second
	cases := []struct {
		name  string
		opts  perm.Options
		query string
	}{
		{"serial", perm.Options{Parallelism: -1}, longQuery},
		{"parallel", perm.Options{Parallelism: 4}, longQuery},
		{"spilling", perm.Options{Parallelism: -1, MemoryLimit: 64 << 10},
			`SELECT a.a, b.a FROM big a, big b ORDER BY a.a - b.a`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.StatementTimeout = timeout
			opts.SpillDir = t.TempDir()
			db := perm.NewDatabaseWithOptions(opts)
			bigTable(db)

			start := time.Now()
			_, err := db.Query(tc.query)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("query exceeding statement_timeout returned no error")
			}
			var qe *obs.QueryError
			if !errors.As(err, &qe) {
				t.Fatalf("timeout error is unstructured: %v", err)
			}
			if qe.Code != obs.CodeTimeout {
				t.Fatalf("timeout error code = %q, want %q (err: %v)", qe.Code, obs.CodeTimeout, err)
			}
			if !strings.HasPrefix(qe.QueryID, "q") {
				t.Fatalf("timeout error query ID = %q, want an engine query ID", qe.QueryID)
			}
			if !strings.Contains(err.Error(), "statement timeout") {
				t.Fatalf("timeout error message = %v, want a statement-timeout message", err)
			}
			if elapsed > 2*timeout {
				t.Fatalf("timeout surfaced after %v, want within %v", elapsed, 2*timeout)
			}
			// No reservations or registry entries linger, and the handle
			// still answers.
			if inUse := db.QueryStats().MemoryInUse; inUse != 0 {
				t.Fatalf("reserved memory after timeout = %d, want 0", inUse)
			}
			res := db.MustQuery(`SELECT count(*) FROM perm_stat_activity`)
			if got := res.Rows[0][0].String(); got != "1" {
				t.Fatalf("activity rows after timeout = %s, want 1 (the observer)", got)
			}
			res = db.MustQuery(`SELECT count(*) FROM big`)
			if got := res.Rows[0][0].String(); got != "65536" {
				t.Fatalf("post-timeout query = %s, want 65536", got)
			}
		})
	}
}

// TestStatementTimeoutEnv: Options.StatementTimeout = 0 defers to
// PERM_STATEMENT_TIMEOUT; a malformed value is ignored (no timeout)
// rather than fatal.
func TestStatementTimeoutEnv(t *testing.T) {
	t.Setenv("PERM_STATEMENT_TIMEOUT", "500ms")
	db := perm.NewDatabaseWithOptions(perm.Options{Parallelism: -1, SpillDir: t.TempDir()})
	bigTable(db)
	_, err := db.Query(`SELECT count(*) FROM big a, big b WHERE a.b + b.b > 1`)
	var qe *obs.QueryError
	if !errors.As(err, &qe) || qe.Code != obs.CodeTimeout {
		t.Fatalf("env-configured timeout: err = %v, want a structured timeout error", err)
	}

	// Negative option wins over the environment; quick queries finish.
	db2 := perm.NewDatabaseWithOptions(perm.Options{StatementTimeout: -1})
	db2.MustExec(`CREATE TABLE t (x int); INSERT INTO t VALUES (1)`)
	time.Sleep(600 * time.Millisecond) // longer than the env timeout
	if _, err := db2.Query(`SELECT x FROM t`); err != nil {
		t.Fatalf("explicitly disabled timeout still fired: %v", err)
	}

	t.Setenv("PERM_STATEMENT_TIMEOUT", "not-a-duration")
	db3 := perm.NewDatabase()
	db3.MustExec(`CREATE TABLE u (x int)`)
	if _, err := db3.Query(`SELECT x FROM u`); err != nil {
		t.Fatalf("malformed PERM_STATEMENT_TIMEOUT broke queries: %v", err)
	}
}

// TestSetStatementTimeout drives the session dialect: plain integers are
// milliseconds (PostgreSQL convention), durations parse, "off" disarms,
// and 0 restores the server-configured base.
func TestSetStatementTimeout(t *testing.T) {
	db := perm.NewDatabaseWithOptions(perm.Options{StatementTimeout: 7 * time.Second})
	db.MustExec(`CREATE TABLE t (x int); INSERT INTO t VALUES (1)`)
	sess := session.New(db)
	defer sess.Close()

	steps := []struct {
		value string
		want  time.Duration
	}{
		{"250", 250 * time.Millisecond},
		{"1.5s", 1500 * time.Millisecond},
		{"off", -1},
		{"0", 7 * time.Second},
	}
	for _, st := range steps {
		if _, err := sess.Run("SET statement_timeout = " + st.value); err != nil {
			t.Fatalf("SET statement_timeout = %s: %v", st.value, err)
		}
		if got := sess.DB().Opts().StatementTimeout; got != st.want {
			t.Fatalf("after SET statement_timeout = %s: timeout = %v, want %v", st.value, got, st.want)
		}
		if _, err := sess.Query(`SELECT x FROM t`); err != nil {
			t.Fatalf("query under statement_timeout = %s: %v", st.value, err)
		}
	}
	for _, bad := range []string{"abc", "-5", "-2s"} {
		if _, err := sess.Run("SET statement_timeout = " + bad); err == nil {
			t.Fatalf("SET statement_timeout = %s did not fail", bad)
		}
	}
}

// TestChaosSpillIO: injected spill I/O failures (disk full mid-run,
// read errors on the merge path) surface as clean query errors; every
// reservation and spill file descriptor is released, and once the
// injected fault clears, the retried query returns byte-identical
// results.
func TestChaosSpillIO(t *testing.T) {
	leakCheck(t)
	const query = `SELECT a, b, s FROM big ORDER BY b, a`
	opts := perm.Options{Parallelism: -1, MemoryLimit: 64 << 10, SpillDir: t.TempDir()}
	clean := perm.NewDatabaseWithOptions(opts)
	bigTable(clean)
	want := clean.MustQuery(query)
	if clean.QueryStats().BytesSpilled == 0 {
		t.Fatal("reference query did not spill; the fault taps are not exercised")
	}

	// Counting rules: fail the first N calls of the point, then recover —
	// so the in-test retry deterministically succeeds.
	for _, spec := range []string{"spill.write:1", "spill.write:4", "spill.read:1"} {
		t.Run(spec, func(t *testing.T) {
			db := perm.NewDatabaseWithOptions(opts)
			bigTable(db)
			restore := fault.Set(mustInjector(t, spec))
			defer restore()

			_, err := db.Query(query)
			if err == nil {
				t.Fatalf("query under %s returned no error", spec)
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("query error does not wrap the injected fault: %v", err)
			}
			if inUse := db.QueryStats().MemoryInUse; inUse != 0 {
				t.Fatalf("reserved memory after injected failure = %d, want 0", inUse)
			}
			if leaks := leakedSpillFDs(); len(leaks) > 0 {
				t.Fatalf("leaked spill files after injected failure: %v", leaks)
			}
			// Each aborted attempt consumes one injected failure, so
			// bounded retries drain the counting rule; the first clean
			// attempt must match the reference run byte for byte.
			var got *perm.Result
			for attempt := 0; ; attempt++ {
				got, err = db.Query(query)
				if err == nil {
					break
				}
				if !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("retry attempt %d: %v", attempt, err)
				}
				if attempt > 6 {
					t.Fatalf("injected fault never cleared: %v", err)
				}
			}
			if got.String() != want.String() {
				t.Fatal("retried query diverges from the clean run")
			}
		})
	}
}

// TestChaosMemDenial: probabilistic memory-grant denial forces spills
// but never changes results — injected runs are byte-identical to clean
// ones across sorts, aggregates and provenance rewrites.
func TestChaosMemDenial(t *testing.T) {
	leakCheck(t)
	queries := []string{
		`SELECT a, b, s FROM big ORDER BY b, a`,
		`SELECT b, count(*), min(a) FROM big GROUP BY b ORDER BY b`,
		`SELECT DISTINCT s FROM big ORDER BY s`,
	}
	opts := perm.Options{Parallelism: -1, MemoryLimit: 1 << 20, SpillDir: t.TempDir()}
	clean := perm.NewDatabaseWithOptions(opts)
	bigTable(clean)
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = clean.MustQuery(q).String()
	}

	db := perm.NewDatabaseWithOptions(opts)
	bigTable(db)
	restore := fault.Set(mustInjector(t, "mem.grow:0.2;seed=11"))
	defer restore()
	for i, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s under mem.grow injection: %v", q, err)
		}
		if res.String() != want[i] {
			t.Fatalf("%s diverges under mem.grow injection", q)
		}
	}
	if inUse := db.QueryStats().MemoryInUse; inUse != 0 {
		t.Fatalf("reserved memory after injected runs = %d, want 0", inUse)
	}
}

// TestChaosWorkerPanic: a panic inside a parallel exchange worker
// surfaces as one clean query error — no deadlock in the k-way merge,
// no leaked goroutines or reservations, process alive — and the retry
// returns byte-identical results.
func TestChaosWorkerPanic(t *testing.T) {
	leakCheck(t)
	// No ORDER BY / aggregate: the plan runs the filter pipeline under an
	// Exchange (where the worker.panic tap sits), and the tag-order merge
	// makes the output order deterministic anyway.
	const query = `SELECT a, b, s FROM big WHERE b >= 0`
	serial := perm.NewDatabaseWithOptions(perm.Options{Parallelism: -1, SpillDir: t.TempDir()})
	bigTable(serial)
	want := serial.MustQuery(query)

	db := perm.NewDatabaseWithOptions(perm.Options{Parallelism: 4, SpillDir: t.TempDir()})
	bigTable(db)
	restore := fault.Set(mustInjector(t, "worker.panic:1"))
	defer restore()

	before := obs.PanicsRecovered.Load()
	_, err := db.Query(query)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("query with panicking worker: err = %v, want a worker-panic error", err)
	}
	if obs.PanicsRecovered.Load() <= before {
		t.Fatal("recovered panic not counted")
	}
	if inUse := db.QueryStats().MemoryInUse; inUse != 0 {
		t.Fatalf("reserved memory after worker panic = %d, want 0", inUse)
	}
	got, err := db.Query(query)
	if err != nil {
		t.Fatalf("retry after worker panic: %v", err)
	}
	if got.String() != want.String() {
		t.Fatal("parallel retry diverges from the serial run")
	}
}

// TestTimeoutVsCancelRace: an explicit cancel and a statement timeout
// racing for the same query produce exactly one structured error and
// one counter increment, whichever lands first.
func TestTimeoutVsCancelRace(t *testing.T) {
	aq := &obs.ActiveQuery{ID: "q1", Start: time.Now()}
	if !aq.CancelTimeout(time.Second) {
		t.Fatal("first CancelTimeout must land")
	}
	if aq.CancelTimeout(time.Second) {
		t.Fatal("second CancelTimeout must not land")
	}
	aq.Cancel() // explicit cancel after timeout: cause stays timeout
	var qe *obs.QueryError
	if err := aq.CancelErr(); !errors.As(err, &qe) || qe.Code != obs.CodeTimeout {
		t.Fatalf("cause after timeout-then-cancel: %v, want timeout", aq.CancelErr())
	}

	aq2 := &obs.ActiveQuery{ID: "q2", Start: time.Now()}
	aq2.Cancel()
	if aq2.CancelTimeout(time.Second) {
		t.Fatal("CancelTimeout after explicit cancel must not land")
	}
	if err := aq2.CancelErr(); !errors.As(err, &qe) || qe.Code != obs.CodeCancelled {
		t.Fatalf("cause after cancel-then-timeout: %v, want cancelled", aq2.CancelErr())
	}
}

// TestRobustnessMetricsExposed: the new counters are visible through
// perm_metrics (and therefore /metrics).
func TestRobustnessMetricsExposed(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec(`CREATE TABLE t (x int)`)
	for _, name := range []string{
		"perm_panics_recovered_total",
		"perm_statement_timeouts_total",
		"perm_conns_shed_total",
		"perm_client_retries_total",
	} {
		res := db.MustQuery(fmt.Sprintf(`SELECT count(*) FROM perm_metrics WHERE name = '%s'`, name))
		if got := res.Rows[0][0].String(); got != "1" {
			t.Errorf("perm_metrics rows for %s = %s, want 1", name, got)
		}
	}
}
