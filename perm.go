// Package perm is a pure-Go reimplementation of Perm ("Provenance
// Extension of the Relational Model", Glavic & Alonso, ICDE 2009): a
// provenance management system that computes influence-contribution
// (Why-) provenance for SQL queries through query rewriting, representing
// provenance and data on the same relational data model.
//
// The package embeds a complete in-memory SQL engine (parser, analyzer,
// view unfolding, planner, executor) mirroring the PostgreSQL pipeline the
// paper extends, with the Perm provenance rewriter sitting between
// analysis and planning (the paper's Fig. 5). The SQL dialect includes the
// paper's SQL-PLE extensions:
//
//	SELECT PROVENANCE ... — compute provenance attributes (prov_<rel>_<attr>)
//	FROM item PROVENANCE (attrs) — use stored/external provenance
//	FROM item BASERELATION — limit provenance scope to a view/subquery
//
// Basic usage:
//
//	db := perm.NewDatabase()
//	db.MustExec(`CREATE TABLE shop (name text, numempl int)`)
//	db.MustExec(`INSERT INTO shop VALUES ('Merdies', 3)`)
//	res, err := db.Query(`SELECT PROVENANCE name FROM shop`)
package perm

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"perm/internal/algebra"
	"perm/internal/analyze"
	"perm/internal/catalog"
	"perm/internal/deparse"
	"perm/internal/eval"
	"perm/internal/exec"
	"perm/internal/mem"
	"perm/internal/obs"
	"perm/internal/optimize"
	"perm/internal/plan"
	"perm/internal/provrewrite"
	"perm/internal/qcache"
	"perm/internal/spill"
	"perm/internal/sql"
	"perm/internal/types"
	"perm/internal/vexec"
)

// Database is an in-memory Perm database: a catalog of tables and views,
// a shared compiled-query cache, and the query pipeline. All methods are
// safe for concurrent use: queries run against consistent snapshots,
// catalog access is guarded by the catalog's reader/writer lock, and
// DDL/DML advance a monotonic catalog version that invalidates cached
// compilation artifacts and prepared statements.
type Database struct {
	cat   *catalog.Catalog
	opts  Options
	cache *qcache.Cache
	// optsKey fingerprints the compile-relevant options so databases
	// derived via WithOptions share the cache without ever sharing an
	// artifact compiled under different rewrite settings.
	optsKey string
	// gov is the engine-wide memory governor, shared by every handle
	// derived via WithOptions; budget is this handle's session-level
	// budget below it. Materializing operators draw reservations from
	// the budget and spill to disk when a grant is denied.
	gov    *mem.Governor
	budget *mem.Budget
	// eng is the shared introspection core (query IDs, tracer, active
	// queries, statement statistics); sessionID identifies this handle in
	// perm_stat_activity, traceEvery is the resolved sampling rate, and
	// lastQ records the most recent statement for log correlation.
	eng        *engineCore
	sessionID  int64
	traceEvery int
	// stmtTimeout is the resolved statement timeout (0 = none); every
	// statement this handle begins arms a deadline that triggers the
	// cooperative cancellation path.
	stmtTimeout time.Duration
	lastQ       atomic.Pointer[QueryInfo]
}

// Options configure a Database.
type Options struct {
	// FlattenSetOps enables the Fig. 6(3a) set-operation rewrite variant
	// (the paper's prototype used the simpler 3b variant; 3a avoids
	// unnecessary intermediate results).
	FlattenSetOps bool

	// DisableOptimizer turns off the logical optimizer that flattens and
	// prunes the (provenance-rewritten) query tree before planning. The
	// optimizer is semantics-preserving; the switch exists as an escape
	// hatch and for A/B measurement.
	DisableOptimizer bool

	// DisableVectorized turns off the vectorized (batch-at-a-time)
	// execution engine; every plan then runs on the row-at-a-time volcano
	// operators. Vectorization is semantics-preserving — plan subtrees it
	// cannot handle fall back to the row engine automatically — so the
	// switch exists as an escape hatch and for A/B measurement.
	DisableVectorized bool

	// DisableQueryCache turns off the shared compiled-query cache; every
	// Query call then re-parses, re-rewrites and re-optimizes its
	// statement. Caching is semantics-preserving (artifacts are
	// invalidated whenever the catalog version moves), so the switch
	// exists as an escape hatch and for A/B measurement.
	DisableQueryCache bool

	// QueryCacheSize bounds the number of compiled statements kept in
	// the shared cache (0 means the default of 256).
	QueryCacheSize int

	// MemoryLimit bounds, in bytes, the memory this handle's queries may
	// hold in materializing operators (sorts, hash-join builds, hash
	// aggregation, DISTINCT, set operations). When the budget is
	// exhausted those operators spill to temporary files and complete
	// with identical results, so the limit is a performance knob, never
	// a correctness hazard. 0 consults the PERM_MEMORY_LIMIT environment
	// variable (e.g. "64MiB") and falls back to unlimited; a negative
	// value is explicitly unlimited. Handles derived via WithOptions
	// (one per session) budget independently; the engine-wide total can
	// additionally be capped with SetEngineMemoryLimit.
	MemoryLimit int64

	// SpillDir is the directory spill files are created under ("" =
	// $PERM_SPILL_DIR, then the system temp directory). Files are
	// unlinked at creation, so their storage is reclaimed even on a
	// crash.
	SpillDir string

	// Parallelism is the number of workers intra-query parallelism may
	// use for eligible vectorized plan segments. Parallel execution is
	// semantics-preserving: worker outputs merge back in exact serial
	// order, so results are byte-identical to a serial run. 0 consults
	// the PERM_PARALLELISM environment variable and falls back to
	// runtime.GOMAXPROCS(0); 1 (or a negative value) plans serially.
	// Each worker draws memory through its own reservation under this
	// handle's session budget, so Parallelism composes with MemoryLimit
	// (workers spill independently under pressure).
	Parallelism int

	// TraceSample records a full lifecycle trace (phase spans plus
	// per-operator child spans) for every Nth query this handle runs,
	// into the engine's shared ring buffer served by the perm_traces
	// system table. Tracing is semantics-preserving — traced execution is
	// byte-identical to untraced — and the off path costs one atomic add
	// per query. 0 consults the PERM_TRACE_SAMPLE environment variable
	// and falls back to off; a negative value is explicitly off; 1
	// traces every query.
	TraceSample int

	// StatementTimeout bounds how long any single statement this handle
	// runs may execute. A statement past its deadline is cancelled
	// through the same cooperative path CANCEL uses (observed at batch
	// boundaries, so spilling and parallel segments unwind cleanly) and
	// its issuer receives a structured timeout error carrying the query
	// ID. 0 consults the PERM_STATEMENT_TIMEOUT environment variable
	// (a Go duration, e.g. "30s") and falls back to no timeout; a
	// negative value is explicitly no timeout.
	StatementTimeout time.Duration
}

// envLimitWarn makes sure a malformed PERM_MEMORY_LIMIT is reported
// exactly once instead of silently disarming the governor.
var envLimitWarn sync.Once

// envTimeoutWarn makes sure a malformed PERM_STATEMENT_TIMEOUT is
// reported exactly once.
var envTimeoutWarn sync.Once

// effectiveStatementTimeout resolves the statement timeout: an explicit
// positive timeout wins, negative means no timeout, and 0 defers to the
// PERM_STATEMENT_TIMEOUT environment variable.
func effectiveStatementTimeout(opts Options) time.Duration {
	switch {
	case opts.StatementTimeout > 0:
		return opts.StatementTimeout
	case opts.StatementTimeout < 0:
		return 0
	}
	if s := os.Getenv("PERM_STATEMENT_TIMEOUT"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			envTimeoutWarn.Do(func() {
				fmt.Fprintf(os.Stderr, "perm: ignoring invalid PERM_STATEMENT_TIMEOUT: %q\n", s)
			})
			return 0
		}
		return d
	}
	return 0
}

// effectiveMemoryLimit resolves the session memory limit: an explicit
// positive limit wins, negative means unlimited, and 0 defers to the
// PERM_MEMORY_LIMIT environment variable.
func effectiveMemoryLimit(opts Options) int64 {
	switch {
	case opts.MemoryLimit > 0:
		return opts.MemoryLimit
	case opts.MemoryLimit < 0:
		return 0
	}
	if s := os.Getenv("PERM_MEMORY_LIMIT"); s != "" {
		n, err := mem.ParseSize(s)
		if err != nil {
			// The env var is the only knob that arms the governor in many
			// deployments; a typo must not silently mean "unlimited".
			envLimitWarn.Do(func() {
				fmt.Fprintf(os.Stderr, "perm: ignoring invalid PERM_MEMORY_LIMIT: %v\n", err)
			})
			return 0
		}
		if n > 0 {
			return n
		}
	}
	return 0
}

// NewDatabase returns an empty database with default options.
func NewDatabase() *Database { return NewDatabaseWithOptions(Options{}) }

// NewDatabaseWithOptions returns an empty database.
func NewDatabaseWithOptions(opts Options) *Database {
	gov := mem.NewGovernor(0)
	eng := newEngineCore()
	db := &Database{
		cat:         catalog.New(),
		opts:        opts,
		cache:       qcache.New(opts.QueryCacheSize),
		optsKey:     optionsFingerprint(opts),
		gov:         gov,
		budget:      gov.Session(effectiveMemoryLimit(opts)),
		eng:         eng,
		sessionID:   eng.sessionSeq.Add(1),
		traceEvery:  effectiveTraceSample(opts),
		stmtTimeout: effectiveStatementTimeout(opts),
	}
	registerSystemViews(db)
	return db
}

// WithOptions returns a database handle over the same catalog, data and
// compiled-query cache, but with different options. Sessions use this to
// give each client its own settings without copying any state; the cache
// keys compilation artifacts by option fingerprint, so handles with
// different rewrite settings never share a compiled tree. The handle
// gets its own session memory budget under the shared engine governor,
// so per-session limits are independent while the engine total stays
// accounted in one place.
func (db *Database) WithOptions(opts Options) *Database {
	d := db.withOptions(opts)
	d.sessionID = db.eng.sessionSeq.Add(1)
	return d
}

// WithOptionsSameSession is WithOptions for an options change within an
// existing session (SET): the derived handle keeps this handle's session
// identity, so perm_stat_activity and the statement log stay continuous
// across the change.
func (db *Database) WithOptionsSameSession(opts Options) *Database {
	d := db.withOptions(opts)
	d.sessionID = db.sessionID
	return d
}

func (db *Database) withOptions(opts Options) *Database {
	return &Database{
		cat:         db.cat,
		opts:        opts,
		cache:       db.cache,
		optsKey:     optionsFingerprint(opts),
		gov:         db.gov,
		budget:      db.gov.Session(effectiveMemoryLimit(opts)),
		eng:         db.eng,
		traceEvery:  effectiveTraceSample(opts),
		stmtTimeout: effectiveStatementTimeout(opts),
	}
}

// SetEngineMemoryLimit caps the total memory the engine's materializing
// operators may hold across every session sharing this database's
// catalog (0 = unlimited). Independent per-session limits come from
// Options.MemoryLimit.
func (db *Database) SetEngineMemoryLimit(n int64) {
	if n < 0 {
		n = 0
	}
	db.gov.SetLimit(n)
}

// QueryStats reports the engine-wide execution-resource counters:
// memory currently reserved by materializing operators, its high-water
// mark, and the cumulative spill volume.
type QueryStats struct {
	MemoryInUse  int64  // bytes currently reserved by operators
	PeakMemory   int64  // high-water mark of reserved bytes
	BytesSpilled int64  // cumulative bytes written to spill files
	SpillEvents  uint64 // spill activations (runs/partitions written)
}

func statsFrom(s mem.Stats) QueryStats {
	return QueryStats{
		MemoryInUse:  s.InUse,
		PeakMemory:   s.Peak,
		BytesSpilled: s.BytesSpilled,
		SpillEvents:  uint64(s.SpillEvents),
	}
}

// QueryStats returns the engine-wide counters (all sessions).
func (db *Database) QueryStats() QueryStats { return statsFrom(db.gov.Stats()) }

// SessionQueryStats returns the counters of this handle's session
// budget only.
func (db *Database) SessionQueryStats() QueryStats { return statsFrom(db.budget.Stats()) }

// MemoryLimit returns this handle's effective session memory limit in
// bytes (0 = unlimited).
func (db *Database) MemoryLimit() int64 { return db.budget.Limit() }

// Opts returns the options of this database handle.
func (db *Database) Opts() Options { return db.opts }

// optionsFingerprint encodes the options that change what the compile
// pipeline produces. Planner-level options (vectorization) are excluded:
// the cached artifact is the optimized logical tree, planned fresh on
// every execution.
func optionsFingerprint(opts Options) string {
	key := []byte{'0', '0'}
	if opts.FlattenSetOps {
		key[0] = '1'
	}
	if opts.DisableOptimizer {
		key[1] = '1'
	}
	return string(key)
}

// CacheStats are cumulative counters of the shared compiled-query cache.
type CacheStats struct {
	Hits          uint64 // queries served a cached compilation artifact
	Misses        uint64 // queries that compiled from scratch
	Invalidations uint64 // artifacts dropped because DDL/DML moved the catalog version
	Evictions     uint64 // artifacts dropped by LRU capacity pressure
}

// QueryCacheStats returns a snapshot of the shared cache counters.
func (db *Database) QueryCacheStats() CacheStats {
	s := db.cache.Stats()
	return CacheStats{Hits: s.Hits, Misses: s.Misses, Invalidations: s.Invalidations, Evictions: s.Evictions}
}

// CatalogVersion returns the current catalog version (advanced by every
// DDL and DML statement; cached compilation artifacts are tagged with it).
func (db *Database) CatalogVersion() uint64 { return db.cat.Version() }

// Value is a single result value.
type Value struct {
	v types.Value
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.v.Null }

// Int returns the value as int64 (0 for NULL or non-numeric).
func (v Value) Int() int64 {
	if v.v.Null {
		return 0
	}
	switch v.v.K {
	case types.KindInt, types.KindDate:
		return v.v.I
	case types.KindFloat:
		return int64(v.v.F)
	default:
		return 0
	}
}

// Float returns the value as float64 (0 for NULL or non-numeric).
func (v Value) Float() float64 {
	if v.v.Null || !v.v.K.Numeric() {
		return 0
	}
	return v.v.AsFloat()
}

// Bool returns the value as bool (false for NULL or non-boolean).
func (v Value) Bool() bool { return v.v.IsTrue() }

// String renders the value for display (NULL renders as "NULL").
func (v Value) String() string { return v.v.String() }

// Result is the outcome of a query.
type Result struct {
	// Columns are the output column names, in order.
	Columns []string
	// ProvColumns marks which columns (by position) are provenance
	// attributes produced by the rewriter.
	ProvColumns []bool
	// Rows holds the result tuples.
	Rows [][]Value
}

// NumProvColumns returns how many output columns are provenance attributes.
func (r *Result) NumProvColumns() int {
	n := 0
	for _, p := range r.ProvColumns {
		if p {
			n++
		}
	}
	return n
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			sb.WriteString(" | ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], c)
	}
	sb.WriteString("\n")
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("-+-")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				sb.WriteString(" | ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Exec runs one or more semicolon-separated statements (DDL, DML or
// queries whose results are discarded). It returns the number of rows
// affected by the last DML statement.
func (db *Database) Exec(text string) (int, error) {
	stmts, err := sql.ParseAll(text)
	if err != nil {
		return 0, err
	}
	affected := 0
	for _, stmt := range stmts {
		qr := db.beginQuery(text)
		n, _, err := db.run(stmt, text, qr)
		qr.finish(err)
		if err != nil {
			return affected, err
		}
		affected = n
	}
	return affected, nil
}

// MustExec is Exec that panics on error (for tests and examples).
func (db *Database) MustExec(text string) {
	if _, err := db.Exec(text); err != nil {
		panic(err)
	}
}

// Query runs a single SELECT (or EXPLAIN) statement and returns its result.
//
// Plain SELECTs are served through the shared compiled-query cache: the
// analyzed, provenance-rewritten and optimized tree is reused verbatim
// across calls (and across sessions) until a DDL or DML statement moves
// the catalog version; physical planning and execution always run fresh
// against the current data. SELECT ... INTO and EXPLAIN bypass the cache.
func (db *Database) Query(text string) (*Result, error) {
	qr := db.beginQuery(text)
	res, err := db.query(text, qr)
	qr.finish(err)
	return res, err
}

func (db *Database) query(text string, qr *queryRun) (*Result, error) {
	if q, ok := db.cacheGet(text); ok {
		return db.executeCompiled(q, "", qr)
	}
	qr.phase(obs.PhaseParse)
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	if sel, ok := stmt.(*sql.SelectStmt); ok && sel.Into == "" {
		q, err := db.compileSelect(sel, text, qr)
		if err != nil {
			return nil, err
		}
		return db.executeCompiled(q, "", qr)
	}
	_, res, err := db.run(stmt, text, qr)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("statement returns no result; use Exec")
	}
	return res, nil
}

// cacheGet looks up the compiled artifact for a statement text, honouring
// the DisableQueryCache escape hatch and the current catalog version.
func (db *Database) cacheGet(text string) (*algebra.Query, bool) {
	if db.opts.DisableQueryCache {
		return nil, false
	}
	v, ok := db.cache.Get(db.optsKey+"\x00"+text, db.cat.Version())
	if !ok {
		return nil, false
	}
	return v.(*algebra.Query), true
}

// compileSelect runs the compile pipeline for a parsed plain SELECT and,
// when caching is enabled, publishes the artifact for reuse. The catalog
// version is read before compilation: if concurrent DDL/DML lands while
// we compile, the stored artifact is tagged with the older version and
// the next lookup discards it, so a cached tree can never be newer than
// the version it claims.
func (db *Database) compileSelect(sel *sql.SelectStmt, text string, qr *queryRun) (*algebra.Query, error) {
	ver := db.cat.Version()
	q, err := db.analyzeAndRewriteQR(sel, qr)
	if err != nil {
		return nil, err
	}
	if qr != nil {
		qr.fresh = true
	}
	if !db.opts.DisableQueryCache && text != "" {
		db.cache.Put(db.optsKey+"\x00"+text, q, ver)
	}
	return q, nil
}

// executeCompiled plans and runs a compiled query tree. The artifact is
// shared read-only: all per-execution state (the physical plan, its data
// snapshots and iterator state) is private to this call.
func (db *Database) executeCompiled(q *algebra.Query, into string, qr *queryRun) (*Result, error) {
	qr.phase(obs.PhasePlan)
	planner := db.planner()
	if qr != nil {
		planner.SetActivity(qr.aq)
	}
	node, err := planner.Plan(q)
	if err != nil {
		return nil, err
	}
	db.notePlanHash(qr, node)
	schema := q.Schema()
	res := &Result{
		Columns:     schema.Names(),
		ProvColumns: make([]bool, len(schema)),
	}
	for _, pc := range q.ProvCols {
		res.ProvColumns[pc.Col] = true
	}
	qr.phase(obs.PhaseExecute)
	// A sampled query gets per-operator child spans: instrument the tree
	// with the EXPLAIN ANALYZE probes (which forward batches and rows by
	// pointer, so execution stays byte-identical) and harvest their
	// measurements into the trace afterwards.
	traced := qr != nil && qr.trace != nil
	if traced {
		node = plan.Instrument(node)
	}
	aq := qr.activeQuery()
	// A fully vectorized plan ends in a single batch→row adapter; read
	// the batches underneath it directly so result values box straight
	// out of the column vectors instead of through intermediate rows.
	if rs, ok := node.(*vexec.RowSource); ok && into == "" {
		res.Rows, err = collectBatchValues(rs.Input, aq)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	rows, err := collectRows(node, aq)
	if traced && err == nil {
		for _, sp := range plan.OperatorSpans(node) {
			qr.trace.Add(sp)
		}
	}
	if err != nil {
		return nil, err
	}
	res.Rows = make([][]Value, len(rows))
	for i, r := range rows {
		vr := make([]Value, len(r))
		for j, v := range r {
			vr[j] = Value{v: v}
		}
		res.Rows[i] = vr
	}
	if into != "" {
		if err := db.materialize(into, schema, rows); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// collectRows drains a row plan like exec.Collect, additionally feeding
// emitted-row progress and cancellation checks to the active-query
// record at batch-sized strides.
func collectRows(n exec.Node, aq *obs.ActiveQuery) ([]types.Row, error) {
	if aq == nil {
		return exec.Collect(n)
	}
	if err := n.Open(); err != nil {
		return nil, err
	}
	defer n.Close()
	var rows []types.Row
	pending := int64(0)
	for {
		r, err := n.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			aq.AddRows(pending)
			return rows, nil
		}
		rows = append(rows, r)
		if pending++; pending == 1024 {
			aq.AddRows(pending)
			pending = 0
			if err := aq.CancelErr(); err != nil {
				return nil, err
			}
		}
	}
}

// collectBatchValues drains a vectorized plan into result rows, boxing
// each live lane once. Per batch it feeds emitted-row progress and a
// cancellation check to the active-query record (one atomic add and one
// atomic load per batch).
func collectBatchValues(in vexec.Node, aq *obs.ActiveQuery) ([][]Value, error) {
	if err := in.Open(); err != nil {
		return nil, err
	}
	defer in.Close()
	var out [][]Value
	for {
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		if aq != nil {
			if err := aq.CancelErr(); err != nil {
				return nil, err
			}
		}
		before := len(out)
		emit := func(lane int) {
			vr := make([]Value, len(b.Cols))
			for j, c := range b.Cols {
				vr[j] = Value{v: c.Value(lane)}
			}
			out = append(out, vr)
		}
		if b.Sel != nil {
			for _, lane := range b.Sel {
				emit(lane)
			}
		} else {
			for lane := 0; lane < b.N; lane++ {
				emit(lane)
			}
		}
		aq.AddRows(int64(len(out) - before))
	}
}

// MustQuery is Query that panics on error.
func (db *Database) MustQuery(text string) *Result {
	res, err := db.Query(text)
	if err != nil {
		panic(err)
	}
	return res
}

// RewriteSQL returns the SQL text of the provenance-rewritten form of a
// query (the q+ of the paper), without executing it.
func (db *Database) RewriteSQL(text string) (string, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return "", fmt.Errorf("REWRITE requires a SELECT statement")
	}
	q, err := db.analyzeAndRewrite(sel)
	if err != nil {
		return "", err
	}
	return deparse.Query(q), nil
}

// ExplainSQL returns the physical plan of a query as indented text.
func (db *Database) ExplainSQL(text string) (string, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return "", fmt.Errorf("EXPLAIN requires a SELECT statement")
	}
	q, err := db.analyzeAndRewrite(sel)
	if err != nil {
		return "", err
	}
	node, err := db.planner().Plan(q)
	if err != nil {
		return "", err
	}
	return plan.Explain(node), nil
}

// planner returns a planner configured from the database options.
func (db *Database) planner() *plan.Planner {
	return plan.New(db.cat).
		SetVectorized(!db.opts.DisableVectorized).
		SetResources(db.budget, spill.ResolveDir(db.opts.SpillDir)).
		SetParallelism(effectiveParallelism(db.opts))
}

// envParWarn makes sure a malformed PERM_PARALLELISM is reported exactly
// once.
var envParWarn sync.Once

// effectiveParallelism resolves the worker count for intra-query
// parallelism: an explicit positive setting wins, negative means
// serial, and 0 defers to the PERM_PARALLELISM environment variable and
// then to GOMAXPROCS.
func effectiveParallelism(opts Options) int {
	switch {
	case opts.Parallelism > 0:
		return opts.Parallelism
	case opts.Parallelism < 0:
		return 1
	}
	if s := os.Getenv("PERM_PARALLELISM"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			envParWarn.Do(func() {
				fmt.Fprintf(os.Stderr, "perm: ignoring invalid PERM_PARALLELISM: %q\n", s)
			})
			return runtime.GOMAXPROCS(0)
		}
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Catalog introspection.

// Tables returns the names of all base tables.
func (db *Database) Tables() []string { return db.cat.TableNames() }

// Views returns the names of all views.
func (db *Database) Views() []string { return db.cat.ViewNames() }

// TableRowCount returns the number of rows in a base table.
func (db *Database) TableRowCount(name string) (int, error) {
	t, ok := db.cat.Table(name)
	if !ok {
		return 0, fmt.Errorf("table %q does not exist", name)
	}
	return t.Heap.Len(), nil
}

// ---------------------------------------------------------------------------
// Pipeline internals

func (db *Database) analyzer() *analyze.Analyzer {
	a := analyze.New(db.cat)
	a.RewriteOpts = provrewrite.Options{FlattenSetOps: db.opts.FlattenSetOps}
	return a
}

// analyzeAndRewrite runs analysis, the provenance rewrite stage and the
// logical optimizer — the "compilation" pipeline of the paper's Fig. 5 up
// to the planner, with the optimizer standing in for the normalization
// PostgreSQL's own planner performs on the rewriter's nested output.
func (db *Database) analyzeAndRewrite(sel *sql.SelectStmt) (*algebra.Query, error) {
	return db.analyzeAndRewriteQR(sel, nil)
}

// analyzeAndRewriteQR is analyzeAndRewrite with lifecycle phase marks:
// analysis and the provenance rewrite report as the rewrite phase, the
// optimizer as the optimize phase.
func (db *Database) analyzeAndRewriteQR(sel *sql.SelectStmt, qr *queryRun) (*algebra.Query, error) {
	qr.phase(obs.PhaseRewrite)
	q, err := db.analyzer().AnalyzeSelect(sel)
	if err != nil {
		return nil, err
	}
	q, err = provrewrite.RewriteTree(q, provrewrite.Options{FlattenSetOps: db.opts.FlattenSetOps})
	if err != nil {
		return nil, err
	}
	qr.phase(obs.PhaseOptimize)
	if !db.opts.DisableOptimizer {
		q = optimize.QueryWithStats(q, catalogStats{cat: db.cat})
	}
	return q, nil
}

// catalogStats adapts the catalog's lazily maintained table statistics
// to the optimizer's Stats interface. Cached compilation artifacts stay
// sound: the query cache keys on the catalog version, which every DML
// bump advances, so a tree canonicalized under stale row counts is
// discarded with the version that produced it.
type catalogStats struct {
	cat *catalog.Catalog
}

func (s catalogStats) TableRows(name string) (float64, bool) {
	t, ok := s.cat.Table(name)
	if !ok {
		return 0, false
	}
	return t.Stats().Rows, true
}

// CompileOnly parses and analyzes a query without the provenance rewrite
// (used by the compilation-overhead benchmark, Fig. 9).
func (db *Database) CompileOnly(text string) error {
	stmt, err := sql.Parse(text)
	if err != nil {
		return err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return fmt.Errorf("not a SELECT statement")
	}
	_, err = db.analyzer().AnalyzeSelect(sel)
	return err
}

// CompileWithRewrite parses, analyzes and provenance-rewrites a query
// without executing it (Fig. 9's provenance-enabled compilation path).
func (db *Database) CompileWithRewrite(text string) error {
	stmt, err := sql.Parse(text)
	if err != nil {
		return err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return fmt.Errorf("not a SELECT statement")
	}
	_, err = db.analyzeAndRewrite(sel)
	return err
}

// run executes one parsed statement. It returns rows-affected (DML) and a
// result (queries).
func (db *Database) run(stmt sql.Statement, text string, qr *queryRun) (int, *Result, error) {
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		res, err := db.runSelect(s, qr)
		return 0, res, err
	case *sql.CancelStmt:
		return 0, nil, db.Cancel(s.ID)
	case *sql.CreateTableStmt:
		cols := make([]catalog.Column, len(s.Cols))
		for i, c := range s.Cols {
			cols[i] = catalog.Column{Name: c.Name, Type: c.Type}
		}
		_, err := db.cat.CreateTable(s.Name, cols, s.IfNotExists)
		return 0, nil, err
	case *sql.CreateViewStmt:
		// Validate the definition now (catching errors early, as
		// PostgreSQL does), store the parse tree for unfolding.
		if _, err := db.analyzer().AnalyzeSelect(s.Query); err != nil {
			return 0, nil, fmt.Errorf("invalid view definition: %v", err)
		}
		return 0, nil, db.cat.CreateView(s.Name, s.Query, text, s.OrReplace)
	case *sql.DropStmt:
		return 0, nil, db.cat.Drop(s.Name, s.View, s.IfExists)
	case *sql.InsertStmt:
		n, err := db.runInsert(s, qr)
		return n, nil, err
	case *sql.DeleteStmt:
		n, err := db.runDelete(s)
		return n, nil, err
	case *sql.ExplainStmt:
		var out string
		if s.Rewrite {
			q, rerr := db.analyzeAndRewrite(s.Query)
			if rerr != nil {
				return 0, nil, rerr
			}
			out = deparse.Query(q)
		} else if s.Analyze {
			// Strip the EXPLAIN ANALYZE prefix so the analyzed query hits
			// (and fills) the same cache slot and fingerprint the bare
			// SELECT would; a multi-statement text is left uncached.
			qtext := stripExplainPrefix(text)
			fpText := qtext
			if qtext == text || strings.ContainsRune(qtext, ';') {
				qtext = ""
			}
			_, report, aerr := db.analyzeSelect(s.Query, qtext, fpText, qr)
			if aerr != nil {
				return 0, nil, aerr
			}
			out = report
		} else {
			q, rerr := db.analyzeAndRewrite(s.Query)
			if rerr != nil {
				return 0, nil, rerr
			}
			node, perr := db.planner().Plan(q)
			if perr != nil {
				return 0, nil, perr
			}
			out = plan.Explain(node)
		}
		res := &Result{Columns: []string{"plan"}, ProvColumns: []bool{false}}
		for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
			res.Rows = append(res.Rows, []Value{{v: types.NewString(line)}})
		}
		return 0, res, nil
	default:
		return 0, nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

func (db *Database) runSelect(sel *sql.SelectStmt, qr *queryRun) (*Result, error) {
	into := sel.Into
	sel.Into = ""
	q, err := db.analyzeAndRewriteQR(sel, qr)
	if err != nil {
		return nil, err
	}
	return db.executeCompiled(q, into, qr)
}

// materialize stores a result as a new base table (SELECT ... INTO).
func (db *Database) materialize(name string, schema algebra.Schema, rows []types.Row) error {
	cols := make([]catalog.Column, len(schema))
	seen := make(map[string]int)
	for i, c := range schema {
		colName := c.Name
		if n := seen[colName]; n > 0 {
			colName = fmt.Sprintf("%s_%d", colName, n+1)
		}
		seen[c.Name]++
		typ := c.Type
		if typ == types.KindNull {
			typ = types.KindString
		}
		cols[i] = catalog.Column{Name: colName, Type: typ}
	}
	t, err := db.cat.CreateTable(name, cols, false)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := t.Heap.Insert(r.Clone()); err != nil {
			return err
		}
	}
	return nil
}

func (db *Database) runInsert(s *sql.InsertStmt, qr *queryRun) (int, error) {
	t, ok := db.cat.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("table %q does not exist", s.Table)
	}
	// DML moves the catalog version (even on a partial failure some rows
	// may have landed), conservatively invalidating cached artifacts.
	defer db.cat.Bump()
	// Map the column list to positions.
	positions := make([]int, 0, len(t.Cols))
	if len(s.Cols) == 0 {
		for i := range t.Cols {
			positions = append(positions, i)
		}
	} else {
		for _, c := range s.Cols {
			idx := t.ColIndex(c)
			if idx < 0 {
				return 0, fmt.Errorf("column %q does not exist in table %q", c, s.Table)
			}
			positions = append(positions, idx)
		}
	}

	buildRow := func(vals types.Row) (types.Row, error) {
		if len(vals) != len(positions) {
			return nil, fmt.Errorf("INSERT has %d values but %d target columns", len(vals), len(positions))
		}
		row := make(types.Row, len(t.Cols))
		for i, c := range t.Cols {
			row[i] = types.NewNull(c.Type)
		}
		for i, pos := range positions {
			v, err := types.Coerce(vals[i], t.Cols[pos].Type)
			if err != nil {
				return nil, fmt.Errorf("column %q: %v", t.Cols[pos].Name, err)
			}
			row[pos] = v
		}
		return row, nil
	}

	n := 0
	if s.Query != nil {
		res, err := db.runSelect(s.Query, qr)
		if err != nil {
			return 0, err
		}
		for _, r := range res.Rows {
			vals := make(types.Row, len(r))
			for i, v := range r {
				vals[i] = v.v
			}
			row, err := buildRow(vals)
			if err != nil {
				return n, err
			}
			if err := t.Heap.Insert(row); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	}

	for _, exprRow := range s.Values {
		vals, err := db.evalConstRow(exprRow)
		if err != nil {
			return n, err
		}
		row, err := buildRow(vals)
		if err != nil {
			return n, err
		}
		if err := t.Heap.Insert(row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// evalConstRow evaluates a row of literal expressions (INSERT VALUES).
func (db *Database) evalConstRow(exprs []sql.Expr) (types.Row, error) {
	row := make(types.Row, len(exprs))
	for i, e := range exprs {
		v, err := evalConstExpr(e)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

func evalConstExpr(e sql.Expr) (types.Value, error) {
	switch n := e.(type) {
	case *sql.Lit:
		return n.Val, nil
	case *sql.UnaryExpr:
		v, err := evalConstExpr(n.Expr)
		if err != nil {
			return types.NullValue, err
		}
		if n.Op == "-" {
			return types.Neg(v)
		}
		return v, nil
	case *sql.BinExpr:
		l, err := evalConstExpr(n.Left)
		if err != nil {
			return types.NullValue, err
		}
		r, err := evalConstExpr(n.Right)
		if err != nil {
			return types.NullValue, err
		}
		switch n.Op {
		case "+":
			return types.Add(l, r)
		case "-":
			return types.Sub(l, r)
		case "*":
			return types.Mul(l, r)
		case "/":
			return types.Div(l, r)
		}
		return types.NullValue, fmt.Errorf("unsupported constant operator %q", n.Op)
	default:
		return types.NullValue, fmt.Errorf("INSERT values must be constants, got %T", e)
	}
}

func (db *Database) runDelete(s *sql.DeleteStmt) (int, error) {
	t, ok := db.cat.Table(s.Table)
	if !ok {
		return 0, fmt.Errorf("table %q does not exist", s.Table)
	}
	defer db.cat.Bump()
	if s.Where == nil {
		n := t.Heap.Len()
		t.Heap.Truncate()
		return n, nil
	}
	// Analyze the predicate in the table's scope.
	a := db.analyzer()
	sel := &sql.SelectStmt{
		Targets: []sql.SelectTarget{{Star: true}},
		From:    []sql.TableExpr{&sql.TableName{Name: s.Table}},
		Where:   s.Where,
	}
	q, err := a.AnalyzeSelect(sel)
	if err != nil {
		return 0, err
	}
	binder := &deleteBinder{db: db}
	pred, err := eval.Compile(q.Where, binder)
	if err != nil {
		return 0, err
	}
	var ctx eval.Ctx
	return t.Heap.DeleteWhere(func(r types.Row) (bool, error) {
		ctx.Row = r
		v, err := pred(&ctx)
		if err != nil {
			return false, err
		}
		return v.IsTrue(), nil
	})
}

// deleteBinder binds a single-table predicate positionally.
type deleteBinder struct {
	db *Database
}

func (b *deleteBinder) BindVar(v *algebra.Var) (int, error) {
	if v.RT != 0 {
		return 0, fmt.Errorf("DELETE predicate may only reference the target table")
	}
	return v.Col, nil
}

func (b *deleteBinder) BindSubLink(s *algebra.SubLink) (eval.SubLinkValue, error) {
	return plan.NewSubLinkValue(b.db.planner(), s)
}

// InsertRows bulk-loads pre-built rows into a base table, bypassing SQL
// parsing (used by the TPC-H generator; ~100x faster than INSERT text).
// Values must match the table's column types; no coercion is applied.
func (db *Database) InsertRows(table string, rows []types.Row) error {
	t, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("table %q does not exist", table)
	}
	defer db.cat.Bump()
	return t.Heap.InsertAll(rows)
}
