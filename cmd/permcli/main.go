// Command permcli is an interactive SQL shell for the Perm engine,
// including the SQL-PLE provenance extensions of the paper:
//
//	SELECT PROVENANCE ...;
//	EXPLAIN REWRITE SELECT PROVENANCE ...;   -- show the rewritten query q+
//	EXPLAIN SELECT ...;                      -- show the physical plan
//	EXPLAIN ANALYZE SELECT ...;              -- execute and show per-operator runtime stats
//
// plus the query-service dialect (PREPARE name AS ..., EXECUTE name,
// DEALLOCATE name, SET option = on|off).
//
// With -remote ADDR the shell connects to a permd server instead of
// embedding an engine; statements then execute in a server-side session.
//
// Meta commands: \d (list tables/views), \tpch SF (load TPC-H data),
// \i FILE (run a script), \q (quit).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"perm"
	"perm/internal/mem"
	"perm/internal/session"
	"perm/internal/tpch"
	"perm/permclient"
)

// runner executes one statement and returns its result (queries), rows
// affected (DML) or a completion tag (everything else).
type runner func(text string) (res *perm.Result, affected int, tag string, err error)

func main() {
	var (
		script   = flag.String("f", "", "execute a SQL script file and exit")
		remote   = flag.String("remote", "", "connect to a permd server at this address instead of embedding an engine")
		loadSF   = flag.Float64("tpch", 0, "preload TPC-H data at this scale factor")
		flatten  = flag.Bool("flatten-setops", false, "use the Fig. 6(3a) set-operation rewrite variant")
		noOpt    = flag.Bool("no-optimizer", false, "disable the logical optimizer (flattening/pruning of rewritten queries)")
		noVec    = flag.Bool("no-vectorized", false, "disable the vectorized execution engine (run everything row-at-a-time)")
		noCache  = flag.Bool("no-query-cache", false, "disable the shared compiled-query cache")
		memLimit = flag.String("memory-limit", "", "session memory budget, e.g. 64MiB (materializing operators spill to disk past it)")
		spillDir = flag.String("spill-dir", "", "directory for spill files (default $PERM_SPILL_DIR or the system temp dir)")
		paraN    = flag.Int("parallelism", 0, "intra-query worker count (0 = $PERM_PARALLELISM or all cores, 1 = serial)")
		traceN   = flag.Int("trace-sample", 0, "record a lifecycle trace for every Nth query into perm_traces (0 = $PERM_TRACE_SAMPLE or off, negative = off)")
		stmtTO   = flag.Duration("statement-timeout", 0, "cancel statements running longer than this (0 = $PERM_STATEMENT_TIMEOUT or none, negative = none)")
		timing   = flag.Bool("timing", true, "print execution times")
	)
	flag.Parse()

	var run runner
	var db *perm.Database // nil in remote mode
	if *remote != "" {
		if *loadSF > 0 {
			fmt.Fprintln(os.Stderr, "-tpch loads into an embedded engine; start permd with -tpch instead")
			os.Exit(1)
		}
		client, err := permclient.Dial(*remote)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer client.Close() //nolint:errcheck
		// Engine option flags apply to this connection's server-side
		// session, forwarded as SET statements.
		for opt, on := range map[string]bool{
			"flatten_setops":      *flatten,
			"disable_optimizer":   *noOpt,
			"disable_vectorized":  *noVec,
			"disable_query_cache": *noCache,
		} {
			if on {
				if err := client.Set(opt, "on"); err != nil {
					fmt.Fprintf(os.Stderr, "SET %s: %v\n", opt, err)
					os.Exit(1)
				}
			}
		}
		if *memLimit != "" {
			if err := client.Set("memory_limit", *memLimit); err != nil {
				fmt.Fprintf(os.Stderr, "SET memory_limit: %v\n", err)
				os.Exit(1)
			}
		}
		if *paraN != 0 {
			if err := client.Set("parallelism", strconv.Itoa(*paraN)); err != nil {
				fmt.Fprintf(os.Stderr, "SET parallelism: %v\n", err)
				os.Exit(1)
			}
		}
		if *traceN != 0 {
			v := strconv.Itoa(*traceN)
			if *traceN < 0 {
				v = "off"
			}
			if err := client.Set("trace_sample", v); err != nil {
				fmt.Fprintf(os.Stderr, "SET trace_sample: %v\n", err)
				os.Exit(1)
			}
		}
		if *stmtTO != 0 {
			v := stmtTO.String()
			if *stmtTO < 0 {
				v = "off"
			}
			if err := client.Set("statement_timeout", v); err != nil {
				fmt.Fprintf(os.Stderr, "SET statement_timeout: %v\n", err)
				os.Exit(1)
			}
		}
		if *spillDir != "" {
			fmt.Fprintln(os.Stderr, "-spill-dir applies to the embedded engine; start permd with -spill-dir instead")
		}
		run = func(text string) (*perm.Result, int, string, error) {
			res, n, err := client.Exec(strings.TrimSuffix(strings.TrimSpace(text), ";"))
			return res, n, "OK", err
		}
	} else {
		limit := int64(0)
		if *memLimit != "" {
			n, err := mem.ParseSize(*memLimit)
			if err != nil {
				fmt.Fprintln(os.Stderr, "-memory-limit:", err)
				os.Exit(1)
			}
			limit = n
		}
		db = perm.NewDatabaseWithOptions(perm.Options{
			FlattenSetOps:     *flatten,
			DisableOptimizer:  *noOpt,
			DisableVectorized: *noVec,
			DisableQueryCache: *noCache,
			MemoryLimit:       limit,
			SpillDir:          *spillDir,
			Parallelism:       *paraN,
			TraceSample:       *traceN,
			StatementTimeout:  *stmtTO,
		})
		if *loadSF > 0 {
			fmt.Fprintf(os.Stderr, "loading TPC-H at SF %g ...\n", *loadSF)
			tpch.MustLoad(db, *loadSF, 42)
		}
		sess := session.New(db)
		run = func(text string) (*perm.Result, int, string, error) {
			out, err := sess.Run(text)
			if err != nil {
				return nil, 0, "", err
			}
			return out.Result, out.Affected, out.Tag, nil
		}
	}

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := runStatement(run, string(data), *timing); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("perm shell — SELECT PROVENANCE computes Why-provenance; \\q quits")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "perm> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if done := metaCommand(db, run, trimmed, *timing); done {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			stmt := buf.String()
			buf.Reset()
			prompt = "perm> "
			if err := runStatement(run, stmt, *timing); err != nil {
				fmt.Println("ERROR:", err)
			}
			continue
		}
		if buf.Len() > 0 {
			prompt = "   -> "
		}
	}
}

// metaCommand handles backslash commands; returns true to quit. db is
// nil in remote mode, where engine-side meta commands are unavailable.
func metaCommand(db *perm.Database, run runner, cmd string, timing bool) bool {
	switch {
	case cmd == "\\q":
		return true
	case cmd == "\\d":
		if db == nil {
			fmt.Println("\\d is not available in remote mode")
			return false
		}
		fmt.Println("Tables:")
		for _, t := range db.Tables() {
			n, _ := db.TableRowCount(t)
			fmt.Printf("  %s (%d rows)\n", t, n)
		}
		fmt.Println("Views:")
		for _, v := range db.Views() {
			fmt.Printf("  %s\n", v)
		}
	case strings.HasPrefix(cmd, "\\tpch"):
		if db == nil {
			fmt.Println("\\tpch is not available in remote mode (start permd with -tpch)")
			return false
		}
		arg := strings.TrimSpace(strings.TrimPrefix(cmd, "\\tpch"))
		sf, err := strconv.ParseFloat(arg, 64)
		if err != nil || sf <= 0 {
			fmt.Println("usage: \\tpch <scale factor>, e.g. \\tpch 0.01")
			return false
		}
		start := time.Now()
		if _, err := tpch.Load(db, sf, 42); err != nil {
			fmt.Println("ERROR:", err)
			return false
		}
		fmt.Printf("loaded in %.2fs\n", time.Since(start).Seconds())
	case strings.HasPrefix(cmd, "\\i"):
		file := strings.TrimSpace(strings.TrimPrefix(cmd, "\\i"))
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Println("ERROR:", err)
			return false
		}
		if err := runStatement(run, string(data), timing); err != nil {
			fmt.Println("ERROR:", err)
		}
	default:
		fmt.Println("meta commands: \\d  \\tpch SF  \\i FILE  \\q")
	}
	return false
}

// runStatement executes one or more statements, printing query results.
func runStatement(run runner, text string, timing bool) error {
	trimmed := strings.TrimSpace(text)
	if trimmed == "" {
		return nil
	}
	start := time.Now()
	res, affected, tag, err := run(trimmed)
	if err != nil {
		return err
	}
	switch {
	case res != nil:
		fmt.Print(res)
		fmt.Printf("(%d rows", len(res.Rows))
		if n := res.NumProvColumns(); n > 0 {
			fmt.Printf(", %d provenance columns", n)
		}
		fmt.Print(")\n")
	case affected > 0:
		fmt.Printf("%d rows affected\n", affected)
	case tag != "" && tag != "OK":
		fmt.Println(tag)
	default:
		fmt.Println("ok")
	}
	if timing {
		fmt.Printf("time: %.4fs\n", time.Since(start).Seconds())
	}
	return nil
}
