// Command permcli is an interactive SQL shell for the Perm engine,
// including the SQL-PLE provenance extensions of the paper:
//
//	SELECT PROVENANCE ...;
//	EXPLAIN REWRITE SELECT PROVENANCE ...;   -- show the rewritten query q+
//	EXPLAIN SELECT ...;                      -- show the physical plan
//
// Meta commands: \d (list tables/views), \tpch SF (load TPC-H data),
// \i FILE (run a script), \q (quit).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"perm"
	"perm/internal/tpch"
)

func main() {
	var (
		script  = flag.String("f", "", "execute a SQL script file and exit")
		loadSF  = flag.Float64("tpch", 0, "preload TPC-H data at this scale factor")
		flatten = flag.Bool("flatten-setops", false, "use the Fig. 6(3a) set-operation rewrite variant")
		noOpt   = flag.Bool("no-optimizer", false, "disable the logical optimizer (flattening/pruning of rewritten queries)")
		noVec   = flag.Bool("no-vectorized", false, "disable the vectorized execution engine (run everything row-at-a-time)")
		timing  = flag.Bool("timing", true, "print execution times")
	)
	flag.Parse()

	db := perm.NewDatabaseWithOptions(perm.Options{FlattenSetOps: *flatten, DisableOptimizer: *noOpt, DisableVectorized: *noVec})
	if *loadSF > 0 {
		fmt.Fprintf(os.Stderr, "loading TPC-H at SF %g ...\n", *loadSF)
		tpch.MustLoad(db, *loadSF, 42)
	}

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := runStatement(db, string(data), *timing); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("perm shell — SELECT PROVENANCE computes Why-provenance; \\q quits")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "perm> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if done := metaCommand(db, trimmed, *timing); done {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			stmt := buf.String()
			buf.Reset()
			prompt = "perm> "
			if err := runStatement(db, stmt, *timing); err != nil {
				fmt.Println("ERROR:", err)
			}
			continue
		}
		if buf.Len() > 0 {
			prompt = "   -> "
		}
	}
}

// metaCommand handles backslash commands; returns true to quit.
func metaCommand(db *perm.Database, cmd string, timing bool) bool {
	switch {
	case cmd == "\\q":
		return true
	case cmd == "\\d":
		fmt.Println("Tables:")
		for _, t := range db.Tables() {
			n, _ := db.TableRowCount(t)
			fmt.Printf("  %s (%d rows)\n", t, n)
		}
		fmt.Println("Views:")
		for _, v := range db.Views() {
			fmt.Printf("  %s\n", v)
		}
	case strings.HasPrefix(cmd, "\\tpch"):
		arg := strings.TrimSpace(strings.TrimPrefix(cmd, "\\tpch"))
		sf, err := strconv.ParseFloat(arg, 64)
		if err != nil || sf <= 0 {
			fmt.Println("usage: \\tpch <scale factor>, e.g. \\tpch 0.01")
			return false
		}
		start := time.Now()
		if _, err := tpch.Load(db, sf, 42); err != nil {
			fmt.Println("ERROR:", err)
			return false
		}
		fmt.Printf("loaded in %.2fs\n", time.Since(start).Seconds())
	case strings.HasPrefix(cmd, "\\i"):
		file := strings.TrimSpace(strings.TrimPrefix(cmd, "\\i"))
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Println("ERROR:", err)
			return false
		}
		if err := runStatement(db, string(data), timing); err != nil {
			fmt.Println("ERROR:", err)
		}
	default:
		fmt.Println("meta commands: \\d  \\tpch SF  \\i FILE  \\q")
	}
	return false
}

// runStatement executes one or more statements, printing query results.
func runStatement(db *perm.Database, text string, timing bool) error {
	trimmed := strings.TrimSpace(text)
	if trimmed == "" {
		return nil
	}
	start := time.Now()
	upper := strings.ToUpper(trimmed)
	if strings.HasPrefix(upper, "SELECT") || strings.HasPrefix(upper, "EXPLAIN") ||
		strings.HasPrefix(upper, "(") {
		res, err := db.Query(strings.TrimSuffix(trimmed, ";"))
		if err != nil {
			return err
		}
		fmt.Print(res)
		fmt.Printf("(%d rows", len(res.Rows))
		if n := res.NumProvColumns(); n > 0 {
			fmt.Printf(", %d provenance columns", n)
		}
		fmt.Print(")\n")
	} else {
		n, err := db.Exec(trimmed)
		if err != nil {
			return err
		}
		if n > 0 {
			fmt.Printf("%d rows affected\n", n)
		} else {
			fmt.Println("ok")
		}
	}
	if timing {
		fmt.Printf("time: %.4fs\n", time.Since(start).Seconds())
	}
	return nil
}
