// Command permbench regenerates the paper's evaluation (Figures 9-15 of
// Glavic & Alonso, ICDE 2009) on the Go reimplementation.
//
// Usage:
//
//	permbench -fig all -sizes 0.001,0.01 -versions 10 -timeout 60s
//
// Figures:
//
//	9  — compilation-time overhead of the provenance rewriter on normal queries
//	10 — TPC-H execution time, normal vs provenance
//	11 — TPC-H result cardinality, normal vs provenance
//	12 — set-operation queries (numSetOp 1..5)
//	13 — SPJ queries (numSub 1..6)
//	14 — nested aggregation (agg 1..10)
//	15 — comparison with the Trio baseline (1000 selections)
//
// The paper's 10MB/100MB/1GB databases correspond to TPC-H scale factors
// 0.01/0.1/1; this in-memory engine defaults to smaller scale factors with
// the same relative shapes. Cells that exceed -timeout print "timeout"
// (the black cells of Figs. 10/11).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"perm"
	"perm/internal/synth"
	"perm/internal/tpch"
	"perm/internal/trio"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 9..15 or all")
		sizes    = flag.String("sizes", "0.001,0.01", "comma-separated TPC-H scale factors (paper: 0.01,0.1,1)")
		versions = flag.Int("versions", 10, "query versions per data point (paper: 100)")
		timeout  = flag.Duration("timeout", 120*time.Second, "per-cell time budget (paper: 12h)")
		seed     = flag.Uint64("seed", 42, "PRNG seed for data and parameters")
		flatten  = flag.Bool("flatten-setops", false, "use the Fig. 6(3a) set-operation rewrite variant")
	)
	flag.Parse()

	var sfs []float64
	for _, s := range strings.Split(*sizes, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad scale factor %q: %v\n", s, err)
			os.Exit(1)
		}
		sfs = append(sfs, f)
	}

	h := &harness{
		sfs:      sfs,
		versions: *versions,
		timeout:  *timeout,
		seed:     *seed,
		flatten:  *flatten,
		dbs:      map[float64]*perm.Database{},
	}

	figs := map[string]func(){
		"9": h.fig9, "10": h.fig10, "11": h.fig11, "12": h.fig12,
		"13": h.fig13, "14": h.fig14, "15": h.fig15,
	}
	if *fig == "all" {
		for _, k := range []string{"9", "10", "11", "12", "13", "14", "15"} {
			figs[k]()
		}
		return
	}
	run, ok := figs[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q (use 9..15 or all)\n", *fig)
		os.Exit(1)
	}
	run()
}

type harness struct {
	sfs      []float64
	versions int
	timeout  time.Duration
	seed     uint64
	flatten  bool
	dbs      map[float64]*perm.Database
}

// db returns a (cached) database loaded at the given scale factor.
func (h *harness) db(sf float64) *perm.Database {
	if db, ok := h.dbs[sf]; ok {
		return db
	}
	fmt.Fprintf(os.Stderr, "loading TPC-H SF %g ...\n", sf)
	db := perm.NewDatabaseWithOptions(perm.Options{FlattenSetOps: h.flatten})
	tpch.MustLoad(db, sf, h.seed)
	h.dbs[sf] = db
	return db
}

// cell is one measured table cell.
type cell struct {
	dur     time.Duration
	rows    float64
	timeout bool
	err     error
}

func (c cell) timeString() string {
	switch {
	case c.err != nil:
		return "error"
	case c.timeout:
		return "timeout"
	default:
		return fmt.Sprintf("%.4fs", c.dur.Seconds())
	}
}

func (c cell) rowString() string {
	switch {
	case c.err != nil:
		return "error"
	case c.timeout:
		return "timeout"
	default:
		return fmt.Sprintf("%.0f", c.rows)
	}
}

// measure runs a set of query instances under the harness timeout and
// returns the average duration and result cardinality.
func (h *harness) measure(db *perm.Database, queries []tpch.Query) cell {
	type outcome struct {
		dur  time.Duration
		rows int
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		var total time.Duration
		totalRows := 0
		for _, q := range queries {
			for _, s := range q.Setup {
				if _, err := db.Exec(s); err != nil {
					done <- outcome{err: err}
					return
				}
			}
			start := time.Now()
			res, err := db.Query(q.Text)
			total += time.Since(start)
			for _, s := range q.Teardown {
				db.Exec(s) //nolint:errcheck — teardown is best-effort
			}
			if err != nil {
				done <- outcome{err: err}
				return
			}
			totalRows += len(res.Rows)
		}
		done <- outcome{
			dur:  total / time.Duration(len(queries)),
			rows: totalRows / len(queries),
		}
	}()
	select {
	case o := <-done:
		return cell{dur: o.dur, rows: float64(o.rows), err: o.err}
	case <-time.After(h.timeout):
		return cell{timeout: true}
	}
}

// genVersions produces n parameterized instances of a TPC-H query.
func (h *harness) genVersions(number, n int, prov bool) []tpch.Query {
	r := tpch.NewRand(h.seed + uint64(number))
	out := make([]tpch.Query, 0, n)
	for i := 0; i < n; i++ {
		q := tpch.MustQGen(number, r)
		if prov {
			q = q.Provenance()
		}
		out = append(out, q)
	}
	return out
}

func header(title string, cols []string) {
	fmt.Printf("\n=== %s ===\n", title)
	fmt.Printf("%-10s", "Query")
	for _, c := range cols {
		fmt.Printf(" %14s", c)
	}
	fmt.Println()
}

// fig9 measures the compilation-time overhead the provenance rewriter adds
// to NORMAL queries (parse+analyze+rewrite-stage vs parse+analyze), per
// TPC-H query, and relates it to execution time per database size.
func (h *harness) fig9() {
	cols := []string{"absolute"}
	for _, sf := range h.sfs {
		cols = append(cols, fmt.Sprintf("rel SF=%g", sf))
	}
	header("Fig. 9: compilation-time overhead for normal queries", cols)
	db := h.db(h.sfs[0])
	const reps = 200
	for _, n := range tpch.SupportedQueries() {
		queries := h.genVersions(n, h.versions, false)
		// Setup views once so compilation sees them.
		for _, q := range queries {
			for _, s := range q.Setup {
				db.Exec(s) //nolint:errcheck
			}
		}
		var base, withRewrite time.Duration
		for _, q := range queries {
			start := time.Now()
			for i := 0; i < reps; i++ {
				if err := db.CompileOnly(q.Text); err != nil {
					fmt.Printf("Q%-9d %14s\n", n, "error")
					continue
				}
			}
			base += time.Since(start)
			start = time.Now()
			for i := 0; i < reps; i++ {
				if err := db.CompileWithRewrite(q.Text); err != nil {
					break
				}
			}
			withRewrite += time.Since(start)
		}
		for _, q := range queries {
			for _, s := range q.Teardown {
				db.Exec(s) //nolint:errcheck
			}
		}
		overhead := (withRewrite - base) / time.Duration(reps*len(queries))
		if overhead < 0 {
			overhead = 0
		}
		fmt.Printf("Q%-9d %13.6fs", n, overhead.Seconds())
		for _, sf := range h.sfs {
			exec := h.measure(h.db(sf), h.genVersions(n, 1, false))
			if exec.err != nil || exec.timeout || exec.dur == 0 {
				fmt.Printf(" %14s", "-")
				continue
			}
			fmt.Printf(" %13.2f%%", 100*overhead.Seconds()/exec.dur.Seconds())
		}
		fmt.Println()
	}
}

func (h *harness) fig10() {
	var cols []string
	for _, sf := range h.sfs {
		cols = append(cols, fmt.Sprintf("norm SF=%g", sf), fmt.Sprintf("prov SF=%g", sf))
	}
	header("Fig. 10: TPC-H execution time, normal vs provenance", cols)
	for _, n := range tpch.SupportedQueries() {
		fmt.Printf("Q%-9d", n)
		for _, sf := range h.sfs {
			db := h.db(sf)
			norm := h.measure(db, h.genVersions(n, h.versions, false))
			prov := h.measure(db, h.genVersions(n, h.versions, true))
			fmt.Printf(" %14s %14s", norm.timeString(), prov.timeString())
		}
		fmt.Println()
	}
}

func (h *harness) fig11() {
	var cols []string
	for _, sf := range h.sfs {
		cols = append(cols, fmt.Sprintf("norm SF=%g", sf), fmt.Sprintf("prov SF=%g", sf))
	}
	header("Fig. 11: TPC-H number of result tuples", cols)
	for _, n := range tpch.SupportedQueries() {
		fmt.Printf("Q%-9d", n)
		for _, sf := range h.sfs {
			db := h.db(sf)
			norm := h.measure(db, h.genVersions(n, h.versions, false))
			prov := h.measure(db, h.genVersions(n, h.versions, true))
			fmt.Printf(" %14s %14s", norm.rowString(), prov.rowString())
		}
		fmt.Println()
	}
}

// synthCell measures a set of ad-hoc query strings.
func (h *harness) synthCell(db *perm.Database, queries []string) cell {
	qs := make([]tpch.Query, len(queries))
	for i, q := range queries {
		qs[i] = tpch.Query{Text: q}
	}
	return h.measure(db, qs)
}

func injectProv(q string) string {
	idx := strings.Index(strings.ToUpper(q), "SELECT")
	return q[:idx+6] + " PROVENANCE" + q[idx+6:]
}

func (h *harness) fig12() {
	var cols []string
	for _, sf := range h.sfs {
		cols = append(cols, fmt.Sprintf("norm SF=%g", sf), fmt.Sprintf("prov SF=%g", sf))
	}
	header("Fig. 12: set-operation queries (union/intersect trees)", cols)
	for numSetOp := 1; numSetOp <= 5; numSetOp++ {
		fmt.Printf("n=%-8d", numSetOp)
		for _, sf := range h.sfs {
			db := h.db(sf)
			maxKey := mustCount(db, "part")
			r := tpch.NewRand(h.seed + uint64(numSetOp))
			var norm, prov []string
			for i := 0; i < h.versions; i++ {
				q := synth.SetOpQuery(r, numSetOp, maxKey)
				norm = append(norm, q)
				prov = append(prov, injectProv(q))
			}
			fmt.Printf(" %14s %14s",
				h.synthCell(db, norm).timeString(), h.synthCell(db, prov).timeString())
		}
		fmt.Println()
	}
}

func (h *harness) fig13() {
	var cols []string
	for _, sf := range h.sfs {
		cols = append(cols, fmt.Sprintf("norm SF=%g", sf), fmt.Sprintf("prov SF=%g", sf))
	}
	header("Fig. 13: SPJ queries (random join trees)", cols)
	for numSub := 1; numSub <= 6; numSub++ {
		fmt.Printf("n=%-8d", numSub)
		for _, sf := range h.sfs {
			db := h.db(sf)
			maxKey := mustCount(db, "part")
			r := tpch.NewRand(h.seed + uint64(numSub))
			var norm, prov []string
			for i := 0; i < h.versions; i++ {
				q := synth.SPJQuery(r, numSub, maxKey)
				norm = append(norm, q)
				prov = append(prov, injectProv(q))
			}
			fmt.Printf(" %14s %14s",
				h.synthCell(db, norm).timeString(), h.synthCell(db, prov).timeString())
		}
		fmt.Println()
	}
}

func (h *harness) fig14() {
	var cols []string
	for _, sf := range h.sfs {
		cols = append(cols, fmt.Sprintf("norm SF=%g", sf), fmt.Sprintf("prov SF=%g", sf))
	}
	header("Fig. 14: nested aggregation chains", cols)
	for agg := 1; agg <= 10; agg++ {
		fmt.Printf("agg=%-6d", agg)
		for _, sf := range h.sfs {
			db := h.db(sf)
			partCount := mustCount(db, "part")
			q := synth.AggChainQuery(agg, partCount)
			fmt.Printf(" %14s %14s",
				h.synthCell(db, []string{q}).timeString(),
				h.synthCell(db, []string{injectProv(q)}).timeString())
		}
		fmt.Println()
	}
}

func (h *harness) fig15() {
	header("Fig. 15: comparison with Trio (1000 selections on supplier)",
		[]string{"Trio", "Perm"})
	for _, sf := range h.sfs {
		db := h.db(sf)
		maxKey := mustCount(db, "supplier")
		r := tpch.NewRand(h.seed)
		const queries = 1000

		// Build the workload once.
		selections := make([]string, queries)
		for i := range selections {
			selections[i] = synth.SupplierSelection(r, maxKey)
		}

		// Trio: derive eagerly (not measured, per the paper: "the
		// provenance was computed beforehand"), then measure tracing.
		sys := trio.New(db)
		names := make([]string, queries)
		deriveOK := true
		for i, q := range selections {
			names[i] = sys.FreshName()
			if err := sys.Derive(names[i], q); err != nil {
				fmt.Fprintf(os.Stderr, "trio derive failed: %v\n", err)
				deriveOK = false
				break
			}
		}
		trioStr := "error"
		if deriveOK {
			start := time.Now()
			for _, name := range names {
				if _, err := sys.TraceAll(name); err != nil {
					trioStr = "error"
					break
				}
			}
			trioStr = fmt.Sprintf("%.3fs", time.Since(start).Seconds())
		}
		for _, name := range names {
			if name != "" {
				sys.Drop(name) //nolint:errcheck — cleanup is best-effort
			}
		}

		// Perm: lazy provenance computation of the same selections.
		start := time.Now()
		permErr := false
		for _, q := range selections {
			if _, err := db.Query(injectProv(q)); err != nil {
				permErr = true
				break
			}
		}
		permStr := fmt.Sprintf("%.3fs", time.Since(start).Seconds())
		if permErr {
			permStr = "error"
		}
		fmt.Printf("SF=%-7g %14s %14s\n", sf, trioStr, permStr)
	}
}

func mustCount(db *perm.Database, table string) int {
	n, err := db.TableRowCount(table)
	if err != nil {
		panic(err)
	}
	return n
}
