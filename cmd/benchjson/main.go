// Command benchjson runs the Fig. 10/13/14 benchmark queries under
// paired engine configurations — vectorized execution on/off, the
// logical optimizer on/off, the memory governor spilling (tiny budget)
// vs fully in-memory, and morsel-driven parallel execution vs the
// serial plan — and writes best-of-N wall times to a JSON file. The
// output is the machine-readable perf trajectory checked in per PR
// (BENCH_PR<N>.json), so future changes can diff against an explicit
// baseline instead of prose in CHANGES.md.
//
// Alongside the timings, the report embeds a post-run snapshot of the
// engine metrics (memory grants/denials, morsel dispatch, per-config
// cache traffic and spill volume) and the five worst cardinality
// misestimates the workload produced (per-fingerprint max q-error with
// the offending operator), so a perf diff can also see how the work was
// done — and where the planner's estimates drifted — not just how long
// it took.
//
// Usage:
//
//	go run ./cmd/benchjson -sf 0.002 -runs 10 -parallelism 4 -out BENCH_PR10.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"perm"
	"perm/internal/mem"
	"perm/internal/obs"
	"perm/internal/synth"
	"perm/internal/tpch"
)

// Entry is one query's paired measurements (nanoseconds, best of -runs).
type Entry struct {
	Name       string  `json:"name"`
	Rows       int     `json:"rows"`
	BaseNS     int64   `json:"base_ns"`     // all optimizations on, serial plan (workers=1)
	VecOffNS   int64   `json:"vec_off_ns"`  // vectorized execution disabled
	OptOffNS   int64   `json:"opt_off_ns"`  // logical optimizer disabled
	SpillNS    int64   `json:"spill_ns"`    // tiny memory budget (forced spilling)
	ParNS      int64   `json:"par_ns"`      // parallel plan at -parallelism workers
	VecSpeedup float64 `json:"vec_speedup"` // vec_off / base
	OptSpeedup float64 `json:"opt_speedup"` // opt_off / base
	SpillCost  float64 `json:"spill_cost"`  // spill / base (spill-to-disk overhead)
	ParSpeedup float64 `json:"par_speedup"` // base / par (parallel speedup vs workers=1)
}

// Report is the file layout.
type Report struct {
	ScaleFactor float64         `json:"scale_factor"`
	Runs        int             `json:"runs"`
	Seed        uint64          `json:"seed"`
	SpillBudget string          `json:"spill_budget"` // the spill config's session budget
	Parallelism int             `json:"parallelism"`  // the parallel config's worker count
	NumCPU      int             `json:"num_cpu"`      // cores available to the measurement
	GoVersion   string          `json:"go_version"`
	Queries     []Entry         `json:"queries"`
	Metrics     MetricsSnapshot `json:"metrics"`     // post-run engine counters
	TopQErrors  []QErrEntry     `json:"top_qerrors"` // 5 worst misestimates, worst first
}

// QErrEntry is one fingerprint's worst cardinality misestimate, as
// accumulated by the base config's estimate store from one untimed
// EXPLAIN ANALYZE execution per benchmark query.
type QErrEntry struct {
	Fingerprint string  `json:"fingerprint"`
	Query       string  `json:"query"`
	MaxQErr     float64 `json:"max_qerr"`
	WorstOp     string  `json:"worst_op"`
	WorstEst    float64 `json:"worst_est"`
	WorstAct    int64   `json:"worst_act"`
}

// MetricsSnapshot is the post-run engine observability state: the
// process-global event counters and the per-config cache/memory stats.
type MetricsSnapshot struct {
	MemGrants         int64                    `json:"mem_grants_total"`
	MemDenials        int64                    `json:"mem_denials_total"`
	MorselsDispatched int64                    `json:"parallel_morsels_total"`
	ParallelPlans     int64                    `json:"parallel_plans_total"`
	ParallelWorkers   int64                    `json:"parallel_workers_total"`
	SerialFallbacks   int64                    `json:"parallel_serial_fallbacks_total"`
	Configs           map[string]ConfigMetrics `json:"configs"`
}

// ConfigMetrics is one benchmark configuration's cache and memory
// counters after the full workload ran.
type ConfigMetrics struct {
	CacheHits    uint64 `json:"qcache_hits"`
	CacheMisses  uint64 `json:"qcache_misses"`
	PeakMemory   int64  `json:"mem_peak_bytes"`
	SpilledBytes int64  `json:"mem_spilled_bytes"`
	SpillEvents  uint64 `json:"mem_spill_events"`
}

// snapshotMetrics collects the post-run counters across all configs.
func snapshotMetrics(configs []config) MetricsSnapshot {
	snap := MetricsSnapshot{
		MemGrants:         obs.MemGrants.Load(),
		MemDenials:        obs.MemDenials.Load(),
		MorselsDispatched: obs.MorselsDispatched.Load(),
		ParallelPlans:     obs.ParallelPlans.Load(),
		ParallelWorkers:   obs.ParallelWorkers.Load(),
		SerialFallbacks:   obs.SerialFallbacks.Load(),
		Configs:           make(map[string]ConfigMetrics, len(configs)),
	}
	for _, c := range configs {
		cs := c.db.QueryCacheStats()
		qs := c.db.QueryStats()
		snap.Configs[c.name] = ConfigMetrics{
			CacheHits:    cs.Hits,
			CacheMisses:  cs.Misses,
			PeakMemory:   qs.PeakMemory,
			SpilledBytes: qs.BytesSpilled,
			SpillEvents:  qs.SpillEvents,
		}
	}
	return snap
}

type config struct {
	name string
	db   *perm.Database
}

// bestOfPaired measures one query across all configs with interleaved
// runs — config A, B, C, then A, B, C again — so machine-load drift
// during the measurement hits every config equally and the reported
// ratios stay honest on a shared box. Returns the per-config best and
// the default config's row count.
func bestOfPaired(configs []config, q tpch.Query, runs int) ([]time.Duration, int, error) {
	for _, c := range configs {
		for _, s := range q.Setup {
			if _, err := c.db.Exec(s); err != nil {
				return nil, 0, err
			}
		}
	}
	defer func() {
		for _, c := range configs {
			for _, s := range q.Teardown {
				c.db.Exec(s) //nolint:errcheck — cleanup
			}
		}
	}()
	best := make([]time.Duration, len(configs))
	for i := range best {
		best[i] = time.Duration(1 << 62)
	}
	rows := 0
	for i := 0; i < runs; i++ {
		for ci, c := range configs {
			t0 := time.Now()
			res, err := c.db.Query(q.Text)
			if err != nil {
				return nil, 0, fmt.Errorf("[%s] %v\n%s", c.name, err, q.Text)
			}
			if d := time.Since(t0); d < best[ci] {
				best[ci] = d
			}
			if ci == 0 {
				rows = len(res.Rows)
			}
		}
	}
	// One untimed instrumented run on the base config feeds the
	// per-fingerprint q-error store the report's top_qerrors come from
	// (plain timed runs are never instrumented).
	if _, err := configs[0].db.ExplainAnalyzeSQL(q.Text); err != nil {
		return nil, 0, fmt.Errorf("[%s] analyze: %v", configs[0].name, err)
	}
	return best, rows, nil
}

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor")
	runs := flag.Int("runs", 10, "runs per query per config (best is kept)")
	seed := flag.Uint64("seed", 42, "data generator seed")
	out := flag.String("out", "BENCH_PR10.json", "output file")
	budget := flag.String("spill-budget", "4MiB", "session memory budget of the spill config")
	paraN := flag.Int("parallelism", 4, "worker count of the parallel config")
	flag.Parse()

	spillLimit, err := mem.ParseSize(*budget)
	if err != nil {
		fatal(err)
	}
	// Every serial config pins Parallelism to 1 explicitly so the
	// ablation ratios stay serial-vs-serial regardless of the host's
	// core count or $PERM_PARALLELISM; only the parallel config fans out.
	configs := []config{
		{"base", perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1, Parallelism: 1})},
		{"vec-off", perm.NewDatabaseWithOptions(perm.Options{DisableVectorized: true, MemoryLimit: -1, Parallelism: 1})},
		{"opt-off", perm.NewDatabaseWithOptions(perm.Options{DisableOptimizer: true, MemoryLimit: -1, Parallelism: 1})},
		{"spill", perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: spillLimit, Parallelism: 1})},
		{"parallel", perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1, Parallelism: *paraN})},
	}
	for _, c := range configs {
		tpch.MustLoad(c.db, *sf, *seed)
	}
	maxKey, err := configs[0].db.TableRowCount("part")
	if err != nil {
		fatal(err)
	}

	// The workload: Fig. 10 TPC-H queries (norm + prov), Fig. 13 SPJ
	// chains and Fig. 14 aggregation chains (prov), matching the ablation
	// benchmarks.
	type job struct {
		name string
		q    tpch.Query
	}
	var jobs []job
	rng := tpch.NewRand(7)
	for _, n := range []int{1, 3, 5, 6, 10, 12, 14, 15} {
		q := tpch.MustQGen(n, rng)
		jobs = append(jobs, job{fmt.Sprintf("Q%d/norm", n), q})
		jobs = append(jobs, job{fmt.Sprintf("Q%d/prov", n), q.Provenance()})
	}
	for _, numSub := range []int{2, 4, 6} {
		spjRng := tpch.NewRand(uint64(numSub))
		q := synth.SPJQuery(spjRng, numSub, maxKey)
		jobs = append(jobs, job{fmt.Sprintf("spj%d/prov", numSub), tpch.Query{Text: injectProv(q)}})
	}
	for _, agg := range []int{3, 6, 10} {
		q := synth.AggChainQuery(agg, maxKey)
		jobs = append(jobs, job{fmt.Sprintf("aggchain%d/prov", agg), tpch.Query{Text: injectProv(q)}})
	}

	rep := Report{ScaleFactor: *sf, Runs: *runs, Seed: *seed, SpillBudget: *budget,
		Parallelism: *paraN, NumCPU: runtime.NumCPU(), GoVersion: runtime.Version()}
	for _, j := range jobs {
		best, rows, err := bestOfPaired(configs, j.q, *runs)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", j.name, err))
		}
		ns := [5]int64{best[0].Nanoseconds(), best[1].Nanoseconds(), best[2].Nanoseconds(),
			best[3].Nanoseconds(), best[4].Nanoseconds()}
		e := Entry{
			Name: j.name, Rows: rows,
			BaseNS: ns[0], VecOffNS: ns[1], OptOffNS: ns[2], SpillNS: ns[3], ParNS: ns[4],
			VecSpeedup: round2(float64(ns[1]) / float64(ns[0])),
			OptSpeedup: round2(float64(ns[2]) / float64(ns[0])),
			SpillCost:  round2(float64(ns[3]) / float64(ns[0])),
			ParSpeedup: round2(float64(ns[0]) / float64(ns[4])),
		}
		rep.Queries = append(rep.Queries, e)
		fmt.Printf("%-16s base=%-12v vec-off=%-12v (%.2fx)  opt-off=%-12v (%.2fx)  spill=%-12v (%.2fx)  par=%-12v (%.2fx)\n",
			j.name, time.Duration(ns[0]), time.Duration(ns[1]), e.VecSpeedup,
			time.Duration(ns[2]), e.OptSpeedup, time.Duration(ns[3]), e.SpillCost,
			time.Duration(ns[4]), e.ParSpeedup)
	}

	rep.Metrics = snapshotMetrics(configs)
	for _, r := range configs[0].db.TopMisestimates(5) {
		rep.TopQErrors = append(rep.TopQErrors, QErrEntry{
			Fingerprint: r.Fingerprint,
			Query:       r.Query,
			MaxQErr:     round2(r.MaxQErr),
			WorstOp:     r.WorstOp,
			WorstEst:    r.WorstEst,
			WorstAct:    r.WorstAct,
		})
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }

// injectProv inserts PROVENANCE after the first SELECT keyword.
func injectProv(q string) string {
	return tpch.Query{Text: q}.Provenance().Text
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
