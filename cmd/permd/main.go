// Command permd serves a Perm database over TCP, speaking the
// length-prefixed wire protocol of perm/internal/wire (length-prefixed
// JSON frames; ops QUERY / EXEC / PREPARE / EXECUTE / EXPLAIN /
// EXPLAIN_ANALYZE / SET / PING). Every connection gets its own session
// (options, prepared statements); all sessions share the catalog, the
// data and the compiled-query cache. A worker pool bounds how many
// statements execute concurrently; SIGINT/SIGTERM trigger a graceful
// drain. -metrics-addr adds a telemetry listener (/metrics, /healthz,
// /debug/pprof) and -slow-query-ms a structured slow-query log.
//
//	permd -addr :5433 -workers 8 -tpch 0.01
//	permd -init schema.sql
//	permd -metrics-addr 127.0.0.1:9090 -slow-query-ms 100
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"perm"
	"perm/internal/mem"
	"perm/internal/obs"
	"perm/internal/server"
	"perm/internal/spill"
	"perm/internal/tpch"
)

// streamEvents tails the engine event log to w as one JSON object per
// line. The log is a bounded ring with monotone sequence numbers, so the
// streamer polls Since(lastSeq) — events recorded between polls are
// picked up in order, and a full ring turnover at most drops the
// overwritten middle, never reorders.
func streamEvents(w io.Writer, every time.Duration) {
	enc := json.NewEncoder(w)
	var last int64
	for {
		for _, e := range obs.Events.Since(last) {
			last = e.Seq
			enc.Encode(e) //nolint:errcheck — stderr never rejects
		}
		time.Sleep(every)
	}
}

// serveTelemetry exposes the observability endpoints on their own
// listener (kept off the query port so scrapes never compete with the
// wire protocol): /metrics in the Prometheus text format, /healthz for
// liveness/readiness, and the standard /debug/pprof profiles.
func serveTelemetry(addr string, db *perm.Database, srv *server.Server) {
	reg := db.Metrics()
	srv.RegisterMetrics(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck — client went away
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if srv.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
	}
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:5433", "listen address")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrently executing statements")
		loadSF   = flag.Float64("tpch", 0, "preload TPC-H data at this scale factor")
		initSQL  = flag.String("init", "", "run a SQL script before serving")
		flatten  = flag.Bool("flatten-setops", false, "use the Fig. 6(3a) set-operation rewrite variant")
		noOpt    = flag.Bool("no-optimizer", false, "disable the logical optimizer")
		noVec    = flag.Bool("no-vectorized", false, "disable the vectorized execution engine")
		noCache  = flag.Bool("no-query-cache", false, "disable the shared compiled-query cache")
		cacheN   = flag.Int("query-cache-size", 0, "compiled-query cache capacity (0 = default 256)")
		memLimit = flag.String("memory-limit", "", "per-session memory budget, e.g. 64MiB (sessions spill to disk past it; default $PERM_MEMORY_LIMIT or unlimited)")
		totalMem = flag.String("total-memory", "", "engine-wide memory cap across all sessions, e.g. 1GiB (default unlimited)")
		spillDir = flag.String("spill-dir", "", "directory for spill files (default $PERM_SPILL_DIR or the system temp dir)")
		paraN    = flag.Int("parallelism", 0, "intra-query worker count (0 = $PERM_PARALLELISM or all cores, 1 = serial)")
		traceN   = flag.Int("trace-sample", 0, "record a lifecycle trace for every Nth query into perm_traces (0 = $PERM_TRACE_SAMPLE or off, negative = off)")
		stmtTO   = flag.Duration("statement-timeout", 0, "cancel statements running longer than this (0 = $PERM_STATEMENT_TIMEOUT or none, negative = none)")
		maxConns = flag.Int("max-connections", 0, "max concurrently open client connections (0 = unlimited; excess connections get a retryable error)")
		queueN   = flag.Int("queue-depth", 0, "statements allowed to queue for a worker slot before load shedding (0 = twice the worker count)")
		idleTO   = flag.Duration("idle-timeout", 0, "close connections idle longer than this between requests (0 = never)")
		grace    = flag.Duration("grace", 10*time.Second, "graceful-shutdown drain timeout")
		metrics  = flag.String("metrics-addr", "", "serve /metrics (Prometheus), /healthz and /debug/pprof on this address (empty = disabled)")
		slowMS   = flag.Int("slow-query-ms", -1, "log statements slower than this many milliseconds as JSON lines on stderr (0 = every statement, negative = disabled)")
		eventLog = flag.Bool("event-log", false, "stream engine events (plan flips, spill onset, timeouts, cancellations, shedding, panics) as JSON lines on stderr")
	)
	flag.Parse()

	sessionLimit := int64(0)
	if *memLimit != "" {
		n, err := mem.ParseSize(*memLimit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "-memory-limit:", err)
			os.Exit(1)
		}
		sessionLimit = n
	}
	// Sweep spill files a crashed predecessor may have left behind (live
	// files are unlinked at creation, so only failed unlinks linger).
	if n := spill.Cleanup(*spillDir); n > 0 {
		fmt.Fprintf(os.Stderr, "removed %d stale spill files\n", n)
	}

	db := perm.NewDatabaseWithOptions(perm.Options{
		FlattenSetOps:     *flatten,
		DisableOptimizer:  *noOpt,
		DisableVectorized: *noVec,
		DisableQueryCache: *noCache,
		QueryCacheSize:    *cacheN,
		MemoryLimit:       sessionLimit,
		SpillDir:          *spillDir,
		Parallelism:       *paraN,
		TraceSample:       *traceN,
		StatementTimeout:  *stmtTO,
	})
	if *totalMem != "" {
		n, err := mem.ParseSize(*totalMem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "-total-memory:", err)
			os.Exit(1)
		}
		db.SetEngineMemoryLimit(n)
	}
	if *loadSF > 0 {
		fmt.Fprintf(os.Stderr, "loading TPC-H at SF %g ...\n", *loadSF)
		tpch.MustLoad(db, *loadSF, 42)
	}
	if *initSQL != "" {
		data, err := os.ReadFile(*initSQL)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if _, err := db.Exec(string(data)); err != nil {
			fmt.Fprintf(os.Stderr, "init script: %v\n", err)
			os.Exit(1)
		}
	}

	srv := server.New(db, *workers)
	srv.SetQueueDepth(*queueN)
	srv.SetMaxConnections(*maxConns)
	srv.SetIdleTimeout(*idleTO)
	if *slowMS >= 0 {
		srv.SetSlowQueryLog(time.Duration(*slowMS)*time.Millisecond, os.Stderr)
	}
	if *metrics != "" {
		go serveTelemetry(*metrics, db, srv)
	}
	if *eventLog {
		go streamEvents(os.Stderr, 250*time.Millisecond)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	fmt.Fprintf(os.Stderr, "permd listening on %s (%d workers)\n", *addr, srv.Workers())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "received %s, draining ...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
			os.Exit(1)
		}
		st := db.QueryCacheStats()
		qs := db.QueryStats()
		spill.Cleanup(*spillDir)
		fmt.Fprintf(os.Stderr, "bye (query cache: %d hits, %d misses, %d invalidations; memory peak %d B, spilled %d B in %d events)\n",
			st.Hits, st.Misses, st.Invalidations, qs.PeakMemory, qs.BytesSpilled, qs.SpillEvents)
	}
}
