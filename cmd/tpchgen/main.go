// Command tpchgen generates TPC-H data files in dbgen's pipe-separated
// .tbl format, using the deterministic generator of internal/tpch.
//
// Usage:
//
//	tpchgen -sf 0.01 -o /tmp/tpch
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"perm/internal/tpch"
	"perm/internal/types"
)

func main() {
	var (
		sf   = flag.Float64("sf", 0.01, "scale factor (1.0 ≈ dbgen's 1GB)")
		out  = flag.String("o", ".", "output directory")
		seed = flag.Uint64("seed", 42, "PRNG seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	d := tpch.Generate(*sf, *seed)
	for _, name := range tpch.TableNames() {
		path := filepath.Join(*out, name+".tbl")
		if err := writeTable(path, d.Tables[name]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %8d rows -> %s\n", name, len(d.Tables[name]), path)
	}
}

func writeTable(path string, rows []types.Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				w.WriteByte('|')
			}
			w.WriteString(v.String())
		}
		w.WriteString("|\n")
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
