package perm_test

import (
	"strings"
	"testing"

	"perm"
	"perm/internal/synth"
	"perm/internal/tpch"
)

// vecPair builds two databases over the same DDL/DML script, one with
// the vectorized engine enabled (the default) and one without.
func vecPair(t testing.TB, script string) (on, off *perm.Database) {
	t.Helper()
	on = perm.NewDatabase()
	off = perm.NewDatabaseWithOptions(perm.Options{DisableVectorized: true})
	on.MustExec(script)
	off.MustExec(script)
	return on, off
}

// vecFixture extends the optimizer-transparency fixture with the
// date-typed table the SQL-logic corpus uses.
const vecFixture = transparencyFixture + `
	CREATE TABLE events (id int, d date);
	INSERT INTO events VALUES (1, '1995-01-15'), (2, '1995-06-17'), (3, '1996-03-01');
	CREATE VIEW big_pairs AS SELECT a, b FROM pairs WHERE b >= 20;
`

// logicCorpus mirrors the SQL-logic test corpus (sql_logic_test.go):
// every query shape the row engine is pinned on, re-run here with
// vectorization on vs off. Shapes the vectorized engine cannot lower
// (CASE, casts, functions, sublinks, set ops, sorts, outer joins...)
// exercise the per-subtree fallback path.
var logicCorpus = []string{
	// Selection, projection, scalar expressions.
	`SELECT n FROM nums WHERE n < 3`,
	`SELECT * FROM pairs WHERE a = 1`,
	`SELECT n * 10 + 1 FROM nums WHERE n = 2`,
	`SELECT n AS num FROM nums WHERE n IS NULL`,
	`SELECT 1 + 2, 'x'`,
	`SELECT n FROM nums WHERE n > 0`,
	`SELECT DISTINCT a FROM pairs`,
	`SELECT label FROM nums WHERE n IS NULL`,
	`SELECT n FROM nums WHERE label IS NOT NULL AND n IS NOT NULL`,
	`SELECT count(*) FROM nums WHERE n IS DISTINCT FROM 1`,
	`SELECT n FROM nums WHERE n IN (1, 3, 99)`,
	`SELECT n FROM nums WHERE n NOT IN (1, 3)`,
	`SELECT n FROM nums WHERE n BETWEEN 2 AND 3`,
	`SELECT label FROM nums WHERE label LIKE 't%'`,
	`SELECT label FROM nums WHERE label LIKE '_n_'`,
	`SELECT CASE WHEN n < 3 THEN 'lo' ELSE 'hi' END FROM nums WHERE n IS NOT NULL`,
	`SELECT CAST(n AS text) FROM nums WHERE n = 1`,
	`SELECT coalesce(n, 0) FROM nums`,
	`SELECT upper(label), length(label), substring(label, 1, 2) FROM nums WHERE n = 3`,
	`SELECT label || '!' FROM nums WHERE n = 1`,
	// Joins of every flavour.
	`SELECT n, b FROM nums, pairs WHERE n = a`,
	`SELECT n, b FROM nums JOIN pairs ON n = a`,
	`SELECT n, b FROM nums LEFT JOIN pairs ON n = a WHERE n IS NOT NULL`,
	`SELECT n, b FROM nums RIGHT JOIN pairs ON n = a`,
	`SELECT n, b FROM nums FULL JOIN pairs ON n = a`,
	`SELECT count(*) FROM nums CROSS JOIN pairs`,
	`SELECT n, a FROM nums JOIN pairs ON n < a WHERE n = 4`,
	`SELECT p1.a, p2.b FROM pairs AS p1, pairs AS p2 WHERE p1.b = p2.b AND p1.a = 5`,
	`SELECT count(*) FROM nums, pairs, empty_t`,
	// Aggregation.
	`SELECT count(*), count(n), sum(n), min(n), max(n) FROM nums`,
	`SELECT avg(b) FROM pairs`,
	`SELECT a, count(*), sum(b) FROM pairs GROUP BY a`,
	`SELECT n % 2, count(*) FROM nums WHERE n IS NOT NULL GROUP BY n % 2`,
	`SELECT a FROM pairs GROUP BY a HAVING count(*) > 1`,
	`SELECT sum(b) FROM pairs HAVING count(*) > 100`,
	`SELECT count(*), sum(x), min(x) FROM empty_t`,
	`SELECT x, count(*) FROM empty_t GROUP BY x`,
	`SELECT n, count(*) FROM nums GROUP BY n`,
	`SELECT count(DISTINCT a) FROM pairs`,
	`SELECT sum(DISTINCT a) FROM pairs`,
	`SELECT sum(b) / count(*) FROM pairs`,
	`SELECT n, count(b) FROM nums JOIN pairs ON n = a GROUP BY n`,
	`SELECT min(label), max(label) FROM nums`,
	// Set operations.
	`SELECT a FROM pairs UNION SELECT n FROM nums WHERE n <= 2`,
	`SELECT a FROM pairs UNION ALL SELECT n FROM nums WHERE n <= 2`,
	`SELECT a FROM pairs INTERSECT SELECT n FROM nums`,
	`SELECT a FROM pairs EXCEPT SELECT n FROM nums`,
	// Sublinks.
	`SELECT n FROM nums WHERE n = (SELECT min(a) FROM pairs)`,
	`SELECT n FROM nums WHERE n IN (SELECT a FROM pairs)`,
	`SELECT a FROM pairs WHERE a NOT IN (SELECT n FROM nums)`,
	`SELECT n FROM nums WHERE n > ANY (SELECT a FROM pairs WHERE a < 3)`,
	`SELECT n FROM nums WHERE n <= ALL (SELECT a FROM pairs)`,
	// Ordering and limits.
	`SELECT n FROM nums ORDER BY n`,
	`SELECT n * -1 AS neg FROM nums WHERE n IS NOT NULL ORDER BY neg`,
	`SELECT n FROM nums WHERE n IS NOT NULL ORDER BY n LIMIT 2`,
	`SELECT a, sum(b) AS s FROM pairs GROUP BY a ORDER BY s DESC`,
	// Subqueries and views.
	`SELECT s.n FROM (SELECT n FROM nums WHERE n < 3) AS s`,
	`SELECT total FROM (SELECT a, sum(b) AS total FROM pairs GROUP BY a) AS t WHERE total > 20`,
	`SELECT s1.n, s2.total FROM (SELECT n FROM nums) AS s1 JOIN (SELECT a, sum(b) AS total FROM pairs GROUP BY a) AS s2 ON s1.n = s2.a`,
	`SELECT a FROM big_pairs`,
	`SELECT v.a, n FROM big_pairs AS v JOIN nums ON v.a = n`,
	// Dates (date columns vectorize; interval arithmetic falls back).
	`SELECT id FROM events WHERE d < date '1995-12-31'`,
	`SELECT id FROM events WHERE d >= date '1995-01-01' + interval '1' year`,
	`SELECT extract(year FROM d), count(*) FROM events GROUP BY extract(year FROM d)`,
	`SELECT d - date '1995-01-15' FROM events WHERE id = 2`,
	`SELECT min(d), max(d) FROM events`,
	// Rewrite-rule corpus (rewrite_rules_test.go shapes), with provenance.
	`SELECT PROVENANCE a, b FROM r`,
	`SELECT PROVENANCE b FROM r WHERE a = 1`,
	`SELECT PROVENANCE DISTINCT b FROM r`,
	`SELECT PROVENANCE a FROM r WHERE b LIKE 'y%'`,
	`SELECT PROVENANCE r.a, c FROM r, s WHERE r.a = s.a`,
	`SELECT PROVENANCE b, count(*) FROM r GROUP BY b`,
	`SELECT PROVENANCE sum(a) FROM r`,
	`SELECT PROVENANCE a FROM r UNION SELECT a FROM s`,
	`SELECT PROVENANCE a FROM r INTERSECT SELECT a FROM s`,
	`SELECT PROVENANCE a FROM r EXCEPT SELECT a FROM s`,
	`SELECT PROVENANCE a FROM r EXCEPT ALL SELECT a FROM s`,
	`SELECT PROVENANCE r1.a FROM r AS r1, r AS r2 WHERE r1.a = r2.a`,
	`SELECT PROVENANCE a FROM r WHERE a NOT IN (SELECT a FROM s WHERE c > 150)`,
	`SELECT PROVENANCE a FROM r WHERE a >= (SELECT min(a) FROM s)`,
	`SELECT PROVENANCE a FROM s ORDER BY a LIMIT 2`,
	// ORDER BY / LIMIT / OFFSET shapes exercising VecSort/VecTopN/VecLimit
	// (ties, DESC with NULLs, hidden sort columns, offsets past the end).
	`SELECT a, b FROM pairs ORDER BY a, b DESC`,
	`SELECT n FROM nums ORDER BY n DESC`,
	`SELECT label FROM nums ORDER BY n LIMIT 3`,
	`SELECT a FROM pairs ORDER BY b % 7, a LIMIT 3`,
	`SELECT n FROM nums ORDER BY n LIMIT 2 OFFSET 2`,
	`SELECT n FROM nums ORDER BY n LIMIT 0`,
	`SELECT n FROM nums ORDER BY n OFFSET 99`,
	`SELECT n FROM nums LIMIT 3`,
	`SELECT a FROM pairs ORDER BY a LIMIT 10 OFFSET 1`,
	// DISTINCT shapes exercising VecDistinct.
	`SELECT DISTINCT b FROM pairs ORDER BY b DESC LIMIT 2`,
	`SELECT DISTINCT n, label FROM nums`,
	`SELECT DISTINCT a + 1 FROM pairs`,
	// Set operations exercising VecSetOp (with sorts/limits above).
	`SELECT a FROM pairs INTERSECT ALL SELECT n FROM nums`,
	`SELECT a FROM pairs EXCEPT ALL SELECT n FROM nums`,
	`SELECT a FROM pairs UNION ALL SELECT a FROM pairs ORDER BY 1 LIMIT 5`,
	`SELECT a FROM pairs UNION SELECT n FROM nums ORDER BY 1 DESC`,
	`SELECT n FROM nums UNION ALL SELECT n FROM nums UNION SELECT a FROM pairs`,
	// The same blocking shapes under provenance rewrite: these are the
	// pipelines PR 4 keeps columnar end to end.
	`SELECT PROVENANCE a, b FROM pairs ORDER BY b DESC LIMIT 2`,
	`SELECT PROVENANCE DISTINCT a FROM pairs ORDER BY a`,
	`SELECT PROVENANCE n FROM nums ORDER BY n LIMIT 2 OFFSET 1`,
	`SELECT PROVENANCE a FROM r UNION ALL SELECT a FROM s ORDER BY 1 LIMIT 4`,
	`SELECT PROVENANCE a FROM r INTERSECT ALL SELECT a FROM s`,
	`SELECT PROVENANCE b FROM r EXCEPT ALL SELECT b FROM r WHERE a = 2`,
	`SELECT PROVENANCE x.a FROM (SELECT a FROM r ORDER BY a LIMIT 3) AS x WHERE x.a > 0`,
	`SELECT PROVENANCE b, count(*) FROM r GROUP BY b ORDER BY count(*) DESC, b LIMIT 1`,
}

// TestVectorizedTransparency runs the optimizer-transparency corpus and
// the SQL-logic/rewrite-rule corpus with the vectorized engine on vs off
// and requires identical results — vectorization must be invisible
// except for speed.
func TestVectorizedTransparency(t *testing.T) {
	on, off := vecPair(t, vecFixture)
	corpus := append(append([]string{}, transparencyCorpus...), logicCorpus...)
	for _, q := range corpus {
		q := q
		t.Run(q[:minInt(40, len(q))], func(t *testing.T) {
			assertSameResult(t, on, off, q)
		})
	}
}

// TestVectorizedNullSafeIncomparableJoin: a null-safe join key over
// incomparable kinds must still match NULL with NULL (regression: the
// vectorized join's never-match shortcut may only apply to
// non-null-safe keys).
func TestVectorizedNullSafeIncomparableJoin(t *testing.T) {
	on, off := vecPair(t, `
		CREATE TABLE ti (i int);
		INSERT INTO ti VALUES (1), (NULL);
		CREATE TABLE ts (s text);
		INSERT INTO ts VALUES ('x'), (NULL);
	`)
	q := `SELECT count(*) FROM ti JOIN ts ON ti.i IS NOT DISTINCT FROM ts.s`
	assertSameResult(t, on, off, q)
	if got := on.MustQuery(q).Rows[0][0].Int(); got != 1 {
		t.Fatalf("NULL IS NOT DISTINCT FROM NULL must match once, got %d", got)
	}
}

// TestVectorizedTransparencyTPCH runs the generated workloads (random
// SPJ trees, set-operation trees, aggregation chains) and the supported
// TPC-H queries — normal and with provenance — against vectorized-on and
// -off databases (the §V-B generators, mirroring the optimizer's
// property test).
func TestVectorizedTransparencyTPCH(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H property test skipped with -short")
	}
	const sf = 0.001
	on := perm.NewDatabase()
	off := perm.NewDatabaseWithOptions(perm.Options{DisableVectorized: true})
	tpch.MustLoad(on, sf, 42)
	tpch.MustLoad(off, sf, 42)
	maxKey, err := on.TableRowCount("part")
	if err != nil {
		t.Fatal(err)
	}

	var queries []string
	for seed := uint64(1); seed <= 4; seed++ {
		rng := tpch.NewRand(seed)
		queries = append(queries, synth.SPJQuery(rng, int(seed)+1, maxKey))
		queries = append(queries, synth.SetOpQuery(rng, int(seed)+1, maxKey))
		queries = append(queries, synth.AggChainQuery(int(seed), maxKey))
	}
	for _, q := range queries {
		assertSameResult(t, on, off, q)
		assertSameResult(t, on, off, injectProv(q))
	}

	rng := tpch.NewRand(7)
	for _, n := range tpch.SupportedQueries() {
		q := tpch.MustQGen(n, rng)
		for _, db := range []*perm.Database{on, off} {
			for _, s := range q.Setup {
				if _, err := db.Exec(s); err != nil {
					t.Fatal(err)
				}
			}
		}
		assertSameResult(t, on, off, q.Text)
		assertSameResult(t, on, off, q.Provenance().Text)
		for _, db := range []*perm.Database{on, off} {
			for _, s := range q.Teardown {
				if _, err := db.Exec(s); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestFig10ColumnarEndToEnd asserts the PR 4 acceptance shape on the
// Fig. 10 benchmark queries: Q1/Q3/Q10, normal and with provenance, plan
// with zero BatchToRow demotions except the top-level result sink, and
// at least one provenance join publishes a runtime filter.
func TestFig10ColumnarEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H plan test skipped with -short")
	}
	db := perm.NewDatabase()
	tpch.MustLoad(db, 0.001, 42)
	rng := tpch.NewRand(7)
	sawRuntimeFilter := false
	for _, n := range []int{1, 3, 10} {
		q := tpch.MustQGen(n, rng)
		for _, s := range q.Setup {
			db.MustExec(s)
		}
		for _, v := range []struct{ name, text string }{
			{"norm", q.Text},
			{"prov", q.Provenance().Text},
		} {
			out, err := db.ExplainSQL(v.text)
			if err != nil {
				t.Fatalf("Q%d/%s: %v", n, v.name, err)
			}
			if got := strings.Count(out, "BatchToRow"); got != 1 {
				t.Errorf("Q%d/%s: %d BatchToRow nodes, want exactly the top-level sink:\n%s", n, v.name, got, out)
			}
			if !strings.HasPrefix(out, "BatchToRow") {
				t.Errorf("Q%d/%s: BatchToRow is not the plan root:\n%s", n, v.name, out)
			}
			if v.name == "prov" && strings.Contains(out, "RuntimeFilter") {
				sawRuntimeFilter = true
			}
		}
		for _, s := range q.Teardown {
			db.MustExec(s)
		}
	}
	if !sawRuntimeFilter {
		t.Error("no provenance plan published a runtime filter")
	}
}

// TestVectorizedGoldenExplain pins the EXPLAIN labelling of the
// vectorized engine: a fully vectorized plan, a mixed plan whose
// row-only top (sort) consumes a vectorized subtree through the
// batch→row adapter, and the -no-vectorized output.
func TestVectorizedGoldenExplain(t *testing.T) {
	// Pin the memory budget off: these tests golden-match plan shapes,
	// and a PERM_MEMORY_LIMIT environment override would add spill=on
	// annotations (covered by the dedicated spill tests).
	on := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1})
	off := perm.NewDatabaseWithOptions(perm.Options{DisableVectorized: true, MemoryLimit: -1})
	on.MustExec(vecFixture)
	off.MustExec(vecFixture)

	cases := []struct {
		name  string
		db    *perm.Database
		query string
		want  string
	}{
		{
			name:  "fully-vectorized",
			db:    on,
			query: `SELECT n, b FROM nums, pairs WHERE n = a AND b > 15`,
			want: strings.Join([]string{
				"BatchToRow",
				"  VecProject (2 cols)",
				"    VecHashJoin (inner, 1 keys, RuntimeFilter)",
				"      VecScan (5 rows, RuntimeFilter)",
				"      VecFilter",
				"        VecScan (4 rows)",
				"",
			}, "\n"),
		},
		{
			name: "vectorized-sort",
			db:   on,
			// ORDER BY lowers to the columnar sort; the only BatchToRow
			// left is the top-level result sink.
			query: `SELECT n FROM nums WHERE n > 1 ORDER BY n`,
			want: strings.Join([]string{
				"BatchToRow",
				"  VecSort (1 keys)",
				"    VecProject (1 cols)",
				"      VecFilter",
				"        VecScan (5 rows)",
				"",
			}, "\n"),
		},
		{
			name: "mixed-unsupported-expression",
			db:   on,
			// The CASE projection is not vectorizable: a row Project
			// consumes the vectorized filter through the adapter.
			query: `SELECT CASE WHEN n < 3 THEN 'lo' ELSE 'hi' END FROM nums WHERE n > 0`,
			want: strings.Join([]string{
				"Project (1 cols)",
				"  BatchToRow",
				"    VecFilter",
				"      VecScan (5 rows)",
				"",
			}, "\n"),
		},
		{
			name:  "no-vectorized",
			db:    off,
			query: `SELECT n, b FROM nums, pairs WHERE n = a AND b > 15`,
			want: strings.Join([]string{
				"Project (2 cols)",
				"  HashJoin (inner, 1 keys)",
				"    Scan (5 rows)",
				"    Filter",
				"      Scan (4 rows)",
				"",
			}, "\n"),
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got, err := c.db.ExplainSQL(c.query)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("plan mismatch for %q:\ngot:\n%swant:\n%s", c.query, got, c.want)
			}
		})
	}
}
