package perm

import (
	"fmt"
	"sync"

	"perm/internal/algebra"
	"perm/internal/exec"
	"perm/internal/sql"
)

// Prepared is a prepared SELECT statement: the statement is parsed and
// compiled (analyzed, provenance-rewritten, optimized) once, and each
// Run plans and executes the compiled tree against the current data.
//
// A Prepared revalidates itself: when DDL or DML has moved the catalog
// version since compilation, the next Run recompiles transparently (like
// PostgreSQL's plan-cache revalidation), so a prepared statement can
// never execute against a schema it was not compiled for. A Prepared is
// safe for concurrent use, though typically owned by one session.
type Prepared struct {
	db   *Database
	text string
	sel  *sql.SelectStmt

	mu  sync.Mutex
	q   *algebra.Query
	ver uint64
}

// Prepare parses and compiles a single plain SELECT statement (no
// SELECT ... INTO, no EXPLAIN) for repeated execution.
func (db *Database) Prepare(text string) (*Prepared, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("PREPARE requires a SELECT statement")
	}
	if sel.Into != "" {
		return nil, fmt.Errorf("cannot prepare SELECT ... INTO")
	}
	p := &Prepared{db: db, text: text, sel: sel}
	if _, err := p.compiled(); err != nil {
		return nil, err
	}
	return p, nil
}

// Text returns the statement text the Prepared was built from.
func (p *Prepared) Text() string { return p.text }

// Columns returns the output column names of the statement.
func (p *Prepared) Columns() ([]string, error) {
	q, err := p.compiled()
	if err != nil {
		return nil, err
	}
	return q.Schema().Names(), nil
}

// compiled returns the compiled tree, recompiling if the catalog version
// has moved since the last compilation. The first compile also consults
// the shared query cache, so preparing an already-hot statement is free.
func (p *Prepared) compiled() (*algebra.Query, error) {
	cur := p.db.cat.Version()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.q != nil && p.ver == cur {
		return p.q, nil
	}
	if q, ok := p.db.cacheGet(p.text); ok {
		p.q, p.ver = q, cur
		return q, nil
	}
	q, err := p.db.compileSelect(p.sel, p.text, nil)
	if err != nil {
		p.q = nil
		return nil, err
	}
	p.q, p.ver = q, cur
	return q, nil
}

// Run plans and executes the prepared statement against the current data.
func (p *Prepared) Run() (*Result, error) {
	q, err := p.compiled()
	if err != nil {
		return nil, err
	}
	qr := p.db.beginQuery(p.text)
	res, err := p.db.executeCompiled(q, "", qr)
	qr.finish(err)
	return res, err
}

// Start opens a cursor (a portal, in PostgreSQL terms) over the prepared
// statement: the plan is built and opened now, and rows are pulled
// incrementally with Fetch. The cursor reads the data snapshot taken at
// open time; concurrent DML does not affect an open cursor.
func (p *Prepared) Start() (*Cursor, error) {
	q, err := p.compiled()
	if err != nil {
		return nil, err
	}
	node, err := p.db.planner().Plan(q)
	if err != nil {
		return nil, err
	}
	if err := node.Open(); err != nil {
		return nil, err
	}
	schema := q.Schema()
	prov := make([]bool, len(schema))
	for _, pc := range q.ProvCols {
		prov[pc.Col] = true
	}
	return &Cursor{node: node, cols: schema.Names(), prov: prov}, nil
}

// Cursor is an open portal: an executing plan from which rows are pulled
// in batches. A Cursor is single-consumer (it holds volcano iterator
// state) and must be Closed when done.
type Cursor struct {
	node   exec.Node
	cols   []string
	prov   []bool
	done   bool
	closed bool
}

// Columns returns the output column names.
func (c *Cursor) Columns() []string { return c.cols }

// ProvColumns marks which output columns are provenance attributes.
func (c *Cursor) ProvColumns() []bool { return c.prov }

// Fetch pulls up to max rows (max <= 0 means all remaining). It returns
// an empty slice once the cursor is exhausted.
func (c *Cursor) Fetch(max int) ([][]Value, error) {
	var out [][]Value
	if c.closed || c.done {
		return out, nil
	}
	for max <= 0 || len(out) < max {
		r, err := c.node.Next()
		if err != nil {
			return out, err
		}
		if r == nil {
			c.done = true
			break
		}
		vr := make([]Value, len(r))
		for j, v := range r {
			vr[j] = Value{v: v}
		}
		out = append(out, vr)
	}
	return out, nil
}

// Close releases the cursor's plan. It is idempotent.
func (c *Cursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.node.Close()
}
