// Benchmarks regenerating the paper's evaluation (Figs. 9-15) as Go
// testing.B benchmarks, one family per table/figure, plus ablation
// benches for the design choices called out in DESIGN.md. The full
// paper-style tables (with per-size columns and timeout marking) are
// produced by cmd/permbench; these benches give the same series in
// `go test -bench` form on a small scale factor.
package perm_test

import (
	"fmt"
	"sync"
	"testing"

	"perm"
	"perm/internal/algebra"
	"perm/internal/eval"
	"perm/internal/synth"
	"perm/internal/tpch"
	"perm/internal/trio"
	"perm/internal/types"
	"perm/internal/vector"
	"perm/internal/vexec"
)

// benchSF is the scale factor used by the benchmarks. The paper's
// 10MB/100MB/1GB databases are SF 0.01/0.1/1; the benches default to a
// smaller instance so the full suite runs in minutes.
const benchSF = 0.002

var (
	benchOnce sync.Once
	benchDB   *perm.Database
)

func sharedBenchDB(b *testing.B) *perm.Database {
	b.Helper()
	benchOnce.Do(func() {
		benchDB = perm.NewDatabase()
		tpch.MustLoad(benchDB, benchSF, 42)
	})
	return benchDB
}

func runBenchQuery(b *testing.B, db *perm.Database, q tpch.Query) {
	b.Helper()
	for _, s := range q.Setup {
		if _, err := db.Exec(s); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := db.Query(q.Text); err != nil {
		b.Fatalf("%v\n%s", err, q.Text)
	}
	for _, s := range q.Teardown {
		if _, err := db.Exec(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig09CompileOverhead measures the compilation pipeline per
// TPC-H query: parse+analyze (base) vs parse+analyze+provenance-rewrite
// (rewrite). The difference is the Fig. 9 overhead; it depends only on
// the algebraic structure, not the database size.
func BenchmarkFig09CompileOverhead(b *testing.B) {
	db := sharedBenchDB(b)
	rng := tpch.NewRand(7)
	for _, n := range tpch.SupportedQueries() {
		q := tpch.MustQGen(n, rng)
		for _, s := range q.Setup {
			db.Exec(s) //nolint:errcheck
		}
		b.Run(fmt.Sprintf("Q%d/analyze", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := db.CompileOnly(q.Text); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Q%d/rewrite", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := db.CompileWithRewrite(q.Text); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, s := range q.Teardown {
			db.Exec(s) //nolint:errcheck
		}
	}
}

// BenchmarkFig10TPCH measures execution time of every supported TPC-H
// query, normal vs provenance (Fig. 10's columns at one size). Fig. 11's
// cardinalities are reported as custom metrics (rows/op).
func BenchmarkFig10TPCH(b *testing.B) {
	db := sharedBenchDB(b)
	rng := tpch.NewRand(7)
	for _, n := range tpch.SupportedQueries() {
		q := tpch.MustQGen(n, rng)
		b.Run(fmt.Sprintf("Q%d/norm", n), func(b *testing.B) {
			benchWithRows(b, db, q)
		})
		b.Run(fmt.Sprintf("Q%d/prov", n), func(b *testing.B) {
			if n == 9 || n == 11 || n == 16 {
				// Provenance blow-up queries (§V-A2); run but cap work.
				if testing.Short() {
					b.Skip("blow-up query skipped with -short")
				}
			}
			benchWithRows(b, db, q.Provenance())
		})
	}
}

// benchWithRows runs a query b.N times, reporting result cardinality as
// a metric (regenerates Fig. 11 alongside Fig. 10).
func benchWithRows(b *testing.B, db *perm.Database, q tpch.Query) {
	b.Helper()
	var rows int
	for i := 0; i < b.N; i++ {
		for _, s := range q.Setup {
			if _, err := db.Exec(s); err != nil {
				b.Fatal(err)
			}
		}
		res, err := db.Query(q.Text)
		if err != nil {
			b.Fatalf("%v\n%s", err, q.Text)
		}
		rows = len(res.Rows)
		for _, s := range q.Teardown {
			if _, err := db.Exec(s); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(rows), "rows/op")
}

// BenchmarkFig12SetOps regenerates the set-operation series (numSetOp
// 1..5, union/intersect trees over part selections).
func BenchmarkFig12SetOps(b *testing.B) {
	db := sharedBenchDB(b)
	maxKey, err := db.TableRowCount("part")
	if err != nil {
		b.Fatal(err)
	}
	for numSetOp := 1; numSetOp <= 5; numSetOp++ {
		rng := tpch.NewRand(uint64(numSetOp))
		q := synth.SetOpQuery(rng, numSetOp, maxKey)
		b.Run(fmt.Sprintf("n%d/norm", numSetOp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runBenchQuery(b, db, tpch.Query{Text: q})
			}
		})
		b.Run(fmt.Sprintf("n%d/prov", numSetOp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runBenchQuery(b, db, tpch.Query{Text: injectProv(q)})
			}
		})
	}
}

// BenchmarkFig13SPJ regenerates the SPJ series (numSub 1..6).
func BenchmarkFig13SPJ(b *testing.B) {
	db := sharedBenchDB(b)
	maxKey, err := db.TableRowCount("part")
	if err != nil {
		b.Fatal(err)
	}
	for numSub := 1; numSub <= 6; numSub++ {
		rng := tpch.NewRand(uint64(numSub))
		q := synth.SPJQuery(rng, numSub, maxKey)
		b.Run(fmt.Sprintf("n%d/norm", numSub), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runBenchQuery(b, db, tpch.Query{Text: q})
			}
		})
		b.Run(fmt.Sprintf("n%d/prov", numSub), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runBenchQuery(b, db, tpch.Query{Text: injectProv(q)})
			}
		})
	}
}

// BenchmarkFig14Agg regenerates the nested-aggregation series (agg 1..10).
func BenchmarkFig14Agg(b *testing.B) {
	db := sharedBenchDB(b)
	partCount, err := db.TableRowCount("part")
	if err != nil {
		b.Fatal(err)
	}
	for agg := 1; agg <= 10; agg++ {
		q := synth.AggChainQuery(agg, partCount)
		b.Run(fmt.Sprintf("agg%d/norm", agg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runBenchQuery(b, db, tpch.Query{Text: q})
			}
		})
		b.Run(fmt.Sprintf("agg%d/prov", agg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runBenchQuery(b, db, tpch.Query{Text: injectProv(q)})
			}
		})
	}
}

// BenchmarkFig15Trio compares Perm's lazy provenance against the
// Trio-style baseline on supplier key-range selections (the workload of
// §V-C, scaled down from 1000 to a per-op measure).
func BenchmarkFig15Trio(b *testing.B) {
	db := sharedBenchDB(b)
	maxKey, err := db.TableRowCount("supplier")
	if err != nil {
		b.Fatal(err)
	}

	b.Run("perm-lazy", func(b *testing.B) {
		rng := tpch.NewRand(1)
		for i := 0; i < b.N; i++ {
			q := injectProv(synth.SupplierSelection(rng, maxKey))
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trio-trace", func(b *testing.B) {
		rng := tpch.NewRand(1)
		sys := trio.New(db)
		// Derivation (eager provenance computation) happens beforehand,
		// as in the paper; only tracing is measured.
		names := make([]string, b.N)
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			names[i] = sys.FreshName()
			if err := sys.Derive(names[i], synth.SupplierSelection(rng, maxKey)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.TraceAll(names[i]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		for _, name := range names {
			sys.Drop(name) //nolint:errcheck — cleanup
		}
	})
}

// BenchmarkAblationSetOpVariant compares the paper's Fig. 6(3b) rewrite
// (default) against the flattened 3a variant the paper predicts a speedup
// for (§V-B1) — the ablation DESIGN.md calls out.
func BenchmarkAblationSetOpVariant(b *testing.B) {
	for _, variant := range []struct {
		name    string
		flatten bool
	}{{"3b-recursive", false}, {"3a-flattened", true}} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			db := perm.NewDatabaseWithOptions(perm.Options{FlattenSetOps: variant.flatten})
			tpch.MustLoad(db, benchSF, 42)
			maxKey, err := db.TableRowCount("part")
			if err != nil {
				b.Fatal(err)
			}
			rng := tpch.NewRand(9)
			q := injectProv(synth.SetOpQuery(rng, 4, maxKey))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationJoinStrategy isolates the null-safe hash join the
// rewriter's join-back conditions rely on, against the nested-loop
// fallback, on the R5 aggregation rewrite shape.
func BenchmarkAblationJoinStrategy(b *testing.B) {
	db := sharedBenchDB(b)
	// The aggregation rewrite produces exactly this join-back shape; the
	// planner picks a hash join for it. Compare against an artificially
	// non-equi variant that forces a nested loop.
	hashQ := injectProv("SELECT l_returnflag, count(*) FROM lineitem GROUP BY l_returnflag")
	b.Run("hash-join-back", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(hashQ); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOptimizer compares provenance-query execution with the
// logical optimizer on (default) vs off, on the workloads whose rewritten
// shapes the optimizer targets: TPC-H provenance queries (Fig. 10) and
// the synthetic SPJ series (Fig. 13).
func BenchmarkAblationOptimizer(b *testing.B) {
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"opt-on", false}, {"opt-off", true}} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			db := perm.NewDatabaseWithOptions(perm.Options{DisableOptimizer: variant.disable})
			tpch.MustLoad(db, benchSF, 42)
			maxKey, err := db.TableRowCount("part")
			if err != nil {
				b.Fatal(err)
			}
			rng := tpch.NewRand(7)
			for _, n := range []int{1, 3, 5, 10, 15} {
				q := tpch.MustQGen(n, rng).Provenance()
				b.Run(fmt.Sprintf("Q%d/prov", n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						runBenchQuery(b, db, q)
					}
				})
			}
			for _, numSub := range []int{2, 4, 6} {
				spjRng := tpch.NewRand(uint64(numSub))
				q := injectProv(synth.SPJQuery(spjRng, numSub, maxKey))
				b.Run(fmt.Sprintf("spj%d/prov", numSub), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						runBenchQuery(b, db, tpch.Query{Text: q})
					}
				})
			}
		})
	}
}

// BenchmarkAblationVectorized compares execution with the vectorized
// engine on (default) vs off across the benchmark series the columnar
// operators target: TPC-H provenance queries (Fig. 10), the synthetic
// SPJ series (Fig. 13) and the nested-aggregation chains (Fig. 14).
func BenchmarkAblationVectorized(b *testing.B) {
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"vec-on", false}, {"vec-off", true}} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			db := perm.NewDatabaseWithOptions(perm.Options{DisableVectorized: variant.disable})
			tpch.MustLoad(db, benchSF, 42)
			maxKey, err := db.TableRowCount("part")
			if err != nil {
				b.Fatal(err)
			}
			partCount := maxKey
			rng := tpch.NewRand(7)
			for _, n := range []int{1, 3, 5, 10, 15} {
				q := tpch.MustQGen(n, rng)
				b.Run(fmt.Sprintf("Q%d/norm", n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						runBenchQuery(b, db, q)
					}
				})
				b.Run(fmt.Sprintf("Q%d/prov", n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						runBenchQuery(b, db, q.Provenance())
					}
				})
			}
			for _, numSub := range []int{2, 4, 6} {
				spjRng := tpch.NewRand(uint64(numSub))
				q := injectProv(synth.SPJQuery(spjRng, numSub, maxKey))
				b.Run(fmt.Sprintf("spj%d/prov", numSub), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						runBenchQuery(b, db, tpch.Query{Text: q})
					}
				})
			}
			for _, agg := range []int{3, 6, 10} {
				q := injectProv(synth.AggChainQuery(agg, partCount))
				b.Run(fmt.Sprintf("aggchain%d/prov", agg), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						runBenchQuery(b, db, tpch.Query{Text: q})
					}
				})
			}
			if !variant.disable {
				b.Run("alloc-budget/scan-filter-project", benchVecAllocBudget)
				b.Run("alloc-budget/parallel-exchange", benchParallelAllocBudget)
			}
		})
	}
}

// benchBinder binds Vars positionally for the vexec alloc-budget bench.
type benchBinder struct{}

func (benchBinder) BindVar(v *algebra.Var) (int, error) { return v.Col, nil }
func (benchBinder) BindSubLink(*algebra.SubLink) (eval.SubLinkValue, error) {
	return nil, fmt.Errorf("no sublinks")
}

// allocBudgetPerDrain bounds the allocations of one full drain of a
// 32k-row scan→filter→project pipeline. The batch-buffer pool makes the
// per-batch cost O(1) small allocations (batch headers and selection
// reslices); without pooling, every batch would allocate fresh result
// vectors and the count explodes by an order of magnitude. Guarded here
// so a regression in the recycling protocol fails CI's bench smoke.
const allocBudgetPerDrain = 600

// benchVecAllocBudget asserts the batch-buffer pool keeps a vectorized
// pipeline's steady-state allocation rate flat.
func benchVecAllocBudget(b *testing.B) {
	const n = 32 * 1024
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 97))}
	}
	kinds := []types.Kind{types.KindInt, types.KindInt}
	cols, ok := vector.FromRows(rows, kinds)
	if !ok {
		b.Fatal("rows do not pivot")
	}
	v := func(col int) algebra.Expr { return &algebra.Var{RT: 0, Col: col, Typ: types.KindInt} }
	c := func(x int64) algebra.Expr { return &algebra.Const{Val: types.NewInt(x)} }
	pred, err := vexec.CompileExpr(&algebra.BinOp{
		Op:    "=",
		Left:  &algebra.BinOp{Op: "%", Left: v(0), Right: c(3), Typ: types.KindInt},
		Right: c(0), Typ: types.KindBool,
	}, benchBinder{})
	if err != nil {
		b.Fatal(err)
	}
	proj, err := vexec.CompileExprs([]algebra.Expr{
		&algebra.BinOp{Op: "+", Left: v(0), Right: v(1), Typ: types.KindInt},
		v(1),
	}, benchBinder{})
	if err != nil {
		b.Fatal(err)
	}
	pipeline := vexec.NewProject(vexec.NewFilter(vexec.NewColScan(cols, n), pred), proj)
	drain := func() {
		if err := pipeline.Open(); err != nil {
			b.Fatal(err)
		}
		for {
			batch, err := pipeline.Next()
			if err != nil {
				b.Fatal(err)
			}
			if batch == nil {
				break
			}
		}
		if err := pipeline.Close(); err != nil {
			b.Fatal(err)
		}
	}
	drain() // warm the pool
	allocs := testing.AllocsPerRun(10, drain)
	b.ReportMetric(allocs, "allocs/drain")
	if allocs > allocBudgetPerDrain {
		b.Fatalf("vectorized pipeline allocated %.0f times per drain (budget %d): batch-buffer recycling regressed",
			allocs, allocBudgetPerDrain)
	}
	for i := 0; i < b.N; i++ {
		drain()
	}
}

// allocBudgetPerParallelDrain bounds one full drain of the same pipeline
// behind a 4-worker Exchange. Worker-side batches still recycle through
// the shared (goroutine-safe) buffer pool; only the exchange's handoff
// copies are fresh unpooled vectors — a per-batch constant, not
// per-row — plus the per-Open goroutine/channel setup. A blowout here
// means pooled buffers started crossing goroutines (each would need a
// defensive copy or, worse, corrupt a recycled batch).
const allocBudgetPerParallelDrain = 3000

// benchParallelAllocBudget asserts the exchange keeps the parallel
// pipeline's steady-state allocation rate flat.
func benchParallelAllocBudget(b *testing.B) {
	const n, workers = 32 * 1024, 4
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 97))}
	}
	kinds := []types.Kind{types.KindInt, types.KindInt}
	cols, ok := vector.FromRows(rows, kinds)
	if !ok {
		b.Fatal("rows do not pivot")
	}
	v := func(col int) algebra.Expr { return &algebra.Var{RT: 0, Col: col, Typ: types.KindInt} }
	c := func(x int64) algebra.Expr { return &algebra.Const{Val: types.NewInt(x)} }
	// Compiled expressions carry per-instance scratch state, so every
	// worker replica compiles its own copies, exactly as the planner does.
	replicas := make([]vexec.Node, workers)
	drivers := make([]*vexec.ColScan, workers)
	srcs := make([]vexec.TagSource, workers)
	for w := 0; w < workers; w++ {
		pred, err := vexec.CompileExpr(&algebra.BinOp{
			Op:    "=",
			Left:  &algebra.BinOp{Op: "%", Left: v(0), Right: c(3), Typ: types.KindInt},
			Right: c(0), Typ: types.KindBool,
		}, benchBinder{})
		if err != nil {
			b.Fatal(err)
		}
		proj, err := vexec.CompileExprs([]algebra.Expr{
			&algebra.BinOp{Op: "+", Left: v(0), Right: v(1), Typ: types.KindInt},
			v(1),
		}, benchBinder{})
		if err != nil {
			b.Fatal(err)
		}
		scan := vexec.NewColScan(cols, n)
		drivers[w], srcs[w] = scan, scan
		replicas[w] = vexec.NewProject(vexec.NewFilter(scan, pred), proj)
	}
	pipeline := vexec.NewExchange(replicas, drivers, srcs, vexec.NewMorsels(n))
	drain := func() {
		if err := pipeline.Open(); err != nil {
			b.Fatal(err)
		}
		for {
			batch, err := pipeline.Next()
			if err != nil {
				b.Fatal(err)
			}
			if batch == nil {
				break
			}
		}
		if err := pipeline.Close(); err != nil {
			b.Fatal(err)
		}
	}
	drain() // warm the pool
	allocs := testing.AllocsPerRun(10, drain)
	b.ReportMetric(allocs, "allocs/drain")
	if allocs > allocBudgetPerParallelDrain {
		b.Fatalf("parallel pipeline allocated %.0f times per drain (budget %d): exchange or pool recycling regressed",
			allocs, allocBudgetPerParallelDrain)
	}
	for i := 0; i < b.N; i++ {
		drain()
	}
}

// BenchmarkParallelSpeedup measures morsel-driven parallel execution
// against the serial plan (workers=1) on the queries the parallel site
// finder targets hardest: the Fig. 10 scan-heavy provenance rewrites and
// an SPJ chain. Wall-clock speedup tracks the host's core count — on a
// single-core runner the interesting signal is the absence of regression
// at workers=1 and bounded overhead at workers=4.
func BenchmarkParallelSpeedup(b *testing.B) {
	for _, variant := range []struct {
		name    string
		workers int
	}{{"workers-1", 1}, {"workers-4", 4}} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			db := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1, Parallelism: variant.workers})
			tpch.MustLoad(db, benchSF, 42)
			maxKey, err := db.TableRowCount("part")
			if err != nil {
				b.Fatal(err)
			}
			rng := tpch.NewRand(7)
			for _, n := range []int{1, 15} {
				q := tpch.MustQGen(n, rng)
				b.Run(fmt.Sprintf("Q%d/norm", n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						runBenchQuery(b, db, q)
					}
				})
				b.Run(fmt.Sprintf("Q%d/prov", n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						runBenchQuery(b, db, q.Provenance())
					}
				})
			}
			spjRng := tpch.NewRand(4)
			q := injectProv(synth.SPJQuery(spjRng, 4, maxKey))
			b.Run("spj4/prov", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runBenchQuery(b, db, tpch.Query{Text: q})
				}
			})
		})
	}
}

// BenchmarkCorePipeline measures the bare engine stages on a mid-size
// query (context for Fig. 9's absolute numbers).
func BenchmarkCorePipeline(b *testing.B) {
	db := sharedBenchDB(b)
	rng := tpch.NewRand(7)
	q := tpch.MustQGen(5, rng)
	b.Run("parse-analyze", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := db.CompileOnly(q.Text); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse-analyze-rewrite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := db.CompileWithRewrite(q.Provenance().Text); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("execute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q.Text); err != nil {
				b.Fatal(err)
			}
		}
	})
}
