// Data-warehouse lineage: the application domain the paper's introduction
// motivates. A sales-report view aggregates order facts; an analyst spots
// a suspicious figure and drills down to the exact source rows that
// produced it — lazily, with one provenance query — then materializes the
// provenance (eager storage, SELECT ... INTO) for later audits.
package main

import (
	"fmt"

	"perm"
)

func main() {
	db := perm.NewDatabase()
	db.MustExec(`
		CREATE TABLE stores (store_id int, city text);
		CREATE TABLE products (product_id int, category text, unit_price float);
		CREATE TABLE facts (store_id int, product_id int, sale_day date, qty int);

		INSERT INTO stores VALUES (1, 'Zurich'), (2, 'Shanghai'), (3, 'Boston');
		INSERT INTO products VALUES
			(10, 'coffee', 4.5), (11, 'tea', 3.0), (12, 'cocoa', 5.25);
		INSERT INTO facts VALUES
			(1, 10, '2009-03-29', 12), (1, 11, '2009-03-29', 5),
			(1, 10, '2009-03-30', 900),  -- suspicious bulk row
			(2, 12, '2009-03-29', 7), (2, 10, '2009-03-30', 20),
			(3, 11, '2009-03-30', 9), (3, 12, '2009-03-30', 4);
	`)

	db.MustExec(`
		CREATE VIEW revenue_report AS
		SELECT city, category, sum(qty * unit_price) AS revenue
		FROM facts, stores, products
		WHERE facts.store_id = stores.store_id
		  AND facts.product_id = products.product_id
		GROUP BY city, category`)

	fmt.Println("== the report ==")
	fmt.Print(db.MustQuery("SELECT * FROM revenue_report ORDER BY revenue DESC"))

	fmt.Println("\n== drill-down: why is Zurich/coffee so high? (lazy provenance) ==")
	fmt.Print(db.MustQuery(`
		SELECT PROVENANCE city, category, sum(qty * unit_price) AS revenue
		FROM facts, stores, products
		WHERE facts.store_id = stores.store_id
		  AND facts.product_id = products.product_id
		GROUP BY city, category`))

	fmt.Println("\n== just the contributing fact rows for the suspicious cell ==")
	fmt.Print(db.MustQuery(`
		SELECT prov_facts_sale_day, prov_facts_qty
		FROM (SELECT PROVENANCE city, category, sum(qty * unit_price) AS revenue
		      FROM facts, stores, products
		      WHERE facts.store_id = stores.store_id
		        AND facts.product_id = products.product_id
		      GROUP BY city, category) AS p
		WHERE city = 'Zurich' AND category = 'coffee' AND prov_facts_qty > 100`))

	fmt.Println("\n== eager storage: materialize provenance for audits (SELECT INTO) ==")
	db.MustExec(`
		SELECT PROVENANCE city, category, sum(qty * unit_price) AS revenue
		INTO report_audit
		FROM facts, stores, products
		WHERE facts.store_id = stores.store_id
		  AND facts.product_id = products.product_id
		GROUP BY city, category`)
	res := db.MustQuery("SELECT count(*) FROM report_audit")
	fmt.Printf("report_audit stored with %s provenance rows\n", res.Rows[0][0])

	fmt.Println("\n== later: audit the stored provenance with plain SQL ==")
	fmt.Print(db.MustQuery(`
		SELECT city, count(*) AS contributing_facts
		FROM report_audit GROUP BY city ORDER BY city`))
}
