// Curated-database provenance: external provenance, incremental
// computation (§IV-A3) and limited provenance scope (§IV-A4).
//
// A curated gene catalog is imported from an external source that ships
// its own provenance columns. Perm treats those columns as provenance via
// the PROVENANCE (attrs) annotation, composes them with locally computed
// provenance, and BASERELATION stops tracing at a trusted view boundary.
package main

import (
	"fmt"

	"perm"
)

func main() {
	db := perm.NewDatabase()

	// An imported catalog carrying external provenance: the source
	// database and record id each row was curated from.
	db.MustExec(`
		CREATE TABLE gene_catalog (gene text, organism text, src_db text, src_id int);
		INSERT INTO gene_catalog VALUES
			('BRCA2', 'human', 'ensembl', 675),
			('TP53',  'human', 'ensembl', 7157),
			('CDC28', 'yeast', 'sgd',     852457),
			('SWI5',  'yeast', 'sgd',     851724);
		CREATE TABLE experiments (gene text, assay text, score float);
		INSERT INTO experiments VALUES
			('BRCA2', 'knockout', 0.91), ('TP53', 'knockout', 0.77),
			('TP53', 'expression', 0.88), ('CDC28', 'expression', 0.95);
	`)

	fmt.Println("== external provenance: src_db/src_id flow through the rewrite ==")
	fmt.Print(db.MustQuery(`
		SELECT PROVENANCE experiments.gene, assay, score
		FROM gene_catalog PROVENANCE (src_db, src_id), experiments
		WHERE gene_catalog.gene = experiments.gene`))

	fmt.Println("\n== incremental provenance (§IV-A3): store, then extend ==")
	db.MustExec(`
		CREATE VIEW human_hits AS
		SELECT PROVENANCE experiments.gene AS gene, score
		FROM gene_catalog, experiments
		WHERE gene_catalog.gene = experiments.gene AND organism = 'human'`)
	// The stored provenance attributes are reused — the rewriter does not
	// descend into the view again.
	fmt.Print(db.MustQuery(`
		SELECT PROVENANCE gene, score * 100 AS pct
		FROM human_hits PROVENANCE (prov_gene_catalog_src_db, prov_gene_catalog_src_id)`))

	fmt.Println("\n== limited scope (§IV-A4): BASERELATION stops at the view ==")
	fmt.Print(db.MustQuery(`
		SELECT PROVENANCE gene, score * 100 AS pct
		FROM (SELECT experiments.gene AS gene, max(score) AS score
		      FROM gene_catalog, experiments
		      WHERE gene_catalog.gene = experiments.gene
		      GROUP BY experiments.gene) BASERELATION AS best`))
}
