// Quickstart: the paper's running example (Fig. 2/4). Builds the
// shop/sales/items database, runs the total-profit aggregation normally
// and with PROVENANCE, shows the rewritten SQL, and demonstrates querying
// provenance and data together (the q1 example of §III-D).
package main

import (
	"fmt"

	"perm"
)

func main() {
	db := perm.NewDatabase()
	db.MustExec(`
		CREATE TABLE shop (name text, numempl int);
		CREATE TABLE sales (sname text, itemid int);
		CREATE TABLE items (id int, price int);
		INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14);
		INSERT INTO sales VALUES
			('Merdies', 1), ('Merdies', 2), ('Merdies', 2), ('Joba', 3), ('Joba', 3);
		INSERT INTO items VALUES (1, 100), (2, 10), (3, 25);
	`)

	fmt.Println("== total profit per shop (normal query) ==")
	fmt.Print(db.MustQuery(`
		SELECT name, sum(price) AS total
		FROM shop, sales, items
		WHERE name = sname AND itemid = id
		GROUP BY name`))

	fmt.Println("\n== the same query with PROVENANCE (the paper's Fig. 4 result) ==")
	fmt.Print(db.MustQuery(`
		SELECT PROVENANCE name, sum(price) AS total
		FROM shop, sales, items
		WHERE name = sname AND itemid = id
		GROUP BY name`))

	fmt.Println("\n== the rewritten query q+ (plain SQL — EXPLAIN REWRITE) ==")
	rewritten, err := db.RewriteSQL(`
		SELECT PROVENANCE name, sum(price) AS total
		FROM shop, sales, items
		WHERE name = sname AND itemid = id
		GROUP BY name`)
	if err != nil {
		panic(err)
	}
	fmt.Println(rewritten)

	fmt.Println("\n== querying provenance and data together (§III-D q1) ==")
	fmt.Println("items sold by shops with total sales over 100:")
	fmt.Print(db.MustQuery(`
		SELECT DISTINCT prov_items_id
		FROM (SELECT PROVENANCE name, sum(price) AS total
		      FROM shop, sales, items
		      WHERE name = sname AND itemid = id
		      GROUP BY name) AS p
		WHERE total > 100`))
}
