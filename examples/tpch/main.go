// TPC-H walkthrough: loads the benchmark data the paper evaluates on
// (§V), runs Q3 normally and with provenance, and prints the rewritten
// SQL of Q6 to show that q+ is an ordinary relational query.
package main

import (
	"flag"
	"fmt"
	"time"

	"perm"
	"perm/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor")
	flag.Parse()

	db := perm.NewDatabase()
	start := time.Now()
	d := tpch.MustLoad(db, *sf, 42)
	fmt.Printf("loaded TPC-H SF %g (%d rows) in %.2fs\n\n",
		*sf, d.RowCount(), time.Since(start).Seconds())

	rng := tpch.NewRand(7)
	q3 := tpch.MustQGen(3, rng)

	fmt.Println("== Q3 (shipping priority), normal ==")
	start = time.Now()
	norm, err := db.Query(q3.Text)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d rows in %.3fs\n", len(norm.Rows), time.Since(start).Seconds())

	fmt.Println("\n== Q3 with PROVENANCE ==")
	start = time.Now()
	prov, err := db.Query(q3.Provenance().Text)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d rows (%d provenance columns) in %.3fs\n",
		len(prov.Rows), prov.NumProvColumns(), time.Since(start).Seconds())
	if len(prov.Rows) > 0 {
		fmt.Println("\nfirst provenance row:")
		for i, c := range prov.Columns {
			fmt.Printf("  %-28s = %s\n", c, prov.Rows[0][i])
		}
	}

	fmt.Println("\n== the rewritten form of Q6 (EXPLAIN REWRITE) ==")
	q6 := tpch.MustQGen(6, rng)
	rewritten, err := db.RewriteSQL(q6.Provenance().Text)
	if err != nil {
		panic(err)
	}
	fmt.Println(rewritten)
}
