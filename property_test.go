package perm_test

import (
	"fmt"
	"strings"
	"testing"

	"perm"
	"perm/internal/tpch"
)

// This file property-tests the paper's correctness theorem (§III-E):
// for every query q, the projection of q+ on the original columns is
// set-equal to the result of q:
//
//	Π_T(q+) = Π_T(q)
//
// A random query generator produces queries over random small databases
// covering projections, selections, joins, aggregation, DISTINCT, set
// operations and uncorrelated sublinks; each query is run normally and
// with PROVENANCE and the results compared.

// randDB creates a fresh database with three small random tables.
func randDB(r *tpch.Rand) *perm.Database {
	db := perm.NewDatabase()
	db.MustExec(`
		CREATE TABLE t1 (a int, b int, c text);
		CREATE TABLE t2 (a int, d int);
		CREATE TABLE t3 (a int, e text);
	`)
	labels := []string{"'x'", "'y'", "'z'", "NULL"}
	var sb strings.Builder
	for i := 0; i < 4+r.Intn(8); i++ {
		fmt.Fprintf(&sb, "INSERT INTO t1 VALUES (%d, %d, %s);", r.Intn(5), r.Intn(20), labels[r.Intn(len(labels))])
	}
	for i := 0; i < 3+r.Intn(6); i++ {
		fmt.Fprintf(&sb, "INSERT INTO t2 VALUES (%d, %d);", r.Intn(5), r.Intn(20))
	}
	for i := 0; i < 2+r.Intn(5); i++ {
		fmt.Fprintf(&sb, "INSERT INTO t3 VALUES (%d, %s);", r.Intn(5), labels[r.Intn(len(labels))])
	}
	db.MustExec(sb.String())
	return db
}

// randQuery generates a random query. depth limits nesting.
func randQuery(r *tpch.Rand, depth int) string {
	switch pick := r.Intn(10); {
	case pick < 5 || depth <= 0:
		return randSPJ(r, depth)
	case pick < 7:
		return randAgg(r, depth)
	case pick < 9:
		// set operation over union-compatible selections
		ops := []string{"UNION", "UNION ALL", "INTERSECT", "INTERSECT ALL", "EXCEPT", "EXCEPT ALL"}
		op := ops[r.Intn(len(ops))]
		return fmt.Sprintf("SELECT a FROM t1 WHERE a %s %d %s SELECT a FROM t2 WHERE d %s %d",
			randCmp(r), r.Intn(5), op, randCmp(r), r.Intn(20))
	default:
		return randSublink(r)
	}
}

func randCmp(r *tpch.Rand) string {
	return []string{"=", "<>", "<", "<=", ">", ">="}[r.Intn(6)]
}

func randSPJ(r *tpch.Rand, depth int) string {
	switch r.Intn(4) {
	case 0:
		return fmt.Sprintf("SELECT a, b FROM t1 WHERE b %s %d", randCmp(r), r.Intn(20))
	case 1:
		return fmt.Sprintf("SELECT t1.a, d FROM t1, t2 WHERE t1.a = t2.a AND d %s %d",
			randCmp(r), r.Intn(20))
	case 2:
		kind := []string{"JOIN", "LEFT JOIN", "RIGHT JOIN", "FULL JOIN"}[r.Intn(4)]
		return fmt.Sprintf("SELECT t1.b, t3.e FROM t1 %s t3 ON t1.a = t3.a", kind)
	default:
		if depth > 0 {
			inner := fmt.Sprintf(
				"SELECT a, count(*) AS cnt, sum(b) AS sm FROM t1 GROUP BY a HAVING count(*) >= %d",
				1+r.Intn(2))
			return fmt.Sprintf("SELECT a, cnt FROM (%s) AS sub%d WHERE a >= %d",
				inner, r.Intn(100), r.Intn(3))
		}
		return "SELECT DISTINCT a, c FROM t1"
	}
}

func randAgg(r *tpch.Rand, depth int) string {
	switch r.Intn(3) {
	case 0:
		return fmt.Sprintf("SELECT a, count(*) AS cnt, sum(b) AS sm FROM t1 GROUP BY a HAVING count(*) >= %d", 1+r.Intn(2))
	case 1:
		return "SELECT c, min(b) AS mn, max(b) AS mx FROM t1 GROUP BY c"
	default:
		if depth > 0 {
			return fmt.Sprintf("SELECT a, sum(d) AS s FROM (%s) AS q%d GROUP BY a",
				"SELECT t2.a AS a, d FROM t2", r.Intn(100))
		}
		return "SELECT avg(b) AS av FROM t1"
	}
}

func randSublink(r *tpch.Rand) string {
	switch r.Intn(4) {
	case 0:
		return "SELECT a, b FROM t1 WHERE a IN (SELECT a FROM t2)"
	case 1:
		return "SELECT a FROM t1 WHERE a NOT IN (SELECT a FROM t3)"
	case 2:
		return fmt.Sprintf("SELECT b FROM t1 WHERE b > (SELECT avg(d) FROM t2) OR a = %d", r.Intn(5))
	default:
		return "SELECT a FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE d > 5)"
	}
}

// TestTheoremOnRandomQueries is the main property test: 300 random
// queries over 30 random databases.
func TestTheoremOnRandomQueries(t *testing.T) {
	r := tpch.NewRand(2024)
	queries := 300
	if testing.Short() {
		queries = 60
	}
	dbRotate := 10
	var db *perm.Database
	for i := 0; i < queries; i++ {
		if i%dbRotate == 0 {
			db = randDB(r)
		}
		q := randQuery(r, 2)
		norm, err := db.Query(q)
		if err != nil {
			t.Fatalf("query %d failed normally: %v\n%s", i, err, q)
		}
		prov, err := db.Query(injectProv(q))
		if err != nil {
			t.Fatalf("query %d failed with provenance: %v\n%s", i, err, q)
		}
		checkTheorem(t, q, norm, prov)
		if t.Failed() {
			t.Fatalf("theorem violated by query %d:\n%s", i, q)
		}
	}
}

// checkTheorem verifies Π_T(q+) = Π_T(q) (set equality over the original
// columns), allowing the empty-aggregation exception of Fig. 11.
func checkTheorem(t *testing.T, q string, norm, prov *perm.Result) {
	t.Helper()
	width := len(norm.Columns)
	if len(prov.Columns) < width {
		t.Errorf("provenance result narrower than original: %v vs %v", prov.Columns, norm.Columns)
		return
	}
	if prov.NumProvColumns() == 0 {
		t.Errorf("no provenance columns for %s", q)
		return
	}
	normSet := map[string]bool{}
	for _, row := range norm.Rows {
		normSet[fingerprint(row, width)] = true
	}
	provSet := map[string]bool{}
	for _, row := range prov.Rows {
		provSet[fingerprint(row, width)] = true
	}
	if len(prov.Rows) == 0 && len(norm.Rows) == 1 && allNull(norm.Rows[0]) {
		return // empty-input aggregation exception
	}
	for fp := range normSet {
		if !provSet[fp] {
			t.Errorf("missing original tuple %q", fp)
		}
	}
	for fp := range provSet {
		if !normSet[fp] {
			t.Errorf("spurious tuple %q", fp)
		}
	}
}

// TestTheoremOnPaperWorkloads re-checks the theorem on the deterministic
// example database for a fixed battery of tricky shapes.
func TestTheoremOnPaperWorkloads(t *testing.T) {
	db := exampleDB(t)
	queries := []string{
		"SELECT name FROM shop",
		"SELECT DISTINCT sname FROM sales",
		"SELECT name, numempl FROM shop WHERE numempl > 5",
		"SELECT name, sum(price) FROM shop, sales, items WHERE name = sname AND itemid = id GROUP BY name",
		"SELECT sname, count(*) FROM sales GROUP BY sname HAVING count(*) > 2",
		"SELECT name FROM shop UNION SELECT sname FROM sales",
		"SELECT name FROM shop UNION ALL SELECT sname FROM sales",
		"SELECT sname FROM sales INTERSECT SELECT name FROM shop",
		"SELECT sname FROM sales EXCEPT SELECT name FROM shop WHERE numempl > 5",
		"SELECT sname FROM sales EXCEPT ALL SELECT name FROM shop",
		"SELECT name FROM shop WHERE numempl < 10 OR name IN (SELECT sname FROM sales)",
		"SELECT name FROM shop WHERE name IN (SELECT sname FROM sales)",
		"SELECT id FROM items WHERE price >= (SELECT avg(price) FROM items)",
		"SELECT s.name, t.total FROM shop AS s JOIN (SELECT sname, count(*) AS total FROM sales GROUP BY sname) AS t ON s.name = t.sname",
		"SELECT itemid, count(*) FROM sales GROUP BY itemid ORDER BY itemid",
		"SELECT name FROM shop LEFT JOIN items ON numempl = id",
		"SELECT sum(price) FROM items WHERE id > 100",
	}
	for i, q := range queries {
		norm, err := db.Query(q)
		if err != nil {
			t.Fatalf("query %d failed: %v\n%s", i, err, q)
		}
		prov, err := db.Query(injectProv(q))
		if err != nil {
			t.Fatalf("query %d failed with provenance: %v\n%s", i, err, q)
		}
		checkTheorem(t, q, norm, prov)
		if t.Failed() {
			t.Fatalf("theorem violated by:\n%s", q)
		}
	}
}
