package perm_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"perm"
	"perm/internal/obs"
	"perm/internal/session"
	"perm/internal/tpch"
)

// assertAnalyzedTransparent requires that running a query under EXPLAIN
// ANALYZE instrumentation returns byte-identical results — same columns,
// same rows, same order — as the plain run. Probes forward batches and
// rows by pointer, so instrumentation must never be observable in the
// output.
func assertAnalyzedTransparent(t *testing.T, db *perm.Database, query string) string {
	t.Helper()
	plain, err := db.Query(query)
	if err != nil {
		t.Fatalf("plain run of %q: %v", query, err)
	}
	analyzed, report, err := db.QueryAnalyzed(query)
	if err != nil {
		t.Fatalf("analyzed run of %q: %v", query, err)
	}
	if fmt.Sprint(plain.Columns) != fmt.Sprint(analyzed.Columns) {
		t.Fatalf("columns diverge under ANALYZE for %q", query)
	}
	if len(plain.Rows) != len(analyzed.Rows) {
		t.Fatalf("row count diverges under ANALYZE for %q: plain=%d analyzed=%d",
			query, len(plain.Rows), len(analyzed.Rows))
	}
	for i := range plain.Rows {
		for j := range plain.Rows[i] {
			va, vb := plain.Rows[i][j], analyzed.Rows[i][j]
			if va.String() != vb.String() || va.IsNull() != vb.IsNull() {
				t.Fatalf("row %d col %d diverges under ANALYZE for %q: plain=%v analyzed=%v",
					i, j, query, va, vb)
			}
		}
	}
	return report
}

// TestExplainAnalyzeBasics pins the report surface on a small plan:
// every operator line carries an (actual ...) annotation with its row
// count, the footer reports total time and the query fingerprint, and
// the SQL-dialect form returns the same report shape.
func TestExplainAnalyzeBasics(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec(`CREATE TABLE shop (name text, numempl int)`)
	db.MustExec(`INSERT INTO shop VALUES ('Merdies', 3), ('SatMarkt', 15), ('EDampf', 1)`)

	report := assertAnalyzedTransparent(t, db, `SELECT name FROM shop WHERE numempl > 2 ORDER BY name`)
	for _, want := range []string{"(actual ", "rows=2", "time=", "Execution time: ", "Fingerprint: "} {
		if !strings.Contains(report, want) {
			t.Fatalf("report lacks %q:\n%s", want, report)
		}
	}
	// The fingerprint folds literals: the same shape with a different
	// constant must report the same fingerprint line.
	other, err := db.ExplainAnalyzeSQL(`SELECT name FROM shop WHERE numempl > 999 ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	fpLine := func(s string) string {
		for _, l := range strings.Split(s, "\n") {
			if strings.HasPrefix(l, "Fingerprint: ") {
				return l
			}
		}
		return ""
	}
	if fp := fpLine(report); fp == "" || fp != fpLine(other) {
		t.Fatalf("fingerprint not literal-invariant: %q vs %q", fpLine(report), fpLine(other))
	}

	// The SQL dialect: EXPLAIN ANALYZE <select> through Query returns the
	// report as rows under a "plan" column.
	res, err := db.Query(`EXPLAIN ANALYZE SELECT name FROM shop WHERE numempl > 2 ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("EXPLAIN ANALYZE columns = %v", res.Columns)
	}
	var joined strings.Builder
	for _, row := range res.Rows {
		joined.WriteString(row[0].String())
		joined.WriteString("\n")
	}
	for _, want := range []string{"(actual ", "Execution time: ", "Fingerprint: "} {
		if !strings.Contains(joined.String(), want) {
			t.Fatalf("dialect report lacks %q:\n%s", want, joined.String())
		}
	}
	// EXPLAIN without ANALYZE must stay annotation-free.
	plain, err := db.ExplainSQL(`SELECT name FROM shop WHERE numempl > 2 ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, "actual") {
		t.Fatalf("plain EXPLAIN grew annotations:\n%s", plain)
	}
}

// TestExplainAnalyzeAcceptance is the PR's acceptance scenario: TPC-H
// Q15 with provenance under a 4 MiB budget and 2 workers must report
// nonzero per-operator timings, spill events on the spilling operator,
// and per-worker morsel counts — while the result stays byte-identical
// to the uninstrumented run.
func TestExplainAnalyzeAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H EXPLAIN ANALYZE acceptance skipped with -short")
	}
	db := perm.NewDatabaseWithOptions(perm.Options{
		Parallelism: 2, MemoryLimit: 4 << 20, SpillDir: t.TempDir(),
	})
	tpch.MustLoad(db, 0.002, 42)
	rng := tpch.NewRand(7)
	q := tpch.MustQGen(15, rng)
	for _, s := range q.Setup {
		db.MustExec(s)
	}
	defer func() {
		for _, s := range q.Teardown {
			db.MustExec(s)
		}
	}()
	report := assertAnalyzedTransparent(t, db, q.Provenance().Text)
	if !strings.Contains(report, "time=") || strings.Contains(report, "time=0s ") {
		t.Fatalf("report lacks nonzero operator timings:\n%s", report)
	}
	if !strings.Contains(report, "workers=2") || !strings.Contains(report, "morsels/worker=[") {
		t.Fatalf("report lacks per-worker morsel counts:\n%s", report)
	}
	if !strings.Contains(report, "spills=") {
		t.Fatalf("report lacks spill events under the 4 MiB budget:\n%s", report)
	}
	if st := db.SessionQueryStats(); st.MemoryInUse != 0 {
		t.Fatalf("analyzed run leaked reservations: %d bytes", st.MemoryInUse)
	}
}

// TestExplainAnalyzeTransparencyFig10 runs the Fig. 10 TPC-H workload —
// normal and provenance-rewritten — under ANALYZE instrumentation in
// every execution regime (serial, 4 workers; unlimited, 4 MiB budget)
// and requires byte-identical results throughout.
func TestExplainAnalyzeTransparencyFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H EXPLAIN ANALYZE transparency skipped with -short")
	}
	const sf = 0.002
	regimes := []struct {
		name    string
		workers int
		limit   int64
	}{
		{"serial", 1, -1},
		{"serial-4MiB", 1, 4 << 20},
		{"workers=4", 4, -1},
		{"workers=4-4MiB", 4, 4 << 20},
	}
	for _, rg := range regimes {
		t.Run(rg.name, func(t *testing.T) {
			db := perm.NewDatabaseWithOptions(perm.Options{
				Parallelism: rg.workers, MemoryLimit: rg.limit, SpillDir: t.TempDir(),
			})
			tpch.MustLoad(db, sf, 42)
			rng := tpch.NewRand(7)
			for _, n := range []int{1, 3, 10, 15} {
				q := tpch.MustQGen(n, rng)
				for _, s := range q.Setup {
					db.MustExec(s)
				}
				assertAnalyzedTransparent(t, db, q.Text)
				assertAnalyzedTransparent(t, db, q.Provenance().Text)
				for _, s := range q.Teardown {
					db.MustExec(s)
				}
			}
			if st := db.SessionQueryStats(); st.MemoryInUse != 0 {
				t.Fatalf("analyzed runs leaked reservations: %d bytes", st.MemoryInUse)
			}
		})
	}
}

// mediumTable builds a ~16k-row table: big enough that a 64 KiB budget
// forces spilling, small enough for the -race concurrency test.
func mediumTable(db *perm.Database) {
	db.MustExec(`CREATE TABLE med (a int, b int, s text)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO med VALUES `)
	for i := 0; i < 64; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, 'val-%d')", i, i%7, i%13)
	}
	db.MustExec(sb.String())
	for i := 0; i < 8; i++ { // 64 × 2^8 = 16384 rows
		db.MustExec(fmt.Sprintf(`INSERT INTO med SELECT a + %d, b, s FROM med`, 64<<i))
	}
}

// TestMetricsConcurrentSessions drives 8 concurrent sessions through
// cache churn (repeated hits, DML invalidations) and forced spill (64
// KiB budgets) and asserts the engine counters account for all of it:
// the session gauges return exactly to their baseline, and the grant/
// denial/spill/cache counters all moved. Run under -race this also
// verifies every counter hot path is data-race-free.
func TestMetricsConcurrentSessions(t *testing.T) {
	base := perm.NewDatabaseWithOptions(perm.Options{
		MemoryLimit: 64 << 10, SpillDir: t.TempDir(),
	})
	mediumTable(base)

	sessionsBefore := obs.SessionsActive.Load()
	preparedBefore := obs.PreparedStatements.Load()
	grantsBefore := obs.MemGrants.Load()
	denialsBefore := obs.MemDenials.Load()
	cacheBefore := base.QueryCacheStats()

	const numSessions = 8
	var wg sync.WaitGroup
	for i := 0; i < numSessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := session.New(base)
			defer s.Close()
			if err := s.Prepare("p", `SELECT count(*) FROM med`); err != nil {
				t.Error(err)
				return
			}
			for round := 0; round < 3; round++ {
				// Shared statement: first compiler wins, everyone else hits.
				if _, err := s.Query(`SELECT a % 4096, count(*), sum(b) FROM med GROUP BY a % 4096`); err != nil {
					t.Error(err)
					return
				}
				// Spill-forcing sort under the 64 KiB session budget.
				if _, err := s.Query(`SELECT a, b, s FROM med ORDER BY b, s LIMIT 5`); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Execute("p"); err != nil {
					t.Error(err)
					return
				}
				// One session churns the catalog version, invalidating
				// every cached artifact.
				if id == 0 {
					if _, err := s.Exec(fmt.Sprintf(`INSERT INTO med VALUES (%d, 0, 'churn')`, 1<<20+round)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()

	if got := obs.SessionsActive.Load(); got != sessionsBefore {
		t.Fatalf("SessionsActive gauge did not return to baseline: %d != %d", got, sessionsBefore)
	}
	if got := obs.PreparedStatements.Load(); got != preparedBefore {
		t.Fatalf("PreparedStatements gauge did not return to baseline: %d != %d", got, preparedBefore)
	}
	if d := obs.MemGrants.Load() - grantsBefore; d <= 0 {
		t.Fatalf("no memory grants recorded (delta %d)", d)
	}
	if d := obs.MemDenials.Load() - denialsBefore; d <= 0 {
		t.Fatalf("no memory denials recorded under a 64 KiB budget (delta %d)", d)
	}
	st := base.QueryStats()
	if st.SpillEvents == 0 || st.BytesSpilled == 0 {
		t.Fatalf("64 KiB sessions never spilled: %+v", st)
	}
	cache := base.QueryCacheStats()
	if cache.Hits <= cacheBefore.Hits {
		t.Fatalf("no cache hits across %d sessions: %+v", numSessions, cache)
	}
	if cache.Misses <= cacheBefore.Misses {
		t.Fatalf("no cache misses recorded: %+v", cache)
	}
	if cache.Invalidations <= cacheBefore.Invalidations {
		t.Fatalf("DML churn produced no invalidations: %+v", cache)
	}

	// The registry must expose all engine families over this state.
	var sb strings.Builder
	if err := base.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"perm_qcache_lookups_total", "perm_qcache_entries",
		"perm_mem_reserved_bytes", "perm_mem_spilled_bytes_total", "perm_mem_grants_total",
		"perm_parallel_morsels_total", "perm_parallel_serial_fallbacks_total",
		"perm_sessions_active", "perm_prepared_statements", "perm_catalog_version",
	} {
		if !strings.Contains(sb.String(), "# TYPE "+fam+" ") {
			t.Fatalf("metrics exposition lacks family %s:\n%s", fam, sb.String())
		}
	}
}

// TestQueryCached pins the non-counting cache probe the slow-query log
// relies on.
func TestQueryCached(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec(`CREATE TABLE t (a int)`)
	db.MustExec(`INSERT INTO t VALUES (1), (2)`)
	const q = `SELECT a FROM t ORDER BY a`
	if db.QueryCached(q) {
		t.Fatal("query cached before first compile")
	}
	before := db.QueryCacheStats()
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if !db.QueryCached(q) {
		t.Fatal("query not cached after compile")
	}
	after := db.QueryCacheStats()
	if after.Hits != before.Hits || after.Misses != before.Misses+1 {
		t.Fatalf("unexpected counter movement: before=%+v after=%+v", before, after)
	}
	// The probe itself must not move the counters.
	if got := db.QueryCacheStats(); got != after {
		t.Fatalf("QueryCached moved the counters: %+v -> %+v", after, got)
	}
	db.MustExec(`INSERT INTO t VALUES (3)`) // version bump invalidates
	if db.QueryCached(q) {
		t.Fatal("stale artifact still reported as cached after DML")
	}
}
