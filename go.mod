module perm

go 1.21
