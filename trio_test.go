package perm_test

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"perm/internal/synth"
	"perm/internal/tpch"
	"perm/internal/trio"
)

// TestTrioDeriveAndTrace checks that the Trio baseline's eager lineage
// matches Perm's lazy provenance on a simple selection.
func TestTrioDeriveAndTrace(t *testing.T) {
	db := tpchDB(t, 0.001)
	sys := trio.New(db)

	query := "SELECT s_suppkey, s_name FROM supplier WHERE s_suppkey >= 2 AND s_suppkey <= 5"
	if err := sys.Derive("d1", query); err != nil {
		t.Fatal(err)
	}
	n, err := sys.DerivedRowCount("d1")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("derived %d tuples, want 4", n)
	}

	// Trace one tuple and cross-check against Perm's provenance result.
	traced, err := sys.Trace("d1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced["supplier"]) != 1 {
		t.Fatalf("tuple 0 traced to %d supplier tuples, want 1", len(traced["supplier"]))
	}

	total, err := sys.TraceAll("d1")
	if err != nil {
		t.Fatal(err)
	}
	if total != 4 {
		t.Fatalf("TraceAll fetched %d source tuples, want 4", total)
	}
	if err := sys.Drop("d1"); err != nil {
		t.Fatal(err)
	}
}

// TestTrioEquivalentToPerm checks lineage equivalence between the Trio
// baseline and Perm's rewriting on the SPJ fragment Trio supports.
func TestTrioEquivalentToPerm(t *testing.T) {
	db := tpchDB(t, 0.001)
	sys := trio.New(db)

	query := "SELECT s_suppkey, n_name FROM supplier, nation WHERE s_nationkey = n_nationkey AND s_suppkey <= 3"
	if err := sys.Derive("d2", query); err != nil {
		t.Fatal(err)
	}

	// Perm lazy provenance: collect (s_suppkey → supplier key, nation key).
	provRes, err := db.Query("SELECT PROVENANCE s_suppkey, n_name FROM supplier, nation WHERE s_nationkey = n_nationkey AND s_suppkey <= 3")
	if err != nil {
		t.Fatal(err)
	}
	permPairs := map[string]bool{}
	suppCol, natCol := -1, -1
	for i, c := range provRes.Columns {
		if c == "prov_supplier_s_suppkey" {
			suppCol = i
		}
		if c == "prov_nation_n_nationkey" {
			natCol = i
		}
	}
	if suppCol < 0 || natCol < 0 {
		t.Fatalf("provenance key columns not found in %v", provRes.Columns)
	}
	for _, row := range provRes.Rows {
		permPairs[row[0].String()+"→supplier:"+row[suppCol].String()] = true
		permPairs[row[0].String()+"→nation:"+row[natCol].String()] = true
	}

	// Trio tracing: same pairs via lineage.
	n, err := sys.DerivedRowCount("d2")
	if err != nil {
		t.Fatal(err)
	}
	trioPairs := map[string]bool{}
	for tid := int64(0); tid < int64(n); tid++ {
		m, err := sys.Trace("d2", tid)
		if err != nil {
			t.Fatal(err)
		}
		// The derived table stores s_suppkey as its second column.
		row, err := db.Query("SELECT s_suppkey FROM d2 WHERE tid = " + strconv.FormatInt(tid, 10))
		if err != nil {
			t.Fatal(err)
		}
		key := row.Rows[0][0].String()
		for _, src := range m["supplier"] {
			trioPairs[key+"→supplier:"+src[0].String()] = true
		}
		for _, src := range m["nation"] {
			trioPairs[key+"→nation:"+src[0].String()] = true
		}
	}
	if len(permPairs) != len(trioPairs) {
		t.Fatalf("lineage mismatch: perm %d pairs, trio %d pairs\nperm: %v\ntrio: %v",
			len(permPairs), len(trioPairs), keys(permPairs), keys(trioPairs))
	}
	for p := range permPairs {
		if !trioPairs[p] {
			t.Errorf("pair %q missing from trio lineage", p)
		}
	}
}

// TestTrioRejectsUnsupported checks the documented Trio limitations.
func TestTrioRejectsUnsupported(t *testing.T) {
	db := tpchDB(t, 0.001)
	sys := trio.New(db)
	cases := []string{
		"SELECT count(*) FROM supplier",
		"SELECT s_suppkey, sum(s_acctbal) FROM supplier GROUP BY s_suppkey",
		"SELECT s_suppkey FROM supplier UNION SELECT s_suppkey FROM supplier UNION SELECT s_suppkey FROM supplier",
	}
	for _, q := range cases {
		if err := sys.Derive(sys.FreshName(), q); err == nil {
			t.Errorf("Derive(%q) should have been rejected", q)
		}
	}
}

// TestSynthGenerators sanity-checks the §V-B workload generators.
func TestSynthGenerators(t *testing.T) {
	db := tpchDB(t, 0.001)
	maxKey, err := db.TableRowCount("part")
	if err != nil {
		t.Fatal(err)
	}
	rng := tpch.NewRand(3)

	for numSetOp := 1; numSetOp <= 4; numSetOp++ {
		q := synth.SetOpQuery(rng, numSetOp, maxKey)
		if _, err := db.Query(q); err != nil {
			t.Fatalf("set-op query (n=%d) failed: %v\n%s", numSetOp, err, q)
		}
		if _, err := db.Query(injectProv(q)); err != nil {
			t.Fatalf("set-op provenance query (n=%d) failed: %v\n%s", numSetOp, err, injectProv(q))
		}
	}
	for numSub := 1; numSub <= 4; numSub++ {
		q := synth.SPJQuery(rng, numSub, maxKey)
		if _, err := db.Query(q); err != nil {
			t.Fatalf("SPJ query (n=%d) failed: %v\n%s", numSub, err, q)
		}
		if _, err := db.Query(injectProv(q)); err != nil {
			t.Fatalf("SPJ provenance query (n=%d) failed: %v", numSub, err)
		}
	}
	for agg := 1; agg <= 4; agg++ {
		q := synth.AggChainQuery(agg, maxKey)
		if _, err := db.Query(q); err != nil {
			t.Fatalf("agg chain (depth=%d) failed: %v\n%s", agg, err, q)
		}
		if _, err := db.Query(injectProv(q)); err != nil {
			t.Fatalf("agg chain provenance (depth=%d) failed: %v", agg, err)
		}
	}
	// EXCEPT trees must run too (blow-up ablation).
	q := synth.SetOpDifferenceQuery(rng, 2, maxKey)
	if _, err := db.Query(injectProv(q)); err != nil {
		t.Fatalf("difference tree provenance failed: %v\n%s", err, q)
	}
}

func injectProv(q string) string {
	idx := strings.Index(strings.ToUpper(q), "SELECT")
	return q[:idx+6] + " PROVENANCE" + q[idx+6:]
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
