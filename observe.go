package perm

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"perm/internal/algebra"
	"perm/internal/exec"
	"perm/internal/obs"
	"perm/internal/plan"
	"perm/internal/qcache"
	"perm/internal/sql"
)

// QueryAnalyzed runs a single SELECT statement with EXPLAIN ANALYZE
// instrumentation: every plan operator is wrapped in a probe that times
// it and counts what it emits. It returns the query result — identical
// to what Query returns, probes forward rows untouched — together with
// the annotated plan report.
//
// Compilation goes through the shared compiled-query cache exactly like
// Query; only execution differs (the generic row collector is used so
// the probe on the plan root observes every row).
func (db *Database) QueryAnalyzed(text string) (*Result, string, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, "", err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok || sel.Into != "" {
		return nil, "", fmt.Errorf("EXPLAIN ANALYZE requires a plain SELECT statement")
	}
	qr := db.beginQuery(text)
	res, report, err := db.analyzeSelect(sel, text, text, qr)
	qr.finish(err)
	return res, report, err
}

// ExplainAnalyzeSQL executes a query under instrumentation and returns
// only the annotated plan report (the result rows are computed — ANALYZE
// always executes — and discarded).
func (db *Database) ExplainAnalyzeSQL(text string) (string, error) {
	_, report, err := db.QueryAnalyzed(text)
	return report, err
}

// analyzeSelect compiles (through the cache when cacheText is non-empty),
// plans, instruments and executes a SELECT, returning the boxed result
// and the annotated plan. fpText is the statement text fingerprinted in
// the report footer.
func (db *Database) analyzeSelect(sel *sql.SelectStmt, cacheText, fpText string, qr *queryRun) (*Result, string, error) {
	var q *algebra.Query
	var ok bool
	if cacheText != "" {
		q, ok = db.cacheGet(cacheText)
	}
	if !ok {
		var err error
		q, err = db.compileSelect(sel, cacheText, qr)
		if err != nil {
			return nil, "", err
		}
	}
	qr.phase(obs.PhasePlan)
	planner := db.planner()
	if qr != nil {
		planner.SetActivity(qr.aq)
	}
	node, err := planner.Plan(q)
	if err != nil {
		return nil, "", err
	}
	// Key plan health on the bare statement, not the session's
	// EXPLAIN ANALYZE-prefixed text, so estimates and flips join
	// against perm_stat_statements rows for the plain statement.
	norm := qcache.Normalize(fpText)
	fp := qcache.FingerprintNormalized(norm)
	db.notePlanHashAs(qr, fp, norm, node)
	// Instrument after planning (and after parallelize): plan validation
	// never sees a probe, and worker subtrees stay unwrapped.
	node = plan.Instrument(node)
	schema := q.Schema()
	res := &Result{
		Columns:     schema.Names(),
		ProvColumns: make([]bool, len(schema)),
	}
	for _, pc := range q.ProvCols {
		res.ProvColumns[pc.Col] = true
	}
	qr.phase(obs.PhaseExecute)
	pre := db.budget.Stats()
	start := time.Now()
	rows, err := collectRows(node, qr.activeQuery())
	total := time.Since(start)
	if err != nil {
		return nil, "", err
	}
	if qr != nil && qr.trace != nil {
		for _, sp := range plan.OperatorSpans(node) {
			qr.trace.Add(sp)
		}
	}
	if qr != nil {
		db.eng.ests.Observe(fp, norm, plan.OperatorEstimates(node))
	}
	post := db.budget.Stats()
	res.Rows = make([][]Value, len(rows))
	for i, r := range rows {
		vr := make([]Value, len(r))
		for j, v := range r {
			vr[j] = Value{v: v}
		}
		res.Rows[i] = vr
	}
	report := plan.ExplainAnalyzed(node, total, post.Peak, post.BytesSpilled-pre.BytesSpilled) +
		"Fingerprint: " + fp + "\n"
	return res, report, nil
}

// TopMisestimates returns the engine's n worst per-fingerprint
// cardinality misestimates, worst first (all of them when n <= 0) —
// the same records perm_stat_estimates serves, for tooling that wants
// them without a SQL round-trip. Records accumulate from EXPLAIN
// ANALYZE executions only; plain queries are never instrumented.
func (db *Database) TopMisestimates(n int) []obs.EstRecord {
	snap := db.eng.ests.Snapshot()
	if n > 0 && len(snap) > n {
		snap = snap[:n]
	}
	return snap
}

// notePlanHash feeds one freshly compiled statement's physical plan hash
// into the plan-flip store. Only executions following a cache miss are
// hashed (qr.fresh): a cache hit replays an artifact whose plan the
// store already saw, so the hot path never renders a plan. A flip —
// the same fingerprint compiling to a structurally different plan —
// bumps perm_plan_flips_total and lands in the engine event log.
func (db *Database) notePlanHash(qr *queryRun, node exec.Node) {
	if qr == nil {
		return
	}
	db.notePlanHashAs(qr, qr.aq.Fingerprint, qr.norm, node)
}

// notePlanHashAs is notePlanHash with an explicit fingerprint and
// normalized text — analyzeSelect records under the bare statement's
// identity even when the session ran it as EXPLAIN ANALYZE.
func (db *Database) notePlanHashAs(qr *queryRun, fp, norm string, node exec.Node) {
	if qr == nil || !qr.fresh {
		return
	}
	qr.fresh = false
	h := plan.Hash(node)
	old, flipped := db.eng.plans.ObservePlan(fp, norm, h, int64(db.cat.Version()), db.optsKey)
	if flipped {
		obs.PlanFlips.Inc()
		obs.Events.Record(obs.EventPlanFlip, qr.aq.ID, fp,
			fmt.Sprintf("plan %016x -> %016x", old, h))
	}
}

// stripExplainPrefix removes a leading EXPLAIN ANALYZE from a statement
// text so the analyzed query fingerprints (and caches) the same as the
// bare SELECT would. Texts not of that shape are returned unchanged.
func stripExplainPrefix(text string) string {
	s := strings.TrimLeft(text, " \t\r\n")
	for _, kw := range []string{"EXPLAIN", "ANALYZE"} {
		if len(s) < len(kw) || !strings.EqualFold(s[:len(kw)], kw) {
			return text
		}
		rest := strings.TrimLeft(s[len(kw):], " \t\r\n")
		if rest == s[len(kw):] {
			return text // keyword not followed by whitespace
		}
		s = rest
	}
	return s
}

// QueryCached reports whether a compiled artifact for the statement text
// is currently cached (under this handle's options and the current
// catalog version) without touching the cache counters or LRU order. The
// slow-query log uses it to label a statement's cache outcome.
func (db *Database) QueryCached(text string) bool {
	if db.opts.DisableQueryCache {
		return false
	}
	return db.cache.Contains(db.optsKey+"\x00"+text, db.cat.Version())
}

// EngineVersion identifies the engine build in perm_build_info and the
// permd banner.
const EngineVersion = "0.9.0"

// Metrics returns a registry exposing the engine's metric families in
// the Prometheus text format: compiled-query cache traffic, memory
// accounting and spill volume, intra-query parallelism activity,
// introspection gauges, per-fingerprint latency histograms, and session
// gauges. The families read live engine state on each exposition; the
// registry itself adds no cost to query execution. The registry is
// built once per engine and shared by every handle, so callers (permd's
// telemetry endpoint, benchmark tooling) may register further families
// on it.
func (db *Database) Metrics() *obs.Registry {
	db.eng.metricsOnce.Do(func() {
		db.eng.metricsReg = db.buildMetrics()
	})
	return db.eng.metricsReg
}

func (db *Database) buildMetrics() *obs.Registry {
	r := obs.NewRegistry()

	r.ReadFunc("perm_build_info",
		"Engine build identity (value is constant 1).", obs.TypeGauge,
		`version="`+EngineVersion+`",goversion="`+runtime.Version()+`"`,
		func() float64 { return 1 })
	r.ReadFunc("perm_gomaxprocs", "GOMAXPROCS of the engine process.", obs.TypeGauge, "",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })

	cacheHelp := "Compiled-query cache lookups by outcome."
	cacheEvent := func(event string, read func(qcache.Stats) uint64) {
		r.ReadFunc("perm_qcache_lookups_total", cacheHelp, obs.TypeCounter,
			`event="`+event+`"`, func() float64 { return float64(read(db.cache.Stats())) })
	}
	cacheEvent("hit", func(s qcache.Stats) uint64 { return s.Hits })
	cacheEvent("miss", func(s qcache.Stats) uint64 { return s.Misses })
	cacheEvent("invalidation", func(s qcache.Stats) uint64 { return s.Invalidations })
	cacheEvent("eviction", func(s qcache.Stats) uint64 { return s.Evictions })
	r.ReadFunc("perm_qcache_entries", "Compiled artifacts currently cached.", obs.TypeGauge, "",
		func() float64 { return float64(db.cache.Len()) })

	r.ReadFunc("perm_mem_reserved_bytes", "Bytes currently reserved by materializing operators.", obs.TypeGauge, "",
		func() float64 { return float64(db.gov.Stats().InUse) })
	r.ReadFunc("perm_mem_peak_bytes", "High-water mark of reserved bytes.", obs.TypeGauge, "",
		func() float64 { return float64(db.gov.Stats().Peak) })
	r.ReadFunc("perm_mem_spilled_bytes_total", "Cumulative bytes written to spill files.", obs.TypeCounter, "",
		func() float64 { return float64(db.gov.Stats().BytesSpilled) })
	r.ReadFunc("perm_mem_spill_events_total", "Spill activations (runs/partitions written).", obs.TypeCounter, "",
		func() float64 { return float64(db.gov.Stats().SpillEvents) })
	r.CounterVar("perm_mem_grants_total", "Operator memory requests granted.", "", &obs.MemGrants)
	r.CounterVar("perm_mem_denials_total", "Operator memory requests denied (spill trigger).", "", &obs.MemDenials)

	r.CounterVar("perm_parallel_morsels_total", "Morsels dispatched to parallel worker scans.", "", &obs.MorselsDispatched)
	r.CounterVar("perm_parallel_plans_total", "Queries planned with a parallel operator.", "", &obs.ParallelPlans)
	r.CounterVar("perm_parallel_workers_total", "Workers launched by parallel plans.", "", &obs.ParallelWorkers)
	r.CounterVar("perm_parallel_serial_fallbacks_total", "Parallel sites that fell back to serial execution.", "", &obs.SerialFallbacks)

	r.CounterVar("perm_panics_recovered_total", "Query panics caught and converted to errors.", "", &obs.PanicsRecovered)
	r.CounterVar("perm_statement_timeouts_total", "Statements terminated by their statement timeout.", "", &obs.StatementTimeouts)
	r.CounterVar("perm_conns_shed_total", "Requests and connections shed by admission control.", "", &obs.ConnsShed)
	r.CounterVar("perm_client_retries_total", "Automatic request retries by in-process permclient instances.", "", &obs.ClientRetries)

	r.GaugeVar("perm_sessions_active", "Sessions currently open.", "", &obs.SessionsActive)
	r.GaugeVar("perm_prepared_statements", "Prepared statements currently held by sessions.", "", &obs.PreparedStatements)
	r.ReadFunc("perm_catalog_version", "Current catalog version (moves on every DDL/DML).", obs.TypeGauge, "",
		func() float64 { return float64(db.cat.Version()) })

	r.ReadFunc("perm_queries_active", "Queries currently registered as in flight.", obs.TypeGauge, "",
		func() float64 { return float64(db.eng.activity.Len()) })
	r.ReadFunc("perm_traces_stored", "Completed query traces held in the trace ring.", obs.TypeGauge, "",
		func() float64 { return float64(db.eng.tracer.Store.Len()) })

	r.CounterVar("perm_plan_flips_total", "Fingerprints recompiled to a structurally different physical plan.", "", &obs.PlanFlips)
	r.CounterVar("perm_stmt_evictions_total", "Fingerprints evicted from the per-statement statistics store.", "", &obs.StmtEvictions)
	r.ReadFunc("perm_plan_fingerprints", "Fingerprints tracked by the plan-flip store.", obs.TypeGauge, "",
		func() float64 { return float64(db.eng.plans.Len()) })
	r.ReadFunc("perm_estimate_fingerprints", "Fingerprints tracked by the misestimation store.", obs.TypeGauge, "",
		func() float64 { return float64(db.eng.ests.Len()) })
	r.ReadFunc("perm_events_recorded_total", "Events appended to the engine event log.", obs.TypeCounter, "",
		func() float64 { return float64(obs.Events.LastSeq()) })
	r.RawCollector(db.eng.stmts.WritePrometheus)
	return r
}
