package perm_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"perm"
	"perm/internal/session"
	"perm/internal/synth"
	"perm/internal/tpch"
)

// assertIdenticalResult requires byte-identical results — same columns,
// same rows, same order — between two databases. The spill paths
// preserve the exact in-memory output order (external sorts are stable
// across runs, partitioned joins/groupings merge back on sequence
// numbers), so budgeted execution must be indistinguishable, not merely
// multiset-equal.
func assertIdenticalResult(t *testing.T, a, b *perm.Database, query string) {
	t.Helper()
	resA, errA := a.Query(query)
	resB, errB := b.Query(query)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("error divergence for %q: budgeted=%v unbudgeted=%v", query, errA, errB)
	}
	if errA != nil {
		return
	}
	if fmt.Sprint(resA.Columns) != fmt.Sprint(resB.Columns) {
		t.Fatalf("columns diverge for %q", query)
	}
	if len(resA.Rows) != len(resB.Rows) {
		t.Fatalf("row count diverges for %q: budgeted=%d unbudgeted=%d", query, len(resA.Rows), len(resB.Rows))
	}
	for i := range resA.Rows {
		for j := range resA.Rows[i] {
			va, vb := resA.Rows[i][j], resB.Rows[i][j]
			if va.String() != vb.String() || va.IsNull() != vb.IsNull() {
				t.Fatalf("row %d col %d diverges for %q: budgeted=%v unbudgeted=%v",
					i, j, query, va, vb)
			}
		}
	}
}

// bigTable builds a ~65k-row table by repeated self-insertion, large
// enough that a tiny budget forces dozens of spill runs (and therefore
// multi-pass merging).
func bigTable(db *perm.Database) {
	db.MustExec(`CREATE TABLE big (a int, b int, s text)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO big VALUES `)
	for i := 0; i < 64; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, 'val-%d')", i, i%7, i%13)
	}
	db.MustExec(sb.String())
	for i := 0; i < 10; i++ { // 64 × 2^10 = 65536 rows
		db.MustExec(fmt.Sprintf(`INSERT INTO big SELECT a + %d, b, s FROM big`, 64<<i))
	}
}

// spillPair returns two databases over the same data: one with the given
// session budget, one explicitly unlimited.
func spillPair(t *testing.T, limit int64, setup func(*perm.Database)) (budgeted, unlimited *perm.Database) {
	t.Helper()
	budgeted = perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: limit, SpillDir: t.TempDir()})
	unlimited = perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1})
	setup(budgeted)
	setup(unlimited)
	return budgeted, unlimited
}

// TestSpillMultiPassTransparency forces multi-pass spilling (a 64 KiB
// budget against ~2.5 MB inputs produces ~40 sorted runs, well past the
// merge fan-in of 8) through every spill-capable operator — VecSort,
// hash aggregation, VecDistinct, VecSetOp, the Grace hash join and the
// row engine's external sort — and requires byte-identical results.
func TestSpillMultiPassTransparency(t *testing.T) {
	budgeted, unlimited := spillPair(t, 64<<10, bigTable)
	queries := []string{
		// External sort (multi-pass merge), stable ties on b.
		`SELECT a, b, s FROM big ORDER BY b, s`,
		`SELECT a FROM big ORDER BY a DESC LIMIT 10`,
		// Hash aggregation: many groups (a % 4096 → 4096 groups of
		// strings/sums), plus global aggregates.
		`SELECT a % 4096, count(*), sum(b), min(s), max(a) FROM big GROUP BY a % 4096`,
		`SELECT count(*), sum(a), avg(b), min(s) FROM big`,
		// DISTINCT over a wide row set.
		`SELECT DISTINCT a % 8192, b FROM big`,
		// Set operations with multiplicities.
		`SELECT a % 1000 FROM big INTERSECT ALL SELECT a % 1500 FROM big`,
		`SELECT a % 997, b FROM big EXCEPT ALL SELECT a % 997, b FROM big WHERE b > 3`,
		`SELECT a % 2000 FROM big UNION SELECT b FROM big`,
		// Grace hash join: self-join on a non-unique key blows up the
		// build side.
		`SELECT count(*), sum(x.a), sum(y.a) FROM big AS x, big AS y WHERE x.a = y.a AND x.b = 1`,
		`SELECT x.a, y.b FROM big AS x JOIN big AS y ON x.a = y.a WHERE x.a < 500 ORDER BY x.a, y.b`,
	}
	for _, q := range queries {
		t.Run(q[:minInt(48, len(q))], func(t *testing.T) {
			assertIdenticalResult(t, budgeted, unlimited, q)
		})
	}
	if st := budgeted.QueryStats(); st.BytesSpilled == 0 || st.SpillEvents == 0 {
		t.Fatalf("64 KiB budget did not spill: %+v", st)
	}
	if st := unlimited.QueryStats(); st.BytesSpilled != 0 {
		t.Fatalf("unlimited database spilled: %+v", st)
	}
	if st := budgeted.QueryStats(); st.MemoryInUse != 0 {
		t.Fatalf("reserved memory leaked after queries: %d bytes", st.MemoryInUse)
	}
}

// TestSpillRowEngineSort pins the row engine's external sort: with
// vectorized execution off, ORDER BY must spill and stay byte-identical.
func TestSpillRowEngineSort(t *testing.T) {
	budgeted := perm.NewDatabaseWithOptions(perm.Options{
		MemoryLimit: 64 << 10, DisableVectorized: true, SpillDir: t.TempDir(),
	})
	unlimited := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1, DisableVectorized: true})
	bigTable(budgeted)
	bigTable(unlimited)
	assertIdenticalResult(t, budgeted, unlimited, `SELECT a, b, s FROM big ORDER BY b DESC, s, a`)
	if st := budgeted.QueryStats(); st.BytesSpilled == 0 {
		t.Fatalf("row-engine sort under 64 KiB budget did not spill: %+v", st)
	}
}

// TestSpillExplainAndStats: a limited budget is visible as spill=on in
// EXPLAIN, and executing past it is visible in QueryStats.
func TestSpillExplainAndStats(t *testing.T) {
	budgeted, _ := spillPair(t, 64<<10, bigTable)
	// Parallel plans append ", workers=N" inside the annotation, so match
	// up to the spill tag only.
	for _, c := range []struct{ query, wantOp string }{
		{`SELECT a FROM big ORDER BY a`, "VecSort (1 keys, spill=on"},
		{`SELECT DISTINCT b FROM big`, "VecDistinct (spill=on)"},
		{`SELECT b, count(*) FROM big GROUP BY b`, "VecHashAggregate (1 groups, 1 aggs, spill=on"},
		{`SELECT a FROM big INTERSECT SELECT b FROM big`, "VecSetOp (intersect, all=false, spill=on)"},
		{`SELECT count(*) FROM big AS x, big AS y WHERE x.a = y.a`, "spill=on)"},
	} {
		out, err := budgeted.ExplainSQL(c.query)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, c.wantOp) {
			t.Errorf("EXPLAIN %q missing %q:\n%s", c.query, c.wantOp, out)
		}
	}
	// An unlimited handle shows no spill annotations.
	unlimited := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1})
	bigTable(unlimited)
	out, err := unlimited.ExplainSQL(`SELECT a FROM big ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "spill=") {
		t.Errorf("unlimited EXPLAIN carries a spill annotation:\n%s", out)
	}

	before := budgeted.QueryStats()
	budgeted.MustQuery(`SELECT a, s FROM big ORDER BY s, a`)
	after := budgeted.QueryStats()
	if after.BytesSpilled <= before.BytesSpilled {
		t.Fatalf("sort under budget did not report spilled bytes: before=%+v after=%+v", before, after)
	}
	if after.PeakMemory == 0 {
		t.Fatal("peak memory not tracked")
	}
	if after.MemoryInUse != 0 {
		t.Fatalf("reserved memory leaked: %d bytes", after.MemoryInUse)
	}
	// Session-level stats see the same activity on this handle.
	if st := budgeted.SessionQueryStats(); st.BytesSpilled == 0 {
		t.Fatalf("session stats missed the spill: %+v", st)
	}
}

// TestEngineMemoryLimitForcesSpill: the engine-wide governor cap forces
// spilling even when the session itself is unlimited.
func TestEngineMemoryLimitForcesSpill(t *testing.T) {
	db := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1, SpillDir: t.TempDir()})
	bigTable(db)
	db.SetEngineMemoryLimit(64 << 10)
	ref := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1})
	bigTable(ref)
	assertIdenticalResult(t, db, ref, `SELECT a, b FROM big ORDER BY b, a`)
	if st := db.QueryStats(); st.BytesSpilled == 0 {
		t.Fatalf("engine cap did not force spilling: %+v", st)
	}
}

// TestSessionSetMemoryLimit drives the budget through the session
// dialect: SET memory_limit changes the handle's budget, off lifts it.
func TestSessionSetMemoryLimit(t *testing.T) {
	db := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1, SpillDir: t.TempDir()})
	bigTable(db)
	sess := session.New(db)
	defer sess.Close()
	if _, err := sess.Run(`SET memory_limit = 64KiB`); err != nil {
		t.Fatal(err)
	}
	if got := sess.DB().MemoryLimit(); got != 64<<10 {
		t.Fatalf("session memory limit = %d, want %d", got, 64<<10)
	}
	out, err := sess.Run(`SELECT a FROM big ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Result.Rows) != 65536 {
		t.Fatalf("row count = %d, want 65536", len(out.Result.Rows))
	}
	if st := sess.DB().SessionQueryStats(); st.BytesSpilled == 0 {
		t.Fatalf("budgeted session did not spill: %+v", st)
	}
	if _, err := sess.Run(`SET memory_limit = off`); err != nil {
		t.Fatal(err)
	}
	if got := sess.DB().MemoryLimit(); got != 0 {
		t.Fatalf("memory limit after off = %d, want 0 (unlimited)", got)
	}
	if _, err := sess.Run(`SET memory_limit = nonsense`); err == nil {
		t.Fatal("invalid size must be rejected")
	}
	// SET memory_limit = 0 restores the server-configured default.
	srv := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: 12 << 20})
	s2 := session.New(srv)
	defer s2.Close()
	if _, err := s2.Run(`SET memory_limit = 1GiB`); err != nil {
		t.Fatal(err)
	}
	if got := s2.DB().MemoryLimit(); got != 1<<30 {
		t.Fatalf("raised limit = %d, want %d", got, 1<<30)
	}
	if _, err := s2.Run(`SET memory_limit = 0`); err != nil {
		t.Fatal(err)
	}
	if got := s2.DB().MemoryLimit(); got != 12<<20 {
		t.Fatalf("limit after reset = %d, want the server default %d", got, 12<<20)
	}
}

// TestConcurrentSessionBudgets runs a budgeted and an unbudgeted session
// concurrently against one shared database (the permd arrangement): the
// tiny-budget session spills instead of failing and cannot push the
// other session into spilling, and both produce identical results. Run
// under -race in CI.
func TestConcurrentSessionBudgets(t *testing.T) {
	// ORDER BY without LIMIT: a trailing LIMIT would plan the bounded
	// VecTopN heap, which never needs to spill.
	const query = `SELECT a % 9973, count(*), sum(b), min(s) FROM big GROUP BY a % 9973 ORDER BY 1`
	shared := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1, SpillDir: t.TempDir()})
	bigTable(shared)
	ref := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1})
	bigTable(ref)
	want := ref.MustQuery(query)

	sessions := make([]*session.Session, 4)
	for i := range sessions {
		sessions[i] = session.New(shared)
		defer sessions[i].Close()
		limit := "off"
		if i%2 == 0 {
			limit = "96KiB"
		}
		if _, err := sessions[i].Run("SET memory_limit = " + limit); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(sessions)*2)
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *session.Session) {
			defer wg.Done()
			for iter := 0; iter < 2; iter++ {
				out, err := s.Run(query)
				if err != nil {
					errs <- fmt.Errorf("session %d: %v", i, err)
					return
				}
				if len(out.Result.Rows) != len(want.Rows) {
					errs <- fmt.Errorf("session %d: %d rows, want %d", i, len(out.Result.Rows), len(want.Rows))
					return
				}
				for r := range want.Rows {
					for c := range want.Rows[r] {
						if out.Result.Rows[r][c].String() != want.Rows[r][c].String() {
							errs <- fmt.Errorf("session %d: row %d diverges", i, r)
							return
						}
					}
				}
			}
		}(i, s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The budgeted sessions spilled; the unlimited ones did not.
	for i, s := range sessions {
		st := s.DB().SessionQueryStats()
		if i%2 == 0 && st.BytesSpilled == 0 {
			t.Errorf("budgeted session %d never spilled: %+v", i, st)
		}
		if i%2 == 1 && st.BytesSpilled != 0 {
			t.Errorf("unbudgeted session %d spilled: %+v", i, st)
		}
	}
	if st := shared.QueryStats(); st.MemoryInUse != 0 {
		t.Errorf("engine-wide reserved memory leaked: %d bytes", st.MemoryInUse)
	}
}

// TestSpillErrorReleasesBudget: a query that fails mid-drain inside a
// budgeted materializing operator must release every reserved byte (a
// leak would ratchet the session toward permanent spilling).
func TestSpillErrorReleasesBudget(t *testing.T) {
	db := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: 64 << 10, SpillDir: t.TempDir()})
	bigTable(db)
	db.MustExec(`INSERT INTO big VALUES (99999, 0, 'zero')`)
	for _, q := range []string{
		`SELECT a / b FROM big ORDER BY 1`,                      // row or vec sort drain fails
		`SELECT b, sum(a / b) FROM big GROUP BY b`,              // agg drain fails
		`SELECT DISTINCT a / b FROM big`,                        // distinct drain fails
		`SELECT x.a FROM big AS x JOIN big AS y ON x.a = y.a/0`, // join build fails
	} {
		if _, err := db.Query(q); err == nil {
			t.Fatalf("%q should fail (division by zero)", q)
		}
	}
	if st := db.QueryStats(); st.MemoryInUse != 0 {
		t.Fatalf("failed queries leaked %d reserved bytes: %+v", st.MemoryInUse, st)
	}
}

// TestSessionsBudgetIndependentlyWithoutSet: sessions that never issue
// SET memory_limit still get their own budget (session.New forks a
// handle), so one session exhausting its budget cannot deny grants to
// another.
func TestSessionsBudgetIndependentlyWithoutSet(t *testing.T) {
	shared := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: 96 << 10, SpillDir: t.TempDir()})
	bigTable(shared)
	s1, s2 := session.New(shared), session.New(shared)
	defer s1.Close()
	defer s2.Close()
	if _, err := s1.Run(`SELECT a % 9973, count(*) FROM big GROUP BY a % 9973`); err != nil {
		t.Fatal(err)
	}
	if s1.DB().SessionQueryStats().BytesSpilled == 0 {
		t.Fatal("session 1 under a 96 KiB budget did not spill")
	}
	// Session 2 has its own untouched budget: a small query must not
	// spill just because session 1 burned through its own.
	if _, err := s2.Run(`SELECT a FROM big WHERE a < 100 ORDER BY a`); err != nil {
		t.Fatal(err)
	}
	if st := s2.DB().SessionQueryStats(); st.BytesSpilled != 0 {
		t.Fatalf("session 2's small sort spilled (budgets not independent): %+v", st)
	}
}

// TestSpillTransparencyFig10 is the acceptance gate: with a 4 MiB
// budget, the Fig. 10 TPC-H queries Q1/Q3/Q10/Q15 — normal and with
// provenance — complete with results identical to unbudgeted runs.
func TestSpillTransparencyFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H spill test skipped with -short")
	}
	const sf = 0.002
	budgeted := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: 4 << 20, SpillDir: t.TempDir()})
	unlimited := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1})
	tpch.MustLoad(budgeted, sf, 42)
	tpch.MustLoad(unlimited, sf, 42)
	rng := tpch.NewRand(7)
	for _, n := range []int{1, 3, 10, 15} {
		q := tpch.MustQGen(n, rng)
		for _, db := range []*perm.Database{budgeted, unlimited} {
			for _, s := range q.Setup {
				db.MustExec(s)
			}
		}
		assertIdenticalResult(t, budgeted, unlimited, q.Text)
		assertIdenticalResult(t, budgeted, unlimited, q.Provenance().Text)
		for _, db := range []*perm.Database{budgeted, unlimited} {
			for _, s := range q.Teardown {
				db.MustExec(s)
			}
		}
	}
	if st := budgeted.QueryStats(); st.MemoryInUse != 0 {
		t.Fatalf("reserved memory leaked: %d bytes", st.MemoryInUse)
	}
}

// TestSpillSynthCorpora runs the generated §V-B workloads — SPJ chains
// (the Fig. 13 shapes), set-operation trees and aggregation chains —
// normal and with provenance under a tight budget, requiring
// byte-identical results.
func TestSpillSynthCorpora(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H spill corpus skipped with -short")
	}
	const sf = 0.001
	budgeted := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: 48 << 10, SpillDir: t.TempDir()})
	unlimited := perm.NewDatabaseWithOptions(perm.Options{MemoryLimit: -1})
	tpch.MustLoad(budgeted, sf, 42)
	tpch.MustLoad(unlimited, sf, 42)
	maxKey, err := budgeted.TableRowCount("part")
	if err != nil {
		t.Fatal(err)
	}
	var queries []string
	for seed := uint64(1); seed <= 4; seed++ {
		rng := tpch.NewRand(seed)
		queries = append(queries, synth.SPJQuery(rng, int(seed)+1, maxKey))
		queries = append(queries, synth.SetOpQuery(rng, int(seed)+1, maxKey))
		queries = append(queries, synth.AggChainQuery(int(seed), maxKey))
	}
	for _, q := range queries {
		assertIdenticalResult(t, budgeted, unlimited, q)
		assertIdenticalResult(t, budgeted, unlimited, injectProv(q))
	}
	if st := budgeted.QueryStats(); st.BytesSpilled == 0 {
		t.Fatalf("48 KiB budget over TPC-H corpora never spilled: %+v", st)
	}
}
