// Query lifecycle introspection: the engine core shared by every handle
// (query IDs, the span tracer, the active-query registry, per-statement
// statistics), the per-statement bookkeeping that feeds them, live query
// cancellation, and the virtual system tables (perm_stat_activity,
// perm_stat_statements, perm_traces, perm_metrics) that expose it all
// through ordinary SQL.
package perm

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"perm/internal/catalog"
	"perm/internal/obs"
	"perm/internal/qcache"
	"perm/internal/types"
)

// engineCore is the introspection state shared by every Database handle
// derived from one NewDatabase call (WithOptions copies the pointer,
// like the catalog and the governor): the query-ID allocator, the span
// tracer and its ring buffer, the active-query registry, per-fingerprint
// statement statistics, and the lazily built shared metrics registry.
type engineCore struct {
	qid        atomic.Uint64
	sessionSeq atomic.Int64
	tracer     *obs.Tracer
	activity   *obs.Activity
	stmts      *obs.StmtStats
	ests       *obs.EstStore
	plans      *obs.PlanStore

	metricsOnce sync.Once
	metricsReg  *obs.Registry
}

func newEngineCore() *engineCore {
	return &engineCore{
		tracer:   obs.NewTracer(obs.DefaultTraceCapacity),
		activity: obs.NewActivity(),
		stmts:    obs.NewStmtStats(0),
		ests:     obs.NewEstStore(0),
		plans:    obs.NewPlanStore(0, 0),
	}
}

// envTraceWarn makes sure a malformed PERM_TRACE_SAMPLE is reported
// exactly once.
var envTraceWarn sync.Once

// effectiveTraceSample resolves the trace sampling rate: an explicit
// positive setting wins (trace every Nth query), negative is explicitly
// off, and 0 defers to the PERM_TRACE_SAMPLE environment variable and
// then to off.
func effectiveTraceSample(opts Options) int {
	switch {
	case opts.TraceSample > 0:
		return opts.TraceSample
	case opts.TraceSample < 0:
		return 0
	}
	if s := os.Getenv("PERM_TRACE_SAMPLE"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			envTraceWarn.Do(func() {
				fmt.Fprintf(os.Stderr, "perm: ignoring invalid PERM_TRACE_SAMPLE: %q\n", s)
			})
			return 0
		}
		return n
	}
	return 0
}

// SessionID returns the engine-unique ID of this handle's session
// (shown in perm_stat_activity).
func (db *Database) SessionID() int64 { return db.sessionID }

// Cancel requests cooperative cancellation of the in-flight query with
// the given ID (any session's). The target observes the flag at its
// next batch boundary and its issuer receives a clean "query cancelled"
// error; other queries are unaffected. Cancel fails when no such query
// is running.
func (db *Database) Cancel(queryID string) error {
	err := db.eng.activity.Cancel(queryID)
	if err == nil {
		obs.Events.Record(obs.EventCancel, queryID, "", "cancellation requested")
	}
	return err
}

// QueryInfo identifies the last statement this handle ran, for
// correlating external telemetry (the slow-query log) with the tracing
// subsystem.
type QueryInfo struct {
	ID    string // engine-unique query ID
	Spans string // one-line phase timing breakdown; "" unless the query was sampled
}

// LastQueryInfo returns the ID (and, when the query was sampled, the
// phase span breakdown) of the most recent statement this handle
// finished.
func (db *Database) LastQueryInfo() QueryInfo {
	if p := db.lastQ.Load(); p != nil {
		return *p
	}
	return QueryInfo{}
}

// ---------------------------------------------------------------------------
// Per-statement lifecycle bookkeeping

// queryRun carries one statement's introspection state through the
// pipeline: its active-query registration, its (possibly nil) trace,
// and the currently open phase span. All methods are nil-receiver safe
// so untracked internal executions pass nil and cost nothing.
type queryRun struct {
	db    *Database
	aq    *obs.ActiveQuery
	trace *obs.Trace
	norm  string
	start time.Time
	span  int
	// timer is the armed statement-timeout deadline (nil when the handle
	// has no timeout configured); finish stops it.
	timer *time.Timer
	// fresh marks that this statement's compiled artifact was built this
	// run (a cache miss): the execution that follows hashes its physical
	// plan into the plan-flip store. Cache hits replay a tree the store
	// has already seen, so hashing them would only re-render plans.
	fresh bool
}

// beginQuery registers a statement with the engine: allocates its query
// ID, fingerprints it, makes it visible in perm_stat_activity and — for
// every traceEvery-th query — opens a lifecycle trace. The caller must
// call finish exactly once.
func (db *Database) beginQuery(text string) *queryRun {
	eng := db.eng
	start := time.Now()
	id := "q" + strconv.FormatUint(eng.qid.Add(1), 10)
	norm := qcache.Normalize(text)
	fp := qcache.FingerprintNormalized(norm)
	budget := db.budget
	aq := &obs.ActiveQuery{
		ID:          id,
		Session:     db.sessionID,
		SQL:         text,
		Fingerprint: fp,
		Start:       start,
		MemStats: func() (int64, int64) {
			s := budget.Stats()
			return s.InUse, s.BytesSpilled
		},
	}
	trace := eng.tracer.Sample(db.traceEvery, id, fp, text, start)
	eng.activity.Register(aq)
	qr := &queryRun{db: db, aq: aq, trace: trace, norm: norm, start: start, span: -1}
	if d := db.stmtTimeout; d > 0 {
		// The deadline rides the cooperative cancellation path: it only
		// flips the query's cancel flag, which executors observe at the
		// next batch boundary. CancelTimeout reports whether this timer
		// won the race against an explicit CANCEL, so the counter ticks
		// once per statement actually terminated by timeout.
		qr.timer = time.AfterFunc(d, func() {
			if aq.CancelTimeout(d) {
				obs.StatementTimeouts.Inc()
				obs.Events.Record(obs.EventStatementTimeout, aq.ID, aq.Fingerprint,
					"statement timeout after "+d.String())
			}
		})
	}
	return qr
}

// phase publishes the statement's pipeline phase and, when tracing,
// closes the previous phase span and opens the next.
func (qr *queryRun) phase(p obs.Phase) {
	if qr == nil {
		return
	}
	qr.aq.SetPhase(p)
	if qr.trace != nil {
		qr.trace.End(qr.span)
		qr.span = qr.trace.Begin(p.String())
	}
}

// activeQuery returns the registration record (nil for an untracked
// run), for executors that poll cancellation and count progress.
func (qr *queryRun) activeQuery() *obs.ActiveQuery {
	if qr == nil {
		return nil
	}
	return qr.aq
}

// finish completes the statement: deregisters it, accounts it in the
// per-fingerprint statistics, stores the completed trace, and records
// the handle's last-query info for log correlation.
func (qr *queryRun) finish(err error) {
	if qr == nil {
		return
	}
	if qr.timer != nil {
		qr.timer.Stop()
	}
	qr.trace.End(qr.span)
	eng := qr.db.eng
	dur := time.Since(qr.start)
	eng.activity.Deregister(qr.aq)
	eng.stmts.Observe(qr.aq.Fingerprint, qr.norm, dur, qr.aq.Rows(), err != nil)
	eng.plans.NoteExec(qr.aq.Fingerprint, dur.Nanoseconds())
	if qr.trace != nil {
		eng.tracer.Store.Put(qr.trace)
	}
	info := QueryInfo{ID: qr.aq.ID, Spans: qr.trace.PhaseBreakdown()}
	qr.db.lastQ.Store(&info)
}

// ---------------------------------------------------------------------------
// Virtual system tables

// registerSystemViews registers the introspection relations on the
// catalog. They are ordinary relations to the analyzer and planner —
// joins, aggregates and provenance rewrites compose over them — except
// their rows are generated from live engine state at execution time.
func registerSystemViews(db *Database) {
	eng := db.eng
	mustRegister := func(v *catalog.VirtualTable) {
		if err := db.cat.RegisterVirtual(v); err != nil {
			// Registration happens once, on a fresh catalog, with
			// engine-chosen names; failure is a programming error.
			panic(err)
		}
	}

	mustRegister(&catalog.VirtualTable{
		Name: "perm_stat_activity",
		Cols: []catalog.Column{
			{Name: "query_id", Type: types.KindString},
			{Name: "session_id", Type: types.KindInt},
			{Name: "phase", Type: types.KindString},
			{Name: "query", Type: types.KindString},
			{Name: "fingerprint", Type: types.KindString},
			{Name: "elapsed_ms", Type: types.KindFloat},
			{Name: "rows_emitted", Type: types.KindInt},
			{Name: "morsels_claimed", Type: types.KindInt},
			{Name: "morsels_total", Type: types.KindInt},
			{Name: "mem_reserved_bytes", Type: types.KindInt},
			{Name: "spilled_bytes", Type: types.KindInt},
			{Name: "cancel_requested", Type: types.KindBool},
		},
		Rows: func() []types.Row {
			snap := eng.activity.Snapshot()
			rows := make([]types.Row, 0, len(snap))
			for _, q := range snap {
				claimed, total := q.Morsels()
				var reserved, spilled int64
				if q.MemStats != nil {
					reserved, spilled = q.MemStats()
				}
				rows = append(rows, types.Row{
					types.NewString(q.ID),
					types.NewInt(q.Session),
					types.NewString(q.Phase().String()),
					types.NewString(q.SQL),
					types.NewString(q.Fingerprint),
					types.NewFloat(float64(time.Since(q.Start).Nanoseconds()) / 1e6),
					types.NewInt(q.Rows()),
					types.NewInt(claimed),
					types.NewInt(total),
					types.NewInt(reserved),
					types.NewInt(spilled),
					types.NewBool(q.Cancelled()),
				})
			}
			return rows
		},
	})

	mustRegister(&catalog.VirtualTable{
		Name: "perm_stat_statements",
		Cols: []catalog.Column{
			{Name: "fingerprint", Type: types.KindString},
			{Name: "query", Type: types.KindString},
			{Name: "calls", Type: types.KindInt},
			{Name: "errors", Type: types.KindInt},
			{Name: "rows_emitted", Type: types.KindInt},
			{Name: "total_ms", Type: types.KindFloat},
			{Name: "mean_ms", Type: types.KindFloat},
			{Name: "p50_ms", Type: types.KindFloat},
			{Name: "p99_ms", Type: types.KindFloat},
			{Name: "max_ms", Type: types.KindFloat},
		},
		Rows: func() []types.Row {
			snap := eng.stmts.Snapshot()
			rows := make([]types.Row, 0, len(snap))
			for i := range snap {
				st := &snap[i]
				rows = append(rows, types.Row{
					types.NewString(st.Fingerprint),
					types.NewString(st.Query),
					types.NewInt(st.Calls),
					types.NewInt(st.Errors),
					types.NewInt(st.Rows),
					types.NewFloat(float64(st.TotalNS) / 1e6),
					types.NewFloat(float64(st.MeanNS()) / 1e6),
					types.NewFloat(st.Hist.Quantile(0.50) / 1e6),
					types.NewFloat(st.Hist.Quantile(0.99) / 1e6),
					types.NewFloat(float64(st.MaxNS) / 1e6),
				})
			}
			return rows
		},
	})

	mustRegister(&catalog.VirtualTable{
		Name: "perm_traces",
		Cols: []catalog.Column{
			{Name: "query_id", Type: types.KindString},
			{Name: "fingerprint", Type: types.KindString},
			{Name: "query", Type: types.KindString},
			{Name: "span", Type: types.KindString},
			{Name: "depth", Type: types.KindInt},
			{Name: "start_ms", Type: types.KindFloat},
			{Name: "duration_ms", Type: types.KindFloat},
			{Name: "rows_emitted", Type: types.KindInt},
		},
		Rows: func() []types.Row {
			var rows []types.Row
			for _, t := range eng.tracer.Store.Snapshot() {
				for _, sp := range t.Spans {
					rows = append(rows, types.Row{
						types.NewString(t.QueryID),
						types.NewString(t.Fingerprint),
						types.NewString(t.SQL),
						types.NewString(sp.Name),
						types.NewInt(int64(sp.Depth)),
						types.NewFloat(float64(sp.StartNS) / 1e6),
						types.NewFloat(float64(sp.DurNS) / 1e6),
						types.NewInt(sp.Rows),
					})
				}
			}
			return rows
		},
	})

	mustRegister(&catalog.VirtualTable{
		Name: "perm_stat_estimates",
		Cols: []catalog.Column{
			{Name: "fingerprint", Type: types.KindString},
			{Name: "query", Type: types.KindString},
			{Name: "analyzed", Type: types.KindInt},
			{Name: "ops", Type: types.KindInt},
			{Name: "max_qerr", Type: types.KindFloat},
			{Name: "mean_qerr", Type: types.KindFloat},
			{Name: "worst_op", Type: types.KindString},
			{Name: "worst_est", Type: types.KindFloat},
			{Name: "worst_act", Type: types.KindInt},
			{Name: "last_seen_ms", Type: types.KindFloat},
		},
		Rows: func() []types.Row {
			snap := eng.ests.Snapshot()
			rows := make([]types.Row, 0, len(snap))
			for i := range snap {
				r := &snap[i]
				rows = append(rows, types.Row{
					types.NewString(r.Fingerprint),
					types.NewString(r.Query),
					types.NewInt(r.Analyzed),
					types.NewInt(r.Ops),
					types.NewFloat(r.MaxQErr),
					types.NewFloat(r.MeanQErr()),
					types.NewString(r.WorstOp),
					types.NewFloat(r.WorstEst),
					types.NewInt(r.WorstAct),
					types.NewFloat(float64(time.Since(r.LastSeen).Nanoseconds()) / 1e6),
				})
			}
			return rows
		},
	})

	mustRegister(&catalog.VirtualTable{
		Name: "perm_stat_plans",
		Cols: []catalog.Column{
			{Name: "fingerprint", Type: types.KindString},
			{Name: "query", Type: types.KindString},
			{Name: "old_plan", Type: types.KindString},
			{Name: "new_plan", Type: types.KindString},
			{Name: "trigger", Type: types.KindString},
			{Name: "flips", Type: types.KindInt},
			{Name: "age_ms", Type: types.KindFloat},
			{Name: "before_mean_ms", Type: types.KindFloat},
			{Name: "after_mean_ms", Type: types.KindFloat},
		},
		Rows: func() []types.Row {
			flips := eng.plans.Flips()
			rows := make([]types.Row, 0, len(flips))
			for i := range flips {
				f := &flips[i]
				rows = append(rows, types.Row{
					types.NewString(f.Fingerprint),
					types.NewString(f.Query),
					types.NewString(fmt.Sprintf("%016x", f.OldHash)),
					types.NewString(fmt.Sprintf("%016x", f.NewHash)),
					types.NewString(f.Trigger),
					types.NewInt(f.Flips),
					types.NewFloat(float64(time.Since(f.At).Nanoseconds()) / 1e6),
					types.NewFloat(float64(f.BeforeMeanNS) / 1e6),
					types.NewFloat(float64(f.AfterMeanNS) / 1e6),
				})
			}
			return rows
		},
	})

	mustRegister(&catalog.VirtualTable{
		Name: "perm_events",
		Cols: []catalog.Column{
			{Name: "seq", Type: types.KindInt},
			{Name: "age_ms", Type: types.KindFloat},
			{Name: "kind", Type: types.KindString},
			{Name: "query_id", Type: types.KindString},
			{Name: "fingerprint", Type: types.KindString},
			{Name: "detail", Type: types.KindString},
		},
		Rows: func() []types.Row {
			snap := obs.Events.Snapshot()
			rows := make([]types.Row, 0, len(snap))
			for i := range snap {
				e := &snap[i]
				rows = append(rows, types.Row{
					types.NewInt(e.Seq),
					types.NewFloat(float64(time.Since(e.At).Nanoseconds()) / 1e6),
					types.NewString(e.Kind),
					types.NewString(e.QueryID),
					types.NewString(e.Fingerprint),
					types.NewString(e.Detail),
				})
			}
			return rows
		},
	})

	mustRegister(&catalog.VirtualTable{
		Name: "perm_metrics",
		Cols: []catalog.Column{
			{Name: "name", Type: types.KindString},
			{Name: "labels", Type: types.KindString},
			{Name: "value", Type: types.KindFloat},
		},
		Rows: func() []types.Row {
			samples := db.Metrics().Samples()
			rows := make([]types.Row, 0, len(samples))
			for _, s := range samples {
				rows = append(rows, types.Row{
					types.NewString(s.Name),
					types.NewString(s.Labels),
					types.NewFloat(s.Value),
				})
			}
			return rows
		},
	})
}
