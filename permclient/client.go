// Package permclient is a tiny Go client for the permd query service.
// It speaks the length-prefixed wire protocol (perm/internal/wire) over
// TCP and returns results as *perm.Result, rendering byte-identically to
// an embedded perm.Database.
//
//	c, err := permclient.Dial("localhost:5433")
//	res, err := c.Query("SELECT PROVENANCE name FROM shop")
//	fmt.Print(res) // same table an embedded Database would print
package permclient

import (
	"bufio"
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"perm"
	"perm/internal/obs"
	"perm/internal/wire"
)

// Config tunes a client's resilience behavior. The zero value matches
// the pre-Config client: 10s dial timeout, no read/write deadlines, no
// automatic retries.
type Config struct {
	// DialTimeout bounds connection establishment (0: 10 seconds).
	DialTimeout time.Duration
	// ReadTimeout bounds each response read and WriteTimeout each
	// request write (0: no deadline). A read timeout must exceed the
	// longest query the client expects to run.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// MaxRetries bounds automatic retries per request (0: no retries).
	// A request the server shed without executing (Error.Retryable:
	// overloaded, draining) is retried verbatim on the same connection.
	// A request whose fate a network failure left unknown is retried
	// only when its operation is idempotent (Query, Explain, Ping), on
	// a fresh connection — which is a new server session, so prior SETs
	// and prepared statements do not carry over.
	MaxRetries int
	// RetryBase and RetryMax shape the exponential backoff between
	// retries (defaults: 50ms base, 2s cap), jittered ±50% so a herd of
	// shed clients does not re-arrive in lockstep.
	RetryBase time.Duration
	RetryMax  time.Duration
}

// Error is a structured server-reported failure: the machine-readable
// code from the response frame (may be empty) and the human-readable
// message.
type Error struct {
	Code string
	Msg  string
}

func (e *Error) Error() string { return e.Msg }

// Retryable reports whether the server rejected the request without
// executing it (overloaded, draining) — safe to retry verbatim, even
// for non-idempotent statements.
func (e *Error) Retryable() bool { return wire.Retryable(e.Code) }

// Client is one connection to a permd server. It is safe for concurrent
// use; requests are serialized on the connection (one in flight at a
// time), matching the server's per-connection session semantics.
type Client struct {
	addr string
	cfg  Config

	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a permd server.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, Config{})
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	return DialConfig(addr, Config{DialTimeout: timeout})
}

// DialConfig connects with explicit timeout and retry configuration.
func DialConfig(addr string, cfg Config) (*Client, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	c := &Client{addr: addr, cfg: cfg}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

// redial (re)establishes the connection. Caller holds c.mu (or owns the
// client exclusively, as DialConfig does).
func (c *Client) redial() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	if c.conn != nil {
		c.conn.Close() //nolint:errcheck
	}
	c.conn, c.r, c.w = conn, bufio.NewReader(conn), bufio.NewWriter(conn)
	return nil
}

// Close closes the connection (the server drops the session, including
// its prepared statements).
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// idempotent reports whether an operation is safe to re-send when a
// network failure leaves its fate unknown: the server may have executed
// it, so only operations without side effects qualify.
func idempotent(op string) bool {
	switch op {
	case wire.OpQuery, wire.OpExplain, wire.OpExplainAnalyze, wire.OpPing:
		return true
	}
	return false
}

// backoff returns the pause before the next retry: exponential from
// RetryBase, capped at RetryMax, jittered to 50–100% of the nominal
// delay.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.RetryBase << uint(attempt)
	if d <= 0 || d > c.cfg.RetryMax {
		d = c.cfg.RetryMax
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// roundTrip sends one request and reads its response, retrying per the
// client's Config.
func (c *Client) roundTrip(req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		resp, err := c.once(req)
		if err == nil {
			return resp, nil
		}
		if attempt >= c.cfg.MaxRetries {
			return nil, err
		}
		var se *Error
		switch {
		case errors.As(err, &se):
			// The server answered: only codes marking the request as
			// shed without execution are retried. The connection and its
			// session are intact.
			if !se.Retryable() {
				return nil, err
			}
		case idempotent(req.Op):
			// Network failure mid-exchange; the connection is desynced,
			// so retry on a fresh one. A failed redial leaves the dead
			// connection in place and the next attempt fails fast.
			c.redial() //nolint:errcheck
		default:
			return nil, err
		}
		obs.ClientRetries.Inc()
		time.Sleep(c.backoff(attempt))
	}
}

// once performs a single request/response exchange under the configured
// deadlines.
func (c *Client) once(req *wire.Request) (*wire.Response, error) {
	if d := c.cfg.WriteTimeout; d > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(d)) //nolint:errcheck
	}
	if err := wire.WriteFrame(c.w, req); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	if d := c.cfg.ReadTimeout; d > 0 {
		c.conn.SetReadDeadline(time.Now().Add(d)) //nolint:errcheck
	}
	resp, err := wire.ReadResponse(c.r)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, &Error{Code: resp.Code, Msg: resp.Err}
	}
	return resp, nil
}

// Ping checks that the server is alive.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpPing})
	return err
}

// Cancel requests cooperative cancellation of the in-flight query with
// the given engine query ID (as shown in perm_stat_activity). The
// request is handled out of band on the server — it does not wait
// behind the worker pool — so it can cancel the very queries saturating
// it. Use a separate connection from the one running the target query:
// requests on one connection are serialized.
func (c *Client) Cancel(queryID string) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpCancel, Name: queryID})
	return err
}

// Query runs a SELECT (or EXPLAIN) and returns its result.
func (c *Client) Query(sql string) (*perm.Result, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpQuery, SQL: sql})
	if err != nil {
		return nil, err
	}
	return perm.NewRawResult(resp.Columns, resp.Prov, resp.Rows), nil
}

// Exec runs one or more statements of the service dialect (DDL, DML,
// PREPARE name AS ..., SET option = value, ...). For statements that
// return rows it returns (result, 0); otherwise (nil, affected).
func (c *Client) Exec(sql string) (*perm.Result, int, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpExec, SQL: sql})
	if err != nil {
		return nil, 0, err
	}
	if resp.Columns != nil {
		return perm.NewRawResult(resp.Columns, resp.Prov, resp.Rows), 0, nil
	}
	return nil, resp.Affected, nil
}

// Prepare compiles a SELECT under a name in this connection's session.
func (c *Client) Prepare(name, sql string) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpPrepare, Name: name, SQL: sql})
	return err
}

// Execute runs a statement prepared on this connection.
func (c *Client) Execute(name string) (*perm.Result, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpExecute, Name: name})
	if err != nil {
		return nil, err
	}
	return perm.NewRawResult(resp.Columns, resp.Prov, resp.Rows), nil
}

// Explain returns the physical plan of a query as indented text.
func (c *Client) Explain(sql string) (string, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpExplain, SQL: sql})
	if err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// ExplainAnalyze executes a query on the server under instrumentation
// and returns the plan annotated with per-operator runtime statistics.
func (c *Client) ExplainAnalyze(sql string) (string, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpExplainAnalyze, SQL: sql})
	if err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// Set changes one session option (see session.SetOption for names).
func (c *Client) Set(option, value string) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpSet, Name: option, SQL: value})
	return err
}
