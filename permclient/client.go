// Package permclient is a tiny Go client for the permd query service.
// It speaks the length-prefixed wire protocol (perm/internal/wire) over
// TCP and returns results as *perm.Result, rendering byte-identically to
// an embedded perm.Database.
//
//	c, err := permclient.Dial("localhost:5433")
//	res, err := c.Query("SELECT PROVENANCE name FROM shop")
//	fmt.Print(res) // same table an embedded Database would print
package permclient

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"perm"
	"perm/internal/wire"
)

// Client is one connection to a permd server. It is safe for concurrent
// use; requests are serialized on the connection (one in flight at a
// time), matching the server's per-connection session semantics.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a permd server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close closes the connection (the server drops the session, including
// its prepared statements).
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends one request and reads its response.
func (c *Client) roundTrip(req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := wire.WriteFrame(c.w, req); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	resp, err := wire.ReadResponse(c.r)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("%s", resp.Err)
	}
	return resp, nil
}

// Ping checks that the server is alive.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpPing})
	return err
}

// Cancel requests cooperative cancellation of the in-flight query with
// the given engine query ID (as shown in perm_stat_activity). The
// request is handled out of band on the server — it does not wait
// behind the worker pool — so it can cancel the very queries saturating
// it. Use a separate connection from the one running the target query:
// requests on one connection are serialized.
func (c *Client) Cancel(queryID string) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpCancel, Name: queryID})
	return err
}

// Query runs a SELECT (or EXPLAIN) and returns its result.
func (c *Client) Query(sql string) (*perm.Result, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpQuery, SQL: sql})
	if err != nil {
		return nil, err
	}
	return perm.NewRawResult(resp.Columns, resp.Prov, resp.Rows), nil
}

// Exec runs one or more statements of the service dialect (DDL, DML,
// PREPARE name AS ..., SET option = value, ...). For statements that
// return rows it returns (result, 0); otherwise (nil, affected).
func (c *Client) Exec(sql string) (*perm.Result, int, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpExec, SQL: sql})
	if err != nil {
		return nil, 0, err
	}
	if resp.Columns != nil {
		return perm.NewRawResult(resp.Columns, resp.Prov, resp.Rows), 0, nil
	}
	return nil, resp.Affected, nil
}

// Prepare compiles a SELECT under a name in this connection's session.
func (c *Client) Prepare(name, sql string) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpPrepare, Name: name, SQL: sql})
	return err
}

// Execute runs a statement prepared on this connection.
func (c *Client) Execute(name string) (*perm.Result, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpExecute, Name: name})
	if err != nil {
		return nil, err
	}
	return perm.NewRawResult(resp.Columns, resp.Prov, resp.Rows), nil
}

// Explain returns the physical plan of a query as indented text.
func (c *Client) Explain(sql string) (string, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpExplain, SQL: sql})
	if err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// ExplainAnalyze executes a query on the server under instrumentation
// and returns the plan annotated with per-operator runtime statistics.
func (c *Client) ExplainAnalyze(sql string) (string, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpExplainAnalyze, SQL: sql})
	if err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// Set changes one session option (see session.SetOption for names).
func (c *Client) Set(option, value string) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpSet, Name: option, SQL: value})
	return err
}
