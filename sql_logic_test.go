package perm_test

import (
	"strings"
	"testing"

	"perm"
)

// logicDB builds a small database used by the SQL logic tests.
func logicDB(t testing.TB) *perm.Database {
	t.Helper()
	db := perm.NewDatabase()
	db.MustExec(`
		CREATE TABLE nums (n int, label text);
		INSERT INTO nums VALUES (1, 'one'), (2, 'two'), (3, 'three'), (4, NULL), (NULL, 'nil');
		CREATE TABLE pairs (a int, b int);
		INSERT INTO pairs VALUES (1, 10), (2, 20), (2, 21), (5, 50);
		CREATE TABLE empty_t (x int, y text);
	`)
	return db
}

// queryCase is one table-driven logic test.
type queryCase struct {
	name   string
	query  string
	want   []string // order-insensitive unless sorted is true
	sorted bool
}

func runCases(t *testing.T, db *perm.Database, cases []queryCase) {
	t.Helper()
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := db.Query(c.query)
			if err != nil {
				t.Fatalf("%s: %v", c.query, err)
			}
			if c.sorted {
				got := make([]string, len(res.Rows))
				for i, row := range res.Rows {
					parts := make([]string, len(row))
					for j, v := range row {
						parts[j] = v.String()
					}
					got[i] = strings.Join(parts, "|")
				}
				if len(got) != len(c.want) {
					t.Fatalf("got %d rows %v, want %d %v", len(got), got, len(c.want), c.want)
				}
				for i := range got {
					if got[i] != c.want[i] {
						t.Fatalf("row %d: got %q want %q\nall: %v", i, got[i], c.want[i], got)
					}
				}
				return
			}
			expectRows(t, res, c.want)
		})
	}
}

func TestSelectBasics(t *testing.T) {
	db := logicDB(t)
	runCases(t, db, []queryCase{
		{name: "project", query: "SELECT n FROM nums WHERE n < 3",
			want: []string{"1", "2"}},
		{name: "star", query: "SELECT * FROM pairs WHERE a = 1",
			want: []string{"1|10"}},
		{name: "computed", query: "SELECT n * 10 + 1 FROM nums WHERE n = 2",
			want: []string{"21"}},
		{name: "alias", query: "SELECT n AS num FROM nums WHERE n IS NULL",
			want: []string{"NULL"}},
		{name: "no-from", query: "SELECT 1 + 2, 'x'",
			want: []string{"3|x"}},
		{name: "where-null-dropped", query: "SELECT n FROM nums WHERE n > 0",
			want: []string{"1", "2", "3", "4"}}, // NULL > 0 is unknown → dropped
		{name: "distinct", query: "SELECT DISTINCT a FROM pairs",
			want: []string{"1", "2", "5"}},
		{name: "is-null", query: "SELECT label FROM nums WHERE n IS NULL",
			want: []string{"nil"}},
		{name: "is-not-null", query: "SELECT n FROM nums WHERE label IS NOT NULL AND n IS NOT NULL",
			want: []string{"1", "2", "3"}},
		{name: "not-distinct", query: "SELECT count(*) FROM nums WHERE n IS DISTINCT FROM 1",
			want: []string{"4"}},
		{name: "in-list", query: "SELECT n FROM nums WHERE n IN (1, 3, 99)",
			want: []string{"1", "3"}},
		{name: "not-in-list", query: "SELECT n FROM nums WHERE n NOT IN (1, 3)",
			want: []string{"2", "4"}},
		{name: "between", query: "SELECT n FROM nums WHERE n BETWEEN 2 AND 3",
			want: []string{"2", "3"}},
		{name: "like", query: "SELECT label FROM nums WHERE label LIKE 't%'",
			want: []string{"two", "three"}},
		{name: "like-underscore", query: "SELECT label FROM nums WHERE label LIKE '_n_'",
			want: []string{"one"}},
		{name: "case", query: "SELECT CASE WHEN n < 3 THEN 'lo' ELSE 'hi' END FROM nums WHERE n IS NOT NULL",
			want: []string{"lo", "lo", "hi", "hi"}},
		{name: "case-operand", query: "SELECT CASE n WHEN 1 THEN 'a' WHEN 2 THEN 'b' END FROM nums WHERE n <= 3",
			want: []string{"a", "b", "NULL"}},
		{name: "cast", query: "SELECT CAST(n AS text) FROM nums WHERE n = 1",
			want: []string{"1"}},
		{name: "coalesce", query: "SELECT coalesce(n, 0) FROM nums",
			want: []string{"1", "2", "3", "4", "0"}},
		{name: "string-funcs", query: "SELECT upper(label), length(label), substring(label, 1, 2) FROM nums WHERE n = 3",
			want: []string{"THREE|5|th"}},
		{name: "concat-op", query: "SELECT label || '!' FROM nums WHERE n = 1",
			want: []string{"one!"}},
	})
}

func TestJoins(t *testing.T) {
	db := logicDB(t)
	runCases(t, db, []queryCase{
		{name: "inner-implicit", query: "SELECT n, b FROM nums, pairs WHERE n = a",
			want: []string{"1|10", "2|20", "2|21"}},
		{name: "inner-explicit", query: "SELECT n, b FROM nums JOIN pairs ON n = a",
			want: []string{"1|10", "2|20", "2|21"}},
		{name: "left", query: "SELECT n, b FROM nums LEFT JOIN pairs ON n = a WHERE n IS NOT NULL",
			want: []string{"1|10", "2|20", "2|21", "3|NULL", "4|NULL"}},
		{name: "right", query: "SELECT n, b FROM nums RIGHT JOIN pairs ON n = a",
			want: []string{"1|10", "2|20", "2|21", "NULL|50"}},
		{name: "full", query: "SELECT n, b FROM nums FULL JOIN pairs ON n = a",
			want: []string{"1|10", "2|20", "2|21", "3|NULL", "4|NULL", "NULL|NULL", "NULL|50"}},
		{name: "cross", query: "SELECT count(*) FROM nums CROSS JOIN pairs",
			want: []string{"20"}},
		{name: "non-equi", query: "SELECT n, a FROM nums JOIN pairs ON n < a WHERE n = 4",
			want: []string{"4|5"}},
		{name: "self-join", query: "SELECT p1.a, p2.b FROM pairs AS p1, pairs AS p2 WHERE p1.b = p2.b AND p1.a = 5",
			want: []string{"5|50"}},
		{name: "three-way", query: "SELECT count(*) FROM nums, pairs, empty_t",
			want: []string{"0"}},
		{name: "using", query: "SELECT count(*) FROM pairs AS p1 JOIN (SELECT a FROM pairs) AS p2 USING (a)",
			want: []string{"6"}}, // a=2 matches 2x2
	})
}

func TestAggregation(t *testing.T) {
	db := logicDB(t)
	runCases(t, db, []queryCase{
		{name: "global", query: "SELECT count(*), count(n), sum(n), min(n), max(n) FROM nums",
			want: []string{"5|4|10|1|4"}},
		{name: "avg", query: "SELECT avg(b) FROM pairs",
			want: []string{"25.25"}},
		{name: "group", query: "SELECT a, count(*), sum(b) FROM pairs GROUP BY a",
			want: []string{"1|1|10", "2|2|41", "5|1|50"}},
		{name: "group-expr", query: "SELECT n % 2, count(*) FROM nums WHERE n IS NOT NULL GROUP BY n % 2",
			want: []string{"0|2", "1|2"}},
		{name: "having", query: "SELECT a FROM pairs GROUP BY a HAVING count(*) > 1",
			want: []string{"2"}},
		{name: "having-no-group", query: "SELECT sum(b) FROM pairs HAVING count(*) > 100",
			want: []string{}},
		{name: "empty-global", query: "SELECT count(*), sum(x), min(x) FROM empty_t",
			want: []string{"0|NULL|NULL"}},
		{name: "empty-grouped", query: "SELECT x, count(*) FROM empty_t GROUP BY x",
			want: []string{}},
		{name: "null-group", query: "SELECT n, count(*) FROM nums GROUP BY n",
			want: []string{"1|1", "2|1", "3|1", "4|1", "NULL|1"}},
		{name: "count-distinct", query: "SELECT count(DISTINCT a) FROM pairs",
			want: []string{"3"}},
		{name: "sum-distinct", query: "SELECT sum(DISTINCT a) FROM pairs",
			want: []string{"8"}},
		{name: "agg-in-expr", query: "SELECT sum(b) / count(*) FROM pairs",
			want: []string{"25"}},
		{name: "agg-over-join", query: "SELECT n, count(b) FROM nums JOIN pairs ON n = a GROUP BY n",
			want: []string{"1|1", "2|2"}},
	})
}

func TestSetOperations(t *testing.T) {
	db := logicDB(t)
	runCases(t, db, []queryCase{
		{name: "union", query: "SELECT a FROM pairs UNION SELECT n FROM nums WHERE n <= 2",
			want: []string{"1", "2", "5"}},
		{name: "union-all", query: "SELECT a FROM pairs UNION ALL SELECT n FROM nums WHERE n <= 2",
			want: []string{"1", "2", "2", "5", "1", "2"}},
		{name: "intersect", query: "SELECT a FROM pairs INTERSECT SELECT n FROM nums",
			want: []string{"1", "2"}},
		{name: "intersect-all", query: "SELECT a FROM pairs INTERSECT ALL SELECT a FROM pairs",
			want: []string{"1", "2", "2", "5"}},
		{name: "except", query: "SELECT a FROM pairs EXCEPT SELECT n FROM nums",
			want: []string{"5"}},
		{name: "except-all", query: "SELECT a FROM pairs EXCEPT ALL SELECT n FROM nums WHERE n = 2",
			want: []string{"1", "2", "5"}},
		{name: "union-nulls", query: "SELECT n FROM nums UNION SELECT n FROM nums",
			want: []string{"1", "2", "3", "4", "NULL"}},
		{name: "mixed-tree", query: "SELECT n FROM nums WHERE n = 1 UNION (SELECT n FROM nums WHERE n <= 2 EXCEPT SELECT n FROM nums WHERE n = 1)",
			want: []string{"1", "2"}},
		{name: "union-numeric-coercion", query: "SELECT n FROM nums WHERE n = 1 UNION SELECT avg(b) FROM pairs",
			want: []string{"1", "25.25"}},
	})
}

func TestSublinks(t *testing.T) {
	db := logicDB(t)
	runCases(t, db, []queryCase{
		{name: "scalar", query: "SELECT n FROM nums WHERE n = (SELECT min(a) FROM pairs)",
			want: []string{"1"}},
		{name: "scalar-empty", query: "SELECT n FROM nums WHERE n = (SELECT x FROM empty_t)",
			want: []string{}},
		{name: "in", query: "SELECT n FROM nums WHERE n IN (SELECT a FROM pairs)",
			want: []string{"1", "2"}},
		{name: "not-in", query: "SELECT n FROM nums WHERE n NOT IN (SELECT a FROM pairs)",
			want: []string{"3", "4"}},
		{name: "not-in-with-null", query: "SELECT a FROM pairs WHERE a NOT IN (SELECT n FROM nums)",
			want: []string{}}, // NULL in subquery → nothing passes NOT IN
		{name: "exists", query: "SELECT n FROM nums WHERE EXISTS (SELECT 1 FROM pairs WHERE a = 5) AND n = 1",
			want: []string{"1"}},
		{name: "not-exists-empty", query: "SELECT count(*) FROM nums WHERE NOT EXISTS (SELECT 1 FROM empty_t)",
			want: []string{"5"}},
		{name: "any", query: "SELECT n FROM nums WHERE n > ANY (SELECT a FROM pairs WHERE a < 3)",
			want: []string{"2", "3", "4"}},
		{name: "all", query: "SELECT n FROM nums WHERE n <= ALL (SELECT a FROM pairs)",
			want: []string{"1"}},
		{name: "all-empty", query: "SELECT count(*) FROM nums WHERE n > ALL (SELECT x FROM empty_t)",
			want: []string{"5"}},
		{name: "scalar-in-select", query: "SELECT n, (SELECT max(a) FROM pairs) FROM nums WHERE n = 1",
			want: []string{"1|5"}},
		{name: "in-having", query: "SELECT a FROM pairs GROUP BY a HAVING sum(b) > (SELECT min(b) FROM pairs)",
			want: []string{"2", "5"}},
	})
}

func TestOrderLimit(t *testing.T) {
	db := logicDB(t)
	runCases(t, db, []queryCase{
		{name: "order-asc", query: "SELECT n FROM nums ORDER BY n",
			want: []string{"1", "2", "3", "4", "NULL"}, sorted: true},
		{name: "order-desc", query: "SELECT n FROM nums ORDER BY n DESC",
			want: []string{"NULL", "4", "3", "2", "1"}, sorted: true},
		{name: "order-alias", query: "SELECT n * -1 AS neg FROM nums WHERE n IS NOT NULL ORDER BY neg",
			want: []string{"-4", "-3", "-2", "-1"}, sorted: true},
		{name: "order-ordinal", query: "SELECT label, n FROM nums WHERE n <= 2 ORDER BY 2 DESC",
			want: []string{"two|2", "one|1"}, sorted: true},
		{name: "order-expr", query: "SELECT n FROM nums WHERE n IS NOT NULL ORDER BY n % 2, n",
			want: []string{"2", "4", "1", "3"}, sorted: true},
		{name: "limit", query: "SELECT n FROM nums WHERE n IS NOT NULL ORDER BY n LIMIT 2",
			want: []string{"1", "2"}, sorted: true},
		{name: "limit-offset", query: "SELECT n FROM nums WHERE n IS NOT NULL ORDER BY n LIMIT 2 OFFSET 1",
			want: []string{"2", "3"}, sorted: true},
		{name: "order-agg", query: "SELECT a, sum(b) AS s FROM pairs GROUP BY a ORDER BY s DESC",
			want: []string{"5|50", "2|41", "1|10"}, sorted: true},
		{name: "order-setop", query: "SELECT a FROM pairs UNION SELECT n FROM nums WHERE n = 3 ORDER BY a DESC",
			want: []string{"5", "3", "2", "1"}, sorted: true},
	})
}

func TestSubqueriesInFrom(t *testing.T) {
	db := logicDB(t)
	runCases(t, db, []queryCase{
		{name: "basic", query: "SELECT s.n FROM (SELECT n FROM nums WHERE n < 3) AS s",
			want: []string{"1", "2"}},
		{name: "agg-inside", query: "SELECT total FROM (SELECT a, sum(b) AS total FROM pairs GROUP BY a) AS t WHERE total > 20",
			want: []string{"41", "50"}},
		{name: "nested", query: "SELECT x FROM (SELECT n AS x FROM (SELECT n FROM nums) AS inner1) AS outer1 WHERE x = 1",
			want: []string{"1"}},
		{name: "join-subqueries", query: "SELECT s1.n, s2.total FROM (SELECT n FROM nums) AS s1 JOIN (SELECT a, sum(b) AS total FROM pairs GROUP BY a) AS s2 ON s1.n = s2.a",
			want: []string{"1|10", "2|41"}},
	})
}

func TestViewsAndDML(t *testing.T) {
	db := logicDB(t)
	db.MustExec("CREATE VIEW big_pairs AS SELECT a, b FROM pairs WHERE b >= 20")
	runCases(t, db, []queryCase{
		{name: "view", query: "SELECT a FROM big_pairs",
			want: []string{"2", "2", "5"}},
		{name: "view-join", query: "SELECT v.a, n FROM big_pairs AS v JOIN nums ON v.a = n",
			want: []string{"2|2", "2|2"}},
	})

	// INSERT ... SELECT
	db.MustExec("CREATE TABLE copied (n int, label text)")
	if n, err := db.Exec("INSERT INTO copied SELECT n, label FROM nums WHERE n IS NOT NULL"); err != nil || n != 4 {
		t.Fatalf("insert-select = %d, %v", n, err)
	}
	// DELETE
	if n, err := db.Exec("DELETE FROM copied WHERE n > 2"); err != nil || n != 2 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	res := db.MustQuery("SELECT count(*) FROM copied")
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("after delete count = %s", res.Rows[0][0])
	}
	// DELETE all
	if n, err := db.Exec("DELETE FROM copied"); err != nil || n != 2 {
		t.Fatalf("delete-all = %d, %v", n, err)
	}
	// SELECT INTO
	db.MustExec("SELECT a, sum(b) AS total INTO summary FROM pairs GROUP BY a")
	res = db.MustQuery("SELECT count(*) FROM summary")
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("SELECT INTO row count = %s", res.Rows[0][0])
	}
	// DROP
	db.MustExec("DROP TABLE summary; DROP VIEW big_pairs")
	if _, err := db.Query("SELECT * FROM summary"); err == nil {
		t.Error("dropped table still queryable")
	}
}

func TestAnalysisErrors(t *testing.T) {
	db := logicDB(t)
	cases := []struct {
		name, query, wantSubstr string
	}{
		{"unknown-table", "SELECT * FROM nope", "does not exist"},
		{"unknown-column", "SELECT zzz FROM nums", "does not exist"},
		{"ambiguous", "SELECT a FROM pairs AS p1, pairs AS p2", "ambiguous"},
		{"dup-alias", "SELECT 1 FROM pairs, pairs", "more than once"},
		{"agg-in-where", "SELECT n FROM nums WHERE sum(n) > 1", "not allowed in WHERE"},
		{"ungrouped", "SELECT n, label, count(*) FROM nums GROUP BY n", "GROUP BY"},
		{"nested-agg", "SELECT sum(count(*)) FROM nums", "nested"},
		{"correlated", "SELECT n FROM nums WHERE n IN (SELECT a FROM pairs WHERE b = n)", "correlated"},
		{"correlated-scalar", "SELECT n FROM nums WHERE n = (SELECT max(a) FROM pairs WHERE a = n)", "correlated"},
		{"type-mismatch", "SELECT n + label FROM nums", "not defined"},
		{"compare-mismatch", "SELECT * FROM nums WHERE n = label", "cannot compare"},
		{"union-width", "SELECT n FROM nums UNION SELECT a, b FROM pairs", "same number of columns"},
		{"union-types", "SELECT n FROM nums UNION SELECT label FROM nums", "incompatible"},
		{"scalar-multi-col", "SELECT * FROM nums WHERE n = (SELECT a, b FROM pairs)", "one column"},
		{"bad-order-ordinal", "SELECT n FROM nums ORDER BY 9", "out of range"},
		{"unknown-func", "SELECT frobnicate(n) FROM nums", "unknown function"},
		{"where-not-bool", "SELECT n FROM nums WHERE n + 1", "must be boolean"},
		{"empty-select", "SELECT FROM nums", "expected expression"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, err := db.Query(c.query)
			if err == nil {
				t.Fatalf("query %q should fail", c.query)
			}
			if !strings.Contains(err.Error(), c.wantSubstr) {
				t.Errorf("error %q does not contain %q", err.Error(), c.wantSubstr)
			}
		})
	}
}

func TestRuntimeErrors(t *testing.T) {
	db := logicDB(t)
	if _, err := db.Query("SELECT n / 0 FROM nums WHERE n = 1"); err == nil {
		t.Error("division by zero should error")
	}
	if _, err := db.Query("SELECT n FROM nums WHERE n = (SELECT a FROM pairs)"); err == nil {
		t.Error("scalar subquery with >1 row should error")
	}
}

func TestDates(t *testing.T) {
	db := perm.NewDatabase()
	db.MustExec(`
		CREATE TABLE events (id int, d date);
		INSERT INTO events VALUES (1, '1995-01-15'), (2, '1995-06-17'), (3, '1996-03-01');
	`)
	runCases(t, db, []queryCase{
		{name: "compare", query: "SELECT id FROM events WHERE d < date '1995-12-31'",
			want: []string{"1", "2"}},
		{name: "interval-add", query: "SELECT id FROM events WHERE d >= date '1995-01-01' + interval '1' year",
			want: []string{"3"}},
		{name: "extract", query: "SELECT extract(year FROM d), extract(month FROM d), extract(day FROM d) FROM events WHERE id = 2",
			want: []string{"1995|6|17"}},
		{name: "group-by-year", query: "SELECT extract(year FROM d), count(*) FROM events GROUP BY extract(year FROM d)",
			want: []string{"1995|2", "1996|1"}},
		{name: "date-diff", query: "SELECT d - date '1995-01-15' FROM events WHERE id = 2",
			want: []string{"153"}},
	})
}

func TestExplain(t *testing.T) {
	db := logicDB(t)
	out, err := db.ExplainSQL("SELECT n, sum(b) FROM nums JOIN pairs ON n = a GROUP BY n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "HashJoin") {
		t.Errorf("equi-join should plan as HashJoin:\n%s", out)
	}
	if !strings.Contains(out, "HashAggregate") {
		t.Errorf("aggregation should plan as HashAggregate:\n%s", out)
	}
	res, err := db.Query("EXPLAIN SELECT n FROM nums")
	if err != nil || len(res.Rows) == 0 {
		t.Errorf("EXPLAIN statement failed: %v", err)
	}
	res, err = db.Query("EXPLAIN REWRITE SELECT PROVENANCE n FROM nums")
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, row := range res.Rows {
		joined += row[0].String() + "\n"
	}
	if !strings.Contains(joined, "prov_nums_n") {
		t.Errorf("EXPLAIN REWRITE missing provenance attribute:\n%s", joined)
	}
}
