// Package analyze performs semantic analysis: it turns parsed SQL
// statements into typed algebra.Query trees. This covers the "Parser &
// Analyzer" and "Rewriter" (view unfolding) stages of the paper's Fig. 5,
// producing exactly the query-tree shape the provenance rewriter consumes.
//
// Responsibilities: name resolution with proper scoping, view unfolding,
// star expansion, type checking, aggregate/GROUP BY validation, lowering
// of sugar (BETWEEN, IN-list, CASE operand form, EXTRACT), and rejection of
// correlated sublinks (unsupported, as in the paper's prototype).
package analyze

import (
	"fmt"
	"strings"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/provrewrite"
	"perm/internal/sql"
	"perm/internal/types"
)

// Analyzer resolves statements against a catalog.
type Analyzer struct {
	cat *catalog.Catalog
	// RewriteOpts configures the provenance rewriter, which the analyzer
	// invokes inline for nested SELECT PROVENANCE subqueries so that their
	// provenance attributes are resolvable by name in enclosing queries
	// (the analyzer changes §IV-B describes).
	RewriteOpts provrewrite.Options
}

// New returns an analyzer over the given catalog.
func New(cat *catalog.Catalog) *Analyzer { return &Analyzer{cat: cat} }

// rewriteIfRequested applies the provenance rewrite to a subquery marked
// with SELECT PROVENANCE, so enclosing scopes see the rewritten schema.
func (a *Analyzer) rewriteIfRequested(q *algebra.Query) (*algebra.Query, error) {
	if q == nil || !q.ProvenanceRequested {
		return q, nil
	}
	return provrewrite.RewriteTree(q, a.RewriteOpts)
}

// ErrCorrelated is returned (wrapped) when a sublink references a column of
// an enclosing query. The paper's prototype has the same limitation (§IV-E).
var ErrCorrelated = fmt.Errorf("correlated sublinks are not supported")

// scope is one level of name visibility: the RTEs of a query under
// analysis. Scopes nest for sublinks; resolution never crosses into an
// outer scope (that would be correlation) but we look there to produce a
// precise error.
type scope struct {
	rtes  []*algebra.RTE
	outer *scope
}

func (s *scope) addRTE(r *algebra.RTE) int {
	s.rtes = append(s.rtes, r)
	return len(s.rtes) - 1
}

// resolve finds a column in this scope only. Returns the var or an error
// listing ambiguity.
func (s *scope) resolve(table, column string) (*algebra.Var, error) {
	var found *algebra.Var
	for rt, rte := range s.rtes {
		if table != "" && rte.Alias != table {
			continue
		}
		for ci, col := range rte.Cols {
			if col.Name != column {
				continue
			}
			if found != nil {
				return nil, fmt.Errorf("column reference %q is ambiguous", refName(table, column))
			}
			found = &algebra.Var{RT: rt, Col: ci, Name: col.Name, Typ: col.Type}
		}
	}
	if found == nil {
		return nil, nil
	}
	return found, nil
}

func refName(table, column string) string {
	if table == "" {
		return column
	}
	return table + "." + column
}

// AnalyzeSelect analyzes a SELECT statement into a query tree.
func (a *Analyzer) AnalyzeSelect(stmt *sql.SelectStmt) (*algebra.Query, error) {
	return a.analyzeSelect(stmt, nil)
}

func (a *Analyzer) analyzeSelect(stmt *sql.SelectStmt, outer *scope) (*algebra.Query, error) {
	if stmt.Op != sql.SetNone {
		return a.analyzeSetOp(stmt, outer)
	}
	return a.analyzePlain(stmt, outer)
}

// ---------------------------------------------------------------------------
// Set operations

func (a *Analyzer) analyzeSetOp(stmt *sql.SelectStmt, outer *scope) (*algebra.Query, error) {
	q := &algebra.Query{ProvenanceRequested: stmt.Provenance}
	// A PROVENANCE keyword in the select-clause of the leftmost branch
	// marks the whole set-operation statement for rewriting, as in the
	// PostgreSQL prototype where the flag sits on the statement's query
	// node (§IV-B3).
	if lm := leftmostLeafStmt(stmt); lm != nil && lm.Provenance {
		lm.Provenance = false
		q.ProvenanceRequested = true
	}
	// The top-level operation is split manually (its ORDER BY/LIMIT belong
	// to the whole statement); nested branches go through buildSetOpTree,
	// which wraps branches carrying their own ORDER BY/LIMIT as subqueries.
	var opKind algebra.SetOpKind
	switch stmt.Op {
	case sql.SetUnion:
		opKind = algebra.SetUnion
	case sql.SetIntersect:
		opKind = algebra.SetIntersect
	case sql.SetExcept:
		opKind = algebra.SetExcept
	default:
		return nil, fmt.Errorf("internal: bad set operation")
	}
	left, err := a.buildSetOpTree(stmt.Left, q, outer)
	if err != nil {
		return nil, err
	}
	right, err := a.buildSetOpTree(stmt.Right, q, outer)
	if err != nil {
		return nil, err
	}
	ls, rs := a.leafSchema(q, left), a.leafSchema(q, right)
	if len(ls) != len(rs) {
		return nil, fmt.Errorf("%s requires inputs with the same number of columns (%d vs %d)",
			stmt.Op, len(ls), len(rs))
	}
	for i := range ls {
		if _, err := types.CommonKind(ls[i].Type, rs[i].Type); err != nil {
			return nil, fmt.Errorf("%s column %d: %v", stmt.Op, i+1, err)
		}
	}
	q.SetOp = &algebra.SetOpNode{Op: opKind, All: stmt.All, Left: left, Right: right}

	// The target list passes through the first branch's schema.
	first := firstLeaf(q.SetOp)
	branch := q.RangeTable[first.RT]
	for ci, col := range branch.Cols {
		q.TargetList = append(q.TargetList, algebra.TargetEntry{
			Expr: &algebra.Var{RT: first.RT, Col: ci, Name: col.Name, Typ: col.Type},
			Name: col.Name,
		})
	}
	if err := a.analyzeSortLimit(stmt, q, nil); err != nil {
		return nil, err
	}
	return q, nil
}

// buildSetOpTree recursively analyzes branches, adding them to q's range
// table. stmt nodes with Op form internal nodes; plain selects form leaves.
func (a *Analyzer) buildSetOpTree(stmt *sql.SelectStmt, q *algebra.Query, outer *scope) (algebra.SetOpItem, error) {
	if stmt.Op == sql.SetNone {
		sub, err := a.analyzeSelect(stmt, outer)
		if err != nil {
			return nil, err
		}
		if sub, err = a.rewriteIfRequested(sub); err != nil {
			return nil, err
		}
		rte := &algebra.RTE{
			Kind:     algebra.RTESubquery,
			Alias:    fmt.Sprintf("setop_branch_%d", len(q.RangeTable)+1),
			Subquery: sub,
			Cols:     sub.Schema(),
		}
		rt := len(q.RangeTable)
		q.RangeTable = append(q.RangeTable, rte)
		return &algebra.SetOpLeaf{RT: rt}, nil
	}
	// Nested set-operation statements that carry their own ORDER BY/LIMIT
	// become subquery leaves so the semantics are preserved.
	if len(stmt.OrderBy) > 0 || stmt.Limit != nil || stmt.Offset != nil {
		sub, err := a.analyzeSelect(stmt, outer)
		if err != nil {
			return nil, err
		}
		rte := &algebra.RTE{
			Kind:     algebra.RTESubquery,
			Alias:    fmt.Sprintf("setop_branch_%d", len(q.RangeTable)+1),
			Subquery: sub,
			Cols:     sub.Schema(),
		}
		rt := len(q.RangeTable)
		q.RangeTable = append(q.RangeTable, rte)
		return &algebra.SetOpLeaf{RT: rt}, nil
	}
	var opKind algebra.SetOpKind
	switch stmt.Op {
	case sql.SetUnion:
		opKind = algebra.SetUnion
	case sql.SetIntersect:
		opKind = algebra.SetIntersect
	case sql.SetExcept:
		opKind = algebra.SetExcept
	default:
		return nil, fmt.Errorf("internal: bad set operation")
	}
	left, err := a.buildSetOpTree(stmt.Left, q, outer)
	if err != nil {
		return nil, err
	}
	right, err := a.buildSetOpTree(stmt.Right, q, outer)
	if err != nil {
		return nil, err
	}
	// Union compatibility check between the two sides.
	ls, rs := a.leafSchema(q, left), a.leafSchema(q, right)
	if len(ls) != len(rs) {
		return nil, fmt.Errorf("%s requires inputs with the same number of columns (%d vs %d)",
			stmt.Op, len(ls), len(rs))
	}
	for i := range ls {
		if _, err := types.CommonKind(ls[i].Type, rs[i].Type); err != nil {
			return nil, fmt.Errorf("%s column %d: %v", stmt.Op, i+1, err)
		}
	}
	return &algebra.SetOpNode{Op: opKind, All: stmt.All, Left: left, Right: right}, nil
}

func (a *Analyzer) leafSchema(q *algebra.Query, item algebra.SetOpItem) algebra.Schema {
	switch n := item.(type) {
	case *algebra.SetOpLeaf:
		return q.RangeTable[n.RT].Cols
	case *algebra.SetOpNode:
		return a.leafSchema(q, n.Left)
	default:
		return nil
	}
}

// leftmostLeafStmt returns the leftmost plain-select branch of a
// set-operation statement.
func leftmostLeafStmt(stmt *sql.SelectStmt) *sql.SelectStmt {
	for stmt != nil && stmt.Op != sql.SetNone {
		stmt = stmt.Left
	}
	return stmt
}

func firstLeaf(item algebra.SetOpItem) *algebra.SetOpLeaf {
	for {
		switch n := item.(type) {
		case *algebra.SetOpLeaf:
			return n
		case *algebra.SetOpNode:
			item = n.Left
		default:
			return nil
		}
	}
}

// ---------------------------------------------------------------------------
// Plain (A)SPJ queries

func (a *Analyzer) analyzePlain(stmt *sql.SelectStmt, outer *scope) (*algebra.Query, error) {
	q := &algebra.Query{
		Distinct:            stmt.Distinct,
		ProvenanceRequested: stmt.Provenance,
	}
	sc := &scope{outer: outer}

	// FROM clause.
	for _, te := range stmt.From {
		item, err := a.analyzeTableExpr(te, q, sc)
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, item)
	}
	if err := checkDuplicateAliases(q.RangeTable); err != nil {
		return nil, err
	}

	ec := &exprContext{a: a, scope: sc, allowAggs: false, clause: "WHERE"}

	// WHERE.
	if stmt.Where != nil {
		w, err := ec.analyze(stmt.Where)
		if err != nil {
			return nil, err
		}
		if err := requireBool(w, "WHERE"); err != nil {
			return nil, err
		}
		q.Where = w
	}

	// GROUP BY.
	ec.clause = "GROUP BY"
	for _, g := range stmt.GroupBy {
		ge, err := ec.analyze(g)
		if err != nil {
			return nil, err
		}
		if algebra.ContainsAgg(ge) {
			return nil, fmt.Errorf("aggregates are not allowed in GROUP BY")
		}
		q.GroupBy = append(q.GroupBy, ge)
	}

	// Select list (star expansion + aggregate detection).
	ec.allowAggs = true
	ec.clause = "SELECT"
	for _, t := range stmt.Targets {
		if t.Star {
			entries, err := expandStar(sc, t.Table)
			if err != nil {
				return nil, err
			}
			q.TargetList = append(q.TargetList, entries...)
			continue
		}
		e, err := ec.analyze(t.Expr)
		if err != nil {
			return nil, err
		}
		q.TargetList = append(q.TargetList, algebra.TargetEntry{Expr: e, Name: targetName(t, e)})
	}
	if len(q.TargetList) == 0 {
		return nil, fmt.Errorf("select list must not be empty")
	}

	// HAVING.
	if stmt.Having != nil {
		ec.clause = "HAVING"
		h, err := ec.analyze(stmt.Having)
		if err != nil {
			return nil, err
		}
		if err := requireBool(h, "HAVING"); err != nil {
			return nil, err
		}
		q.Having = h
	}

	// Aggregate validation.
	q.HasAggs = false
	for _, te := range q.TargetList {
		if algebra.ContainsAgg(te.Expr) {
			q.HasAggs = true
		}
	}
	if q.Having != nil || len(q.GroupBy) > 0 {
		q.HasAggs = q.HasAggs || algebra.ContainsAgg(q.Having)
	}
	if q.Having != nil && len(q.GroupBy) == 0 && !q.HasAggs {
		// HAVING without aggregation or grouping implies a single group.
		q.HasAggs = true
	}
	if q.Where != nil && algebra.ContainsAgg(q.Where) {
		return nil, fmt.Errorf("aggregates are not allowed in WHERE")
	}
	if q.HasAggs || len(q.GroupBy) > 0 {
		q.HasAggs = true
		for i, te := range q.TargetList {
			if err := checkGrouped(te.Expr, q.GroupBy); err != nil {
				return nil, fmt.Errorf("target %d (%s): %v", i+1, te.Name, err)
			}
		}
		if q.Having != nil {
			if err := checkGrouped(q.Having, q.GroupBy); err != nil {
				return nil, fmt.Errorf("HAVING: %v", err)
			}
		}
	}

	if err := a.analyzeSortLimit(stmt, q, ec); err != nil {
		return nil, err
	}
	return q, nil
}

// analyzeSortLimit resolves ORDER BY (by alias, ordinal, or expression) and
// LIMIT/OFFSET. ec may be nil (set-operation queries): then only aliases
// and ordinals are allowed.
func (a *Analyzer) analyzeSortLimit(stmt *sql.SelectStmt, q *algebra.Query, ec *exprContext) error {
	for _, item := range stmt.OrderBy {
		resolved, err := a.resolveOrderItem(item.Expr, q, ec)
		if err != nil {
			return err
		}
		q.OrderBy = append(q.OrderBy, algebra.SortItem{Expr: resolved, Desc: item.Desc})
	}
	if stmt.Limit != nil {
		n, err := constNonNegInt(stmt.Limit, "LIMIT")
		if err != nil {
			return err
		}
		q.Limit = &algebra.Const{Val: types.NewInt(n)}
	}
	if stmt.Offset != nil {
		n, err := constNonNegInt(stmt.Offset, "OFFSET")
		if err != nil {
			return err
		}
		q.Offset = &algebra.Const{Val: types.NewInt(n)}
	}
	return nil
}

// resolveOrderItem maps an ORDER BY expression to either an output-column
// Var (negative RT marks "output column" — see plan package) or a computed
// expression in the query's scope.
func (a *Analyzer) resolveOrderItem(e sql.Expr, q *algebra.Query, ec *exprContext) (algebra.Expr, error) {
	// Ordinal: ORDER BY 2
	if lit, ok := e.(*sql.Lit); ok && lit.Val.K == types.KindInt {
		n := int(lit.Val.I)
		if n < 1 || n > len(q.TargetList) {
			return nil, fmt.Errorf("ORDER BY position %d is out of range", n)
		}
		return outputColVar(q, n-1), nil
	}
	// Alias: ORDER BY revenue
	if cr, ok := e.(*sql.ColumnRef); ok && cr.Table == "" {
		for i, te := range q.TargetList {
			if te.Name == cr.Column {
				return outputColVar(q, i), nil
			}
		}
	}
	if ec == nil {
		return nil, fmt.Errorf("ORDER BY on a set operation must reference output columns")
	}
	prevClause := ec.clause
	ec.clause = "ORDER BY"
	defer func() { ec.clause = prevClause }()
	resolved, err := ec.analyze(e)
	if err != nil {
		return nil, err
	}
	// If the expression structurally matches a target, sort on the output.
	for i, te := range q.TargetList {
		if algebra.EqualExpr(te.Expr, resolved) {
			return outputColVar(q, i), nil
		}
	}
	if q.HasAggs {
		if err := checkGrouped(resolved, q.GroupBy); err != nil {
			return nil, fmt.Errorf("ORDER BY: %v", err)
		}
	}
	return resolved, nil
}

// OutputRT is the pseudo range-table index used by Vars referring to the
// query's own output columns (ORDER BY aliases/ordinals).
const OutputRT = -1

func outputColVar(q *algebra.Query, i int) *algebra.Var {
	return &algebra.Var{RT: OutputRT, Col: i, Name: q.TargetList[i].Name, Typ: algebra.TypeOf(q.TargetList[i].Expr)}
}

func constNonNegInt(e sql.Expr, clause string) (int64, error) {
	lit, ok := e.(*sql.Lit)
	if !ok || lit.Val.K != types.KindInt {
		return 0, fmt.Errorf("%s must be a non-negative integer constant", clause)
	}
	if lit.Val.I < 0 {
		return 0, fmt.Errorf("%s must not be negative", clause)
	}
	return lit.Val.I, nil
}

func targetName(t sql.SelectTarget, e algebra.Expr) string {
	if t.Alias != "" {
		return t.Alias
	}
	switch n := e.(type) {
	case *algebra.Var:
		return n.Name
	case *algebra.AggRef:
		return n.Fn.String()
	case *algebra.FuncCall:
		return n.Name
	default:
		return "?column?"
	}
}

func expandStar(sc *scope, table string) ([]algebra.TargetEntry, error) {
	var out []algebra.TargetEntry
	matched := false
	for rt, rte := range sc.rtes {
		if table != "" && rte.Alias != table {
			continue
		}
		matched = true
		for ci, col := range rte.Cols {
			out = append(out, algebra.TargetEntry{
				Expr: &algebra.Var{RT: rt, Col: ci, Name: col.Name, Typ: col.Type},
				Name: col.Name,
			})
		}
	}
	if !matched {
		if table != "" {
			return nil, fmt.Errorf("relation %q not found in FROM clause", table)
		}
		return nil, fmt.Errorf("SELECT * requires a FROM clause")
	}
	return out, nil
}

func checkDuplicateAliases(rtes []*algebra.RTE) error {
	seen := make(map[string]bool, len(rtes))
	for _, rte := range rtes {
		if seen[rte.Alias] {
			return fmt.Errorf("table alias %q used more than once", rte.Alias)
		}
		seen[rte.Alias] = true
	}
	return nil
}

func requireBool(e algebra.Expr, clause string) error {
	t := algebra.TypeOf(e)
	if t != types.KindBool && t != types.KindNull {
		return fmt.Errorf("%s condition must be boolean, got %s", clause, t)
	}
	return nil
}

// checkGrouped verifies that the expression only references grouped
// columns outside of aggregates.
func checkGrouped(e algebra.Expr, groupBy []algebra.Expr) error {
	for _, g := range groupBy {
		if algebra.EqualExpr(e, g) {
			return nil
		}
	}
	switch n := e.(type) {
	case nil:
		return nil
	case *algebra.Var:
		return fmt.Errorf("column %q must appear in GROUP BY or be used in an aggregate", n.Name)
	case *algebra.Const:
		return nil
	case *algebra.AggRef:
		return nil // anything under an aggregate is fine
	case *algebra.BinOp:
		if err := checkGrouped(n.Left, groupBy); err != nil {
			return err
		}
		return checkGrouped(n.Right, groupBy)
	case *algebra.UnOp:
		return checkGrouped(n.Expr, groupBy)
	case *algebra.IsNull:
		return checkGrouped(n.Expr, groupBy)
	case *algebra.DistinctFrom:
		if err := checkGrouped(n.Left, groupBy); err != nil {
			return err
		}
		return checkGrouped(n.Right, groupBy)
	case *algebra.FuncCall:
		for _, arg := range n.Args {
			if err := checkGrouped(arg, groupBy); err != nil {
				return err
			}
		}
		return nil
	case *algebra.CaseExpr:
		for _, w := range n.Whens {
			if err := checkGrouped(w.Cond, groupBy); err != nil {
				return err
			}
			if err := checkGrouped(w.Result, groupBy); err != nil {
				return err
			}
		}
		return checkGrouped(n.Else, groupBy)
	case *algebra.Cast:
		return checkGrouped(n.Expr, groupBy)
	case *algebra.SubLink:
		return checkGrouped(n.Test, groupBy) // subquery itself is uncorrelated
	default:
		return fmt.Errorf("unexpected expression %T in grouped query", e)
	}
}

// ---------------------------------------------------------------------------
// FROM items

func (a *Analyzer) analyzeTableExpr(te sql.TableExpr, q *algebra.Query, sc *scope) (algebra.FromItem, error) {
	switch n := te.(type) {
	case *sql.TableName:
		rte, err := a.resolveTableName(n, sc)
		if err != nil {
			return nil, err
		}
		rt := sc.addRTE(rte)
		q.RangeTable = append(q.RangeTable, rte)
		return &algebra.FromRef{RT: rt}, nil
	case *sql.SubqueryExpr:
		sub, err := a.analyzeSelect(n.Query, sc.outer)
		if err != nil {
			return nil, err
		}
		// A marked subquery is always rewritten so its provenance schema is
		// visible; a PROVENANCE (attrs) annotation (§IV-A3) then overrides
		// which of the columns the enclosing rewrite treats as provenance.
		if sub, err = a.rewriteIfRequested(sub); err != nil {
			return nil, err
		}
		alias := n.Alias
		if alias == "" {
			alias = fmt.Sprintf("subquery_%d", len(q.RangeTable)+1)
		}
		rte := &algebra.RTE{
			Kind:         algebra.RTESubquery,
			Alias:        alias,
			Subquery:     sub,
			Cols:         sub.Schema(),
			BaseRelation: n.BaseRelation,
		}
		if err := applyProvAttrs(rte, n.ProvAttrs); err != nil {
			return nil, err
		}
		if rte.ProvCols == nil && !n.BaseRelation {
			rte.ProvCols = sub.ProvCols
		}
		rt := sc.addRTE(rte)
		q.RangeTable = append(q.RangeTable, rte)
		return &algebra.FromRef{RT: rt}, nil
	case *sql.JoinExpr:
		return a.analyzeJoin(n, q, sc)
	default:
		return nil, fmt.Errorf("unsupported FROM item %T", te)
	}
}

func (a *Analyzer) resolveTableName(n *sql.TableName, sc *scope) (*algebra.RTE, error) {
	alias := n.Alias
	if alias == "" {
		alias = n.Name
	}
	if t, ok := a.cat.Table(n.Name); ok {
		cols := make(algebra.Schema, len(t.Cols))
		for i, c := range t.Cols {
			cols[i] = algebra.Column{Name: c.Name, Type: c.Type}
		}
		rte := &algebra.RTE{
			Kind:         algebra.RTERelation,
			RelName:      n.Name,
			Alias:        alias,
			Cols:         cols,
			BaseRelation: n.BaseRelation,
		}
		if err := applyProvAttrs(rte, n.ProvAttrs); err != nil {
			return nil, err
		}
		return rte, nil
	}
	if v, ok := a.cat.View(n.Name); ok {
		// View unfolding: analyze the stored definition fresh. Views are
		// never correlated, so no outer scope is passed.
		sub, err := a.analyzeSelect(v.Query, nil)
		if err != nil {
			return nil, fmt.Errorf("in view %q: %v", n.Name, err)
		}
		if sub, err = a.rewriteIfRequested(sub); err != nil {
			return nil, err
		}
		rte := &algebra.RTE{
			Kind:         algebra.RTESubquery,
			Alias:        alias,
			Subquery:     sub,
			Cols:         sub.Schema(),
			BaseRelation: n.BaseRelation,
		}
		if err := applyProvAttrs(rte, n.ProvAttrs); err != nil {
			return nil, err
		}
		if rte.ProvCols == nil && !n.BaseRelation {
			rte.ProvCols = sub.ProvCols
		}
		return rte, nil
	}
	if v, ok := a.cat.Virtual(n.Name); ok {
		// Virtual system table: resolves exactly like a base relation;
		// the planner substitutes the generated rows at scan time.
		cols := make(algebra.Schema, len(v.Cols))
		for i, c := range v.Cols {
			cols[i] = algebra.Column{Name: c.Name, Type: c.Type}
		}
		rte := &algebra.RTE{
			Kind:         algebra.RTERelation,
			RelName:      n.Name,
			Alias:        alias,
			Cols:         cols,
			BaseRelation: n.BaseRelation,
		}
		if err := applyProvAttrs(rte, n.ProvAttrs); err != nil {
			return nil, err
		}
		return rte, nil
	}
	return nil, fmt.Errorf("relation %q does not exist", n.Name)
}

// applyProvAttrs applies a PROVENANCE (attrs) annotation (§IV-A3): the
// listed columns are marked as provenance attributes carrying external or
// previously-stored provenance; the rewriter will treat the item as
// already rewritten.
func applyProvAttrs(rte *algebra.RTE, attrs []string) error {
	if attrs == nil {
		return nil
	}
	rte.HasExternalProv = true
	rte.ProvCols = []algebra.ProvCol{}
	for _, name := range attrs {
		idx := -1
		for ci, col := range rte.Cols {
			if col.Name == name {
				idx = ci
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("PROVENANCE attribute %q not found in %q", name, rte.Alias)
		}
		rte.ProvCols = append(rte.ProvCols, algebra.ProvCol{Col: idx, Name: name})
	}
	return nil
}

func (a *Analyzer) analyzeJoin(n *sql.JoinExpr, q *algebra.Query, sc *scope) (algebra.FromItem, error) {
	left, err := a.analyzeTableExpr(n.Left, q, sc)
	if err != nil {
		return nil, err
	}
	right, err := a.analyzeTableExpr(n.Right, q, sc)
	if err != nil {
		return nil, err
	}
	var kind algebra.JoinKind
	switch n.Kind {
	case sql.JoinInner:
		kind = algebra.JoinInner
	case sql.JoinLeft:
		kind = algebra.JoinLeft
	case sql.JoinRight:
		kind = algebra.JoinRight
	case sql.JoinFull:
		kind = algebra.JoinFull
	case sql.JoinCross:
		kind = algebra.JoinCross
	}
	join := &algebra.FromJoin{Kind: kind, Left: left, Right: right}
	switch {
	case n.On != nil:
		ec := &exprContext{a: a, scope: sc, clause: "JOIN/ON"}
		cond, err := ec.analyze(n.On)
		if err != nil {
			return nil, err
		}
		if err := requireBool(cond, "JOIN/ON"); err != nil {
			return nil, err
		}
		join.Cond = cond
	case len(n.Using) > 0:
		// USING (c1, ...) becomes pairwise equality between the two sides.
		var conds []algebra.Expr
		for _, col := range n.Using {
			lv, err := resolveInItem(sc, left, col)
			if err != nil {
				return nil, err
			}
			rv, err := resolveInItem(sc, right, col)
			if err != nil {
				return nil, err
			}
			conds = append(conds, &algebra.BinOp{Op: "=", Left: lv, Right: rv, Typ: types.KindBool})
		}
		join.Cond = algebra.AndAll(conds)
	case kind != algebra.JoinCross:
		return nil, fmt.Errorf("join requires an ON or USING clause")
	}
	return join, nil
}

// resolveInItem resolves a column name among the RTEs reachable from a
// from-item subtree (for USING).
func resolveInItem(sc *scope, item algebra.FromItem, col string) (*algebra.Var, error) {
	rts := collectRTs(item)
	var found *algebra.Var
	for _, rt := range rts {
		rte := sc.rtes[rt]
		for ci, c := range rte.Cols {
			if c.Name == col {
				if found != nil {
					return nil, fmt.Errorf("USING column %q is ambiguous", col)
				}
				found = &algebra.Var{RT: rt, Col: ci, Name: c.Name, Typ: c.Type}
			}
		}
	}
	if found == nil {
		return nil, fmt.Errorf("USING column %q not found", col)
	}
	return found, nil
}

func collectRTs(item algebra.FromItem) []int {
	switch n := item.(type) {
	case *algebra.FromRef:
		return []int{n.RT}
	case *algebra.FromJoin:
		return append(collectRTs(n.Left), collectRTs(n.Right)...)
	default:
		return nil
	}
}

// ---------------------------------------------------------------------------
// Expressions

type exprContext struct {
	a         *Analyzer
	scope     *scope
	allowAggs bool
	clause    string
	inAgg     bool
}

func (ec *exprContext) analyze(e sql.Expr) (algebra.Expr, error) {
	switch n := e.(type) {
	case *sql.ColumnRef:
		v, err := ec.scope.resolve(n.Table, n.Column)
		if err != nil {
			return nil, err
		}
		if v != nil {
			return v, nil
		}
		// Not in the current scope: check outer scopes to give the precise
		// "correlated" diagnosis the paper's prototype gives.
		for s := ec.scope.outer; s != nil; s = s.outer {
			ov, err := s.resolve(n.Table, n.Column)
			if err == nil && ov != nil {
				return nil, fmt.Errorf("%w: reference to outer column %q",
					ErrCorrelated, refName(n.Table, n.Column))
			}
		}
		return nil, fmt.Errorf("column %q does not exist", refName(n.Table, n.Column))
	case *sql.Lit:
		return &algebra.Const{Val: n.Val}, nil
	case *sql.BinExpr:
		return ec.analyzeBin(n)
	case *sql.UnaryExpr:
		inner, err := ec.analyze(n.Expr)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "NOT":
			if err := requireBool(inner, "NOT"); err != nil {
				return nil, err
			}
			return &algebra.UnOp{Op: "NOT", Expr: inner, Typ: types.KindBool}, nil
		case "-":
			t := algebra.TypeOf(inner)
			if !t.Numeric() && t != types.KindInterval && t != types.KindNull {
				return nil, fmt.Errorf("cannot negate %s", t)
			}
			return &algebra.UnOp{Op: "-", Expr: inner, Typ: t}, nil
		default:
			return inner, nil
		}
	case *sql.IsNullExpr:
		inner, err := ec.analyze(n.Expr)
		if err != nil {
			return nil, err
		}
		return &algebra.IsNull{Expr: inner, Not: n.Not}, nil
	case *sql.DistinctExpr:
		l, err := ec.analyze(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := ec.analyze(n.Right)
		if err != nil {
			return nil, err
		}
		return &algebra.DistinctFrom{Left: l, Right: r, Not: n.Not}, nil
	case *sql.BetweenExpr:
		// x BETWEEN lo AND hi → x >= lo AND x <= hi
		x, err := ec.analyze(n.Expr)
		if err != nil {
			return nil, err
		}
		lo, err := ec.analyze(n.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := ec.analyze(n.Hi)
		if err != nil {
			return nil, err
		}
		ge := &algebra.BinOp{Op: ">=", Left: x, Right: lo, Typ: types.KindBool}
		le := &algebra.BinOp{Op: "<=", Left: algebra.CopyExpr(x), Right: hi, Typ: types.KindBool}
		both := &algebra.BinOp{Op: "AND", Left: ge, Right: le, Typ: types.KindBool}
		if n.Not {
			return &algebra.UnOp{Op: "NOT", Expr: both, Typ: types.KindBool}, nil
		}
		return both, nil
	case *sql.InListExpr:
		// x IN (a, b, ...) → x = a OR x = b OR ...
		x, err := ec.analyze(n.Expr)
		if err != nil {
			return nil, err
		}
		var ors algebra.Expr
		for _, item := range n.List {
			iv, err := ec.analyze(item)
			if err != nil {
				return nil, err
			}
			eq := &algebra.BinOp{Op: "=", Left: algebra.CopyExpr(x), Right: iv, Typ: types.KindBool}
			if ors == nil {
				ors = eq
			} else {
				ors = &algebra.BinOp{Op: "OR", Left: ors, Right: eq, Typ: types.KindBool}
			}
		}
		if n.Not {
			return &algebra.UnOp{Op: "NOT", Expr: ors, Typ: types.KindBool}, nil
		}
		return ors, nil
	case *sql.FuncExpr:
		return ec.analyzeFunc(n)
	case *sql.CaseExpr:
		return ec.analyzeCase(n)
	case *sql.CastExpr:
		inner, err := ec.analyze(n.Expr)
		if err != nil {
			return nil, err
		}
		return &algebra.Cast{Expr: inner, To: n.Type}, nil
	case *sql.ExtractExpr:
		inner, err := ec.analyze(n.Expr)
		if err != nil {
			return nil, err
		}
		t := algebra.TypeOf(inner)
		if t != types.KindDate && t != types.KindNull {
			return nil, fmt.Errorf("EXTRACT requires a date operand, got %s", t)
		}
		return &algebra.FuncCall{
			Name: "extract_" + strings.ToLower(n.Field),
			Args: []algebra.Expr{inner},
			Typ:  types.KindInt,
		}, nil
	case *sql.SubqueryRef:
		return ec.analyzeSubLink(n)
	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

func (ec *exprContext) analyzeBin(n *sql.BinExpr) (algebra.Expr, error) {
	l, err := ec.analyze(n.Left)
	if err != nil {
		return nil, err
	}
	r, err := ec.analyze(n.Right)
	if err != nil {
		return nil, err
	}
	lt, rt := algebra.TypeOf(l), algebra.TypeOf(r)
	switch n.Op {
	case "AND", "OR":
		if err := requireBool(l, n.Op); err != nil {
			return nil, err
		}
		if err := requireBool(r, n.Op); err != nil {
			return nil, err
		}
		return &algebra.BinOp{Op: n.Op, Left: l, Right: r, Typ: types.KindBool}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		// Allow string literals to compare against dates (coerce).
		if lt == types.KindDate && rt == types.KindString {
			r = &algebra.Cast{Expr: r, To: types.KindDate}
			rt = types.KindDate
		}
		if rt == types.KindDate && lt == types.KindString {
			l = &algebra.Cast{Expr: l, To: types.KindDate}
			lt = types.KindDate
		}
		if !types.Comparable(lt, rt) {
			return nil, fmt.Errorf("cannot compare %s with %s", lt, rt)
		}
		return &algebra.BinOp{Op: n.Op, Left: l, Right: r, Typ: types.KindBool}, nil
	case "LIKE":
		if (lt != types.KindString && lt != types.KindNull) || (rt != types.KindString && rt != types.KindNull) {
			return nil, fmt.Errorf("LIKE requires string operands")
		}
		return &algebra.BinOp{Op: "LIKE", Left: l, Right: r, Typ: types.KindBool}, nil
	case "||":
		return &algebra.BinOp{Op: "||", Left: l, Right: r, Typ: types.KindString}, nil
	case "+", "-", "*", "/", "%":
		t, err := arithType(n.Op, lt, rt)
		if err != nil {
			return nil, err
		}
		return &algebra.BinOp{Op: n.Op, Left: l, Right: r, Typ: t}, nil
	default:
		return nil, fmt.Errorf("unknown operator %q", n.Op)
	}
}

func arithType(op string, lt, rt types.Kind) (types.Kind, error) {
	switch {
	case lt == types.KindNull:
		return rt, nil
	case rt == types.KindNull:
		return lt, nil
	case lt.Numeric() && rt.Numeric():
		if lt == types.KindInt && rt == types.KindInt {
			return types.KindInt, nil
		}
		return types.KindFloat, nil
	case op == "+" && lt == types.KindDate && rt == types.KindInterval:
		return types.KindDate, nil
	case op == "+" && lt == types.KindInterval && rt == types.KindDate:
		return types.KindDate, nil
	case op == "-" && lt == types.KindDate && rt == types.KindInterval:
		return types.KindDate, nil
	case op == "-" && lt == types.KindDate && rt == types.KindDate:
		return types.KindInt, nil
	case (op == "+" || op == "-") && lt == types.KindInterval && rt == types.KindInterval:
		return types.KindInterval, nil
	default:
		return types.KindNull, fmt.Errorf("operator %q not defined for %s and %s", op, lt, rt)
	}
}

var aggFns = map[string]algebra.AggFn{
	"count": algebra.AggCount,
	"sum":   algebra.AggSum,
	"avg":   algebra.AggAvg,
	"min":   algebra.AggMin,
	"max":   algebra.AggMax,
}

// scalarFns maps function names to (minArgs, maxArgs, resultKind resolver).
type scalarFn struct {
	minArgs, maxArgs int
	result           func(args []algebra.Expr) (types.Kind, error)
}

func fixedKind(k types.Kind) func([]algebra.Expr) (types.Kind, error) {
	return func([]algebra.Expr) (types.Kind, error) { return k, nil }
}

var scalarFns = map[string]scalarFn{
	"substring": {2, 3, fixedKind(types.KindString)},
	"upper":     {1, 1, fixedKind(types.KindString)},
	"lower":     {1, 1, fixedKind(types.KindString)},
	"length":    {1, 1, fixedKind(types.KindInt)},
	"abs": {1, 1, func(args []algebra.Expr) (types.Kind, error) {
		return algebra.TypeOf(args[0]), nil
	}},
	"round":  {1, 2, fixedKind(types.KindFloat)},
	"floor":  {1, 1, fixedKind(types.KindFloat)},
	"ceil":   {1, 1, fixedKind(types.KindFloat)},
	"sqrt":   {1, 1, fixedKind(types.KindFloat)},
	"power":  {2, 2, fixedKind(types.KindFloat)},
	"concat": {1, 8, fixedKind(types.KindString)},
	"coalesce": {1, 16, func(args []algebra.Expr) (types.Kind, error) {
		k := types.KindNull
		for _, a := range args {
			nk, err := types.CommonKind(k, algebra.TypeOf(a))
			if err != nil {
				return types.KindNull, fmt.Errorf("COALESCE arguments: %v", err)
			}
			k = nk
		}
		return k, nil
	}},
	"extract_year":  {1, 1, fixedKind(types.KindInt)},
	"extract_month": {1, 1, fixedKind(types.KindInt)},
	"extract_day":   {1, 1, fixedKind(types.KindInt)},
}

func (ec *exprContext) analyzeFunc(n *sql.FuncExpr) (algebra.Expr, error) {
	if fn, ok := aggFns[n.Name]; ok {
		if !ec.allowAggs {
			return nil, fmt.Errorf("aggregates are not allowed in %s", ec.clause)
		}
		if ec.inAgg {
			return nil, fmt.Errorf("aggregate calls cannot be nested")
		}
		if n.Star {
			if fn != algebra.AggCount {
				return nil, fmt.Errorf("%s(*) is not valid; only COUNT(*)", n.Name)
			}
			return &algebra.AggRef{Fn: algebra.AggCount, Star: true, Typ: types.KindInt}, nil
		}
		if len(n.Args) != 1 {
			return nil, fmt.Errorf("aggregate %s requires exactly one argument", n.Name)
		}
		ec.inAgg = true
		arg, err := ec.analyze(n.Args[0])
		ec.inAgg = false
		if err != nil {
			return nil, err
		}
		at := algebra.TypeOf(arg)
		var rt types.Kind
		switch fn {
		case algebra.AggCount:
			rt = types.KindInt
		case algebra.AggSum:
			if !at.Numeric() && at != types.KindNull {
				return nil, fmt.Errorf("SUM requires a numeric argument, got %s", at)
			}
			rt = at
			if at == types.KindNull {
				rt = types.KindFloat
			}
		case algebra.AggAvg:
			if !at.Numeric() && at != types.KindNull {
				return nil, fmt.Errorf("AVG requires a numeric argument, got %s", at)
			}
			rt = types.KindFloat
		case algebra.AggMin, algebra.AggMax:
			rt = at
		}
		return &algebra.AggRef{Fn: fn, Arg: arg, Distinct: n.Distinct, Typ: rt}, nil
	}
	def, ok := scalarFns[n.Name]
	if !ok {
		return nil, fmt.Errorf("unknown function %q", n.Name)
	}
	if n.Star {
		return nil, fmt.Errorf("%s(*) is not valid", n.Name)
	}
	if len(n.Args) < def.minArgs || len(n.Args) > def.maxArgs {
		return nil, fmt.Errorf("function %s: wrong number of arguments (%d)", n.Name, len(n.Args))
	}
	args := make([]algebra.Expr, len(n.Args))
	for i, a := range n.Args {
		e, err := ec.analyze(a)
		if err != nil {
			return nil, err
		}
		args[i] = e
	}
	rt, err := def.result(args)
	if err != nil {
		return nil, err
	}
	return &algebra.FuncCall{Name: n.Name, Args: args, Typ: rt}, nil
}

func (ec *exprContext) analyzeCase(n *sql.CaseExpr) (algebra.Expr, error) {
	var operand algebra.Expr
	if n.Operand != nil {
		var err error
		operand, err = ec.analyze(n.Operand)
		if err != nil {
			return nil, err
		}
	}
	ce := &algebra.CaseExpr{}
	resKind := types.KindNull
	for _, w := range n.Whens {
		cond, err := ec.analyze(w.Cond)
		if err != nil {
			return nil, err
		}
		if operand != nil {
			// CASE x WHEN v THEN ... → searched form with x = v.
			cond = &algebra.BinOp{Op: "=", Left: algebra.CopyExpr(operand), Right: cond, Typ: types.KindBool}
		} else if err := requireBool(cond, "CASE/WHEN"); err != nil {
			return nil, err
		}
		res, err := ec.analyze(w.Result)
		if err != nil {
			return nil, err
		}
		nk, err := types.CommonKind(resKind, algebra.TypeOf(res))
		if err != nil {
			return nil, fmt.Errorf("CASE results: %v", err)
		}
		resKind = nk
		ce.Whens = append(ce.Whens, algebra.CaseWhen{Cond: cond, Result: res})
	}
	if n.Else != nil {
		e, err := ec.analyze(n.Else)
		if err != nil {
			return nil, err
		}
		nk, err := types.CommonKind(resKind, algebra.TypeOf(e))
		if err != nil {
			return nil, fmt.Errorf("CASE results: %v", err)
		}
		resKind = nk
		ce.Else = e
	}
	ce.Typ = resKind
	return ce, nil
}

func (ec *exprContext) analyzeSubLink(n *sql.SubqueryRef) (algebra.Expr, error) {
	// Sublinks are analyzed with the current scope as "outer" so that
	// references to it are diagnosed as correlation.
	sub, err := ec.a.analyzeSelect(n.Query, ec.scope)
	if err != nil {
		return nil, err
	}
	if sub, err = ec.a.rewriteIfRequested(sub); err != nil {
		return nil, err
	}
	switch n.Kind {
	case sql.SubScalar:
		if len(sub.TargetList) != 1 {
			return nil, fmt.Errorf("scalar subquery must return exactly one column")
		}
		return &algebra.SubLink{
			Kind:  algebra.SubScalar,
			Query: sub,
			Typ:   algebra.TypeOf(sub.TargetList[0].Expr),
		}, nil
	case sql.SubExists:
		link := &algebra.SubLink{Kind: algebra.SubExists, Query: sub, Typ: types.KindBool}
		if n.Not {
			return &algebra.UnOp{Op: "NOT", Expr: link, Typ: types.KindBool}, nil
		}
		return link, nil
	case sql.SubIn, sql.SubAny, sql.SubAll:
		if len(sub.TargetList) != 1 {
			return nil, fmt.Errorf("subquery in IN/ANY/ALL must return exactly one column")
		}
		test, err := ec.analyze(n.Test)
		if err != nil {
			return nil, err
		}
		st := algebra.TypeOf(sub.TargetList[0].Expr)
		if !types.Comparable(algebra.TypeOf(test), st) {
			return nil, fmt.Errorf("cannot compare %s with subquery column of type %s",
				algebra.TypeOf(test), st)
		}
		kind := algebra.SubAny
		if n.Kind == sql.SubAll {
			kind = algebra.SubAll
		}
		op := n.Op
		if n.Kind == sql.SubIn {
			op = "="
		}
		link := &algebra.SubLink{Kind: kind, Test: test, Op: op, Query: sub, Typ: types.KindBool}
		if n.Not {
			return &algebra.UnOp{Op: "NOT", Expr: link, Typ: types.KindBool}, nil
		}
		return link, nil
	default:
		return nil, fmt.Errorf("unsupported sublink kind")
	}
}
