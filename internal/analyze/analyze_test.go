package analyze

import (
	"errors"
	"strings"
	"testing"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/sql"
	"perm/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	mustCreate := func(name string, cols ...catalog.Column) {
		if _, err := cat.CreateTable(name, cols, false); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate("t",
		catalog.Column{Name: "a", Type: types.KindInt},
		catalog.Column{Name: "b", Type: types.KindString},
		catalog.Column{Name: "d", Type: types.KindDate})
	mustCreate("s",
		catalog.Column{Name: "a", Type: types.KindInt},
		catalog.Column{Name: "c", Type: types.KindFloat})
	return cat
}

func analyzeQuery(t *testing.T, cat *catalog.Catalog, src string) (*algebra.Query, error) {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(cat).AnalyzeSelect(stmt.(*sql.SelectStmt))
}

func mustAnalyze(t *testing.T, cat *catalog.Catalog, src string) *algebra.Query {
	t.Helper()
	q, err := analyzeQuery(t, cat, src)
	if err != nil {
		t.Fatalf("analyze(%q): %v", src, err)
	}
	return q
}

func TestResolveAndTypes(t *testing.T) {
	cat := testCatalog(t)
	q := mustAnalyze(t, cat, "SELECT a, b, a + 1, a * 2.0 FROM t")
	if len(q.TargetList) != 4 {
		t.Fatalf("targets = %d", len(q.TargetList))
	}
	kinds := []types.Kind{types.KindInt, types.KindString, types.KindInt, types.KindFloat}
	for i, k := range kinds {
		if got := algebra.TypeOf(q.TargetList[i].Expr); got != k {
			t.Errorf("target %d type = %s, want %s", i, got, k)
		}
	}
	v := q.TargetList[0].Expr.(*algebra.Var)
	if v.RT != 0 || v.Col != 0 {
		t.Errorf("var = %+v", v)
	}
}

func TestQualifiedResolution(t *testing.T) {
	cat := testCatalog(t)
	q := mustAnalyze(t, cat, "SELECT t.a, s.a FROM t, s WHERE t.a = s.a")
	v0 := q.TargetList[0].Expr.(*algebra.Var)
	v1 := q.TargetList[1].Expr.(*algebra.Var)
	if v0.RT == v1.RT {
		t.Errorf("qualified refs resolve to same RTE: %+v %+v", v0, v1)
	}
	// Unqualified ambiguous ref must fail.
	if _, err := analyzeQuery(t, cat, "SELECT a FROM t, s"); err == nil {
		t.Error("ambiguous reference should fail")
	}
}

func TestAliasScoping(t *testing.T) {
	cat := testCatalog(t)
	q := mustAnalyze(t, cat, "SELECT x.a FROM t AS x")
	if q.RangeTable[0].Alias != "x" {
		t.Errorf("alias = %q", q.RangeTable[0].Alias)
	}
	// Original name must not be visible once aliased.
	if _, err := analyzeQuery(t, cat, "SELECT t.a FROM t AS x"); err == nil {
		t.Error("original name visible despite alias")
	}
}

func TestStarExpansion(t *testing.T) {
	cat := testCatalog(t)
	q := mustAnalyze(t, cat, "SELECT * FROM t, s")
	if len(q.TargetList) != 5 {
		t.Fatalf("star expanded to %d targets, want 5", len(q.TargetList))
	}
	q = mustAnalyze(t, cat, "SELECT s.* FROM t, s")
	if len(q.TargetList) != 2 {
		t.Fatalf("qualified star = %d targets, want 2", len(q.TargetList))
	}
}

func TestAggValidation(t *testing.T) {
	cat := testCatalog(t)
	q := mustAnalyze(t, cat, "SELECT b, sum(a) FROM t GROUP BY b")
	if !q.HasAggs || len(q.GroupBy) != 1 {
		t.Errorf("HasAggs=%v groupby=%d", q.HasAggs, len(q.GroupBy))
	}
	// Expression matching the GROUP BY expr is fine.
	mustAnalyze(t, cat, "SELECT a + 1, count(*) FROM t GROUP BY a + 1")
	// Non-grouped reference fails.
	if _, err := analyzeQuery(t, cat, "SELECT b, sum(a) FROM t GROUP BY a"); err == nil {
		t.Error("ungrouped column should fail")
	}
	// HAVING without GROUP BY implies a single group.
	q = mustAnalyze(t, cat, "SELECT sum(a) FROM t HAVING count(*) > 1")
	if !q.HasAggs {
		t.Error("HAVING query must aggregate")
	}
}

func TestViewUnfolding(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := sql.Parse("SELECT a AS va, b AS vb FROM t WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateView("v", stmt.(*sql.SelectStmt), "", false); err != nil {
		t.Fatal(err)
	}
	q := mustAnalyze(t, cat, "SELECT va FROM v")
	rte := q.RangeTable[0]
	if rte.Kind != algebra.RTESubquery || rte.Subquery == nil {
		t.Fatalf("view not unfolded: %+v", rte)
	}
	if rte.Cols[0].Name != "va" || rte.Cols[1].Name != "vb" {
		t.Errorf("view schema = %v", rte.Cols)
	}
}

func TestCorrelationDetection(t *testing.T) {
	cat := testCatalog(t)
	_, err := analyzeQuery(t, cat,
		"SELECT a FROM t WHERE a IN (SELECT s.a FROM s WHERE c > t.a)")
	if err == nil {
		t.Fatal("correlated sublink should fail")
	}
	if !errors.Is(err, ErrCorrelated) {
		t.Errorf("error should wrap ErrCorrelated: %v", err)
	}
	// Unqualified outer reference.
	_, err = analyzeQuery(t, cat,
		"SELECT b FROM t WHERE EXISTS (SELECT 1 FROM s WHERE c > b)")
	if !errors.Is(err, ErrCorrelated) {
		t.Errorf("unqualified correlation not detected: %v", err)
	}
	// Same-named column in inner scope is NOT correlation.
	mustAnalyze(t, cat, "SELECT t.a FROM t WHERE t.a IN (SELECT a FROM s)")
}

func TestSetOpAnalysis(t *testing.T) {
	cat := testCatalog(t)
	q := mustAnalyze(t, cat, "SELECT a FROM t UNION ALL SELECT a FROM s INTERSECT SELECT a FROM s")
	if !q.IsSetOp() {
		t.Fatal("not a set-op query")
	}
	if q.SetOp.Op != algebra.SetUnion || !q.SetOp.All {
		t.Errorf("top op = %v all=%v", q.SetOp.Op, q.SetOp.All)
	}
	if _, ok := q.SetOp.Right.(*algebra.SetOpNode); !ok {
		t.Error("INTERSECT must nest under UNION's right branch")
	}
	if len(q.RangeTable) != 3 {
		t.Errorf("range table = %d entries", len(q.RangeTable))
	}
	// Int/float union is compatible.
	mustAnalyze(t, cat, "SELECT a FROM t UNION SELECT c FROM s")
	// String/int is not.
	if _, err := analyzeQuery(t, cat, "SELECT b FROM t UNION SELECT a FROM s"); err == nil {
		t.Error("incompatible union should fail")
	}
}

func TestOrderByResolution(t *testing.T) {
	cat := testCatalog(t)
	q := mustAnalyze(t, cat, "SELECT a AS x FROM t ORDER BY x DESC")
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc {
		t.Fatalf("orderby = %+v", q.OrderBy)
	}
	v, ok := q.OrderBy[0].Expr.(*algebra.Var)
	if !ok || v.RT != OutputRT || v.Col != 0 {
		t.Errorf("alias order item = %#v", q.OrderBy[0].Expr)
	}
	q = mustAnalyze(t, cat, "SELECT a, b FROM t ORDER BY 2")
	v = q.OrderBy[0].Expr.(*algebra.Var)
	if v.Col != 1 {
		t.Errorf("ordinal order item col = %d", v.Col)
	}
	// Expression matching a target becomes an output reference.
	q = mustAnalyze(t, cat, "SELECT a + 1 FROM t ORDER BY a + 1")
	v = q.OrderBy[0].Expr.(*algebra.Var)
	if v.RT != OutputRT {
		t.Errorf("matching expression should sort on output: %#v", q.OrderBy[0].Expr)
	}
}

func TestSugarLowering(t *testing.T) {
	cat := testCatalog(t)
	q := mustAnalyze(t, cat, "SELECT a FROM t WHERE a BETWEEN 1 AND 3")
	if _, ok := q.Where.(*algebra.BinOp); !ok {
		t.Errorf("BETWEEN not lowered to AND: %#v", q.Where)
	}
	q = mustAnalyze(t, cat, "SELECT a FROM t WHERE a IN (1, 2)")
	b, ok := q.Where.(*algebra.BinOp)
	if !ok || b.Op != "OR" {
		t.Errorf("IN-list not lowered to OR: %#v", q.Where)
	}
	// String literal coerces to date in comparisons with date columns.
	q = mustAnalyze(t, cat, "SELECT a FROM t WHERE d < '1998-01-01'")
	cmp := q.Where.(*algebra.BinOp)
	if _, ok := cmp.Right.(*algebra.Cast); !ok {
		t.Errorf("date coercion missing: %#v", cmp.Right)
	}
}

func TestProvenanceFlagPropagation(t *testing.T) {
	cat := testCatalog(t)
	q := mustAnalyze(t, cat, "SELECT PROVENANCE a FROM t")
	if !q.ProvenanceRequested {
		t.Error("ProvenanceRequested not set")
	}
	// Nested PROVENANCE subqueries are rewritten during analysis, so the
	// outer query sees their provenance schema.
	q = mustAnalyze(t, cat, "SELECT prov_t_a FROM (SELECT PROVENANCE b FROM t) AS p")
	if strings.Join(q.RangeTable[0].Cols.Names(), ",") != "b,prov_t_a,prov_t_b,prov_t_d" {
		t.Errorf("nested provenance schema = %v", q.RangeTable[0].Cols.Names())
	}
	if len(q.RangeTable[0].ProvCols) != 3 {
		t.Errorf("ProvCols = %v", q.RangeTable[0].ProvCols)
	}
}

func TestExternalProvenanceAnnotation(t *testing.T) {
	cat := testCatalog(t)
	q := mustAnalyze(t, cat, "SELECT a FROM t PROVENANCE (b)")
	rte := q.RangeTable[0]
	if !rte.HasExternalProv || len(rte.ProvCols) != 1 || rte.ProvCols[0].Col != 1 {
		t.Errorf("annotation = %+v", rte)
	}
	if _, err := analyzeQuery(t, cat, "SELECT a FROM t PROVENANCE (zzz)"); err == nil {
		t.Error("unknown annotated attribute should fail")
	}
}

func TestJoinAnalysis(t *testing.T) {
	cat := testCatalog(t)
	q := mustAnalyze(t, cat, "SELECT t.a FROM t LEFT JOIN s ON t.a = s.a")
	j, ok := q.From[0].(*algebra.FromJoin)
	if !ok || j.Kind != algebra.JoinLeft || j.Cond == nil {
		t.Fatalf("join = %#v", q.From[0])
	}
	q = mustAnalyze(t, cat, "SELECT t.a FROM t JOIN s USING (a)")
	j = q.From[0].(*algebra.FromJoin)
	b, ok := j.Cond.(*algebra.BinOp)
	if !ok || b.Op != "=" {
		t.Errorf("USING lowering = %#v", j.Cond)
	}
	if _, err := analyzeQuery(t, cat, "SELECT t.a FROM t JOIN s ON b"); err == nil {
		t.Error("non-boolean ON should fail")
	}
}

func TestLimitValidation(t *testing.T) {
	cat := testCatalog(t)
	if _, err := analyzeQuery(t, cat, "SELECT a FROM t LIMIT -1"); err == nil {
		t.Error("negative LIMIT should fail at parse or analysis")
	}
	q := mustAnalyze(t, cat, "SELECT a FROM t LIMIT 5 OFFSET 2")
	if q.Limit == nil || q.Offset == nil {
		t.Error("limit/offset missing")
	}
}
