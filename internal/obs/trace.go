// Query lifecycle tracing: every query the engine executes gets a query
// ID, and — when sampled — a span tree covering the pipeline phases
// (parse → provenance rewrite → optimize → plan → execute) plus
// per-operator child spans derived from the EXPLAIN ANALYZE probes.
// Completed traces land in a fixed-capacity lock-free ring buffer that
// the perm_traces system table snapshots on demand.
//
// The off path is engineered to cost nothing: Tracer.Sample is one
// atomic add, and every method on a nil *Trace is a no-op, so the query
// hot path carries no branches beyond a nil check and allocates nothing
// unless the query is actually sampled.
package obs

import (
	"sync/atomic"
	"time"
)

// Span is one timed region of a query's lifecycle. Phase spans (parse,
// rewrite, optimize, plan, execute) sit at depth 0; operator spans
// collected from the execution probes nest below the execute span with
// depth ≥ 1.
type Span struct {
	Name    string
	Depth   int
	StartNS int64 // offset from the trace's start
	DurNS   int64
	Rows    int64 // rows emitted (operator spans; -1 when not applicable)
}

// Trace is the span record of one sampled query. It is built by the
// query's coordinating goroutine only (no internal locking) and must be
// complete before it is Put into a TraceStore.
type Trace struct {
	QueryID     string
	Fingerprint string
	SQL         string
	Start       time.Time
	Spans       []Span

	seq uint64 // assigned by TraceStore.Put; orders snapshots
}

// Begin opens a phase span and returns its index for End. Safe on a nil
// trace (returns -1, End ignores it).
func (t *Trace) Begin(name string) int {
	if t == nil {
		return -1
	}
	t.Spans = append(t.Spans, Span{
		Name:    name,
		StartNS: time.Since(t.Start).Nanoseconds(),
		Rows:    -1,
	})
	return len(t.Spans) - 1
}

// End closes the span Begin returned.
func (t *Trace) End(idx int) {
	if t == nil || idx < 0 || idx >= len(t.Spans) {
		return
	}
	sp := &t.Spans[idx]
	sp.DurNS = time.Since(t.Start).Nanoseconds() - sp.StartNS
}

// Add appends an already-measured span (operator spans harvested from
// execution probes). Safe on a nil trace.
func (t *Trace) Add(sp Span) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, sp)
}

// PhaseBreakdown renders the depth-0 spans as one compact line, e.g.
// "parse=0.1ms rewrite=0.4ms optimize=0.2ms plan=0.3ms execute=12.5ms".
// The slow-query log embeds it so an operator sees where a slow
// statement spent its time without leaving the log.
func (t *Trace) PhaseBreakdown() string {
	if t == nil {
		return ""
	}
	var b []byte
	for _, sp := range t.Spans {
		if sp.Depth != 0 {
			continue
		}
		if len(b) > 0 {
			b = append(b, ' ')
		}
		b = append(b, sp.Name...)
		b = append(b, '=')
		b = append(b, time.Duration(sp.DurNS).Round(time.Microsecond).String()...)
	}
	return string(b)
}

// Tracer decides which queries get a trace and owns the store completed
// traces land in.
type Tracer struct {
	counter atomic.Uint64
	Store   *TraceStore
}

// NewTracer returns a tracer over a store of the given capacity.
func NewTracer(capacity int) *Tracer {
	return &Tracer{Store: NewTraceStore(capacity)}
}

// Sample makes the sampling decision for one query: every-th query (the
// session's trace_sample setting) gets a trace, 0 or negative means
// tracing is off. The off path is a nil return after one atomic add —
// no allocation, no lock.
func (t *Tracer) Sample(every int, queryID, fingerprint, sql string, start time.Time) *Trace {
	if every <= 0 {
		return nil
	}
	if t.counter.Add(1)%uint64(every) != 0 {
		return nil
	}
	return &Trace{QueryID: queryID, Fingerprint: fingerprint, SQL: sql, Start: start}
}

// TraceStore is a lock-free ring buffer of completed traces: Put is an
// atomic sequence claim plus an atomic pointer store, so concurrent
// queries never contend on a lock, and the newest capacity traces win.
type TraceStore struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

// DefaultTraceCapacity is the trace ring size engines use unless
// configured otherwise.
const DefaultTraceCapacity = 256

// NewTraceStore returns a ring buffer holding up to capacity completed
// traces (<= 0: DefaultTraceCapacity).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceStore{slots: make([]atomic.Pointer[Trace], capacity)}
}

// Put records a completed trace, overwriting the oldest slot. The trace
// must not be mutated after Put (readers hold the same pointer).
func (s *TraceStore) Put(t *Trace) {
	if t == nil {
		return
	}
	seq := s.next.Add(1) - 1
	t.seq = seq
	s.slots[seq%uint64(len(s.slots))].Store(t)
}

// Snapshot returns the stored traces, oldest first. Traces being
// overwritten concurrently may be skipped; what is returned is always a
// complete, immutable trace.
func (s *TraceStore) Snapshot() []*Trace {
	out := make([]*Trace, 0, len(s.slots))
	for i := range s.slots {
		if t := s.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	// Insertion sort by sequence: the ring is small and mostly ordered.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].seq > out[j].seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Len reports how many traces are currently stored.
func (s *TraceStore) Len() int {
	n := 0
	for i := range s.slots {
		if s.slots[i].Load() != nil {
			n++
		}
	}
	return n
}
