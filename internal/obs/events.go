// The engine event log: a fixed-size ring of structured, low-frequency
// engine events (plan flips, spill onset, statement timeouts,
// cancellations, admission shedding, cache invalidations, panic
// recoveries). The subsystems that already count these events record
// them here too — one mutex-guarded append per event, and events are by
// construction rare (never per row, batch or morsel), so the query hot
// path is untouched. The ring is process-global, like the hot-path
// counters above it: one engine runs per process, and taps in mem,
// qcache and the server have no engine handle to thread one through.
//
// The ring backs the perm_events system table and permd's -event-log
// JSON stream; Since gives streamers incremental, seq-ordered reads.
package obs

import (
	"sync"
	"time"
)

// DefaultEventLogCapacity is the size of the process-global event ring.
const DefaultEventLogCapacity = 1024

// Event kinds recorded in the engine event log.
const (
	EventPlanFlip          = "plan_flip"
	EventSpill             = "spill"
	EventStatementTimeout  = "statement_timeout"
	EventCancel            = "cancel"
	EventAdmissionShed     = "admission_shed"
	EventCacheInvalidation = "cache_invalidation"
	EventPanicRecovered    = "panic_recovered"
)

// Event is one structured engine event.
type Event struct {
	Seq         int64     `json:"seq"`
	At          time.Time `json:"at"`
	Kind        string    `json:"kind"`
	QueryID     string    `json:"query_id,omitempty"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Detail      string    `json:"detail,omitempty"`
}

// EventLog is a fixed-size ring of Events with monotonically increasing
// sequence numbers.
type EventLog struct {
	mu   sync.Mutex
	ring []Event
	next int
	n    int
	seq  int64
}

// NewEventLog returns a ring retaining up to capacity events (<= 0:
// DefaultEventLogCapacity).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventLogCapacity
	}
	return &EventLog{ring: make([]Event, capacity)}
}

// Events is the process-global engine event log.
var Events = NewEventLog(0)

// Record appends one event. queryID, fingerprint and detail may be
// empty when the recording site has no query context (e.g. a connection
// shed before any statement arrived).
func (l *EventLog) Record(kind, queryID, fingerprint, detail string) {
	now := time.Now()
	l.mu.Lock()
	l.seq++
	l.ring[l.next] = Event{
		Seq:         l.seq,
		At:          now,
		Kind:        kind,
		QueryID:     queryID,
		Fingerprint: fingerprint,
		Detail:      detail,
	}
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
}

// Snapshot returns the retained events, oldest first.
func (l *EventLog) Snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sliceLocked(0)
}

// Since returns the retained events with Seq > seq, oldest first. A
// streamer polls with its last seen sequence number to read only new
// events.
func (l *EventLog) Since(seq int64) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sliceLocked(seq)
}

// LastSeq returns the sequence number of the newest event (0 when none
// have been recorded).
func (l *EventLog) LastSeq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

func (l *EventLog) sliceLocked(afterSeq int64) []Event {
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		e := &l.ring[(l.next-l.n+i+len(l.ring))%len(l.ring)]
		if e.Seq > afterSeq {
			out = append(out, *e)
		}
	}
	return out
}
