// Per-fingerprint statement statistics — the data behind the
// perm_stat_statements system table and the per-fingerprint latency
// histograms on /metrics. Statements are keyed by their normalized-text
// fingerprint (literals stripped), so every execution of the same query
// shape accumulates into one row regardless of parameter values.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultStmtStatsCapacity bounds how many distinct fingerprints the
// registry tracks before evicting the least-recently-executed one.
const DefaultStmtStatsCapacity = 512

// stmtLatencyBounds are the histogram bucket upper bounds for statement
// latencies, in nanoseconds: 100µs .. 10s, roughly ×3 apart.
var stmtLatencyBounds = []int64{
	100_000, 300_000, 1_000_000, 3_000_000, 10_000_000,
	30_000_000, 100_000_000, 300_000_000, 1_000_000_000,
	3_000_000_000, 10_000_000_000,
}

// StmtStat is the accumulated profile of one statement fingerprint.
// Fields are guarded by the owning StmtStats' mutex; Hist is internally
// atomic and safe to read after a snapshot.
type StmtStat struct {
	Fingerprint string
	Query       string // normalized statement text
	Calls       int64
	Errors      int64
	Rows        int64
	TotalNS     int64
	MaxNS       int64
	Hist        *Histogram

	lastUsed int64 // monotonic use tick, for LRU eviction
}

// MeanNS returns the mean latency in nanoseconds.
func (s *StmtStat) MeanNS() int64 {
	if s.Calls == 0 {
		return 0
	}
	return s.TotalNS / s.Calls
}

// StmtStats aggregates per-fingerprint execution statistics. One update
// per statement (never per row), so a plain mutex around a map is cheap
// relative to the statement it accounts.
type StmtStats struct {
	mu   sync.Mutex
	m    map[string]*StmtStat
	cap  int
	tick int64
}

// NewStmtStats returns a registry tracking up to capacity fingerprints
// (<= 0: DefaultStmtStatsCapacity).
func NewStmtStats(capacity int) *StmtStats {
	if capacity <= 0 {
		capacity = DefaultStmtStatsCapacity
	}
	return &StmtStats{m: make(map[string]*StmtStat, 64), cap: capacity}
}

// Observe records one execution of the statement with the given
// fingerprint and normalized text.
func (s *StmtStats) Observe(fingerprint, normalized string, dur time.Duration, rows int64, failed bool) {
	ns := dur.Nanoseconds()
	s.mu.Lock()
	st, ok := s.m[fingerprint]
	if !ok {
		if len(s.m) >= s.cap {
			s.evictLocked()
		}
		st = &StmtStat{
			Fingerprint: fingerprint,
			Query:       normalized,
			Hist:        NewHistogram(stmtLatencyBounds...),
		}
		s.m[fingerprint] = st
	}
	s.tick++
	st.lastUsed = s.tick
	st.Calls++
	if failed {
		st.Errors++
	}
	st.Rows += rows
	st.TotalNS += ns
	if ns > st.MaxNS {
		st.MaxNS = ns
	}
	st.Hist.Observe(ns)
	s.mu.Unlock()
}

// evictLocked drops the strictly least-recently-executed fingerprint
// (ties — only possible among never-again-seen entries — broken by
// fingerprint so eviction is deterministic, not map-iteration-order). A
// hot fingerprint's statistics therefore survive any amount of one-off
// neighbor churn: only the coldest entry ever leaves. A linear scan over
// at most cap entries, and only on the (rare) insert that crosses the
// cap — not worth an ordered index. Each eviction ticks the global
// StmtEvictions counter (perm_stmt_evictions_total) so capacity
// pressure is visible to operators.
func (s *StmtStats) evictLocked() {
	var victim string
	var oldest int64 = -1
	for fp, st := range s.m {
		if oldest < 0 || st.lastUsed < oldest || (st.lastUsed == oldest && fp < victim) {
			oldest = st.lastUsed
			victim = fp
		}
	}
	if victim != "" {
		delete(s.m, victim)
		StmtEvictions.Inc()
	}
}

// Len reports how many fingerprints are tracked.
func (s *StmtStats) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Snapshot returns copies of every tracked statement, most-called first
// (ties broken by fingerprint for stable output). The Hist pointer is
// shared — histograms are internally atomic and append-only.
func (s *StmtStats) Snapshot() []StmtStat {
	s.mu.Lock()
	out := make([]StmtStat, 0, len(s.m))
	for _, st := range s.m {
		out = append(out, *st)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Calls != out[j].Calls {
			return out[i].Calls > out[j].Calls
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// WritePrometheus renders the per-fingerprint latency histograms as the
// perm_stmt_seconds family, one label set per fingerprint. Registered as
// a Registry.RawCollector because the label cardinality grows with the
// workload.
func (s *StmtStats) WritePrometheus(w io.Writer) error {
	snap := s.Snapshot()
	if len(snap) == 0 {
		return nil
	}
	if _, err := fmt.Fprint(w, "# HELP perm_stmt_seconds Statement latency by fingerprint.\n# TYPE perm_stmt_seconds histogram\n"); err != nil {
		return err
	}
	for i := range snap {
		st := &snap[i]
		h := st.Hist
		cum := int64(0)
		for bi, b := range h.bounds {
			cum += h.buckets[bi].Load()
			if _, err := fmt.Fprintf(w, "perm_stmt_seconds_bucket{fingerprint=%q,le=%q} %d\n",
				st.Fingerprint, formatFloat(float64(b)/1e9), cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "perm_stmt_seconds_bucket{fingerprint=%q,le=\"+Inf\"} %d\n", st.Fingerprint, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "perm_stmt_seconds_sum{fingerprint=%q} %s\n",
			st.Fingerprint, formatFloat(float64(h.Sum())*1e-9)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "perm_stmt_seconds_count{fingerprint=%q} %d\n", st.Fingerprint, h.Count()); err != nil {
			return err
		}
	}
	return nil
}
