package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if got := tr.Begin("parse"); got != -1 {
		t.Fatalf("nil Begin = %d, want -1", got)
	}
	tr.End(-1)
	tr.End(3)
	tr.Add(Span{Name: "x"})
	if got := tr.PhaseBreakdown(); got != "" {
		t.Fatalf("nil PhaseBreakdown = %q, want empty", got)
	}
}

func TestTracePhaseBreakdown(t *testing.T) {
	tr := &Trace{QueryID: "q1", Start: time.Now()}
	i := tr.Begin("parse")
	tr.End(i)
	i = tr.Begin("execute")
	tr.End(i)
	tr.Add(Span{Name: "VecScan", Depth: 1, DurNS: 1000, Rows: 42})
	got := tr.PhaseBreakdown()
	if !strings.Contains(got, "parse=") || !strings.Contains(got, "execute=") {
		t.Fatalf("PhaseBreakdown = %q, want parse= and execute=", got)
	}
	if strings.Contains(got, "VecScan") {
		t.Fatalf("PhaseBreakdown %q includes operator spans; want phases only", got)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(8)
	if tr.Sample(0, "q", "fp", "sql", time.Now()) != nil {
		t.Fatal("every=0 must not sample")
	}
	if tr.Sample(-1, "q", "fp", "sql", time.Now()) != nil {
		t.Fatal("negative rate must not sample")
	}
	sampled := 0
	for i := 0; i < 30; i++ {
		if tr.Sample(3, "q", "fp", "sql", time.Now()) != nil {
			sampled++
		}
	}
	if sampled != 10 {
		t.Fatalf("every=3 sampled %d of 30, want 10", sampled)
	}
}

// TestTraceStoreConcurrentPut hammers the lock-free ring from many
// goroutines under -race: every snapshot must only ever observe
// complete, correctly sequenced traces.
func TestTraceStoreConcurrentPut(t *testing.T) {
	s := NewTraceStore(16)
	const writers, per = 8, 200
	stop := make(chan struct{})
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() { // concurrent reader
		defer readerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := s.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i-1].seq >= snap[i].seq {
					t.Error("snapshot out of order")
					return
				}
			}
		}
	}()
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < per; i++ {
				s.Put(&Trace{QueryID: fmt.Sprintf("q%d-%d", w, i), Start: time.Now()})
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	readerWg.Wait()
	if got := s.Len(); got != 16 {
		t.Fatalf("Len = %d after %d puts into a 16-slot ring, want 16", got, writers*per)
	}
	snap := s.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("Snapshot returned %d traces, want 16", len(snap))
	}
}

func TestActivityRegistryAndCancel(t *testing.T) {
	a := NewActivity()
	q1 := &ActiveQuery{ID: "q1", Session: 1, SQL: "SELECT 1"}
	q2 := &ActiveQuery{ID: "q2", Session: 2, SQL: "SELECT 2"}
	a.Register(q1)
	a.Register(q2)
	if got := a.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if err := a.Cancel("q7"); err == nil {
		t.Fatal("cancelling an unknown query must fail")
	}
	if err := a.Cancel("q2"); err != nil {
		t.Fatalf("Cancel(q2): %v", err)
	}
	if !q2.Cancelled() {
		t.Fatal("q2 not marked cancelled")
	}
	if err := q2.CancelErr(); err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("CancelErr = %v, want cancellation error", err)
	}
	if q1.Cancelled() || q1.CancelErr() != nil {
		t.Fatal("cancellation leaked onto q1")
	}
	a.Deregister(q1)
	a.Deregister(q2)
	if got := a.Len(); got != 0 {
		t.Fatalf("Len after deregister = %d, want 0", got)
	}
	// Nil-receiver paths used by untracked executions.
	var nq *ActiveQuery
	nq.SetPhase(PhaseExecute)
	nq.AddRows(5)
	nq.MorselClaimed()
	nq.SetMorselTotal(3)
	nq.Cancel()
	if nq.CancelErr() != nil || nq.Cancelled() {
		t.Fatal("nil ActiveQuery must never report cancellation")
	}
}

func TestStmtStatsObserveAndEvict(t *testing.T) {
	s := NewStmtStats(4)
	for i := 0; i < 3; i++ {
		s.Observe("fp-hot", "select hot", time.Millisecond, 10, false)
	}
	s.Observe("fp-err", "select err", time.Millisecond, 0, true)
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(snap))
	}
	hot := snap[0] // most-called first
	if hot.Fingerprint != "fp-hot" || hot.Calls != 3 || hot.Rows != 30 {
		t.Fatalf("hot stat = %+v", hot)
	}
	if snap[1].Errors != 1 {
		t.Fatalf("error stat = %+v", snap[1])
	}
	// Capacity 4: pushing 4 fresh fingerprints evicts the least recently
	// used entries, never growing past cap.
	for i := 0; i < 4; i++ {
		s.Observe(fmt.Sprintf("fp-new-%d", i), "select new", time.Millisecond, 1, false)
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("Len after eviction = %d, want 4", got)
	}
	// The most recently touched fingerprints survive.
	found := false
	for _, st := range s.Snapshot() {
		if st.Fingerprint == "fp-new-3" {
			found = true
		}
	}
	if !found {
		t.Fatal("most recently observed fingerprint was evicted")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for i := 0; i < 100; i++ {
		h.Observe(int64(i + 1)) // 1..100: 10 in the first bucket, 90 in the second
	}
	if q := h.Quantile(0.05); q > 10 {
		t.Fatalf("p5 = %g, want <= 10", q)
	}
	p50 := h.Quantile(0.50)
	if p50 < 10 || p50 > 100 {
		t.Fatalf("p50 = %g, want within (10, 100]", p50)
	}
	if q := h.Quantile(0.999); q > 1000 {
		t.Fatalf("p99.9 = %g, want <= 1000", q)
	}
	var empty *Histogram
	_ = empty // Quantile on an empty histogram must not panic
	if q := NewHistogram(10).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}
