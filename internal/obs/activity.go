// The active-query registry: every statement the engine runs registers
// itself here for its lifetime, so the perm_stat_activity system table
// (and any operator poking at a live engine) can see what is in flight
// right now — phase, progress and resource counters — and request
// cooperative cancellation.
//
// The registry itself lives in this package rather than internal/session
// because the engine core (package perm) must register queries and check
// cancellation while internal/session sits above perm; obs is the one
// layer both can import. Registration is per-statement, never per-row,
// so a mutex-guarded map is plenty; everything queries touch while
// running (phase, rows, morsels, the cancel flag) is a single atomic.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase is where in the pipeline a query currently is.
type Phase int32

// Pipeline phases, in execution order.
const (
	PhaseParse Phase = iota
	PhaseRewrite
	PhaseOptimize
	PhasePlan
	PhaseExecute
)

func (p Phase) String() string {
	switch p {
	case PhaseParse:
		return "parse"
	case PhaseRewrite:
		return "rewrite"
	case PhaseOptimize:
		return "optimize"
	case PhasePlan:
		return "plan"
	case PhaseExecute:
		return "execute"
	default:
		return "unknown"
	}
}

// ActiveQuery is one in-flight statement's live record. The coordinating
// goroutine writes phase and progress with atomic stores; snapshot
// readers (perm_stat_activity) and cancellers read them concurrently.
type ActiveQuery struct {
	ID          string
	Session     int64
	SQL         string
	Fingerprint string
	Start       time.Time

	phase          atomic.Int32
	rows           atomic.Int64
	morselsClaimed atomic.Int64
	morselsTotal   atomic.Int64
	// cause records why the query is being torn down (0 = running).
	// First writer wins: a timeout landing after a user cancel (or vice
	// versa) keeps the original cause, so the error the issuer sees
	// matches what actually stopped the query. timeoutNS carries the
	// deadline duration for the timeout error message.
	cause     atomic.Int32
	timeoutNS atomic.Int64

	// MemStats reports (reserved, spilled) bytes attributable to the
	// query's session at snapshot time; set once at registration, before
	// the query becomes visible.
	MemStats func() (reserved, spilled int64)
}

// SetPhase publishes the query's current pipeline phase.
func (q *ActiveQuery) SetPhase(p Phase) {
	if q == nil {
		return
	}
	q.phase.Store(int32(p))
}

// Phase returns the query's current pipeline phase.
func (q *ActiveQuery) Phase() Phase { return Phase(q.phase.Load()) }

// AddRows counts rows emitted from the plan root.
func (q *ActiveQuery) AddRows(n int64) {
	if q == nil {
		return
	}
	q.rows.Add(n)
}

// Rows returns the rows emitted so far.
func (q *ActiveQuery) Rows() int64 { return q.rows.Load() }

// MorselClaimed counts one morsel handed to a parallel worker scan.
func (q *ActiveQuery) MorselClaimed() {
	if q == nil {
		return
	}
	q.morselsClaimed.Add(1)
}

// SetMorselTotal publishes how many morsels the query's parallel segment
// will dispatch in one pass of its driver snapshot.
func (q *ActiveQuery) SetMorselTotal(n int64) {
	if q == nil {
		return
	}
	q.morselsTotal.Store(n)
}

// Morsels returns (claimed, total) morsel progress; total is 0 for
// serial queries.
func (q *ActiveQuery) Morsels() (claimed, total int64) {
	return q.morselsClaimed.Load(), q.morselsTotal.Load()
}

// Cancellation causes.
const (
	causeNone int32 = iota
	causeCancel
	causeTimeout
)

// Cancel requests cooperative cancellation: the executing query observes
// the flag at its next batch boundary and unwinds with a structured
// QueryError (code "cancelled").
func (q *ActiveQuery) Cancel() {
	if q == nil {
		return
	}
	q.cause.CompareAndSwap(causeNone, causeCancel)
}

// CancelTimeout requests cancellation because the statement timeout d
// elapsed. It reports whether this call set the cause (false when the
// query was already being cancelled for another reason), so the caller
// can count timed-out statements exactly once.
func (q *ActiveQuery) CancelTimeout(d time.Duration) bool {
	if q == nil {
		return false
	}
	q.timeoutNS.Store(int64(d))
	return q.cause.CompareAndSwap(causeNone, causeTimeout)
}

// Cancelled reports whether cancellation has been requested.
func (q *ActiveQuery) Cancelled() bool { return q != nil && q.cause.Load() != causeNone }

// CancelErr returns the error a cancelled query unwinds with, or nil.
// Executors call it at batch boundaries: one atomic load on the normal
// path.
func (q *ActiveQuery) CancelErr() error {
	if q == nil {
		return nil
	}
	switch q.cause.Load() {
	case causeCancel:
		return &QueryError{
			Code:    CodeCancelled,
			QueryID: q.ID,
			Message: fmt.Sprintf("query %s cancelled", q.ID),
		}
	case causeTimeout:
		return &QueryError{
			Code:    CodeTimeout,
			QueryID: q.ID,
			Message: fmt.Sprintf("query %s cancelled: statement timeout of %s exceeded", q.ID, time.Duration(q.timeoutNS.Load())),
		}
	default:
		return nil
	}
}

// Activity is the engine-wide registry of in-flight statements.
type Activity struct {
	mu sync.Mutex
	m  map[string]*ActiveQuery
}

// NewActivity returns an empty registry.
func NewActivity() *Activity { return &Activity{m: make(map[string]*ActiveQuery)} }

// Register makes a query visible; the caller must Deregister it when the
// statement finishes (success or failure).
func (a *Activity) Register(q *ActiveQuery) {
	a.mu.Lock()
	a.m[q.ID] = q
	a.mu.Unlock()
}

// Deregister removes a finished query.
func (a *Activity) Deregister(q *ActiveQuery) {
	if q == nil {
		return
	}
	a.mu.Lock()
	delete(a.m, q.ID)
	a.mu.Unlock()
}

// Cancel requests cancellation of the query with the given ID. It fails
// when no such query is in flight (already finished, or never existed).
func (a *Activity) Cancel(id string) error {
	a.mu.Lock()
	q, ok := a.m[id]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("query %q is not running", id)
	}
	q.Cancel()
	return nil
}

// Snapshot returns the in-flight queries ordered by query ID (which
// embeds the allocation order, so the listing is stable).
func (a *Activity) Snapshot() []*ActiveQuery {
	a.mu.Lock()
	out := make([]*ActiveQuery, 0, len(a.m))
	for _, q := range a.m {
		out = append(out, q)
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].ID) != len(out[j].ID) {
			return len(out[i].ID) < len(out[j].ID)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len reports how many statements are in flight.
func (a *Activity) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.m)
}
