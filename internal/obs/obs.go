// Package obs is the engine's observability layer: lock-free metric
// primitives (counters, gauges, histograms — all atomic on the hot
// path), a registry that renders them in the Prometheus text exposition
// format, and the per-operator runtime profile (OpStats) EXPLAIN ANALYZE
// collects.
//
// The package sits below every engine subsystem (mem, vexec, plan,
// qcache, session, server all import it), so it depends on nothing but
// the standard library. Hot-path engine events — memory grants/denials,
// morsel dispatches, parallel plan decisions — are counted on
// process-global counters declared here and incremented directly by the
// subsystem that observes the event; one engine runs per process
// (permd), so process scope and engine scope coincide. Snapshot-style
// sources (cache stats, governor stats) register read callbacks instead,
// paying nothing until a scraper actually asks.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to
// use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed cumulative buckets. All
// operations are a couple of atomic adds, so it is safe (and cheap) on
// concurrent request paths.
type Histogram struct {
	bounds  []int64 // sorted upper bounds; observations above all bounds land in the +Inf bucket
	buckets []atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// NewHistogram returns a histogram over the given sorted upper bounds
// (in the native unit of what will be observed, e.g. nanoseconds).
func NewHistogram(bounds ...int64) *Histogram {
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the cumulative
// buckets by linear interpolation within the bucket the rank falls into,
// the same estimate Prometheus' histogram_quantile computes. Returns 0
// with no observations; the top (+Inf) bucket is approximated by its
// lower bound.
func (h *Histogram) Quantile(q float64) float64 {
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	cum := int64(0)
	for i, b := range h.bounds {
		n := h.buckets[i].Load()
		if float64(cum+n) >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(h.bounds[i-1])
			}
			if n == 0 {
				return float64(b)
			}
			return lo + (float64(b)-lo)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// ---------------------------------------------------------------------------
// Process-global engine counters
//
// These are the hot-path event counters: the subsystem that observes the
// event increments the counter directly (one atomic add, no lookup, no
// allocation). Events are per-grant, per-morsel or per-plan — never
// per-row or per-batch — so the query hot path stays untouched.
var (
	// MemGrants / MemDenials count operator memory requests at the
	// accountant (a denial is the signal to spill).
	MemGrants  Counter
	MemDenials Counter

	// MorselsDispatched counts morsels handed to parallel worker scans.
	MorselsDispatched Counter

	// ParallelPlans counts queries planned with a parallel operator;
	// ParallelWorkers the workers those plans launched; SerialFallbacks
	// the times a parallel site was found but replica validation failed
	// and the plan silently stayed serial.
	ParallelPlans   Counter
	ParallelWorkers Counter
	SerialFallbacks Counter

	// SessionsActive / PreparedStatements track the session subsystem.
	SessionsActive     Gauge
	PreparedStatements Gauge

	// Robustness counters: PanicsRecovered counts panics converted to
	// errors (per-query dispatch and parallel workers);
	// StatementTimeouts counts statements cancelled by their timeout;
	// ConnsShed counts connections or requests refused by admission
	// control (max-connections, full worker queue, drain-time
	// arrivals); ClientRetries counts permclient retry attempts.
	PanicsRecovered   Counter
	StatementTimeouts Counter
	ConnsShed         Counter
	ClientRetries     Counter

	// Plan-health counters: PlanFlips counts recompilations where a
	// statement fingerprint's physical plan hash changed (stats drift,
	// catalog bump, SET change); StmtEvictions counts fingerprints
	// dropped from the perm_stat_statements registry under capacity
	// pressure.
	PlanFlips     Counter
	StmtEvictions Counter
)

// ---------------------------------------------------------------------------
// OpStats: the per-operator profile EXPLAIN ANALYZE collects

// OpStats is one plan operator's runtime profile, filled in by the Probe
// wrapper nodes (exec.Probe, vexec.Probe) that EXPLAIN ANALYZE inserts
// around each operator. Probes run on the coordinating goroutine only
// (parallel worker subtrees are never wrapped), so plain fields suffice.
type OpStats struct {
	Rows    int64 // rows (live lanes) emitted
	Batches int64 // batches emitted (vectorized operators only)
	OpenNS  int64 // wall time inside Open
	NextNS  int64 // cumulative wall time inside Next
	CloseNS int64 // wall time inside Close
}

// TotalNS returns the operator's total wall time (including children —
// probes time the call, not the self-cost).
func (s *OpStats) TotalNS() int64 { return s.OpenNS + s.NextNS + s.CloseNS }

// ---------------------------------------------------------------------------
// Card: the planner's cardinality estimate, carried on the operator

// Card is embedded in every physical operator (row and vectorized) and
// holds the planner's estimated output row count for that operator. The
// planner fills it at construction time from the same fragment estimates
// that drive join ordering; EXPLAIN ANALYZE reads it back next to the
// probe's actual row count to render est/act/q-error. A zero EstRows
// means "no estimate" (operators synthesized outside the cost model) and
// is skipped by the renderer. Plain field, written once at plan time,
// read only by instrumentation — never touched on the execution hot
// path.
type Card struct {
	EstRows float64
}

// SetEstRows records the planner's estimate.
func (c *Card) SetEstRows(n float64) { c.EstRows = n }

// EstimatedRows returns the recorded estimate (0 = none).
func (c *Card) EstimatedRows() float64 { return c.EstRows }

// QError returns the q-error of an estimate against an actual row count:
// max(est/act, act/est) with both sides clamped to at least one row, the
// standard symmetric misestimation factor (1.0 = perfect). Returns 0
// when there is no estimate.
func QError(est float64, act int64) float64 {
	if est <= 0 {
		return 0
	}
	e, a := est, float64(act)
	if e < 1 {
		e = 1
	}
	if a < 1 {
		a = 1
	}
	if e > a {
		return e / a
	}
	return a / e
}

// ---------------------------------------------------------------------------
// Registry

// MetricType distinguishes the Prometheus exposition families.
type MetricType int

// Metric types, rendered in the # TYPE header.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// point is one labeled sample of a family, read on demand.
type point struct {
	labels string // rendered label set without braces, e.g. `event="hit"`; "" for none
	read   func() float64
	hist   *Histogram
	scale  float64 // multiplies histogram bounds/sum on exposition (e.g. ns → s)
}

// family is one metric name with its help text, type and sample points.
type family struct {
	name   string
	help   string
	typ    MetricType
	points []point
}

// Registry collects metric families and renders them in the Prometheus
// text exposition format. Registration takes a lock; reading metrics for
// exposition takes the same lock but only snapshots atomics, so a
// scraper never blocks the engine. A registry with no scraper attached
// costs nothing: the engine's hot-path counters are plain package-level
// atomics whether or not any registry reads them.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	index map[string]*family
	raw   []func(io.Writer) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

func (r *Registry) add(name, help string, typ MetricType, p point) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.index[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.index[name] = f
		r.fams = append(r.fams, f)
	}
	f.points = append(f.points, p)
}

// ReadFunc registers a sample read from fn on every exposition. labels
// is the rendered label set without braces (e.g. `event="hit"`), "" for
// none. Registering the same name again with different labels adds a
// sample to the existing family.
func (r *Registry) ReadFunc(name, help string, typ MetricType, labels string, fn func() float64) {
	r.add(name, help, typ, point{labels: labels, read: fn})
}

// CounterVar registers a Counter under name.
func (r *Registry) CounterVar(name, help, labels string, c *Counter) {
	r.ReadFunc(name, help, TypeCounter, labels, func() float64 { return float64(c.Load()) })
}

// GaugeVar registers a Gauge under name.
func (r *Registry) GaugeVar(name, help, labels string, g *Gauge) {
	r.ReadFunc(name, help, TypeGauge, labels, func() float64 { return float64(g.Load()) })
}

// HistogramVar registers a Histogram under name. scale multiplies the
// bucket bounds and sum on exposition (pass 1e-9 for nanosecond
// observations exposed as Prometheus seconds; 0 means 1).
func (r *Registry) HistogramVar(name, help string, h *Histogram, scale float64) {
	if scale == 0 {
		scale = 1
	}
	r.add(name, help, TypeHistogram, point{hist: h, scale: scale})
}

// RawCollector registers a function that writes pre-rendered exposition
// text (its own # HELP/# TYPE headers included) after the registered
// families. Dynamic-cardinality sources — like the per-fingerprint
// statement histograms, whose label sets grow as the workload runs —
// use this instead of registering a point per label value up front.
func (r *Registry) RawCollector(fn func(io.Writer) error) {
	r.mu.Lock()
	r.raw = append(r.raw, fn)
	r.mu.Unlock()
}

// Sample is one metric data point as exposed by Samples, the flattened
// view the perm_metrics system table serves. Histograms flatten to their
// _sum and _count series.
type Sample struct {
	Name   string
	Labels string // rendered without braces, e.g. `event="hit"`
	Value  float64
}

// Samples snapshots every registered family as flat (name, labels,
// value) points.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for _, f := range r.fams {
		for _, p := range f.points {
			if p.hist != nil {
				scale := p.scale
				if scale == 0 {
					scale = 1
				}
				out = append(out, Sample{Name: f.name + "_sum", Value: float64(p.hist.Sum()) * scale})
				out = append(out, Sample{Name: f.name + "_count", Value: float64(p.hist.Count())})
				continue
			}
			out = append(out, Sample{Name: f.name, Labels: p.labels, Value: p.read()})
		}
	}
	return out
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, p := range f.points {
			if p.hist != nil {
				if err := writeHistogram(w, f.name, p); err != nil {
					return err
				}
				continue
			}
			if err := writeSample(w, f.name, p.labels, p.read()); err != nil {
				return err
			}
		}
	}
	for _, fn := range r.raw {
		if err := fn(w); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, name, labels string, v float64) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
	}
	return err
}

func writeHistogram(w io.Writer, name string, p point) error {
	h := p.hist
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatFloat(float64(b)*p.scale), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(h.sum.Load())*p.scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	return err
}

// formatFloat renders integral values without an exponent or trailing
// zeros, everything else with enough precision to round-trip.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
