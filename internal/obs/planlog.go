// Plan-flip history — the data behind the perm_stat_plans system table
// and the perm_plan_flips_total counter. The engine reports every fresh
// compilation's physical plan hash here, keyed by the statement's
// normalized fingerprint; when the same fingerprint compiles to a
// different hash (stats drift after DML, a catalog bump, a SET options
// change) the store records the flip — before/after hashes, what
// triggered it, and enough latency baseline to compute the delta the
// flip caused — into a fixed-size ring.
package obs

import (
	"sync"
	"time"
)

// DefaultPlanStoreCapacity bounds how many distinct fingerprints the
// plan store tracks; DefaultPlanFlipRing bounds how many flips the
// history ring retains.
const (
	DefaultPlanStoreCapacity = 512
	DefaultPlanFlipRing      = 256
)

// Flip triggers, classified from what changed between the two
// compilations of the same fingerprint.
const (
	FlipTriggerCatalog = "catalog" // catalog version moved (DDL/DML shifted stats)
	FlipTriggerSet     = "set"     // session options (SET) changed the planning environment
	FlipTriggerReplan  = "replan"  // same version and options, plan still differed
)

// planEntry is the live per-fingerprint plan state.
type planEntry struct {
	fingerprint string
	query       string // normalized statement text
	hash        uint64
	catVersion  int64
	optsKey     string
	compiles    int64 // fresh compilations observed
	flips       int64
	calls       int64 // executions accounted via NoteExec
	totalNS     int64
	lastUsed    int64 // monotonic use tick, for LRU eviction
}

// PlanFlip is one recorded plan change. Latency fields are filled at
// snapshot time: BeforeMeanNS is the fingerprint's mean latency over the
// executions before the flip, AfterMeanNS over the executions since
// (0 when none have completed yet).
type PlanFlip struct {
	At           time.Time
	Fingerprint  string
	Query        string
	OldHash      uint64
	NewHash      uint64
	Trigger      string
	Flips        int64 // total flips for this fingerprint, including this one
	BeforeMeanNS int64
	AfterMeanNS  int64
}

// flipRec is the ring's internal record; the after-side latency is
// resolved against the live entry at snapshot time.
type flipRec struct {
	at           time.Time
	fingerprint  string
	query        string
	oldHash      uint64
	newHash      uint64
	trigger      string
	flipNo       int64
	beforeMeanNS int64
	baseCalls    int64 // entry.calls at flip time
	baseTotalNS  int64 // entry.totalNS at flip time
	entry        *planEntry
}

// PlanStore tracks the current physical plan per statement fingerprint
// and the history of plan flips. One update per fresh compilation and
// one per statement completion — never per row.
type PlanStore struct {
	mu   sync.Mutex
	m    map[string]*planEntry
	cap  int
	tick int64

	ring []flipRec
	next int
	n    int
}

// NewPlanStore returns a store tracking up to capacity fingerprints with
// a flip ring of ringCap entries (<= 0: package defaults).
func NewPlanStore(capacity, ringCap int) *PlanStore {
	if capacity <= 0 {
		capacity = DefaultPlanStoreCapacity
	}
	if ringCap <= 0 {
		ringCap = DefaultPlanFlipRing
	}
	return &PlanStore{m: make(map[string]*planEntry, 16), cap: capacity, ring: make([]flipRec, ringCap)}
}

// ObservePlan records that fingerprint compiled to the given physical
// plan hash at the given catalog version under the given options key.
// When the fingerprint had previously compiled to a different hash it
// records the flip and returns (previous hash, true); otherwise
// (0, false).
func (p *PlanStore) ObservePlan(fingerprint, normalized string, hash uint64, catVersion int64, optsKey string) (uint64, bool) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.m[fingerprint]
	if !ok {
		if len(p.m) >= p.cap {
			p.evictLocked()
		}
		e = &planEntry{fingerprint: fingerprint, query: normalized}
		p.m[fingerprint] = e
	} else if e.hash != hash && e.compiles > 0 {
		e.flips++
		trigger := FlipTriggerReplan
		switch {
		case catVersion != e.catVersion:
			trigger = FlipTriggerCatalog
		case optsKey != e.optsKey:
			trigger = FlipTriggerSet
		}
		var beforeMean int64
		if e.calls > 0 {
			beforeMean = e.totalNS / e.calls
		}
		p.ring[p.next] = flipRec{
			at:           now,
			fingerprint:  fingerprint,
			query:        e.query,
			oldHash:      e.hash,
			newHash:      hash,
			trigger:      trigger,
			flipNo:       e.flips,
			beforeMeanNS: beforeMean,
			baseCalls:    e.calls,
			baseTotalNS:  e.totalNS,
			entry:        e,
		}
		p.next = (p.next + 1) % len(p.ring)
		if p.n < len(p.ring) {
			p.n++
		}
		old := e.hash
		p.bump(e)
		e.hash = hash
		e.catVersion = catVersion
		e.optsKey = optsKey
		e.compiles++
		return old, true
	}
	p.bump(e)
	e.hash = hash
	e.catVersion = catVersion
	e.optsKey = optsKey
	e.compiles++
	return 0, false
}

// NoteExec accounts one completed execution of the fingerprint, feeding
// the latency baselines the flip ring's before/after means come from.
// Unknown fingerprints (evicted, or executed from the compiled-query
// cache before any fresh compile was observed) are ignored.
func (p *PlanStore) NoteExec(fingerprint string, durNS int64) {
	p.mu.Lock()
	if e, ok := p.m[fingerprint]; ok {
		e.calls++
		e.totalNS += durNS
		p.bump(e)
	}
	p.mu.Unlock()
}

func (p *PlanStore) bump(e *planEntry) {
	p.tick++
	e.lastUsed = p.tick
}

// evictLocked drops the least-recently-used fingerprint (ties broken by
// fingerprint for determinism). Ring records keep their entry pointer —
// a flip's after-latency freezes once its entry leaves the map.
func (p *PlanStore) evictLocked() {
	var victim string
	var oldest int64 = -1
	for fp, e := range p.m {
		if oldest < 0 || e.lastUsed < oldest || (e.lastUsed == oldest && fp < victim) {
			oldest = e.lastUsed
			victim = fp
		}
	}
	if victim != "" {
		delete(p.m, victim)
	}
}

// Flips returns the recorded plan flips, oldest first, with the
// after-flip latency mean resolved against each flip's live entry.
func (p *PlanStore) Flips() []PlanFlip {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PlanFlip, 0, p.n)
	for i := 0; i < p.n; i++ {
		r := &p.ring[(p.next-p.n+i+len(p.ring))%len(p.ring)]
		f := PlanFlip{
			At:           r.at,
			Fingerprint:  r.fingerprint,
			Query:        r.query,
			OldHash:      r.oldHash,
			NewHash:      r.newHash,
			Trigger:      r.trigger,
			Flips:        r.flipNo,
			BeforeMeanNS: r.beforeMeanNS,
		}
		if calls := r.entry.calls - r.baseCalls; calls > 0 {
			f.AfterMeanNS = (r.entry.totalNS - r.baseTotalNS) / calls
		}
		out = append(out, f)
	}
	return out
}

// FlipCount reports how many flips are currently retained in the ring.
func (p *PlanStore) FlipCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Len reports how many fingerprints are tracked.
func (p *PlanStore) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}
