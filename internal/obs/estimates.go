// Per-fingerprint cardinality-misestimation statistics — the data behind
// the perm_stat_estimates system table. Every EXPLAIN ANALYZE execution
// harvests (operator, estimated rows, actual rows) triples from the
// instrumented plan and feeds them here; the store keeps, per statement
// fingerprint, the worst q-error ever observed and which operator
// produced it, so "find my worst misestimate" is one ORDER BY away.
package obs

import (
	"sort"
	"sync"
	"time"
)

// DefaultEstStoreCapacity bounds how many distinct fingerprints the
// estimate store tracks before evicting the least-recently-fed one.
const DefaultEstStoreCapacity = 512

// OpEst is one operator's (estimate, actual) pair as harvested from an
// instrumented plan.
type OpEst struct {
	Op      string // operator label, e.g. "VecHashJoin"
	EstRows float64
	ActRows int64
}

// EstRecord is the accumulated misestimation profile of one statement
// fingerprint.
type EstRecord struct {
	Fingerprint string
	Query       string // normalized statement text
	Analyzed    int64  // instrumented executions feeding this record
	Ops         int64  // operator estimates observed in total
	MaxQErr     float64
	SumQErr     float64 // sum of per-execution worst q-errors (for the mean)
	WorstOp     string  // operator that produced MaxQErr
	WorstEst    float64 // its estimated rows
	WorstAct    int64   // its actual rows
	LastSeen    time.Time

	lastUsed int64 // monotonic use tick, for LRU eviction
}

// MeanQErr returns the mean of the per-execution worst q-errors.
func (r *EstRecord) MeanQErr() float64 {
	if r.Analyzed == 0 {
		return 0
	}
	return r.SumQErr / float64(r.Analyzed)
}

// EstStore aggregates per-fingerprint misestimation statistics. Updates
// arrive once per instrumented execution (never per row), so a mutex
// around a map is cheap relative to the ANALYZE that produced the data.
type EstStore struct {
	mu   sync.Mutex
	m    map[string]*EstRecord
	cap  int
	tick int64
}

// NewEstStore returns a store tracking up to capacity fingerprints
// (<= 0: DefaultEstStoreCapacity).
func NewEstStore(capacity int) *EstStore {
	if capacity <= 0 {
		capacity = DefaultEstStoreCapacity
	}
	return &EstStore{m: make(map[string]*EstRecord, 16), cap: capacity}
}

// Observe folds one instrumented execution's operator estimates into the
// fingerprint's record. Operators without an estimate (EstRows == 0) are
// ignored; an execution where no operator carried an estimate is not
// counted.
func (s *EstStore) Observe(fingerprint, normalized string, ops []OpEst) {
	var worst float64
	var worstOp OpEst
	var seen int64
	for _, o := range ops {
		q := QError(o.EstRows, o.ActRows)
		if q == 0 {
			continue
		}
		seen++
		if q > worst {
			worst = q
			worstOp = o
		}
	}
	if seen == 0 {
		return
	}
	s.mu.Lock()
	r, ok := s.m[fingerprint]
	if !ok {
		if len(s.m) >= s.cap {
			s.evictLocked()
		}
		r = &EstRecord{Fingerprint: fingerprint, Query: normalized}
		s.m[fingerprint] = r
	}
	s.tick++
	r.lastUsed = s.tick
	r.Analyzed++
	r.Ops += seen
	r.SumQErr += worst
	if worst > r.MaxQErr {
		r.MaxQErr = worst
		r.WorstOp = worstOp.Op
		r.WorstEst = worstOp.EstRows
		r.WorstAct = worstOp.ActRows
	}
	r.LastSeen = time.Now()
	s.mu.Unlock()
}

// evictLocked drops the least-recently-fed fingerprint (ties broken by
// fingerprint for determinism).
func (s *EstStore) evictLocked() {
	var victim string
	var oldest int64 = -1
	for fp, r := range s.m {
		if oldest < 0 || r.lastUsed < oldest || (r.lastUsed == oldest && fp < victim) {
			oldest = r.lastUsed
			victim = fp
		}
	}
	if victim != "" {
		delete(s.m, victim)
	}
}

// Len reports how many fingerprints are tracked.
func (s *EstStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Snapshot returns copies of every tracked record, worst q-error first
// (ties broken by fingerprint for stable output).
func (s *EstStore) Snapshot() []EstRecord {
	s.mu.Lock()
	out := make([]EstRecord, 0, len(s.m))
	for _, r := range s.m {
		out = append(out, *r)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxQErr != out[j].MaxQErr {
			return out[i].MaxQErr > out[j].MaxQErr
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}
