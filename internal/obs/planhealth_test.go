package obs

import (
	"fmt"
	"testing"
	"time"
)

func TestQError(t *testing.T) {
	cases := []struct {
		est  float64
		act  int64
		want float64
	}{
		{0, 100, 0},   // no estimate: not scored
		{-1, 100, 0},  // negative treated as no estimate
		{10, 10, 1},   // exact
		{10, 100, 10}, // under by 10x
		{100, 10, 10}, // over by 10x — symmetric
		{5, 0, 5},     // actual clamps to 1
		{0.5, 1, 1},   // sub-row estimate clamps to 1
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); got != c.want {
			t.Fatalf("QError(%v, %d) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

func TestEstStoreObserve(t *testing.T) {
	s := NewEstStore(0)
	s.Observe("fp1", "select 1", []OpEst{
		{Op: "VecScan", EstRows: 10, ActRows: 100},  // qerr 10
		{Op: "VecFilter", EstRows: 50, ActRows: 25}, // qerr 2
	})
	s.Observe("fp1", "select 1", []OpEst{
		{Op: "VecScan", EstRows: 10, ActRows: 20}, // qerr 2
	})
	s.Observe("fp2", "select 2", nil) // no estimates: not counted
	if s.Len() != 1 {
		t.Fatalf("want 1 fingerprint, got %d", s.Len())
	}
	snap := s.Snapshot()
	r := snap[0]
	if r.Analyzed != 2 || r.Ops != 3 {
		t.Fatalf("analyzed/ops = %d/%d, want 2/3", r.Analyzed, r.Ops)
	}
	if r.MaxQErr != 10 || r.WorstOp != "VecScan" || r.WorstEst != 10 || r.WorstAct != 100 {
		t.Fatalf("worst = %v %s est=%v act=%d", r.MaxQErr, r.WorstOp, r.WorstEst, r.WorstAct)
	}
	if r.MeanQErr() != 6 { // (10 + 2) / 2
		t.Fatalf("mean q-error %v, want 6", r.MeanQErr())
	}
}

func TestEstStoreEvictsLRU(t *testing.T) {
	s := NewEstStore(2)
	ops := []OpEst{{Op: "VecScan", EstRows: 1, ActRows: 2}}
	s.Observe("a", "qa", ops)
	s.Observe("b", "qb", ops)
	s.Observe("a", "qa", ops) // refresh a: b is now LRU
	s.Observe("c", "qc", ops)
	if s.Len() != 2 {
		t.Fatalf("capacity not enforced: %d", s.Len())
	}
	for _, r := range s.Snapshot() {
		if r.Fingerprint == "b" {
			t.Fatal("evicted the recently used fingerprint instead of the LRU one")
		}
	}
}

func TestPlanStoreFlips(t *testing.T) {
	p := NewPlanStore(0, 0)
	if _, flipped := p.ObservePlan("fp", "q", 0x111, 1, "opts"); flipped {
		t.Fatal("first compile reported as flip")
	}
	if _, flipped := p.ObservePlan("fp", "q", 0x111, 1, "opts"); flipped {
		t.Fatal("same hash reported as flip")
	}
	p.NoteExec("fp", int64(10*time.Millisecond))
	p.NoteExec("fp", int64(20*time.Millisecond))
	old, flipped := p.ObservePlan("fp", "q", 0x222, 2, "opts")
	if !flipped || old != 0x111 {
		t.Fatalf("catalog-bump flip not detected: old=%#x flipped=%v", old, flipped)
	}
	p.NoteExec("fp", int64(40*time.Millisecond))
	flips := p.Flips()
	if len(flips) != 1 {
		t.Fatalf("want 1 flip, got %d", len(flips))
	}
	f := flips[0]
	if f.Trigger != FlipTriggerCatalog {
		t.Fatalf("trigger %q, want catalog", f.Trigger)
	}
	if f.OldHash != 0x111 || f.NewHash != 0x222 || f.Flips != 1 {
		t.Fatalf("flip record %+v", f)
	}
	if f.BeforeMeanNS != int64(15*time.Millisecond) {
		t.Fatalf("before mean %d", f.BeforeMeanNS)
	}
	if f.AfterMeanNS != int64(40*time.Millisecond) {
		t.Fatalf("after mean %d", f.AfterMeanNS)
	}

	// Same version, changed options → "set"; nothing changed → "replan".
	if _, flipped := p.ObservePlan("fp", "q", 0x333, 2, "opts2"); !flipped {
		t.Fatal("options-change flip not detected")
	}
	if _, flipped := p.ObservePlan("fp", "q", 0x444, 2, "opts2"); !flipped {
		t.Fatal("replan flip not detected")
	}
	flips = p.Flips()
	if len(flips) != 3 || flips[1].Trigger != FlipTriggerSet || flips[2].Trigger != FlipTriggerReplan {
		t.Fatalf("triggers: %+v", flips)
	}
}

func TestPlanStoreRingWraps(t *testing.T) {
	p := NewPlanStore(8, 4)
	for i := 0; i < 10; i++ {
		p.ObservePlan("fp", "q", uint64(i), int64(i), "o")
	}
	if p.FlipCount() != 4 {
		t.Fatalf("ring holds %d flips, want 4", p.FlipCount())
	}
	flips := p.Flips()
	if flips[0].OldHash != 5 || flips[3].NewHash != 9 {
		t.Fatalf("ring kept wrong flips: %+v", flips)
	}
}

func TestEventLogRingAndSince(t *testing.T) {
	l := NewEventLog(4)
	for i := 1; i <= 6; i++ {
		l.Record(EventSpill, fmt.Sprintf("q%d", i), "", "d")
	}
	snap := l.Snapshot()
	if len(snap) != 4 || snap[0].Seq != 3 || snap[3].Seq != 6 {
		t.Fatalf("ring snapshot wrong: %+v", snap)
	}
	if l.LastSeq() != 6 {
		t.Fatalf("last seq %d", l.LastSeq())
	}
	since := l.Since(4)
	if len(since) != 2 || since[0].Seq != 5 || since[1].Seq != 6 {
		t.Fatalf("Since(4) = %+v", since)
	}
	if got := l.Since(6); len(got) != 0 {
		t.Fatalf("Since(last) not empty: %+v", got)
	}
}
