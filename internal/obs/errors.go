// Structured query errors. The engine core raises them (cancellation,
// statement timeout), the wire layer maps their codes into response
// frames, and clients switch on the code instead of parsing message
// text. The type lives in obs because it is the one package both the
// engine core and the service layers already share.
package obs

// Query error codes carried by QueryError.Code.
const (
	// CodeCancelled: the query was cancelled by an explicit request
	// (CANCEL statement, wire CANCEL op).
	CodeCancelled = "cancelled"
	// CodeTimeout: the query exceeded its statement timeout.
	CodeTimeout = "timeout"
)

// QueryError is a structured engine error: a machine-readable code, the
// ID of the query it terminated, and the human-readable message.
type QueryError struct {
	Code    string
	QueryID string
	Message string
}

func (e *QueryError) Error() string { return e.Message }
