package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestCountersConcurrent hammers one counter and one gauge from many
// goroutines and checks the totals are exact (the -race CI job runs this
// with the race detector on).
func TestCountersConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Load(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	want := []int64{2, 2, 0, 1} // ≤10, ≤100, ≤1000, +Inf
	for i, n := range want {
		if got := h.buckets[i].Load(); got != n {
			t.Fatalf("bucket %d = %d, want %d", i, got, n)
		}
	}
	if h.sum.Load() != 5+10+11+100+5000 {
		t.Fatalf("sum = %d", h.sum.Load())
	}
}

// TestWritePrometheus pins the exposition format: one HELP/TYPE header
// per family, labeled samples grouped under it, histograms rendered as
// cumulative buckets with sum and count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	var hits, misses Counter
	hits.Add(3)
	misses.Add(1)
	r.CounterVar("perm_qcache_lookups_total", "Query cache lookups.", `event="hit"`, &hits)
	r.CounterVar("perm_qcache_lookups_total", "Query cache lookups.", `event="miss"`, &misses)
	var inuse Gauge
	inuse.Set(4096)
	r.GaugeVar("perm_mem_reserved_bytes", "Reserved bytes.", "", &inuse)
	h := NewHistogram(1_000_000, 1_000_000_000)
	h.Observe(500_000)
	h.Observe(2_000_000_000)
	r.HistogramVar("perm_query_duration_seconds", "Statement wall time.", h, 1e-9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP perm_qcache_lookups_total Query cache lookups.",
		"# TYPE perm_qcache_lookups_total counter",
		`perm_qcache_lookups_total{event="hit"} 3`,
		`perm_qcache_lookups_total{event="miss"} 1`,
		"# TYPE perm_mem_reserved_bytes gauge",
		"perm_mem_reserved_bytes 4096",
		"# TYPE perm_query_duration_seconds histogram",
		`perm_query_duration_seconds_bucket{le="0.001"} 1`,
		`perm_query_duration_seconds_bucket{le="1"} 1`,
		`perm_query_duration_seconds_bucket{le="+Inf"} 2`,
		"perm_query_duration_seconds_sum 2.0005",
		"perm_query_duration_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, out)
		}
	}
	// Exactly one header per family even with multiple labeled samples.
	if n := strings.Count(out, "# TYPE perm_qcache_lookups_total"); n != 1 {
		t.Fatalf("family header repeated %d times", n)
	}
}
