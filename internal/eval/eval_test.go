package eval

import (
	"strings"
	"testing"
	"testing/quick"

	"perm/internal/algebra"
	"perm/internal/types"
)

// testBinder binds vars positionally (RT ignored, Col = position).
type testBinder struct{}

func (testBinder) BindVar(v *algebra.Var) (int, error) { return v.Col, nil }
func (testBinder) BindSubLink(*algebra.SubLink) (SubLinkValue, error) {
	return fakeSubLink{}, nil
}

type fakeSubLink struct{}

func (fakeSubLink) Scalar() (types.Value, error) { return types.NewInt(42), nil }
func (fakeSubLink) Exists() (bool, error)        { return true, nil }
func (fakeSubLink) CompareAny(test types.Value, op string) (types.Tri, error) {
	return types.TriTrue, nil
}
func (fakeSubLink) CompareAll(test types.Value, op string) (types.Tri, error) {
	return types.TriFalse, nil
}

func v(col int, k types.Kind) *algebra.Var {
	return &algebra.Var{Col: col, Typ: k}
}

func c(val types.Value) *algebra.Const { return &algebra.Const{Val: val} }

func evalExpr(t *testing.T, e algebra.Expr, row types.Row) types.Value {
	t.Helper()
	f, err := Compile(e, testBinder{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out, err := f(&Ctx{Row: row})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return out
}

func TestVarAndConst(t *testing.T) {
	row := types.Row{types.NewInt(7), types.NewString("x")}
	if got := evalExpr(t, v(0, types.KindInt), row); got.I != 7 {
		t.Errorf("var = %v", got)
	}
	if got := evalExpr(t, c(types.NewBool(true)), row); !got.B {
		t.Errorf("const = %v", got)
	}
}

func TestComparisonNullSemantics(t *testing.T) {
	row := types.Row{types.NewInt(1), types.NewNull(types.KindInt)}
	eq := &algebra.BinOp{Op: "=", Left: v(0, types.KindInt), Right: v(1, types.KindInt), Typ: types.KindBool}
	if got := evalExpr(t, eq, row); !got.Null {
		t.Errorf("1 = NULL should be NULL, got %v", got)
	}
	df := &algebra.DistinctFrom{Left: v(0, types.KindInt), Right: v(1, types.KindInt)}
	if got := evalExpr(t, df, row); !got.B {
		t.Errorf("1 IS DISTINCT FROM NULL should be true, got %v", got)
	}
	isn := &algebra.IsNull{Expr: v(1, types.KindInt)}
	if got := evalExpr(t, isn, row); !got.B {
		t.Errorf("NULL IS NULL should be true")
	}
}

func TestShortCircuit(t *testing.T) {
	// FALSE AND (1/0 = 1) must not evaluate the division.
	div := &algebra.BinOp{Op: "/",
		Left: c(types.NewInt(1)), Right: c(types.NewInt(0)), Typ: types.KindInt}
	boom := &algebra.BinOp{Op: "=", Left: div, Right: c(types.NewInt(1)), Typ: types.KindBool}
	and := &algebra.BinOp{Op: "AND", Left: c(types.NewBool(false)), Right: boom, Typ: types.KindBool}
	if got := evalExpr(t, and, nil); got.Null || got.B {
		t.Errorf("FALSE AND boom = %v, want false", got)
	}
	or := &algebra.BinOp{Op: "OR", Left: c(types.NewBool(true)), Right: boom, Typ: types.KindBool}
	if got := evalExpr(t, or, nil); !got.B {
		t.Errorf("TRUE OR boom = %v, want true", got)
	}
}

func TestCaseEvaluation(t *testing.T) {
	ce := &algebra.CaseExpr{
		Whens: []algebra.CaseWhen{
			{Cond: &algebra.BinOp{Op: "<", Left: v(0, types.KindInt), Right: c(types.NewInt(5)), Typ: types.KindBool},
				Result: c(types.NewString("small"))},
		},
		Else: c(types.NewString("big")),
		Typ:  types.KindString,
	}
	if got := evalExpr(t, ce, types.Row{types.NewInt(1)}); got.S != "small" {
		t.Errorf("case = %v", got)
	}
	if got := evalExpr(t, ce, types.Row{types.NewInt(9)}); got.S != "big" {
		t.Errorf("case = %v", got)
	}
	// NULL condition falls through to ELSE.
	if got := evalExpr(t, ce, types.Row{types.NewNull(types.KindInt)}); got.S != "big" {
		t.Errorf("case null cond = %v", got)
	}
	// No ELSE → typed NULL.
	ce.Else = nil
	if got := evalExpr(t, ce, types.Row{types.NewInt(9)}); !got.Null {
		t.Errorf("case without else = %v", got)
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := []struct {
		name string
		args []algebra.Expr
		want string
	}{
		{"upper", []algebra.Expr{c(types.NewString("abc"))}, "ABC"},
		{"lower", []algebra.Expr{c(types.NewString("AbC"))}, "abc"},
		{"length", []algebra.Expr{c(types.NewString("abcd"))}, "4"},
		{"substring", []algebra.Expr{c(types.NewString("hello")), c(types.NewInt(2)), c(types.NewInt(3))}, "ell"},
		{"substring", []algebra.Expr{c(types.NewString("hello")), c(types.NewInt(4))}, "lo"},
		{"abs", []algebra.Expr{c(types.NewInt(-5))}, "5"},
		{"round", []algebra.Expr{c(types.NewFloat(2.567)), c(types.NewInt(1))}, "2.6"},
		{"floor", []algebra.Expr{c(types.NewFloat(2.9))}, "2"},
		{"ceil", []algebra.Expr{c(types.NewFloat(2.1))}, "3"},
		{"sqrt", []algebra.Expr{c(types.NewFloat(9))}, "3"},
		{"power", []algebra.Expr{c(types.NewFloat(2)), c(types.NewFloat(10))}, "1024"},
		{"concat", []algebra.Expr{c(types.NewString("a")), c(types.NewInt(1))}, "a1"},
		{"coalesce", []algebra.Expr{c(types.NullValue), c(types.NewInt(3))}, "3"},
		{"extract_year", []algebra.Expr{c(types.DateFromYMD(1998, 7, 4))}, "1998"},
		{"extract_month", []algebra.Expr{c(types.DateFromYMD(1998, 7, 4))}, "7"},
		{"extract_day", []algebra.Expr{c(types.DateFromYMD(1998, 7, 4))}, "4"},
	}
	for _, tc := range cases {
		fc := &algebra.FuncCall{Name: tc.name, Args: tc.args}
		if got := evalExpr(t, fc, nil); got.String() != tc.want {
			t.Errorf("%s(...) = %q, want %q", tc.name, got.String(), tc.want)
		}
	}
	// NULL propagation for non-coalesce functions.
	fc := &algebra.FuncCall{Name: "upper", Args: []algebra.Expr{c(types.NullValue)}}
	if got := evalExpr(t, fc, nil); !got.Null {
		t.Errorf("upper(NULL) = %v", got)
	}
}

func TestSubLinkKinds(t *testing.T) {
	scalar := &algebra.SubLink{Kind: algebra.SubScalar, Typ: types.KindInt}
	if got := evalExpr(t, scalar, nil); got.I != 42 {
		t.Errorf("scalar sublink = %v", got)
	}
	exists := &algebra.SubLink{Kind: algebra.SubExists, Typ: types.KindBool}
	if got := evalExpr(t, exists, nil); !got.B {
		t.Errorf("exists sublink = %v", got)
	}
	anyL := &algebra.SubLink{Kind: algebra.SubAny, Op: "=",
		Test: c(types.NewInt(1)), Typ: types.KindBool}
	if got := evalExpr(t, anyL, nil); !got.B {
		t.Errorf("any sublink = %v", got)
	}
	allL := &algebra.SubLink{Kind: algebra.SubAll, Op: "=",
		Test: c(types.NewInt(1)), Typ: types.KindBool}
	if got := evalExpr(t, allL, nil); got.B {
		t.Errorf("all sublink = %v", got)
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_x", false},
		{"hello", "", false},
		{"", "", true},
		{"", "%", true},
		{"abc", "%%", true},
		{"abc", "a%b%c", true},
		{"abc", "a%c%b", false},
		{"special requests here", "%special%requests%", true},
		{"specialrequests", "%special%requests%", true},
		{"requests special", "%special%requests%", false},
		{"PROMO BRUSHED TIN", "PROMO%", true},
		{"x", "_", true},
		{"xy", "_", false},
	}
	for _, tc := range cases {
		if got := MatchLike(tc.s, tc.p); got != tc.want {
			t.Errorf("MatchLike(%q, %q) = %v, want %v", tc.s, tc.p, got, tc.want)
		}
	}
}

// TestMatchLikeProperties property-tests the LIKE matcher against a
// simple specification.
func TestMatchLikeProperties(t *testing.T) {
	// s LIKE s is always true for %-free, _-free strings.
	ident := func(s string) bool {
		clean := strings.NewReplacer("%", "", "_", "").Replace(s)
		return MatchLike(clean, clean)
	}
	if err := quick.Check(ident, nil); err != nil {
		t.Error("identity:", err)
	}
	// "%"+s+"%" matches any superstring.
	contains := func(pre, s, post string) bool {
		clean := strings.NewReplacer("%", "", "_", "").Replace(s)
		return MatchLike(pre+clean+post, "%"+clean+"%")
	}
	if err := quick.Check(contains, nil); err != nil {
		t.Error("contains:", err)
	}
	// A lone % matches everything.
	all := func(s string) bool { return MatchLike(s, "%") }
	if err := quick.Check(all, nil); err != nil {
		t.Error("%:", err)
	}
}

func TestCast(t *testing.T) {
	ce := &algebra.Cast{Expr: c(types.NewInt(42)), To: types.KindString}
	if got := evalExpr(t, ce, nil); got.S != "42" {
		t.Errorf("cast = %v", got)
	}
	ce = &algebra.Cast{Expr: c(types.NewString("1995-06-17")), To: types.KindDate}
	if got := evalExpr(t, ce, nil); got.String() != "1995-06-17" {
		t.Errorf("cast to date = %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	// Unmapped aggregate must fail at compile time.
	ar := &algebra.AggRef{Fn: algebra.AggSum, Arg: c(types.NewInt(1)), Typ: types.KindInt}
	if _, err := Compile(ar, testBinder{}); err == nil {
		t.Error("compiling a raw AggRef should fail")
	}
	if _, err := Compile(nil, testBinder{}); err == nil {
		t.Error("compiling nil should fail")
	}
}

func TestNotOperator(t *testing.T) {
	not := &algebra.UnOp{Op: "NOT", Expr: c(types.NewNull(types.KindBool)), Typ: types.KindBool}
	if got := evalExpr(t, not, nil); !got.Null {
		t.Errorf("NOT NULL = %v, want NULL", got)
	}
}
