// Package eval compiles analyzed expressions (algebra.Expr) into executable
// closures over rows. The planner binds Var nodes to row positions and
// sublinks to subplan runners; everything else evaluates directly with SQL
// three-valued logic and NULL propagation.
package eval

import (
	"fmt"
	"math"
	"strings"

	"perm/internal/algebra"
	"perm/internal/types"
)

// Ctx is the evaluation context: the current input row.
type Ctx struct {
	Row types.Row
}

// Func is a compiled expression.
type Func func(ctx *Ctx) (types.Value, error)

// SubLinkValue is the planner-provided runtime of one sublink: a
// materialized (cached) uncorrelated subquery.
type SubLinkValue interface {
	// Scalar returns the single value of a scalar subquery (NULL when the
	// subquery returns no rows; an error when it returns more than one).
	Scalar() (types.Value, error)
	// Exists reports whether the subquery returns at least one row.
	Exists() (bool, error)
	// CompareAny evaluates test op ANY(subquery) under SQL semantics.
	CompareAny(test types.Value, op string) (types.Tri, error)
	// CompareAll evaluates test op ALL(subquery) under SQL semantics.
	CompareAll(test types.Value, op string) (types.Tri, error)
}

// Binder resolves the parts of an expression that depend on plan context.
type Binder interface {
	BindVar(v *algebra.Var) (int, error)
	BindSubLink(s *algebra.SubLink) (SubLinkValue, error)
}

// Compile builds an executable closure for e.
func Compile(e algebra.Expr, b Binder) (Func, error) {
	switch n := e.(type) {
	case nil:
		return nil, fmt.Errorf("eval: nil expression")
	case *algebra.Var:
		pos, err := b.BindVar(n)
		if err != nil {
			return nil, err
		}
		return func(ctx *Ctx) (types.Value, error) {
			if pos >= len(ctx.Row) {
				return types.NullValue, fmt.Errorf("eval: row too short (%d <= %d)", len(ctx.Row), pos)
			}
			return ctx.Row[pos], nil
		}, nil
	case *algebra.Const:
		v := n.Val
		return func(*Ctx) (types.Value, error) { return v, nil }, nil
	case *algebra.BinOp:
		return compileBinOp(n, b)
	case *algebra.UnOp:
		return compileUnOp(n, b)
	case *algebra.IsNull:
		inner, err := Compile(n.Expr, b)
		if err != nil {
			return nil, err
		}
		not := n.Not
		return func(ctx *Ctx) (types.Value, error) {
			v, err := inner(ctx)
			if err != nil {
				return types.NullValue, err
			}
			return types.NewBool(v.Null != not), nil
		}, nil
	case *algebra.DistinctFrom:
		l, err := Compile(n.Left, b)
		if err != nil {
			return nil, err
		}
		r, err := Compile(n.Right, b)
		if err != nil {
			return nil, err
		}
		not := n.Not
		return func(ctx *Ctx) (types.Value, error) {
			lv, err := l(ctx)
			if err != nil {
				return types.NullValue, err
			}
			rv, err := r(ctx)
			if err != nil {
				return types.NullValue, err
			}
			return types.NewBool(types.Distinct(lv, rv) != not), nil
		}, nil
	case *algebra.FuncCall:
		return compileFunc(n, b)
	case *algebra.CaseExpr:
		return compileCase(n, b)
	case *algebra.Cast:
		inner, err := Compile(n.Expr, b)
		if err != nil {
			return nil, err
		}
		to := n.To
		return func(ctx *Ctx) (types.Value, error) {
			v, err := inner(ctx)
			if err != nil {
				return types.NullValue, err
			}
			return types.Coerce(v, to)
		}, nil
	case *algebra.AggRef:
		return nil, fmt.Errorf("eval: unmapped aggregate reference (planner bug)")
	case *algebra.SubLink:
		return compileSubLink(n, b)
	default:
		return nil, fmt.Errorf("eval: unsupported expression %T", e)
	}
}

// CompileAll compiles a slice of expressions.
func CompileAll(es []algebra.Expr, b Binder) ([]Func, error) {
	out := make([]Func, len(es))
	for i, e := range es {
		f, err := Compile(e, b)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

func compileBinOp(n *algebra.BinOp, b Binder) (Func, error) {
	l, err := Compile(n.Left, b)
	if err != nil {
		return nil, err
	}
	r, err := Compile(n.Right, b)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "AND":
		return func(ctx *Ctx) (types.Value, error) {
			lv, err := l(ctx)
			if err != nil {
				return types.NullValue, err
			}
			lt := types.TriOf(lv)
			if lt == types.TriFalse {
				return types.NewBool(false), nil
			}
			rv, err := r(ctx)
			if err != nil {
				return types.NullValue, err
			}
			return lt.And(types.TriOf(rv)).Value(), nil
		}, nil
	case "OR":
		return func(ctx *Ctx) (types.Value, error) {
			lv, err := l(ctx)
			if err != nil {
				return types.NullValue, err
			}
			lt := types.TriOf(lv)
			if lt == types.TriTrue {
				return types.NewBool(true), nil
			}
			rv, err := r(ctx)
			if err != nil {
				return types.NullValue, err
			}
			return lt.Or(types.TriOf(rv)).Value(), nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		op := n.Op
		return func(ctx *Ctx) (types.Value, error) {
			lv, err := l(ctx)
			if err != nil {
				return types.NullValue, err
			}
			rv, err := r(ctx)
			if err != nil {
				return types.NullValue, err
			}
			if lv.Null || rv.Null {
				return types.NewNull(types.KindBool), nil
			}
			if !types.Comparable(lv.K, rv.K) {
				return types.NullValue, fmt.Errorf("cannot compare %s with %s", lv.K, rv.K)
			}
			c := types.Compare(lv, rv)
			return types.NewBool(cmpSatisfies(c, op)), nil
		}, nil
	case "LIKE":
		return func(ctx *Ctx) (types.Value, error) {
			lv, err := l(ctx)
			if err != nil {
				return types.NullValue, err
			}
			rv, err := r(ctx)
			if err != nil {
				return types.NullValue, err
			}
			if lv.Null || rv.Null {
				return types.NewNull(types.KindBool), nil
			}
			return types.NewBool(MatchLike(lv.S, rv.S)), nil
		}, nil
	case "||":
		return func(ctx *Ctx) (types.Value, error) {
			lv, err := l(ctx)
			if err != nil {
				return types.NullValue, err
			}
			rv, err := r(ctx)
			if err != nil {
				return types.NullValue, err
			}
			if lv.Null || rv.Null {
				return types.NewNull(types.KindString), nil
			}
			return types.NewString(lv.String() + rv.String()), nil
		}, nil
	case "+", "-", "*", "/", "%":
		op := n.Op
		return func(ctx *Ctx) (types.Value, error) {
			lv, err := l(ctx)
			if err != nil {
				return types.NullValue, err
			}
			rv, err := r(ctx)
			if err != nil {
				return types.NullValue, err
			}
			switch op {
			case "+":
				return types.Add(lv, rv)
			case "-":
				return types.Sub(lv, rv)
			case "*":
				return types.Mul(lv, rv)
			case "/":
				return types.Div(lv, rv)
			default:
				return types.Mod(lv, rv)
			}
		}, nil
	default:
		return nil, fmt.Errorf("eval: unknown operator %q", n.Op)
	}
}

func cmpSatisfies(c int, op string) bool {
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	default:
		return false
	}
}

func compileUnOp(n *algebra.UnOp, b Binder) (Func, error) {
	inner, err := Compile(n.Expr, b)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "NOT":
		return func(ctx *Ctx) (types.Value, error) {
			v, err := inner(ctx)
			if err != nil {
				return types.NullValue, err
			}
			return types.TriOf(v).Not().Value(), nil
		}, nil
	case "-":
		return func(ctx *Ctx) (types.Value, error) {
			v, err := inner(ctx)
			if err != nil {
				return types.NullValue, err
			}
			return types.Neg(v)
		}, nil
	default:
		return nil, fmt.Errorf("eval: unknown unary operator %q", n.Op)
	}
}

func compileCase(n *algebra.CaseExpr, b Binder) (Func, error) {
	type arm struct{ cond, res Func }
	arms := make([]arm, len(n.Whens))
	for i, w := range n.Whens {
		c, err := Compile(w.Cond, b)
		if err != nil {
			return nil, err
		}
		res, err := Compile(w.Result, b)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{cond: c, res: res}
	}
	var elseF Func
	if n.Else != nil {
		f, err := Compile(n.Else, b)
		if err != nil {
			return nil, err
		}
		elseF = f
	}
	typ := n.Typ
	return func(ctx *Ctx) (types.Value, error) {
		for _, a := range arms {
			cv, err := a.cond(ctx)
			if err != nil {
				return types.NullValue, err
			}
			if cv.IsTrue() {
				return a.res(ctx)
			}
		}
		if elseF != nil {
			return elseF(ctx)
		}
		return types.NewNull(typ), nil
	}, nil
}

func compileSubLink(n *algebra.SubLink, b Binder) (Func, error) {
	slv, err := b.BindSubLink(n)
	if err != nil {
		return nil, err
	}
	switch n.Kind {
	case algebra.SubScalar:
		return func(*Ctx) (types.Value, error) { return slv.Scalar() }, nil
	case algebra.SubExists:
		return func(*Ctx) (types.Value, error) {
			ok, err := slv.Exists()
			if err != nil {
				return types.NullValue, err
			}
			return types.NewBool(ok), nil
		}, nil
	case algebra.SubAny, algebra.SubAll:
		test, err := Compile(n.Test, b)
		if err != nil {
			return nil, err
		}
		all := n.Kind == algebra.SubAll
		op := n.Op
		return func(ctx *Ctx) (types.Value, error) {
			tv, err := test(ctx)
			if err != nil {
				return types.NullValue, err
			}
			var tri types.Tri
			if all {
				tri, err = slv.CompareAll(tv, op)
			} else {
				tri, err = slv.CompareAny(tv, op)
			}
			if err != nil {
				return types.NullValue, err
			}
			return tri.Value(), nil
		}, nil
	default:
		return nil, fmt.Errorf("eval: unknown sublink kind %d", n.Kind)
	}
}

// ---------------------------------------------------------------------------
// Scalar functions

func compileFunc(n *algebra.FuncCall, b Binder) (Func, error) {
	args, err := CompileAll(n.Args, b)
	if err != nil {
		return nil, err
	}
	name := n.Name
	return func(ctx *Ctx) (types.Value, error) {
		vals := make([]types.Value, len(args))
		for i, a := range args {
			v, err := a(ctx)
			if err != nil {
				return types.NullValue, err
			}
			vals[i] = v
		}
		return callScalar(name, vals)
	}, nil
}

func callScalar(name string, vals []types.Value) (types.Value, error) {
	// COALESCE is the only function that tolerates NULL arguments.
	if name == "coalesce" {
		for _, v := range vals {
			if !v.Null {
				return v, nil
			}
		}
		return types.NullValue, nil
	}
	for _, v := range vals {
		if v.Null {
			return types.NullValue, nil
		}
	}
	switch name {
	case "substring":
		s := vals[0].S
		start := int(vals[1].I)
		if start < 1 {
			start = 1
		}
		if start > len(s) {
			return types.NewString(""), nil
		}
		end := len(s)
		if len(vals) == 3 {
			if e := start - 1 + int(vals[2].I); e < end {
				end = e
			}
		}
		if end < start-1 {
			end = start - 1
		}
		return types.NewString(s[start-1 : end]), nil
	case "upper":
		return types.NewString(strings.ToUpper(vals[0].S)), nil
	case "lower":
		return types.NewString(strings.ToLower(vals[0].S)), nil
	case "length":
		return types.NewInt(int64(len(vals[0].S))), nil
	case "abs":
		switch vals[0].K {
		case types.KindInt:
			if vals[0].I < 0 {
				return types.NewInt(-vals[0].I), nil
			}
			return vals[0], nil
		default:
			return types.NewFloat(math.Abs(vals[0].AsFloat())), nil
		}
	case "round":
		f := vals[0].AsFloat()
		if len(vals) == 2 {
			scale := math.Pow(10, float64(vals[1].I))
			return types.NewFloat(math.Round(f*scale) / scale), nil
		}
		return types.NewFloat(math.Round(f)), nil
	case "floor":
		return types.NewFloat(math.Floor(vals[0].AsFloat())), nil
	case "ceil":
		return types.NewFloat(math.Ceil(vals[0].AsFloat())), nil
	case "sqrt":
		return types.NewFloat(math.Sqrt(vals[0].AsFloat())), nil
	case "power":
		return types.NewFloat(math.Pow(vals[0].AsFloat(), vals[1].AsFloat())), nil
	case "concat":
		var sb strings.Builder
		for _, v := range vals {
			sb.WriteString(v.String())
		}
		return types.NewString(sb.String()), nil
	case "extract_year":
		y, _, _ := vals[0].DateYMD()
		return types.NewInt(int64(y)), nil
	case "extract_month":
		_, m, _ := vals[0].DateYMD()
		return types.NewInt(int64(m)), nil
	case "extract_day":
		_, _, d := vals[0].DateYMD()
		return types.NewInt(int64(d)), nil
	default:
		return types.NullValue, fmt.Errorf("eval: unknown function %q", name)
	}
}

// MatchLike implements SQL LIKE patterns: % matches any run (including
// empty), _ matches exactly one byte. Matching is byte-wise.
func MatchLike(s, pattern string) bool {
	// Iterative two-pointer algorithm with backtracking on %.
	si, pi := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
