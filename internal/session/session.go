// Package session implements per-client session state for the Perm query
// service: session-local options, named prepared statements, and portals
// (open cursors). A session wraps a shared *perm.Database handle — all
// sessions see the same catalog, data and compiled-query cache — while
// keeping everything client-visible (options, prepared names, cursors)
// private to the client.
//
// Besides the programmatic API, Run gives the service front-ends (permd,
// permcli) a PostgreSQL-flavoured statement dialect on top of plain SQL:
//
//	PREPARE <name> AS <select>       compile once, execute by name
//	EXECUTE <name>                   run a prepared statement
//	DEALLOCATE [PREPARE] <name>      drop a prepared statement
//	SET <option> = on|off            session options (see SetOption)
//	SET memory_limit = <size>        per-session memory budget (spill past it)
//	SET parallelism = <n>            intra-query worker count (0 = all cores)
//	SET trace_sample = <n>           trace every Nth query (off = none)
//	SET statement_timeout = <d>      per-statement deadline (ms or duration, off = none)
//	CANCEL <query_id>                cancel an in-flight query (any session's)
//
// A session is safe for concurrent use, but is designed for one client:
// the server gives every connection its own session.
package session

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"perm"
	"perm/internal/mem"
	"perm/internal/obs"
)

// Session is one client's state against a shared database.
type Session struct {
	mu       sync.Mutex
	db       *perm.Database
	closed   bool
	prepared map[string]*perm.Prepared
	portals  map[string]*perm.Cursor
	// baseMemLimit is the server-configured memory limit the session
	// started with; SET memory_limit = 0 restores it. baseParallelism,
	// baseTraceSample and baseStatementTimeout are the same for the
	// intra-query worker count, the trace sampling rate and the
	// statement timeout.
	baseMemLimit         int64
	baseParallelism      int
	baseTraceSample      int
	baseStatementTimeout time.Duration
}

// New returns a session over the database (inheriting its options).
// The session gets its own database handle — and therefore its own
// memory budget under the shared engine governor — so concurrent
// sessions spill independently instead of draining one shared budget.
func New(db *perm.Database) *Session {
	obs.SessionsActive.Inc()
	return &Session{
		db:                   db.WithOptions(db.Opts()),
		prepared:             make(map[string]*perm.Prepared),
		portals:              make(map[string]*perm.Cursor),
		baseMemLimit:         db.Opts().MemoryLimit,
		baseParallelism:      db.Opts().Parallelism,
		baseTraceSample:      db.Opts().TraceSample,
		baseStatementTimeout: db.Opts().StatementTimeout,
	}
}

// DB returns the session's database handle (carrying the session's
// current options).
func (s *Session) DB() *perm.Database {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db
}

// Query runs a SELECT/EXPLAIN under the session's options.
func (s *Session) Query(text string) (*perm.Result, error) {
	return s.DB().Query(text)
}

// Exec runs DDL/DML under the session's options.
func (s *Session) Exec(text string) (int, error) {
	return s.DB().Exec(text)
}

// Explain returns the physical plan of a query as text.
func (s *Session) Explain(text string) (string, error) {
	return s.DB().ExplainSQL(text)
}

// ExplainAnalyze executes a query under instrumentation and returns the
// plan annotated with per-operator runtime statistics.
func (s *Session) ExplainAnalyze(text string) (string, error) {
	return s.DB().ExplainAnalyzeSQL(text)
}

// Prepare compiles a SELECT under the given name. Re-preparing an
// existing name replaces it (the old statement is deallocated), matching
// the server protocol's idempotent PREPARE.
func (s *Session) Prepare(name, text string) error {
	if name == "" {
		return fmt.Errorf("prepared statement needs a name")
	}
	p, err := s.DB().Prepare(text)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if _, replaced := s.prepared[name]; !replaced {
		obs.PreparedStatements.Inc()
	}
	s.prepared[name] = p
	s.mu.Unlock()
	return nil
}

// Execute runs a prepared statement by name.
func (s *Session) Execute(name string) (*perm.Result, error) {
	s.mu.Lock()
	p, ok := s.prepared[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("prepared statement %q does not exist", name)
	}
	return p.Run()
}

// Deallocate drops a prepared statement.
func (s *Session) Deallocate(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.prepared[name]; !ok {
		return fmt.Errorf("prepared statement %q does not exist", name)
	}
	delete(s.prepared, name)
	obs.PreparedStatements.Dec()
	return nil
}

// Prepared returns the sorted names of the session's prepared statements.
func (s *Session) Prepared() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.prepared))
	for n := range s.prepared {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OpenPortal opens a named cursor over a prepared statement. The portal
// reads the data snapshot taken now; concurrent DML does not move it.
func (s *Session) OpenPortal(portal, stmt string) error {
	if portal == "" {
		return fmt.Errorf("portal needs a name")
	}
	s.mu.Lock()
	p, ok := s.prepared[stmt]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("prepared statement %q does not exist", stmt)
	}
	if _, ok := s.portals[portal]; ok {
		s.mu.Unlock()
		return fmt.Errorf("portal %q is already open", portal)
	}
	s.mu.Unlock()
	cur, err := p.Start()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.portals[portal]; ok {
		cur.Close() //nolint:errcheck
		return fmt.Errorf("portal %q is already open", portal)
	}
	s.portals[portal] = cur
	return nil
}

// FetchPortal pulls up to max rows (max <= 0: all remaining) from an
// open portal. Exhaustion returns an empty batch.
func (s *Session) FetchPortal(portal string, max int) ([][]perm.Value, error) {
	s.mu.Lock()
	cur, ok := s.portals[portal]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("portal %q is not open", portal)
	}
	return cur.Fetch(max)
}

// PortalColumns returns the output column names of an open portal.
func (s *Session) PortalColumns(portal string) ([]string, error) {
	s.mu.Lock()
	cur, ok := s.portals[portal]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("portal %q is not open", portal)
	}
	return cur.Columns(), nil
}

// ClosePortal closes and forgets a portal.
func (s *Session) ClosePortal(portal string) error {
	s.mu.Lock()
	cur, ok := s.portals[portal]
	delete(s.portals, portal)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("portal %q is not open", portal)
	}
	return cur.Close()
}

// Close releases every portal and prepared statement. Closing an
// already-closed session is a no-op.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cur := range s.portals {
		cur.Close() //nolint:errcheck
	}
	s.portals = make(map[string]*perm.Cursor)
	if !s.closed {
		s.closed = true
		obs.SessionsActive.Dec()
		obs.PreparedStatements.Add(-int64(len(s.prepared)))
	}
	s.prepared = make(map[string]*perm.Prepared)
}

// SetOption changes one session option. Boolean options (value on/off,
// true/false, 1/0): flatten_setops, disable_optimizer,
// disable_vectorized, disable_query_cache. memory_limit takes a byte
// size ("64MiB", "4000000") bounding this session's materializing
// operators — exhausted budgets spill to disk; "off"/"unlimited" lifts
// the session limit and "0" restores the limit the server configured
// this session with. parallelism takes the intra-query worker count (0
// defers to the server's configuration, 1 or "off" forces serial
// plans). statement_timeout takes a per-statement deadline — a plain
// integer is milliseconds (PostgreSQL convention), otherwise a Go
// duration like "1.5s"; "off" disables the deadline and "0" restores
// the timeout the server configured this session with. Prepared
// statements are re-prepared under the new options so EXECUTE always
// honours the session's current settings.
func (s *Session) SetOption(name, value string) error {
	// The whole read-modify-commit runs under the session lock (Prepare
	// only touches shared engine state, never the session, so holding mu
	// across it is safe): concurrent SetOption calls serialize instead of
	// losing updates, and no Prepare can interleave between the option
	// snapshot and the commit.
	s.mu.Lock()
	defer s.mu.Unlock()
	opts := s.db.Opts()
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "parallelism":
		v := strings.ToLower(strings.TrimSpace(value))
		if v == "off" || v == "serial" {
			opts.Parallelism = -1
		} else {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return fmt.Errorf("parallelism must be a non-negative worker count or off, got %q", value)
			}
			if n == 0 {
				// 0 restores the worker count the server configured this
				// session with (which may itself defer to PERM_PARALLELISM
				// or GOMAXPROCS).
				n = s.baseParallelism
			}
			opts.Parallelism = n
		}
		return s.commitOptions(opts)
	case "trace_sample":
		v := strings.ToLower(strings.TrimSpace(value))
		if v == "off" {
			opts.TraceSample = -1
		} else {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return fmt.Errorf("trace_sample must be a non-negative sampling rate or off, got %q", value)
			}
			if n == 0 {
				// 0 restores the rate the server configured this session
				// with (which may itself defer to PERM_TRACE_SAMPLE).
				n = s.baseTraceSample
			}
			opts.TraceSample = n
		}
		return s.commitOptions(opts)
	case "statement_timeout":
		v := strings.ToLower(strings.TrimSpace(value))
		if v == "off" {
			opts.StatementTimeout = -1
			return s.commitOptions(opts)
		}
		var d time.Duration
		if ms, err := strconv.Atoi(v); err == nil {
			// A bare integer is milliseconds, like PostgreSQL's
			// statement_timeout.
			if ms < 0 {
				return fmt.Errorf("statement_timeout must be a non-negative duration or off, got %q", value)
			}
			d = time.Duration(ms) * time.Millisecond
		} else {
			pd, err := time.ParseDuration(v)
			if err != nil || pd < 0 {
				return fmt.Errorf("statement_timeout must be milliseconds, a duration like 500ms, or off, got %q", value)
			}
			d = pd
		}
		if d == 0 {
			// 0 restores the timeout the server configured this session
			// with (which may itself defer to PERM_STATEMENT_TIMEOUT).
			d = s.baseStatementTimeout
		}
		opts.StatementTimeout = d
		return s.commitOptions(opts)
	}
	if strings.EqualFold(strings.TrimSpace(name), "memory_limit") {
		n, err := mem.ParseSize(value)
		if err != nil {
			return err
		}
		if n == 0 {
			// 0 restores the limit the server configured this session
			// with (which may itself defer to PERM_MEMORY_LIMIT).
			n = s.baseMemLimit
		}
		opts.MemoryLimit = n
	} else {
		on, err := parseBool(value)
		if err != nil {
			return err
		}
		switch strings.ToLower(name) {
		case "flatten_setops":
			opts.FlattenSetOps = on
		case "disable_optimizer":
			opts.DisableOptimizer = on
		case "disable_vectorized":
			opts.DisableVectorized = on
		case "disable_query_cache":
			opts.DisableQueryCache = on
		default:
			return fmt.Errorf("unknown option %q (have flatten_setops, disable_optimizer, disable_vectorized, disable_query_cache, memory_limit, parallelism, trace_sample)", name)
		}
	}
	return s.commitOptions(opts)
}

// commitOptions switches the session to a new option set. Everything
// prepared is re-prepared under the new options before the switch
// commits: a failure leaves both the options and the prepared statements
// exactly as they were. Caller holds s.mu.
func (s *Session) commitOptions(opts perm.Options) error {
	// SameSession: a SET reconfigures this session, it does not create a
	// new identity in perm_stat_activity.
	db := s.db.WithOptionsSameSession(opts)
	reprepared := make(map[string]*perm.Prepared, len(s.prepared))
	for n, p := range s.prepared {
		np, err := db.Prepare(p.Text())
		if err != nil {
			return fmt.Errorf("re-preparing %q under new options: %v", n, err)
		}
		reprepared[n] = np
	}
	s.db = db
	s.prepared = reprepared
	return nil
}

func parseBool(v string) (bool, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "on", "true", "1", "yes":
		return true, nil
	case "off", "false", "0", "no":
		return false, nil
	}
	return false, fmt.Errorf("boolean option value must be on/off, got %q", v)
}

// Outcome is the result of Run: exactly one of Result (queries) or the
// Tag/Affected pair (everything else) is meaningful.
type Outcome struct {
	Result   *perm.Result // non-nil for statements that return rows
	Affected int          // rows affected (DML)
	Tag      string       // completion tag, e.g. "PREPARE", "SET", "OK"
}

// Run executes one statement of the service dialect: PREPARE/EXECUTE/
// DEALLOCATE/SET are handled by the session, SELECT/EXPLAIN run as
// queries, and everything else goes through Exec. A trailing semicolon
// is tolerated.
func (s *Session) Run(text string) (*Outcome, error) {
	stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(text), ";"))
	if stmt == "" {
		return &Outcome{Tag: "OK"}, nil
	}
	word, rest := splitWord(stmt)
	switch strings.ToUpper(word) {
	case "PREPARE":
		name, rest := splitWord(rest)
		as, body := splitWord(rest)
		if name == "" || !strings.EqualFold(as, "AS") || strings.TrimSpace(body) == "" {
			return nil, fmt.Errorf("usage: PREPARE <name> AS <select>")
		}
		if err := s.Prepare(name, strings.TrimSpace(body)); err != nil {
			return nil, err
		}
		return &Outcome{Tag: "PREPARE"}, nil
	case "EXECUTE":
		name, extra := splitWord(rest)
		if name == "" || strings.TrimSpace(extra) != "" {
			return nil, fmt.Errorf("usage: EXECUTE <name>")
		}
		res, err := s.Execute(name)
		if err != nil {
			return nil, err
		}
		return &Outcome{Result: res}, nil
	case "DEALLOCATE":
		name, extra := splitWord(rest)
		if strings.EqualFold(name, "PREPARE") {
			name, extra = splitWord(extra)
		}
		if name == "" || strings.TrimSpace(extra) != "" {
			return nil, fmt.Errorf("usage: DEALLOCATE [PREPARE] <name>")
		}
		if err := s.Deallocate(name); err != nil {
			return nil, err
		}
		return &Outcome{Tag: "DEALLOCATE"}, nil
	case "SET":
		name, value, ok := splitSet(rest)
		if !ok {
			return nil, fmt.Errorf("usage: SET <option> = on|off")
		}
		if err := s.SetOption(name, value); err != nil {
			return nil, err
		}
		return &Outcome{Tag: "SET"}, nil
	case "SELECT", "EXPLAIN":
		res, err := s.Query(stmt)
		if err != nil {
			return nil, err
		}
		return &Outcome{Result: res}, nil
	case "CANCEL":
		if _, err := s.Exec(stmt); err != nil {
			return nil, err
		}
		return &Outcome{Tag: "CANCEL"}, nil
	default:
		if strings.HasPrefix(stmt, "(") {
			res, err := s.Query(stmt)
			if err != nil {
				return nil, err
			}
			return &Outcome{Result: res}, nil
		}
		n, err := s.Exec(stmt)
		if err != nil {
			return nil, err
		}
		return &Outcome{Affected: n, Tag: "OK"}, nil
	}
}

// splitWord splits off the first whitespace-delimited word.
func splitWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexFunc(s, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '\r' })
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}

// splitSet parses "name = value" or "name TO value".
func splitSet(s string) (name, value string, ok bool) {
	if i := strings.Index(s, "="); i >= 0 {
		return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
	}
	name, rest := splitWord(s)
	to, value := splitWord(rest)
	if strings.EqualFold(to, "TO") && name != "" && value != "" {
		return name, value, true
	}
	return "", "", false
}
