package session

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"perm"
)

func testDB(t *testing.T) *perm.Database {
	t.Helper()
	db := perm.NewDatabase()
	db.MustExec(`CREATE TABLE shop (name text, numempl int)`)
	db.MustExec(`INSERT INTO shop VALUES ('Merdies', 3)`)
	db.MustExec(`INSERT INTO shop VALUES ('Edeka', 7)`)
	db.MustExec(`INSERT INTO shop VALUES ('Spar', 1)`)
	return db
}

func TestPrepareExecuteDeallocate(t *testing.T) {
	s := New(testDB(t))
	if err := s.Prepare("big", `SELECT name FROM shop WHERE numempl > 2 ORDER BY name`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute("big")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].String() != "Edeka" {
		t.Fatalf("unexpected result:\n%s", res)
	}
	// Prepared statements survive DML and see fresh data.
	if _, err := s.Exec(`INSERT INTO shop VALUES ('Aldi', 9)`); err != nil {
		t.Fatal(err)
	}
	res, err = s.Execute("big")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].String() != "Aldi" {
		t.Fatalf("prepared statement did not see committed insert:\n%s", res)
	}
	if got := s.Prepared(); len(got) != 1 || got[0] != "big" {
		t.Fatalf("Prepared() = %v", got)
	}
	if err := s.Deallocate("big"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("big"); err == nil {
		t.Fatal("EXECUTE after DEALLOCATE must fail")
	}
}

func TestPrepareSurvivesDDL(t *testing.T) {
	s := New(testDB(t))
	if err := s.Prepare("q", `SELECT count(*) FROM shop`); err != nil {
		t.Fatal(err)
	}
	// DDL on an unrelated table moves the catalog version; the statement
	// must recompile transparently.
	if _, err := s.Exec(`CREATE TABLE other (x int)`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute("q")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("count = %s", res.Rows[0][0])
	}
}

func TestPrepareRejectsNonSelect(t *testing.T) {
	s := New(testDB(t))
	if err := s.Prepare("bad", `INSERT INTO shop VALUES ('X', 1)`); err == nil {
		t.Fatal("PREPARE of DML must fail")
	}
	if err := s.Prepare("bad", `SELECT name FROM shop INTO copied`); err == nil {
		t.Fatal("PREPARE of SELECT INTO must fail")
	}
}

func TestPortals(t *testing.T) {
	s := New(testDB(t))
	if err := s.Prepare("all", `SELECT name FROM shop ORDER BY name`); err != nil {
		t.Fatal(err)
	}
	if err := s.OpenPortal("c1", "all"); err != nil {
		t.Fatal(err)
	}
	cols, err := s.PortalColumns("c1")
	if err != nil || len(cols) != 1 || cols[0] != "name" {
		t.Fatalf("PortalColumns = %v, %v", cols, err)
	}
	batch, err := s.FetchPortal("c1", 2)
	if err != nil || len(batch) != 2 {
		t.Fatalf("first fetch = %d rows, %v", len(batch), err)
	}
	if batch[0][0].String() != "Edeka" || batch[1][0].String() != "Merdies" {
		t.Fatalf("unexpected batch: %v %v", batch[0][0], batch[1][0])
	}
	// The portal's snapshot was taken at open: DML must not affect it.
	if _, err := s.Exec(`INSERT INTO shop VALUES ('Aldi', 9)`); err != nil {
		t.Fatal(err)
	}
	batch, err = s.FetchPortal("c1", 10)
	if err != nil || len(batch) != 1 || batch[0][0].String() != "Spar" {
		t.Fatalf("second fetch = %v, %v", batch, err)
	}
	batch, err = s.FetchPortal("c1", 10)
	if err != nil || len(batch) != 0 {
		t.Fatalf("exhausted portal returned %d rows, %v", len(batch), err)
	}
	if err := s.ClosePortal("c1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FetchPortal("c1", 1); err == nil {
		t.Fatal("fetch from closed portal must fail")
	}
}

func TestSetOption(t *testing.T) {
	s := New(testDB(t))
	if err := s.Prepare("q", `SELECT PROVENANCE name FROM shop`); err != nil {
		t.Fatal(err)
	}
	if err := s.SetOption("disable_vectorized", "on"); err != nil {
		t.Fatal(err)
	}
	if !s.DB().Opts().DisableVectorized {
		t.Fatal("option did not stick")
	}
	// Prepared statements keep working (re-prepared under new options).
	if _, err := s.Execute("q"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetOption("nonsense", "on"); err == nil {
		t.Fatal("unknown option must fail")
	}
	if err := s.SetOption("disable_optimizer", "maybe"); err == nil {
		t.Fatal("bad boolean must fail")
	}
}

func TestSetParallelism(t *testing.T) {
	base := testDB(t)
	s := New(base.WithOptions(func() perm.Options { o := base.Opts(); o.Parallelism = 3; return o }()))
	if err := s.Prepare("q", `SELECT name FROM shop ORDER BY name`); err != nil {
		t.Fatal(err)
	}
	if err := s.SetOption("parallelism", "2"); err != nil {
		t.Fatal(err)
	}
	if got := s.DB().Opts().Parallelism; got != 2 {
		t.Fatalf("Parallelism = %d, want 2", got)
	}
	// Prepared statements keep working under the new worker count.
	if _, err := s.Execute("q"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetOption("parallelism", "off"); err != nil {
		t.Fatal(err)
	}
	if got := s.DB().Opts().Parallelism; got != -1 {
		t.Fatalf("Parallelism after off = %d, want -1", got)
	}
	// 0 restores the server-configured base, not "defer to environment".
	if err := s.SetOption("parallelism", "0"); err != nil {
		t.Fatal(err)
	}
	if got := s.DB().Opts().Parallelism; got != 3 {
		t.Fatalf("Parallelism after reset = %d, want base 3", got)
	}
	if err := s.SetOption("parallelism", "lots"); err == nil {
		t.Fatal("non-integer parallelism must fail")
	}
	if err := s.SetOption("parallelism", "-2"); err == nil {
		t.Fatal("negative parallelism must fail")
	}
}

// TestSetOptionConcurrentPrepare is the -race regression gate for
// SetOption's re-prepare pass: it must never iterate the live prepared
// map while a concurrent Prepare/Deallocate mutates it.
func TestSetOptionConcurrentPrepare(t *testing.T) {
	s := New(testDB(t))
	if err := s.Prepare("base", `SELECT PROVENANCE name FROM shop`); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := s.SetOption("disable_vectorized", []string{"on", "off"}[i%2]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			name := fmt.Sprintf("p%d", i)
			if err := s.Prepare(name, `SELECT name FROM shop`); err != nil {
				t.Error(err)
				return
			}
			if err := s.Deallocate(name); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	// The long-lived statement survived the churn and honours the final
	// options.
	if _, err := s.Execute("base"); err != nil {
		t.Fatal(err)
	}
}

func TestSessionIsolation(t *testing.T) {
	// Options set in one session must not leak into another sharing the
	// same database.
	db := testDB(t)
	s1, s2 := New(db), New(db)
	if err := s1.SetOption("disable_optimizer", "on"); err != nil {
		t.Fatal(err)
	}
	if s2.DB().Opts().DisableOptimizer {
		t.Fatal("session option leaked across sessions")
	}
	if err := s1.Prepare("mine", `SELECT 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Execute("mine"); err == nil {
		t.Fatal("prepared statements must be session-private")
	}
}

func TestRunDialect(t *testing.T) {
	s := New(testDB(t))
	out, err := s.Run(`PREPARE p AS SELECT PROVENANCE name FROM shop WHERE numempl = 3;`)
	if err != nil || out.Tag != "PREPARE" {
		t.Fatalf("PREPARE: %v %v", out, err)
	}
	out, err = s.Run(`EXECUTE p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Result.Rows) != 1 || out.Result.NumProvColumns() != 2 {
		t.Fatalf("EXECUTE result wrong:\n%s", out.Result)
	}
	out, err = s.Run(`SET disable_vectorized = on`)
	if err != nil || out.Tag != "SET" {
		t.Fatalf("SET: %v %v", out, err)
	}
	out, err = s.Run(`EXECUTE p`)
	if err != nil || len(out.Result.Rows) != 1 {
		t.Fatalf("EXECUTE after SET: %v %v", out, err)
	}
	out, err = s.Run(`DEALLOCATE p`)
	if err != nil || out.Tag != "DEALLOCATE" {
		t.Fatalf("DEALLOCATE: %v %v", out, err)
	}
	out, err = s.Run(`INSERT INTO shop VALUES ('Lidl', 4)`)
	if err != nil || out.Affected != 1 {
		t.Fatalf("INSERT: %v %v", out, err)
	}
	out, err = s.Run(`SELECT count(*) FROM shop`)
	if err != nil || out.Result.Rows[0][0].Int() != 4 {
		t.Fatalf("SELECT: %v %v", out, err)
	}
	if _, err := s.Run(`EXECUTE nope`); err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("EXECUTE unknown: %v", err)
	}
	if _, err := s.Run(`PREPARE broken AS`); err == nil {
		t.Fatal("malformed PREPARE must fail")
	}
}
