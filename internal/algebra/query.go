// Package algebra defines the analyzed query-tree representation of the
// Perm engine. It mirrors the PostgreSQL query-node model the paper's
// rewriter operates on (§IV-B): each Query node carries a target list, a
// range table, a join tree and — for set-operation queries — a set
// operation tree. The provenance rewriter (package provrewrite) transforms
// these trees; the planner lowers them to physical plans.
package algebra

import (
	"fmt"
	"strings"

	"perm/internal/types"
)

// Column is a named, typed output column of a relation or query.
type Column struct {
	Name string
	Type types.Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// Kinds returns the column kinds.
func (s Schema) Kinds() []types.Kind {
	ks := make([]types.Kind, len(s))
	for i := range s {
		ks[i] = s[i].Type
	}
	return ks
}

// Names returns the column names.
func (s Schema) Names() []string {
	ns := make([]string, len(s))
	for i := range s {
		ns[i] = s[i].Name
	}
	return ns
}

// RTEKind distinguishes range-table entry kinds.
type RTEKind uint8

// Range-table entry kinds.
const (
	RTERelation RTEKind = iota // base table
	RTESubquery                // derived table (subquery or unfolded view)
	RTEValues                  // literal rows (used internally)
)

// RTE is a range-table entry: one FROM item of a query node.
type RTE struct {
	Kind  RTEKind
	Alias string // always set after analysis; unique within the query

	// RTERelation:
	RelName string
	// RTESubquery:
	Subquery *Query
	// RTEValues:
	Rows [][]Expr

	// Cols is the visible schema of the entry.
	Cols Schema

	// ProvCols marks which columns (by position) carry provenance, with
	// their exported provenance attribute names. Set on entries annotated
	// PROVENANCE (attrs) in SQL (§IV-A3), and on subquery entries whose
	// subquery was already rewritten. Nil means "not rewritten yet".
	ProvCols []ProvCol
	// HasExternalProv records that ProvCols came from an explicit SQL
	// annotation rather than from rewriting.
	HasExternalProv bool
	// BaseRelation marks the entry to be rewritten with rule R1 regardless
	// of its kind (BASERELATION keyword, §IV-A4).
	BaseRelation bool
}

// ProvCol identifies one provenance column of an RTE: the position in the
// entry's visible schema and the provenance attribute name it exports.
type ProvCol struct {
	Col  int
	Name string
}

// JoinKind enumerates join types in the join tree.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
)

func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "INNER JOIN"
	case JoinLeft:
		return "LEFT OUTER JOIN"
	case JoinRight:
		return "RIGHT OUTER JOIN"
	case JoinFull:
		return "FULL OUTER JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// FromItem is a node of the join tree: either a reference to a range-table
// entry or a join of two subtrees.
type FromItem interface{ fromItem() }

// FromRef references range-table entry RT.
type FromRef struct {
	RT int
}

func (*FromRef) fromItem() {}

// FromJoin joins two from-items. Cond is nil for CROSS joins.
type FromJoin struct {
	Kind  JoinKind
	Left  FromItem
	Right FromItem
	Cond  Expr
}

func (*FromJoin) fromItem() {}

// TargetEntry is one output column of a query node: an expression plus the
// exported column name.
type TargetEntry struct {
	Expr Expr
	Name string
}

// SetOpKind enumerates set operations.
type SetOpKind uint8

// Set operation kinds.
const (
	SetUnion SetOpKind = iota
	SetIntersect
	SetExcept
)

func (k SetOpKind) String() string {
	switch k {
	case SetUnion:
		return "UNION"
	case SetIntersect:
		return "INTERSECT"
	case SetExcept:
		return "EXCEPT"
	default:
		return "?"
	}
}

// SetOpNode is a node of the set-operation tree. Leaves are *SetOpLeaf
// referencing range-table entries; inner nodes are *SetOpNode.
type SetOpNode struct {
	Op    SetOpKind
	All   bool // bag semantics (UNION ALL etc.)
	Left  SetOpItem
	Right SetOpItem
}

// SetOpItem is either *SetOpNode or *SetOpLeaf.
type SetOpItem interface{ setOpItem() }

func (*SetOpNode) setOpItem() {}

// SetOpLeaf references the range-table entry holding one input of the set
// operation tree.
type SetOpLeaf struct {
	RT int
}

func (*SetOpLeaf) setOpItem() {}

// SortItem is one ORDER BY entry, referring to a target-list position.
type SortItem struct {
	Expr Expr
	Desc bool
}

// Query is an analyzed query node. Exactly one of two shapes applies:
//
//   - Plain node: TargetList/RangeTable/From/Where/GroupBy/Having describe
//     an (A)SPJ query.
//   - Set-operation node: SetOp is non-nil; RangeTable holds the branch
//     subqueries; TargetList is pass-through Vars typed from the first
//     branch.
type Query struct {
	TargetList []TargetEntry
	RangeTable []*RTE
	From       []FromItem // items are implicitly cross-joined, then Where applies
	Where      Expr
	GroupBy    []Expr
	Having     Expr
	HasAggs    bool
	Distinct   bool

	SetOp *SetOpNode

	OrderBy []SortItem
	Limit   Expr
	Offset  Expr

	// ProvenanceRequested marks the node for provenance rewrite
	// (SELECT PROVENANCE). Cleared once rewritten.
	ProvenanceRequested bool

	// ProvCols, set by the rewriter, lists the positions in TargetList
	// that are provenance attributes, with their names (the P-list of the
	// paper's Fig. 3/7).
	ProvCols []ProvCol
}

// Schema derives the output schema of the query node.
func (q *Query) Schema() Schema {
	s := make(Schema, len(q.TargetList))
	for i, te := range q.TargetList {
		s[i] = Column{Name: te.Name, Type: TypeOf(te.Expr)}
	}
	return s
}

// IsSetOp reports whether the node is a set-operation node.
func (q *Query) IsSetOp() bool { return q.SetOp != nil }

// ---------------------------------------------------------------------------
// Expressions

// Expr is a typed, resolved scalar expression.
type Expr interface {
	exprNode()
	// Type returns the result kind of the expression.
	Type() types.Kind
}

// Var references column Col of range-table entry RT of the enclosing query.
type Var struct {
	RT   int
	Col  int
	Name string // source column name, for display and deparse
	Typ  types.Kind
}

func (*Var) exprNode()          {}
func (v *Var) Type() types.Kind { return v.Typ }

// Const is a literal.
type Const struct {
	Val types.Value
}

func (*Const) exprNode()          {}
func (c *Const) Type() types.Kind { return c.Val.K }

// BinOp is a binary operator: arithmetic (+ - * / %), comparison
// (= <> < <= > >=), logic (AND OR), LIKE, string concat (||).
type BinOp struct {
	Op    string
	Left  Expr
	Right Expr
	Typ   types.Kind
}

func (*BinOp) exprNode()          {}
func (b *BinOp) Type() types.Kind { return b.Typ }

// UnOp is NOT or unary minus.
type UnOp struct {
	Op   string
	Expr Expr
	Typ  types.Kind
}

func (*UnOp) exprNode()          {}
func (u *UnOp) Type() types.Kind { return u.Typ }

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	Expr Expr
	Not  bool
}

func (*IsNull) exprNode()        {}
func (*IsNull) Type() types.Kind { return types.KindBool }

// DistinctFrom is x IS [NOT] DISTINCT FROM y. The rewriter uses the NOT
// form as the null-safe equality for grouping joins (rule R5) and
// set-operation joins (rules R6-R9).
type DistinctFrom struct {
	Left  Expr
	Right Expr
	Not   bool
}

func (*DistinctFrom) exprNode()        {}
func (*DistinctFrom) Type() types.Kind { return types.KindBool }

// FuncCall is a scalar function call.
type FuncCall struct {
	Name string
	Args []Expr
	Typ  types.Kind
}

func (*FuncCall) exprNode()          {}
func (f *FuncCall) Type() types.Kind { return f.Typ }

// AggFn enumerates the aggregate functions.
type AggFn uint8

// Aggregate functions.
const (
	AggCount AggFn = iota // COUNT(x) and COUNT(*)
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (f AggFn) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "agg"
	}
}

// AggRef is an aggregate invocation inside a target list or HAVING.
type AggRef struct {
	Fn       AggFn
	Arg      Expr // nil for COUNT(*)
	Star     bool
	Distinct bool
	Typ      types.Kind
}

func (*AggRef) exprNode()          {}
func (a *AggRef) Type() types.Kind { return a.Typ }

// CaseWhen is one arm of a CaseExpr.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

// CaseExpr is a searched CASE (operands are lowered during analysis).
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // may be nil (NULL)
	Typ   types.Kind
}

func (*CaseExpr) exprNode()          {}
func (c *CaseExpr) Type() types.Kind { return c.Typ }

// Cast converts the operand to a target kind.
type Cast struct {
	Expr Expr
	To   types.Kind
}

func (*Cast) exprNode()          {}
func (c *Cast) Type() types.Kind { return c.To }

// SubLinkKind enumerates sublink forms.
type SubLinkKind uint8

// Sublink kinds.
const (
	SubScalar SubLinkKind = iota
	SubExists
	SubAny // covers IN (op "=") and quantified comparisons
	SubAll
)

// SubLink is an expression subquery (§IV-E). Test is the left operand for
// SubAny/SubAll; Op the comparison operator. Negation is expressed by a
// wrapping UnOp NOT.
type SubLink struct {
	Kind  SubLinkKind
	Test  Expr
	Op    string
	Query *Query
	Typ   types.Kind

	// PlanID is assigned by the planner to identify the subplan.
	PlanID int
}

func (*SubLink) exprNode()          {}
func (s *SubLink) Type() types.Kind { return s.Typ }

// TypeOf is a convenience for Expr.Type tolerant of nil.
func TypeOf(e Expr) types.Kind {
	if e == nil {
		return types.KindNull
	}
	return e.Type()
}

// ---------------------------------------------------------------------------
// Expression utilities

// VisitExprs walks all expressions of the query node itself (not of
// subqueries in the range table), calling f on each expression tree root.
func (q *Query) VisitExprs(f func(Expr)) {
	for i := range q.TargetList {
		f(q.TargetList[i].Expr)
	}
	if q.Where != nil {
		f(q.Where)
	}
	for _, g := range q.GroupBy {
		f(g)
	}
	if q.Having != nil {
		f(q.Having)
	}
	for i := range q.OrderBy {
		f(q.OrderBy[i].Expr)
	}
	for _, fi := range q.From {
		visitFromConds(fi, f)
	}
}

func visitFromConds(fi FromItem, f func(Expr)) {
	j, ok := fi.(*FromJoin)
	if !ok {
		return
	}
	if j.Cond != nil {
		f(j.Cond)
	}
	visitFromConds(j.Left, f)
	visitFromConds(j.Right, f)
}

// WalkExpr applies f to every node of the expression tree (pre-order).
// It does not descend into sublink subqueries.
func WalkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch n := e.(type) {
	case *BinOp:
		WalkExpr(n.Left, f)
		WalkExpr(n.Right, f)
	case *UnOp:
		WalkExpr(n.Expr, f)
	case *IsNull:
		WalkExpr(n.Expr, f)
	case *DistinctFrom:
		WalkExpr(n.Left, f)
		WalkExpr(n.Right, f)
	case *FuncCall:
		for _, a := range n.Args {
			WalkExpr(a, f)
		}
	case *AggRef:
		WalkExpr(n.Arg, f)
	case *CaseExpr:
		for _, w := range n.Whens {
			WalkExpr(w.Cond, f)
			WalkExpr(w.Result, f)
		}
		WalkExpr(n.Else, f)
	case *Cast:
		WalkExpr(n.Expr, f)
	case *SubLink:
		WalkExpr(n.Test, f)
	}
}

// MapExpr rebuilds the expression tree bottom-up, replacing each node with
// f(node) after its children have been mapped. f receives an already-copied
// node and may return it or a replacement. Sublink subqueries are not
// descended into.
func MapExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *Var:
		c := *n
		return f(&c)
	case *Const:
		c := *n
		return f(&c)
	case *BinOp:
		c := *n
		c.Left = MapExpr(n.Left, f)
		c.Right = MapExpr(n.Right, f)
		return f(&c)
	case *UnOp:
		c := *n
		c.Expr = MapExpr(n.Expr, f)
		return f(&c)
	case *IsNull:
		c := *n
		c.Expr = MapExpr(n.Expr, f)
		return f(&c)
	case *DistinctFrom:
		c := *n
		c.Left = MapExpr(n.Left, f)
		c.Right = MapExpr(n.Right, f)
		return f(&c)
	case *FuncCall:
		c := *n
		c.Args = make([]Expr, len(n.Args))
		for i, a := range n.Args {
			c.Args[i] = MapExpr(a, f)
		}
		return f(&c)
	case *AggRef:
		c := *n
		c.Arg = MapExpr(n.Arg, f)
		return f(&c)
	case *CaseExpr:
		c := *n
		c.Whens = make([]CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			c.Whens[i] = CaseWhen{Cond: MapExpr(w.Cond, f), Result: MapExpr(w.Result, f)}
		}
		c.Else = MapExpr(n.Else, f)
		return f(&c)
	case *Cast:
		c := *n
		c.Expr = MapExpr(n.Expr, f)
		return f(&c)
	case *SubLink:
		c := *n
		c.Test = MapExpr(n.Test, f)
		return f(&c)
	default:
		panic(fmt.Sprintf("algebra.MapExpr: unknown node %T", e))
	}
}

// CopyExpr deep-copies an expression tree (sublink queries are shared).
func CopyExpr(e Expr) Expr {
	return MapExpr(e, func(x Expr) Expr { return x })
}

// ContainsAgg reports whether the expression contains an aggregate.
func ContainsAgg(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		if _, ok := x.(*AggRef); ok {
			found = true
		}
	})
	return found
}

// ContainsSubLink reports whether the expression contains a sublink.
func ContainsSubLink(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		if _, ok := x.(*SubLink); ok {
			found = true
		}
	})
	return found
}

// EqualExpr reports structural equality of two expressions (used to match
// GROUP BY expressions against target entries). Sublinks never compare
// equal.
func EqualExpr(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case *Var:
		y, ok := b.(*Var)
		return ok && x.RT == y.RT && x.Col == y.Col
	case *Const:
		y, ok := b.(*Const)
		return ok && !types.Distinct(x.Val, y.Val)
	case *BinOp:
		y, ok := b.(*BinOp)
		return ok && x.Op == y.Op && EqualExpr(x.Left, y.Left) && EqualExpr(x.Right, y.Right)
	case *UnOp:
		y, ok := b.(*UnOp)
		return ok && x.Op == y.Op && EqualExpr(x.Expr, y.Expr)
	case *IsNull:
		y, ok := b.(*IsNull)
		return ok && x.Not == y.Not && EqualExpr(x.Expr, y.Expr)
	case *DistinctFrom:
		y, ok := b.(*DistinctFrom)
		return ok && x.Not == y.Not && EqualExpr(x.Left, y.Left) && EqualExpr(x.Right, y.Right)
	case *FuncCall:
		y, ok := b.(*FuncCall)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !EqualExpr(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *AggRef:
		y, ok := b.(*AggRef)
		return ok && x.Fn == y.Fn && x.Star == y.Star && x.Distinct == y.Distinct && EqualExpr(x.Arg, y.Arg)
	case *Cast:
		y, ok := b.(*Cast)
		return ok && x.To == y.To && EqualExpr(x.Expr, y.Expr)
	case *CaseExpr:
		y, ok := b.(*CaseExpr)
		if !ok || len(x.Whens) != len(y.Whens) || !EqualExpr(x.Else, y.Else) {
			return false
		}
		for i := range x.Whens {
			if !EqualExpr(x.Whens[i].Cond, y.Whens[i].Cond) || !EqualExpr(x.Whens[i].Result, y.Whens[i].Result) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Conjuncts splits an expression into its top-level AND conjuncts.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinOp); ok && b.Op == "AND" {
		return append(Conjuncts(b.Left), Conjuncts(b.Right)...)
	}
	return []Expr{e}
}

// AndAll combines expressions with AND; nil for empty input.
func AndAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &BinOp{Op: "AND", Left: out, Right: e, Typ: types.KindBool}
		}
	}
	return out
}

// VarsUsed collects the distinct RT indices referenced by the expression.
func VarsUsed(e Expr) map[int]bool {
	m := make(map[int]bool)
	WalkExpr(e, func(x Expr) {
		if v, ok := x.(*Var); ok {
			m[v.RT] = true
		}
	})
	return m
}

// CopyQuery deep-copies a query node, including range-table subqueries.
// Expression sublink subqueries are also copied.
type copier struct{}

// CopyQuery returns a deep copy of q.
func CopyQuery(q *Query) *Query {
	if q == nil {
		return nil
	}
	c := &Query{
		HasAggs:             q.HasAggs,
		Distinct:            q.Distinct,
		ProvenanceRequested: q.ProvenanceRequested,
	}
	c.TargetList = make([]TargetEntry, len(q.TargetList))
	for i, te := range q.TargetList {
		c.TargetList[i] = TargetEntry{Expr: copyExprDeep(te.Expr), Name: te.Name}
	}
	c.RangeTable = make([]*RTE, len(q.RangeTable))
	for i, rte := range q.RangeTable {
		r := *rte
		r.Subquery = CopyQuery(rte.Subquery)
		r.Cols = append(Schema(nil), rte.Cols...)
		r.ProvCols = append([]ProvCol(nil), rte.ProvCols...)
		if rte.Rows != nil {
			r.Rows = make([][]Expr, len(rte.Rows))
			for j, row := range rte.Rows {
				r.Rows[j] = make([]Expr, len(row))
				for k, e := range row {
					r.Rows[j][k] = copyExprDeep(e)
				}
			}
		}
		c.RangeTable[i] = &r
	}
	c.From = make([]FromItem, len(q.From))
	for i, fi := range q.From {
		c.From[i] = copyFromItem(fi)
	}
	c.Where = copyExprDeep(q.Where)
	c.GroupBy = make([]Expr, len(q.GroupBy))
	for i, g := range q.GroupBy {
		c.GroupBy[i] = copyExprDeep(g)
	}
	if len(q.GroupBy) == 0 {
		c.GroupBy = nil
	}
	c.Having = copyExprDeep(q.Having)
	if q.SetOp != nil {
		c.SetOp = copySetOp(q.SetOp).(*SetOpNode)
	}
	c.OrderBy = make([]SortItem, len(q.OrderBy))
	for i, s := range q.OrderBy {
		c.OrderBy[i] = SortItem{Expr: copyExprDeep(s.Expr), Desc: s.Desc}
	}
	if len(q.OrderBy) == 0 {
		c.OrderBy = nil
	}
	c.Limit = copyExprDeep(q.Limit)
	c.Offset = copyExprDeep(q.Offset)
	c.ProvCols = append([]ProvCol(nil), q.ProvCols...)
	return c
}

func copyExprDeep(e Expr) Expr {
	if e == nil {
		return nil
	}
	return MapExpr(e, func(x Expr) Expr {
		if s, ok := x.(*SubLink); ok {
			c := *s
			c.Query = CopyQuery(s.Query)
			return &c
		}
		return x
	})
}

func copyFromItem(fi FromItem) FromItem {
	switch n := fi.(type) {
	case *FromRef:
		c := *n
		return &c
	case *FromJoin:
		return &FromJoin{
			Kind:  n.Kind,
			Left:  copyFromItem(n.Left),
			Right: copyFromItem(n.Right),
			Cond:  copyExprDeep(n.Cond),
		}
	default:
		panic(fmt.Sprintf("algebra.copyFromItem: unknown node %T", fi))
	}
}

func copySetOp(it SetOpItem) SetOpItem {
	switch n := it.(type) {
	case *SetOpLeaf:
		c := *n
		return &c
	case *SetOpNode:
		return &SetOpNode{Op: n.Op, All: n.All, Left: copySetOp(n.Left), Right: copySetOp(n.Right)}
	default:
		panic(fmt.Sprintf("algebra.copySetOp: unknown node %T", it))
	}
}

// String renders a compact description of the query node for debugging.
func (q *Query) String() string {
	var sb strings.Builder
	if q.IsSetOp() {
		fmt.Fprintf(&sb, "SetOpQuery{%d branches}", len(q.RangeTable))
		return sb.String()
	}
	fmt.Fprintf(&sb, "Query{targets=%d, rtes=%d", len(q.TargetList), len(q.RangeTable))
	if q.HasAggs {
		sb.WriteString(", aggs")
	}
	if len(q.GroupBy) > 0 {
		fmt.Fprintf(&sb, ", groupby=%d", len(q.GroupBy))
	}
	sb.WriteString("}")
	return sb.String()
}
