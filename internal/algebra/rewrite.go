// Tree mutation, substitution and column-usage helpers used by the
// logical optimizer (package optimize) and other passes that rewrite
// query nodes in place.

package algebra

// MapOwnExprs applies a MapExpr transform to every expression site of the
// query node itself: target list, WHERE, GROUP BY, HAVING, ORDER BY,
// LIMIT/OFFSET, join conditions and VALUES rows. It does not descend into
// range-table subqueries or sublink subqueries.
func (q *Query) MapOwnExprs(f func(Expr) Expr) {
	for i := range q.TargetList {
		q.TargetList[i].Expr = MapExpr(q.TargetList[i].Expr, f)
	}
	q.Where = MapExpr(q.Where, f)
	for i := range q.GroupBy {
		q.GroupBy[i] = MapExpr(q.GroupBy[i], f)
	}
	q.Having = MapExpr(q.Having, f)
	for i := range q.OrderBy {
		q.OrderBy[i].Expr = MapExpr(q.OrderBy[i].Expr, f)
	}
	q.Limit = MapExpr(q.Limit, f)
	q.Offset = MapExpr(q.Offset, f)
	for _, fi := range q.From {
		mapFromItemConds(fi, f)
	}
	for _, rte := range q.RangeTable {
		for _, row := range rte.Rows {
			for k := range row {
				row[k] = MapExpr(row[k], f)
			}
		}
	}
}

func mapFromItemConds(fi FromItem, f func(Expr) Expr) {
	j, ok := fi.(*FromJoin)
	if !ok {
		return
	}
	if j.Cond != nil {
		j.Cond = MapExpr(j.Cond, f)
	}
	mapFromItemConds(j.Left, f)
	mapFromItemConds(j.Right, f)
}

// SubstituteVars rebuilds the expression, replacing every Var for which
// repl returns a non-nil expression. Replacement subtrees are inserted
// as-is (they are not themselves visited).
func SubstituteVars(e Expr, repl func(*Var) Expr) Expr {
	return MapExpr(e, func(x Expr) Expr {
		if v, ok := x.(*Var); ok {
			if r := repl(v); r != nil {
				return r
			}
		}
		return x
	})
}

// ColumnUses records which columns of each range-table entry the query's
// own expressions reference, keyed by range-table index. Sentinel indices
// (output and flat references, RT < 0) are excluded.
func (q *Query) ColumnUses() map[int]map[int]bool {
	uses := make(map[int]map[int]bool)
	q.VisitExprs(func(e Expr) {
		WalkExpr(e, func(x Expr) {
			v, ok := x.(*Var)
			if !ok || v.RT < 0 {
				return
			}
			m := uses[v.RT]
			if m == nil {
				m = make(map[int]bool)
				uses[v.RT] = m
			}
			m[v.Col] = true
		})
	})
	return uses
}

// FromRTs collects into out the range-table indices referenced by the
// from-item tree.
func FromRTs(fi FromItem, out map[int]bool) {
	switch n := fi.(type) {
	case *FromRef:
		out[n.RT] = true
	case *FromJoin:
		FromRTs(n.Left, out)
		FromRTs(n.Right, out)
	}
}

// ReplaceFromRef replaces the (unique) FromRef to rt in the forest with
// repl, reporting whether a reference was found.
func ReplaceFromRef(items []FromItem, rt int, repl FromItem) bool {
	for i, fi := range items {
		if r, ok := fi.(*FromRef); ok && r.RT == rt {
			items[i] = repl
			return true
		}
		if j, ok := fi.(*FromJoin); ok && replaceFromRefIn(j, rt, repl) {
			return true
		}
	}
	return false
}

func replaceFromRefIn(j *FromJoin, rt int, repl FromItem) bool {
	if r, ok := j.Left.(*FromRef); ok && r.RT == rt {
		j.Left = repl
		return true
	}
	if r, ok := j.Right.(*FromRef); ok && r.RT == rt {
		j.Right = repl
		return true
	}
	if l, ok := j.Left.(*FromJoin); ok && replaceFromRefIn(l, rt, repl) {
		return true
	}
	if r, ok := j.Right.(*FromJoin); ok && replaceFromRefIn(r, rt, repl) {
		return true
	}
	return false
}

// RenumberFrom rewrites every FromRef in the forest through the remap
// table (old range-table index → new index).
func RenumberFrom(items []FromItem, remap []int) {
	for _, fi := range items {
		renumberFromItem(fi, remap)
	}
}

func renumberFromItem(fi FromItem, remap []int) {
	switch n := fi.(type) {
	case *FromRef:
		n.RT = remap[n.RT]
	case *FromJoin:
		renumberFromItem(n.Left, remap)
		renumberFromItem(n.Right, remap)
	}
}
