package algebra

import "perm/internal/types"

// FoldConst evaluates a constant-only arithmetic subtree (notably the
// date ± interval bounds every TPC-H range predicate carries) with the
// engine's value operations. It is shared by the vectorized expression
// compiler (so enclosing comparisons still vectorize) and the planner's
// selectivity estimator, keeping both on identical folding semantics.
// Errors (e.g. a constant division by zero) leave the tree unfolded; the
// runtime then raises the same error it would have anyway.
func FoldConst(e Expr) (types.Value, bool) {
	switch n := e.(type) {
	case *Const:
		return n.Val, true
	case *UnOp:
		if n.Op != "-" {
			return types.NullValue, false
		}
		v, ok := FoldConst(n.Expr)
		if !ok {
			return types.NullValue, false
		}
		out, err := types.Neg(v)
		return out, err == nil
	case *BinOp:
		l, ok := FoldConst(n.Left)
		if !ok {
			return types.NullValue, false
		}
		r, ok := FoldConst(n.Right)
		if !ok {
			return types.NullValue, false
		}
		var out types.Value
		var err error
		switch n.Op {
		case "+":
			out, err = types.Add(l, r)
		case "-":
			out, err = types.Sub(l, r)
		case "*":
			out, err = types.Mul(l, r)
		case "/":
			out, err = types.Div(l, r)
		case "%":
			out, err = types.Mod(l, r)
		default:
			return types.NullValue, false
		}
		return out, err == nil
	default:
		return types.NullValue, false
	}
}
