// Package synth generates the artificial query workloads of the paper's
// §V-B: random set-operation trees over selections on the TPC-H part
// table (Fig. 12), random SPJ trees (Fig. 13), and nested aggregation
// chains (Fig. 14). Each generator is deterministic given a PRNG.
package synth

import (
	"fmt"
	"math"
	"strings"

	"perm/internal/tpch"
)

// SetOpQuery builds a random set-operation tree with numSetOp leaf
// selections on a key range of part (§V-B1). Only UNION and INTERSECT are
// used, as in the paper ("we used only union and intersections ... to
// evaluate the effect of the computational complexity of a provenance
// query instead of the effect of exponential result growth"). maxKey is
// the largest p_partkey in the dataset.
func SetOpQuery(r *tpch.Rand, numSetOp, maxKey int) string {
	if numSetOp < 1 {
		numSetOp = 1
	}
	leaves := make([]string, numSetOp)
	for i := range leaves {
		leaves[i] = partSelection(r, maxKey)
	}
	return buildSetOpTree(r, leaves)
}

// partSelection returns a selection on a random primary-key range.
func partSelection(r *tpch.Rand, maxKey int) string {
	lo := r.Range(1, maxKey)
	width := r.Range(1, maxKey/2+1)
	hi := lo + width
	return fmt.Sprintf(
		"(SELECT p_partkey, p_name, p_brand FROM part WHERE p_partkey >= %d AND p_partkey <= %d)",
		lo, hi)
}

// buildSetOpTree combines leaves with a random tree structure of UNION
// and INTERSECT operations.
func buildSetOpTree(r *tpch.Rand, items []string) string {
	for len(items) > 1 {
		i := r.Intn(len(items) - 1)
		op := "UNION"
		if r.Intn(2) == 0 {
			op = "INTERSECT"
		}
		merged := "(" + items[i] + " " + op + " " + items[i+1] + ")"
		items = append(items[:i], append([]string{merged}, items[i+2:]...)...)
	}
	return strings.TrimSuffix(strings.TrimPrefix(items[0], "("), ")")
}

// SetOpDifferenceQuery builds a set-operation tree that includes EXCEPT
// operations (the worst case §V-B1 excludes from timing; used by the
// blow-up ablation bench).
func SetOpDifferenceQuery(r *tpch.Rand, numSetOp, maxKey int) string {
	if numSetOp < 1 {
		numSetOp = 1
	}
	leaves := make([]string, numSetOp)
	for i := range leaves {
		leaves[i] = partSelection(r, maxKey)
	}
	out := leaves[0]
	for _, leaf := range leaves[1:] {
		out = "(" + out + " EXCEPT " + leaf + ")"
	}
	return strings.TrimSuffix(strings.TrimPrefix(out, "("), ")")
}

// SPJQuery builds a random select-project-join query with numSub leaf
// subqueries (§V-B2). Leaves are key-range selections on part; the join
// tree is random, joining on p_partkey equality.
func SPJQuery(r *tpch.Rand, numSub, maxKey int) string {
	if numSub < 1 {
		numSub = 1
	}
	type frag struct {
		sql   string
		alias string
	}
	frags := make([]frag, numSub)
	for i := range frags {
		alias := fmt.Sprintf("s%d", i+1)
		frags[i] = frag{sql: partSelection(r, maxKey) + " AS " + alias, alias: alias}
	}
	// Random left-deep-ish join order: shuffle by picking random positions.
	fromParts := make([]string, numSub)
	var conds []string
	for i, f := range frags {
		fromParts[i] = f.sql
		if i > 0 {
			// join to a random earlier fragment on the key
			j := r.Intn(i)
			conds = append(conds, fmt.Sprintf("%s.p_partkey = %s.p_partkey",
				frags[j].alias, f.alias))
		}
	}
	sel := fmt.Sprintf("SELECT %s.p_partkey, %s.p_name FROM %s",
		frags[0].alias, frags[0].alias, strings.Join(fromParts, ", "))
	if len(conds) > 0 {
		sel += " WHERE " + strings.Join(conds, " AND ")
	}
	return sel
}

// AggChainQuery builds a chain of agg nested aggregation operations over
// part (§V-B3). Each level groups its input's key column divided by
// numGrp = agg-th root of |part|, so every level performs roughly the
// same number of aggregation computations, as in the paper.
func AggChainQuery(agg, partCount int) string {
	if agg < 1 {
		agg = 1
	}
	numGrp := int(math.Pow(float64(partCount), 1/float64(agg)))
	if numGrp < 2 {
		numGrp = 2
	}
	inner := fmt.Sprintf(
		"(SELECT p_partkey / %d AS k, sum(p_retailprice) AS v FROM part GROUP BY p_partkey / %d)",
		numGrp, numGrp)
	for level := 2; level <= agg; level++ {
		inner = fmt.Sprintf(
			"(SELECT k / %d AS k, sum(v) AS v FROM %s AS a%d GROUP BY k / %d)",
			numGrp, inner, level, numGrp)
	}
	return strings.TrimSuffix(strings.TrimPrefix(inner, "("), ")")
}

// SupplierSelection returns a simple key-range selection on supplier,
// used for the Trio comparison workload (§V-C: "1000 simple selections on
// a range of primary key attribute values of relation supplier").
func SupplierSelection(r *tpch.Rand, maxKey int) string {
	lo := r.Range(1, maxKey)
	hi := lo + r.Range(1, maxKey/2+1)
	return fmt.Sprintf(
		"SELECT s_suppkey, s_name, s_acctbal FROM supplier WHERE s_suppkey >= %d AND s_suppkey <= %d",
		lo, hi)
}
