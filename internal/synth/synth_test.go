package synth

import (
	"strings"
	"testing"

	"perm/internal/sql"
	"perm/internal/tpch"
)

func TestSetOpQueryParses(t *testing.T) {
	r := tpch.NewRand(1)
	for n := 1; n <= 6; n++ {
		for v := 0; v < 5; v++ {
			q := SetOpQuery(r, n, 200)
			if _, err := sql.Parse(q); err != nil {
				t.Fatalf("numSetOp=%d: %v\n%s", n, err, q)
			}
			ops := strings.Count(q, "UNION") + strings.Count(q, "INTERSECT")
			if ops != n-1 {
				t.Errorf("numSetOp=%d produced %d operators", n, ops)
			}
			if strings.Contains(q, "EXCEPT") {
				t.Error("SetOpQuery must not use EXCEPT (paper §V-B1)")
			}
		}
	}
}

func TestSetOpDifferenceQueryParses(t *testing.T) {
	r := tpch.NewRand(2)
	q := SetOpDifferenceQuery(r, 3, 200)
	if _, err := sql.Parse(q); err != nil {
		t.Fatalf("%v\n%s", err, q)
	}
	if strings.Count(q, "EXCEPT") != 2 {
		t.Errorf("want 2 EXCEPT operators:\n%s", q)
	}
}

func TestSPJQueryParses(t *testing.T) {
	r := tpch.NewRand(3)
	for n := 1; n <= 8; n++ {
		q := SPJQuery(r, n, 200)
		if _, err := sql.Parse(q); err != nil {
			t.Fatalf("numSub=%d: %v\n%s", n, err, q)
		}
		if got := strings.Count(q, "SELECT") - 1; got != n {
			t.Errorf("numSub=%d produced %d leaf subqueries", n, got)
		}
	}
}

func TestAggChainDepth(t *testing.T) {
	for agg := 1; agg <= 10; agg++ {
		q := AggChainQuery(agg, 1000)
		if _, err := sql.Parse(q); err != nil {
			t.Fatalf("agg=%d: %v\n%s", agg, err, q)
		}
		if got := strings.Count(q, "GROUP BY"); got != agg {
			t.Errorf("agg=%d produced %d aggregation levels", agg, got)
		}
	}
}

func TestSupplierSelectionParses(t *testing.T) {
	r := tpch.NewRand(4)
	for i := 0; i < 20; i++ {
		q := SupplierSelection(r, 100)
		if _, err := sql.Parse(q); err != nil {
			t.Fatalf("%v\n%s", err, q)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := SetOpQuery(tpch.NewRand(9), 3, 50)
	b := SetOpQuery(tpch.NewRand(9), 3, 50)
	if a != b {
		t.Error("SetOpQuery not deterministic for equal seeds")
	}
}
