package types

import "hash/fnv"

// Row is a tuple of values. Rows are value-like: executors never mutate a
// row after handing it downstream; copies are made when buffering.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Concat returns the concatenation of two rows as a fresh row.
func Concat(a, b Row) Row {
	c := make(Row, 0, len(a)+len(b))
	c = append(c, a...)
	c = append(c, b...)
	return c
}

// Hash hashes the whole row, consistent with EqualNullSafe.
func (r Row) Hash() uint64 {
	h := fnv.New64a()
	for i := range r {
		r[i].HashInto(h)
	}
	return h.Sum64()
}

// HashKey hashes the projection of the row on the given columns.
func (r Row) HashKey(cols []int) uint64 {
	h := fnv.New64a()
	for _, c := range cols {
		r[c].HashInto(h)
	}
	return h.Sum64()
}

// EqualNullSafe reports whether two rows are equal treating NULLs as equal
// (IS NOT DISTINCT FROM semantics); this is the row equality used for
// grouping, DISTINCT and set operations.
func (r Row) EqualNullSafe(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if Distinct(r[i], o[i]) {
			return false
		}
	}
	return true
}

// NullRow returns a row of n typed NULLs matching the given kinds.
func NullRow(kinds []Kind) Row {
	r := make(Row, len(kinds))
	for i, k := range kinds {
		r[i] = NewNull(k)
	}
	return r
}
