// Package types implements the value system of the Perm engine: the scalar
// datatypes that flow through query execution, their three-valued logic,
// comparison, arithmetic and hashing.
//
// Values use bag-semantics relational conventions throughout: any operation
// on a NULL operand yields NULL (except the logical connectives, which
// follow SQL three-valued logic), and NULLs compare as "unknown" under =,
// but as equal under the null-safe Distinct comparison used for grouping
// and set operations.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the scalar datatypes supported by the engine.
type Kind uint8

// The supported datatype kinds.
const (
	KindNull Kind = iota // the type of an untyped NULL literal
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate     // days since 1970-01-01
	KindInterval // months + days, for date arithmetic
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindInt:
		return "bigint"
	case KindFloat:
		return "double"
	case KindString:
		return "text"
	case KindDate:
		return "date"
	case KindInterval:
		return "interval"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind is a numeric type.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a single scalar value. The zero Value is NULL.
//
// A Value is a tagged union: Kind selects which of the payload fields is
// meaningful. Null is represented separately so that every kind has a
// typed NULL (needed e.g. for outer-join padding).
type Value struct {
	K    Kind
	Null bool
	I    int64   // KindInt, KindDate (days), KindInterval (months<<32|days, see below)
	F    float64 // KindFloat
	S    string  // KindString
	B    bool    // KindBool
}

// NewNull returns a typed NULL of kind k.
func NewNull(k Kind) Value { return Value{K: k, Null: true} }

// Null is the untyped NULL literal.
var NullValue = Value{K: KindNull, Null: true}

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{K: KindBool, B: b} }

// NewInt returns a bigint value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewFloat returns a double value.
func NewFloat(f float64) Value { return Value{K: KindFloat, F: f} }

// NewString returns a text value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// NewDate returns a date value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{K: KindDate, I: days} }

// NewInterval returns an interval of the given months and days.
func NewInterval(months, days int32) Value {
	return Value{K: KindInterval, I: int64(months)<<32 | int64(uint32(days))}
}

// IntervalParts decomposes an interval value.
func (v Value) IntervalParts() (months, days int32) {
	return int32(v.I >> 32), int32(uint32(v.I))
}

// DateFromYMD builds a date value from a calendar date.
func DateFromYMD(y, m, d int) Value {
	t := time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
	return NewDate(t.Unix() / 86400)
}

// ParseDate parses a 'YYYY-MM-DD' literal.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return NullValue, fmt.Errorf("invalid date literal %q: %v", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// DateYMD decomposes a date value into calendar components.
func (v Value) DateYMD() (y, m, d int) {
	t := time.Unix(v.I*86400, 0).UTC()
	return t.Year(), int(t.Month()), t.Day()
}

// IsTrue reports whether the value is boolean TRUE (NULL counts as not true,
// per SQL WHERE semantics).
func (v Value) IsTrue() bool { return !v.Null && v.K == KindBool && v.B }

// AsFloat converts a numeric value to float64. The caller must ensure the
// value is non-NULL numeric.
func (v Value) AsFloat() float64 {
	if v.K == KindFloat {
		return v.F
	}
	return float64(v.I)
}

// String renders the value for display. NULLs render as "NULL"; dates in
// ISO format.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.K {
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindDate:
		y, m, d := v.DateYMD()
		return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
	case KindInterval:
		mo, dy := v.IntervalParts()
		return fmt.Sprintf("%d mons %d days", mo, dy)
	default:
		return "NULL"
	}
}

// SQLLiteral renders the value as a SQL literal (quoting strings/dates).
func (v Value) SQLLiteral() string {
	if v.Null {
		return "NULL"
	}
	switch v.K {
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindDate:
		return "date '" + v.String() + "'"
	default:
		return v.String()
	}
}

// numericKinds reports whether the pair can be compared/combined numerically.
func numericPair(a, b Kind) bool { return a.Numeric() && b.Numeric() }

// Compare orders two non-NULL values of compatible kinds. It returns
// -1, 0, or +1. Comparing a NULL or incompatible kinds is a programming
// error surfaced as a panic; expression evaluation checks NULL first.
func Compare(a, b Value) int {
	if a.Null || b.Null {
		panic("types.Compare on NULL value")
	}
	switch {
	case a.K == KindInt && b.K == KindInt:
		return cmpInt(a.I, b.I)
	case numericPair(a.K, b.K):
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	case a.K == KindString && b.K == KindString:
		return strings.Compare(a.S, b.S)
	case a.K == KindDate && b.K == KindDate:
		return cmpInt(a.I, b.I)
	case a.K == KindBool && b.K == KindBool:
		switch {
		case a.B == b.B:
			return 0
		case b.B:
			return -1
		default:
			return 1
		}
	case a.K == KindInterval && b.K == KindInterval:
		return cmpInt(intervalApproxDays(a), intervalApproxDays(b))
	}
	panic(fmt.Sprintf("types.Compare: incompatible kinds %s and %s", a.K, b.K))
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func intervalApproxDays(v Value) int64 {
	mo, dy := v.IntervalParts()
	return int64(mo)*30 + int64(dy)
}

// Comparable reports whether values of the two kinds can be ordered against
// each other.
func Comparable(a, b Kind) bool {
	if a == KindNull || b == KindNull {
		return true
	}
	if a == b {
		return true
	}
	return numericPair(a, b)
}

// Equal is SQL equality under three-valued logic projected to bool:
// NULL = anything is not equal (unknown → false).
func Equal(a, b Value) bool {
	if a.Null || b.Null {
		return false
	}
	if !Comparable(a.K, b.K) {
		return false
	}
	return Compare(a, b) == 0
}

// Distinct implements IS DISTINCT FROM: NULLs are equal to each other and
// distinct from every non-NULL.
func Distinct(a, b Value) bool {
	if a.Null && b.Null {
		return false
	}
	if a.Null != b.Null {
		return true
	}
	return Compare(a, b) != 0
}

// Hash returns a hash of the value suitable for hash joins, grouping and
// set operations. It is consistent with Distinct: !Distinct(a,b) implies
// Hash(a)==Hash(b). Numeric values hash by their float64 value so that
// cross-kind numeric equality is respected.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	v.HashInto(h)
	return h.Sum64()
}

// hashWriter is the subset of hash.Hash64 we need.
type hashWriter interface{ Write(p []byte) (int, error) }

// HashInto feeds the value into an existing hasher (for row hashing).
func (v Value) HashInto(h hashWriter) {
	var buf [9]byte
	if v.Null {
		buf[0] = 0xff
		h.Write(buf[:1])
		return
	}
	switch v.K {
	case KindBool:
		buf[0] = 1
		if v.B {
			buf[1] = 1
		}
		h.Write(buf[:2])
	case KindInt, KindFloat:
		// Hash numerics by float64 bit pattern for cross-kind equality.
		buf[0] = 2
		f := v.AsFloat()
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:9])
	case KindString:
		buf[0] = 3
		h.Write(buf[:1])
		h.Write([]byte(v.S))
	case KindDate:
		buf[0] = 4
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(uint64(v.I) >> (8 * i))
		}
		h.Write(buf[:9])
	case KindInterval:
		buf[0] = 5
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(uint64(v.I) >> (8 * i))
		}
		h.Write(buf[:9])
	default:
		buf[0] = 0xfe
		h.Write(buf[:1])
	}
}

// Arithmetic errors.
var errDivByZero = fmt.Errorf("division by zero")

// Add computes a + b with SQL NULL propagation. Supported: numeric+numeric,
// date+interval, interval+date, interval+interval.
func Add(a, b Value) (Value, error) {
	if a.Null || b.Null {
		return NullValue, nil
	}
	switch {
	case a.K == KindInt && b.K == KindInt:
		return NewInt(a.I + b.I), nil
	case numericPair(a.K, b.K):
		return NewFloat(a.AsFloat() + b.AsFloat()), nil
	case a.K == KindDate && b.K == KindInterval:
		return addDateInterval(a, b, 1), nil
	case a.K == KindInterval && b.K == KindDate:
		return addDateInterval(b, a, 1), nil
	case a.K == KindInterval && b.K == KindInterval:
		am, ad := a.IntervalParts()
		bm, bd := b.IntervalParts()
		return NewInterval(am+bm, ad+bd), nil
	}
	return NullValue, fmt.Errorf("cannot add %s and %s", a.K, b.K)
}

// Sub computes a - b. Supported: numeric-numeric, date-interval, date-date
// (yielding an integer day count), interval-interval.
func Sub(a, b Value) (Value, error) {
	if a.Null || b.Null {
		return NullValue, nil
	}
	switch {
	case a.K == KindInt && b.K == KindInt:
		return NewInt(a.I - b.I), nil
	case numericPair(a.K, b.K):
		return NewFloat(a.AsFloat() - b.AsFloat()), nil
	case a.K == KindDate && b.K == KindInterval:
		return addDateInterval(a, b, -1), nil
	case a.K == KindDate && b.K == KindDate:
		return NewInt(a.I - b.I), nil
	case a.K == KindInterval && b.K == KindInterval:
		am, ad := a.IntervalParts()
		bm, bd := b.IntervalParts()
		return NewInterval(am-bm, ad-bd), nil
	}
	return NullValue, fmt.Errorf("cannot subtract %s from %s", b.K, a.K)
}

func addDateInterval(d, iv Value, sign int) Value {
	mo, dy := iv.IntervalParts()
	if mo == 0 {
		return NewDate(d.I + int64(sign)*int64(dy))
	}
	y, m, day := d.DateYMD()
	t := time.Date(y, time.Month(m), day, 0, 0, 0, 0, time.UTC)
	t = t.AddDate(0, sign*int(mo), sign*int(dy))
	return NewDate(t.Unix() / 86400)
}

// Mul computes a * b for numeric operands.
func Mul(a, b Value) (Value, error) {
	if a.Null || b.Null {
		return NullValue, nil
	}
	switch {
	case a.K == KindInt && b.K == KindInt:
		return NewInt(a.I * b.I), nil
	case numericPair(a.K, b.K):
		return NewFloat(a.AsFloat() * b.AsFloat()), nil
	}
	return NullValue, fmt.Errorf("cannot multiply %s and %s", a.K, b.K)
}

// Div computes a / b for numeric operands. Integer division of two ints
// follows SQL and truncates.
func Div(a, b Value) (Value, error) {
	if a.Null || b.Null {
		return NullValue, nil
	}
	switch {
	case a.K == KindInt && b.K == KindInt:
		if b.I == 0 {
			return NullValue, errDivByZero
		}
		return NewInt(a.I / b.I), nil
	case numericPair(a.K, b.K):
		bf := b.AsFloat()
		if bf == 0 {
			return NullValue, errDivByZero
		}
		return NewFloat(a.AsFloat() / bf), nil
	}
	return NullValue, fmt.Errorf("cannot divide %s by %s", a.K, b.K)
}

// Mod computes a % b for integer operands.
func Mod(a, b Value) (Value, error) {
	if a.Null || b.Null {
		return NullValue, nil
	}
	if a.K == KindInt && b.K == KindInt {
		if b.I == 0 {
			return NullValue, errDivByZero
		}
		return NewInt(a.I % b.I), nil
	}
	return NullValue, fmt.Errorf("cannot compute %s %% %s", a.K, b.K)
}

// Neg computes -a for numeric or interval operands.
func Neg(a Value) (Value, error) {
	if a.Null {
		return NullValue, nil
	}
	switch a.K {
	case KindInt:
		return NewInt(-a.I), nil
	case KindFloat:
		return NewFloat(-a.F), nil
	case KindInterval:
		mo, dy := a.IntervalParts()
		return NewInterval(-mo, -dy), nil
	}
	return NullValue, fmt.Errorf("cannot negate %s", a.K)
}

// Tri is SQL three-valued logic truth.
type Tri uint8

// Three-valued logic constants.
const (
	TriFalse Tri = iota
	TriTrue
	TriNull
)

// TriOf converts a boolean Value to a Tri.
func TriOf(v Value) Tri {
	if v.Null {
		return TriNull
	}
	if v.B {
		return TriTrue
	}
	return TriFalse
}

// Value converts a Tri back into a boolean Value.
func (t Tri) Value() Value {
	switch t {
	case TriTrue:
		return NewBool(true)
	case TriFalse:
		return NewBool(false)
	default:
		return NewNull(KindBool)
	}
}

// And implements SQL three-valued AND.
func (t Tri) And(o Tri) Tri {
	if t == TriFalse || o == TriFalse {
		return TriFalse
	}
	if t == TriNull || o == TriNull {
		return TriNull
	}
	return TriTrue
}

// Or implements SQL three-valued OR.
func (t Tri) Or(o Tri) Tri {
	if t == TriTrue || o == TriTrue {
		return TriTrue
	}
	if t == TriNull || o == TriNull {
		return TriNull
	}
	return TriFalse
}

// Not implements SQL three-valued NOT.
func (t Tri) Not() Tri {
	switch t {
	case TriTrue:
		return TriFalse
	case TriFalse:
		return TriTrue
	default:
		return TriNull
	}
}

// Coerce converts v to kind k if a lossless/SQL-standard conversion exists.
func Coerce(v Value, k Kind) (Value, error) {
	if v.Null {
		return NewNull(k), nil
	}
	if v.K == k || k == KindNull {
		return v, nil
	}
	switch {
	case v.K == KindInt && k == KindFloat:
		return NewFloat(float64(v.I)), nil
	case v.K == KindFloat && k == KindInt:
		return NewInt(int64(v.F)), nil
	case v.K == KindString && k == KindDate:
		return ParseDate(v.S)
	case k == KindString:
		return NewString(v.String()), nil
	}
	return NullValue, fmt.Errorf("cannot coerce %s to %s", v.K, k)
}

// CommonKind returns the kind both operand kinds can be promoted to for
// comparison or arithmetic, or an error when incompatible.
func CommonKind(a, b Kind) (Kind, error) {
	if a == KindNull {
		return b, nil
	}
	if b == KindNull {
		return a, nil
	}
	if a == b {
		return a, nil
	}
	if numericPair(a, b) {
		return KindFloat, nil
	}
	return KindNull, fmt.Errorf("incompatible types %s and %s", a, b)
}
