package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "boolean", KindInt: "bigint",
		KindFloat: "double", KindString: "text", KindDate: "date",
		KindInterval: "interval",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NullValue, "NULL"},
		{NewNull(KindInt), "NULL"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt(-42), "-42"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{DateFromYMD(1998, 12, 1), "1998-12-01"},
		{NewInterval(3, 10), "3 mons 10 days"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := NewString("o'neil").SQLLiteral(); got != "'o''neil'" {
		t.Errorf("string literal = %q", got)
	}
	if got := DateFromYMD(1995, 3, 15).SQLLiteral(); got != "date '1995-03-15'" {
		t.Errorf("date literal = %q", got)
	}
	if got := NullValue.SQLLiteral(); got != "NULL" {
		t.Errorf("null literal = %q", got)
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("1998-12-01")
	if err != nil {
		t.Fatal(err)
	}
	y, m, d := v.DateYMD()
	if y != 1998 || m != 12 || d != 1 {
		t.Errorf("DateYMD = %d-%d-%d", y, m, d)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("ParseDate should fail on garbage")
	}
	if _, err := ParseDate("1998-13-01"); err == nil {
		t.Error("ParseDate should fail on month 13")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{DateFromYMD(1995, 1, 1), DateFromYMD(1996, 1, 1), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualAndDistinct(t *testing.T) {
	if Equal(NullValue, NullValue) {
		t.Error("NULL = NULL must not be Equal (3VL)")
	}
	if Distinct(NullValue, NullValue) {
		t.Error("NULL IS DISTINCT FROM NULL must be false")
	}
	if !Distinct(NullValue, NewInt(1)) {
		t.Error("NULL IS DISTINCT FROM 1 must be true")
	}
	if !Equal(NewInt(2), NewFloat(2.0)) {
		t.Error("2 = 2.0 must hold across numeric kinds")
	}
	if Equal(NewInt(1), NewString("1")) {
		t.Error("1 = '1' must not hold")
	}
}

func TestHashConsistentWithDistinct(t *testing.T) {
	// !Distinct(a,b) ⇒ Hash(a) == Hash(b), especially across numeric kinds.
	f := func(i int32) bool {
		a, b := NewInt(int64(i)), NewFloat(float64(i))
		return !Distinct(a, b) && a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if NewNull(KindInt).Hash() != NewNull(KindString).Hash() {
		t.Error("typed NULLs must hash identically (they are not distinct)")
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := mustV(Add(NewInt(2), NewInt(3))); got.I != 5 || got.K != KindInt {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(Add(NewInt(2), NewFloat(0.5))); got.F != 2.5 || got.K != KindFloat {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := mustV(Sub(NewInt(2), NewInt(3))); got.I != -1 {
		t.Errorf("2-3 = %v", got)
	}
	if got := mustV(Mul(NewInt(4), NewInt(3))); got.I != 12 {
		t.Errorf("4*3 = %v", got)
	}
	if got := mustV(Div(NewInt(7), NewInt(2))); got.I != 3 {
		t.Errorf("7/2 = %v (integer division truncates)", got)
	}
	if got := mustV(Div(NewFloat(7), NewInt(2))); got.F != 3.5 {
		t.Errorf("7.0/2 = %v", got)
	}
	if got := mustV(Mod(NewInt(7), NewInt(2))); got.I != 1 {
		t.Errorf("7%%2 = %v", got)
	}
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero must error")
	}
	if _, err := Mod(NewInt(1), NewInt(0)); err == nil {
		t.Error("mod by zero must error")
	}
	// NULL propagation.
	for _, op := range []func(a, b Value) (Value, error){Add, Sub, Mul, Div, Mod} {
		v, err := op(NullValue, NewInt(1))
		if err != nil || !v.Null {
			t.Errorf("op(NULL, 1) = %v, %v; want NULL", v, err)
		}
	}
	if v := mustV(Neg(NewInt(5))); v.I != -5 {
		t.Errorf("-5 = %v", v)
	}
	if _, err := Add(NewString("a"), NewInt(1)); err == nil {
		t.Error("'a' + 1 must error")
	}
}

func TestDateArithmetic(t *testing.T) {
	d := DateFromYMD(1995, 1, 31)
	plusMonth, err := Add(d, NewInterval(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	y, m, _ := plusMonth.DateYMD()
	if y != 1995 || m != 3 {
		// Go's AddDate normalizes Jan 31 + 1 month to Mar 2/3.
		t.Errorf("1995-01-31 + 1 month = %s", plusMonth)
	}
	plusDays, err := Add(d, NewInterval(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if plusDays.String() != "1995-02-02" {
		t.Errorf("1995-01-31 + 2 days = %s", plusDays)
	}
	diff, err := Sub(DateFromYMD(1995, 2, 1), DateFromYMD(1995, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if diff.I != 31 || diff.K != KindInt {
		t.Errorf("date difference = %v", diff)
	}
	minusYear, err := Sub(DateFromYMD(1998, 12, 1), NewInterval(12, 0))
	if err != nil {
		t.Fatal(err)
	}
	if minusYear.String() != "1997-12-01" {
		t.Errorf("1998-12-01 - 1 year = %s", minusYear)
	}
}

func TestTriLogic(t *testing.T) {
	vals := []Tri{TriFalse, TriTrue, TriNull}
	// Kleene truth tables.
	andTable := [3][3]Tri{
		{TriFalse, TriFalse, TriFalse},
		{TriFalse, TriTrue, TriNull},
		{TriFalse, TriNull, TriNull},
	}
	orTable := [3][3]Tri{
		{TriFalse, TriTrue, TriNull},
		{TriTrue, TriTrue, TriTrue},
		{TriNull, TriTrue, TriNull},
	}
	for i, a := range vals {
		for j, b := range vals {
			if got := a.And(b); got != andTable[i][j] {
				t.Errorf("%d AND %d = %d, want %d", a, b, got, andTable[i][j])
			}
			if got := a.Or(b); got != orTable[i][j] {
				t.Errorf("%d OR %d = %d, want %d", a, b, got, orTable[i][j])
			}
		}
	}
	if TriTrue.Not() != TriFalse || TriFalse.Not() != TriTrue || TriNull.Not() != TriNull {
		t.Error("NOT truth table wrong")
	}
}

func TestTriProperties(t *testing.T) {
	toTri := func(n uint8) Tri { return Tri(n % 3) }
	// De Morgan: NOT(a AND b) == (NOT a) OR (NOT b)
	deMorgan := func(x, y uint8) bool {
		a, b := toTri(x), toTri(y)
		return a.And(b).Not() == a.Not().Or(b.Not())
	}
	if err := quick.Check(deMorgan, nil); err != nil {
		t.Error("De Morgan:", err)
	}
	// Commutativity.
	comm := func(x, y uint8) bool {
		a, b := toTri(x), toTri(y)
		return a.And(b) == b.And(a) && a.Or(b) == b.Or(a)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error("commutativity:", err)
	}
	// Double negation.
	dn := func(x uint8) bool { a := toTri(x); return a.Not().Not() == a }
	if err := quick.Check(dn, nil); err != nil {
		t.Error("double negation:", err)
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(NewInt(3), KindFloat)
	if err != nil || v.F != 3.0 {
		t.Errorf("int→float = %v, %v", v, err)
	}
	v, err = Coerce(NewFloat(3.7), KindInt)
	if err != nil || v.I != 3 {
		t.Errorf("float→int = %v, %v", v, err)
	}
	v, err = Coerce(NewString("1995-06-17"), KindDate)
	if err != nil || v.String() != "1995-06-17" {
		t.Errorf("string→date = %v, %v", v, err)
	}
	v, err = Coerce(NullValue, KindInt)
	if err != nil || !v.Null || v.K != KindInt {
		t.Errorf("null coerce = %v, %v", v, err)
	}
	if _, err := Coerce(NewBool(true), KindDate); err == nil {
		t.Error("bool→date must error")
	}
}

func TestCommonKind(t *testing.T) {
	k, err := CommonKind(KindInt, KindFloat)
	if err != nil || k != KindFloat {
		t.Errorf("int,float → %v, %v", k, err)
	}
	k, err = CommonKind(KindNull, KindString)
	if err != nil || k != KindString {
		t.Errorf("null,string → %v, %v", k, err)
	}
	if _, err := CommonKind(KindString, KindInt); err == nil {
		t.Error("string,int must be incompatible")
	}
}

func TestIntervalParts(t *testing.T) {
	v := NewInterval(-14, 3)
	mo, dy := v.IntervalParts()
	if mo != -14 || dy != 3 {
		t.Errorf("IntervalParts = %d, %d", mo, dy)
	}
	neg, err := Neg(v)
	if err != nil {
		t.Fatal(err)
	}
	mo, dy = neg.IntervalParts()
	if mo != 14 || dy != -3 {
		t.Errorf("negated parts = %d, %d", mo, dy)
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{NewInt(1), NewString("x"), NullValue}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].I != 1 {
		t.Error("Clone must not share storage")
	}
	if !r.EqualNullSafe(Row{NewInt(1), NewString("x"), NewNull(KindInt)}) {
		t.Error("rows with equal values (incl. NULLs) must be null-safe equal")
	}
	if r.EqualNullSafe(Row{NewInt(1), NewString("x")}) {
		t.Error("rows of different widths are never equal")
	}
	ab := Concat(Row{NewInt(1)}, Row{NewInt(2)})
	if len(ab) != 2 || ab[0].I != 1 || ab[1].I != 2 {
		t.Errorf("Concat = %v", ab)
	}
	nr := NullRow([]Kind{KindInt, KindString})
	if !nr[0].Null || nr[0].K != KindInt || !nr[1].Null || nr[1].K != KindString {
		t.Errorf("NullRow = %v", nr)
	}
}

func TestRowHashProperty(t *testing.T) {
	// Rows equal under EqualNullSafe hash identically.
	f := func(a int64, s string, null bool) bool {
		v1 := NewInt(a)
		if null {
			v1 = NewNull(KindInt)
		}
		r1 := Row{v1, NewString(s)}
		r2 := Row{v1, NewString(s)}
		return r1.EqualNullSafe(r2) && r1.Hash() == r2.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	// Compare over ints embedded as int/float values is a total order.
	f := func(a, b int32) bool {
		x := NewInt(int64(a))
		y := NewFloat(float64(b))
		c1 := Compare(x, y)
		c2 := Compare(y, x)
		return c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatEdgeCases(t *testing.T) {
	inf := NewFloat(math.Inf(1))
	if Compare(inf, NewFloat(1e300)) != 1 {
		t.Error("+Inf must compare greater")
	}
	if !NewFloat(0).IsTrue() == false && NewFloat(0).IsTrue() {
		t.Error("floats are never boolean-true")
	}
}
