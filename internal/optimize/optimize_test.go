package optimize_test

import (
	"strings"
	"testing"

	"perm/internal/algebra"
	"perm/internal/analyze"
	"perm/internal/catalog"
	"perm/internal/optimize"
	"perm/internal/provrewrite"
	"perm/internal/sql"
	"perm/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	mk := func(name string, cols ...catalog.Column) {
		t.Helper()
		if _, err := cat.CreateTable(name, cols, false); err != nil {
			t.Fatal(err)
		}
	}
	mk("r",
		catalog.Column{Name: "a", Type: types.KindInt},
		catalog.Column{Name: "b", Type: types.KindString})
	mk("s",
		catalog.Column{Name: "a", Type: types.KindInt},
		catalog.Column{Name: "c", Type: types.KindInt})
	return cat
}

// compile analyzes (and, when the query asks for it, provenance-rewrites)
// a SELECT, then optimizes it.
func compile(t *testing.T, cat *catalog.Catalog, src string) *algebra.Query {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analyze.New(cat).AnalyzeSelect(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	q, err = provrewrite.RewriteTree(q, provrewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return optimize.Query(q)
}

// subqueryCount counts RTESubquery entries in the whole tree.
func subqueryCount(q *algebra.Query) int {
	n := 0
	for _, rte := range q.RangeTable {
		if rte.Kind == algebra.RTESubquery {
			n++
			n += subqueryCount(rte.Subquery)
		}
	}
	return n
}

func TestUnnestNestedSPJ(t *testing.T) {
	cat := testCatalog(t)
	q := compile(t, cat,
		`SELECT t1.a FROM (SELECT a, b FROM r WHERE a > 0) AS t1,
		        (SELECT a, c FROM s) AS t2 WHERE t1.a = t2.a`)
	if got := subqueryCount(q); got != 0 {
		t.Fatalf("optimized tree still holds %d subqueries:\n%v", got, q)
	}
	if len(q.RangeTable) != 2 {
		t.Fatalf("range table = %d entries, want 2 base relations", len(q.RangeTable))
	}
	for _, rte := range q.RangeTable {
		if rte.Kind != algebra.RTERelation {
			t.Fatalf("entry %q is not a base relation", rte.Alias)
		}
	}
	// The subquery's filter must have moved into the parent WHERE clause.
	found := false
	for _, c := range algebra.Conjuncts(q.Where) {
		if b, ok := c.(*algebra.BinOp); ok && b.Op == ">" {
			found = true
		}
	}
	if !found {
		t.Errorf("child WHERE filter not merged into parent: %v", q.Where)
	}
}

func TestUnnestDeepChain(t *testing.T) {
	cat := testCatalog(t)
	q := compile(t, cat,
		`SELECT x.a FROM (SELECT a FROM (SELECT a, b FROM (SELECT * FROM r) AS l1 WHERE a > 1) AS l2) AS x`)
	if got := subqueryCount(q); got != 0 {
		t.Fatalf("chain not fully flattened: %d subqueries remain", got)
	}
}

func TestUnnestKeepsAggregateBoundary(t *testing.T) {
	cat := testCatalog(t)
	q := compile(t, cat,
		`SELECT g.b FROM (SELECT b, count(*) AS n FROM r GROUP BY b) AS g WHERE g.n > 1`)
	// The aggregated subquery must survive; the filter on the aggregate
	// result must NOT be pushed below the aggregation.
	if len(q.RangeTable) != 1 || q.RangeTable[0].Kind != algebra.RTESubquery {
		t.Fatalf("aggregated subquery was merged away: %v", q)
	}
	sub := q.RangeTable[0].Subquery
	if !sub.HasAggs {
		t.Fatalf("subquery lost its aggregation")
	}
	if sub.Where != nil {
		t.Errorf("aggregate-result filter wrongly pushed into subquery WHERE: %v", sub.Where)
	}
}

func TestPushdownIntoAggregateOnGroupKey(t *testing.T) {
	cat := testCatalog(t)
	// The group-key predicate pushes below the aggregation; the then
	// pass-through wrapper collapses, leaving the aggregation as the root.
	q := compile(t, cat,
		`SELECT g.b FROM (SELECT b, count(*) AS n FROM r GROUP BY b) AS g WHERE g.b = 'x'`)
	if !q.HasAggs {
		t.Fatalf("expected collapsed aggregation root, got %v", q)
	}
	if q.Where == nil {
		t.Fatalf("group-key predicate was not pushed below the aggregation")
	}
	if q.RangeTable[0].Kind != algebra.RTERelation {
		t.Errorf("aggregation input should be the base relation: %v", q.RangeTable[0])
	}
}

func TestPushdownIntoSetOpBranches(t *testing.T) {
	cat := testCatalog(t)
	// The predicate distributes into every branch; the wrapper collapses,
	// leaving the set operation as the root.
	q := compile(t, cat,
		`SELECT u.a FROM (SELECT a FROM r UNION ALL SELECT a FROM s) AS u WHERE u.a > 2`)
	if !q.IsSetOp() {
		t.Fatalf("expected collapsed set-op root, got %v", q)
	}
	for _, rte := range q.RangeTable {
		if rte.Subquery.Where == nil {
			t.Errorf("branch %q did not receive the pushed predicate", rte.Alias)
		}
	}
}

func TestPruneUnusedColumns(t *testing.T) {
	cat := testCatalog(t)
	// The unused aggregate m is pruned; afterwards the wrapper is an
	// identity projection and collapses into the aggregation.
	q := compile(t, cat,
		`SELECT g.n FROM (SELECT b, count(*) AS n, min(a) AS m FROM r GROUP BY b) AS g`)
	if !q.HasAggs {
		t.Fatalf("expected collapsed aggregation root, got %v", q)
	}
	if len(q.TargetList) != 1 || q.TargetList[0].Name != "n" {
		t.Fatalf("target list = %v, want just n", q.TargetList)
	}
	if len(q.GroupBy) != 1 {
		t.Errorf("grouping must survive pruning: %v", q.GroupBy)
	}
}

func TestNoPruneUnderDistinct(t *testing.T) {
	cat := testCatalog(t)
	q := compile(t, cat,
		`SELECT d.a FROM (SELECT DISTINCT a, b FROM r) AS d`)
	// Dropping b would merge rows that differ only in b and change the
	// multiplicity of a values.
	sub := q.RangeTable[0].Subquery
	if len(sub.TargetList) != 2 {
		t.Fatalf("DISTINCT subquery was pruned: %v", sub.TargetList)
	}
}

func TestRedundantDistinctOverGroupBy(t *testing.T) {
	cat := testCatalog(t)
	q := compile(t, cat, `SELECT DISTINCT b, count(*) FROM r GROUP BY b`)
	if q.Distinct {
		t.Errorf("DISTINCT over grouped output with all keys projected should be dropped")
	}
	q = compile(t, cat, `SELECT DISTINCT count(*) FROM r GROUP BY b`)
	if !q.Distinct {
		t.Errorf("DISTINCT must survive when group keys are not projected")
	}
}

func TestIdentityWrapperCollapse(t *testing.T) {
	cat := testCatalog(t)
	q := compile(t, cat,
		`SELECT * FROM (SELECT b, count(*) AS n FROM r GROUP BY b) AS w`)
	if !q.HasAggs {
		t.Fatalf("identity wrapper over aggregation was not collapsed: %v", q)
	}
}

func TestOuterJoinNullableSideKeepsSemantics(t *testing.T) {
	cat := testCatalog(t)
	// The nullable-side subquery projects only Vars, so it may merge; its
	// WHERE must land in the join condition, not the parent WHERE.
	q := compile(t, cat,
		`SELECT r.a, t.c FROM r LEFT JOIN (SELECT a, c FROM s WHERE c > 100) AS t ON r.a = t.a`)
	if got := subqueryCount(q); got != 0 {
		t.Fatalf("nullable-side SPJ subquery not merged: %d remain", got)
	}
	if q.Where != nil {
		t.Fatalf("nullable-side filter leaked into parent WHERE: %v", q.Where)
	}
	join, ok := q.From[0].(*algebra.FromJoin)
	if !ok || join.Kind != algebra.JoinLeft {
		t.Fatalf("outer join structure lost: %T", q.From[0])
	}
	conds := algebra.Conjuncts(join.Cond)
	if len(conds) != 2 {
		t.Fatalf("join condition should carry the merged filter: %v", join.Cond)
	}
}

func TestProvenanceRewriteFlattens(t *testing.T) {
	cat := testCatalog(t)
	q := compile(t, cat,
		`SELECT PROVENANCE t1.a FROM (SELECT a, b FROM r WHERE a > 0) AS t1,
		        (SELECT a, c FROM s) AS t2 WHERE t1.a = t2.a`)
	if got := subqueryCount(q); got != 0 {
		t.Fatalf("rewritten provenance query not flattened: %d subqueries", got)
	}
	// All four provenance attributes must survive flattening.
	if len(q.ProvCols) != 4 {
		t.Fatalf("ProvCols = %v, want 4 entries", q.ProvCols)
	}
	for _, pc := range q.ProvCols {
		if !strings.HasPrefix(pc.Name, "prov_") {
			t.Errorf("provenance column %q lost its naming", pc.Name)
		}
	}
}

func TestAliasesStayUniqueAfterMerge(t *testing.T) {
	cat := testCatalog(t)
	q := compile(t, cat,
		`SELECT t1.a, t2.a FROM (SELECT a FROM r) AS t1, (SELECT a FROM r) AS t2`)
	seen := make(map[string]bool)
	for _, rte := range q.RangeTable {
		if seen[rte.Alias] {
			t.Fatalf("duplicate alias %q after merge", rte.Alias)
		}
		seen[rte.Alias] = true
	}
}

func TestOptimizeIsIdempotent(t *testing.T) {
	cat := testCatalog(t)
	for _, src := range []string{
		`SELECT t1.a FROM (SELECT a, b FROM r WHERE a > 0) AS t1`,
		`SELECT PROVENANCE b, count(*) FROM r GROUP BY b`,
		`SELECT a FROM r UNION SELECT a FROM s`,
	} {
		q := compile(t, cat, src)
		before := subqueryCount(q)
		q2 := optimize.Query(q)
		if got := subqueryCount(q2); got != before {
			t.Errorf("%s: second optimize changed the tree (%d -> %d subqueries)",
				src, before, got)
		}
	}
}
