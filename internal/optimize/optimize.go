// Package optimize implements a rule-based logical optimizer over
// analyzed (and provenance-rewritten) query trees. It runs between the
// provenance rewriter (package provrewrite) and the planner (package
// plan), normalizing the deeply nested subquery shells the paper's
// rewrite rules deliberately produce — the paper (§VI) relies on the
// PostgreSQL optimizer to flatten exactly these shapes before execution.
//
// Rules, applied to a fixpoint:
//
//   - Subquery unnesting: a range-table subquery that is a plain
//     select-project-join block is merged into its parent by substituting
//     its target expressions into the parent's expressions and splicing
//     its FROM clause into the parent's join tree.
//   - Predicate pushdown: single-entry WHERE conjuncts move through
//     subquery boundaries into the subquery's own WHERE clause (including
//     through set operations and, for grouping columns, aggregations).
//   - Projection pruning: target-list entries of a subquery that the
//     parent never references are removed, shrinking the rows carried
//     through intermediate projections.
//   - Redundant DISTINCT elimination and no-op projection collapse.
//
// Every rule is semantics-preserving on bag level, so results (including
// duplicate multiplicities and provenance attributes) are identical with
// the optimizer on or off; engine-level tests assert this over the full
// SQL-logic and rewrite-rule corpora.
package optimize

import (
	"sort"
	"strconv"

	"perm/internal/algebra"
)

// outputRT is the pseudo range-table index the analyzer uses for Vars
// that reference a query's own output columns (ORDER BY positions).
const outputRT = -1

// maxPasses bounds the fixpoint iteration; each rule strictly shrinks the
// tree, so real queries converge in a handful of passes.
const maxPasses = 32

// Stats provides optional base-table cardinalities for the join-tree
// canonicalization. When present, the implicit join list of every plain
// block is ordered by estimated cardinality (smallest first) instead of
// syntactic order, giving the planner's greedy join ordering a
// stats-driven starting point and deterministic tie-breaking.
type Stats interface {
	// TableRows returns the current row count of a base table.
	TableRows(name string) (float64, bool)
}

// Query optimizes the tree to a fixpoint and returns the (possibly
// replaced) root. The input is mutated in place.
func Query(q *algebra.Query) *algebra.Query { return QueryWithStats(q, nil) }

// QueryWithStats is Query with base-table statistics available to the
// cardinality-driven rules (join-list ordering).
func QueryWithStats(q *algebra.Query, st Stats) *algebra.Query {
	if q == nil {
		return nil
	}
	for pass := 0; pass < maxPasses; pass++ {
		var changed bool
		q, changed = optimizeNode(q, st)
		if !changed {
			break
		}
	}
	return q
}

// optimizeNode runs one bottom-up pass over the node: children first,
// then the local rules. It returns the possibly replaced node.
func optimizeNode(q *algebra.Query, st Stats) (*algebra.Query, bool) {
	changed := false
	for _, rte := range q.RangeTable {
		if rte.Subquery == nil {
			continue
		}
		sub, c := optimizeNode(rte.Subquery, st)
		rte.Subquery = sub
		changed = changed || c
	}
	q.VisitExprs(func(e algebra.Expr) {
		algebra.WalkExpr(e, func(x algebra.Expr) {
			if sl, ok := x.(*algebra.SubLink); ok && sl.Query != nil {
				sub, c := optimizeNode(sl.Query, st)
				sl.Query = sub
				changed = changed || c
			}
		})
	})
	if q.IsSetOp() {
		// Set-operation nodes are pure scaffolding over their branch
		// entries; the rules below only apply to plain nodes.
		return q, changed
	}
	if flattenInnerJoins(q) {
		changed = true
	}
	for unnestOne(q) {
		changed = true
	}
	if removeDeadRTEs(q) {
		changed = true
	}
	if pushDownPredicates(q) {
		changed = true
	}
	if pruneSubqueryColumns(q) {
		changed = true
	}
	if dropRedundantDistinct(q) {
		changed = true
	}
	if orderJoinList(q, st) {
		changed = true
	}
	if merged, ok := collapseIdentity(q); ok {
		return merged, true
	}
	return q, changed
}

// ---------------------------------------------------------------------------
// Stats-driven join-list ordering

// orderJoinList stable-sorts the implicit join list by estimated
// cardinality, smallest first. The list is commutable by construction
// (flattenInnerJoins only hoists inner/cross joins into it), so the
// reorder is semantics-preserving; it canonicalizes the order the
// planner's greedy join ordering starts from, so equally-costed plans no
// longer depend on how the rewriter happened to nest its shells.
func orderJoinList(q *algebra.Query, st Stats) bool {
	if st == nil || len(q.From) < 2 {
		return false
	}
	cards := make(map[algebra.FromItem]float64, len(q.From))
	for _, fi := range q.From {
		cards[fi] = fromItemCard(fi, q, st)
	}
	sorted := true
	for i := 1; i < len(q.From); i++ {
		if cards[q.From[i]] < cards[q.From[i-1]] {
			sorted = false
			break
		}
	}
	if sorted {
		return false
	}
	sort.SliceStable(q.From, func(i, j int) bool {
		return cards[q.From[i]] < cards[q.From[j]]
	})
	return true
}

// fromItemCard estimates the cardinality of one FROM item. Join trees
// (outer joins, whose shape is load-bearing) estimate as the product of
// their sides.
func fromItemCard(fi algebra.FromItem, q *algebra.Query, st Stats) float64 {
	switch n := fi.(type) {
	case *algebra.FromRef:
		if n.RT < len(q.RangeTable) {
			return rteCard(q.RangeTable[n.RT], st)
		}
	case *algebra.FromJoin:
		return fromItemCard(n.Left, q, st) * fromItemCard(n.Right, q, st)
	}
	return 1000
}

func rteCard(rte *algebra.RTE, st Stats) float64 {
	switch rte.Kind {
	case algebra.RTERelation:
		if rows, ok := st.TableRows(rte.RelName); ok {
			return rows + 1
		}
	case algebra.RTESubquery:
		return queryCard(rte.Subquery, st)
	case algebra.RTEValues:
		return float64(len(rte.Rows)) + 1
	}
	return 1000
}

// queryCard crudely estimates a subquery's output cardinality: product
// of its FROM items, damped per WHERE conjunct, collapsed by
// aggregation, capped by LIMIT. The planner re-estimates precisely; this
// only has to rank siblings.
func queryCard(q *algebra.Query, st Stats) float64 {
	if q == nil {
		return 1000
	}
	if q.IsSetOp() {
		total := 0.0
		for _, rte := range q.RangeTable {
			total += queryCard(rte.Subquery, st)
		}
		return total
	}
	card := 1.0
	for _, fi := range q.From {
		card *= fromItemCard(fi, q, st)
	}
	for range algebra.Conjuncts(q.Where) {
		card *= 0.5
	}
	if q.HasAggs {
		if len(q.GroupBy) == 0 {
			card = 1
		} else {
			card = card/2 + 1
		}
	}
	if c, ok := q.Limit.(*algebra.Const); ok && !c.Val.Null && float64(c.Val.I) < card {
		card = float64(c.Val.I)
	}
	if card < 1 {
		card = 1
	}
	return card
}

// ---------------------------------------------------------------------------
// Join-tree canonicalization

// flattenInnerJoins hoists top-level inner/cross join trees of the FROM
// clause into the implicit join list, moving their ON conditions into
// WHERE. An inner join's condition is equivalent to a WHERE conjunct, and
// the planner's greedy join ordering considers every order over the
// implicit list rather than the literal tree. Outer-join subtrees are
// kept intact (their shape is semantically load-bearing).
func flattenInnerJoins(q *algebra.Query) bool {
	changed := false
	var items []algebra.FromItem
	var conds []algebra.Expr
	var flatten func(fi algebra.FromItem)
	flatten = func(fi algebra.FromItem) {
		if j, ok := fi.(*algebra.FromJoin); ok &&
			(j.Kind == algebra.JoinInner || j.Kind == algebra.JoinCross) {
			flatten(j.Left)
			flatten(j.Right)
			if j.Cond != nil {
				conds = append(conds, j.Cond)
			}
			changed = true
			return
		}
		items = append(items, fi)
	}
	for _, fi := range q.From {
		flatten(fi)
	}
	if !changed {
		return false
	}
	q.From = items
	q.Where = algebra.AndAll(append([]algebra.Expr{q.Where}, conds...))
	return true
}

// ---------------------------------------------------------------------------
// Subquery unnesting

// isSimpleSPJ reports whether the node is a plain select-project-join
// block that can be merged into a parent: no aggregation, grouping,
// HAVING, DISTINCT, set operation, ordering or limit, and a non-empty
// FROM clause.
func isSimpleSPJ(q *algebra.Query) bool {
	return q != nil && !q.IsSetOp() && !q.HasAggs && len(q.GroupBy) == 0 &&
		q.Having == nil && !q.Distinct && q.Limit == nil && q.Offset == nil &&
		len(q.OrderBy) == 0 && len(q.From) > 0
}

// refSite describes where a range-table entry sits in the FROM forest:
// how many outer-join nullable boundaries separate it from the top, and
// (when exactly one does) the join whose condition gates it.
type refSite struct {
	crossings int
	gate      *algebra.FromJoin
}

func locateRef(items []algebra.FromItem, rt int) *refSite {
	for _, fi := range items {
		if s := locateIn(fi, rt); s != nil {
			return s
		}
	}
	return nil
}

func locateIn(fi algebra.FromItem, rt int) *refSite {
	switch n := fi.(type) {
	case *algebra.FromRef:
		if n.RT == rt {
			return &refSite{}
		}
	case *algebra.FromJoin:
		if s := locateIn(n.Left, rt); s != nil {
			if n.Kind == algebra.JoinRight || n.Kind == algebra.JoinFull {
				s.crossings++
				s.gate = n
			}
			return s
		}
		if s := locateIn(n.Right, rt); s != nil {
			if n.Kind == algebra.JoinLeft || n.Kind == algebra.JoinFull {
				s.crossings++
				s.gate = n
			}
			return s
		}
	}
	return nil
}

// allVarTargets reports whether every target entry is a plain column
// reference. Required when merging into the nullable side of an outer
// join: a Var passes the join's null-extension through unchanged, while
// e.g. a constant would stop evaluating to NULL for unmatched rows.
func allVarTargets(q *algebra.Query) bool {
	for _, te := range q.TargetList {
		if _, ok := te.Expr.(*algebra.Var); !ok {
			return false
		}
	}
	return true
}

// unnestOne merges the first eligible subquery entry into q and reports
// whether it did. Merging renumbers entries, so the caller restarts the
// scan after every merge.
func unnestOne(q *algebra.Query) bool {
	for rt, rte := range q.RangeTable {
		if rte.Kind != algebra.RTESubquery || !isSimpleSPJ(rte.Subquery) {
			continue
		}
		site := locateRef(q.From, rt)
		if site == nil || site.crossings > 1 {
			continue
		}
		if site.crossings == 1 &&
			(site.gate.Kind == algebra.JoinFull || !allVarTargets(rte.Subquery)) {
			continue
		}
		mergeSubquery(q, rt, site)
		return true
	}
	return false
}

// mergeSubquery splices the child block at range-table index rt into q:
// the child's entries join q's range table, parent references to the
// child's outputs are replaced by the child's target expressions, the
// child's FROM clause takes the place of the subquery reference, and the
// child's WHERE clause conjoins into q's WHERE (or, on the nullable side
// of an outer join, into that join's condition).
func mergeSubquery(q *algebra.Query, rt int, site *refSite) {
	child := q.RangeTable[rt].Subquery
	base := len(q.RangeTable)

	seen := make(map[string]bool, base)
	for i, r := range q.RangeTable {
		if i != rt {
			seen[r.Alias] = true
		}
	}
	for _, r := range child.RangeTable {
		r.Alias = uniqueAlias(r.Alias, seen)
		q.RangeTable = append(q.RangeTable, r)
	}

	shift := func(e algebra.Expr) algebra.Expr {
		return algebra.SubstituteVars(e, func(v *algebra.Var) algebra.Expr {
			if v.RT < 0 {
				return nil
			}
			c := *v
			c.RT += base
			return &c
		})
	}

	targets := make([]algebra.Expr, len(child.TargetList))
	for i, te := range child.TargetList {
		targets[i] = shift(te.Expr)
	}
	q.MapOwnExprs(func(x algebra.Expr) algebra.Expr {
		if v, ok := x.(*algebra.Var); ok && v.RT == rt {
			return algebra.CopyExpr(targets[v.Col])
		}
		return x
	})

	shifted := make([]algebra.FromItem, len(child.From))
	for i, fi := range child.From {
		shifted[i] = shiftFromItem(fi, base, shift)
	}
	spliced := false
	for i, fi := range q.From {
		// A direct member of the implicit join list splices in as more
		// list members, keeping the planner free to greedy-order them.
		if r, ok := fi.(*algebra.FromRef); ok && r.RT == rt {
			q.From = append(q.From[:i], append(shifted, q.From[i+1:]...)...)
			spliced = true
			break
		}
	}
	if !spliced {
		// Inside a join tree the child must stay a single unit; fold its
		// items into a cross-join chain at the reference's position.
		childFrom := shifted[0]
		for _, sh := range shifted[1:] {
			childFrom = &algebra.FromJoin{Kind: algebra.JoinCross, Left: childFrom, Right: sh}
		}
		algebra.ReplaceFromRef(q.From, rt, childFrom)
	}

	if child.Where != nil {
		where := shift(child.Where)
		if site.crossings == 1 {
			site.gate.Cond = algebra.AndAll([]algebra.Expr{site.gate.Cond, where})
		} else {
			q.Where = algebra.AndAll([]algebra.Expr{q.Where, where})
		}
	}
	// The merged entry is now unreferenced; removeDeadRTEs reclaims it.
}

func shiftFromItem(fi algebra.FromItem, base int, shift func(algebra.Expr) algebra.Expr) algebra.FromItem {
	switch n := fi.(type) {
	case *algebra.FromRef:
		return &algebra.FromRef{RT: n.RT + base}
	case *algebra.FromJoin:
		out := &algebra.FromJoin{
			Kind:  n.Kind,
			Left:  shiftFromItem(n.Left, base, shift),
			Right: shiftFromItem(n.Right, base, shift),
		}
		if n.Cond != nil {
			out.Cond = shift(n.Cond)
		}
		return out
	default:
		return fi
	}
}

func uniqueAlias(alias string, seen map[string]bool) string {
	out := alias
	for n := 2; seen[out]; n++ {
		out = alias + "_" + strconv.Itoa(n)
	}
	seen[out] = true
	return out
}

// removeDeadRTEs drops range-table entries no longer referenced by the
// FROM forest or any expression, renumbering the survivors.
func removeDeadRTEs(q *algebra.Query) bool {
	if q.IsSetOp() {
		return false
	}
	live := make(map[int]bool, len(q.RangeTable))
	for _, fi := range q.From {
		algebra.FromRTs(fi, live)
	}
	for rt := range q.ColumnUses() {
		live[rt] = true
	}
	if len(live) == len(q.RangeTable) {
		return false
	}
	remap := make([]int, len(q.RangeTable))
	var kept []*algebra.RTE
	for i, rte := range q.RangeTable {
		if live[i] {
			remap[i] = len(kept)
			kept = append(kept, rte)
		} else {
			remap[i] = -1
		}
	}
	q.RangeTable = kept
	q.MapOwnExprs(func(x algebra.Expr) algebra.Expr {
		if v, ok := x.(*algebra.Var); ok && v.RT >= 0 {
			c := *v
			c.RT = remap[v.RT]
			return &c
		}
		return x
	})
	algebra.RenumberFrom(q.From, remap)
	return true
}

// ---------------------------------------------------------------------------
// Predicate pushdown

// pushDownPredicates moves WHERE conjuncts that reference exactly one
// subquery entry into that subquery's own WHERE clause. Entries on the
// nullable side of an outer join are excluded (the filter must see the
// null-extended rows), as are conjuncts with sublinks (kept above joins
// so subplans are evaluated as rarely as possible).
func pushDownPredicates(q *algebra.Query) bool {
	if q.Where == nil {
		return false
	}
	changed := false
	var kept []algebra.Expr
	for _, c := range algebra.Conjuncts(q.Where) {
		rt, ok := soleRT(c)
		if !ok || rt >= len(q.RangeTable) || algebra.ContainsSubLink(c) {
			kept = append(kept, c)
			continue
		}
		rte := q.RangeTable[rt]
		if rte.Kind != algebra.RTESubquery {
			kept = append(kept, c)
			continue
		}
		site := locateRef(q.From, rt)
		if site == nil || site.crossings != 0 || !pushInto(rte.Subquery, c, rt, true) {
			kept = append(kept, c)
			continue
		}
		pushInto(rte.Subquery, c, rt, false)
		changed = true
	}
	if changed {
		q.Where = algebra.AndAll(kept)
	}
	return changed
}

// soleRT returns the single non-negative range-table index referenced by
// the expression, if there is exactly one.
func soleRT(e algebra.Expr) (int, bool) {
	rts := algebra.VarsUsed(e)
	if len(rts) != 1 {
		return 0, false
	}
	for rt := range rts {
		if rt < 0 {
			return 0, false
		}
		return rt, true
	}
	return 0, false
}

// pushInto pushes a parent predicate over entry rt into the child's WHERE
// clause. Set-operation children receive the predicate in every branch
// (filters distribute over union, intersection and difference);
// aggregated children accept only predicates over projected grouping
// expressions. With dryRun the eligibility check runs without mutating,
// which the all-branches-or-nothing set-operation case needs.
func pushInto(child *algebra.Query, pred algebra.Expr, rt int, dryRun bool) bool {
	if child == nil || child.Limit != nil || child.Offset != nil {
		return false
	}
	if child.IsSetOp() {
		for _, rte := range child.RangeTable {
			if rte.Kind != algebra.RTESubquery || !pushInto(rte.Subquery, pred, rt, true) {
				return false
			}
		}
		if !dryRun {
			for _, rte := range child.RangeTable {
				pushInto(rte.Subquery, pred, rt, false)
			}
		}
		return true
	}
	if child.HasAggs {
		ok := true
		algebra.WalkExpr(pred, func(x algebra.Expr) {
			v, isVar := x.(*algebra.Var)
			if !isVar || v.RT != rt || !ok {
				return
			}
			te := child.TargetList[v.Col].Expr
			if algebra.ContainsAgg(te) || !exprInList(te, child.GroupBy) {
				ok = false
			}
		})
		if !ok {
			return false
		}
	}
	if dryRun {
		return true
	}
	mapped := algebra.SubstituteVars(pred, func(v *algebra.Var) algebra.Expr {
		if v.RT != rt {
			return nil
		}
		return algebra.CopyExpr(child.TargetList[v.Col].Expr)
	})
	child.Where = algebra.AndAll([]algebra.Expr{child.Where, mapped})
	return true
}

func exprInList(e algebra.Expr, list []algebra.Expr) bool {
	for _, l := range list {
		if algebra.EqualExpr(e, l) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Projection pruning

// pruneSubqueryColumns trims target-list entries of subquery entries that
// the parent never references. DISTINCT and set-operation children are
// exempt (dropping a column there changes row multiplicities); the root's
// own target list is never touched since pruning is always parent-driven.
func pruneSubqueryColumns(q *algebra.Query) bool {
	uses := q.ColumnUses()
	changed := false
	for rt, rte := range q.RangeTable {
		if rte.Kind != algebra.RTESubquery {
			continue
		}
		child := rte.Subquery
		if child == nil || child.IsSetOp() || child.Distinct {
			continue
		}
		used := make(map[int]bool, len(uses[rt]))
		for col := range uses[rt] {
			used[col] = true
		}
		// ORDER BY entries naming output positions pin those columns.
		for _, si := range child.OrderBy {
			if v, ok := si.Expr.(*algebra.Var); ok && v.RT == outputRT {
				used[v.Col] = true
			}
		}
		if len(used) == 0 {
			used[0] = true // keep one column: the entry still drives cardinality
		}
		if len(used) >= len(child.TargetList) {
			continue
		}
		remap := make([]int, len(child.TargetList))
		var newTL []algebra.TargetEntry
		for i, te := range child.TargetList {
			if used[i] {
				remap[i] = len(newTL)
				newTL = append(newTL, te)
			} else {
				remap[i] = -1
			}
		}
		child.TargetList = newTL
		for i := range child.OrderBy {
			if v, ok := child.OrderBy[i].Expr.(*algebra.Var); ok && v.RT == outputRT {
				nv := *v
				nv.Col = remap[v.Col]
				child.OrderBy[i].Expr = &nv
			}
		}
		child.ProvCols = remapProvCols(child.ProvCols, remap)
		rte.ProvCols = remapProvCols(rte.ProvCols, remap)
		rte.Cols = child.Schema()
		q.MapOwnExprs(func(x algebra.Expr) algebra.Expr {
			if v, ok := x.(*algebra.Var); ok && v.RT == rt {
				c := *v
				c.Col = remap[v.Col]
				return &c
			}
			return x
		})
		changed = true
	}
	return changed
}

func remapProvCols(pcs []algebra.ProvCol, remap []int) []algebra.ProvCol {
	if pcs == nil {
		return nil
	}
	out := pcs[:0]
	for _, pc := range pcs {
		if pc.Col < len(remap) && remap[pc.Col] >= 0 {
			out = append(out, algebra.ProvCol{Col: remap[pc.Col], Name: pc.Name})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// DISTINCT elimination and identity collapse

// dropRedundantDistinct clears the DISTINCT flag when the input rows are
// provably pairwise distinct already: a grouped aggregation that projects
// every grouping expression, or a pass-through projection covering every
// column of a single already-distinct subquery.
func dropRedundantDistinct(q *algebra.Query) bool {
	if !q.Distinct {
		return false
	}
	if q.HasAggs && len(q.GroupBy) > 0 && groupKeysProjected(q) {
		q.Distinct = false
		return true
	}
	if q.HasAggs || len(q.GroupBy) > 0 || len(q.From) != 1 {
		return false
	}
	fr, ok := q.From[0].(*algebra.FromRef)
	if !ok {
		return false
	}
	rte := q.RangeTable[fr.RT]
	if rte.Kind != algebra.RTESubquery || !distinctOutput(rte.Subquery) {
		return false
	}
	covered := make(map[int]bool)
	for _, te := range q.TargetList {
		if v, ok := te.Expr.(*algebra.Var); ok && v.RT == fr.RT {
			covered[v.Col] = true
		}
	}
	if len(covered) < len(rte.Cols) {
		return false
	}
	q.Distinct = false
	return true
}

func groupKeysProjected(q *algebra.Query) bool {
	for _, g := range q.GroupBy {
		found := false
		for _, te := range q.TargetList {
			if algebra.EqualExpr(te.Expr, g) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// distinctOutput reports whether the node's output rows are provably
// pairwise distinct.
func distinctOutput(q *algebra.Query) bool {
	switch {
	case q == nil:
		return false
	case q.IsSetOp():
		return !q.SetOp.All // set-semantics result is deduplicated at the top
	case q.Distinct:
		return true
	case q.HasAggs && len(q.GroupBy) == 0:
		return true // single row
	case q.HasAggs && groupKeysProjected(q):
		return true // one row per group, all keys projected
	default:
		return false
	}
}

// collapseIdentity replaces a bare pass-through projection (SELECT every
// column of a single subquery, in order, with no other clauses) with the
// subquery itself, keeping the wrapper's column names, provenance list
// and ordering.
func collapseIdentity(q *algebra.Query) (*algebra.Query, bool) {
	if q.IsSetOp() || q.HasAggs || q.Distinct || q.Where != nil ||
		len(q.GroupBy) > 0 || q.Having != nil || q.Limit != nil ||
		q.Offset != nil || len(q.From) != 1 {
		return q, false
	}
	fr, ok := q.From[0].(*algebra.FromRef)
	if !ok {
		return q, false
	}
	rte := q.RangeTable[fr.RT]
	if rte.Kind != algebra.RTESubquery {
		return q, false
	}
	child := rte.Subquery
	if len(q.TargetList) != len(child.TargetList) {
		return q, false
	}
	for i, te := range q.TargetList {
		v, ok := te.Expr.(*algebra.Var)
		if !ok || v.RT != fr.RT || v.Col != i {
			return q, false
		}
	}
	if len(q.OrderBy) > 0 {
		// The wrapper's ordering becomes the child's; a child LIMIT would
		// have to apply before that ordering, which the child node cannot
		// express.
		if child.Limit != nil || child.Offset != nil {
			return q, false
		}
		lifted := make([]algebra.SortItem, 0, len(q.OrderBy))
		for _, si := range q.OrderBy {
			v, ok := si.Expr.(*algebra.Var)
			if !ok || (v.RT != outputRT && v.RT != fr.RT) {
				return q, false
			}
			lifted = append(lifted, algebra.SortItem{
				Expr: &algebra.Var{RT: outputRT, Col: v.Col, Name: v.Name, Typ: v.Typ},
				Desc: si.Desc,
			})
		}
		child.OrderBy = lifted
	}
	for i := range child.TargetList {
		child.TargetList[i].Name = q.TargetList[i].Name
	}
	child.ProvCols = q.ProvCols
	return child, true
}
