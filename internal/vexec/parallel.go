// Morsel-driven intra-query parallelism. A parallel plan segment is the
// same vectorized subtree planned N times (compiled expressions hold
// per-instance scratch state, so workers can never share one tree); the
// single "driver" columnar scan of every replica draws morsels — small
// contiguous batch ranges of the shared columnar snapshot — from one
// atomic dispatcher, while every other scan in the replica (join build
// sides, subquery inputs) reads its snapshot in full. Worker outputs
// carry a sequence tag derived from (morsel, position) and merge back in
// exactly the order the serial plan would have produced:
//
//   - Exchange streams copied worker batches through channels and emits
//     them in tag order (the serial stream, byte for byte).
//   - ParallelAgg runs one partial HashAgg per worker, flushes every
//     worker's groups through the Grace partition machinery, merges the
//     partials partition-wise with the accumulators' associative
//     mergeState, and replays the seq-ordered output merge.
//   - ParallelSort runs one VecSort per worker over seq-tagged input
//     (the hidden ordinal is the final sort key) and k-way merges the
//     sorted worker streams, dropping the ordinal on emission.
//
// Memory: every replica is planned with its own spill reservations
// against the session budget, so parallelism composes with spill instead
// of multiplying the footprint. Pooling: batches cross goroutines only
// through Exchange, which copies live lanes into fresh unpooled vectors;
// everything else inside a worker keeps the usual single-goroutine
// consumer-abandons-before-Next discipline, and the barrier (WaitGroup)
// in ParallelAgg/ParallelSort orders worker state before the
// coordinator's merge reads it.
package vexec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"perm/internal/exec"
	"perm/internal/fault"
	"perm/internal/obs"
	"perm/internal/spill"
	"perm/internal/types"
	"perm/internal/vector"
)

// morselRows is the dispatch granularity in rows. It is a multiple of
// vector.BatchSize, so morsel boundaries stay batch- and bitmap-aligned
// (ColScan windows require 64-lane alignment).
const morselRows = 2 * vector.BatchSize

// ParallelMinRows is the smallest driver scan worth parallelizing: below
// two morsels per worker pair the dispatch and merge overhead dominates.
const ParallelMinRows = 2 * morselRows

// seqShift splits a sequence tag into morsel number (high bits) and
// position within the morsel's output stream (low 40 bits; a morsel is
// at most 2048 source rows, so even a join fan-out of half a billion per
// source row cannot overflow the field).
const seqShift = 40

// Morsels hands out contiguous row ranges of a shared columnar snapshot
// to competing worker scans. grab is a single atomic increment, so the
// dispatcher itself never becomes a contention point.
type Morsels struct {
	Rows int
	next atomic.Int64

	// AQ, when set, receives per-morsel progress for the active-query
	// registry (perm_stat_activity's morsels claimed/total columns).
	AQ *obs.ActiveQuery
}

// Total returns how many morsels one full pass over the snapshot
// dispatches.
func (m *Morsels) Total() int64 {
	return int64((m.Rows + morselRows - 1) / morselRows)
}

// NewMorsels returns a dispatcher over a snapshot of rows rows.
func NewMorsels(rows int) *Morsels { return &Morsels{Rows: rows} }

// Reset rewinds the dispatcher (called by the coordinating operator's
// Open, before worker goroutines start).
func (m *Morsels) Reset() { m.next.Store(0) }

// grab claims the next morsel, clamped to limit (the claiming scan's own
// row count — a belt-and-suspenders guard should a replica ever see a
// different snapshot). ok=false means the snapshot is exhausted.
func (m *Morsels) grab(limit int) (seq int64, lo, hi int, ok bool) {
	if limit > m.Rows {
		limit = m.Rows
	}
	s := m.next.Add(1) - 1
	lo = int(s) * morselRows
	if lo >= limit {
		return 0, 0, 0, false
	}
	hi = lo + morselRows
	if hi > limit {
		hi = limit
	}
	obs.MorselsDispatched.Inc()
	m.AQ.MorselClaimed()
	return s, lo, hi, true
}

// ---------------------------------------------------------------------------
// MorselTap

// TagSource reports which morsel band the most recently emitted batch of
// a spine node belongs to. The driver scan is the canonical source (its
// current morsel); a spine hash join that went Grace re-derives bands
// from the sequence tags it stored at probe time, because by the time it
// emits, the scan has long finished. Streaming spine operators (filters,
// projections, nested-loop joins, in-memory hash joins) stay transparent:
// they drain every output of one input batch before pulling the next, so
// the nearest TagSource below them is always current.
type TagSource interface {
	CurrentBand() int64
}

// MorselTap sits on a worker pipeline and tracks the global serial-order
// position of every batch flowing through it: Base() after a Next is
// band<<seqShift | rows-already-emitted-for-that-band. Within one worker
// each surfaced batch derives entirely from one morsel band of the tag
// source, so ordering batches by Base replays the serial stream exactly.
type MorselTap struct {
	Input Node
	Src   TagSource

	cur  int64
	pos  int64
	base int64
}

// NewMorselTap returns a tap over input, reading morsel bands from the
// subtree's tag source (the driver scan, or the topmost spine join).
func NewMorselTap(input Node, src TagSource) *MorselTap {
	return &MorselTap{Input: input, Src: src}
}

func (t *MorselTap) Open() error {
	t.cur, t.pos, t.base = -1, 0, 0
	return t.Input.Open()
}

func (t *MorselTap) Next() (*vector.Batch, error) {
	b, err := t.Input.Next()
	if b == nil || err != nil {
		return b, err
	}
	if band := t.Src.CurrentBand(); band != t.cur {
		t.cur, t.pos = band, 0
	}
	t.base = t.cur<<seqShift | t.pos
	t.pos += int64(len(resolveSel(b, b.Sel)))
	return b, nil
}

func (t *MorselTap) Close() error { return t.Input.Close() }

// Base returns the sequence tag of the batch most recently returned by
// Next: the global ordinal of its first live lane.
func (t *MorselTap) Base() int64 { return t.base }

// copyBatch materializes the live lanes of a batch into fresh unpooled
// vectors, detaching it from the producer's recyclable buffers so it can
// cross the Exchange channel.
func copyBatch(b *vector.Batch) *vector.Batch {
	lanes := resolveSel(b, b.Sel)
	cols := make([]*vector.Vec, len(b.Cols))
	for j, c := range b.Cols {
		nc := vector.NewVec(c.Kind, 0)
		nc.AppendLanes(c, lanes)
		cols[j] = nc
	}
	return &vector.Batch{N: len(lanes), Cols: cols}
}

// ---------------------------------------------------------------------------
// Exchange

// exItem is one tagged worker emission: a copied batch, or the worker's
// terminal error (tag -1 for an Open failure, which must surface before
// any data).
type exItem struct {
	tag int64
	b   *vector.Batch
	err error
}

// Exchange runs N replicated pipelines on their own goroutines and
// re-emits their batches in sequence-tag order, reproducing the serial
// plan's output stream byte for byte. Worker errors are tagged like data
// and surface exactly when the serial plan would have reached them.
type Exchange struct {
	obs.Card
	Workers []*MorselTap
	Disp    *Morsels

	chans  []chan exItem
	heads  []*exItem
	done   []bool
	stop   chan struct{}
	wg     sync.WaitGroup
	err    error
	closed bool
}

// NewExchange builds an exchange over the replicated subtree roots, each
// driven by its driver scan and tagged from its spine tag source; all
// drivers are attached to one shared morsel dispatcher.
func NewExchange(workers []Node, drivers []*ColScan, srcs []TagSource, disp *Morsels) *Exchange {
	ex := &Exchange{Workers: make([]*MorselTap, len(workers)), Disp: disp}
	for i, w := range workers {
		ex.Workers[i] = NewMorselTap(w, srcs[i])
		drivers[i].SetMorselSource(disp)
	}
	return ex
}

func (e *Exchange) Open() error {
	e.Disp.Reset()
	e.chans = make([]chan exItem, len(e.Workers))
	e.heads = make([]*exItem, len(e.Workers))
	e.done = make([]bool, len(e.Workers))
	e.stop = make(chan struct{})
	e.err = nil
	e.closed = false
	for i := range e.Workers {
		e.chans[i] = make(chan exItem, 2)
		e.wg.Add(1)
		go e.run(i)
	}
	return nil
}

func (e *Exchange) run(i int) {
	defer e.wg.Done()
	defer close(e.chans[i])
	tap := e.Workers[i]
	opened := false
	// The recover defer runs before the close defer above (LIFO), so a
	// panicking worker still sends its error item on an open channel: the
	// k-way merge surfaces one error instead of deadlocking, and the
	// worker's subtree is closed under a guard so its reservations and
	// spill files are released even when the panic left it inconsistent.
	defer func() {
		p := recover()
		if opened {
			closeQuietly(tap)
		}
		if p != nil {
			obs.PanicsRecovered.Inc()
			obs.Events.Record(obs.EventPanicRecovered, "", "", fmt.Sprintf("parallel worker panicked: %v", p))
			e.send(i, exItem{tag: -1, err: fmt.Errorf("parallel worker panicked: %v", p)})
		}
	}()
	if err := tap.Open(); err != nil {
		// A failed Open never sees a matching Close (the engine-wide
		// convention): the subtree unwound itself.
		e.send(i, exItem{tag: -1, err: err})
		return
	}
	opened = true
	for {
		if err := fault.Failure(fault.PointWorkerPanic); err != nil {
			panic(err)
		}
		b, err := tap.Next()
		if err != nil {
			e.send(i, exItem{tag: tap.Base(), err: err})
			return
		}
		if b == nil {
			return
		}
		if !e.send(i, exItem{tag: tap.Base(), b: copyBatch(b)}) {
			return
		}
	}
}

// closeQuietly closes a worker subtree swallowing both errors and
// panics: cleanup of a worker that already failed must not mask the
// original error or take the process down with a secondary crash.
func closeQuietly(n Node) {
	defer func() { _ = recover() }()
	n.Close() //nolint:errcheck — worker-local unwinding
}

func (e *Exchange) send(i int, it exItem) bool {
	select {
	case e.chans[i] <- it:
		return true
	case <-e.stop:
		return false
	}
}

func (e *Exchange) Next() (*vector.Batch, error) {
	if e.err != nil {
		return nil, e.err
	}
	// Refill the head slot of every live worker, then emit the smallest
	// tag. Blocking on a slow worker is required for correctness: until
	// every live worker has shown its next tag, the global minimum is
	// unknown.
	min := -1
	for i := range e.chans {
		if e.heads[i] == nil && !e.done[i] {
			it, ok := <-e.chans[i]
			if !ok {
				e.done[i] = true
				continue
			}
			h := it
			e.heads[i] = &h
		}
		if e.heads[i] != nil && (min < 0 || e.heads[i].tag < e.heads[min].tag) {
			min = i
		}
	}
	if min < 0 {
		return nil, nil
	}
	head := e.heads[min]
	e.heads[min] = nil
	if head.err != nil {
		e.err = head.err
		return nil, e.err
	}
	return head.b, nil
}

func (e *Exchange) Close() error {
	if e.stop == nil || e.closed {
		return nil
	}
	e.closed = true
	close(e.stop)
	for i := range e.chans {
		for range e.chans[i] { //nolint:revive — drain so senders unblock
		}
	}
	e.wg.Wait()
	e.heads, e.chans, e.done = nil, nil, nil
	return nil
}

// ---------------------------------------------------------------------------
// ParallelAgg

// ParallelAgg coordinates N partial hash aggregations. Workers drain
// concurrently, each under its own reservation, spilling independently
// if its share of the group table outgrows the budget. When every worker
// stayed in memory the coordinator absorbs their live tables into
// worker 0 (the accumulators' associative mergeState; a group's sequence
// number is the minimum first-appearance ordinal over all workers) and
// emits in sequence order — no disk I/O, so unbudgeted sessions never
// spill just because they ran parallel. If any worker spilled, all
// tables are flushed as partial records and partition runs of the same
// index merge across workers, streaming through the same seq merge the
// serial spill path uses. Only exactly-mergeable aggregates are planned
// this way (the planner keeps float SUM/AVG accumulation serial), so
// either path is bit-identical to a single-threaded pass.
type ParallelAgg struct {
	obs.Card
	Workers []*HashAgg
	Disp    *Morsels

	merger  *seqMerger
	outRuns []*spill.Run
	inMem   bool // merged in memory: emit from Workers[0]'s table
}

// NewParallelAgg wires the worker aggregations: each gets a morsel tap
// on its input (the source of global-order sequence numbers), partial
// mode, and its driver scan attached to the shared dispatcher.
func NewParallelAgg(workers []*HashAgg, drivers []*ColScan, srcs []TagSource, disp *Morsels) *ParallelAgg {
	for i, w := range workers {
		tap := NewMorselTap(w.Input, srcs[i])
		w.Input = tap
		w.Tap = tap
		w.partial = true
		drivers[i].SetMorselSource(disp)
	}
	return &ParallelAgg{Workers: workers, Disp: disp}
}

func (pa *ParallelAgg) Open() error {
	pa.Disp.Reset()
	pa.merger = nil
	pa.inMem = false
	closeRuns(pa.outRuns)
	pa.outRuns = nil
	errs := openConcurrently(len(pa.Workers), func(i int) error { return pa.Workers[i].Open() })
	if err := firstError(errs); err != nil {
		closeAfterOpen(errs, func(i int) error { return pa.Workers[i].Close() })
		return err
	}
	h0 := pa.Workers[0]
	spilled := false
	for _, w := range pa.Workers {
		if w.hasPartRuns() {
			spilled = true
			break
		}
	}
	if !spilled {
		// Every worker's table fit in memory: absorb them into worker 0
		// and finalize in global first-appearance order. This also covers
		// the empty input (a grouped aggregate emits nothing, a global
		// aggregate owes its default row — finishInMemOrdered delegates).
		for _, w := range pa.Workers[1:] {
			h0.absorb(w)
		}
		h0.finishInMemOrdered()
		pa.inMem = true
		return nil
	}
	// Mixed: at least one worker spilled, so the merge happens on disk.
	// Flush the still-live tables to the same partial-record form.
	for _, w := range pa.Workers {
		if err := w.flushPartialRuns(); err != nil {
			for _, ww := range pa.Workers {
				ww.Close() //nolint:errcheck — unwinding a failed Open
			}
			return err
		}
	}
	// Pair up partition runs across workers: same partition index = same
	// key hash slice, so a group's partials from every worker meet in one
	// merge table.
	var sets [][]*spill.Run
	for p := 0; p < spillPartitions; p++ {
		var group []*spill.Run
		for _, w := range pa.Workers {
			if r := w.partRuns[p]; r != nil {
				group = append(group, r)
				w.partRuns[p] = nil
			}
		}
		if len(group) > 0 {
			sets = append(sets, group)
		}
	}
	if len(sets) == 0 {
		if len(h0.Groups) == 0 {
			h0.finishInMem()
			pa.inMem = true
		}
		return nil
	}
	resultKinds := make([]types.Kind, len(h0.Aggs))
	for ai := range h0.Aggs {
		resultKinds[ai] = h0.Aggs[ai].ResultKind
	}
	outs, err := processGroupPartitionSets(h0.Spill, sets, h0.groupKinds, h0, func(res spill.Resources,
		acc *colAccumulator, seqs []int64, order []int32) (*spill.Run, error) {
		if acc.n == 0 {
			return nil, nil
		}
		extraKinds := append(append([]types.Kind{}, resultKinds...), types.KindInt)
		return writeGroupRun(res, acc, order, extraKinds, func(g int32, extra []*vector.Vec) {
			for ai := range h0.accs {
				appendValue(extra[ai], h0.accs[ai].finalize(int(g)))
			}
			appendI(extra[len(extra)-1], seqs[g])
		})
	})
	if err == nil {
		pa.outRuns = outs
		width := len(h0.groupKinds) + len(h0.Aggs)
		pa.merger, err = newSeqMerger(outs, width, -1, width)
	}
	if err != nil {
		// A failed Open gets no Close from the parent; unwind the workers
		// (reservations, leftover runs) here.
		for _, w := range pa.Workers {
			w.Close() //nolint:errcheck
		}
		closeRuns(pa.outRuns)
		pa.outRuns = nil
		return err
	}
	return nil
}

func (pa *ParallelAgg) Next() (*vector.Batch, error) {
	if pa.inMem {
		return pa.Workers[0].Next()
	}
	if pa.merger == nil {
		return nil, nil
	}
	return pa.merger.next()
}

func (pa *ParallelAgg) Close() error {
	var first error
	for _, w := range pa.Workers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	pa.merger = nil
	closeRuns(pa.outRuns)
	pa.outRuns = nil
	return first
}

// ---------------------------------------------------------------------------
// ParallelSort

// ParallelSort coordinates N worker sorts over seq-tagged input: each
// worker is a full VecSort (external under budget pressure, exactly as
// in the serial plan) whose hidden final key is the global input
// ordinal. Workers sort concurrently in Open; Next is a serial k-way
// merge of the sorted worker streams on (keys, ordinal) — the ordinal
// resolves cross-worker ties precisely the way the serial stable sort
// resolves them by input order — with the hidden column stripped on
// emission.
type ParallelSort struct {
	obs.Card
	Workers []*VecSort
	Disp    *Morsels
	Keys    []exec.SortKey

	classes []cmpClass
	kinds   []types.Kind
	width   int
	heads   []*vector.Batch
	pos     []int
	heap    []int
}

// NewParallelSort wires the worker sorts (morsel tap + hidden seq
// column) and attaches their driver scans to the shared dispatcher.
func NewParallelSort(workers []*VecSort, drivers []*ColScan, srcs []TagSource, disp *Morsels) *ParallelSort {
	for i, w := range workers {
		tap := NewMorselTap(w.Input, srcs[i])
		w.Input = tap
		w.Tap = tap
		drivers[i].SetMorselSource(disp)
	}
	return &ParallelSort{Workers: workers, Disp: disp, Keys: workers[0].Keys}
}

func (s *ParallelSort) Open() error {
	s.Disp.Reset()
	s.classes, s.kinds, s.width = nil, nil, 0
	s.heads = make([]*vector.Batch, len(s.Workers))
	s.pos = make([]int, len(s.Workers))
	s.heap = s.heap[:0]
	errs := openConcurrently(len(s.Workers), func(i int) error { return s.Workers[i].Open() })
	if err := firstError(errs); err != nil {
		closeAfterOpen(errs, func(i int) error { return s.Workers[i].Close() })
		return err
	}
	for i, w := range s.Workers {
		b, err := w.Next()
		if err != nil {
			for _, w2 := range s.Workers {
				w2.Close() //nolint:errcheck
			}
			return err
		}
		if b == nil {
			continue
		}
		s.heads[i] = b
		if s.classes == nil {
			s.width = len(b.Cols) - 1 // trailing column is the hidden ordinal
			s.kinds = colKinds(b.Cols[:s.width])
			s.classes = sortKeyClasses(s.Keys, b.Cols)
		}
		s.heap = append(s.heap, i)
	}
	spill.Heapify(s.heap, s.less)
	return nil
}

func (s *ParallelSort) less(a, b int) bool {
	ba, bb := s.heads[a], s.heads[b]
	ia, ib := s.pos[a], s.pos[b]
	for k, key := range s.Keys {
		c := compareSortLanes(s.classes[k], ba.Cols[key.Pos], ia, bb.Cols[key.Pos], ib)
		if c == 0 {
			continue
		}
		if key.Desc {
			return c > 0
		}
		return c < 0
	}
	return ba.Cols[s.width].I[ia] < bb.Cols[s.width].I[ib]
}

func (s *ParallelSort) Next() (*vector.Batch, error) {
	if len(s.heap) == 0 {
		return nil, nil
	}
	out := make([]*vector.Vec, s.width)
	for c, k := range s.kinds {
		out[c] = vector.NewVec(k, 0)
	}
	rows := 0
	for rows < vector.BatchSize && len(s.heap) > 0 {
		wi := s.heap[0]
		b := s.heads[wi]
		for c := 0; c < s.width; c++ {
			out[c].AppendFrom(b.Cols[c], s.pos[wi])
		}
		rows++
		s.pos[wi]++
		if s.pos[wi] >= b.N {
			nb, err := s.Workers[wi].Next()
			if err != nil {
				return nil, err
			}
			s.heads[wi], s.pos[wi] = nb, 0
			if nb == nil {
				s.heap[0] = s.heap[len(s.heap)-1]
				s.heap = s.heap[:len(s.heap)-1]
			}
		}
		spill.DownHeap(s.heap, 0, s.less)
	}
	if rows == 0 {
		return nil, nil
	}
	return &vector.Batch{N: rows, Cols: out}, nil
}

func (s *ParallelSort) Close() error {
	var first error
	for _, w := range s.Workers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.heads, s.heap = nil, nil
	return first
}

// ---------------------------------------------------------------------------
// Shared helpers

// errWorkerPanic marks an Open "error" that was really a recovered
// worker panic: unlike an ordinary failed Open (which unwinds itself,
// the engine-wide convention), a panicked Open may strand partial state
// behind it, so closeAfterOpen gives such workers a guarded Close.
var errWorkerPanic = errors.New("worker panicked")

// openConcurrently runs n Opens on their own goroutines and returns the
// per-worker errors after all complete. The WaitGroup barrier also
// publishes every worker's drained state to the coordinator goroutine.
// A panicking Open is recovered into an errWorkerPanic-wrapped error so
// one crashing replica degrades into a query error, not a process
// crash.
func openConcurrently(n int, open func(i int) error) []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					obs.PanicsRecovered.Inc()
					obs.Events.Record(obs.EventPanicRecovered, "", "", fmt.Sprintf("parallel worker panicked in Open: %v", p))
					errs[i] = fmt.Errorf("%w in Open: %v", errWorkerPanic, p)
				}
			}()
			errs[i] = open(i)
		}(i)
	}
	wg.Wait()
	return errs
}

// closeAfterOpen unwinds the workers of a concurrent Open in which at
// least one failed: workers that opened cleanly get a normal Close,
// workers whose Open panicked get a guarded Close (releasing what their
// half-built state still holds without risking a secondary panic), and
// workers that returned an ordinary error get nothing — a failed Open
// unwound itself.
func closeAfterOpen(errs []error, close func(i int) error) {
	for i, err := range errs {
		switch {
		case err == nil:
			close(i) //nolint:errcheck — unwinding a failed Open
		case errors.Is(err, errWorkerPanic):
			func() {
				defer func() { _ = recover() }()
				close(i) //nolint:errcheck — unwinding a panicked Open
			}()
		}
	}
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
