// Vectorized expression compilation. The compiler covers the common
// arithmetic/comparison/boolean shapes the provenance-rewritten workloads
// consist of, plus uncorrelated scalar/EXISTS sublinks (evaluated once
// and broadcast); anything else (CASE, casts, function calls, quantified
// sublinks, interval arithmetic, untyped NULLs) returns an error and the
// planner falls back to the row engine for that plan subtree.
//
// Result-vector ownership: kernels allocate their outputs from the shared
// batch-buffer pool (vector.NewBatchVec) and free the intermediates they
// consumed. Var, Const and SubLink results are aliasing — they reference
// batch columns or caches shared across calls — and are never freed;
// Expr.FreeResult encapsulates the distinction for operators.
package vexec

import (
	"fmt"
	"math"
	"strings"

	"perm/internal/algebra"
	"perm/internal/eval"
	"perm/internal/types"
	"perm/internal/vector"
)

// exprFn evaluates an expression over the physical batch rows listed in
// sel (nil = all rows 0..b.N-1). The result vector is defined at exactly
// those positions; other lanes hold unspecified values.
type exprFn func(b *vector.Batch, sel []int) (*vector.Vec, error)

// Expr is a compiled vectorized expression with its static result kind.
type Expr struct {
	fn   exprFn
	kind types.Kind
	// aliasing marks expressions whose result vector is shared (a batch
	// column, a constant cache, a sublink broadcast) rather than freshly
	// allocated per evaluation. Consumers must not free aliasing results.
	aliasing bool
}

// Kind returns the static result kind of the expression.
func (e *Expr) Kind() types.Kind { return e.kind }

// FreeResult returns an evaluation result to the batch-buffer pool, if
// this expression owns its results. Callers invoke it once they are done
// reading the vector (and never after placing it in an emitted batch).
func (e *Expr) FreeResult(v *vector.Vec) {
	if !e.aliasing {
		v.Free()
	}
}

var errUnsupported = fmt.Errorf("vexec: expression shape not vectorizable")

// identitySel is the shared all-rows selection 0..BatchSize-1 (read-only).
var identitySel = func() []int {
	s := make([]int, vector.BatchSize)
	for i := range s {
		s[i] = i
	}
	return s
}()

// resolveSel turns a nil selection into an explicit one. Batches never
// exceed BatchSize rows, so the shared identity prefix always suffices.
func resolveSel(b *vector.Batch, sel []int) []int {
	if sel != nil {
		return sel
	}
	return identitySel[:b.N]
}

// CompileExpr compiles an analyzed expression for vectorized evaluation.
// An error means the shape is not supported and the caller must stay on
// the row engine. The binder resolves column references to flat batch
// positions and sublinks to their (lazily materialized) subplans.
func CompileExpr(e algebra.Expr, bind eval.Binder) (*Expr, error) {
	switch n := e.(type) {
	case *algebra.Var:
		return compileVar(n, bind)
	case *algebra.Const:
		return compileConst(n)
	case *algebra.BinOp:
		return compileBinOp(n, bind)
	case *algebra.UnOp:
		return compileUnOp(n, bind)
	case *algebra.IsNull:
		return compileIsNull(n, bind)
	case *algebra.DistinctFrom:
		return compileDistinctFrom(n, bind)
	case *algebra.SubLink:
		return compileSubLink(n, bind)
	default:
		return nil, errUnsupported
	}
}

// CompileExprs compiles a slice of expressions; it fails if any one of
// them is unsupported.
func CompileExprs(es []algebra.Expr, bind eval.Binder) ([]*Expr, error) {
	out := make([]*Expr, len(es))
	for i, e := range es {
		c, err := CompileExpr(e, bind)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

func compileVar(n *algebra.Var, bind eval.Binder) (*Expr, error) {
	if !vector.Supported(n.Typ) {
		return nil, errUnsupported
	}
	pos, err := bind.BindVar(n)
	if err != nil {
		return nil, err
	}
	kind := n.Typ
	fn := func(b *vector.Batch, sel []int) (*vector.Vec, error) {
		if pos >= len(b.Cols) {
			return nil, fmt.Errorf("vexec: batch too narrow (%d <= %d)", len(b.Cols), pos)
		}
		return b.Cols[pos], nil
	}
	return &Expr{fn: fn, kind: kind, aliasing: true}, nil
}

func compileConst(n *algebra.Const) (*Expr, error) {
	val := n.Val
	if !vector.Supported(val.K) {
		return nil, errUnsupported
	}
	var cache *vector.Vec
	fn := func(b *vector.Batch, sel []int) (*vector.Vec, error) {
		if cache == nil || cache.Len() < b.N {
			cache = broadcast(val, val.K, b.N)
		}
		return cache, nil
	}
	return &Expr{fn: fn, kind: val.K, aliasing: true}, nil
}

// compileSubLink vectorizes uncorrelated scalar and EXISTS sublinks: the
// subplan is materialized once (lazily, by the row engine's sublink
// runtime) and the resulting value broadcast to a cached vector, so
// provenance queries whose only non-columnar expression is an
// uncorrelated sublink (TPC-H Q15's max-revenue filter) stay on the
// batch engine. Quantified (ANY/ALL) sublinks fall back.
func compileSubLink(n *algebra.SubLink, bind eval.Binder) (*Expr, error) {
	kind := n.Typ
	if n.Kind == algebra.SubExists {
		kind = types.KindBool
	}
	if n.Kind != algebra.SubScalar && n.Kind != algebra.SubExists {
		return nil, errUnsupported
	}
	if !vector.Supported(kind) {
		return nil, errUnsupported
	}
	slv, err := bind.BindSubLink(n)
	if err != nil {
		return nil, err
	}
	isExists := n.Kind == algebra.SubExists
	var cache *vector.Vec
	fn := func(b *vector.Batch, sel []int) (*vector.Vec, error) {
		if cache == nil || cache.Len() < b.N {
			var val types.Value
			if isExists {
				ok, err := slv.Exists()
				if err != nil {
					return nil, err
				}
				val = types.NewBool(ok)
			} else {
				v, err := slv.Scalar()
				if err != nil {
					return nil, err
				}
				val = v
			}
			cache = broadcast(val, kind, b.N)
		}
		return cache, nil
	}
	return &Expr{fn: fn, kind: kind, aliasing: true}, nil
}

// broadcast fills a fresh (unpooled: it is cached across batches) vector
// of n copies of val, declared as kind (numeric values coerce).
func broadcast(val types.Value, kind types.Kind, n int) *vector.Vec {
	v := vector.NewVec(kind, n)
	if val.Null {
		for w := range v.Nulls {
			v.Nulls[w] = ^uint64(0)
		}
		return v
	}
	switch kind {
	case types.KindBool:
		for i := range v.B {
			v.B[i] = val.B
		}
	case types.KindInt, types.KindDate:
		iv := val.I
		if val.K == types.KindFloat {
			iv = int64(val.F)
		}
		for i := range v.I {
			v.I[i] = iv
		}
	case types.KindFloat:
		f := val.AsFloat()
		for i := range v.F {
			v.F[i] = f
		}
	case types.KindString:
		for i := range v.S {
			v.S[i] = val.S
		}
	}
	return v
}

// numAt reads a numeric lane as float64 (operand kind is int or float).
func numAt(v *vector.Vec, i int) float64 {
	if v.Kind == types.KindFloat {
		return v.F[i]
	}
	return float64(v.I[i])
}

// cmpOp encodes a comparison operator for branch-light inner loops.
type cmpOp uint8

const (
	cmpEQ cmpOp = iota
	cmpNE
	cmpLT
	cmpLE
	cmpGT
	cmpGE
)

func cmpOpOf(op string) (cmpOp, bool) {
	switch op {
	case "=":
		return cmpEQ, true
	case "<>":
		return cmpNE, true
	case "<":
		return cmpLT, true
	case "<=":
		return cmpLE, true
	case ">":
		return cmpGT, true
	case ">=":
		return cmpGE, true
	default:
		return 0, false
	}
}

func cmpOK(c int, op cmpOp) bool {
	switch op {
	case cmpEQ:
		return c == 0
	case cmpNE:
		return c != 0
	case cmpLT:
		return c < 0
	case cmpLE:
		return c <= 0
	case cmpGT:
		return c > 0
	default:
		return c >= 0
	}
}

// cmpClass describes how two operand kinds compare lane-wise.
type cmpClass uint8

const (
	classNone  cmpClass = iota
	classInt            // both int, or both date (compare I)
	classFloat          // numeric pair with at least one float
	classString
	classBool
)

func classify(a, b types.Kind) cmpClass {
	switch {
	case a == types.KindInt && b == types.KindInt,
		a == types.KindDate && b == types.KindDate:
		return classInt
	case a.Numeric() && b.Numeric():
		return classFloat
	case a == types.KindString && b == types.KindString:
		return classString
	case a == types.KindBool && b == types.KindBool:
		return classBool
	default:
		return classNone
	}
}

// laneCompare orders two non-NULL lanes of a classified kind pair.
func laneCompare(class cmpClass, l *vector.Vec, li int, r *vector.Vec, ri int) int {
	switch class {
	case classInt:
		a, b := l.I[li], r.I[ri]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case classFloat:
		a, b := numAt(l, li), numAt(r, ri)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case classString:
		return strings.Compare(l.S[li], r.S[ri])
	default: // classBool
		a, b := l.B[li], r.B[ri]
		switch {
		case a == b:
			return 0
		case b:
			return -1
		}
		return 1
	}
}

func compileBinOp(n *algebra.BinOp, bind eval.Binder) (*Expr, error) {
	if v, ok := algebra.FoldConst(n); ok && vector.Supported(v.K) && v.K == n.Typ {
		return compileConst(&algebra.Const{Val: v})
	}
	switch n.Op {
	case "AND", "OR":
		return compileLogic(n, bind)
	}
	l, err := CompileExpr(n.Left, bind)
	if err != nil {
		return nil, err
	}
	r, err := CompileExpr(n.Right, bind)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		return compileCompare(n, l, r)
	case "LIKE":
		return compileLike(n, l, r)
	case "+", "-", "*", "/", "%":
		return compileArith(n, l, r)
	default:
		return nil, errUnsupported
	}
}

func compileCompare(n *algebra.BinOp, l, r *Expr) (*Expr, error) {
	if n.Typ != types.KindBool {
		return nil, errUnsupported
	}
	op, ok := cmpOpOf(n.Op)
	if !ok {
		return nil, errUnsupported
	}
	class := classify(l.kind, r.kind)
	if class == classNone {
		return nil, errUnsupported
	}
	fn := func(b *vector.Batch, sel []int) (*vector.Vec, error) {
		sel = resolveSel(b, sel)
		lv, err := l.fn(b, sel)
		if err != nil {
			return nil, err
		}
		rv, err := r.fn(b, sel)
		if err != nil {
			l.FreeResult(lv)
			return nil, err
		}
		out := vector.NewBatchVec(types.KindBool, b.N)
		if !lv.Nulls.AnySet(b.N) && !rv.Nulls.AnySet(b.N) {
			// Null-free fast path: no per-lane bitmap checks.
			if class == classInt {
				li, ri := lv.I, rv.I
				for _, i := range sel {
					out.B[i] = cmpOK(cmpI(li[i], ri[i]), op)
				}
			} else {
				for _, i := range sel {
					out.B[i] = cmpOK(laneCompare(class, lv, i, rv, i), op)
				}
			}
		} else {
			for _, i := range sel {
				if lv.Nulls.Get(i) || rv.Nulls.Get(i) {
					out.Nulls.Set(i)
					continue
				}
				out.B[i] = cmpOK(laneCompare(class, lv, i, rv, i), op)
			}
		}
		l.FreeResult(lv)
		r.FreeResult(rv)
		return out, nil
	}
	return &Expr{fn: fn, kind: types.KindBool}, nil
}

func cmpI(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compileLike(n *algebra.BinOp, l, r *Expr) (*Expr, error) {
	if n.Typ != types.KindBool || l.kind != types.KindString || r.kind != types.KindString {
		return nil, errUnsupported
	}
	fn := func(b *vector.Batch, sel []int) (*vector.Vec, error) {
		sel = resolveSel(b, sel)
		lv, err := l.fn(b, sel)
		if err != nil {
			return nil, err
		}
		rv, err := r.fn(b, sel)
		if err != nil {
			l.FreeResult(lv)
			return nil, err
		}
		out := vector.NewBatchVec(types.KindBool, b.N)
		for _, i := range sel {
			if lv.Nulls.Get(i) || rv.Nulls.Get(i) {
				out.Nulls.Set(i)
				continue
			}
			out.B[i] = eval.MatchLike(lv.S[i], rv.S[i])
		}
		l.FreeResult(lv)
		r.FreeResult(rv)
		return out, nil
	}
	return &Expr{fn: fn, kind: types.KindBool}, nil
}

func compileArith(n *algebra.BinOp, l, r *Expr) (*Expr, error) {
	op := n.Op
	if l.kind == types.KindInt && r.kind == types.KindInt {
		// Integer arithmetic (division truncates, / and % error on zero).
		if n.Typ != types.KindInt {
			return nil, errUnsupported
		}
		fn := func(b *vector.Batch, sel []int) (*vector.Vec, error) {
			sel = resolveSel(b, sel)
			lv, err := l.fn(b, sel)
			if err != nil {
				return nil, err
			}
			rv, err := r.fn(b, sel)
			if err != nil {
				l.FreeResult(lv)
				return nil, err
			}
			out := vector.NewBatchVec(types.KindInt, b.N)
			skipNulls := !lv.Nulls.AnySet(b.N) && !rv.Nulls.AnySet(b.N)
			for _, i := range sel {
				if !skipNulls && (lv.Nulls.Get(i) || rv.Nulls.Get(i)) {
					out.Nulls.Set(i)
					continue
				}
				a, c := lv.I[i], rv.I[i]
				switch op {
				case "+":
					out.I[i] = a + c
				case "-":
					out.I[i] = a - c
				case "*":
					out.I[i] = a * c
				default: // "/", "%"
					if c == 0 {
						out.Free()
						l.FreeResult(lv)
						r.FreeResult(rv)
						return nil, fmt.Errorf("division by zero")
					}
					if op == "/" {
						out.I[i] = a / c
					} else {
						out.I[i] = a % c
					}
				}
			}
			l.FreeResult(lv)
			r.FreeResult(rv)
			return out, nil
		}
		return &Expr{fn: fn, kind: types.KindInt}, nil
	}
	if l.kind.Numeric() && r.kind.Numeric() && op != "%" {
		if n.Typ != types.KindFloat {
			return nil, errUnsupported
		}
		fn := func(b *vector.Batch, sel []int) (*vector.Vec, error) {
			sel = resolveSel(b, sel)
			lv, err := l.fn(b, sel)
			if err != nil {
				return nil, err
			}
			rv, err := r.fn(b, sel)
			if err != nil {
				l.FreeResult(lv)
				return nil, err
			}
			out := vector.NewBatchVec(types.KindFloat, b.N)
			skipNulls := !lv.Nulls.AnySet(b.N) && !rv.Nulls.AnySet(b.N)
			for _, i := range sel {
				if !skipNulls && (lv.Nulls.Get(i) || rv.Nulls.Get(i)) {
					out.Nulls.Set(i)
					continue
				}
				a, c := numAt(lv, i), numAt(rv, i)
				switch op {
				case "+":
					out.F[i] = a + c
				case "-":
					out.F[i] = a - c
				case "*":
					out.F[i] = a * c
				default: // "/"
					if c == 0 {
						out.Free()
						l.FreeResult(lv)
						r.FreeResult(rv)
						return nil, fmt.Errorf("division by zero")
					}
					out.F[i] = a / c
				}
			}
			l.FreeResult(lv)
			r.FreeResult(rv)
			return out, nil
		}
		return &Expr{fn: fn, kind: types.KindFloat}, nil
	}
	return nil, errUnsupported
}

// compileLogic implements three-valued AND/OR with the row engine's
// short-circuit behaviour: the right operand is only evaluated on lanes
// the left operand does not already decide (so e.g. a division guarded
// by an AND never runs on the guarded-out lanes).
func compileLogic(n *algebra.BinOp, bind eval.Binder) (*Expr, error) {
	l, err := CompileExpr(n.Left, bind)
	if err != nil {
		return nil, err
	}
	r, err := CompileExpr(n.Right, bind)
	if err != nil {
		return nil, err
	}
	if n.Typ != types.KindBool || l.kind != types.KindBool || r.kind != types.KindBool {
		return nil, errUnsupported
	}
	isAnd := n.Op == "AND"
	var subBuf []int
	fn := func(b *vector.Batch, sel []int) (*vector.Vec, error) {
		sel = resolveSel(b, sel)
		lv, err := l.fn(b, sel)
		if err != nil {
			return nil, err
		}
		// Lanes the left side does not decide.
		if subBuf == nil {
			subBuf = make([]int, 0, vector.BatchSize)
		}
		sub := subBuf[:0]
		for _, i := range sel {
			decided := !lv.Nulls.Get(i) && (lv.B[i] != isAnd)
			if !decided {
				sub = append(sub, i)
			}
		}
		subBuf = sub
		var rv *vector.Vec
		if len(sub) > 0 {
			rv, err = r.fn(b, sub)
			if err != nil {
				l.FreeResult(lv)
				return nil, err
			}
		}
		out := vector.NewBatchVec(types.KindBool, b.N)
		for _, i := range sel {
			ln := lv.Nulls.Get(i)
			if !ln && lv.B[i] != isAnd {
				out.B[i] = !isAnd // left decided: AND→false, OR→true
				continue
			}
			rn := rv.Nulls.Get(i)
			if !rn && rv.B[i] != isAnd {
				out.B[i] = !isAnd
				continue
			}
			if ln || rn {
				out.Nulls.Set(i)
				continue
			}
			out.B[i] = isAnd // both undecided and non-null: AND→true, OR→false
		}
		l.FreeResult(lv)
		if rv != nil {
			r.FreeResult(rv)
		}
		return out, nil
	}
	return &Expr{fn: fn, kind: types.KindBool}, nil
}

func compileUnOp(n *algebra.UnOp, bind eval.Binder) (*Expr, error) {
	if v, ok := algebra.FoldConst(n); ok && vector.Supported(v.K) && v.K == n.Typ {
		return compileConst(&algebra.Const{Val: v})
	}
	inner, err := CompileExpr(n.Expr, bind)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "NOT":
		if inner.kind != types.KindBool {
			return nil, errUnsupported
		}
		fn := func(b *vector.Batch, sel []int) (*vector.Vec, error) {
			sel = resolveSel(b, sel)
			v, err := inner.fn(b, sel)
			if err != nil {
				return nil, err
			}
			out := vector.NewBatchVec(types.KindBool, b.N)
			for _, i := range sel {
				if v.Nulls.Get(i) {
					out.Nulls.Set(i)
					continue
				}
				out.B[i] = !v.B[i]
			}
			inner.FreeResult(v)
			return out, nil
		}
		return &Expr{fn: fn, kind: types.KindBool}, nil
	case "-":
		switch inner.kind {
		case types.KindInt, types.KindFloat:
		default:
			return nil, errUnsupported
		}
		if n.Typ != inner.kind {
			return nil, errUnsupported
		}
		kind := inner.kind
		fn := func(b *vector.Batch, sel []int) (*vector.Vec, error) {
			sel = resolveSel(b, sel)
			v, err := inner.fn(b, sel)
			if err != nil {
				return nil, err
			}
			out := vector.NewBatchVec(kind, b.N)
			for _, i := range sel {
				if v.Nulls.Get(i) {
					out.Nulls.Set(i)
					continue
				}
				if kind == types.KindInt {
					out.I[i] = -v.I[i]
				} else {
					out.F[i] = -v.F[i]
				}
			}
			inner.FreeResult(v)
			return out, nil
		}
		return &Expr{fn: fn, kind: kind}, nil
	default:
		return nil, errUnsupported
	}
}

func compileIsNull(n *algebra.IsNull, bind eval.Binder) (*Expr, error) {
	inner, err := CompileExpr(n.Expr, bind)
	if err != nil {
		return nil, err
	}
	not := n.Not
	fn := func(b *vector.Batch, sel []int) (*vector.Vec, error) {
		sel = resolveSel(b, sel)
		v, err := inner.fn(b, sel)
		if err != nil {
			return nil, err
		}
		out := vector.NewBatchVec(types.KindBool, b.N)
		for _, i := range sel {
			out.B[i] = v.Nulls.Get(i) != not
		}
		inner.FreeResult(v)
		return out, nil
	}
	return &Expr{fn: fn, kind: types.KindBool}, nil
}

func compileDistinctFrom(n *algebra.DistinctFrom, bind eval.Binder) (*Expr, error) {
	l, err := CompileExpr(n.Left, bind)
	if err != nil {
		return nil, err
	}
	r, err := CompileExpr(n.Right, bind)
	if err != nil {
		return nil, err
	}
	class := classify(l.kind, r.kind)
	if class == classNone {
		return nil, errUnsupported
	}
	not := n.Not
	fn := func(b *vector.Batch, sel []int) (*vector.Vec, error) {
		sel = resolveSel(b, sel)
		lv, err := l.fn(b, sel)
		if err != nil {
			return nil, err
		}
		rv, err := r.fn(b, sel)
		if err != nil {
			l.FreeResult(lv)
			return nil, err
		}
		out := vector.NewBatchVec(types.KindBool, b.N)
		for _, i := range sel {
			ln, rn := lv.Nulls.Get(i), rv.Nulls.Get(i)
			var distinct bool
			switch {
			case ln && rn:
				distinct = false
			case ln != rn:
				distinct = true
			default:
				distinct = laneCompare(class, lv, i, rv, i) != 0
			}
			out.B[i] = distinct != not
		}
		l.FreeResult(lv)
		r.FreeResult(rv)
		return out, nil
	}
	return &Expr{fn: fn, kind: types.KindBool}, nil
}

// ---------------------------------------------------------------------------
// Lane hashing and equality (hash join, hash aggregation)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashLane mixes one key lane into h. Numeric lanes hash by their
// float64 value so int and float keys that compare equal hash equal;
// NULL lanes hash to a sentinel (grouping and null-safe joins treat
// NULLs as equal).
func hashLane(h uint64, v *vector.Vec, i int) uint64 {
	if v.Nulls.Get(i) {
		return (h ^ 0xff) * fnvPrime64
	}
	switch v.Kind {
	case types.KindBool:
		h = (h ^ 1) * fnvPrime64
		if v.B[i] {
			h = (h ^ 1) * fnvPrime64
		} else {
			h = (h ^ 2) * fnvPrime64
		}
	case types.KindInt, types.KindFloat:
		h = (h ^ 2) * fnvPrime64
		h = (h ^ math.Float64bits(numAt(v, i))) * fnvPrime64
	case types.KindString:
		h = (h ^ 3) * fnvPrime64
		s := v.S[i]
		for j := 0; j < len(s); j++ {
			h = (h ^ uint64(s[j])) * fnvPrime64
		}
	case types.KindDate:
		h = (h ^ 4) * fnvPrime64
		h = (h ^ uint64(v.I[i])) * fnvPrime64
	default:
		h = (h ^ 0xfe) * fnvPrime64
	}
	return h
}

// hashLanes hashes one row of key vectors.
func hashLanes(keys []*vector.Vec, i int) uint64 {
	h := uint64(fnvOffset64)
	for _, kv := range keys {
		h = hashLane(h, kv, i)
	}
	return h
}

// lanesEqualNullSafe compares key lane a[i] with b[j] treating NULLs as
// equal (grouping / IS NOT DISTINCT FROM semantics). Kind pairs outside
// the comparable classes never match.
func lanesEqualNullSafe(a *vector.Vec, i int, b *vector.Vec, j int) bool {
	an, bn := a.Nulls.Get(i), b.Nulls.Get(j)
	if an || bn {
		return an && bn
	}
	class := classify(a.Kind, b.Kind)
	if class == classNone {
		return false
	}
	return laneCompare(class, a, i, b, j) == 0
}
