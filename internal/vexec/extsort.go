// External-sort machinery for the vectorized engine: budget-driven run
// spilling and the k-way streaming merge that reads sorted runs back.
// VecSort switches to this path when its memory reservation denies a
// grant; the merge preserves the in-memory sort's exact output order
// (stable, NULLS LAST ascending) because runs hold consecutive input
// segments and ties always resolve to the earlier run.
package vexec

import (
	"sort"

	"perm/internal/exec"
	"perm/internal/spill"
	"perm/internal/types"
	"perm/internal/vector"
)

// mergeFanIn caps how many runs a single merge pass reads. More runs
// than this trigger intermediate merge passes (a genuinely multi-pass
// external sort) so the merge's memory stays bounded no matter how
// small the budget was.
const mergeFanIn = 8

// batchBytes estimates the heap footprint of the given live lanes of a
// batch once copied into accumulator columns. Fixed-width lanes cost
// their payload width, strings their header plus bytes; the null bitmaps
// add a per-column word share.
func batchBytes(cols []*vector.Vec, lanes []int) int64 {
	var n int64
	for _, c := range cols {
		switch c.Kind {
		case types.KindBool:
			n += int64(len(lanes))
		case types.KindString:
			n += int64(len(lanes)) * 16
			for _, i := range lanes {
				n += int64(len(c.S[i]))
			}
		default:
			n += int64(len(lanes)) * 8
		}
	}
	n += int64(len(cols)) * int64(len(lanes)) / 8
	return n
}

// colKinds returns the kinds of a batch's columns.
func colKinds(cols []*vector.Vec) []types.Kind {
	kinds := make([]types.Kind, len(cols))
	for i, c := range cols {
		kinds[i] = c.Kind
	}
	return kinds
}

// sortedOrder computes the stable sort permutation of n accumulated rows
// under the sort keys (the in-memory VecSort comparator, shared with the
// run writer).
func sortedOrder(cols []*vector.Vec, n int, keys []exec.SortKey, classes []cmpClass) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	if n == 0 {
		return order
	}
	sort.SliceStable(order, func(x, y int) bool {
		i, j := int(order[x]), int(order[y])
		for k, key := range keys {
			col := cols[key.Pos]
			c := compareSortLanes(classes[k], col, i, col, j)
			if c == 0 {
				continue
			}
			if key.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return order
}

// writeOrdered writes the accumulated rows to a fresh run in the given
// permutation order, in batch-sized chunks.
func writeOrdered(res spill.Resources, cols []*vector.Vec, order []int32) (*spill.Run, error) {
	run, err := spill.NewRun(res.Dir)
	if err != nil {
		return nil, err
	}
	chunk := make([]*vector.Vec, len(cols))
	for lo := 0; lo < len(order); lo += vector.BatchSize {
		hi := lo + vector.BatchSize
		if hi > len(order) {
			hi = len(order)
		}
		for c, col := range cols {
			chunk[c] = vector.Gather(col, order[lo:hi], col.Kind)
		}
		if err := run.WriteCols(chunk, hi-lo); err != nil {
			run.Close() //nolint:errcheck — unwinding after a failed write
			return nil, err
		}
	}
	if err := run.Finish(); err != nil {
		run.Close() //nolint:errcheck
		return nil, err
	}
	res.Res.NoteSpill(run.Bytes())
	return run, nil
}

// runCursor walks one sorted run batch-at-a-time during a merge.
type runCursor struct {
	run  *spill.Run
	cols []*vector.Vec
	n    int
	pos  int
}

func (c *runCursor) load() (bool, error) {
	cols, n, err := c.run.ReadCols()
	if err != nil {
		return false, err
	}
	if n == 0 {
		c.cols, c.n, c.pos = nil, 0, 0
		return false, nil
	}
	c.cols, c.n, c.pos = cols, n, 0
	return true, nil
}

// advance moves to the next row, loading the next batch as needed; it
// returns false when the run is exhausted.
func (c *runCursor) advance() (bool, error) {
	c.pos++
	if c.pos < c.n {
		return true, nil
	}
	return c.load()
}

// runMerger is a k-way streaming merge over sorted runs. Ties between
// runs resolve to the lower run index: runs hold consecutive input
// segments, so this reproduces the stable in-memory order exactly.
type runMerger struct {
	cursors []*runCursor
	keys    []exec.SortKey
	classes []cmpClass
	kinds   []types.Kind
	heap    []int // heap of cursor indices, least row on top
}

func newRunMerger(runs []*spill.Run, keys []exec.SortKey, classes []cmpClass, kinds []types.Kind) (*runMerger, error) {
	m := &runMerger{keys: keys, classes: classes, kinds: kinds}
	for _, r := range runs {
		cur := &runCursor{run: r}
		ok, err := cur.load()
		if err != nil {
			return nil, err
		}
		m.cursors = append(m.cursors, cur)
		if ok {
			m.heap = append(m.heap, len(m.cursors)-1)
		}
	}
	spill.Heapify(m.heap, m.less)
	return m, nil
}

// less orders cursor a's current row before cursor b's.
func (m *runMerger) less(a, b int) bool {
	ca, cb := m.cursors[a], m.cursors[b]
	for k, key := range m.keys {
		c := compareSortLanes(m.classes[k], ca.cols[key.Pos], ca.pos, cb.cols[key.Pos], cb.pos)
		if c == 0 {
			continue
		}
		if key.Desc {
			return c > 0
		}
		return c < 0
	}
	return a < b // stability: the earlier input segment wins ties
}

// next emits up to BatchSize merged rows, nil at end of stream.
func (m *runMerger) next() (*vector.Batch, error) {
	if len(m.heap) == 0 {
		return nil, nil
	}
	out := make([]*vector.Vec, len(m.kinds))
	for c, k := range m.kinds {
		out[c] = vector.NewVec(k, 0)
	}
	rows := 0
	for rows < vector.BatchSize && len(m.heap) > 0 {
		ci := m.heap[0]
		cur := m.cursors[ci]
		for c := range out {
			out[c].AppendFrom(cur.cols[c], cur.pos)
		}
		rows++
		ok, err := cur.advance()
		if err != nil {
			return nil, err
		}
		if !ok {
			m.heap[0] = m.heap[len(m.heap)-1]
			m.heap = m.heap[:len(m.heap)-1]
		}
		spill.DownHeap(m.heap, 0, m.less)
	}
	return &vector.Batch{N: rows, Cols: out}, nil
}

// mergePass merges the given runs into one new run (an intermediate pass
// of the multi-pass external sort) and closes the inputs.
func mergePass(res spill.Resources, runs []*spill.Run, keys []exec.SortKey, classes []cmpClass, kinds []types.Kind) (*spill.Run, error) {
	m, err := newRunMerger(runs, keys, classes, kinds)
	if err != nil {
		return nil, err
	}
	out, err := spill.NewRun(res.Dir)
	if err != nil {
		return nil, err
	}
	for {
		b, err := m.next()
		if err != nil {
			out.Close() //nolint:errcheck
			return nil, err
		}
		if b == nil {
			break
		}
		if err := out.WriteCols(b.Cols, b.N); err != nil {
			out.Close() //nolint:errcheck
			return nil, err
		}
	}
	for _, r := range runs {
		r.Close() //nolint:errcheck — inputs are fully drained
	}
	if err := out.Finish(); err != nil {
		out.Close() //nolint:errcheck
		return nil, err
	}
	res.Res.NoteSpill(out.Bytes())
	return out, nil
}

// reduceRuns applies intermediate merge passes until at most mergeFanIn
// runs remain. The earliest runs merge first and the merged run takes
// their position, preserving the segment order the tie-break relies on.
func reduceRuns(res spill.Resources, runs []*spill.Run, keys []exec.SortKey, classes []cmpClass, kinds []types.Kind) ([]*spill.Run, error) {
	for len(runs) > mergeFanIn {
		merged, err := mergePass(res, runs[:mergeFanIn], keys, classes, kinds)
		if err != nil {
			return runs, err
		}
		rest := append([]*spill.Run{merged}, runs[mergeFanIn:]...)
		runs = rest
	}
	return runs, nil
}

// closeRuns closes every run in the slice.
func closeRuns(runs []*spill.Run) {
	for _, r := range runs {
		r.Close() //nolint:errcheck — temp storage, already unlinked
	}
}
