package vexec

import (
	"time"

	"perm/internal/obs"
	"perm/internal/vector"
)

// Probe is the EXPLAIN ANALYZE instrumentation wrapper for vectorized
// operators: it forwards every call to the wrapped node and records wall
// time per phase plus emitted batch/row counts into Stats. Probes are
// inserted only when a query runs under EXPLAIN ANALYZE (plan.Instrument
// wraps the tree after planning), so the plain query path never pays for
// them; batches pass through by pointer, preserving the engine's
// buffer-recycling discipline. Parallel operators (Exchange, ParallelAgg,
// ParallelSort) are probed as a whole — their worker subtrees run on
// other goroutines and stay unwrapped.
type Probe struct {
	Input Node
	Stats *obs.OpStats
}

// NewProbe wraps n with a fresh stats collector.
func NewProbe(n Node) *Probe { return &Probe{Input: n, Stats: &obs.OpStats{}} }

func (p *Probe) Open() error {
	t0 := time.Now()
	err := p.Input.Open()
	p.Stats.OpenNS += time.Since(t0).Nanoseconds()
	return err
}

func (p *Probe) Next() (*vector.Batch, error) {
	t0 := time.Now()
	b, err := p.Input.Next()
	p.Stats.NextNS += time.Since(t0).Nanoseconds()
	if b != nil {
		p.Stats.Batches++
		if b.Sel != nil {
			p.Stats.Rows += int64(len(b.Sel))
		} else {
			p.Stats.Rows += int64(b.N)
		}
	}
	return b, err
}

func (p *Probe) Close() error {
	t0 := time.Now()
	err := p.Input.Close()
	p.Stats.CloseNS += time.Since(t0).Nanoseconds()
	return err
}
