package vexec

import (
	"errors"
	"fmt"
	"testing"
)

// TestOpenConcurrentlyRecoversPanics: a panicking worker Open must come
// back as an errWorkerPanic-wrapped error, not crash the process.
func TestOpenConcurrentlyRecoversPanics(t *testing.T) {
	errs := openConcurrently(3, func(i int) error {
		switch i {
		case 0:
			return nil
		case 1:
			return fmt.Errorf("plain failure")
		default:
			panic("worker exploded")
		}
	})
	if errs[0] != nil {
		t.Fatalf("worker 0: %v, want nil", errs[0])
	}
	if errs[1] == nil || errors.Is(errs[1], errWorkerPanic) {
		t.Fatalf("worker 1: %v, want a plain error", errs[1])
	}
	if !errors.Is(errs[2], errWorkerPanic) {
		t.Fatalf("worker 2: %v, want an errWorkerPanic wrapper", errs[2])
	}
}

// TestCloseAfterOpen: unwinding a failed concurrent Open closes exactly
// the workers that opened (normal Close) or panicked (guarded Close —
// a second panic from the half-built subtree is swallowed); a worker
// whose Open returned an ordinary error unwound itself and gets
// nothing.
func TestCloseAfterOpen(t *testing.T) {
	errs := []error{
		nil,
		fmt.Errorf("plain failure"),
		fmt.Errorf("%w in Open: boom", errWorkerPanic),
	}
	closed := make([]bool, len(errs))
	closeAfterOpen(errs, func(i int) error {
		closed[i] = true
		if i == 2 {
			panic("secondary crash during cleanup")
		}
		return nil
	})
	want := []bool{true, false, true}
	for i := range want {
		if closed[i] != want[i] {
			t.Errorf("worker %d closed = %v, want %v", i, closed[i], want[i])
		}
	}
}
