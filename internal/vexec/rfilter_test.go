package vexec

import (
	"sync"
	"testing"

	"perm/internal/types"
	"perm/internal/vector"
)

// workerKeys builds the distinctive key vector worker g publishes: 100
// consecutive ints starting at g*1000, so each worker's summary has a
// recognizable min/max range.
func workerKeys(g int) *vector.Vec {
	v := vector.NewVec(types.KindInt, 100)
	for i := range v.I {
		v.I[i] = int64(g*1000 + i)
	}
	return v
}

// TestRuntimeFilterPublishOnce races N builders on one shared filter —
// the replicated-pipeline shape, where every worker's hash join finishes
// its build side and tries to publish. Exactly one publication must win,
// and the summary must be that winner's, untorn: its range matches a
// single worker's key set and every key of that set is admitted. Run
// under -race this is also the memory-model gate for the claimed/ready
// atomics.
func TestRuntimeFilterPublishOnce(t *testing.T) {
	const publishers = 8
	rf := NewRuntimeFilter(false)
	keys := make([]*vector.Vec, publishers)
	for g := range keys {
		keys[g] = workerKeys(g)
	}

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(2 * publishers)
	for g := 0; g < publishers; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait()
			rf.PublishFrom(keys[g], 100)
		}(g)
		// Concurrent probe-side readers: poll Ready, and once it flips,
		// the summary must already be complete enough to admit safely.
		go func(g int) {
			defer done.Done()
			start.Wait()
			for !rf.Ready() {
			}
			rf.admit(keys[g], 0)
		}(g)
	}
	start.Done()
	done.Wait()

	if !rf.Ready() {
		t.Fatal("filter never became ready")
	}
	winner := int(rf.minI / 1000)
	if winner < 0 || winner >= publishers {
		t.Fatalf("summary range %d..%d matches no publisher", rf.minI, rf.maxI)
	}
	if rf.minI != int64(winner*1000) || rf.maxI != int64(winner*1000+99) {
		t.Fatalf("torn summary: range %d..%d is not worker %d's key set", rf.minI, rf.maxI, winner)
	}
	for i := 0; i < 100; i++ {
		if !rf.admit(keys[winner], i) {
			t.Fatalf("winning worker %d key %d not admitted", winner, keys[winner].I[i])
		}
	}
	// A late publish is a no-op: the summary stays the winner's.
	rf.PublishFrom(workerKeys(publishers+1), 100)
	if rf.minI != int64(winner*1000) || rf.maxI != int64(winner*1000+99) {
		t.Fatal("late PublishFrom overwrote the published summary")
	}
}

// TestRuntimeFilterEmptyBuild pins the empty-build contract: the filter
// publishes (ready) but admits nothing, matching an inner join with an
// empty build side.
func TestRuntimeFilterEmptyBuild(t *testing.T) {
	rf := NewRuntimeFilter(false)
	rf.PublishFrom(vector.NewVec(types.KindInt, 0), 0)
	if !rf.Ready() {
		t.Fatal("empty publish must still mark the filter ready")
	}
	probe := workerKeys(0)
	for i := 0; i < 100; i++ {
		if rf.admit(probe, i) {
			t.Fatalf("empty build admitted key %d", probe.I[i])
		}
	}
}
