// Vectorized sorting, top-N, limiting and duplicate elimination. These
// are the blocking operators that used to force a BatchToRow demotion in
// the middle of provenance pipelines; implementing them column-wise keeps
// ORDER BY / LIMIT / DISTINCT plans on the batch engine end to end.
package vexec

import (
	"sort"

	"perm/internal/exec"
	"perm/internal/vector"
)

// colAccumulator collects live batch lanes into growable, unpooled
// columns (the materialization side of sort/top-N/set operations).
type colAccumulator struct {
	cols []*vector.Vec
	n    int
}

// initFrom sizes the accumulator after the first batch's column kinds.
func (a *colAccumulator) initFrom(b *vector.Batch) {
	if a.cols != nil {
		return
	}
	a.cols = make([]*vector.Vec, len(b.Cols))
	for j, c := range b.Cols {
		a.cols[j] = vector.NewVec(c.Kind, 0)
	}
}

// appendLanes copies the given live lanes of the batch.
func (a *colAccumulator) appendLanes(b *vector.Batch, lanes []int) {
	a.initFrom(b)
	for j, c := range b.Cols {
		a.cols[j].AppendLanes(c, lanes)
	}
	a.n += len(lanes)
}

// appendLane copies one live lane of the batch.
func (a *colAccumulator) appendLane(b *vector.Batch, lane int) {
	a.initFrom(b)
	for j, c := range b.Cols {
		a.cols[j].AppendFrom(c, lane)
	}
	a.n++
}

// emitter streams gathered windows of an accumulator in batch-sized
// chunks, recycling the gather buffers between chunks.
type emitter struct {
	cols  []*vector.Vec
	order []int32
	pos   int
	owned []*vector.Vec
	buf   []*vector.Vec
}

func (e *emitter) reset(cols []*vector.Vec, order []int32) {
	e.cols, e.order, e.pos = cols, order, 0
}

func (e *emitter) next() *vector.Batch {
	for _, v := range e.owned {
		v.Free()
	}
	e.owned = e.owned[:0]
	if e.pos >= len(e.order) {
		return nil
	}
	hi := e.pos + vector.BatchSize
	if hi > len(e.order) {
		hi = len(e.order)
	}
	chunk := e.order[e.pos:hi]
	e.pos = hi
	if e.buf == nil {
		e.buf = make([]*vector.Vec, len(e.cols))
	}
	for j, c := range e.cols {
		e.buf[j] = vector.GatherBatch(c, chunk, c.Kind)
	}
	e.owned = append(e.owned[:0], e.buf...)
	return &vector.Batch{N: len(chunk), Cols: e.buf}
}

func (e *emitter) close() {
	for _, v := range e.owned {
		v.Free()
	}
	e.owned = e.owned[:0]
}

// ---------------------------------------------------------------------------
// VecSort

// VecSort materializes its input into columns and orders it with a
// column-wise multi-key comparator (stable, NULLS LAST ascending / first
// descending — the row engine's convention exactly).
type VecSort struct {
	Input Node
	Keys  []exec.SortKey

	acc  colAccumulator
	emit emitter
}

// NewVecSort returns a vectorized sort node.
func NewVecSort(input Node, keys []exec.SortKey) *VecSort {
	return &VecSort{Input: input, Keys: keys}
}

func (s *VecSort) Open() error {
	s.acc = colAccumulator{}
	if err := s.Input.Open(); err != nil {
		return err
	}
	for {
		b, err := s.Input.Next()
		if err != nil {
			s.Input.Close() //nolint:errcheck — unwinding after a failed drain
			return err
		}
		if b == nil {
			break
		}
		s.acc.appendLanes(b, resolveSel(b, b.Sel))
	}
	if err := s.Input.Close(); err != nil {
		return err
	}
	order := make([]int32, s.acc.n)
	for i := range order {
		order[i] = int32(i)
	}
	if s.acc.n > 0 {
		classes := sortKeyClasses(s.Keys, s.acc.cols)
		sort.SliceStable(order, func(x, y int) bool {
			i, j := int(order[x]), int(order[y])
			for k, key := range s.Keys {
				col := s.acc.cols[key.Pos]
				c := compareSortLanes(classes[k], col, i, col, j)
				if c == 0 {
					continue
				}
				if key.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	s.emit.reset(s.acc.cols, order)
	return nil
}

func (s *VecSort) Next() (*vector.Batch, error) { return s.emit.next(), nil }

func (s *VecSort) Close() error {
	s.emit.close()
	s.acc = colAccumulator{}
	return nil
}

// ---------------------------------------------------------------------------
// VecTopN

// VecTopN is the limit-aware sort: it keeps only the top
// offset+count rows in a bounded max-heap while draining its input
// (O(n log k) comparisons, bounded candidate storage), then emits them in
// order with the offset skipped. Ties resolve by input order, matching
// the row engine's stable sort + LIMIT.
type VecTopN struct {
	Input  Node
	Keys   []exec.SortKey
	Count  int64 // ≥ 0
	Offset int64

	acc     colAccumulator
	classes []cmpClass
	heap    []int32 // max-heap over accumulated rows ("worst" on top)
	emit    emitter
}

// NewVecTopN returns a vectorized top-N node keeping offset+count rows.
func NewVecTopN(input Node, keys []exec.SortKey, count, offset int64) *VecTopN {
	return &VecTopN{Input: input, Keys: keys, Count: count, Offset: offset}
}

// rowLess orders accumulated rows i and j by the sort keys, breaking
// ties by insertion index (stability).
func (t *VecTopN) rowLess(i, j int32) bool {
	for k, key := range t.Keys {
		col := t.acc.cols[key.Pos]
		c := compareSortLanes(t.classes[k], col, int(i), col, int(j))
		if c == 0 {
			continue
		}
		if key.Desc {
			return c > 0
		}
		return c < 0
	}
	return i < j
}

// laneBeatsWorst reports whether batch lane i sorts strictly before the
// current heap maximum (an incoming row never displaces an equal-keyed
// earlier row: ties keep the earlier arrival, like a stable sort).
func (t *VecTopN) laneBeatsWorst(b *vector.Batch, i int) bool {
	worst := int(t.heap[0])
	for k, key := range t.Keys {
		col := b.Cols[key.Pos]
		c := compareSortLanes(t.classes[k], col, i, t.acc.cols[key.Pos], worst)
		if c == 0 {
			continue
		}
		if key.Desc {
			return c > 0
		}
		return c < 0
	}
	return false // equal keys: the earlier row wins
}

func (t *VecTopN) siftDown(at int) {
	n := len(t.heap)
	for {
		l, r := 2*at+1, 2*at+2
		largest := at
		if l < n && t.rowLess(t.heap[largest], t.heap[l]) {
			largest = l
		}
		if r < n && t.rowLess(t.heap[largest], t.heap[r]) {
			largest = r
		}
		if largest == at {
			return
		}
		t.heap[at], t.heap[largest] = t.heap[largest], t.heap[at]
		at = largest
	}
}

func (t *VecTopN) siftUp(at int) {
	for at > 0 {
		parent := (at - 1) / 2
		if !t.rowLess(t.heap[parent], t.heap[at]) {
			return
		}
		t.heap[at], t.heap[parent] = t.heap[parent], t.heap[at]
		at = parent
	}
}

func (t *VecTopN) Open() error {
	t.acc = colAccumulator{}
	t.heap = t.heap[:0]
	k := t.Offset + t.Count
	if err := t.Input.Open(); err != nil {
		return err
	}
	for {
		b, err := t.Input.Next()
		if err != nil {
			t.Input.Close() //nolint:errcheck — unwinding after a failed drain
			return err
		}
		if b == nil {
			break
		}
		if k == 0 {
			continue // LIMIT 0: drain for side-effect-free symmetry
		}
		if t.classes == nil {
			t.classes = sortKeyClasses(t.Keys, b.Cols)
		}
		for _, i := range resolveSel(b, b.Sel) {
			if int64(len(t.heap)) < k {
				t.acc.appendLane(b, i)
				t.heap = append(t.heap, int32(t.acc.n-1))
				t.siftUp(len(t.heap) - 1)
				continue
			}
			if !t.laneBeatsWorst(b, i) {
				continue
			}
			t.acc.appendLane(b, i)
			t.heap[0] = int32(t.acc.n - 1)
			t.siftDown(0)
		}
		// Displaced rows stay in the accumulator until compaction; keep
		// its footprint bounded by ~2k rows (plus batch slack) so an
		// adversarial input order cannot materialize the whole stream.
		if int64(t.acc.n) > 2*k+vector.BatchSize {
			t.compact()
		}
	}
	if err := t.Input.Close(); err != nil {
		return err
	}
	order := append([]int32(nil), t.heap...)
	sort.Slice(order, func(x, y int) bool { return t.rowLess(order[x], order[y]) })
	if int64(len(order)) > t.Offset {
		order = order[t.Offset:]
	} else {
		order = nil
	}
	t.emit.reset(t.acc.cols, order)
	return nil
}

// compact rewrites the accumulator down to the heap's live rows,
// reclaiming the storage of displaced candidates. Live rows are copied
// in ascending old-index order, so relative arrival order — the
// comparator's tie-breaker — is preserved and the heap invariant
// survives the relabeling untouched.
func (t *VecTopN) compact() {
	live := append([]int32(nil), t.heap...)
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	remap := make(map[int32]int32, len(live))
	cols := make([]*vector.Vec, len(t.acc.cols))
	for c, col := range t.acc.cols {
		cols[c] = vector.Gather(col, live, col.Kind)
	}
	for newIdx, oldIdx := range live {
		remap[oldIdx] = int32(newIdx)
	}
	for i, h := range t.heap {
		t.heap[i] = remap[h]
	}
	t.acc = colAccumulator{cols: cols, n: len(live)}
}

func (t *VecTopN) Next() (*vector.Batch, error) { return t.emit.next(), nil }

func (t *VecTopN) Close() error {
	t.emit.close()
	t.acc = colAccumulator{}
	t.heap = t.heap[:0]
	return nil
}

// ---------------------------------------------------------------------------
// VecLimit

// VecLimit trims the live-row stream to [Offset, Offset+Count) without
// materializing anything; it stops pulling its input once the count is
// satisfied. A negative Count means no limit (offset only).
type VecLimit struct {
	Input   Node
	Count   int64
	Offset  int64
	skipped int64
	emitted int64
}

// NewVecLimit returns a vectorized limit node.
func NewVecLimit(input Node, count, offset int64) *VecLimit {
	return &VecLimit{Input: input, Count: count, Offset: offset}
}

func (l *VecLimit) Open() error {
	l.skipped, l.emitted = 0, 0
	return l.Input.Open()
}

func (l *VecLimit) Next() (*vector.Batch, error) {
	for {
		if l.Count >= 0 && l.emitted >= l.Count {
			return nil, nil
		}
		b, err := l.Input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		lanes := resolveSel(b, b.Sel)
		lo := 0
		for lo < len(lanes) && l.skipped < l.Offset {
			l.skipped++
			lo++
		}
		take := len(lanes) - lo
		if l.Count >= 0 {
			if rem := l.Count - l.emitted; int64(take) > rem {
				take = int(rem)
			}
		}
		if take <= 0 {
			continue
		}
		l.emitted += int64(take)
		return &vector.Batch{N: b.N, Cols: b.Cols, Sel: lanes[lo : lo+take]}, nil
	}
}

func (l *VecLimit) Close() error { return l.Input.Close() }

// ---------------------------------------------------------------------------
// VecDistinct

// VecDistinct streams its input, passing through the first occurrence of
// each distinct row (null-safe row equality, first-appearance order —
// exactly the row engine's Distinct). Seen rows are copied into
// accumulator columns so input batches are never retained.
type VecDistinct struct {
	Input Node

	acc    colAccumulator
	table  map[uint64][]int32
	selBuf []int
}

// NewVecDistinct returns a vectorized duplicate-elimination node.
func NewVecDistinct(input Node) *VecDistinct { return &VecDistinct{Input: input} }

func (d *VecDistinct) Open() error {
	d.acc = colAccumulator{}
	d.table = make(map[uint64][]int32)
	if d.selBuf == nil {
		d.selBuf = make([]int, 0, vector.BatchSize)
	}
	return d.Input.Open()
}

func (d *VecDistinct) Next() (*vector.Batch, error) {
	for {
		b, err := d.Input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		d.acc.initFrom(b)
		out := d.selBuf[:0]
		for _, i := range resolveSel(b, b.Sel) {
			h := hashLanes(b.Cols, i)
			dup := false
			for _, gi := range d.table[h] {
				if rowsEqual(b.Cols, i, d.acc.cols, int(gi)) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			d.table[h] = append(d.table[h], int32(d.acc.n))
			d.acc.appendLane(b, i)
			out = append(out, i)
		}
		d.selBuf = out
		if len(out) == 0 {
			continue
		}
		return &vector.Batch{N: b.N, Cols: b.Cols, Sel: out}, nil
	}
}

func (d *VecDistinct) Close() error {
	d.acc = colAccumulator{}
	d.table = nil
	return d.Input.Close()
}

// rowsEqual compares lane i of batch columns a against stored row j of
// columns b, null-safe, across all columns.
func rowsEqual(a []*vector.Vec, i int, b []*vector.Vec, j int) bool {
	for c := range a {
		if !lanesEqualNullSafe(a[c], i, b[c], j) {
			return false
		}
	}
	return true
}
