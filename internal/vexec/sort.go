// Vectorized sorting, top-N, limiting and duplicate elimination. These
// are the blocking operators that used to force a BatchToRow demotion in
// the middle of provenance pipelines; implementing them column-wise keeps
// ORDER BY / LIMIT / DISTINCT plans on the batch engine end to end.
package vexec

import (
	"sort"

	"perm/internal/exec"
	"perm/internal/obs"
	"perm/internal/spill"
	"perm/internal/types"
	"perm/internal/vector"
)

// colAccumulator collects live batch lanes into growable, unpooled
// columns (the materialization side of sort/top-N/set operations).
type colAccumulator struct {
	cols []*vector.Vec
	n    int
}

// initFrom sizes the accumulator after the first batch's column kinds.
func (a *colAccumulator) initFrom(b *vector.Batch) {
	if a.cols != nil {
		return
	}
	a.cols = make([]*vector.Vec, len(b.Cols))
	for j, c := range b.Cols {
		a.cols[j] = vector.NewVec(c.Kind, 0)
	}
}

// appendLanes copies the given live lanes of the batch.
func (a *colAccumulator) appendLanes(b *vector.Batch, lanes []int) {
	a.initFrom(b)
	for j, c := range b.Cols {
		a.cols[j].AppendLanes(c, lanes)
	}
	a.n += len(lanes)
}

// appendLane copies one live lane of the batch.
func (a *colAccumulator) appendLane(b *vector.Batch, lane int) {
	a.initFrom(b)
	for j, c := range b.Cols {
		a.cols[j].AppendFrom(c, lane)
	}
	a.n++
}

// emitter streams gathered windows of an accumulator in batch-sized
// chunks, recycling the gather buffers between chunks.
type emitter struct {
	cols  []*vector.Vec
	order []int32
	pos   int
	owned []*vector.Vec
	buf   []*vector.Vec
}

func (e *emitter) reset(cols []*vector.Vec, order []int32) {
	e.cols, e.order, e.pos = cols, order, 0
}

func (e *emitter) next() *vector.Batch {
	for _, v := range e.owned {
		v.Free()
	}
	e.owned = e.owned[:0]
	if e.pos >= len(e.order) {
		return nil
	}
	hi := e.pos + vector.BatchSize
	if hi > len(e.order) {
		hi = len(e.order)
	}
	chunk := e.order[e.pos:hi]
	e.pos = hi
	if e.buf == nil {
		e.buf = make([]*vector.Vec, len(e.cols))
	}
	for j, c := range e.cols {
		e.buf[j] = vector.GatherBatch(c, chunk, c.Kind)
	}
	e.owned = append(e.owned[:0], e.buf...)
	return &vector.Batch{N: len(chunk), Cols: e.buf}
}

func (e *emitter) close() {
	for _, v := range e.owned {
		v.Free()
	}
	e.owned = e.owned[:0]
}

// ---------------------------------------------------------------------------
// VecSort

// VecSort materializes its input into columns and orders it with a
// column-wise multi-key comparator (stable, NULLS LAST ascending / first
// descending — the row engine's convention exactly). Under a memory
// budget (Spill) it becomes an external merge sort: input segments that
// no longer fit are sorted and written as spill runs, and the output is
// a fan-in-capped multi-pass k-way merge whose order is identical to the
// in-memory sort's.
type VecSort struct {
	obs.Card
	Input Node
	Keys  []exec.SortKey
	Spill spill.Resources

	// Parallel worker mode (set by NewParallelSort): every accumulated
	// row gets a hidden trailing column holding its global input ordinal
	// (from the morsel tap), which also becomes the final ascending sort
	// key. The worker then emits width+1 columns; the coordinator merges
	// worker streams on (keys, ordinal) and strips the ordinal.
	Tap *MorselTap

	acc      colAccumulator
	emit     emitter
	accBytes int64
	kinds    []types.Kind
	classes  []cmpClass
	sortKeys []exec.SortKey
	runs     []*spill.Run
	merger   *runMerger
}

// NewVecSort returns a vectorized sort node.
func NewVecSort(input Node, keys []exec.SortKey) *VecSort {
	return &VecSort{Input: input, Keys: keys}
}

// Spilled reports whether the sort went external (EXPLAIN/tests).
func (s *VecSort) Spilled() bool { return len(s.runs) > 0 }

// flushRun sorts the accumulated segment and writes it out as one run,
// releasing the segment's memory.
func (s *VecSort) flushRun() error {
	if s.acc.n == 0 {
		return nil
	}
	order := sortedOrder(s.acc.cols, s.acc.n, s.sortKeys, s.classes)
	run, err := writeOrdered(s.Spill, s.acc.cols, order)
	if err != nil {
		return err
	}
	s.runs = append(s.runs, run)
	s.acc = colAccumulator{}
	s.Spill.Res.Release(s.accBytes)
	s.accBytes = 0
	return nil
}

func (s *VecSort) Open() (err error) {
	s.acc = colAccumulator{}
	s.accBytes = 0
	s.merger = nil
	s.sortKeys = s.Keys
	s.classes = nil
	closeRuns(s.runs)
	s.runs = nil
	// A failed Open never sees a matching Close from the parent, so the
	// sort must unwind its own spill state: release reserved bytes and
	// close any runs written before the error.
	defer func() {
		if err != nil {
			closeRuns(s.runs)
			s.runs = nil
			s.acc = colAccumulator{}
			s.accBytes = 0
			s.Spill.Res.ReleaseAll()
		}
	}()
	if err := s.Input.Open(); err != nil {
		return err
	}
	budgeted := s.Spill.Enabled()
	for {
		b, err := s.Input.Next()
		if err != nil {
			s.Input.Close() //nolint:errcheck — unwinding after a failed drain
			return err
		}
		if b == nil {
			break
		}
		if s.classes == nil {
			s.kinds = colKinds(b.Cols)
			s.classes = sortKeyClasses(s.Keys, b.Cols)
			if s.Tap != nil {
				// Hidden ordinal column: last data column, last (ascending)
				// sort key.
				s.kinds = append(s.kinds, types.KindInt)
				s.classes = append(s.classes, classify(types.KindInt, types.KindInt))
				s.sortKeys = append(append([]exec.SortKey{}, s.Keys...), exec.SortKey{Pos: len(b.Cols)})
			}
		}
		lanes := resolveSel(b, b.Sel)
		if budgeted {
			delta := batchBytes(b.Cols, lanes)
			if s.Tap != nil {
				delta += 8 * int64(len(lanes))
			}
			if !s.Spill.Res.Grow(delta) {
				if err := s.flushRun(); err != nil {
					s.Input.Close() //nolint:errcheck
					return err
				}
				s.Spill.Res.Force(delta)
			}
			s.accBytes += delta
		}
		s.acc.appendLanes(b, lanes)
		if s.Tap != nil {
			if len(s.acc.cols) == len(b.Cols) {
				s.acc.cols = append(s.acc.cols, vector.NewVec(types.KindInt, 0))
			}
			seqCol := s.acc.cols[len(s.acc.cols)-1]
			base := s.Tap.Base()
			for k := range lanes {
				appendI(seqCol, base+int64(k))
			}
		}
	}
	if err := s.Input.Close(); err != nil {
		return err
	}
	if len(s.runs) == 0 {
		order := sortedOrder(s.acc.cols, s.acc.n, s.sortKeys, s.classes)
		s.emit.reset(s.acc.cols, order)
		return nil
	}
	// External path: spill the tail segment too, reduce to the merge
	// fan-in, and stream the final merge.
	if err := s.flushRun(); err != nil {
		return err
	}
	s.runs, err = reduceRuns(s.Spill, s.runs, s.sortKeys, s.classes, s.kinds)
	if err != nil {
		return err
	}
	s.merger, err = newRunMerger(s.runs, s.sortKeys, s.classes, s.kinds)
	return err
}

func (s *VecSort) Next() (*vector.Batch, error) {
	if s.merger != nil {
		return s.merger.next()
	}
	return s.emit.next(), nil
}

func (s *VecSort) Close() error {
	s.emit.close()
	s.acc = colAccumulator{}
	s.merger = nil
	closeRuns(s.runs)
	s.runs = nil
	s.accBytes = 0
	s.Spill.Res.ReleaseAll()
	return nil
}

// ---------------------------------------------------------------------------
// VecTopN

// VecTopN is the limit-aware sort: it keeps only the top
// offset+count rows in a bounded max-heap while draining its input
// (O(n log k) comparisons, bounded candidate storage), then emits them in
// order with the offset skipped. Ties resolve by input order, matching
// the row engine's stable sort + LIMIT.
type VecTopN struct {
	obs.Card
	Input  Node
	Keys   []exec.SortKey
	Count  int64 // ≥ 0
	Offset int64

	acc     colAccumulator
	classes []cmpClass
	heap    []int32 // max-heap over accumulated rows ("worst" on top)
	emit    emitter
}

// NewVecTopN returns a vectorized top-N node keeping offset+count rows.
func NewVecTopN(input Node, keys []exec.SortKey, count, offset int64) *VecTopN {
	return &VecTopN{Input: input, Keys: keys, Count: count, Offset: offset}
}

// rowLess orders accumulated rows i and j by the sort keys, breaking
// ties by insertion index (stability).
func (t *VecTopN) rowLess(i, j int32) bool {
	for k, key := range t.Keys {
		col := t.acc.cols[key.Pos]
		c := compareSortLanes(t.classes[k], col, int(i), col, int(j))
		if c == 0 {
			continue
		}
		if key.Desc {
			return c > 0
		}
		return c < 0
	}
	return i < j
}

// laneBeatsWorst reports whether batch lane i sorts strictly before the
// current heap maximum (an incoming row never displaces an equal-keyed
// earlier row: ties keep the earlier arrival, like a stable sort).
func (t *VecTopN) laneBeatsWorst(b *vector.Batch, i int) bool {
	worst := int(t.heap[0])
	for k, key := range t.Keys {
		col := b.Cols[key.Pos]
		c := compareSortLanes(t.classes[k], col, i, t.acc.cols[key.Pos], worst)
		if c == 0 {
			continue
		}
		if key.Desc {
			return c > 0
		}
		return c < 0
	}
	return false // equal keys: the earlier row wins
}

func (t *VecTopN) siftDown(at int) {
	n := len(t.heap)
	for {
		l, r := 2*at+1, 2*at+2
		largest := at
		if l < n && t.rowLess(t.heap[largest], t.heap[l]) {
			largest = l
		}
		if r < n && t.rowLess(t.heap[largest], t.heap[r]) {
			largest = r
		}
		if largest == at {
			return
		}
		t.heap[at], t.heap[largest] = t.heap[largest], t.heap[at]
		at = largest
	}
}

func (t *VecTopN) siftUp(at int) {
	for at > 0 {
		parent := (at - 1) / 2
		if !t.rowLess(t.heap[parent], t.heap[at]) {
			return
		}
		t.heap[at], t.heap[parent] = t.heap[parent], t.heap[at]
		at = parent
	}
}

func (t *VecTopN) Open() error {
	t.acc = colAccumulator{}
	t.heap = t.heap[:0]
	k := t.Offset + t.Count
	if err := t.Input.Open(); err != nil {
		return err
	}
	for {
		b, err := t.Input.Next()
		if err != nil {
			t.Input.Close() //nolint:errcheck — unwinding after a failed drain
			return err
		}
		if b == nil {
			break
		}
		if k == 0 {
			continue // LIMIT 0: drain for side-effect-free symmetry
		}
		if t.classes == nil {
			t.classes = sortKeyClasses(t.Keys, b.Cols)
		}
		for _, i := range resolveSel(b, b.Sel) {
			if int64(len(t.heap)) < k {
				t.acc.appendLane(b, i)
				t.heap = append(t.heap, int32(t.acc.n-1))
				t.siftUp(len(t.heap) - 1)
				continue
			}
			if !t.laneBeatsWorst(b, i) {
				continue
			}
			t.acc.appendLane(b, i)
			t.heap[0] = int32(t.acc.n - 1)
			t.siftDown(0)
		}
		// Displaced rows stay in the accumulator until compaction; keep
		// its footprint bounded by ~2k rows (plus batch slack) so an
		// adversarial input order cannot materialize the whole stream.
		if int64(t.acc.n) > 2*k+vector.BatchSize {
			t.compact()
		}
	}
	if err := t.Input.Close(); err != nil {
		return err
	}
	order := append([]int32(nil), t.heap...)
	sort.Slice(order, func(x, y int) bool { return t.rowLess(order[x], order[y]) })
	if int64(len(order)) > t.Offset {
		order = order[t.Offset:]
	} else {
		order = nil
	}
	t.emit.reset(t.acc.cols, order)
	return nil
}

// compact rewrites the accumulator down to the heap's live rows,
// reclaiming the storage of displaced candidates. Live rows are copied
// in ascending old-index order, so relative arrival order — the
// comparator's tie-breaker — is preserved and the heap invariant
// survives the relabeling untouched.
func (t *VecTopN) compact() {
	live := append([]int32(nil), t.heap...)
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	remap := make(map[int32]int32, len(live))
	cols := make([]*vector.Vec, len(t.acc.cols))
	for c, col := range t.acc.cols {
		cols[c] = vector.Gather(col, live, col.Kind)
	}
	for newIdx, oldIdx := range live {
		remap[oldIdx] = int32(newIdx)
	}
	for i, h := range t.heap {
		t.heap[i] = remap[h]
	}
	t.acc = colAccumulator{cols: cols, n: len(live)}
}

func (t *VecTopN) Next() (*vector.Batch, error) { return t.emit.next(), nil }

func (t *VecTopN) Close() error {
	t.emit.close()
	t.acc = colAccumulator{}
	t.heap = t.heap[:0]
	return nil
}

// ---------------------------------------------------------------------------
// VecLimit

// VecLimit trims the live-row stream to [Offset, Offset+Count) without
// materializing anything; it stops pulling its input once the count is
// satisfied. A negative Count means no limit (offset only).
type VecLimit struct {
	obs.Card
	Input   Node
	Count   int64
	Offset  int64
	skipped int64
	emitted int64
}

// NewVecLimit returns a vectorized limit node.
func NewVecLimit(input Node, count, offset int64) *VecLimit {
	return &VecLimit{Input: input, Count: count, Offset: offset}
}

func (l *VecLimit) Open() error {
	l.skipped, l.emitted = 0, 0
	return l.Input.Open()
}

func (l *VecLimit) Next() (*vector.Batch, error) {
	for {
		if l.Count >= 0 && l.emitted >= l.Count {
			return nil, nil
		}
		b, err := l.Input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		lanes := resolveSel(b, b.Sel)
		lo := 0
		for lo < len(lanes) && l.skipped < l.Offset {
			l.skipped++
			lo++
		}
		take := len(lanes) - lo
		if l.Count >= 0 {
			if rem := l.Count - l.emitted; int64(take) > rem {
				take = int(rem)
			}
		}
		if take <= 0 {
			continue
		}
		l.emitted += int64(take)
		return &vector.Batch{N: b.N, Cols: b.Cols, Sel: lanes[lo : lo+take]}, nil
	}
}

func (l *VecLimit) Close() error { return l.Input.Close() }

// ---------------------------------------------------------------------------
// VecDistinct

// VecDistinct emits the first occurrence of each distinct row (null-safe
// row equality, first-appearance order — exactly the row engine's
// Distinct). It streams — every row emitted before memory pressure hits
// is provably a first occurrence — and only stops pipelining at the
// moment a budget grant is actually denied: the seen-set is then flushed
// as partial records (row, emitted flag, first-appearance sequence
// number) into hash partitions and the remaining input is absorbed
// without emitting. After the drain the partitions dedup independently
// (the emitted flag suppresses rows that already left during the
// streaming phase) and a final merge on the sequence numbers emits the
// remaining first occurrences in exactly the in-memory order.
type VecDistinct struct {
	obs.Card
	Input Node
	Spill spill.Resources

	acc    colAccumulator
	table  map[uint64][]int32
	selBuf []int

	// Budget-driven spill state.
	emitted  []bool // per group: left the operator during streaming
	tail     bool   // spilled: no more emission until the final merge
	kinds    []types.Kind
	seqs     []int64
	seqCtr   int64
	pending  int64
	accBytes int64
	ps       *partitionSet
	merger   *seqMerger
	outRuns  []*spill.Run
}

// NewVecDistinct returns a vectorized duplicate-elimination node.
func NewVecDistinct(input Node) *VecDistinct { return &VecDistinct{Input: input} }

// Spilled reports whether the operator spilled partitions to disk.
func (d *VecDistinct) Spilled() bool { return d.ps != nil }

// stateKinds etc. implement groupStater: the only accumulator state is
// whether the group's row already left the operator while it was still
// streaming.
func (d *VecDistinct) stateKinds() []types.Kind { return []types.Kind{types.KindBool} }
func (d *VecDistinct) reset()                   { d.emitted = d.emitted[:0] }
func (d *VecDistinct) newGroup()                { d.emitted = append(d.emitted, false) }
func (d *VecDistinct) appendState(g int, dst []*vector.Vec) {
	appendB(dst[0], d.emitted[g])
}
func (d *VecDistinct) mergeState(g int, state []*vector.Vec, lane int) {
	d.emitted[g] = d.emitted[g] || state[0].B[lane]
}

// spillGroups flushes the live seen-set into the partition set and
// resets the in-memory table.
func (d *VecDistinct) spillGroups() error {
	if d.ps == nil {
		d.ps = newPartitionSet(d.Spill, recordKinds(d.kinds, d), 0)
	}
	if err := flushGroupRecords(d.ps, &d.acc, d.seqs, d); err != nil {
		return err
	}
	d.acc = colAccumulator{}
	d.table = make(map[uint64][]int32)
	d.seqs = d.seqs[:0]
	d.emitted = d.emitted[:0]
	d.Spill.Res.Release(d.accBytes)
	d.accBytes = 0
	return nil
}

// insert adds lane i of b to the seen-set; it reports whether the row is
// new (a first occurrence) relative to the current table epoch.
func (d *VecDistinct) insert(b *vector.Batch, i int) bool {
	h := hashLanes(b.Cols, i)
	for _, gi := range d.table[h] {
		if rowsEqual(b.Cols, i, d.acc.cols, int(gi)) {
			return false
		}
	}
	d.table[h] = append(d.table[h], int32(d.acc.n))
	d.acc.appendLane(b, i)
	return true
}

// account tracks one inserted group's bytes, spilling the table when the
// budget denies the grant. It reports whether a spill happened.
func (d *VecDistinct) account(b *vector.Batch, i int) (bool, error) {
	d.pending += laneBytes(b.Cols, i) + groupOverheadBytes
	if d.pending < growQuantum {
		return false, nil
	}
	spilled := false
	if !d.Spill.Res.Grow(d.pending) {
		if err := d.spillGroups(); err != nil {
			return false, err
		}
		d.Spill.Res.Force(d.pending)
		spilled = true
	}
	d.accBytes += d.pending
	d.pending = 0
	return spilled, nil
}

func (d *VecDistinct) Open() error {
	d.acc = colAccumulator{}
	d.table = make(map[uint64][]int32)
	if d.selBuf == nil {
		d.selBuf = make([]int, 0, vector.BatchSize)
	}
	d.seqs = d.seqs[:0]
	d.emitted = d.emitted[:0]
	d.seqCtr, d.pending, d.accBytes = 0, 0, 0
	d.ps, d.merger = nil, nil
	d.tail = false
	closeRuns(d.outRuns)
	d.outRuns = nil
	return d.Input.Open()
}

func (d *VecDistinct) Next() (*vector.Batch, error) {
	if d.merger != nil {
		return d.merger.next()
	}
	if d.tail {
		return d.finishTail()
	}
	budgeted := d.Spill.Enabled()
	for {
		b, err := d.Input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		d.acc.initFrom(b)
		if d.kinds == nil {
			d.kinds = colKinds(b.Cols)
		}
		out := d.selBuf[:0]
		lanes := resolveSel(b, b.Sel)
		for idx := 0; idx < len(lanes); idx++ {
			i := lanes[idx]
			seq := d.seqCtr
			d.seqCtr++
			if !d.insert(b, i) {
				continue
			}
			out = append(out, i)
			if !budgeted {
				continue
			}
			d.seqs = append(d.seqs, seq)
			d.emitted = append(d.emitted, true) // leaves with this batch
			spilled, err := d.account(b, i)
			if err != nil {
				return nil, err
			}
			if spilled {
				// Pipelining ends here: absorb the rest of this batch
				// without emitting, then finish in tail mode. Everything
				// emitted so far was flushed flagged emitted=true, so the
				// final merge will not repeat it.
				d.tail = true
				for _, i2 := range lanes[idx+1:] {
					seq2 := d.seqCtr
					d.seqCtr++
					if !d.insert(b, i2) {
						continue
					}
					d.seqs = append(d.seqs, seq2)
					d.emitted = append(d.emitted, false)
					if _, err := d.account(b, i2); err != nil {
						return nil, err
					}
				}
				break
			}
		}
		d.selBuf = out
		if len(out) > 0 {
			return &vector.Batch{N: b.N, Cols: b.Cols, Sel: out}, nil
		}
		if d.tail {
			return d.finishTail()
		}
	}
}

// finishTail absorbs the remaining input without emitting, merges the
// partitions and streams the not-yet-emitted first occurrences in
// sequence order.
func (d *VecDistinct) finishTail() (*vector.Batch, error) {
	for {
		b, err := d.Input.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		for _, i := range resolveSel(b, b.Sel) {
			seq := d.seqCtr
			d.seqCtr++
			if !d.insert(b, i) {
				continue
			}
			d.seqs = append(d.seqs, seq)
			d.emitted = append(d.emitted, false)
			if _, err := d.account(b, i); err != nil {
				return nil, err
			}
		}
	}
	if d.pending > 0 {
		d.Spill.Res.Force(d.pending)
		d.accBytes += d.pending
		d.pending = 0
	}
	if err := d.spillGroups(); err != nil {
		return nil, err
	}
	runs, err := d.ps.finish()
	if err != nil {
		return nil, err
	}
	d.outRuns, err = processGroupPartitions(d.Spill, runs, d.kinds, d, func(res spill.Resources,
		acc *colAccumulator, seqs []int64, order []int32) (*spill.Run, error) {
		kept := order[:0]
		for _, g := range order {
			if !d.emitted[g] {
				kept = append(kept, g)
			}
		}
		if len(kept) == 0 {
			return nil, nil
		}
		return writeGroupRun(res, acc, kept, []types.Kind{types.KindInt}, func(g int32, extra []*vector.Vec) {
			appendI(extra[0], seqs[g])
		})
	})
	if err != nil {
		return nil, err
	}
	d.merger, err = newSeqMerger(d.outRuns, len(d.kinds), -1, len(d.kinds))
	if err != nil {
		return nil, err
	}
	d.tail = false
	return d.merger.next()
}

func (d *VecDistinct) Close() error {
	d.acc = colAccumulator{}
	d.table = nil
	d.merger = nil
	d.tail = false
	// The spill work happens in Next, so an error there relies on this
	// Close to unwind partition writers still holding files.
	d.ps.abandon()
	closeRuns(d.outRuns)
	d.outRuns = nil
	d.Spill.Res.ReleaseAll()
	return d.Input.Close()
}

// rowsEqual compares lane i of batch columns a against stored row j of
// columns b, null-safe, across all columns.
func rowsEqual(a []*vector.Vec, i int, b []*vector.Vec, j int) bool {
	for c := range a {
		if !lanesEqualNullSafe(a[c], i, b[c], j) {
			return false
		}
	}
	return true
}
