// Grace hash join: partition spilling for the vectorized hash join's
// build side, with the probe side partitioned by the same hash so every
// partition joins independently against an in-memory table. Partitions
// whose build side still exceeds the budget repartition recursively
// under a reseeded hash (skew handling, depth-capped).
//
// Output order is preserved exactly: every probe record carries its
// arrival sequence number, a probe row's matches all live in the one
// partition its key hashes to (emitted in build-input chain order, like
// the in-memory join), and the per-partition output runs — each
// seq-ascending by construction — are recombined by a k-way merge on the
// sequence number. The result is byte-identical to the in-memory join's
// output stream.
package vexec

import (
	"perm/internal/spill"
	"perm/internal/types"
	"perm/internal/vector"
)

// graceJoin is the spilled-mode state of a HashJoin.
type graceJoin struct {
	j          *HashJoin
	res        spill.Resources
	buildKinds []types.Kind // build record: build columns + key columns
	probeKinds []types.Kind // probe record: probe columns + key columns + seq
	buildPS    *partitionSet
	probePS    *partitionSet
	seqCtr     int64
	curBand    int64 // morsel-spine mode: band of the current probe batch
	bandCtr    int64 // morsel-spine mode: probe rows seen within curBand
	outRuns    []*spill.Run
	merger     *seqMerger
}

// cleanup closes everything the grace state may still own: unfinished
// partition writers and finished output runs. Safe to call at any
// failure point and after normal completion (all sub-cleanups are
// no-ops once ownership has moved on).
func (g *graceJoin) cleanup() {
	if g == nil {
		return
	}
	g.buildPS.abandon()
	g.probePS.abandon()
	closeRuns(g.outRuns)
	g.outRuns = nil
}

// joinWorkItem pairs one partition's build and probe runs (either may be
// nil) at a repartitioning depth.
type joinWorkItem struct {
	build, probe *spill.Run
	depth        int
	seed         uint64
}

// startGrace switches the join into Grace mode mid-build: the rows
// accumulated so far are rehashed into build partitions and the
// in-memory build storage is released.
func (j *HashJoin) startGrace(hashes []uint64) (*graceJoin, error) {
	g := &graceJoin{j: j, res: j.Spill, curBand: -1}
	g.buildKinds = append(append([]types.Kind{}, j.RightKinds...), exprKinds(j.RightKeys)...)
	g.probeKinds = append(append([]types.Kind{}, j.LeftKinds...), exprKinds(j.LeftKeys)...)
	g.probeKinds = append(g.probeKinds, types.KindInt)
	g.buildPS = newPartitionSet(j.Spill, g.buildKinds, 0)
	nb := len(hashes)
	for r := 0; r < nb; r++ {
		h := hashes[r]
		rr := r
		err := g.buildPS.addFunc(h, func(dst []*vector.Vec) {
			for c := range j.buildCols {
				dst[c].AppendFrom(j.buildCols[c], rr)
			}
			off := len(j.buildCols)
			for k := range j.buildKeys {
				dst[off+k].AppendFrom(j.buildKeys[k], rr)
			}
		})
		if err != nil {
			g.buildPS.abandon()
			return nil, err
		}
	}
	return g, nil
}

// exprKinds returns the static kinds of compiled expressions.
func exprKinds(es []*Expr) []types.Kind {
	kinds := make([]types.Kind, len(es))
	for i, e := range es {
		kinds[i] = e.Kind()
	}
	return kinds
}

// addBuild routes one build lane (batch columns plus evaluated keys)
// into its partition.
func (g *graceJoin) addBuild(cols []*vector.Vec, keys []*vector.Vec, lane int) error {
	return g.buildPS.addFunc(hashLanes(keys, lane), func(dst []*vector.Vec) {
		for c := range cols {
			dst[c].AppendFrom(cols[c], lane)
		}
		off := len(cols)
		for k := range keys {
			dst[off+k].AppendFrom(keys[k], lane)
		}
	})
}

// runProbe drains the opened probe side into probe partitions, joins
// every partition pair, and prepares the sequence merge. Called from
// HashJoin.Open after the build side finished in Grace mode.
func (g *graceJoin) runProbe() error {
	j := g.j
	g.probePS = newPartitionSet(g.res, g.probeKinds, 0)
	for {
		b, err := j.Left.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		keys := make([]*vector.Vec, len(j.LeftKeys))
		for k, ke := range j.LeftKeys {
			kv, err := ke.fn(b, b.Sel)
			if err != nil {
				return err
			}
			keys[k] = kv
		}
		// On a morsel-driven spine the sequence tags must stay globally
		// comparable across workers: band<<seqShift | row-within-band,
		// exactly the tap's tag scheme, instead of a join-local counter.
		if j.TagSrc != nil {
			if band := j.TagSrc.CurrentBand(); band != g.curBand {
				g.curBand, g.bandCtr = band, 0
			}
		}
		for _, i := range resolveSel(b, b.Sel) {
			var seq int64
			if j.TagSrc != nil {
				seq = g.curBand<<seqShift | g.bandCtr
				g.bandCtr++
			} else {
				seq = g.seqCtr
				g.seqCtr++
			}
			nullKey := false
			for k := range keys {
				if !j.NullSafe[k] && keys[k].Nulls.Get(i) {
					nullKey = true
					break
				}
			}
			if nullKey && j.Type == InnerJoin {
				continue // matches nothing, emits nothing
			}
			lane := i
			err := g.probePS.addFunc(hashLanes(keys, i), func(dst []*vector.Vec) {
				for c := range b.Cols {
					dst[c].AppendFrom(b.Cols[c], lane)
				}
				off := len(b.Cols)
				for k := range keys {
					dst[off+k].AppendFrom(keys[k], lane)
				}
				appendI(dst[len(dst)-1], seq)
			})
			if err != nil {
				return err
			}
		}
		for k, kv := range keys {
			j.LeftKeys[k].FreeResult(kv)
		}
	}

	buildRuns, err := g.buildPS.finishAll()
	if err != nil {
		return err
	}
	probeRuns, err := g.probePS.finishAll()
	if err != nil {
		for _, r := range buildRuns {
			r.Close() //nolint:errcheck
		}
		return err
	}
	stack := make([]joinWorkItem, 0, spillPartitions)
	for p := 0; p < spillPartitions; p++ {
		stack = append(stack, joinWorkItem{build: buildRuns[p], probe: probeRuns[p], depth: 1, seed: 1})
	}
	defer func() {
		for _, it := range stack {
			it.build.Close() //nolint:errcheck
			it.probe.Close() //nolint:errcheck
		}
	}()
	for len(stack) > 0 {
		item := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		children, out, err := g.processPartition(item)
		if err != nil {
			return err
		}
		stack = append(stack, children...)
		if out != nil {
			g.outRuns = append(g.outRuns, out)
		}
	}
	width := len(j.LeftKinds) + len(j.RightKinds)
	g.merger, err = newSeqMerger(g.outRuns, width, -1, width)
	if err == nil && j.TagSrc != nil {
		// Batches must not span morsel bands, or the exchange above could
		// not interleave another worker's intervening morsels.
		g.merger.bandShift = seqShift
	}
	return err
}

// processPartition joins one partition pair. It returns child work items
// when the build side had to repartition, or the partition's output run.
// The item's runs are always closed.
func (g *graceJoin) processPartition(item joinWorkItem) (children []joinWorkItem, out *spill.Run, err error) {
	j := g.j
	defer item.build.Close() //nolint:errcheck — temp storage, already unlinked
	defer item.probe.Close() //nolint:errcheck
	if item.probe == nil {
		// No probe rows: inner and left joins emit nothing for this
		// partition regardless of its build rows.
		return nil, nil, nil
	}
	nBuildCols := len(j.RightKinds)
	nKeys := len(j.RightKeys)

	// Load the build partition, repartitioning on budget pressure.
	acc := &colAccumulator{}
	var itemBytes int64
	defer func() { g.res.Res.Release(itemBytes) }()
	if item.build != nil {
		for {
			cols, n, rerr := item.build.ReadCols()
			if rerr != nil {
				return nil, nil, rerr
			}
			if n == 0 {
				break
			}
			delta := batchBytes(cols, identitySel[:n])
			granted := g.res.Res.Grow(delta)
			if !granted && item.depth < maxRepartitionDepth {
				children, err := g.repartition(item, acc, cols, n)
				g.res.Res.Release(itemBytes)
				itemBytes = 0
				return children, nil, err
			}
			if !granted {
				g.res.Res.Force(delta) // depth exhausted: complete over budget
			}
			itemBytes += delta
			acc.appendLanes(&vector.Batch{N: n, Cols: cols}, identitySel[:n])
		}
	}
	buildData := make([]*vector.Vec, nBuildCols)
	buildKeys := make([]*vector.Vec, nKeys)
	if acc.n > 0 {
		copy(buildData, acc.cols[:nBuildCols])
		copy(buildKeys, acc.cols[nBuildCols:])
	}
	// Chain the partition's build rows in reverse so probing visits them
	// in build-input order, exactly like the in-memory join.
	heads := make(map[uint64]int32, acc.n)
	next := make([]int32, acc.n)
	for r := acc.n - 1; r >= 0; r-- {
		h := hashLanes(buildKeys, r)
		if head, ok := heads[h]; ok {
			next[r] = head
		} else {
			next[r] = -1
		}
		heads[h] = int32(r)
	}

	// Stream the probe partition against the table, emitting seq-tagged
	// pairs.
	w := newPairWriter(g.res, j.LeftKinds, j.RightKinds)
	for {
		cols, n, rerr := item.probe.ReadCols()
		if rerr != nil {
			w.abandon()
			return nil, nil, rerr
		}
		if n == 0 {
			break
		}
		probeData := cols[:len(j.LeftKinds)]
		probeKeys := cols[len(j.LeftKinds) : len(j.LeftKinds)+nKeys]
		seqCol := cols[len(cols)-1]
		for i := 0; i < n; i++ {
			nullKey := false
			for k := range probeKeys {
				if !j.NullSafe[k] && probeKeys[k].Nulls.Get(i) {
					nullKey = true
					break
				}
			}
			matched := false
			if !nullKey && !j.neverMatch && acc.n > 0 {
				h := hashLanes(probeKeys, i)
				for bi := heads[h]; bi >= 0; bi = next[bi] {
					if storedKeysMatch(j.NullSafe, probeKeys, i, buildKeys, int(bi)) {
						if err := w.pair(probeData, i, buildData, int(bi), seqCol.I[i]); err != nil {
							w.abandon()
							return nil, nil, err
						}
						matched = true
					}
				}
			}
			if !matched && j.Type == LeftJoin {
				if err := w.pair(probeData, i, nil, -1, seqCol.I[i]); err != nil {
					w.abandon()
					return nil, nil, err
				}
			}
		}
	}
	out, err = w.finish()
	if err != nil {
		return nil, nil, err
	}
	return nil, out, nil
}

// repartition pushes a skewed partition one level down: the build rows
// loaded so far plus the rest of the build run, and the whole probe run,
// are rerouted under a reseeded hash.
func (g *graceJoin) repartition(item joinWorkItem, acc *colAccumulator, cols []*vector.Vec, n int) ([]joinWorkItem, error) {
	j := g.j
	nBuildCols := len(j.RightKinds)
	childBuild := newPartitionSet(g.res, g.buildKinds, item.seed+1)
	for r := 0; r < acc.n; r++ {
		if err := childBuild.addRecord(acc.cols, r, hashLanes(acc.cols[nBuildCols:], r)); err != nil {
			childBuild.abandon()
			return nil, err
		}
	}
	for {
		for i := 0; i < n; i++ {
			if err := childBuild.addRecord(cols, i, hashLanes(cols[nBuildCols:len(cols)], i)); err != nil {
				childBuild.abandon()
				return nil, err
			}
		}
		var err error
		cols, n, err = item.build.ReadCols()
		if err != nil {
			childBuild.abandon()
			return nil, err
		}
		if n == 0 {
			break
		}
	}
	childProbe := newPartitionSet(g.res, g.probeKinds, item.seed+1)
	nProbeCols := len(j.LeftKinds)
	nKeys := len(j.LeftKeys)
	for {
		pcols, pn, err := item.probe.ReadCols()
		if err != nil {
			childBuild.abandon()
			childProbe.abandon()
			return nil, err
		}
		if pn == 0 {
			break
		}
		for i := 0; i < pn; i++ {
			if err := childProbe.addRecord(pcols, i, hashLanes(pcols[nProbeCols:nProbeCols+nKeys], i)); err != nil {
				childBuild.abandon()
				childProbe.abandon()
				return nil, err
			}
		}
	}
	buildRuns, err := childBuild.finishAll()
	if err != nil {
		childBuild.abandon()
		childProbe.abandon()
		return nil, err
	}
	probeRuns, err := childProbe.finishAll()
	if err != nil {
		childProbe.abandon()
		for _, r := range buildRuns {
			r.Close() //nolint:errcheck
		}
		return nil, err
	}
	var children []joinWorkItem
	for p := 0; p < spillPartitions; p++ {
		children = append(children, joinWorkItem{
			build: buildRuns[p], probe: probeRuns[p],
			depth: item.depth + 1, seed: item.seed + 1,
		})
	}
	return children, nil
}

// storedKeysMatch compares a probe record's key lanes against a build
// record's under per-key null-safety (the spilled twin of keysMatch).
func storedKeysMatch(nullSafe []bool, pk []*vector.Vec, pi int, bk []*vector.Vec, bi int) bool {
	for k := range pk {
		pn, bn := pk[k].Nulls.Get(pi), bk[k].Nulls.Get(bi)
		if nullSafe[k] {
			if pn || bn {
				if pn && bn {
					continue
				}
				return false
			}
		} else if pn || bn {
			return false
		}
		if !lanesEqualNullSafe(pk[k], pi, bk[k], bi) {
			return false
		}
	}
	return true
}

// pairWriter buffers seq-tagged join output rows and writes them to one
// output run in batch-sized chunks. A nil build side null-extends.
type pairWriter struct {
	res   spill.Resources
	run   *spill.Run
	cols  []*vector.Vec
	kinds []types.Kind
	nL    int
	n     int
	rows  int64
}

func newPairWriter(res spill.Resources, leftKinds, rightKinds []types.Kind) *pairWriter {
	kinds := append(append([]types.Kind{}, leftKinds...), rightKinds...)
	kinds = append(kinds, types.KindInt)
	w := &pairWriter{res: res, kinds: kinds, nL: len(leftKinds)}
	w.resetBuf()
	return w
}

func (w *pairWriter) resetBuf() {
	w.cols = make([]*vector.Vec, len(w.kinds))
	for c, k := range w.kinds {
		w.cols[c] = vector.NewVec(k, 0)
	}
	w.n = 0
}

func (w *pairWriter) pair(left []*vector.Vec, li int, right []*vector.Vec, ri int, seq int64) error {
	for c := 0; c < w.nL; c++ {
		w.cols[c].AppendFrom(left[c], li)
	}
	for c := w.nL; c < len(w.kinds)-1; c++ {
		if right == nil {
			appendValue(w.cols[c], types.NewNull(w.kinds[c]))
		} else {
			w.cols[c].AppendFrom(right[c-w.nL], ri)
		}
	}
	appendI(w.cols[len(w.kinds)-1], seq)
	w.n++
	w.rows++
	if w.n >= vector.BatchSize {
		return w.flush()
	}
	return nil
}

func (w *pairWriter) flush() error {
	if w.n == 0 {
		return nil
	}
	if w.run == nil {
		run, err := spill.NewRun(w.res.Dir)
		if err != nil {
			return err
		}
		w.run = run
	}
	if err := w.run.WriteCols(w.cols, w.n); err != nil {
		return err
	}
	w.resetBuf()
	return nil
}

// finish flushes and returns the output run (nil if no rows were
// emitted).
func (w *pairWriter) finish() (*spill.Run, error) {
	if err := w.flush(); err != nil {
		w.abandon()
		return nil, err
	}
	if w.run == nil {
		return nil, nil
	}
	if err := w.run.Finish(); err != nil {
		w.abandon()
		return nil, err
	}
	w.res.Res.NoteSpill(w.run.Bytes())
	return w.run, nil
}

func (w *pairWriter) abandon() {
	if w.run != nil {
		w.run.Close() //nolint:errcheck
		w.run = nil
	}
}
