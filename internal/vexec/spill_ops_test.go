package vexec_test

import (
	"fmt"
	"testing"

	"perm/internal/algebra"
	"perm/internal/exec"
	"perm/internal/mem"
	"perm/internal/spill"
	"perm/internal/types"
	"perm/internal/vexec"
)

// tinyRes returns spill resources with the given session budget, plus
// the budget for stat assertions.
func tinyRes(t *testing.T, limit int64) (spill.Resources, *mem.Budget) {
	t.Helper()
	b := mem.NewGovernor(0).Session(limit)
	return spill.Resources{Res: b.Reserve("test"), Dir: t.TempDir()}, b
}

// rowStrings renders rows for exact (order-sensitive) comparison.
func rowStrings(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	return out
}

func assertSameRows(t *testing.T, got, want []types.Row, what string) {
	t.Helper()
	g, w := rowStrings(got), rowStrings(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, want %d", what, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d = %s, want %s", what, i, g[i], w[i])
		}
	}
}

// pairRows builds (i%mod, i, label) rows — duplicate keys, stable-order
// sensitive payloads, and a string column to exercise the codec.
func pairRows(n, mod int) []types.Row {
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(i % mod)),
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("s%d", i%13)),
		}
	}
	return rows
}

var pairKinds = []types.Kind{types.KindInt, types.KindInt, types.KindString}

func colExpr(t *testing.T, col int, kind types.Kind) *vexec.Expr {
	t.Helper()
	e, err := vexec.CompileExpr(&algebra.Var{Col: col, Typ: kind, Name: "c"}, posBinder{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestVecSortSpillMultiPass forces dozens of spill runs (well past the
// merge fan-in) and requires the external sort's output to be identical
// to the in-memory sort's, stable ties included.
func TestVecSortSpillMultiPass(t *testing.T) {
	data := pairRows(50000, 97)
	keys := []exec.SortKey{{Pos: 0}, {Pos: 2, Desc: true}}
	want := drainRows(t, vexec.NewVecSort(scanOf(t, pairKinds, data), keys))

	res, budget := tinyRes(t, 16<<10)
	ext := vexec.NewVecSort(scanOf(t, pairKinds, data), keys)
	ext.Spill = res
	assertSameRows(t, drainRows(t, ext), want, "external sort")
	st := budget.Stats()
	if st.SpillEvents < 10 {
		t.Fatalf("expected many spill runs (multi-pass), got %d events", st.SpillEvents)
	}
	if st.InUse != 0 {
		t.Fatalf("reservation leak: %d bytes", st.InUse)
	}
}

// TestHashAggSpill: partial-group flushing with state merge must produce
// the same groups, values and first-appearance order as the in-memory
// aggregation.
func TestHashAggSpill(t *testing.T) {
	data := pairRows(25000, 4999)
	mkAgg := func() *vexec.HashAgg {
		return vexec.NewHashAgg(
			scanOf(t, pairKinds, data),
			[]*vexec.Expr{colExpr(t, 0, types.KindInt)},
			[]vexec.AggSpec{
				{Fn: algebra.AggCount, Star: true, ResultKind: types.KindInt},
				{Fn: algebra.AggSum, Arg: colExpr(t, 1, types.KindInt), ResultKind: types.KindInt},
				{Fn: algebra.AggMin, Arg: colExpr(t, 2, types.KindString), ResultKind: types.KindString},
				{Fn: algebra.AggMax, Arg: colExpr(t, 1, types.KindInt), ResultKind: types.KindInt},
				{Fn: algebra.AggAvg, Arg: colExpr(t, 1, types.KindInt), ResultKind: types.KindFloat},
			})
	}
	want := drainRows(t, mkAgg())
	res, budget := tinyRes(t, 24<<10)
	agg := mkAgg()
	agg.Spill = res
	assertSameRows(t, drainRows(t, agg), want, "spilled hash agg")
	if budget.Stats().BytesSpilled == 0 {
		t.Fatal("aggregation under a 24 KiB budget did not spill")
	}
}

// TestVecDistinctSpill: partitioned dedup must keep exactly the first
// occurrences, in first-appearance order.
func TestVecDistinctSpill(t *testing.T) {
	data := pairRows(25000, 6007)
	want := drainRows(t, vexec.NewVecDistinct(scanOf(t, pairKinds, data)))
	res, budget := tinyRes(t, 24<<10)
	d := vexec.NewVecDistinct(scanOf(t, pairKinds, data))
	d.Spill = res
	assertSameRows(t, drainRows(t, d), want, "spilled distinct")
	if budget.Stats().BytesSpilled == 0 {
		t.Fatal("distinct under a 24 KiB budget did not spill")
	}
}

// TestVecSetOpSpill covers the multiplicity-expanding merge of the
// spilled set operation across all kinds.
func TestVecSetOpSpill(t *testing.T) {
	left := pairRows(15000, 2003)
	right := pairRows(10000, 3001)
	for _, c := range []struct {
		kind exec.SetOpKind
		all  bool
	}{
		{exec.Union, false}, {exec.Intersect, true}, {exec.Intersect, false},
		{exec.Except, true}, {exec.Except, false},
	} {
		name := fmt.Sprintf("%v-all=%v", c.kind, c.all)
		want := drainRows(t, vexec.NewVecSetOp(
			scanOf(t, pairKinds, left), scanOf(t, pairKinds, right), c.kind, c.all))
		res, budget := tinyRes(t, 24<<10)
		op := vexec.NewVecSetOp(scanOf(t, pairKinds, left), scanOf(t, pairKinds, right), c.kind, c.all)
		op.Spill = res
		assertSameRows(t, drainRows(t, op), want, name)
		if budget.Stats().BytesSpilled == 0 {
			t.Fatalf("%s under a 24 KiB budget did not spill", name)
		}
	}
}

// TestHashJoinGrace: the partitioned join must emit exactly the
// in-memory join's stream — probe order, per-probe matches in
// build-input order, null extension included.
func TestHashJoinGrace(t *testing.T) {
	probe := pairRows(12000, 541)
	build := pairRows(6000, 761) // dup keys → multiple matches per probe row
	for _, jt := range []vexec.JoinType{vexec.InnerJoin, vexec.LeftJoin} {
		mk := func() *vexec.HashJoin {
			return vexec.NewHashJoin(
				scanOf(t, pairKinds, probe), scanOf(t, pairKinds, build),
				[]*vexec.Expr{colExpr(t, 0, types.KindInt)},
				[]*vexec.Expr{colExpr(t, 0, types.KindInt)},
				[]bool{false}, jt, pairKinds, pairKinds)
		}
		want := drainRows(t, mk())
		res, budget := tinyRes(t, 24<<10)
		j := mk()
		j.Spill = res
		assertSameRows(t, drainRows(t, j), want, fmt.Sprintf("grace join type=%d", jt))
		if budget.Stats().BytesSpilled == 0 {
			t.Fatalf("join type %d under a 24 KiB budget did not spill", jt)
		}
		if st := budget.Stats(); st.InUse != 0 {
			t.Fatalf("join type %d leaked %d reserved bytes", jt, st.InUse)
		}
	}
}

// TestHashJoinGraceNullSafe pins the null-safe key path through the
// partitioned join (NULL IS NOT DISTINCT FROM NULL must keep matching
// after the spill).
func TestHashJoinGraceNullSafe(t *testing.T) {
	withNulls := func(n, mod int) []types.Row {
		rows := pairRows(n, mod)
		for i := 0; i < n; i += 17 {
			rows[i][0] = types.NewNull(types.KindInt)
		}
		return rows
	}
	probe := withNulls(8000, 431)
	build := withNulls(3000, 653)
	mk := func() *vexec.HashJoin {
		return vexec.NewHashJoin(
			scanOf(t, pairKinds, probe), scanOf(t, pairKinds, build),
			[]*vexec.Expr{colExpr(t, 0, types.KindInt)},
			[]*vexec.Expr{colExpr(t, 0, types.KindInt)},
			[]bool{true}, vexec.InnerJoin, pairKinds, pairKinds)
	}
	want := drainRows(t, mk())
	res, budget := tinyRes(t, 24<<10)
	j := mk()
	j.Spill = res
	assertSameRows(t, drainRows(t, j), want, "null-safe grace join")
	if budget.Stats().BytesSpilled == 0 {
		t.Fatal("null-safe join under a 24 KiB budget did not spill")
	}
}

// TestRowSortSpill pins the row engine's external sort against the
// in-memory one.
func TestRowSortSpill(t *testing.T) {
	data := pairRows(50000, 97)
	keys := []exec.SortKey{{Pos: 0}, {Pos: 2, Desc: true}}
	want, err := exec.Collect(exec.NewSort(exec.NewScan(data), keys))
	if err != nil {
		t.Fatal(err)
	}
	b := mem.NewGovernor(0).Session(16 << 10)
	s := exec.NewSort(exec.NewScan(data), keys)
	s.Spill = spill.Resources{Res: b.Reserve("sort"), Dir: t.TempDir()}
	got, err := exec.Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, got, want, "row external sort")
	if st := b.Stats(); st.SpillEvents < 10 {
		t.Fatalf("expected many row-sort spill runs, got %d", st.SpillEvents)
	}
}
