// Vectorized nested-loop join: the fallback join for conditions without
// extractable equi-keys (cross joins, theta joins, and the cross-shaped
// outer joins the provenance rewriter emits for sublink provenance).
// The right side is materialized into columns once; probe batches then
// pair with it in batch-sized chunks assembled by gather, so no boxed
// row is ever built — on provenance-rewritten queries whose output is a
// wide cross product this replaces one row allocation per pair with
// columnar copies.
package vexec

import (
	"perm/internal/obs"
	"perm/internal/types"
	"perm/internal/vector"
)

// NLJoin is a vectorized nested-loop join (inner or left outer; right
// and full stay on the row engine). Cond, when non-nil, is evaluated
// over the concatenated pair batch and participates in the match
// decision, so left joins with arbitrary residual conditions are
// supported.
type NLJoin struct {
	obs.Card
	Left, Right Node
	Cond        *Expr // nil = cross join
	Type        JoinType
	LeftKinds   []types.Kind
	RightKinds  []types.Kind

	build colAccumulator

	curBatch *vector.Batch
	lanes    []int // live lanes of curBatch
	li, ri   int   // pair cursor into lanes × build rows
	matched  []bool
	flushed  bool // null-extension for curBatch emitted

	pairL, pairR []int32
	selBuf       []int
	emitOwned    []*vector.Vec
	emitBuf      []*vector.Vec
	aq           *obs.ActiveQuery
}

// NewNLJoin returns a vectorized nested-loop join node.
func NewNLJoin(left, right Node, cond *Expr, jt JoinType, leftKinds, rightKinds []types.Kind) *NLJoin {
	return &NLJoin{Left: left, Right: right, Cond: cond, Type: jt, LeftKinds: leftKinds, RightKinds: rightKinds}
}

func (j *NLJoin) Open() error {
	j.build = colAccumulator{}
	if err := j.Right.Open(); err != nil {
		return err
	}
	for {
		b, err := j.Right.Next()
		if err != nil {
			j.Right.Close() //nolint:errcheck — unwinding after a failed build
			return err
		}
		if b == nil {
			break
		}
		j.build.appendLanes(b, resolveSel(b, b.Sel))
	}
	if err := j.Right.Close(); err != nil {
		return err
	}
	// An empty build side still needs typed columns for gather/null
	// extension.
	if j.build.cols == nil {
		j.build.cols = make([]*vector.Vec, len(j.RightKinds))
		for i, k := range j.RightKinds {
			j.build.cols[i] = vector.NewVec(k, 0)
		}
	}
	j.curBatch = nil
	j.flushed = true
	return j.Left.Open()
}

// SetActivity attaches the active-query registration so cooperative
// cancellation is observed once per emitted batch: a cross join emits
// millions of batches per probe-scan pull, so polling at the scans alone
// would leave cancellation latency unbounded.
func (j *NLJoin) SetActivity(aq *obs.ActiveQuery) { j.aq = aq }

func (j *NLJoin) Next() (*vector.Batch, error) {
	if err := j.aq.CancelErr(); err != nil {
		return nil, err
	}
	for {
		if j.curBatch != nil {
			b, err := j.pairChunk()
			if err != nil {
				return nil, err
			}
			if b != nil {
				return b, nil
			}
		}
		b, err := j.Left.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		j.curBatch = b
		j.lanes = resolveSel(b, b.Sel)
		j.li, j.ri = 0, 0
		j.flushed = false
		if j.Type == LeftJoin {
			if cap(j.matched) < len(j.lanes) {
				j.matched = make([]bool, len(j.lanes))
			} else {
				j.matched = j.matched[:len(j.lanes)]
				for i := range j.matched {
					j.matched[i] = false
				}
			}
		}
	}
}

// pairChunk assembles and emits the next batch of surviving pairs from
// the current probe batch, or the null-extended unmatched lanes once all
// pairs are exhausted (left join). Returns nil when the probe batch is
// fully consumed.
func (j *NLJoin) pairChunk() (*vector.Batch, error) {
	n := j.build.n
	for j.li < len(j.lanes) {
		// Collect up to BatchSize candidate pairs.
		j.pairL, j.pairR = j.pairL[:0], j.pairR[:0]
		for j.li < len(j.lanes) && len(j.pairL) < vector.BatchSize {
			if n == 0 {
				j.li = len(j.lanes)
				break
			}
			j.pairL = append(j.pairL, int32(j.lanes[j.li]))
			j.pairR = append(j.pairR, int32(j.ri))
			j.ri++
			if j.ri >= n {
				j.ri = 0
				j.li++
			}
		}
		if len(j.pairL) == 0 {
			break
		}
		out := j.gatherPairs(j.pairL, j.pairR)
		if j.Cond != nil {
			pv, err := j.Cond.fn(out, nil)
			if err != nil {
				return nil, err
			}
			if j.selBuf == nil {
				j.selBuf = make([]int, 0, vector.BatchSize)
			}
			sel := j.selBuf[:0]
			for i := 0; i < out.N; i++ {
				if !pv.Nulls.Get(i) && pv.B[i] {
					sel = append(sel, i)
				}
			}
			j.Cond.FreeResult(pv)
			j.selBuf = sel
			if j.Type == LeftJoin {
				// Map surviving pairs back to their probe lanes. The
				// chunk covers a contiguous run of (lane, build) pairs;
				// recover the lane index from the chunk position.
				for _, i := range sel {
					j.markMatched(j.pairL[i])
				}
			}
			if len(sel) == 0 {
				continue
			}
			if len(sel) < out.N {
				out.Sel = sel
			}
			return out, nil
		}
		if j.Type == LeftJoin {
			for _, l := range j.pairL {
				j.markMatched(l)
			}
		}
		return out, nil
	}
	// Pairs exhausted: emit null-extended unmatched lanes (left join).
	if j.Type == LeftJoin && !j.flushed {
		j.flushed = true
		j.pairL = j.pairL[:0]
		for idx, lane := range j.lanes {
			if !j.matched[idx] {
				j.pairL = append(j.pairL, int32(lane))
			}
		}
		if len(j.pairL) > 0 {
			j.pairR = j.pairR[:0]
			for range j.pairL {
				j.pairR = append(j.pairR, -1)
			}
			out := j.gatherPairs(j.pairL, j.pairR)
			j.curBatch = nil
			return out, nil
		}
	}
	j.curBatch = nil
	return nil, nil
}

// markMatched records that probe lane `lane` produced a pair. Lanes are
// in increasing order in j.lanes; a linear scan from the current cursor
// would be O(1), but chunk boundaries make binary search simpler.
func (j *NLJoin) markMatched(lane int32) {
	lo, hi := 0, len(j.lanes)
	for lo < hi {
		mid := (lo + hi) / 2
		if int32(j.lanes[mid]) < lane {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(j.lanes) && int32(j.lanes[lo]) == lane {
		j.matched[lo] = true
	}
}

// gatherPairs materializes a pair chunk into an output batch, recycling
// the previous chunk's buffers. A build index of -1 produces NULLs
// (null extension).
func (j *NLJoin) gatherPairs(pairL, pairR []int32) *vector.Batch {
	for _, v := range j.emitOwned {
		v.Free()
	}
	j.emitOwned = j.emitOwned[:0]
	if j.emitBuf == nil {
		j.emitBuf = make([]*vector.Vec, len(j.LeftKinds)+len(j.RightKinds))
	}
	cols := j.emitBuf
	for c, k := range j.LeftKinds {
		cols[c] = vector.GatherBatch(j.curBatch.Cols[c], pairL, k)
	}
	off := len(j.LeftKinds)
	for c, k := range j.RightKinds {
		cols[off+c] = vector.GatherBatch(j.build.cols[c], pairR, k)
	}
	j.emitOwned = append(j.emitOwned, cols...)
	return &vector.Batch{N: len(pairL), Cols: cols}
}

func (j *NLJoin) Close() error {
	err := j.Left.Close()
	for _, v := range j.emitOwned {
		v.Free()
	}
	j.emitOwned = j.emitOwned[:0]
	j.build = colAccumulator{}
	j.curBatch = nil
	return err
}
