// Runtime join filters: when a vectorized hash join finishes its build
// side, it publishes a compact summary of the build keys — a min/max
// range plus a small Bloom filter — that probe-side scans apply as an
// extra selection pass. Probe tuples whose key cannot possibly match any
// build row are pruned before they flow through the (potentially deep)
// probe-side pipeline; the payoff is largest on provenance-rewritten
// joins whose build side is the small rewritten subquery.
package vexec

import (
	"sync/atomic"

	"perm/internal/types"
	"perm/internal/vector"
)

// bloomMaxBits caps the Bloom filter size (64 KiB of bits = 8 KiB).
const bloomMaxBits = 1 << 16

// RuntimeFilter is the published summary of one hash-join build key. It
// is created unready at plan time, bound to the probe-side scan column,
// and published by the join when the build completes; the join's Open
// order (build before probe) guarantees publication happens before the
// scan produces its first batch. A filter never admits a lane the join
// would not also match, so pruning is semantically invisible: it only
// removes inner-join probe tuples that produce no output.
type RuntimeFilter struct {
	// NullSafe mirrors the key's comparison semantics: a null-safe key
	// (IS NOT DISTINCT FROM) matches NULL with NULL, so NULL probe lanes
	// are admitted iff the build side saw a NULL; for a plain '=' key a
	// NULL probe lane matches nothing and is pruned outright.
	NullSafe bool

	// Publication is atomic and exactly-once: the first builder to call
	// PublishFrom claims the filter (claimed CAS), writes the summary
	// fields, and only then stores ready — so once a probe-side reader
	// observes Ready() the summary is complete, and concurrent builders
	// (replicated pipelines racing on a shared filter) can never produce
	// a torn or twice-written summary.
	claimed   atomic.Bool
	ready     atomic.Bool
	hasNull   bool
	buildKind types.Kind

	hasRange   bool
	minI, maxI int64
	minF, maxF float64
	minS, maxS string

	bloom []uint64
	mask  uint64
}

// NewRuntimeFilter returns an unready filter for a key with the given
// null-comparison semantics.
func NewRuntimeFilter(nullSafe bool) *RuntimeFilter {
	return &RuntimeFilter{NullSafe: nullSafe}
}

// PublishFrom summarizes the n build-key lanes and marks the filter
// ready. An empty build publishes an empty Bloom filter, which rejects
// everything — correct, since an inner join with an empty build side
// emits nothing. Publication happens exactly once: after the first
// builder claims the filter, later calls return without touching it.
func (rf *RuntimeFilter) PublishFrom(keys *vector.Vec, n int) {
	if !rf.claimed.CompareAndSwap(false, true) {
		return
	}
	rf.buildKind = keys.Kind
	bits := 64
	for bits < 8*n && bits < bloomMaxBits {
		bits <<= 1
	}
	rf.bloom = make([]uint64, bits/64)
	rf.mask = uint64(bits - 1)
	rf.hasNull = false
	rf.hasRange = false
	first := true
	for i := 0; i < n; i++ {
		if keys.Nulls.Get(i) {
			rf.hasNull = true
			continue
		}
		h := mix64(hashLane(fnvOffset64, keys, i))
		rf.setBit(h & rf.mask)
		rf.setBit((h >> 32) & rf.mask)
		switch keys.Kind {
		case types.KindInt, types.KindDate:
			v := keys.I[i]
			if first || v < rf.minI {
				rf.minI = v
			}
			if first || v > rf.maxI {
				rf.maxI = v
			}
			f := float64(v)
			if first || f < rf.minF {
				rf.minF = f
			}
			if first || f > rf.maxF {
				rf.maxF = f
			}
			first, rf.hasRange = false, true
		case types.KindFloat:
			f := keys.F[i]
			if first || f < rf.minF {
				rf.minF = f
			}
			if first || f > rf.maxF {
				rf.maxF = f
			}
			first, rf.hasRange = false, true
		case types.KindString:
			s := keys.S[i]
			if first || s < rf.minS {
				rf.minS = s
			}
			if first || s > rf.maxS {
				rf.maxS = s
			}
			first, rf.hasRange = false, true
		}
	}
	rf.ready.Store(true)
}

// Ready reports whether the summary has been published. The atomic load
// pairs with PublishFrom's final store: a reader that observes true also
// observes every summary field written before it.
func (rf *RuntimeFilter) Ready() bool { return rf.ready.Load() }

func (rf *RuntimeFilter) setBit(b uint64) { rf.bloom[b>>6] |= 1 << (b & 63) }
func (rf *RuntimeFilter) testBit(b uint64) bool {
	return rf.bloom[b>>6]&(1<<(b&63)) != 0
}

// mix64 is the murmur3 finalizer. The raw FNV lane hash keeps the low
// bits of float64-boxed integers constant (their mantissa tails are
// zero), which would make low-bit Bloom probes value-independent;
// finalizing spreads every input bit over the whole word.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// admit reports whether probe lane i of col can possibly match a build
// row. It is conservative in exactly one direction: it may admit lanes
// that do not match, never the reverse.
func (rf *RuntimeFilter) admit(col *vector.Vec, i int) bool {
	if col.Nulls.Get(i) {
		return rf.NullSafe && rf.hasNull
	}
	if rf.hasRange {
		switch classify(col.Kind, rf.buildKind) {
		case classInt:
			if v := col.I[i]; v < rf.minI || v > rf.maxI {
				return false
			}
		case classFloat:
			if f := numAt(col, i); f < rf.minF || f > rf.maxF {
				return false
			}
		case classString:
			if s := col.S[i]; s < rf.minS || s > rf.maxS {
				return false
			}
		}
	}
	h := mix64(hashLane(fnvOffset64, col, i))
	return rf.testBit(h&rf.mask) && rf.testBit((h>>32)&rf.mask)
}
