package vexec_test

import (
	"fmt"
	"testing"

	"perm/internal/algebra"
	"perm/internal/eval"
	"perm/internal/exec"
	"perm/internal/types"
	"perm/internal/vector"
	"perm/internal/vexec"
)

// posBinder binds Vars positionally (RT ignored) and rejects sublinks.
type posBinder struct{}

func (posBinder) BindVar(v *algebra.Var) (int, error) { return v.Col, nil }
func (posBinder) BindSubLink(*algebra.SubLink) (eval.SubLinkValue, error) {
	return nil, fmt.Errorf("no sublinks in vexec tests")
}

// scanOf pivots rows into a columnar scan.
func scanOf(t *testing.T, kinds []types.Kind, rows []types.Row) *vexec.ColScan {
	t.Helper()
	cols, ok := vector.FromRows(rows, kinds)
	if !ok {
		t.Fatal("rows do not pivot")
	}
	return vexec.NewColScan(cols, len(rows))
}

// drainRows runs a vectorized tree to completion through the row adapter.
func drainRows(t *testing.T, n vexec.Node) []types.Row {
	t.Helper()
	rows, err := exec.Collect(vexec.NewRowSource(n))
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func intRows(vals ...interface{}) []types.Row {
	rows := make([]types.Row, len(vals))
	for i, v := range vals {
		if v == nil {
			rows[i] = types.Row{types.NewNull(types.KindInt)}
		} else {
			rows[i] = types.Row{types.NewInt(int64(v.(int)))}
		}
	}
	return rows
}

func firstInts(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r[0].String()
	}
	return out
}

func TestVecSortNullsAndDirections(t *testing.T) {
	kinds := []types.Kind{types.KindInt}
	data := intRows(3, nil, 1, 2, nil, 1)
	asc := drainRows(t, vexec.NewVecSort(scanOf(t, kinds, data), []exec.SortKey{{Pos: 0}}))
	if got, want := fmt.Sprint(firstInts(asc)), "[1 1 2 3 NULL NULL]"; got != want {
		t.Errorf("asc = %s, want %s (NULLS LAST ascending)", got, want)
	}
	desc := drainRows(t, vexec.NewVecSort(scanOf(t, kinds, data), []exec.SortKey{{Pos: 0, Desc: true}}))
	if got, want := fmt.Sprint(firstInts(desc)), "[NULL NULL 3 2 1 1]"; got != want {
		t.Errorf("desc = %s, want %s (NULLS FIRST descending)", got, want)
	}
}

func TestVecSortStability(t *testing.T) {
	kinds := []types.Kind{types.KindInt, types.KindInt}
	var rows []types.Row
	for i := 0; i < 2000; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i % 3)), types.NewInt(int64(i))})
	}
	sorted := drainRows(t, vexec.NewVecSort(scanOf(t, kinds, rows), []exec.SortKey{{Pos: 0}}))
	last := int64(-1)
	for _, r := range sorted {
		if r[0].I == 0 { // within one key group, input order must persist
			if r[1].I <= last {
				t.Fatalf("unstable sort: %d after %d", r[1].I, last)
			}
			last = r[1].I
		}
	}
}

func TestVecTopNMatchesSortLimit(t *testing.T) {
	kinds := []types.Kind{types.KindInt, types.KindInt}
	var rows []types.Row
	for i := 0; i < 3000; i++ {
		rows = append(rows, types.Row{types.NewInt(int64((i * 37) % 101)), types.NewInt(int64(i))})
	}
	keys := []exec.SortKey{{Pos: 0}, {Pos: 1, Desc: true}}
	for _, lim := range []struct{ count, offset int64 }{{10, 0}, {5, 7}, {0, 0}, {5000, 0}} {
		full := drainRows(t, vexec.NewVecSort(scanOf(t, kinds, rows), keys))
		lo := lim.offset
		if lo > int64(len(full)) {
			lo = int64(len(full))
		}
		hi := lo + lim.count
		if hi > int64(len(full)) {
			hi = int64(len(full))
		}
		want := full[lo:hi]
		got := drainRows(t, vexec.NewVecTopN(scanOf(t, kinds, rows), keys, lim.count, lim.offset))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("topn(count=%d offset=%d) diverges from sort+limit: %d vs %d rows",
				lim.count, lim.offset, len(got), len(want))
		}
	}
}

// TestVecTopNDescendingInput drives the compaction path: with input
// arriving in descending order under an ascending sort, every row beats
// the heap maximum, so without compaction the accumulator would
// materialize the whole stream.
func TestVecTopNDescendingInput(t *testing.T) {
	kinds := []types.Kind{types.KindInt}
	var rows []types.Row
	const n = 20000
	for i := 0; i < n; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(n - i))})
	}
	got := drainRows(t, vexec.NewVecTopN(scanOf(t, kinds, rows), []exec.SortKey{{Pos: 0}}, 5, 2))
	if fmt.Sprint(firstInts(got)) != "[3 4 5 6 7]" {
		t.Fatalf("topn over descending input = %v", firstInts(got))
	}
}

func TestVecLimitAcrossBatches(t *testing.T) {
	kinds := []types.Kind{types.KindInt}
	var rows []types.Row
	for i := 0; i < 3000; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i))})
	}
	got := drainRows(t, vexec.NewVecLimit(scanOf(t, kinds, rows), 10, 1500))
	if len(got) != 10 || got[0][0].I != 1500 || got[9][0].I != 1509 {
		t.Fatalf("limit 10 offset 1500 = %v", firstInts(got))
	}
	// Offset beyond the input yields nothing.
	if got := drainRows(t, vexec.NewVecLimit(scanOf(t, kinds, rows), 10, 5000)); len(got) != 0 {
		t.Fatalf("offset beyond input: %d rows", len(got))
	}
}

func TestVecDistinctFirstAppearance(t *testing.T) {
	kinds := []types.Kind{types.KindInt}
	got := drainRows(t, vexec.NewVecDistinct(scanOf(t, kinds, intRows(2, 1, 2, nil, 1, nil, 3))))
	if fmt.Sprint(firstInts(got)) != "[2 1 NULL 3]" {
		t.Fatalf("distinct = %v", firstInts(got))
	}
}

func TestVecSetOpMultisetSemantics(t *testing.T) {
	kinds := []types.Kind{types.KindInt}
	left := intRows(1, 1, 2, nil, nil)
	right := intRows(1, 3, nil)
	cases := []struct {
		kind exec.SetOpKind
		all  bool
		want string
	}{
		{exec.Union, true, "[1 1 2 NULL NULL 1 3 NULL]"},
		{exec.Union, false, "[1 2 NULL 3]"},
		{exec.Intersect, true, "[1 NULL]"},
		{exec.Intersect, false, "[1 NULL]"},
		{exec.Except, true, "[1 2 NULL]"},
		{exec.Except, false, "[2]"},
	}
	for _, c := range cases {
		got := drainRows(t, vexec.NewVecSetOp(scanOf(t, kinds, left), scanOf(t, kinds, right), c.kind, c.all))
		if fmt.Sprint(firstInts(got)) != c.want {
			t.Errorf("setop(kind=%d all=%v) = %v, want %s", c.kind, c.all, firstInts(got), c.want)
		}
	}
}

// compileVar builds a vectorized column reference for operator tests.
func compileVar(t *testing.T, col int, kind types.Kind) *vexec.Expr {
	t.Helper()
	e, err := vexec.CompileExpr(&algebra.Var{RT: 0, Col: col, Typ: kind}, posBinder{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNLJoinInnerAndLeftWithCondition(t *testing.T) {
	kinds := []types.Kind{types.KindInt}
	// cond: left.col0 < right.col0, i.e. flat positions 0 and 1.
	cond, err := vexec.CompileExpr(&algebra.BinOp{
		Op:   "<",
		Left: &algebra.Var{RT: 0, Col: 0, Typ: types.KindInt},
		Right: &algebra.Var{
			RT: 0, Col: 1, Typ: types.KindInt,
		},
		Typ: types.KindBool,
	}, posBinder{})
	if err != nil {
		t.Fatal(err)
	}
	leftRows := intRows(1, 5, nil)
	rightRows := intRows(2, 4)
	inner := drainRows(t, vexec.NewNLJoin(
		scanOf(t, kinds, leftRows), scanOf(t, kinds, rightRows),
		cond, vexec.InnerJoin, kinds, kinds))
	if len(inner) != 2 { // 1<2, 1<4
		t.Fatalf("inner rows = %v", inner)
	}
	outer := drainRows(t, vexec.NewNLJoin(
		scanOf(t, kinds, leftRows), scanOf(t, kinds, rightRows),
		cond, vexec.LeftJoin, kinds, kinds))
	if len(outer) != 4 { // (1,2),(1,4), 5 null-extended, NULL null-extended
		t.Fatalf("left-join rows = %v", outer)
	}
	nullExtended := 0
	for _, r := range outer {
		if r[1].Null {
			nullExtended++
		}
	}
	if nullExtended != 2 {
		t.Fatalf("null-extended rows = %d, want 2", nullExtended)
	}
	// Cross join (nil cond) over many batches.
	var big []types.Row
	for i := 0; i < 2500; i++ {
		big = append(big, types.Row{types.NewInt(int64(i))})
	}
	cross := drainRows(t, vexec.NewNLJoin(
		scanOf(t, kinds, big), scanOf(t, kinds, intRows(7, 8, 9)),
		nil, vexec.InnerJoin, kinds, kinds))
	if len(cross) != 7500 {
		t.Fatalf("cross join rows = %d, want 7500", len(cross))
	}
}

func TestRuntimeFilterPrunesScan(t *testing.T) {
	kinds := []types.Kind{types.KindInt}
	var rows []types.Row
	for i := 0; i < 5000; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i))})
	}
	rows = append(rows, types.Row{types.NewNull(types.KindInt)})
	scan := scanOf(t, kinds, rows)

	build := vector.NewVec(types.KindInt, 3)
	build.I[0], build.I[1], build.I[2] = 10, 20, 4999

	rf := vexec.NewRuntimeFilter(false)
	scan.AddRuntimeFilter(rf, 0)
	rf.PublishFrom(build, 3)

	got := drainRows(t, scan)
	if len(got) > 64 {
		t.Fatalf("runtime filter admitted %d of 5001 lanes", len(got))
	}
	seen := map[int64]bool{}
	for _, r := range got {
		if r[0].Null {
			t.Fatal("non-null-safe filter must prune NULL probe lanes")
		}
		seen[r[0].I] = true
	}
	for _, must := range []int64{10, 20, 4999} {
		if !seen[must] {
			t.Fatalf("build value %d was pruned", must)
		}
	}

	// Null-safe: NULL probe lanes survive iff the build saw a NULL.
	nb := vector.NewVec(types.KindInt, 2)
	nb.I[0] = 10
	nb.SetNull(1)
	scan2 := scanOf(t, kinds, rows)
	rf2 := vexec.NewRuntimeFilter(true)
	scan2.AddRuntimeFilter(rf2, 0)
	rf2.PublishFrom(nb, 2)
	sawNull := false
	for _, r := range drainRows(t, scan2) {
		if r[0].Null {
			sawNull = true
		}
	}
	if !sawNull {
		t.Fatal("null-safe filter with a NULL build key must admit NULL probe lanes")
	}

	// Empty build rejects everything (inner join with no build rows).
	scan3 := scanOf(t, kinds, rows)
	rf3 := vexec.NewRuntimeFilter(false)
	scan3.AddRuntimeFilter(rf3, 0)
	rf3.PublishFrom(vector.NewVec(types.KindInt, 0), 0)
	if got := drainRows(t, scan3); len(got) != 0 {
		t.Fatalf("empty build must reject all lanes, admitted %d", len(got))
	}
}

// TestHashJoinPublishesAfterBuild pins the Open order contract: the
// build side completes (and publishes) before the probe side opens.
func TestHashJoinPublishesAfterBuild(t *testing.T) {
	kinds := []types.Kind{types.KindInt}
	var probeRows []types.Row
	for i := 0; i < 3000; i++ {
		probeRows = append(probeRows, types.Row{types.NewInt(int64(i))})
	}
	probe := scanOf(t, kinds, probeRows)
	buildScan := scanOf(t, kinds, intRows(5, 100, 2500))

	lk := []*vexec.Expr{compileVar(t, 0, types.KindInt)}
	rk := []*vexec.Expr{compileVar(t, 0, types.KindInt)}
	j := vexec.NewHashJoin(probe, buildScan, lk, rk, []bool{false}, vexec.InnerJoin, kinds, kinds)
	rf := vexec.NewRuntimeFilter(false)
	probe.AddRuntimeFilter(rf, 0)
	j.Publish = []*vexec.RuntimeFilter{rf}

	got := drainRows(t, j)
	if len(got) != 3 {
		t.Fatalf("join rows = %d, want 3", len(got))
	}
	// Re-execution must republish and still be correct.
	got = drainRows(t, j)
	if len(got) != 3 {
		t.Fatalf("re-executed join rows = %d, want 3", len(got))
	}
}
