// Vectorized bag/set operations, implementing the multiset semantics of
// the paper's Fig. 1 exactly like the row engine's SetOp: UNION ALL adds
// multiplicities (and streams), INTERSECT ALL takes the minimum, EXCEPT
// ALL subtracts; the set variants apply DISTINCT projection to the
// multiset result. Output order is first appearance across the left then
// right input, matching the row engine.
package vexec

import (
	"perm/internal/exec"
	"perm/internal/vector"
)

// VecSetOp computes a set operation over two vectorized inputs whose
// column kinds match exactly (the planner checks; mismatched branches
// stay on the row engine).
type VecSetOp struct {
	Left, Right Node
	Kind        exec.SetOpKind
	All         bool

	// Streaming state (UNION ALL).
	phase int // 0 = left, 1 = right, 2 = done

	// Materialized state (everything else).
	acc    colAccumulator
	table  map[uint64][]int32
	nL, mR []int64
	emit   emitter
}

// NewVecSetOp returns a vectorized set-operation node.
func NewVecSetOp(left, right Node, kind exec.SetOpKind, all bool) *VecSetOp {
	return &VecSetOp{Left: left, Right: right, Kind: kind, All: all}
}

// streaming reports whether the operation passes batches through without
// materializing (UNION ALL).
func (s *VecSetOp) streaming() bool { return s.Kind == exec.Union && s.All }

func (s *VecSetOp) Open() error {
	if s.streaming() {
		s.phase = 0
		return s.Left.Open()
	}
	s.acc = colAccumulator{}
	s.table = make(map[uint64][]int32)
	s.nL, s.mR = s.nL[:0], s.mR[:0]
	if err := s.Left.Open(); err != nil {
		return err
	}
	if err := s.drain(s.Left, true); err != nil {
		s.Left.Close() //nolint:errcheck — unwinding after a failed drain
		return err
	}
	if err := s.Left.Close(); err != nil {
		return err
	}
	if err := s.Right.Open(); err != nil {
		return err
	}
	if err := s.drain(s.Right, false); err != nil {
		s.Right.Close() //nolint:errcheck — unwinding after a failed drain
		return err
	}
	if err := s.Right.Close(); err != nil {
		return err
	}

	// Emit multiplicities per distinct row, in first-appearance order.
	var order []int32
	for e := 0; e < s.acc.n; e++ {
		var count int64
		switch s.Kind {
		case exec.Union:
			// Set semantics: distinct union.
			if s.nL[e]+s.mR[e] > 0 {
				count = 1
			}
		case exec.Intersect:
			count = s.nL[e]
			if s.mR[e] < count {
				count = s.mR[e]
			}
			if !s.All && count > 0 {
				count = 1
			}
		case exec.Except:
			if s.All {
				count = s.nL[e] - s.mR[e]
			} else if s.nL[e] > 0 && s.mR[e] == 0 {
				count = 1
			}
		}
		for i := int64(0); i < count; i++ {
			order = append(order, int32(e))
		}
	}
	s.emit.reset(s.acc.cols, order)
	return nil
}

// drain folds one input into the distinct-row table with per-side
// multiplicities.
func (s *VecSetOp) drain(in Node, left bool) error {
	for {
		b, err := in.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		s.acc.initFrom(b)
		for _, i := range resolveSel(b, b.Sel) {
			h := hashLanes(b.Cols, i)
			e := int32(-1)
			for _, gi := range s.table[h] {
				if rowsEqual(b.Cols, i, s.acc.cols, int(gi)) {
					e = gi
					break
				}
			}
			if e < 0 {
				e = int32(s.acc.n)
				s.table[h] = append(s.table[h], e)
				s.acc.appendLane(b, i)
				s.nL = append(s.nL, 0)
				s.mR = append(s.mR, 0)
			}
			if left {
				s.nL[e]++
			} else {
				s.mR[e]++
			}
		}
	}
}

func (s *VecSetOp) Next() (*vector.Batch, error) {
	if !s.streaming() {
		return s.emit.next(), nil
	}
	for {
		switch s.phase {
		case 0:
			b, err := s.Left.Next()
			if err != nil {
				return nil, err
			}
			if b != nil {
				return b, nil
			}
			if err := s.Left.Close(); err != nil {
				return nil, err
			}
			if err := s.Right.Open(); err != nil {
				return nil, err
			}
			s.phase = 1
		case 1:
			b, err := s.Right.Next()
			if err != nil {
				return nil, err
			}
			if b != nil {
				return b, nil
			}
			if err := s.Right.Close(); err != nil {
				return nil, err
			}
			s.phase = 2
		default:
			return nil, nil
		}
	}
}

func (s *VecSetOp) Close() error {
	s.emit.close()
	s.acc = colAccumulator{}
	s.table = nil
	if s.streaming() {
		// Inputs were closed as their phases completed; closing again is
		// harmless for our nodes but skip the bookkeeping.
		switch s.phase {
		case 0:
			return s.Left.Close()
		case 1:
			return s.Right.Close()
		}
	}
	return nil
}
