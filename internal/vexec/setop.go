// Vectorized bag/set operations, implementing the multiset semantics of
// the paper's Fig. 1 exactly like the row engine's SetOp: UNION ALL adds
// multiplicities (and streams), INTERSECT ALL takes the minimum, EXCEPT
// ALL subtracts; the set variants apply DISTINCT projection to the
// multiset result. Output order is first appearance across the left then
// right input, matching the row engine. Under a memory budget the
// distinct-row table spills partial records (row, per-side counts,
// first-appearance sequence number) into hash partitions; partitions
// merge the counts independently and a final sequence merge restores the
// exact in-memory output order, multiplicities expanded on the fly.
package vexec

import (
	"perm/internal/exec"
	"perm/internal/obs"
	"perm/internal/spill"
	"perm/internal/types"
	"perm/internal/vector"
)

// VecSetOp computes a set operation over two vectorized inputs whose
// column kinds match exactly (the planner checks; mismatched branches
// stay on the row engine).
type VecSetOp struct {
	obs.Card
	Left, Right Node
	Kind        exec.SetOpKind
	All         bool
	Spill       spill.Resources

	// Streaming state (UNION ALL).
	phase int // 0 = left, 1 = right, 2 = done

	// Materialized state (everything else).
	acc    colAccumulator
	table  map[uint64][]int32
	nL, mR []int64
	emit   emitter

	// Budget-driven spill state.
	kinds    []types.Kind
	seqs     []int64
	seqCtr   int64
	pending  int64
	accBytes int64
	ps       *partitionSet
	merger   *seqMerger
	outRuns  []*spill.Run
}

// NewVecSetOp returns a vectorized set-operation node.
func NewVecSetOp(left, right Node, kind exec.SetOpKind, all bool) *VecSetOp {
	return &VecSetOp{Left: left, Right: right, Kind: kind, All: all}
}

// streaming reports whether the operation passes batches through without
// materializing (UNION ALL).
func (s *VecSetOp) streaming() bool { return s.Kind == exec.Union && s.All }

// Spilled reports whether the operator spilled partitions to disk.
func (s *VecSetOp) Spilled() bool { return s.ps != nil }

// stateKinds etc. implement groupStater over the per-side multiplicity
// counters.
func (s *VecSetOp) stateKinds() []types.Kind { return []types.Kind{types.KindInt, types.KindInt} }

func (s *VecSetOp) reset() { s.nL, s.mR = s.nL[:0], s.mR[:0] }

func (s *VecSetOp) newGroup() {
	s.nL = append(s.nL, 0)
	s.mR = append(s.mR, 0)
}

func (s *VecSetOp) appendState(g int, dst []*vector.Vec) {
	appendI(dst[0], s.nL[g])
	appendI(dst[1], s.mR[g])
}

func (s *VecSetOp) mergeState(g int, state []*vector.Vec, lane int) {
	s.nL[g] += state[0].I[lane]
	s.mR[g] += state[1].I[lane]
}

// countFor computes the output multiplicity of distinct row e under the
// operation's multiset semantics.
func (s *VecSetOp) countFor(e int) int64 {
	var count int64
	switch s.Kind {
	case exec.Union:
		// Set semantics: distinct union.
		if s.nL[e]+s.mR[e] > 0 {
			count = 1
		}
	case exec.Intersect:
		count = s.nL[e]
		if s.mR[e] < count {
			count = s.mR[e]
		}
		if !s.All && count > 0 {
			count = 1
		}
	case exec.Except:
		if s.All {
			count = s.nL[e] - s.mR[e]
		} else if s.nL[e] > 0 && s.mR[e] == 0 {
			count = 1
		}
	}
	return count
}

// spillGroups flushes the live distinct-row table into the partition set
// and resets it.
func (s *VecSetOp) spillGroups() error {
	if s.ps == nil {
		s.ps = newPartitionSet(s.Spill, recordKinds(s.kinds, s), 0)
	}
	if err := flushGroupRecords(s.ps, &s.acc, s.seqs, s); err != nil {
		return err
	}
	s.acc = colAccumulator{}
	s.table = make(map[uint64][]int32)
	s.seqs = s.seqs[:0]
	s.nL, s.mR = s.nL[:0], s.mR[:0]
	s.Spill.Res.Release(s.accBytes)
	s.accBytes = 0
	return nil
}

func (s *VecSetOp) Open() (err error) {
	if s.streaming() {
		s.phase = 0
		return s.Left.Open()
	}
	s.acc = colAccumulator{}
	s.table = make(map[uint64][]int32)
	s.nL, s.mR = s.nL[:0], s.mR[:0]
	s.seqs = s.seqs[:0]
	s.seqCtr, s.pending, s.accBytes = 0, 0, 0
	s.ps, s.merger = nil, nil
	closeRuns(s.outRuns)
	s.outRuns = nil
	// A failed Open never sees a matching Close from the parent: unwind
	// the spill state here (reserved bytes, partition writers, outputs).
	defer func() {
		if err != nil {
			s.ps.abandon()
			closeRuns(s.outRuns)
			s.outRuns = nil
			s.acc = colAccumulator{}
			s.Spill.Res.ReleaseAll()
		}
	}()
	if err := s.Left.Open(); err != nil {
		return err
	}
	if err := s.drain(s.Left, true); err != nil {
		s.Left.Close() //nolint:errcheck — unwinding after a failed drain
		return err
	}
	if err := s.Left.Close(); err != nil {
		return err
	}
	if err := s.Right.Open(); err != nil {
		return err
	}
	if err := s.drain(s.Right, false); err != nil {
		s.Right.Close() //nolint:errcheck — unwinding after a failed drain
		return err
	}
	if err := s.Right.Close(); err != nil {
		return err
	}

	if s.ps == nil {
		// Emit multiplicities per distinct row, in first-appearance order.
		var order []int32
		for e := 0; e < s.acc.n; e++ {
			for i := int64(0); i < s.countFor(e); i++ {
				order = append(order, int32(e))
			}
		}
		s.emit.reset(s.acc.cols, order)
		return nil
	}
	if s.pending > 0 {
		s.Spill.Res.Force(s.pending)
		s.accBytes += s.pending
		s.pending = 0
	}
	if err := s.spillGroups(); err != nil {
		return err
	}
	runs, err := s.ps.finish()
	if err != nil {
		return err
	}
	s.outRuns, err = processGroupPartitions(s.Spill, runs, s.kinds, s, func(res spill.Resources,
		acc *colAccumulator, seqs []int64, order []int32) (*spill.Run, error) {
		kept := order[:0]
		for _, g := range order {
			if s.countFor(int(g)) > 0 {
				kept = append(kept, g)
			}
		}
		if len(kept) == 0 {
			return nil, nil
		}
		return writeGroupRun(res, acc, kept, []types.Kind{types.KindInt, types.KindInt},
			func(g int32, extra []*vector.Vec) {
				appendI(extra[0], s.countFor(int(g)))
				appendI(extra[1], seqs[g])
			})
	})
	if err != nil {
		return err
	}
	s.merger, err = newSeqMerger(s.outRuns, len(s.kinds), len(s.kinds), len(s.kinds)+1)
	return err
}

// drain folds one input into the distinct-row table with per-side
// multiplicities, spilling partial records under budget pressure.
func (s *VecSetOp) drain(in Node, left bool) error {
	budgeted := s.Spill.Enabled()
	for {
		b, err := in.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		s.acc.initFrom(b)
		if s.kinds == nil {
			s.kinds = colKinds(b.Cols)
		}
		for _, i := range resolveSel(b, b.Sel) {
			seq := s.seqCtr
			s.seqCtr++
			h := hashLanes(b.Cols, i)
			e := int32(-1)
			for _, gi := range s.table[h] {
				if rowsEqual(b.Cols, i, s.acc.cols, int(gi)) {
					e = gi
					break
				}
			}
			if e < 0 {
				e = int32(s.acc.n)
				s.table[h] = append(s.table[h], e)
				s.acc.appendLane(b, i)
				s.newGroup()
				s.seqs = append(s.seqs, seq)
				if budgeted {
					s.pending += laneBytes(b.Cols, i) + groupOverheadBytes
					if s.pending >= growQuantum {
						if !s.Spill.Res.Grow(s.pending) {
							if err := s.spillGroups(); err != nil {
								return err
							}
							s.Spill.Res.Force(s.pending)
							// The row just counted was flushed with the
							// rest; recreate its group below.
							e = -1
						}
						s.accBytes += s.pending
						s.pending = 0
					}
				}
			}
			if e < 0 {
				// The group was flushed mid-insert: restart it.
				e = int32(s.acc.n)
				s.table[h] = append(s.table[h], e)
				s.acc.appendLane(b, i)
				s.newGroup()
				s.seqs = append(s.seqs, seq)
			}
			if left {
				s.nL[e]++
			} else {
				s.mR[e]++
			}
		}
	}
}

func (s *VecSetOp) Next() (*vector.Batch, error) {
	if !s.streaming() {
		if s.merger != nil {
			return s.merger.next()
		}
		return s.emit.next(), nil
	}
	for {
		switch s.phase {
		case 0:
			b, err := s.Left.Next()
			if err != nil {
				return nil, err
			}
			if b != nil {
				return b, nil
			}
			if err := s.Left.Close(); err != nil {
				return nil, err
			}
			if err := s.Right.Open(); err != nil {
				return nil, err
			}
			s.phase = 1
		case 1:
			b, err := s.Right.Next()
			if err != nil {
				return nil, err
			}
			if b != nil {
				return b, nil
			}
			if err := s.Right.Close(); err != nil {
				return nil, err
			}
			s.phase = 2
		default:
			return nil, nil
		}
	}
}

func (s *VecSetOp) Close() error {
	s.emit.close()
	s.acc = colAccumulator{}
	s.table = nil
	s.merger = nil
	s.ps.abandon()
	closeRuns(s.outRuns)
	s.outRuns = nil
	s.Spill.Res.ReleaseAll()
	if s.streaming() {
		// Inputs were closed as their phases completed; closing again is
		// harmless for our nodes but skip the bookkeeping.
		switch s.phase {
		case 0:
			return s.Left.Close()
		case 1:
			return s.Right.Close()
		}
	}
	return nil
}
