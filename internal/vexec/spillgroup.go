// Grace-style partition spilling for the grouping operators (hash
// aggregation, DISTINCT, set operations) and the shared partition /
// merge machinery the Grace hash join reuses.
//
// The pattern: the operator aggregates into its in-memory table as
// usual; when the memory reservation denies a grant, every group is
// flushed as a *partial record* — group columns, serialized accumulator
// state, and the sequence number of the group's first appearance — into
// hash partitions on disk, and the (now empty) table keeps absorbing
// input. At the end each partition is drained independently: partials of
// the same group land in the same partition and merge associatively
// (recursively repartitioning with a reseeded hash when a skewed
// partition still exceeds the budget), each partition's groups are
// finalized in first-appearance order, and a k-way merge on the sequence
// number reproduces the exact output order of the in-memory operator.
package vexec

import (
	"sort"

	"perm/internal/spill"
	"perm/internal/types"
	"perm/internal/vector"
)

const (
	// spillPartitions is the fan-out of one partition pass.
	spillPartitions = 8
	// maxRepartitionDepth bounds recursive repartitioning on skew; a
	// partition that still exceeds the budget at the bottom proceeds
	// in memory with forced accounting (completion over precision).
	maxRepartitionDepth = 4
)

// growQuantum batches reservation traffic: operators accumulate a
// pending byte estimate and ask the accountant in chunks of this size.
const growQuantum = 16 << 10

// groupOverheadBytes approximates the per-group bookkeeping cost (hash
// table entry, sequence number, accumulator slack).
const groupOverheadBytes = 48

// laneBytes estimates the heap footprint of one lane copied into
// accumulator columns.
func laneBytes(cols []*vector.Vec, i int) int64 {
	var n int64
	for _, c := range cols {
		switch c.Kind {
		case types.KindBool:
			n++
		case types.KindString:
			n += 16 + int64(len(c.S[i]))
		default:
			n += 8
		}
	}
	return n + int64(len(cols))/4
}

// partitionOf maps a group/key hash to its partition at the given
// repartitioning depth. Reseeding with the depth makes the levels
// independent, so a skewed partition genuinely splits when repartitioned.
func partitionOf(h uint64, seed uint64) int {
	return int(mix64(h^(0x9e3779b97f4a7c15*(seed+1))) & (spillPartitions - 1))
}

// appendI/appendF/appendB/appendS grow a vector by one non-NULL value,
// extending the null bitmap like AppendFrom does.
func appendI(v *vector.Vec, x int64) {
	n := len(v.I)
	v.I = append(v.I, x)
	if n>>6 >= len(v.Nulls) {
		v.Nulls = append(v.Nulls, 0)
	}
}

func appendF(v *vector.Vec, x float64) {
	n := len(v.F)
	v.F = append(v.F, x)
	if n>>6 >= len(v.Nulls) {
		v.Nulls = append(v.Nulls, 0)
	}
}

func appendB(v *vector.Vec, x bool) {
	n := len(v.B)
	v.B = append(v.B, x)
	if n>>6 >= len(v.Nulls) {
		v.Nulls = append(v.Nulls, 0)
	}
}

func appendS(v *vector.Vec, x string) {
	n := len(v.S)
	v.S = append(v.S, x)
	if n>>6 >= len(v.Nulls) {
		v.Nulls = append(v.Nulls, 0)
	}
}

// appendValue grows a vector by one row holding a boxed value (NULL or
// of the vector's kind).
func appendValue(v *vector.Vec, val types.Value) {
	n := v.Len()
	switch v.Kind {
	case types.KindBool:
		v.B = append(v.B, false)
	case types.KindInt, types.KindDate:
		v.I = append(v.I, 0)
	case types.KindFloat:
		v.F = append(v.F, 0)
	case types.KindString:
		v.S = append(v.S, "")
	}
	if n>>6 >= len(v.Nulls) {
		v.Nulls = append(v.Nulls, 0)
	}
	v.Set(n, val)
}

// partitionSet buffers and routes records into spillPartitions runs by
// hash. Records are fixed-layout rows over the given column kinds.
type partitionSet struct {
	res   spill.Resources
	kinds []types.Kind
	seed  uint64
	runs  [spillPartitions]*spill.Run
	bufs  [spillPartitions][]*vector.Vec
	bufN  [spillPartitions]int
}

func newPartitionSet(res spill.Resources, kinds []types.Kind, seed uint64) *partitionSet {
	return &partitionSet{res: res, kinds: kinds, seed: seed}
}

func (ps *partitionSet) buf(p int) []*vector.Vec {
	if ps.bufs[p] == nil {
		cols := make([]*vector.Vec, len(ps.kinds))
		for c, k := range ps.kinds {
			cols[c] = vector.NewVec(k, 0)
		}
		ps.bufs[p] = cols
	}
	return ps.bufs[p]
}

func (ps *partitionSet) flush(p int) error {
	if ps.bufN[p] == 0 {
		return nil
	}
	if ps.runs[p] == nil {
		run, err := spill.NewRun(ps.res.Dir)
		if err != nil {
			return err
		}
		ps.runs[p] = run
	}
	if err := ps.runs[p].WriteCols(ps.bufs[p], ps.bufN[p]); err != nil {
		return err
	}
	for c, k := range ps.kinds {
		ps.bufs[p][c] = vector.NewVec(k, 0)
	}
	ps.bufN[p] = 0
	return nil
}

// addFunc routes one record to the partition of h; write appends exactly
// one value to every buffer column.
func (ps *partitionSet) addFunc(h uint64, write func(dst []*vector.Vec)) error {
	p := partitionOf(h, ps.seed)
	write(ps.buf(p))
	ps.bufN[p]++
	if ps.bufN[p] >= vector.BatchSize {
		return ps.flush(p)
	}
	return nil
}

// addRecord routes an existing record (one lane of a record batch).
func (ps *partitionSet) addRecord(cols []*vector.Vec, lane int, h uint64) error {
	return ps.addFunc(h, func(dst []*vector.Vec) {
		for c := range dst {
			dst[c].AppendFrom(cols[c], lane)
		}
	})
}

// finish flushes all buffers and returns the non-empty partition runs,
// ready for reading. Spilled bytes are noted on the reservation. On
// error the set self-cleans: every run — transferred or still owned —
// is closed.
func (ps *partitionSet) finish() ([]*spill.Run, error) {
	var out []*spill.Run
	for p := 0; p < spillPartitions; p++ {
		if err := ps.flush(p); err != nil {
			closeRuns(out)
			ps.abandon()
			return nil, err
		}
		if ps.runs[p] == nil {
			continue
		}
		if err := ps.runs[p].Finish(); err != nil {
			closeRuns(out)
			ps.abandon()
			return nil, err
		}
		ps.res.Res.NoteSpill(ps.runs[p].Bytes())
		out = append(out, ps.runs[p])
		ps.runs[p] = nil
	}
	return out, nil
}

// finishAll flushes all buffers and returns the runs indexed by
// partition (nil entries for empty partitions), for consumers that must
// pair runs across two sets (the Grace join's build and probe sides).
// On error the set self-cleans like finish.
func (ps *partitionSet) finishAll() ([spillPartitions]*spill.Run, error) {
	var out [spillPartitions]*spill.Run
	fail := func() {
		for p := range out {
			out[p].Close() //nolint:errcheck
			out[p] = nil
		}
		ps.abandon()
	}
	for p := 0; p < spillPartitions; p++ {
		if err := ps.flush(p); err != nil {
			fail()
			return out, err
		}
		if ps.runs[p] == nil {
			continue
		}
		if err := ps.runs[p].Finish(); err != nil {
			fail()
			return out, err
		}
		ps.res.Res.NoteSpill(ps.runs[p].Bytes())
		out[p] = ps.runs[p]
		ps.runs[p] = nil
	}
	return out, nil
}

// abandon closes any runs the set still owns (error unwinding). It is
// nil-safe and a no-op after a successful finish.
func (ps *partitionSet) abandon() {
	if ps == nil {
		return
	}
	for p := 0; p < spillPartitions; p++ {
		if ps.runs[p] != nil {
			ps.runs[p].Close() //nolint:errcheck
			ps.runs[p] = nil
		}
	}
}

// ---------------------------------------------------------------------------
// Sequence merge

// seqMerger streams the union of output runs ordered by their trailing
// sequence column, optionally expanding a multiplicity column (set
// operations). Every emitted batch holds the leading width data columns
// only. Runs are individually seq-ascending and their seq ranges
// interleave arbitrarily; equal seqs only occur within one run (a
// group's — or probe row's — records never span runs), where file order
// is already the in-memory emission order.
type seqMerger struct {
	cursors []*runCursor
	width   int
	multCol int // -1: no multiplicity
	seqCol  int
	kinds   []types.Kind
	heap    []int
	rem     int64 // remaining repeats of the current head record
	// bandShift > 0 keeps every emitted batch within one seq>>bandShift
	// band and records the band in lastBand, so a morsel-spine operator
	// draining this merger remains a valid TagSource (see parallel.go).
	bandShift int
	lastBand  int64
}

func newSeqMerger(runs []*spill.Run, width, multCol, seqCol int) (*seqMerger, error) {
	m := &seqMerger{width: width, multCol: multCol, seqCol: seqCol}
	for _, r := range runs {
		cur := &runCursor{run: r}
		ok, err := cur.load()
		if err != nil {
			return nil, err
		}
		m.cursors = append(m.cursors, cur)
		if ok {
			if m.kinds == nil {
				m.kinds = colKinds(cur.cols[:width])
			}
			m.heap = append(m.heap, len(m.cursors)-1)
		}
	}
	spill.Heapify(m.heap, m.less)
	m.primeRem()
	return m, nil
}

func (m *seqMerger) seqAt(ci int) int64 {
	cur := m.cursors[ci]
	return cur.cols[m.seqCol].I[cur.pos]
}

func (m *seqMerger) less(a, b int) bool {
	sa, sb := m.seqAt(a), m.seqAt(b)
	if sa != sb {
		return sa < sb
	}
	return a < b
}

// primeRem loads the multiplicity of the current head record.
func (m *seqMerger) primeRem() {
	if len(m.heap) == 0 {
		m.rem = 0
		return
	}
	if m.multCol < 0 {
		m.rem = 1
		return
	}
	cur := m.cursors[m.heap[0]]
	m.rem = cur.cols[m.multCol].I[cur.pos]
}

// next emits up to BatchSize merged rows, nil at end of stream.
func (m *seqMerger) next() (*vector.Batch, error) {
	if len(m.heap) == 0 {
		return nil, nil
	}
	out := make([]*vector.Vec, m.width)
	for c, k := range m.kinds {
		out[c] = vector.NewVec(k, 0)
	}
	rows := 0
	for rows < vector.BatchSize && len(m.heap) > 0 {
		if m.bandShift > 0 {
			band := m.seqAt(m.heap[0]) >> m.bandShift
			if rows == 0 {
				m.lastBand = band
			} else if band != m.lastBand {
				break // next record starts a new morsel band
			}
		}
		cur := m.cursors[m.heap[0]]
		for m.rem > 0 && rows < vector.BatchSize {
			for c := 0; c < m.width; c++ {
				out[c].AppendFrom(cur.cols[c], cur.pos)
			}
			rows++
			m.rem--
		}
		if m.rem > 0 {
			break // batch full mid-expansion; resume next call
		}
		ok, err := cur.advance()
		if err != nil {
			return nil, err
		}
		if !ok {
			m.heap[0] = m.heap[len(m.heap)-1]
			m.heap = m.heap[:len(m.heap)-1]
		}
		spill.DownHeap(m.heap, 0, m.less)
		m.primeRem()
	}
	if rows == 0 {
		return nil, nil
	}
	return &vector.Batch{N: rows, Cols: out}, nil
}

// ---------------------------------------------------------------------------
// Generic partition processing for grouping operators

// groupStater is the operator-specific per-group accumulator state that
// survives a partial-group flush: its record-column serialization and
// the associative merge of a flushed partial back into a live group.
type groupStater interface {
	// stateKinds describes the state columns of a record.
	stateKinds() []types.Kind
	// reset drops all group state (a fresh partition table).
	reset()
	// newGroup appends one zero-state group.
	newGroup()
	// appendState serializes group g's state, appending one value per
	// state column.
	appendState(g int, dst []*vector.Vec)
	// mergeState folds record lane of the state columns into group g.
	mergeState(g int, state []*vector.Vec, lane int)
}

// groupFinalizer writes one partition's finished groups (in the given
// first-appearance order) as an output run ending in the seq column.
type groupFinalizer func(res spill.Resources, acc *colAccumulator, seqs []int64, order []int32) (*spill.Run, error)

// recordKinds assembles the record layout: data columns, state columns,
// then the sequence column.
func recordKinds(dataKinds []types.Kind, st groupStater) []types.Kind {
	kinds := append(append([]types.Kind{}, dataKinds...), st.stateKinds()...)
	return append(kinds, types.KindInt)
}

// flushGroupRecords writes every live group as a partial record into the
// partition set.
func flushGroupRecords(ps *partitionSet, acc *colAccumulator, seqs []int64, st groupStater) error {
	dataWidth := len(acc.cols)
	for g := 0; g < acc.n; g++ {
		h := hashLanes(acc.cols, g)
		err := ps.addFunc(h, func(dst []*vector.Vec) {
			for c := 0; c < dataWidth; c++ {
				dst[c].AppendFrom(acc.cols[c], g)
			}
			st.appendState(g, dst[dataWidth:len(dst)-1])
			appendI(dst[len(dst)-1], seqs[g])
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// groupWorkItem is one partition awaiting processing. Serial operators
// have one run per partition; a parallel aggregation contributes one run
// per worker to the same partition (identical key hash slice), and all
// of them must merge through one table.
type groupWorkItem struct {
	runs  []*spill.Run
	depth int
	seed  uint64
}

// seqOrder returns group indices ordered by ascending first-appearance
// sequence number.
func seqOrder(seqs []int64, n int) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(x, y int) bool { return seqs[order[x]] < seqs[order[y]] })
	return order
}

// processGroupPartitions drains the partition runs of a spilled grouping
// operator: each partition's partial records merge into a fresh table
// (repartitioning recursively when a skewed partition still exceeds the
// budget), and finalize writes its groups in first-appearance order as
// one output run. The returned runs feed a seqMerger.
func processGroupPartitions(res spill.Resources, runs []*spill.Run, dataKinds []types.Kind,
	st groupStater, finalize groupFinalizer) ([]*spill.Run, error) {
	sets := make([][]*spill.Run, len(runs))
	for i, r := range runs {
		sets[i] = []*spill.Run{r}
	}
	return processGroupPartitionSets(res, sets, dataKinds, st, finalize)
}

// processGroupPartitionSets is processGroupPartitions for partitions
// made of several runs (one per parallel worker): all runs of a set
// merge through one table.
func processGroupPartitionSets(res spill.Resources, sets [][]*spill.Run, dataKinds []types.Kind,
	st groupStater, finalize groupFinalizer) (outputs []*spill.Run, err error) {
	stack := make([]groupWorkItem, 0, len(sets))
	for _, rs := range sets {
		stack = append(stack, groupWorkItem{runs: rs, depth: 1, seed: 1})
	}
	defer func() {
		if err != nil {
			for _, it := range stack {
				closeRuns(it.runs)
			}
			closeRuns(outputs)
		}
	}()
	for len(stack) > 0 {
		item := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		children, out, perr := processOneGroupPartition(res, item, dataKinds, st, finalize)
		if perr != nil {
			err = perr
			return outputs, err
		}
		for _, r := range children {
			stack = append(stack, groupWorkItem{runs: []*spill.Run{r}, depth: item.depth + 1, seed: item.seed + 1})
		}
		if out != nil {
			outputs = append(outputs, out)
		}
	}
	return outputs, nil
}

// processOneGroupPartition merges one partition's partial records. It
// returns child partitions when the partition had to be split further,
// or the partition's finalized output run. The item's run is always
// closed.
func processOneGroupPartition(res spill.Resources, item groupWorkItem, dataKinds []types.Kind,
	st groupStater, finalize groupFinalizer) (children []*spill.Run, out *spill.Run, err error) {
	defer closeRuns(item.runs) // temp storage, already unlinked
	dataWidth := len(dataKinds)
	acc := &colAccumulator{}
	var seqs []int64
	table := make(map[uint64][]int32)
	st.reset()
	var itemBytes int64
	defer func() { res.Res.Release(itemBytes) }()
	for ri, run := range item.runs {
		for {
			cols, n, rerr := run.ReadCols()
			if rerr != nil {
				return nil, nil, rerr
			}
			if n == 0 {
				break
			}
			delta := batchBytes(cols, identitySel[:n])
			granted := res.Res.Grow(delta)
			if !granted && item.depth < maxRepartitionDepth {
				// Skewed partition: push everything seen so far (the live
				// partial groups) plus the rest of this run and every
				// still-unread run one level down under a reseeded hash.
				ps := newPartitionSet(res, recordKinds(dataKinds, st), item.seed+1)
				if err := flushGroupRecords(ps, acc, seqs, st); err != nil {
					ps.abandon()
					return nil, nil, err
				}
				if err := repartitionRecords(ps, run, cols, n, dataWidth); err != nil {
					ps.abandon()
					return nil, nil, err
				}
				for _, rest := range item.runs[ri+1:] {
					if err := repartitionRecords(ps, rest, nil, 0, dataWidth); err != nil {
						ps.abandon()
						return nil, nil, err
					}
				}
				children, err := ps.finish()
				if err != nil {
					ps.abandon()
					return nil, nil, err
				}
				return children, nil, nil
			}
			if !granted {
				res.Res.Force(delta) // depth exhausted: complete over budget
			}
			itemBytes += delta
			dataCols := cols[:dataWidth]
			stateCols := cols[dataWidth : len(cols)-1]
			seqCol := cols[len(cols)-1]
			for i := 0; i < n; i++ {
				h := hashLanes(dataCols, i)
				g := int32(-1)
				for _, gi := range table[h] {
					if rowsEqual(dataCols, i, acc.cols, int(gi)) {
						g = gi
						break
					}
				}
				if g < 0 {
					g = int32(acc.n)
					table[h] = append(table[h], g)
					acc.appendLane(&vector.Batch{N: n, Cols: dataCols}, i)
					st.newGroup()
					seqs = append(seqs, seqCol.I[i])
				} else if s := seqCol.I[i]; s < seqs[g] {
					seqs[g] = s
				}
				st.mergeState(int(g), stateCols, i)
			}
		}
	}
	out, err = finalize(res, acc, seqs, seqOrder(seqs, acc.n))
	if err != nil {
		return nil, nil, err
	}
	return nil, out, nil
}

// repartitionRecords routes the current batch and the rest of the run
// into the child partition set, hashing each record's data columns.
func repartitionRecords(ps *partitionSet, run *spill.Run, cols []*vector.Vec, n, dataWidth int) error {
	for {
		for i := 0; i < n; i++ {
			if err := ps.addRecord(cols, i, hashLanes(cols[:dataWidth], i)); err != nil {
				return err
			}
		}
		var err error
		cols, n, err = run.ReadCols()
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
	}
}

// writeGroupRun writes finished groups (data columns in the given order,
// plus extra columns supplied by emit) as one seq-terminated output run.
// emit appends the extra column values for one group; the seq column is
// written by the caller through it.
func writeGroupRun(res spill.Resources, acc *colAccumulator, order []int32,
	extraKinds []types.Kind, emit func(g int32, extra []*vector.Vec)) (*spill.Run, error) {
	run, err := spill.NewRun(res.Dir)
	if err != nil {
		return nil, err
	}
	width := len(acc.cols)
	for lo := 0; lo < len(order); lo += vector.BatchSize {
		hi := lo + vector.BatchSize
		if hi > len(order) {
			hi = len(order)
		}
		chunk := order[lo:hi]
		out := make([]*vector.Vec, width+len(extraKinds))
		for c, col := range acc.cols {
			out[c] = vector.Gather(col, chunk, col.Kind)
		}
		for c, k := range extraKinds {
			out[width+c] = vector.NewVec(k, 0)
		}
		for _, g := range chunk {
			emit(g, out[width:])
		}
		if err := run.WriteCols(out, hi-lo); err != nil {
			run.Close() //nolint:errcheck
			return nil, err
		}
	}
	if err := run.Finish(); err != nil {
		run.Close() //nolint:errcheck
		return nil, err
	}
	res.Res.NoteSpill(run.Bytes())
	return run, nil
}
