// Package vexec implements the batch-at-a-time (vectorized) physical
// operators of the Perm engine: columnar scans over heap column
// snapshots (with runtime join-filter pushdown), filters driven by
// selection vectors, projections over vectorized expressions, hash joins
// (inner and left outer, with the null-safe key variant the provenance
// join-back conditions require), hash aggregation, sorting/top-N,
// duplicate elimination and bag/set operations. The planner lowers a
// plan subtree to these operators when every operator and expression in
// it is supported, and bridges back to the row-at-a-time engine (package
// exec) through RowSource wherever it is not.
//
// Batch-buffer discipline: an operator must abandon all references to a
// batch obtained from its child before calling the child's Next again;
// in exchange, producers may recycle the buffers behind a previously
// emitted batch on their next Next call. This is what lets the
// expression kernels and emitting operators draw their vectors from the
// shared pool (vector.NewBatchVec/Free) instead of allocating per batch.
package vexec

import (
	"perm/internal/algebra"
	"perm/internal/exec"
	"perm/internal/obs"
	"perm/internal/spill"
	"perm/internal/types"
	"perm/internal/vector"
)

// Node is a batch iterator. Next returns (nil, nil) at end of stream.
// Returned batches are immutable until the consumer's next Next call on
// this node; consumers that need longer-lived data must copy it out
// (every materializing operator in this package does).
type Node interface {
	Open() error
	Next() (*vector.Batch, error)
	Close() error
}

// ---------------------------------------------------------------------------
// ColScan

// rfBinding attaches one runtime join filter to a scan column. The scan
// counts tested/admitted lanes and retires bindings that stop pruning
// (a dense Bloom filter costs hashing without saving work downstream).
type rfBinding struct {
	rf       *RuntimeFilter
	col      int
	tested   int
	admitted int
	dead     bool
}

// rfMinTested and rfKeepFrac steer the adaptive retirement: after
// rfMinTested lanes, a binding that admits more than rfKeepFrac of them
// is turned off for the rest of the scan.
const (
	rfMinTested = 4096
	rfKeepFrac  = 0.9
)

// ColScan iterates a columnar snapshot of a base table in BatchSize
// windows, applying any runtime join filters pushed down onto it as an
// extra selection pass before the batch leaves the scan.
type ColScan struct {
	obs.Card
	Cols    []*vector.Vec
	NumRows int
	// Table names the relation this scan reads (not rendered in EXPLAIN;
	// folded into the structural plan hash so scans of equally-sized
	// relations stay distinguishable).
	Table string
	pos   int

	// Morsel dispatch (parallel plans): instead of iterating [0, NumRows)
	// the scan claims morsels from the shared dispatcher and windows only
	// its own ranges. morselSeq identifies the current morsel for the
	// sequence tags that restore serial output order.
	disp      *Morsels
	morselSeq int64
	morselEnd int
	// morselsTaken counts the morsels this scan claimed (worker-local;
	// coordinators read it after the worker barrier for EXPLAIN ANALYZE's
	// per-worker morsel counts).
	morselsTaken int

	rfs     []rfBinding
	winCols []*vector.Vec
	winVecs []vector.Vec
	selBuf  []int

	// aq, when set, is polled for cooperative cancellation once per
	// batch window. Scans sit under every long-running phase (sort and
	// hash builds pull their input through them), so a CANCEL reaches
	// even a query that is still materializing.
	aq *obs.ActiveQuery
}

// NewColScan returns a columnar scan over n rows.
func NewColScan(cols []*vector.Vec, n int) *ColScan {
	return &ColScan{Cols: cols, NumRows: n}
}

// AddRuntimeFilter registers a runtime join filter against column col.
// The producing hash join publishes the filter when its build side is
// complete; until then the binding passes everything through.
func (s *ColScan) AddRuntimeFilter(rf *RuntimeFilter, col int) {
	s.rfs = append(s.rfs, rfBinding{rf: rf, col: col})
}

// HasRuntimeFilters reports whether any runtime filters are bound to the
// scan (EXPLAIN).
func (s *ColScan) HasRuntimeFilters() bool { return len(s.rfs) > 0 }

// SetMorselSource switches the scan to morsel-driven iteration against a
// shared dispatcher (parallel plans only).
func (s *ColScan) SetMorselSource(d *Morsels) { s.disp = d }

// SetActivity attaches the active-query record whose cancellation flag
// the scan polls at every batch boundary (nil: never cancelled).
func (s *ColScan) SetActivity(aq *obs.ActiveQuery) { s.aq = aq }

// CurrentMorsel returns the sequence number of the morsel the scan's
// last batch came from.
func (s *ColScan) CurrentMorsel() int64 { return s.morselSeq }

// CurrentBand implements TagSource: the scan's bands are its morsels.
func (s *ColScan) CurrentBand() int64 { return s.morselSeq }

// MorselsTaken returns how many morsels the scan claimed from its
// dispatcher (0 for a serial scan). Only read it after the scan's worker
// has finished (the parallel operators' barriers publish it).
func (s *ColScan) MorselsTaken() int { return s.morselsTaken }

// RuntimeFilterStats sums the tested/admitted lane counts over the
// scan's runtime-filter bindings (EXPLAIN ANALYZE).
func (s *ColScan) RuntimeFilterStats() (tested, admitted int) {
	for i := range s.rfs {
		tested += s.rfs[i].tested
		admitted += s.rfs[i].admitted
	}
	return tested, admitted
}

func (s *ColScan) Open() error {
	s.pos = 0
	s.morselSeq, s.morselEnd = 0, 0
	s.morselsTaken = 0
	for i := range s.rfs {
		s.rfs[i].tested, s.rfs[i].admitted, s.rfs[i].dead = 0, 0, false
	}
	if s.winCols == nil {
		s.winVecs = make([]vector.Vec, len(s.Cols))
		s.winCols = make([]*vector.Vec, len(s.Cols))
		for j := range s.winVecs {
			s.winCols[j] = &s.winVecs[j]
		}
	}
	return nil
}

func (s *ColScan) Next() (*vector.Batch, error) {
	if err := s.aq.CancelErr(); err != nil {
		return nil, err
	}
	for {
		limit := s.NumRows
		if s.disp != nil {
			if s.pos >= s.morselEnd {
				seq, lo, hi, ok := s.disp.grab(s.NumRows)
				if !ok {
					return nil, nil
				}
				s.morselsTaken++
				s.morselSeq, s.pos, s.morselEnd = seq, lo, hi
			}
			limit = s.morselEnd
		} else if s.pos >= s.NumRows {
			return nil, nil
		}
		hi := s.pos + vector.BatchSize
		if hi > limit {
			hi = limit
		}
		for j, c := range s.Cols {
			c.WindowInto(s.pos, hi, s.winCols[j])
		}
		b := &vector.Batch{N: hi - s.pos, Cols: s.winCols}
		s.pos = hi
		if !s.anyReadyFilter() {
			return b, nil
		}
		if s.selBuf == nil {
			s.selBuf = make([]int, 0, vector.BatchSize)
		}
		sel := s.selBuf[:0]
	lanes:
		for i := 0; i < b.N; i++ {
			for bi := range s.rfs {
				bind := &s.rfs[bi]
				if bind.dead || !bind.rf.Ready() {
					continue
				}
				bind.tested++
				if !bind.rf.admit(b.Cols[bind.col], i) {
					continue lanes
				}
				bind.admitted++
			}
			sel = append(sel, i)
		}
		s.selBuf = sel
		for bi := range s.rfs {
			bind := &s.rfs[bi]
			if !bind.dead && bind.tested >= rfMinTested &&
				float64(bind.admitted) > rfKeepFrac*float64(bind.tested) {
				bind.dead = true
			}
		}
		if len(sel) == 0 {
			continue
		}
		if len(sel) < b.N {
			b.Sel = sel
		}
		return b, nil
	}
}

func (s *ColScan) anyReadyFilter() bool {
	for i := range s.rfs {
		if !s.rfs[i].dead && s.rfs[i].rf.Ready() {
			return true
		}
	}
	return false
}

func (s *ColScan) Close() error { return nil }

// ---------------------------------------------------------------------------
// Filter

// Filter narrows each batch's selection vector to the rows where the
// predicate is TRUE; batches with no surviving rows are skipped.
type Filter struct {
	obs.Card
	Input  Node
	Pred   *Expr
	selBuf []int
}

// NewFilter returns a vectorized filter. Pred must have kind bool.
func NewFilter(input Node, pred *Expr) *Filter {
	return &Filter{Input: input, Pred: pred}
}

func (f *Filter) Open() error {
	if f.selBuf == nil {
		f.selBuf = make([]int, 0, vector.BatchSize)
	}
	return f.Input.Open()
}

func (f *Filter) Next() (*vector.Batch, error) {
	for {
		b, err := f.Input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		pv, err := f.Pred.fn(b, b.Sel)
		if err != nil {
			return nil, err
		}
		sel := resolveSel(b, b.Sel)
		out := f.selBuf[:0]
		if !pv.Nulls.AnySet(b.N) {
			for _, i := range sel {
				if pv.B[i] {
					out = append(out, i)
				}
			}
		} else {
			for _, i := range sel {
				if !pv.Nulls.Get(i) && pv.B[i] {
					out = append(out, i)
				}
			}
		}
		f.Pred.FreeResult(pv)
		f.selBuf = out
		if len(out) == 0 {
			continue
		}
		return &vector.Batch{N: b.N, Cols: b.Cols, Sel: out}, nil
	}
}

func (f *Filter) Close() error { return f.Input.Close() }

// ---------------------------------------------------------------------------
// Project

// Project computes output expressions per batch, passing the selection
// vector through unchanged. Output vectors it owns (kernel results) are
// recycled once the consumer abandons the emitted batch.
type Project struct {
	obs.Card
	Input Node
	Exprs []*Expr

	colsBuf []*vector.Vec
	owned   []*vector.Vec
}

// NewProject returns a vectorized projection.
func NewProject(input Node, exprs []*Expr) *Project {
	return &Project{Input: input, Exprs: exprs}
}

func (p *Project) Open() error { return p.Input.Open() }

func (p *Project) Next() (*vector.Batch, error) {
	b, err := p.Input.Next()
	if err != nil || b == nil {
		p.recycle()
		return nil, err
	}
	p.recycle()
	if p.colsBuf == nil {
		p.colsBuf = make([]*vector.Vec, len(p.Exprs))
	}
	cols := p.colsBuf
	for j, e := range p.Exprs {
		v, err := e.fn(b, b.Sel)
		if err != nil {
			return nil, err
		}
		cols[j] = v
		if !e.aliasing {
			p.owned = append(p.owned, v)
		}
	}
	return &vector.Batch{N: b.N, Cols: cols, Sel: b.Sel}, nil
}

// recycle frees the kernel results behind the previously emitted batch
// (its consumer has abandoned it, or the stream ended).
func (p *Project) recycle() {
	for _, v := range p.owned {
		v.Free()
	}
	p.owned = p.owned[:0]
}

func (p *Project) Close() error {
	p.recycle()
	return p.Input.Close()
}

// ---------------------------------------------------------------------------
// Hash join

// JoinType enumerates the join types the vectorized hash join supports.
// Right and full outer joins stay on the row engine.
type JoinType uint8

// Vectorized join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
)

// HashJoin is a vectorized equi-join; the right input is the build side.
// NullSafe marks keys compared with IS NOT DISTINCT FROM semantics.
// Residual conditions are handled by the planner as a Filter above an
// inner join; left joins with residuals fall back to the row engine.
//
// Publish, when non-nil, carries one optional runtime filter per key;
// when the build side completes, each filter is published (min/max range
// plus Bloom filter over the build keys) so probe-side scans can prune
// tuples before they ever reach the join.
type HashJoin struct {
	obs.Card
	Left, Right Node
	LeftKeys    []*Expr
	RightKeys   []*Expr
	NullSafe    []bool
	Type        JoinType
	LeftKinds   []types.Kind
	RightKinds  []types.Kind
	Publish     []*RuntimeFilter
	Spill       spill.Resources

	// TagSrc, when non-nil, marks the join as sitting on a morsel-driven
	// worker spine: the nearest tag source below its probe side. Grace
	// mode then stores band-derived sequence tags for probe rows and the
	// output merge never lets a batch span bands, so the join remains a
	// valid TagSource for the tap above even though it buffered the whole
	// probe side.
	TagSrc TagSource

	buildCols  []*vector.Vec
	buildKeys  []*vector.Vec
	heads      map[uint64]int32 // key hash → first build row of the chain
	next       []int32          // per-build-row chain link (-1 ends a chain)
	neverMatch bool

	curBatch   *vector.Batch
	outL, outR []int32 // pending (probe lane, build row) pairs; build -1 = null-extend
	outPos     int
	emitOwned  []*vector.Vec
	emitBuf    []*vector.Vec

	grace      *graceJoin
	buildBytes int64
	leftOpen   bool
	aq         *obs.ActiveQuery
}

// NewHashJoin returns a vectorized hash join node.
func NewHashJoin(left, right Node, leftKeys, rightKeys []*Expr, nullSafe []bool,
	jt JoinType, leftKinds, rightKinds []types.Kind) *HashJoin {
	return &HashJoin{
		Left: left, Right: right,
		LeftKeys: leftKeys, RightKeys: rightKeys, NullSafe: nullSafe,
		Type: jt, LeftKinds: leftKinds, RightKinds: rightKinds,
	}
}

// PublishesFilters reports whether the join feeds any runtime filters
// (EXPLAIN).
func (j *HashJoin) PublishesFilters() bool {
	for _, rf := range j.Publish {
		if rf != nil {
			return true
		}
	}
	return false
}

func (j *HashJoin) Open() (err error) {
	// A non-null-safe key pair outside the comparable classes can never
	// match (the row engine's Equal would reject it too). Null-safe keys
	// are exempt: NULL IS NOT DISTINCT FROM NULL matches regardless of
	// the declared kinds, and non-NULL incomparable lanes already land in
	// different hash buckets.
	j.neverMatch = false
	for k := range j.LeftKeys {
		if !j.NullSafe[k] && classify(j.LeftKeys[k].Kind(), j.RightKeys[k].Kind()) == classNone {
			j.neverMatch = true
		}
	}
	// Build side first: drain the right input, keeping (per batch, so no
	// input batch is retained) the lanes whose non-null-safe keys are all
	// non-NULL — a NULL there matches nothing; left-join null extension
	// only depends on the probe side. Building before the probe side is
	// even opened guarantees every runtime filter is published before any
	// probe-side scan produces its first batch.
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.grace = nil
	j.buildBytes = 0
	j.leftOpen = false
	// A failed Open never sees a matching Close from the parent: unwind
	// the spill state here (reserved bytes, grace partitions/outputs).
	defer func() {
		if err != nil {
			j.grace.cleanup()
			j.grace = nil
			j.Spill.Res.ReleaseAll()
		}
	}()
	j.buildCols = make([]*vector.Vec, len(j.RightKinds))
	for c, k := range j.RightKinds {
		j.buildCols[c] = vector.NewVec(k, 0)
	}
	j.buildKeys = make([]*vector.Vec, len(j.RightKeys))
	for k, ke := range j.RightKeys {
		j.buildKeys[k] = vector.NewVec(ke.Kind(), 0)
	}
	var hashes []uint64
	var lanes []int
	budgeted := j.Spill.Enabled()
	for {
		b, err := j.Right.Next()
		if err != nil {
			j.Right.Close() //nolint:errcheck — unwinding after a failed build
			return err
		}
		if b == nil {
			break
		}
		keys := make([]*vector.Vec, len(j.RightKeys))
		for k, ke := range j.RightKeys {
			kv, err := ke.fn(b, b.Sel)
			if err != nil {
				j.Right.Close() //nolint:errcheck — unwinding after a failed build
				return err
			}
			keys[k] = kv
		}
		sel := resolveSel(b, b.Sel)
		lanes = lanes[:0]
		for _, i := range sel {
			keep := true
			for k := range keys {
				if !j.NullSafe[k] && keys[k].Nulls.Get(i) {
					keep = false
					break
				}
			}
			if keep {
				lanes = append(lanes, i)
			}
		}
		if budgeted && len(lanes) > 0 && j.grace == nil {
			delta := batchBytes(b.Cols, lanes) + batchBytes(keys, lanes)
			if !j.Spill.Res.Grow(delta) {
				// Budget exhausted: go Grace. The rows accumulated so far
				// are rehashed into build partitions on disk and the
				// in-memory build storage is released; runtime filters
				// stay unpublished (an unready filter admits everything,
				// which is always safe).
				g, gerr := j.startGrace(hashes)
				if gerr != nil {
					j.Right.Close() //nolint:errcheck
					return gerr
				}
				j.grace = g
				j.buildCols, j.buildKeys, hashes = nil, nil, nil
				j.Spill.Res.Release(j.buildBytes)
				j.buildBytes = 0
			} else {
				j.buildBytes += delta
			}
		}
		if len(lanes) > 0 {
			if j.grace != nil {
				for _, i := range lanes {
					if err := j.grace.addBuild(b.Cols, keys, i); err != nil {
						j.Right.Close() //nolint:errcheck
						return err
					}
				}
			} else {
				for c, col := range b.Cols {
					j.buildCols[c].AppendLanes(col, lanes)
				}
				for k, kv := range keys {
					j.buildKeys[k].AppendLanes(kv, lanes)
				}
				for _, i := range lanes {
					hashes = append(hashes, hashLanes(keys, i))
				}
			}
		}
		for k, kv := range keys {
			j.RightKeys[k].FreeResult(kv)
		}
	}
	if err := j.Right.Close(); err != nil {
		return err
	}

	if j.grace != nil {
		// Grace mode: partition the probe side and join the partition
		// pairs; Next streams the seq-merged result.
		if err := j.Left.Open(); err != nil {
			return err
		}
		j.leftOpen = true
		err := j.grace.runProbe()
		cerr := j.Left.Close()
		j.leftOpen = false
		if err != nil {
			return err
		}
		return cerr
	}

	// Assemble the chained hash table. Chains are threaded in reverse so
	// probing visits build rows in input order, like the row engine's
	// bucket order.
	total := len(hashes)
	j.heads = make(map[uint64]int32, total)
	j.next = make([]int32, total)
	for r := total - 1; r >= 0; r-- {
		if head, ok := j.heads[hashes[r]]; ok {
			j.next[r] = head
		} else {
			j.next[r] = -1
		}
		j.heads[hashes[r]] = int32(r)
	}
	// Publish runtime filters now that the build side is complete; the
	// probe subtree opens after this, so its scans observe ready filters
	// from their very first batch.
	for k, rf := range j.Publish {
		if rf != nil {
			rf.PublishFrom(j.buildKeys[k], total)
		}
	}
	j.curBatch = nil
	j.outL, j.outR = j.outL[:0], j.outR[:0]
	j.outPos = 0
	if err := j.Left.Open(); err != nil {
		return err
	}
	j.leftOpen = true
	return nil
}

// keysMatch compares probe lane pi against build row bi.
func (j *HashJoin) keysMatch(probe []*vector.Vec, pi int, bi int) bool {
	for k := range probe {
		pv, bv := probe[k], j.buildKeys[k]
		pn, bn := pv.Nulls.Get(pi), bv.Nulls.Get(bi)
		if j.NullSafe[k] {
			if pn || bn {
				if pn && bn {
					continue
				}
				return false
			}
		} else if pn || bn {
			return false
		}
		if !lanesEqualNullSafe(pv, pi, bv, bi) {
			return false
		}
	}
	return true
}

// Spilled reports whether the join went Grace (spilled partitions).
func (j *HashJoin) Spilled() bool { return j.grace != nil }

// CurrentBand implements TagSource. In-memory mode the join streams (all
// outputs of one probe batch emit before the next is pulled), so the
// source below is still current; Grace mode re-derives the band from the
// sequence tags of the merged output stream.
func (j *HashJoin) CurrentBand() int64 {
	if j.grace != nil && j.grace.merger != nil {
		return j.grace.merger.lastBand
	}
	if j.TagSrc != nil {
		return j.TagSrc.CurrentBand()
	}
	return 0
}

// SetActivity attaches the active-query registration so cooperative
// cancellation is observed once per emitted batch: joins multiply rows,
// so polling here bounds cancellation latency even when the scans
// underneath are consulted rarely.
func (j *HashJoin) SetActivity(aq *obs.ActiveQuery) { j.aq = aq }

func (j *HashJoin) Next() (*vector.Batch, error) {
	if err := j.aq.CancelErr(); err != nil {
		return nil, err
	}
	if j.grace != nil {
		return j.grace.merger.next()
	}
	for {
		if j.outPos < len(j.outL) {
			return j.emit(), nil
		}
		b, err := j.Left.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		keys := make([]*vector.Vec, len(j.LeftKeys))
		for k, ke := range j.LeftKeys {
			kv, err := ke.fn(b, b.Sel)
			if err != nil {
				return nil, err
			}
			keys[k] = kv
		}
		j.outL, j.outR = j.outL[:0], j.outR[:0]
		j.outPos = 0
		for _, i := range resolveSel(b, b.Sel) {
			matched := false
			nullKey := false
			for k := range keys {
				if !j.NullSafe[k] && keys[k].Nulls.Get(i) {
					nullKey = true
					break
				}
			}
			if !nullKey && !j.neverMatch {
				h := hashLanes(keys, i)
				if head, ok := j.heads[h]; ok {
					for bi := head; bi >= 0; bi = j.next[bi] {
						if j.keysMatch(keys, i, int(bi)) {
							j.outL = append(j.outL, int32(i))
							j.outR = append(j.outR, bi)
							matched = true
						}
					}
				}
			}
			if !matched && j.Type == LeftJoin {
				j.outL = append(j.outL, int32(i))
				j.outR = append(j.outR, -1)
			}
		}
		for k, kv := range keys {
			j.LeftKeys[k].FreeResult(kv)
		}
		j.curBatch = b
	}
}

// emit returns the next chunk of pending join results as a batch,
// recycling the gather buffers of the previous chunk (abandoned by the
// consumer before it asked for this one).
func (j *HashJoin) emit() *vector.Batch {
	for _, v := range j.emitOwned {
		v.Free()
	}
	j.emitOwned = j.emitOwned[:0]
	n := len(j.outL) - j.outPos
	if n > vector.BatchSize {
		n = vector.BatchSize
	}
	chunkL := j.outL[j.outPos : j.outPos+n]
	chunkR := j.outR[j.outPos : j.outPos+n]
	j.outPos += n
	if j.emitBuf == nil {
		j.emitBuf = make([]*vector.Vec, len(j.LeftKinds)+len(j.RightKinds))
	}
	cols := j.emitBuf
	for c, k := range j.LeftKinds {
		cols[c] = vector.GatherBatch(j.curBatch.Cols[c], chunkL, k)
	}
	off := len(j.LeftKinds)
	for c, k := range j.RightKinds {
		cols[off+c] = vector.GatherBatch(j.buildCols[c], chunkR, k)
	}
	j.emitOwned = append(j.emitOwned, cols...)
	return &vector.Batch{N: n, Cols: cols}
}

func (j *HashJoin) Close() error {
	var err error
	if j.leftOpen {
		err = j.Left.Close()
		j.leftOpen = false
	}
	for _, v := range j.emitOwned {
		v.Free()
	}
	j.emitOwned = j.emitOwned[:0]
	j.buildCols, j.buildKeys, j.heads, j.next = nil, nil, nil, nil
	j.curBatch = nil
	if j.grace != nil {
		j.grace.cleanup()
		j.grace = nil
	}
	j.Spill.Res.ReleaseAll()
	return err
}

// ---------------------------------------------------------------------------
// Hash aggregation

// AggSpec describes one aggregate to compute vectorized. Distinct
// aggregates stay on the row engine.
type AggSpec struct {
	Fn         algebra.AggFn
	Star       bool
	Arg        *Expr // nil for COUNT(*)
	ResultKind types.Kind
}

// HashAgg groups input rows by the group expressions and computes
// aggregates per group; output rows are group values followed by
// aggregate results, exactly like the row engine's HashAgg. Under a
// memory budget it spills Grace-style: when the group table no longer
// fits, every group is flushed as a partial record (group values,
// serialized accumulator state, first-appearance sequence number) into
// hash partitions; partitions merge their partials independently after
// the drain (repartitioning recursively on skew) and a final merge on
// the sequence numbers reproduces the exact in-memory group order.
type HashAgg struct {
	obs.Card
	Input  Node
	Groups []*Expr
	Aggs   []AggSpec
	Spill  spill.Resources

	// Parallel partial mode (set by NewParallelAgg): sequence numbers come
	// from the morsel tap (global input ordinals) instead of a local
	// counter, and Open stops after flushing all groups as partial records
	// into partition runs — the coordinator merges them across workers.
	Tap      *MorselTap
	partial  bool
	partRuns [spillPartitions]*spill.Run

	groupCols []*vector.Vec
	numGroups int
	table     map[uint64][]int32
	accs      []aggAcc
	resVecs   []*vector.Vec
	outPos    int

	groupKinds []types.Kind
	seqs       []int64
	seqCtr     int64
	pending    int64
	accBytes   int64
	ps         *partitionSet
	merger     *seqMerger
	outRuns    []*spill.Run
}

// NewHashAgg returns a vectorized hash aggregation node.
func NewHashAgg(input Node, groups []*Expr, aggs []AggSpec) *HashAgg {
	return &HashAgg{Input: input, Groups: groups, Aggs: aggs}
}

// Spilled reports whether the aggregation spilled partitions to disk.
func (h *HashAgg) Spilled() bool { return h.ps != nil }

// stateKinds etc. implement groupStater by concatenating every
// aggregate's serialized accumulator columns.
func (h *HashAgg) stateKinds() []types.Kind {
	kinds := make([]types.Kind, 0, len(h.accs)*aggStateWidth)
	for range h.accs {
		kinds = append(kinds, aggStateKinds()...)
	}
	return kinds
}

func (h *HashAgg) reset() {
	for ai := range h.accs {
		h.accs[ai] = aggAcc{spec: h.accs[ai].spec, argKind: h.accs[ai].argKind}
	}
}

func (h *HashAgg) newGroup() {
	for ai := range h.accs {
		h.accs[ai].addGroup()
	}
}

func (h *HashAgg) appendState(g int, dst []*vector.Vec) {
	for ai := range h.accs {
		h.accs[ai].appendState(g, dst[ai*aggStateWidth:(ai+1)*aggStateWidth])
	}
}

func (h *HashAgg) mergeState(g int, st []*vector.Vec, lane int) {
	for ai := range h.accs {
		h.accs[ai].mergeState(g, st[ai*aggStateWidth:(ai+1)*aggStateWidth], lane)
	}
}

// spillGroups flushes the live group table as partial records and resets
// it.
func (h *HashAgg) spillGroups() error {
	if h.ps == nil {
		h.ps = newPartitionSet(h.Spill, recordKinds(h.groupKinds, h), 0)
	}
	acc := &colAccumulator{cols: h.groupCols, n: h.numGroups}
	if err := flushGroupRecords(h.ps, acc, h.seqs, h); err != nil {
		return err
	}
	for g, ge := range h.Groups {
		h.groupCols[g] = vector.NewVec(ge.Kind(), 0)
	}
	h.table = make(map[uint64][]int32)
	h.numGroups = 0
	h.seqs = h.seqs[:0]
	h.reset()
	h.Spill.Res.Release(h.accBytes)
	h.accBytes = 0
	return nil
}

// insertGroup starts group state for lane i of the key vectors.
func (h *HashAgg) insertGroup(keys []*vector.Vec, i int, hv uint64, seq int64) int {
	g := h.numGroups
	h.numGroups++
	h.table[hv] = append(h.table[hv], int32(g))
	for k, kv := range keys {
		h.groupCols[k].AppendFrom(kv, i)
	}
	h.newGroup()
	h.seqs = append(h.seqs, seq)
	return g
}

// aggAcc holds the per-group accumulator state of one aggregate in
// struct-of-arrays form.
type aggAcc struct {
	spec    AggSpec
	argKind types.Kind
	count   []int64
	sumI    []int64
	sumF    []float64
	sawAny  []bool
	mmSet   []bool
	mI      []int64 // min/max payload for int/date/bool args
	mF      []float64
	mS      []string
}

func (a *aggAcc) addGroup() {
	a.count = append(a.count, 0)
	a.sumI = append(a.sumI, 0)
	a.sumF = append(a.sumF, 0)
	a.sawAny = append(a.sawAny, false)
	a.mmSet = append(a.mmSet, false)
	a.mI = append(a.mI, 0)
	a.mF = append(a.mF, 0)
	a.mS = append(a.mS, "")
}

// accumulate folds lane i of arg into group g, mirroring the row
// engine's accumulate.
func (a *aggAcc) accumulate(g int, arg *vector.Vec, i int) {
	if a.spec.Star {
		a.count[g]++
		return
	}
	if arg.Nulls.Get(i) {
		return
	}
	a.sawAny[g] = true
	switch a.spec.Fn {
	case algebra.AggCount:
		a.count[g]++
	case algebra.AggSum, algebra.AggAvg:
		a.count[g]++
		if a.argKind == types.KindInt {
			a.sumI[g] += arg.I[i]
			a.sumF[g] += float64(arg.I[i])
		} else {
			a.sumF[g] += arg.F[i]
		}
	case algebra.AggMin:
		if !a.mmSet[g] || a.laneLess(arg, i, g) {
			a.store(g, arg, i)
		}
	case algebra.AggMax:
		if !a.mmSet[g] || a.laneGreater(arg, i, g) {
			a.store(g, arg, i)
		}
	}
}

func (a *aggAcc) laneLess(arg *vector.Vec, i, g int) bool {
	switch a.argKind {
	case types.KindInt, types.KindDate:
		return arg.I[i] < a.mI[g]
	case types.KindFloat:
		return arg.F[i] < a.mF[g]
	case types.KindString:
		return arg.S[i] < a.mS[g]
	default: // bool: false < true
		return !arg.B[i] && a.mI[g] != 0
	}
}

func (a *aggAcc) laneGreater(arg *vector.Vec, i, g int) bool {
	switch a.argKind {
	case types.KindInt, types.KindDate:
		return arg.I[i] > a.mI[g]
	case types.KindFloat:
		return arg.F[i] > a.mF[g]
	case types.KindString:
		return arg.S[i] > a.mS[g]
	default:
		return arg.B[i] && a.mI[g] == 0
	}
}

func (a *aggAcc) store(g int, arg *vector.Vec, i int) {
	a.mmSet[g] = true
	switch a.argKind {
	case types.KindInt, types.KindDate:
		a.mI[g] = arg.I[i]
	case types.KindFloat:
		a.mF[g] = arg.F[i]
	case types.KindString:
		a.mS[g] = arg.S[i]
	case types.KindBool:
		if arg.B[i] {
			a.mI[g] = 1
		} else {
			a.mI[g] = 0
		}
	}
}

// aggStateWidth is the number of serialized state columns per aggregate
// in a spilled partial-group record.
const aggStateWidth = 8

// aggStateKinds is the record layout of one aggregate's accumulator
// state: count, sumI, sumF, sawAny, mmSet, mI, mF, mS.
func aggStateKinds() []types.Kind {
	return []types.Kind{
		types.KindInt, types.KindInt, types.KindFloat,
		types.KindBool, types.KindBool,
		types.KindInt, types.KindFloat, types.KindString,
	}
}

// appendState serializes group g's accumulator, one value per state
// column.
func (a *aggAcc) appendState(g int, dst []*vector.Vec) {
	appendI(dst[0], a.count[g])
	appendI(dst[1], a.sumI[g])
	appendF(dst[2], a.sumF[g])
	appendB(dst[3], a.sawAny[g])
	appendB(dst[4], a.mmSet[g])
	appendI(dst[5], a.mI[g])
	appendF(dst[6], a.mF[g])
	appendS(dst[7], a.mS[g])
}

// mergeState folds a serialized partial state into group g. All merges
// are associative, so partials from any number of flush epochs combine
// into exactly the state a single-pass aggregation would have built.
func (a *aggAcc) mergeState(g int, st []*vector.Vec, lane int) {
	a.count[g] += st[0].I[lane]
	a.sumI[g] += st[1].I[lane]
	a.sumF[g] += st[2].F[lane]
	a.sawAny[g] = a.sawAny[g] || st[3].B[lane]
	if !st[4].B[lane] {
		return
	}
	mI, mF, mS := st[5].I[lane], st[6].F[lane], st[7].S[lane]
	if !a.mmSet[g] {
		a.mmSet[g] = true
		a.mI[g], a.mF[g], a.mS[g] = mI, mF, mS
		return
	}
	min := a.spec.Fn == algebra.AggMin
	var better bool
	switch a.argKind {
	case types.KindFloat:
		better = (min && mF < a.mF[g]) || (!min && mF > a.mF[g])
	case types.KindString:
		better = (min && mS < a.mS[g]) || (!min && mS > a.mS[g])
	default: // int, date, and bool (stored in mI)
		better = (min && mI < a.mI[g]) || (!min && mI > a.mI[g])
	}
	if better {
		a.mI[g], a.mF[g], a.mS[g] = mI, mF, mS
	}
}

// finalize boxes group g's result, mirroring the row engine's finalize.
func (a *aggAcc) finalize(g int) types.Value {
	switch a.spec.Fn {
	case algebra.AggCount:
		return types.NewInt(a.count[g])
	case algebra.AggSum:
		if !a.sawAny[g] {
			return types.NewNull(a.spec.ResultKind)
		}
		if a.spec.ResultKind == types.KindInt {
			return types.NewInt(a.sumI[g])
		}
		return types.NewFloat(a.sumF[g])
	case algebra.AggAvg:
		if !a.sawAny[g] || a.count[g] == 0 {
			return types.NewNull(types.KindFloat)
		}
		return types.NewFloat(a.sumF[g] / float64(a.count[g]))
	case algebra.AggMin, algebra.AggMax:
		if !a.sawAny[g] {
			return types.NewNull(a.spec.ResultKind)
		}
		switch a.argKind {
		case types.KindInt:
			return types.NewInt(a.mI[g])
		case types.KindDate:
			return types.NewDate(a.mI[g])
		case types.KindFloat:
			return types.NewFloat(a.mF[g])
		case types.KindString:
			return types.NewString(a.mS[g])
		default:
			return types.NewBool(a.mI[g] != 0)
		}
	default:
		return types.NullValue
	}
}

func (h *HashAgg) Open() (err error) {
	if err := h.Input.Open(); err != nil {
		return err
	}
	defer h.Input.Close()
	// A failed Open never sees a matching Close from the parent: unwind
	// the spill state here (reserved bytes, partition writers, outputs).
	defer func() {
		if err != nil {
			h.ps.abandon()
			closeRuns(h.outRuns)
			h.outRuns = nil
			closeRuns(h.partRuns[:])
			h.partRuns = [spillPartitions]*spill.Run{}
			h.Spill.Res.ReleaseAll()
		}
	}()
	h.groupCols = make([]*vector.Vec, len(h.Groups))
	h.groupKinds = make([]types.Kind, len(h.Groups))
	for g, ge := range h.Groups {
		h.groupCols[g] = vector.NewVec(ge.Kind(), 0)
		h.groupKinds[g] = ge.Kind()
	}
	h.table = make(map[uint64][]int32)
	h.numGroups = 0
	h.seqs = h.seqs[:0]
	h.seqCtr, h.pending, h.accBytes = 0, 0, 0
	h.ps, h.merger = nil, nil
	closeRuns(h.outRuns)
	h.outRuns = nil
	closeRuns(h.partRuns[:])
	h.partRuns = [spillPartitions]*spill.Run{}
	h.accs = make([]aggAcc, len(h.Aggs))
	for ai := range h.Aggs {
		h.accs[ai].spec = h.Aggs[ai]
		if h.Aggs[ai].Arg != nil {
			h.accs[ai].argKind = h.Aggs[ai].Arg.Kind()
		}
	}
	budgeted := h.Spill.Enabled()
	stateBytes := int64(len(h.Aggs))*96 + groupOverheadBytes
	for {
		b, err := h.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		keys := make([]*vector.Vec, len(h.Groups))
		for g, ge := range h.Groups {
			kv, err := ge.fn(b, b.Sel)
			if err != nil {
				return err
			}
			keys[g] = kv
		}
		args := make([]*vector.Vec, len(h.Aggs))
		for ai, spec := range h.Aggs {
			if spec.Arg != nil {
				av, err := spec.Arg.fn(b, b.Sel)
				if err != nil {
					return err
				}
				args[ai] = av
			}
		}
		// Sequence numbers: the local counter in serial mode, the morsel
		// tap's global input ordinals in parallel partial mode (so group
		// order merges correctly across workers).
		base := h.seqCtr
		if h.Tap != nil {
			base = h.Tap.Base()
		}
		var off int64
		for _, i := range resolveSel(b, b.Sel) {
			hv := hashLanes(keys, i)
			seq := base + off
			off++
			g := -1
			for _, gi := range h.table[hv] {
				if h.groupMatches(keys, i, int(gi)) {
					g = int(gi)
					break
				}
			}
			if g < 0 {
				g = h.insertGroup(keys, i, hv, seq)
				if budgeted {
					h.pending += laneBytes(keys, i) + stateBytes
					if h.pending >= growQuantum {
						if !h.Spill.Res.Grow(h.pending) {
							if err := h.spillGroups(); err != nil {
								return err
							}
							h.Spill.Res.Force(h.pending)
							// The group just started was flushed with the
							// rest; restart it for this row.
							g = h.insertGroup(keys, i, hv, seq)
						}
						h.accBytes += h.pending
						h.pending = 0
					}
				}
			}
			for ai := range h.accs {
				h.accs[ai].accumulate(g, args[ai], i)
			}
		}
		if h.Tap == nil {
			h.seqCtr = base + off
		}
		for g, kv := range keys {
			h.Groups[g].FreeResult(kv)
		}
		for ai, av := range args {
			if av != nil {
				h.Aggs[ai].Arg.FreeResult(av)
			}
		}
	}
	if h.partial {
		return h.finishPartial()
	}
	if h.ps != nil {
		// Spilled: flush the tail epoch, merge partitions, stream the
		// sequence merge.
		if h.pending > 0 {
			h.Spill.Res.Force(h.pending)
			h.accBytes += h.pending
			h.pending = 0
		}
		if err := h.spillGroups(); err != nil {
			return err
		}
		runs, err := h.ps.finish()
		if err != nil {
			return err
		}
		resultKinds := make([]types.Kind, len(h.Aggs))
		for ai := range h.Aggs {
			resultKinds[ai] = h.Aggs[ai].ResultKind
		}
		h.outRuns, err = processGroupPartitions(h.Spill, runs, h.groupKinds, h, func(res spill.Resources,
			acc *colAccumulator, seqs []int64, order []int32) (*spill.Run, error) {
			if acc.n == 0 {
				return nil, nil
			}
			extraKinds := append(append([]types.Kind{}, resultKinds...), types.KindInt)
			return writeGroupRun(res, acc, order, extraKinds, func(g int32, extra []*vector.Vec) {
				for ai := range h.accs {
					appendValue(extra[ai], h.accs[ai].finalize(int(g)))
				}
				appendI(extra[len(extra)-1], seqs[g])
			})
		})
		if err != nil {
			return err
		}
		width := len(h.groupKinds) + len(h.Aggs)
		h.merger, err = newSeqMerger(h.outRuns, width, -1, width)
		return err
	}
	h.finishInMem()
	return nil
}

// finishInMem finalizes the in-memory result columns (and the default
// row of a global aggregate over empty input); output windows slice
// them.
func (h *HashAgg) finishInMem() {
	if h.numGroups == 0 && len(h.Groups) == 0 {
		h.numGroups = 1
		for ai := range h.accs {
			h.accs[ai].addGroup()
		}
	}
	h.resVecs = make([]*vector.Vec, len(h.Aggs))
	for ai := range h.accs {
		out := vector.NewVec(h.Aggs[ai].ResultKind, h.numGroups)
		for g := 0; g < h.numGroups; g++ {
			out.Set(g, h.accs[ai].finalize(g))
		}
		h.resVecs[ai] = out
	}
	h.outPos = 0
}

// finishPartial ends a parallel worker's drain. A worker that stayed in
// memory keeps its live group table for the coordinator's in-memory
// absorb; one that spilled under budget pressure flushes everything into
// partition runs for the disk merge.
func (h *HashAgg) finishPartial() error {
	if h.ps == nil {
		return nil
	}
	return h.flushPartialRuns()
}

// flushPartialRuns force-flushes a worker's groups (live table and any
// earlier flush epochs) into finished partition runs. The coordinator
// calls it on in-memory workers when a sibling spilled, so the
// cross-worker merge sees a uniform representation.
func (h *HashAgg) flushPartialRuns() error {
	if h.numGroups == 0 && h.ps == nil {
		return nil
	}
	if h.pending > 0 {
		h.Spill.Res.Force(h.pending)
		h.accBytes += h.pending
		h.pending = 0
	}
	if err := h.spillGroups(); err != nil {
		return err
	}
	runs, err := h.ps.finishAll()
	if err != nil {
		return err
	}
	h.partRuns = runs
	h.ps = nil
	return nil
}

// hasPartRuns reports whether the worker flushed partial records to
// disk.
func (h *HashAgg) hasPartRuns() bool {
	for _, r := range h.partRuns {
		if r != nil {
			return true
		}
	}
	return false
}

// absorb folds another worker's live group table into h (coordinator
// side, single-threaded after the drain barrier). States combine with
// the same associative merge the spill path uses, and a group's sequence
// number becomes its minimum first-appearance ordinal across workers.
// The merged copy's growth is recorded against h's reservation (Force:
// the inputs already fit worker budgets, the union may not).
func (h *HashAgg) absorb(w *HashAgg) {
	if w.numGroups == 0 {
		return
	}
	kinds := w.stateKinds()
	state := make([]*vector.Vec, len(kinds))
	for i, k := range kinds {
		state[i] = vector.NewVec(k, 0)
	}
	for g := 0; g < w.numGroups; g++ {
		w.appendState(g, state)
	}
	stateBytes := int64(len(h.Aggs))*96 + groupOverheadBytes
	var grown int64
	for g := 0; g < w.numGroups; g++ {
		hv := hashLanes(w.groupCols, g)
		target := -1
		for _, gi := range h.table[hv] {
			if rowsEqual(w.groupCols, g, h.groupCols, int(gi)) {
				target = int(gi)
				break
			}
		}
		if target < 0 {
			target = h.numGroups
			h.numGroups++
			h.table[hv] = append(h.table[hv], int32(target))
			for c := range h.groupCols {
				h.groupCols[c].AppendFrom(w.groupCols[c], g)
			}
			h.newGroup()
			h.seqs = append(h.seqs, w.seqs[g])
			grown += laneBytes(w.groupCols, g) + stateBytes
		} else if w.seqs[g] < h.seqs[target] {
			h.seqs[target] = w.seqs[g]
		}
		h.mergeState(target, state, g)
	}
	if grown > 0 && h.Spill.Enabled() {
		h.Spill.Res.Force(grown)
		h.accBytes += grown
	}
}

// finishInMemOrdered finalizes like finishInMem but emits groups in
// ascending first-appearance order: after a cross-worker absorb the
// table's insertion order is worker-0-first, not the serial input
// order the sequence numbers record.
func (h *HashAgg) finishInMemOrdered() {
	if h.numGroups == 0 {
		h.finishInMem() // empty grouped agg, or a global agg's default row
		return
	}
	order := seqOrder(h.seqs, h.numGroups)
	cols := make([]*vector.Vec, len(h.groupCols))
	for c := range h.groupCols {
		nc := vector.NewVec(h.groupKinds[c], 0)
		for _, g := range order {
			nc.AppendFrom(h.groupCols[c], int(g))
		}
		cols[c] = nc
	}
	h.groupCols = cols
	h.resVecs = make([]*vector.Vec, len(h.Aggs))
	for ai := range h.accs {
		out := vector.NewVec(h.Aggs[ai].ResultKind, h.numGroups)
		for i, g := range order {
			out.Set(i, h.accs[ai].finalize(int(g)))
		}
		h.resVecs[ai] = out
	}
	h.outPos = 0
}

func (h *HashAgg) groupMatches(keys []*vector.Vec, i int, g int) bool {
	for k := range keys {
		if !lanesEqualNullSafe(keys[k], i, h.groupCols[k], g) {
			return false
		}
	}
	return true
}

func (h *HashAgg) Next() (*vector.Batch, error) {
	if h.merger != nil {
		return h.merger.next()
	}
	if h.outPos >= h.numGroups {
		return nil, nil
	}
	hi := h.outPos + vector.BatchSize
	if hi > h.numGroups {
		hi = h.numGroups
	}
	cols := make([]*vector.Vec, 0, len(h.groupCols)+len(h.resVecs))
	for _, gc := range h.groupCols {
		cols = append(cols, gc.Window(h.outPos, hi))
	}
	for _, rv := range h.resVecs {
		cols = append(cols, rv.Window(h.outPos, hi))
	}
	b := &vector.Batch{N: hi - h.outPos, Cols: cols}
	h.outPos = hi
	return b, nil
}

func (h *HashAgg) Close() error {
	h.groupCols, h.resVecs, h.accs, h.table = nil, nil, nil, nil
	h.merger = nil
	h.ps.abandon()
	closeRuns(h.outRuns)
	h.outRuns = nil
	closeRuns(h.partRuns[:])
	h.partRuns = [spillPartitions]*spill.Run{}
	h.Spill.Res.ReleaseAll()
	return nil
}

// ---------------------------------------------------------------------------
// Batch→row adapter

// RowSource adapts a vectorized subtree to the row engine's volcano
// interface (it structurally satisfies exec.Node), boxing each live
// batch row back into a types.Row. This is the per-subtree fallback
// boundary: row-only operators (right/full joins, unsupported
// expressions) and the top-level result sink consume vectorized subtrees
// through it.
type RowSource struct {
	obs.Card
	Input Node
	batch *vector.Batch
	idx   int
}

// NewRowSource returns a batch→row adapter over a vectorized subtree.
func NewRowSource(input Node) *RowSource { return &RowSource{Input: input} }

// Open opens the vectorized subtree.
func (r *RowSource) Open() error {
	r.batch, r.idx = nil, 0
	return r.Input.Open()
}

// Next returns the next live row, pulling a new batch when the current
// one is exhausted.
func (r *RowSource) Next() (types.Row, error) {
	for {
		if r.batch != nil && r.idx < r.batch.Live() {
			lane := r.idx
			if r.batch.Sel != nil {
				lane = r.batch.Sel[r.idx]
			}
			r.idx++
			return r.batch.Row(lane), nil
		}
		b, err := r.Input.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			r.batch = nil
			return nil, nil
		}
		r.batch, r.idx = b, 0
	}
}

// Close closes the vectorized subtree.
func (r *RowSource) Close() error { return r.Input.Close() }

// sortKeyClasses precomputes the comparison class of each sort key from
// the first batch's column kinds.
func sortKeyClasses(keys []exec.SortKey, cols []*vector.Vec) []cmpClass {
	classes := make([]cmpClass, len(keys))
	for i, k := range keys {
		classes[i] = classify(cols[k.Pos].Kind, cols[k.Pos].Kind)
	}
	return classes
}

// compareSortLanes orders lane li of l against lane ri of r under one
// sort key's class, treating NULL as greater than everything (the row
// engine's NULLS LAST ascending convention).
func compareSortLanes(class cmpClass, l *vector.Vec, li int, r *vector.Vec, ri int) int {
	ln, rn := l.Nulls.Get(li), r.Nulls.Get(ri)
	switch {
	case ln && rn:
		return 0
	case ln:
		return 1
	case rn:
		return -1
	}
	return laneCompare(class, l, li, r, ri)
}
