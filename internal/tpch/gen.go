// Package tpch provides the TPC-H substrate of the paper's evaluation
// (§V): the benchmark schema, a deterministic scale-factor data generator
// (standing in for dbgen), and the 15 benchmark queries the Perm prototype
// supports (1, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 19 — queries
// with correlated sublinks are excluded, as in the paper), with
// qgen-style randomized parameters.
//
// The generator reproduces dbgen's row-count scaling and value domains
// (nation/region lists, brands, containers, shipping modes, date ranges)
// with a seeded PRNG, so datasets are reproducible across runs. Comment
// fields carry the probabilistic "special requests"/"Customer Complaints"
// markers queries 13 and 16 filter on.
package tpch

import (
	"fmt"
	"math"

	"perm/internal/types"
)

// Rand is a small deterministic PRNG (splitmix64) so datasets and query
// parameters are reproducible without math/rand's global state.
type Rand struct {
	state uint64
}

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed + 0x9e3779b97f4a7c15} }

// Next returns the next raw 64-bit value.
func (r *Rand) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Range returns a uniform integer in [lo, hi] inclusive.
func (r *Rand) Range(lo, hi int) int { return lo + r.Intn(hi-lo+1) }

// Float returns a uniform float in [0, 1).
func (r *Rand) Float() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Pick returns a random element of a string list.
func (r *Rand) Pick(list []string) string { return list[r.Intn(len(list))] }

// Value domains, following the TPC-H specification's lists.
var (
	Regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

	// Nations with their region assignment (nation key = index).
	Nations = []struct {
		Name   string
		Region int
	}{
		{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
		{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
		{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
		{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
		{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
		{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
		{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
	}

	Segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	Priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	ShipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	Instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	Containers = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX",
		"MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG",
		"JUMBO BAG", "JUMBO BOX", "JUMBO CASE", "JUMBO PKG", "WRAP BAG", "WRAP BOX"}
	TypeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	TypeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	TypeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	NameSyl  = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood", "burnished",
		"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
		"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
		"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green",
		"grey", "honeydew", "hot", "hotpink", "indian", "ivory", "khaki",
		"lavender", "lawn", "lemon", "light", "lime", "linen", "magenta",
		"maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin",
		"navajo", "navy", "olive", "orange", "orchid", "pale", "papaya", "peach",
		"peru", "pink", "plum", "powder", "puff", "purple", "red", "rose",
		"rosy", "royal", "saddle", "salmon", "sandy", "seashell", "sienna",
		"sky", "slate", "smoke", "snow", "spring", "steel", "tan", "thistle",
		"tomato", "turquoise", "violet", "wheat", "white", "yellow"}
	commentWords = []string{"carefully", "quickly", "furiously", "slyly", "blithely",
		"deposits", "requests", "accounts", "packages", "foxes", "ideas",
		"theodolites", "pinto", "beans", "instructions", "dependencies",
		"excuses", "platelets", "asymptotes", "courts", "dolphins", "sheaves"}
)

// Dataset holds the generated relations as raw rows keyed by table name.
type Dataset struct {
	SF     float64
	Tables map[string][]types.Row
}

// RowCount returns the total number of rows across all tables.
func (d *Dataset) RowCount() int {
	n := 0
	for _, rows := range d.Tables {
		n += len(rows)
	}
	return n
}

// scaled returns max(1, round(base*sf)).
func scaled(base int, sf float64) int {
	n := int(math.Round(float64(base) * sf))
	if n < 1 {
		n = 1
	}
	return n
}

// epochDate converts a calendar date to the engine's date value.
func epochDate(y, m, d int) types.Value { return types.DateFromYMD(y, m, d) }

// randDate returns a uniform date in [1992-01-01, 1998-08-02], dbgen's
// order-date domain.
func randDate(r *Rand) types.Value {
	start := types.DateFromYMD(1992, 1, 1).I
	end := types.DateFromYMD(1998, 8, 2).I
	return types.NewDate(start + int64(r.Intn(int(end-start+1))))
}

func comment(r *Rand, marker string) types.Value {
	n := r.Range(3, 8)
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += r.Pick(commentWords)
	}
	if marker != "" {
		s += " " + marker
	}
	return types.NewString(s)
}

// Generate builds a deterministic TPC-H dataset at the given scale factor.
// SF 1.0 corresponds to dbgen's 1GB row counts; the paper's 10MB/100MB/1GB
// databases are SF 0.01/0.1/1.
func Generate(sf float64, seed uint64) *Dataset {
	r := NewRand(seed)
	d := &Dataset{SF: sf, Tables: make(map[string][]types.Row)}

	// region
	regions := make([]types.Row, len(Regions))
	for i, name := range Regions {
		regions[i] = types.Row{
			types.NewInt(int64(i)), types.NewString(name), comment(r, ""),
		}
	}
	d.Tables["region"] = regions

	// nation
	nations := make([]types.Row, len(Nations))
	for i, n := range Nations {
		nations[i] = types.Row{
			types.NewInt(int64(i)), types.NewString(n.Name),
			types.NewInt(int64(n.Region)), comment(r, ""),
		}
	}
	d.Tables["nation"] = nations

	// supplier
	nSupp := scaled(10000, sf)
	suppliers := make([]types.Row, nSupp)
	for i := 0; i < nSupp; i++ {
		key := int64(i + 1)
		marker := ""
		if r.Intn(100) < 1 {
			marker = "Customer Complaints" // Q16's filter marker
		}
		suppliers[i] = types.Row{
			types.NewInt(key),
			types.NewString(fmt.Sprintf("Supplier#%09d", key)),
			types.NewString(fmt.Sprintf("addr-%d", r.Intn(100000))),
			types.NewInt(int64(r.Intn(len(Nations)))),
			types.NewString(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+r.Intn(25), r.Intn(1000), r.Intn(1000), r.Intn(10000))),
			types.NewFloat(float64(r.Range(-99999, 999999)) / 100),
			comment(r, marker),
		}
	}
	d.Tables["supplier"] = suppliers

	// customer
	nCust := scaled(150000, sf)
	customers := make([]types.Row, nCust)
	for i := 0; i < nCust; i++ {
		key := int64(i + 1)
		customers[i] = types.Row{
			types.NewInt(key),
			types.NewString(fmt.Sprintf("Customer#%09d", key)),
			types.NewString(fmt.Sprintf("addr-%d", r.Intn(100000))),
			types.NewInt(int64(r.Intn(len(Nations)))),
			types.NewString(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+r.Intn(25), r.Intn(1000), r.Intn(1000), r.Intn(10000))),
			types.NewFloat(float64(r.Range(-99999, 999999)) / 100),
			types.NewString(r.Pick(Segments)),
			comment(r, ""),
		}
	}
	d.Tables["customer"] = customers

	// part
	nPart := scaled(200000, sf)
	parts := make([]types.Row, nPart)
	for i := 0; i < nPart; i++ {
		key := int64(i + 1)
		name := r.Pick(NameSyl) + " " + r.Pick(NameSyl) + " " + r.Pick(NameSyl)
		mfgr := r.Range(1, 5)
		brand := mfgr*10 + r.Range(1, 5)
		ptype := r.Pick(TypeSyl1) + " " + r.Pick(TypeSyl2) + " " + r.Pick(TypeSyl3)
		parts[i] = types.Row{
			types.NewInt(key),
			types.NewString(name),
			types.NewString(fmt.Sprintf("Manufacturer#%d", mfgr)),
			types.NewString(fmt.Sprintf("Brand#%d", brand)),
			types.NewString(ptype),
			types.NewInt(int64(r.Range(1, 50))),
			types.NewString(r.Pick(Containers)),
			types.NewFloat(90000.0/100 + float64(key%2000)/10 + 0.01*float64(key%1000)),
			comment(r, ""),
		}
	}
	d.Tables["part"] = parts

	// partsupp: 4 suppliers per part.
	partsupp := make([]types.Row, 0, nPart*4)
	for i := 0; i < nPart; i++ {
		pkey := int64(i + 1)
		for j := 0; j < 4; j++ {
			skey := int64((i+j*(nSupp/4+1))%nSupp + 1)
			partsupp = append(partsupp, types.Row{
				types.NewInt(pkey),
				types.NewInt(skey),
				types.NewInt(int64(r.Range(1, 9999))),
				types.NewFloat(float64(r.Range(100, 100000)) / 100),
				comment(r, ""),
			})
		}
	}
	d.Tables["partsupp"] = partsupp

	// orders and lineitem
	nOrders := scaled(1500000, sf)
	orders := make([]types.Row, 0, nOrders)
	lineitems := make([]types.Row, 0, nOrders*4)
	for i := 0; i < nOrders; i++ {
		okey := int64(i + 1)
		custkey := int64(r.Intn(nCust) + 1)
		odate := randDate(r)
		nLines := r.Range(1, 7)
		totalPrice := 0.0
		status := "O"
		allF := true
		anyF := false
		marker := ""
		if r.Intn(100) < 2 {
			marker = "special requests" // Q13's filter marker
		}
		for ln := 1; ln <= nLines; ln++ {
			pIdx := r.Intn(nPart)
			pkey := int64(pIdx + 1)
			// one of the part's four suppliers
			j := r.Intn(4)
			skey := int64((pIdx+j*(nSupp/4+1))%nSupp + 1)
			qty := float64(r.Range(1, 50))
			price := qty * (900.0 + float64(pkey%2000)/10)
			discount := float64(r.Intn(11)) / 100
			tax := float64(r.Intn(9)) / 100
			shipdate := types.NewDate(odate.I + int64(r.Range(1, 121)))
			commitdate := types.NewDate(odate.I + int64(r.Range(30, 90)))
			receiptdate := types.NewDate(shipdate.I + int64(r.Range(1, 30)))
			// dbgen: returnflag R/A for shipped-before-1995-06-17 lines.
			cutoff := epochDate(1995, 6, 17)
			var returnflag, linestatus string
			if receiptdate.I <= cutoff.I {
				if r.Intn(2) == 0 {
					returnflag = "R"
				} else {
					returnflag = "A"
				}
			} else {
				returnflag = "N"
			}
			if shipdate.I <= cutoff.I {
				linestatus = "F"
				anyF = true
			} else {
				linestatus = "O"
				allF = false
			}
			totalPrice += price * (1 + tax) * (1 - discount)
			lineitems = append(lineitems, types.Row{
				types.NewInt(okey), types.NewInt(pkey), types.NewInt(skey),
				types.NewInt(int64(ln)), types.NewFloat(qty), types.NewFloat(price),
				types.NewFloat(discount), types.NewFloat(tax),
				types.NewString(returnflag), types.NewString(linestatus),
				shipdate, commitdate, receiptdate,
				types.NewString(r.Pick(Instructs)), types.NewString(r.Pick(ShipModes)),
				comment(r, ""),
			})
		}
		if allF {
			status = "F"
		} else if anyF {
			status = "P"
		}
		orders = append(orders, types.Row{
			types.NewInt(okey), types.NewInt(custkey), types.NewString(status),
			types.NewFloat(totalPrice), odate, types.NewString(r.Pick(Priorities)),
			types.NewString(fmt.Sprintf("Clerk#%09d", r.Intn(1000)+1)),
			types.NewInt(0), comment(r, marker),
		})
	}
	d.Tables["orders"] = orders
	d.Tables["lineitem"] = lineitems
	return d
}

// SchemaSQL returns the CREATE TABLE statements for the TPC-H schema.
func SchemaSQL() string {
	return `
CREATE TABLE region (r_regionkey int, r_name text, r_comment text);
CREATE TABLE nation (n_nationkey int, n_name text, n_regionkey int, n_comment text);
CREATE TABLE supplier (s_suppkey int, s_name text, s_address text, s_nationkey int, s_phone text, s_acctbal float, s_comment text);
CREATE TABLE customer (c_custkey int, c_name text, c_address text, c_nationkey int, c_phone text, c_acctbal float, c_mktsegment text, c_comment text);
CREATE TABLE part (p_partkey int, p_name text, p_mfgr text, p_brand text, p_type text, p_size int, p_container text, p_retailprice float, p_comment text);
CREATE TABLE partsupp (ps_partkey int, ps_suppkey int, ps_availqty int, ps_supplycost float, ps_comment text);
CREATE TABLE orders (o_orderkey int, o_custkey int, o_orderstatus text, o_totalprice float, o_orderdate date, o_orderpriority text, o_clerk text, o_shippriority int, o_comment text);
CREATE TABLE lineitem (l_orderkey int, l_partkey int, l_suppkey int, l_linenumber int, l_quantity float, l_extendedprice float, l_discount float, l_tax float, l_returnflag text, l_linestatus text, l_shipdate date, l_commitdate date, l_receiptdate date, l_shipinstruct text, l_shipmode text, l_comment text);
`
}

// TableNames lists the TPC-H tables in creation order.
func TableNames() []string {
	return []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"}
}
