package tpch

import (
	"strings"
	"testing"

	"perm/internal/sql"
	"perm/internal/types"
)

func TestRandDeterminismAndRange(t *testing.T) {
	a, b := NewRand(1), NewRand(1)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must produce same sequence")
		}
	}
	r := NewRand(2)
	for i := 0; i < 1000; i++ {
		if v := r.Range(3, 7); v < 3 || v > 7 {
			t.Fatalf("Range out of bounds: %d", v)
		}
		if f := r.Float(); f < 0 || f >= 1 {
			t.Fatalf("Float out of bounds: %g", f)
		}
	}
}

func TestAllQueriesParse(t *testing.T) {
	r := NewRand(5)
	for _, n := range SupportedQueries() {
		for v := 0; v < 3; v++ {
			q := MustQGen(n, r)
			if _, err := sql.Parse(q.Text); err != nil {
				t.Errorf("Q%d version %d does not parse: %v\n%s", n, v, err, q.Text)
			}
			pq := q.Provenance()
			if !strings.Contains(strings.ToUpper(pq.Text), "SELECT PROVENANCE") {
				t.Errorf("Q%d: PROVENANCE not injected", n)
			}
			if _, err := sql.Parse(pq.Text); err != nil {
				t.Errorf("Q%d provenance form does not parse: %v", n, err)
			}
			for _, s := range q.Setup {
				if _, err := sql.Parse(s); err != nil {
					t.Errorf("Q%d setup does not parse: %v", n, err)
				}
			}
			for _, s := range q.Teardown {
				if _, err := sql.Parse(s); err != nil {
					t.Errorf("Q%d teardown does not parse: %v", n, err)
				}
			}
		}
	}
}

func TestUnsupportedQueriesRejected(t *testing.T) {
	r := NewRand(1)
	for _, n := range []int{2, 4, 17, 18, 20, 21, 22, 0, 23} {
		if _, err := QGen(n, r); err == nil {
			t.Errorf("QGen(%d) should fail", n)
		}
	}
}

func TestGenerateInvariants(t *testing.T) {
	d := Generate(0.001, 7)
	// Referential sanity: every lineitem references a valid order, part
	// and supplier; every order a valid customer.
	nOrders := len(d.Tables["orders"])
	nPart := len(d.Tables["part"])
	nSupp := len(d.Tables["supplier"])
	nCust := len(d.Tables["customer"])
	for _, li := range d.Tables["lineitem"] {
		if k := li[0].I; k < 1 || k > int64(nOrders) {
			t.Fatalf("lineitem orderkey %d out of range", k)
		}
		if k := li[1].I; k < 1 || k > int64(nPart) {
			t.Fatalf("lineitem partkey %d out of range", k)
		}
		if k := li[2].I; k < 1 || k > int64(nSupp) {
			t.Fatalf("lineitem suppkey %d out of range", k)
		}
		// shipdate <= receiptdate
		if li[10].I > li[12].I {
			t.Fatalf("shipdate after receiptdate: %v", li)
		}
	}
	for _, o := range d.Tables["orders"] {
		if k := o[1].I; k < 1 || k > int64(nCust) {
			t.Fatalf("order custkey %d out of range", k)
		}
		if o[4].K != types.KindDate {
			t.Fatalf("orderdate kind = %v", o[4].K)
		}
	}
	// partsupp: exactly 4 entries per part.
	if len(d.Tables["partsupp"]) != 4*nPart {
		t.Errorf("partsupp = %d rows, want %d", len(d.Tables["partsupp"]), 4*nPart)
	}
	// nation/region fixed.
	if len(d.Tables["nation"]) != 25 || len(d.Tables["region"]) != 5 {
		t.Error("nation/region sizes wrong")
	}
	// Q13/Q16 filter markers must occur somewhere at reasonable SF.
	big := Generate(0.01, 7)
	foundSpecial, foundComplaint := false, false
	for _, o := range big.Tables["orders"] {
		if strings.Contains(o[8].S, "special requests") {
			foundSpecial = true
			break
		}
	}
	for _, s := range big.Tables["supplier"] {
		if strings.Contains(s[6].S, "Customer Complaints") {
			foundComplaint = true
			break
		}
	}
	if !foundSpecial {
		t.Error("no 'special requests' marker in order comments (Q13 filter)")
	}
	if !foundComplaint {
		t.Error("no 'Customer Complaints' marker in supplier comments (Q16 filter)")
	}
}

func TestSchemaSQLParses(t *testing.T) {
	stmts, err := sql.ParseAll(SchemaSQL())
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != len(TableNames()) {
		t.Errorf("schema has %d statements, want %d", len(stmts), len(TableNames()))
	}
}
