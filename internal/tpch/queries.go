package tpch

import (
	"fmt"
	"strings"
)

// Query is one benchmark query instance: optional setup/teardown (Q15's
// revenue view) around the query text.
type Query struct {
	Number   int
	Setup    []string
	Text     string
	Teardown []string
}

// Provenance returns the query with the PROVENANCE keyword injected into
// the outermost SELECT (the SQL-PLE form of §IV-A2).
func (q Query) Provenance() Query {
	q.Text = injectProvenance(q.Text)
	return q
}

// injectProvenance inserts PROVENANCE after the first SELECT keyword.
func injectProvenance(text string) string {
	idx := strings.Index(strings.ToUpper(text), "SELECT")
	if idx < 0 {
		return text
	}
	return text[:idx+len("SELECT")] + " PROVENANCE" + text[idx+len("SELECT"):]
}

// SupportedQueries lists the TPC-H queries the paper's prototype supports
// (§V: all but those with correlated sublinks — 2, 4, 17, 18, 20, 21, 22).
func SupportedQueries() []int {
	return []int{1, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 19}
}

// QGen generates a parameterized instance of a benchmark query, following
// qgen's substitution rules with the given PRNG (the paper used 100
// random versions per query, §V).
func QGen(number int, r *Rand) (Query, error) {
	switch number {
	case 1:
		delta := r.Range(60, 120)
		return Query{Number: 1, Text: fmt.Sprintf(`
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= date '1998-12-01' - interval '%d' day
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`, delta)}, nil
	case 3:
		segment := r.Pick(Segments)
		day := r.Range(1, 31)
		return Query{Number: 3, Text: fmt.Sprintf(`
SELECT l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = '%s'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < date '1995-03-%02d'
  AND l_shipdate > date '1995-03-%02d'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate`, segment, day, day)}, nil
	case 5:
		region := r.Pick(Regions)
		year := r.Range(1993, 1997)
		return Query{Number: 5, Text: fmt.Sprintf(`
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = '%s'
  AND o_orderdate >= date '%d-01-01'
  AND o_orderdate < date '%d-01-01' + interval '1' year
GROUP BY n_name
ORDER BY revenue DESC`, region, year, year)}, nil
	case 6:
		year := r.Range(1993, 1997)
		discount := float64(r.Range(2, 9)) / 100
		quantity := r.Range(24, 25)
		return Query{Number: 6, Text: fmt.Sprintf(`
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= date '%d-01-01'
  AND l_shipdate < date '%d-01-01' + interval '1' year
  AND l_discount BETWEEN %.2f - 0.01 AND %.2f + 0.01
  AND l_quantity < %d`, year, year, discount, discount, quantity)}, nil
	case 7:
		i := r.Intn(len(Nations))
		j := (i + 1 + r.Intn(len(Nations)-1)) % len(Nations)
		n1, n2 := Nations[i].Name, Nations[j].Name
		return Query{Number: 7, Text: fmt.Sprintf(`
SELECT supp_nation, cust_nation, l_year, sum(volume) AS revenue
FROM (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
             extract(year FROM l_shipdate) AS l_year,
             l_extendedprice * (1 - l_discount) AS volume
      FROM supplier, lineitem, orders, customer, nation AS n1, nation AS n2
      WHERE s_suppkey = l_suppkey
        AND o_orderkey = l_orderkey
        AND c_custkey = o_custkey
        AND s_nationkey = n1.n_nationkey
        AND c_nationkey = n2.n_nationkey
        AND ((n1.n_name = '%s' AND n2.n_name = '%s')
          OR (n1.n_name = '%s' AND n2.n_name = '%s'))
        AND l_shipdate BETWEEN date '1995-01-01' AND date '1996-12-31'
     ) AS shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year`, n1, n2, n2, n1)}, nil
	case 8:
		nIdx := r.Intn(len(Nations))
		nation := Nations[nIdx].Name
		region := Regions[Nations[nIdx].Region]
		ptype := fmt.Sprintf("%s %s %s", TypeSyl1[r.Intn(len(TypeSyl1))],
			TypeSyl2[r.Intn(len(TypeSyl2))], TypeSyl3[r.Intn(len(TypeSyl3))])
		return Query{Number: 8, Text: fmt.Sprintf(`
SELECT o_year,
       sum(CASE WHEN nation = '%s' THEN volume ELSE 0 END) / sum(volume) AS mkt_share
FROM (SELECT extract(year FROM o_orderdate) AS o_year,
             l_extendedprice * (1 - l_discount) AS volume,
             n2.n_name AS nation
      FROM part, supplier, lineitem, orders, customer, nation AS n1, nation AS n2, region
      WHERE p_partkey = l_partkey
        AND s_suppkey = l_suppkey
        AND l_orderkey = o_orderkey
        AND o_custkey = c_custkey
        AND c_nationkey = n1.n_nationkey
        AND n1.n_regionkey = r_regionkey
        AND r_name = '%s'
        AND s_nationkey = n2.n_nationkey
        AND o_orderdate BETWEEN date '1995-01-01' AND date '1996-12-31'
        AND p_type = '%s'
     ) AS all_nations
GROUP BY o_year
ORDER BY o_year`, nation, region, ptype)}, nil
	case 9:
		color := r.Pick(NameSyl)
		return Query{Number: 9, Text: fmt.Sprintf(`
SELECT nation, o_year, sum(amount) AS sum_profit
FROM (SELECT n_name AS nation,
             extract(year FROM o_orderdate) AS o_year,
             l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity AS amount
      FROM part, supplier, lineitem, partsupp, orders, nation
      WHERE s_suppkey = l_suppkey
        AND ps_suppkey = l_suppkey
        AND ps_partkey = l_partkey
        AND p_partkey = l_partkey
        AND o_orderkey = l_orderkey
        AND s_nationkey = n_nationkey
        AND p_name LIKE '%%%s%%'
     ) AS profit
GROUP BY nation, o_year
ORDER BY nation, o_year DESC`, color)}, nil
	case 10:
		year := r.Range(1993, 1994)
		month := r.Range(1, 12)
		return Query{Number: 10, Text: fmt.Sprintf(`
SELECT c_custkey, c_name,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= date '%d-%02d-01'
  AND o_orderdate < date '%d-%02d-01' + interval '3' month
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
ORDER BY revenue DESC`, year, month, year, month)}, nil
	case 11:
		nation := Nations[r.Intn(len(Nations))].Name
		fraction := 0.0001
		return Query{Number: 11, Text: fmt.Sprintf(`
SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey
  AND s_nationkey = n_nationkey
  AND n_name = '%s'
GROUP BY ps_partkey
HAVING sum(ps_supplycost * ps_availqty) >
       (SELECT sum(ps_supplycost * ps_availqty) * %g
        FROM partsupp, supplier, nation
        WHERE ps_suppkey = s_suppkey
          AND s_nationkey = n_nationkey
          AND n_name = '%s')
ORDER BY value DESC`, nation, fraction, nation)}, nil
	case 12:
		m1 := r.Pick(ShipModes)
		m2 := r.Pick(ShipModes)
		for m2 == m1 {
			m2 = r.Pick(ShipModes)
		}
		year := r.Range(1993, 1997)
		return Query{Number: 12, Text: fmt.Sprintf(`
SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       sum(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('%s', '%s')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= date '%d-01-01'
  AND l_receiptdate < date '%d-01-01' + interval '1' year
GROUP BY l_shipmode
ORDER BY l_shipmode`, m1, m2, year, year)}, nil
	case 13:
		word1 := "special"
		word2 := "requests"
		return Query{Number: 13, Text: fmt.Sprintf(`
SELECT c_count, count(*) AS custdist
FROM (SELECT c_custkey, count(o_orderkey) AS c_count
      FROM customer LEFT OUTER JOIN orders
           ON c_custkey = o_custkey AND o_comment NOT LIKE '%%%s%%%s%%'
      GROUP BY c_custkey
     ) AS c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC`, word1, word2)}, nil
	case 14:
		year := r.Range(1993, 1997)
		month := r.Range(1, 12)
		return Query{Number: 14, Text: fmt.Sprintf(`
SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END) / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= date '%d-%02d-01'
  AND l_shipdate < date '%d-%02d-01' + interval '1' month`, year, month, year, month)}, nil
	case 15:
		year := r.Range(1993, 1997)
		month := r.Range(1, 10)
		view := fmt.Sprintf(`
CREATE VIEW revenue_stream AS
SELECT l_suppkey AS supplier_no,
       sum(l_extendedprice * (1 - l_discount)) AS total_revenue
FROM lineitem
WHERE l_shipdate >= date '%d-%02d-01'
  AND l_shipdate < date '%d-%02d-01' + interval '3' month
GROUP BY l_suppkey`, year, month, year, month)
		return Query{
			Number: 15,
			Setup:  []string{view},
			Text: `
SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
FROM supplier, revenue_stream
WHERE s_suppkey = supplier_no
  AND total_revenue = (SELECT max(total_revenue) FROM revenue_stream)
ORDER BY s_suppkey`,
			Teardown: []string{"DROP VIEW revenue_stream"},
		}, nil
	case 16:
		brand := fmt.Sprintf("Brand#%d%d", r.Range(1, 5), r.Range(1, 5))
		ptype := TypeSyl1[r.Intn(len(TypeSyl1))] + " " + TypeSyl2[r.Intn(len(TypeSyl2))]
		sizes := make([]string, 8)
		seen := map[int]bool{}
		for i := 0; i < 8; i++ {
			s := r.Range(1, 50)
			for seen[s] {
				s = r.Range(1, 50)
			}
			seen[s] = true
			sizes[i] = fmt.Sprintf("%d", s)
		}
		return Query{Number: 16, Text: fmt.Sprintf(`
SELECT p_brand, p_type, p_size, count(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp, part
WHERE p_partkey = ps_partkey
  AND p_brand <> '%s'
  AND p_type NOT LIKE '%s%%'
  AND p_size IN (%s)
  AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier
                         WHERE s_comment LIKE '%%Customer%%Complaints%%')
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size`, brand, ptype, strings.Join(sizes, ", "))}, nil
	case 19:
		b1 := fmt.Sprintf("Brand#%d%d", r.Range(1, 5), r.Range(1, 5))
		b2 := fmt.Sprintf("Brand#%d%d", r.Range(1, 5), r.Range(1, 5))
		b3 := fmt.Sprintf("Brand#%d%d", r.Range(1, 5), r.Range(1, 5))
		q1 := r.Range(1, 10)
		q2 := r.Range(10, 20)
		q3 := r.Range(20, 30)
		return Query{Number: 19, Text: fmt.Sprintf(`
SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE (p_partkey = l_partkey
       AND p_brand = '%s'
       AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
       AND l_quantity >= %d AND l_quantity <= %d + 10
       AND p_size BETWEEN 1 AND 5
       AND l_shipmode IN ('AIR', 'REG AIR')
       AND l_shipinstruct = 'DELIVER IN PERSON')
   OR (p_partkey = l_partkey
       AND p_brand = '%s'
       AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
       AND l_quantity >= %d AND l_quantity <= %d + 10
       AND p_size BETWEEN 1 AND 10
       AND l_shipmode IN ('AIR', 'REG AIR')
       AND l_shipinstruct = 'DELIVER IN PERSON')
   OR (p_partkey = l_partkey
       AND p_brand = '%s'
       AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
       AND l_quantity >= %d AND l_quantity <= %d + 10
       AND p_size BETWEEN 1 AND 15
       AND l_shipmode IN ('AIR', 'REG AIR')
       AND l_shipinstruct = 'DELIVER IN PERSON')`,
			b1, q1, q1, b2, q2, q2, b3, q3, q3)}, nil
	default:
		return Query{}, fmt.Errorf("tpch: query %d is not supported (the paper excludes queries with correlated sublinks)", number)
	}
}

// MustQGen is QGen that panics on error.
func MustQGen(number int, r *Rand) Query {
	q, err := QGen(number, r)
	if err != nil {
		panic(err)
	}
	return q
}
