package tpch

import (
	"fmt"

	"perm/internal/types"
)

// Target is the database surface the loader needs; *perm.Database
// satisfies it.
type Target interface {
	Exec(text string) (int, error)
	InsertRows(table string, rows []types.Row) error
}

// Load creates the TPC-H schema in the target and bulk-loads a generated
// dataset at the given scale factor.
func Load(t Target, sf float64, seed uint64) (*Dataset, error) {
	if _, err := t.Exec(SchemaSQL()); err != nil {
		return nil, fmt.Errorf("tpch: creating schema: %w", err)
	}
	d := Generate(sf, seed)
	for _, name := range TableNames() {
		if err := t.InsertRows(name, d.Tables[name]); err != nil {
			return nil, fmt.Errorf("tpch: loading %s: %w", name, err)
		}
	}
	return d, nil
}

// MustLoad is Load that panics on error.
func MustLoad(t Target, sf float64, seed uint64) *Dataset {
	d, err := Load(t, sf, seed)
	if err != nil {
		panic(err)
	}
	return d
}
