// Package deparse renders analyzed query trees back to SQL text. It is
// used to inspect the output of the provenance rewriter (EXPLAIN REWRITE)
// — the rewritten query q+ is itself plain SQL, which is the point of the
// paper's approach.
//
// The output is faithful for the engine's dialect but intended for humans:
// provenance attribute names, generated aliases and null-safe comparisons
// appear exactly as the rewriter produced them.
package deparse

import (
	"fmt"
	"strings"

	"perm/internal/algebra"
)

// Query renders a query tree as SQL.
func Query(q *algebra.Query) string {
	var sb strings.Builder
	writeQuery(&sb, q, 0)
	return sb.String()
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

func writeQuery(sb *strings.Builder, q *algebra.Query, depth int) {
	if q.IsSetOp() {
		writeSetOpItem(sb, q, q.SetOp, depth)
		writeSortLimit(sb, q, depth)
		return
	}
	indent(sb, depth)
	sb.WriteString("SELECT ")
	if q.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, te := range q.TargetList {
		if i > 0 {
			sb.WriteString(", ")
		}
		rendered := expr(te.Expr, q)
		sb.WriteString(rendered)
		if te.Name != "" && rendered != te.Name && !strings.HasSuffix(rendered, "."+te.Name) {
			sb.WriteString(" AS ")
			sb.WriteString(te.Name)
		}
	}
	if len(q.From) > 0 {
		sb.WriteString("\n")
		indent(sb, depth)
		sb.WriteString("FROM ")
		for i, fi := range q.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeFromItem(sb, fi, q, depth)
		}
	}
	if q.Where != nil {
		sb.WriteString("\n")
		indent(sb, depth)
		sb.WriteString("WHERE ")
		sb.WriteString(expr(q.Where, q))
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString("\n")
		indent(sb, depth)
		sb.WriteString("GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(expr(g, q))
		}
	}
	if q.Having != nil {
		sb.WriteString("\n")
		indent(sb, depth)
		sb.WriteString("HAVING ")
		sb.WriteString(expr(q.Having, q))
	}
	writeSortLimit(sb, q, depth)
}

func writeSortLimit(sb *strings.Builder, q *algebra.Query, depth int) {
	if len(q.OrderBy) > 0 {
		sb.WriteString("\n")
		indent(sb, depth)
		sb.WriteString("ORDER BY ")
		for i, si := range q.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			if v, ok := si.Expr.(*algebra.Var); ok && v.RT == -1 {
				fmt.Fprintf(sb, "%d", v.Col+1)
			} else {
				sb.WriteString(expr(si.Expr, q))
			}
			if si.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if q.Limit != nil {
		fmt.Fprintf(sb, "\nLIMIT %s", expr(q.Limit, q))
	}
	if q.Offset != nil {
		fmt.Fprintf(sb, "\nOFFSET %s", expr(q.Offset, q))
	}
}

func writeSetOpItem(sb *strings.Builder, q *algebra.Query, item algebra.SetOpItem, depth int) {
	switch n := item.(type) {
	case *algebra.SetOpLeaf:
		rte := q.RangeTable[n.RT]
		sb.WriteString("(\n")
		writeQuery(sb, rte.Subquery, depth+1)
		sb.WriteString("\n")
		indent(sb, depth)
		sb.WriteString(")")
	case *algebra.SetOpNode:
		writeSetOpItem(sb, q, n.Left, depth)
		sb.WriteString("\n")
		indent(sb, depth)
		sb.WriteString(n.Op.String())
		if n.All {
			sb.WriteString(" ALL")
		}
		sb.WriteString("\n")
		indent(sb, depth)
		writeSetOpItem(sb, q, n.Right, depth)
	}
}

func writeFromItem(sb *strings.Builder, fi algebra.FromItem, q *algebra.Query, depth int) {
	switch n := fi.(type) {
	case *algebra.FromRef:
		rte := q.RangeTable[n.RT]
		switch rte.Kind {
		case algebra.RTERelation:
			sb.WriteString(rte.RelName)
			if rte.Alias != rte.RelName {
				sb.WriteString(" AS ")
				sb.WriteString(rte.Alias)
			}
		case algebra.RTESubquery:
			sb.WriteString("(\n")
			writeQuery(sb, rte.Subquery, depth+1)
			sb.WriteString("\n")
			indent(sb, depth)
			sb.WriteString(") AS ")
			sb.WriteString(rte.Alias)
		default:
			sb.WriteString(rte.Alias)
		}
	case *algebra.FromJoin:
		sb.WriteString("(")
		writeFromItem(sb, n.Left, q, depth)
		sb.WriteString(" ")
		sb.WriteString(n.Kind.String())
		sb.WriteString(" ")
		writeFromItem(sb, n.Right, q, depth)
		if n.Cond != nil {
			sb.WriteString(" ON ")
			sb.WriteString(expr(n.Cond, q))
		}
		sb.WriteString(")")
	}
}

// expr renders an expression. Vars are qualified with the alias of their
// range-table entry.
func expr(e algebra.Expr, q *algebra.Query) string {
	switch n := e.(type) {
	case nil:
		return "NULL"
	case *algebra.Var:
		if n.RT == -1 {
			return n.Name // output-column reference
		}
		if n.RT >= 0 && n.RT < len(q.RangeTable) {
			rte := q.RangeTable[n.RT]
			name := n.Name
			if n.Col < len(rte.Cols) {
				name = rte.Cols[n.Col].Name
			}
			return rte.Alias + "." + name
		}
		return n.Name
	case *algebra.Const:
		return n.Val.SQLLiteral()
	case *algebra.BinOp:
		return "(" + expr(n.Left, q) + " " + n.Op + " " + expr(n.Right, q) + ")"
	case *algebra.UnOp:
		if n.Op == "NOT" {
			return "NOT (" + expr(n.Expr, q) + ")"
		}
		return "(" + n.Op + expr(n.Expr, q) + ")"
	case *algebra.IsNull:
		if n.Not {
			return "(" + expr(n.Expr, q) + " IS NOT NULL)"
		}
		return "(" + expr(n.Expr, q) + " IS NULL)"
	case *algebra.DistinctFrom:
		op := " IS DISTINCT FROM "
		if n.Not {
			op = " IS NOT DISTINCT FROM "
		}
		return "(" + expr(n.Left, q) + op + expr(n.Right, q) + ")"
	case *algebra.FuncCall:
		if strings.HasPrefix(n.Name, "extract_") {
			field := strings.ToUpper(strings.TrimPrefix(n.Name, "extract_"))
			return "EXTRACT(" + field + " FROM " + expr(n.Args[0], q) + ")"
		}
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = expr(a, q)
		}
		return n.Name + "(" + strings.Join(args, ", ") + ")"
	case *algebra.AggRef:
		if n.Star {
			return "count(*)"
		}
		inner := expr(n.Arg, q)
		if n.Distinct {
			inner = "DISTINCT " + inner
		}
		return n.Fn.String() + "(" + inner + ")"
	case *algebra.CaseExpr:
		var sb strings.Builder
		sb.WriteString("CASE")
		for _, w := range n.Whens {
			sb.WriteString(" WHEN ")
			sb.WriteString(expr(w.Cond, q))
			sb.WriteString(" THEN ")
			sb.WriteString(expr(w.Result, q))
		}
		if n.Else != nil {
			sb.WriteString(" ELSE ")
			sb.WriteString(expr(n.Else, q))
		}
		sb.WriteString(" END")
		return sb.String()
	case *algebra.Cast:
		return "CAST(" + expr(n.Expr, q) + " AS " + n.To.String() + ")"
	case *algebra.SubLink:
		var sb strings.Builder
		switch n.Kind {
		case algebra.SubExists:
			sb.WriteString("EXISTS ")
		case algebra.SubAny:
			sb.WriteString(expr(n.Test, q))
			if n.Op == "=" {
				sb.WriteString(" IN ")
			} else {
				sb.WriteString(" " + n.Op + " ANY ")
			}
		case algebra.SubAll:
			sb.WriteString(expr(n.Test, q) + " " + n.Op + " ALL ")
		}
		sb.WriteString("(\n")
		writeQuery(&sb, n.Query, 1)
		sb.WriteString("\n)")
		return sb.String()
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
