package deparse_test

import (
	"strings"
	"testing"

	"perm/internal/analyze"
	"perm/internal/catalog"
	"perm/internal/deparse"
	"perm/internal/optimize"
	"perm/internal/provrewrite"
	"perm/internal/sql"
	"perm/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	if _, err := cat.CreateTable("t", []catalog.Column{
		{Name: "a", Type: types.KindInt},
		{Name: "b", Type: types.KindString},
		{Name: "d", Type: types.KindDate},
	}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable("s", []catalog.Column{
		{Name: "a", Type: types.KindInt},
		{Name: "c", Type: types.KindInt},
	}, false); err != nil {
		t.Fatal(err)
	}
	return cat
}

func deparsed(t *testing.T, cat *catalog.Catalog, src string, rewrite bool) string {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analyze.New(cat).AnalyzeSelect(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	if rewrite {
		q, err = provrewrite.RewriteTree(q, provrewrite.Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	return deparse.Query(q)
}

func TestDeparseContains(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		src  string
		want []string
	}{
		{"SELECT a, b AS bee FROM t WHERE a > 1",
			[]string{"SELECT t.a, t.b AS bee", "FROM t", "WHERE (t.a > 1)"}},
		{"SELECT t.a FROM t LEFT JOIN s ON t.a = s.a",
			[]string{"LEFT OUTER JOIN", "ON (t.a = s.a)"}},
		{"SELECT b, sum(a) FROM t GROUP BY b HAVING sum(a) > 2 ORDER BY b DESC",
			[]string{"GROUP BY t.b", "HAVING (sum(t.a) > 2)", "ORDER BY", "DESC", "sum(t.a)"}},
		{"SELECT a FROM t UNION ALL SELECT a FROM s",
			[]string{"UNION ALL"}},
		{"SELECT a FROM t WHERE a IN (SELECT a FROM s)",
			[]string{" IN "}},
		{"SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
			[]string{"CASE WHEN", "THEN", "ELSE", "END"}},
		{"SELECT extract(year FROM d) FROM t",
			[]string{"EXTRACT(YEAR FROM t.d)"}},
		{"SELECT count(DISTINCT a) FROM t",
			[]string{"count(DISTINCT t.a)"}},
		{"SELECT a FROM t WHERE d = date '1995-06-17'",
			[]string{"date '1995-06-17'"}},
		{"SELECT a FROM t LIMIT 3 OFFSET 1",
			[]string{"LIMIT 3", "OFFSET 1"}},
	}
	for _, c := range cases {
		out := deparsed(t, cat, c.src, false)
		for _, w := range c.want {
			if !strings.Contains(out, w) {
				t.Errorf("deparse of %q missing %q:\n%s", c.src, w, out)
			}
		}
	}
}

func TestDeparseRewritten(t *testing.T) {
	cat := testCatalog(t)
	out := deparsed(t, cat, "SELECT PROVENANCE b, sum(a) FROM t GROUP BY b", true)
	for _, w := range []string{"prov_t_a", "prov_t_b", "IS NOT DISTINCT FROM", "INNER JOIN"} {
		if !strings.Contains(out, w) {
			t.Errorf("rewritten deparse missing %q:\n%s", w, out)
		}
	}
}

// TestDeparseRoundTrip re-parses the deparsed text and checks it analyzes
// to an equivalent schema (a pragmatic round-trip property).
func TestDeparseRoundTrip(t *testing.T) {
	cat := testCatalog(t)
	queries := []string{
		"SELECT a, b FROM t WHERE a > 1 AND b LIKE 'x%'",
		"SELECT t.a, s.c FROM t, s WHERE t.a = s.a",
		"SELECT b, count(*) AS cnt FROM t GROUP BY b HAVING count(*) > 1",
		"SELECT a FROM t UNION SELECT a FROM s",
		"SELECT a FROM t WHERE a IN (SELECT a FROM s) ORDER BY a LIMIT 2",
		"SELECT PROVENANCE a FROM t",
		"SELECT PROVENANCE b, sum(a) FROM t GROUP BY b",
		"SELECT PROVENANCE a FROM t INTERSECT SELECT a FROM s",
	}
	for _, src := range queries {
		out := deparsed(t, cat, src, true)
		stmt, err := sql.Parse(out)
		if err != nil {
			t.Errorf("deparsed text does not re-parse: %v\nsource: %s\ndeparsed:\n%s", err, src, out)
			continue
		}
		q2, err := analyze.New(cat).AnalyzeSelect(stmt.(*sql.SelectStmt))
		if err != nil {
			t.Errorf("deparsed text does not re-analyze: %v\nsource: %s\ndeparsed:\n%s", err, src, out)
			continue
		}
		// Schema width must be preserved.
		orig, err := sql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		q1, err := analyze.New(cat).AnalyzeSelect(orig.(*sql.SelectStmt))
		if err != nil {
			t.Fatal(err)
		}
		q1, err = provrewrite.RewriteTree(q1, provrewrite.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(q1.Schema()) != len(q2.Schema()) {
			t.Errorf("round trip changed width %d → %d for %q",
				len(q1.Schema()), len(q2.Schema()), src)
		}
	}
}

// TestDeparseOptimizedRoundTrip: deparsing an optimized tree must produce
// SQL that re-parses and re-analyzes cleanly (unique aliases, resolvable
// column references) and deparses to the same text again — the contract
// behind RewriteSQL showing the flattened q+.
func TestDeparseOptimizedRoundTrip(t *testing.T) {
	cat := testCatalog(t)
	queries := []string{
		"SELECT PROVENANCE x.a FROM (SELECT a, b FROM t WHERE a > 0) AS x, (SELECT a, c FROM s) AS y WHERE x.a = y.a",
		"SELECT PROVENANCE b, count(*) AS n FROM t GROUP BY b",
		"SELECT PROVENANCE a FROM t UNION SELECT a FROM s",
		"SELECT u.a FROM (SELECT a FROM t) AS u LEFT JOIN (SELECT a, c FROM s WHERE c > 1) AS v ON u.a = v.a",
	}
	for _, src := range queries {
		stmt, err := sql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		q, err := analyze.New(cat).AnalyzeSelect(stmt.(*sql.SelectStmt))
		if err != nil {
			t.Fatal(err)
		}
		q, err = provrewrite.RewriteTree(q, provrewrite.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out := deparse.Query(optimize.Query(q))

		stmt2, err := sql.Parse(out)
		if err != nil {
			t.Fatalf("optimized deparse does not re-parse: %v\n%s", err, out)
		}
		q2, err := analyze.New(cat).AnalyzeSelect(stmt2.(*sql.SelectStmt))
		if err != nil {
			t.Fatalf("optimized deparse does not re-analyze: %v\n%s", err, out)
		}
		out2 := deparse.Query(optimize.Query(q2))
		if out != out2 {
			t.Errorf("deparse not stable for %q:\nfirst:\n%s\nsecond:\n%s", src, out, out2)
		}
	}
}
