// Package storage provides the in-memory heap storage for base relations.
// Relations have bag semantics: duplicate rows are stored as separate
// entries, matching the multiset algebra of the paper's Fig. 1.
package storage

import (
	"fmt"
	"sync"

	"perm/internal/types"
)

// Heap is an append-only (plus delete) row store.
type Heap struct {
	mu    sync.RWMutex
	width int
	rows  []types.Row
}

// NewHeap returns an empty heap expecting rows of the given width.
func NewHeap(width int) *Heap {
	return &Heap{width: width}
}

// Insert appends a row. The row is not copied; callers must not mutate it
// afterwards.
func (h *Heap) Insert(r types.Row) error {
	if len(r) != h.width {
		return fmt.Errorf("row width %d does not match table width %d", len(r), h.width)
	}
	h.mu.Lock()
	h.rows = append(h.rows, r)
	h.mu.Unlock()
	return nil
}

// InsertAll appends many rows.
func (h *Heap) InsertAll(rs []types.Row) error {
	for _, r := range rs {
		if len(r) != h.width {
			return fmt.Errorf("row width %d does not match table width %d", len(r), h.width)
		}
	}
	h.mu.Lock()
	h.rows = append(h.rows, rs...)
	h.mu.Unlock()
	return nil
}

// Len returns the current row count.
func (h *Heap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.rows)
}

// Snapshot returns the current rows. The returned slice must be treated as
// read-only; it shares backing rows with the heap.
func (h *Heap) Snapshot() []types.Row {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]types.Row, len(h.rows))
	copy(out, h.rows)
	return out
}

// DeleteWhere removes rows matching the predicate and returns how many
// were removed.
func (h *Heap) DeleteWhere(match func(types.Row) (bool, error)) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	kept := h.rows[:0]
	removed := 0
	for _, r := range h.rows {
		m, err := match(r)
		if err != nil {
			return removed, err
		}
		if m {
			removed++
		} else {
			kept = append(kept, r)
		}
	}
	h.rows = kept
	return removed, nil
}

// Truncate removes all rows.
func (h *Heap) Truncate() {
	h.mu.Lock()
	h.rows = nil
	h.mu.Unlock()
}
