// Package storage provides the in-memory heap storage for base relations.
// Relations have bag semantics: duplicate rows are stored as separate
// entries, matching the multiset algebra of the paper's Fig. 1.
package storage

import (
	"fmt"
	"sync"

	"perm/internal/types"
	"perm/internal/vector"
)

// Heap is an append-only (plus delete) row store.
type Heap struct {
	mu      sync.RWMutex
	width   int
	rows    []types.Row
	version uint64   // bumped on every mutation; invalidates colSnap
	colSnap *colSnap // cached columnar snapshot for vectorized scans
}

// colSnap caches the columnar pivot of the heap at one version so
// vectorized scans don't re-pivot rows on every query. The column
// vectors are shared read-only across queries.
type colSnap struct {
	version uint64
	kinds   []types.Kind
	cols    []*vector.Vec
	n       int
	ok      bool
}

// NewHeap returns an empty heap expecting rows of the given width.
func NewHeap(width int) *Heap {
	return &Heap{width: width}
}

// Insert appends a row. The row is not copied; callers must not mutate it
// afterwards.
func (h *Heap) Insert(r types.Row) error {
	if len(r) != h.width {
		return fmt.Errorf("row width %d does not match table width %d", len(r), h.width)
	}
	h.mu.Lock()
	h.rows = append(h.rows, r)
	h.version++
	h.mu.Unlock()
	return nil
}

// InsertAll appends many rows.
func (h *Heap) InsertAll(rs []types.Row) error {
	for _, r := range rs {
		if len(r) != h.width {
			return fmt.Errorf("row width %d does not match table width %d", len(r), h.width)
		}
	}
	h.mu.Lock()
	h.rows = append(h.rows, rs...)
	h.version++
	h.mu.Unlock()
	return nil
}

// Len returns the current row count.
func (h *Heap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.rows)
}

// Snapshot returns the current rows. The returned slice must be treated as
// read-only; it shares backing rows with the heap.
func (h *Heap) Snapshot() []types.Row {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]types.Row, len(h.rows))
	copy(out, h.rows)
	return out
}

// SnapshotColumns returns a columnar snapshot of the heap for the given
// declared column kinds, pivoting the rows at most once per heap version
// (the result is cached and shared, read-only, until the next mutation).
// ok is false when some column kind is not vectorizable or some stored
// value does not fit its declared kind; callers then fall back to the
// row snapshot.
func (h *Heap) SnapshotColumns(kinds []types.Kind) (cols []*vector.Vec, n int, ok bool) {
	h.mu.RLock()
	if s := h.colSnap; s != nil && s.version == h.version && kindsEqual(s.kinds, kinds) {
		cols, n, ok = s.cols, s.n, s.ok
		h.mu.RUnlock()
		return cols, n, ok
	}
	h.mu.RUnlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.colSnap; s != nil && s.version == h.version && kindsEqual(s.kinds, kinds) {
		return s.cols, s.n, s.ok
	}
	s := &colSnap{version: h.version, kinds: append([]types.Kind(nil), kinds...), n: len(h.rows)}
	s.cols, s.ok = vector.FromRows(h.rows, kinds)
	h.colSnap = s
	return s.cols, s.n, s.ok
}

func kindsEqual(a, b []types.Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DeleteWhere removes rows matching the predicate and returns how many
// were removed.
func (h *Heap) DeleteWhere(match func(types.Row) (bool, error)) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Bump the version up front: the compaction below mutates the row
	// slice in place, so even an error part-way through must invalidate
	// the cached columnar snapshot.
	h.version++
	kept := h.rows[:0]
	removed := 0
	for _, r := range h.rows {
		m, err := match(r)
		if err != nil {
			return removed, err
		}
		if m {
			removed++
		} else {
			kept = append(kept, r)
		}
	}
	h.rows = kept
	h.version++
	return removed, nil
}

// Truncate removes all rows.
func (h *Heap) Truncate() {
	h.mu.Lock()
	h.rows = nil
	h.version++
	h.mu.Unlock()
}
