// Package storage provides the in-memory heap storage for base relations.
// Relations have bag semantics: duplicate rows are stored as separate
// entries, matching the multiset algebra of the paper's Fig. 1.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"perm/internal/types"
	"perm/internal/vector"
)

// Heap is an append-only (plus delete) row store.
//
// The mutation counter and the cached columnar snapshot are atomics so
// that the read hot path — vectorized scans re-using an already-pivoted
// snapshot — is contention-free across concurrent sessions: a hit costs
// two atomic loads, no mutex. Writers still serialize on mu and
// invalidate both atomics inside their critical section.
type Heap struct {
	mu      sync.RWMutex
	width   int
	rows    []types.Row
	version atomic.Uint64           // bumped on every mutation; invalidates colSnap
	colSnap atomic.Pointer[colSnap] // cached columnar snapshot for vectorized scans
}

// colSnap caches the columnar pivot of the heap at one version so
// vectorized scans don't re-pivot rows on every query. The column
// vectors are shared read-only across queries.
type colSnap struct {
	version uint64
	kinds   []types.Kind
	cols    []*vector.Vec
	n       int
	ok      bool
}

// NewHeap returns an empty heap expecting rows of the given width.
func NewHeap(width int) *Heap {
	return &Heap{width: width}
}

// Insert appends a row. The row is not copied; callers must not mutate it
// afterwards.
func (h *Heap) Insert(r types.Row) error {
	if len(r) != h.width {
		return fmt.Errorf("row width %d does not match table width %d", len(r), h.width)
	}
	h.mu.Lock()
	h.rows = append(h.rows, r)
	h.invalidateLocked()
	h.mu.Unlock()
	return nil
}

// InsertAll appends many rows.
func (h *Heap) InsertAll(rs []types.Row) error {
	for _, r := range rs {
		if len(r) != h.width {
			return fmt.Errorf("row width %d does not match table width %d", len(r), h.width)
		}
	}
	h.mu.Lock()
	h.rows = append(h.rows, rs...)
	h.invalidateLocked()
	h.mu.Unlock()
	return nil
}

// invalidateLocked records a mutation: it advances the heap version and
// drops the cached columnar snapshot in the same critical section, so no
// reader that enters after the mutation commits can observe the stale
// pivot (and the old vectors become collectable as soon as in-flight
// queries holding them finish). The version is advanced first: a
// lock-free reader that pairs the new version with the not-yet-cleared
// snapshot sees a version mismatch and rebuilds. Callers must hold h.mu
// for writing.
func (h *Heap) invalidateLocked() {
	h.version.Add(1)
	h.colSnap.Store(nil)
}

// Version returns the heap's mutation counter. Two equal Version reads
// with no interleaved mutation bracket an unchanged heap.
func (h *Heap) Version() uint64 { return h.version.Load() }

// Len returns the current row count.
func (h *Heap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.rows)
}

// Snapshot returns the current rows. The returned slice must be treated as
// read-only; it shares backing rows with the heap.
func (h *Heap) Snapshot() []types.Row {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]types.Row, len(h.rows))
	copy(out, h.rows)
	return out
}

// SnapshotColumns returns a columnar snapshot of the heap for the given
// declared column kinds, pivoting the rows at most once per heap version
// (the result is cached and shared, read-only, until the next mutation).
// ok is false when some column kind is not vectorizable or some stored
// value does not fit its declared kind; callers then fall back to the
// row snapshot.
//
// The hit path is lock-free: loading the version before the snapshot
// pointer guarantees that a snapshot matching the loaded version is the
// pivot of a state that was current at (or after) the version load, so a
// reader can never observe a pivot older than a mutation that committed
// before the call.
func (h *Heap) SnapshotColumns(kinds []types.Kind) (cols []*vector.Vec, n int, ok bool) {
	v := h.version.Load()
	if s := h.colSnap.Load(); s != nil && s.version == v && kindsEqual(s.kinds, kinds) {
		return s.cols, s.n, s.ok
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	v = h.version.Load() // stable: writers hold mu
	if s := h.colSnap.Load(); s != nil && s.version == v && kindsEqual(s.kinds, kinds) {
		return s.cols, s.n, s.ok
	}
	s := &colSnap{version: v, kinds: append([]types.Kind(nil), kinds...), n: len(h.rows)}
	s.cols, s.ok = vector.FromRows(h.rows, kinds)
	h.colSnap.Store(s)
	return s.cols, s.n, s.ok
}

func kindsEqual(a, b []types.Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DeleteWhere removes rows matching the predicate and returns how many
// were removed.
func (h *Heap) DeleteWhere(match func(types.Row) (bool, error)) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Invalidate up front: the compaction below mutates the row slice in
	// place, so even an error part-way through must drop the cached
	// columnar snapshot.
	h.invalidateLocked()
	kept := h.rows[:0]
	removed := 0
	for _, r := range h.rows {
		m, err := match(r)
		if err != nil {
			return removed, err
		}
		if m {
			removed++
		} else {
			kept = append(kept, r)
		}
	}
	h.rows = kept
	return removed, nil
}

// Truncate removes all rows.
func (h *Heap) Truncate() {
	h.mu.Lock()
	h.rows = nil
	h.invalidateLocked()
	h.mu.Unlock()
}
