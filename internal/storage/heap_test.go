package storage

import (
	"fmt"
	"sync"
	"testing"

	"perm/internal/types"
)

func row(vals ...int64) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestInsertAndSnapshot(t *testing.T) {
	h := NewHeap(2)
	if err := h.Insert(row(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(row(3, 4)); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	snap := h.Snapshot()
	if len(snap) != 2 || snap[1][0].I != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	// Snapshot slice is decoupled from later inserts.
	if err := h.Insert(row(5, 6)); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 {
		t.Error("snapshot grew after insert")
	}
}

func TestWidthEnforcement(t *testing.T) {
	h := NewHeap(2)
	if err := h.Insert(row(1)); err == nil {
		t.Error("wrong-width insert must fail")
	}
	if err := h.InsertAll([]types.Row{row(1, 2), row(3)}); err == nil {
		t.Error("wrong-width bulk insert must fail")
	}
	if h.Len() != 0 {
		t.Error("failed bulk insert must not partially apply")
	}
}

func TestDeleteWhere(t *testing.T) {
	h := NewHeap(1)
	for i := int64(0); i < 10; i++ {
		if err := h.Insert(row(i)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := h.DeleteWhere(func(r types.Row) (bool, error) {
		return r[0].I%2 == 0, nil
	})
	if err != nil || n != 5 {
		t.Fatalf("deleted %d, %v", n, err)
	}
	if h.Len() != 5 {
		t.Fatalf("Len = %d", h.Len())
	}
	for _, r := range h.Snapshot() {
		if r[0].I%2 == 0 {
			t.Errorf("even row survived: %v", r)
		}
	}
	h.Truncate()
	if h.Len() != 0 {
		t.Error("truncate failed")
	}
}

func TestConcurrentInsertAndRead(t *testing.T) {
	h := NewHeap(1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 500; i++ {
				if err := h.Insert(row(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Snapshot()
				h.Len()
			}
		}()
	}
	wg.Wait()
	if h.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", h.Len())
	}
}

func TestSnapshotColumns(t *testing.T) {
	h := NewHeap(2)
	kinds := []types.Kind{types.KindInt, types.KindInt}
	if err := h.Insert(row(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(types.Row{types.NewInt(2), types.NewNull(types.KindInt)}); err != nil {
		t.Fatal(err)
	}
	cols, n, ok := h.SnapshotColumns(kinds)
	if !ok || n != 2 || len(cols) != 2 {
		t.Fatalf("SnapshotColumns = (%v, %d, %v)", cols, n, ok)
	}
	if cols[0].Value(0).I != 1 || cols[0].Value(1).I != 2 {
		t.Fatal("column 0 values wrong")
	}
	if cols[1].Value(0).I != 10 || !cols[1].IsNull(1) {
		t.Fatal("column 1 values wrong")
	}

	// The snapshot is cached until the heap mutates: same backing vectors.
	cols2, _, _ := h.SnapshotColumns(kinds)
	if cols2[0] != cols[0] {
		t.Fatal("unchanged heap must reuse the cached column snapshot")
	}
	if err := h.Insert(row(3, 30)); err != nil {
		t.Fatal(err)
	}
	cols3, n3, ok := h.SnapshotColumns(kinds)
	if !ok || n3 != 3 || cols3[0] == cols[0] {
		t.Fatal("mutation must invalidate the cached snapshot")
	}
	if cols3[0].Value(2).I != 3 {
		t.Fatal("new row missing from refreshed snapshot")
	}

	// A stored value that does not fit its declared kind rejects the
	// pivot (the planner then falls back to the row snapshot).
	if err := h.Insert(types.Row{types.NewString("oops"), types.NewInt(0)}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := h.SnapshotColumns(kinds); ok {
		t.Fatal("mismatched value kinds must reject the columnar snapshot")
	}
	// The negative result is cached too.
	if _, _, ok := h.SnapshotColumns(kinds); ok {
		t.Fatal("cached negative result expected")
	}
}

func TestSnapshotColumnsConcurrent(t *testing.T) {
	h := NewHeap(1)
	kinds := []types.Kind{types.KindInt}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 300; i++ {
				if err := h.Insert(row(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				if cols, n, ok := h.SnapshotColumns(kinds); ok && n > 0 {
					_ = cols[0].Value(n - 1)
				}
			}
		}()
	}
	wg.Wait()
	if _, n, ok := h.SnapshotColumns(kinds); !ok || n != 1200 {
		t.Fatalf("final snapshot = (%d, %v), want 1200 rows", n, ok)
	}
}

// TestSnapshotColumnsInvalidatedByFailedDelete: DeleteWhere compacts the
// row slice in place before it can fail, so even an error return must
// invalidate the cached columnar snapshot.
func TestSnapshotColumnsInvalidatedByFailedDelete(t *testing.T) {
	h := NewHeap(1)
	kinds := []types.Kind{types.KindInt}
	for _, v := range []int64{5, 100, 0} {
		if err := h.Insert(row(v)); err != nil {
			t.Fatal(err)
		}
	}
	cols, _, ok := h.SnapshotColumns(kinds)
	if !ok {
		t.Fatal("snapshot failed")
	}
	calls := 0
	_, err := h.DeleteWhere(func(r types.Row) (bool, error) {
		calls++
		if r[0].I == 0 {
			return false, fmt.Errorf("boom")
		}
		return r[0].I == 5, nil
	})
	if err == nil {
		t.Fatal("DeleteWhere must propagate the predicate error")
	}
	cols2, n, ok := h.SnapshotColumns(kinds)
	if !ok || cols2[0] == cols[0] {
		t.Fatal("failed DeleteWhere must invalidate the cached snapshot")
	}
	// The refreshed snapshot must reflect whatever the heap now stores.
	rows := h.Snapshot()
	if n != len(rows) {
		t.Fatalf("snapshot rows %d != heap rows %d", n, len(rows))
	}
	for i, r := range rows {
		if cols2[0].Value(i).I != r[0].I {
			t.Fatalf("row %d: snapshot %v != heap %v (predicate ran %d times)", i, cols2[0].Value(i), r[0], calls)
		}
	}
}

// TestSnapshotNeverStaleAfterCommit: once a mutation returns, any
// subsequent SnapshotColumns must reflect it — the cached pivot is
// dropped inside the mutation's critical section, never lazily.
func TestSnapshotNeverStaleAfterCommit(t *testing.T) {
	h := NewHeap(1)
	kinds := []types.Kind{types.KindInt}
	if err := h.Insert(row(1)); err != nil {
		t.Fatal(err)
	}
	if _, n, ok := h.SnapshotColumns(kinds); !ok || n != 1 {
		t.Fatalf("warm-up snapshot = (%d, %v)", n, ok)
	}
	for i := int64(2); i <= 64; i++ {
		if err := h.Insert(row(i)); err != nil {
			t.Fatal(err)
		}
		cols, n, ok := h.SnapshotColumns(kinds)
		if !ok || n != int(i) {
			t.Fatalf("after insert %d: snapshot rows = %d (ok=%v)", i, n, ok)
		}
		if cols[0].Value(n-1).I != i {
			t.Fatalf("after insert %d: last snapshot value = %v", i, cols[0].Value(n-1))
		}
	}
	if _, err := h.DeleteWhere(func(r types.Row) (bool, error) { return r[0].I%2 == 0, nil }); err != nil {
		t.Fatal(err)
	}
	if _, n, ok := h.SnapshotColumns(kinds); !ok || n != 32 {
		t.Fatalf("after delete: snapshot rows = %d", n)
	}
	h.Truncate()
	if _, n, ok := h.SnapshotColumns(kinds); !ok || n != 0 {
		t.Fatalf("after truncate: snapshot rows = %d", n)
	}
}

// TestSnapshotColumnsConcurrentWithMutations: readers racing DML must
// only ever observe snapshots that are internally consistent (row count
// matches the vectors) and never a pivot older than a mutation they
// started after. Run with -race.
func TestSnapshotColumnsConcurrentWithMutations(t *testing.T) {
	h := NewHeap(1)
	kinds := []types.Kind{types.KindInt}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writer: inserts then deletes in waves.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 400; i++ {
			if err := h.Insert(row(i)); err != nil {
				t.Error(err)
				return
			}
			if i%50 == 49 {
				if _, err := h.DeleteWhere(func(r types.Row) (bool, error) { return r[0].I%7 == 0, nil }); err != nil {
					t.Error(err)
					return
				}
			}
		}
		close(stop)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				vBefore := h.Version()
				cols, n, ok := h.SnapshotColumns(kinds)
				if !ok {
					t.Error("snapshot failed")
					return
				}
				if n > 0 {
					// Touch first and last lane: the vectors must cover n rows.
					_ = cols[0].Value(0)
					_ = cols[0].Value(n - 1)
				}
				// If the heap did not move while we read, the snapshot must
				// match the live row count exactly (no stale cache served).
				l := h.Len()
				if h.Version() == vBefore && n != l {
					t.Errorf("stale snapshot: %d rows vs heap %d at version %d", n, l, vBefore)
					return
				}
			}
		}()
	}
	wg.Wait()
}
