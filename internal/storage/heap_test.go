package storage

import (
	"sync"
	"testing"

	"perm/internal/types"
)

func row(vals ...int64) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestInsertAndSnapshot(t *testing.T) {
	h := NewHeap(2)
	if err := h.Insert(row(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(row(3, 4)); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	snap := h.Snapshot()
	if len(snap) != 2 || snap[1][0].I != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	// Snapshot slice is decoupled from later inserts.
	if err := h.Insert(row(5, 6)); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 {
		t.Error("snapshot grew after insert")
	}
}

func TestWidthEnforcement(t *testing.T) {
	h := NewHeap(2)
	if err := h.Insert(row(1)); err == nil {
		t.Error("wrong-width insert must fail")
	}
	if err := h.InsertAll([]types.Row{row(1, 2), row(3)}); err == nil {
		t.Error("wrong-width bulk insert must fail")
	}
	if h.Len() != 0 {
		t.Error("failed bulk insert must not partially apply")
	}
}

func TestDeleteWhere(t *testing.T) {
	h := NewHeap(1)
	for i := int64(0); i < 10; i++ {
		if err := h.Insert(row(i)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := h.DeleteWhere(func(r types.Row) (bool, error) {
		return r[0].I%2 == 0, nil
	})
	if err != nil || n != 5 {
		t.Fatalf("deleted %d, %v", n, err)
	}
	if h.Len() != 5 {
		t.Fatalf("Len = %d", h.Len())
	}
	for _, r := range h.Snapshot() {
		if r[0].I%2 == 0 {
			t.Errorf("even row survived: %v", r)
		}
	}
	h.Truncate()
	if h.Len() != 0 {
		t.Error("truncate failed")
	}
}

func TestConcurrentInsertAndRead(t *testing.T) {
	h := NewHeap(1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 500; i++ {
				if err := h.Insert(row(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Snapshot()
				h.Len()
			}
		}()
	}
	wg.Wait()
	if h.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", h.Len())
	}
}
