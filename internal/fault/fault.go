// Package fault is the engine's deterministic fault-injection harness.
// Production code places named taps on its failure-prone edges — spill
// file writes and reads, memory grants, connection writes — and asks the
// active injector whether this call should fail. With no injector armed
// every tap is a single atomic pointer load returning nil, so the taps
// are free in production.
//
// An injector is configured from a spec string, either programmatically
// (tests call Set) or through the PERM_FAULT environment variable at
// process start (chaos CI):
//
//	PERM_FAULT="spill.write:0.02,mem.grow:0.1;seed=42"
//
// Each entry names a tap point and a failure rule: a fractional value is
// a per-call failure probability, an integer value N fails exactly the
// first N calls of that point (handy for "fail once, then recover"
// tests). Probabilistic decisions hash (seed, point, call ordinal) with
// a splitmix64 mix — no global RNG state — so a given spec produces the
// same failure sequence on every run, which is what lets the chaos suite
// assert exact outcomes.
package fault

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// Tap points wired into the engine. Tests may use additional ad-hoc
// names; a spec naming an unknown point simply never fires.
const (
	// PointSpillWrite fails spill temp-file creation and run writes
	// (simulating a full or failing disk).
	PointSpillWrite = "spill.write"
	// PointSpillRead fails spill run reads (simulating I/O errors on
	// the merge/probe path).
	PointSpillRead = "spill.read"
	// PointMemGrow denies operator memory grants on budgeted
	// reservations (forcing early spills).
	PointMemGrow = "mem.grow"
	// PointConnDrop drops a server connection mid-response-frame.
	PointConnDrop = "conn.drop"
	// PointWorkerPanic panics inside a parallel exchange worker.
	PointWorkerPanic = "worker.panic"
	// PointDispatch panics inside the server's request dispatch.
	PointDispatch = "server.dispatch"
)

// ErrInjected is the sentinel every injected failure wraps, so tests
// (and curious operators) can tell injected faults from real ones.
var ErrInjected = errors.New("injected fault")

// rule is one tap point's failure configuration.
type rule struct {
	prob  float64 // per-call failure probability (probabilistic form)
	count int64   // fail the first count calls (counting form); 0 = probabilistic
	calls atomic.Int64
}

// Injector decides, per tap point and call, whether to fail. Decisions
// are deterministic in (spec, call ordinal); the per-point call counters
// are the only mutable state.
type Injector struct {
	seed  uint64
	rules map[string]*rule
}

// active is the process-wide injector (nil = disabled).
var active atomic.Pointer[Injector]

func init() {
	if spec := os.Getenv("PERM_FAULT"); spec != "" {
		inj, err := New(spec)
		if err != nil {
			// A typo must not silently mean "no chaos": the whole point of
			// the env knob is CI asserting survival under injection.
			fmt.Fprintf(os.Stderr, "perm: ignoring invalid PERM_FAULT: %v\n", err)
			return
		}
		active.Store(inj)
	}
}

// New parses a spec ("point:rate,point:count;seed=N") into an injector.
func New(spec string) (*Injector, error) {
	inj := &Injector{seed: 1, rules: make(map[string]*rule)}
	body := spec
	if i := strings.IndexByte(spec, ';'); i >= 0 {
		body = spec[:i]
		for _, opt := range strings.Split(spec[i+1:], ";") {
			opt = strings.TrimSpace(opt)
			if opt == "" {
				continue
			}
			k, v, ok := strings.Cut(opt, "=")
			if !ok || strings.TrimSpace(k) != "seed" {
				return nil, fmt.Errorf("fault: unknown option %q", opt)
			}
			n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", v)
			}
			inj.seed = n
		}
	}
	for _, ent := range strings.Split(body, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		point, val, ok := strings.Cut(ent, ":")
		point = strings.TrimSpace(point)
		if !ok || point == "" {
			return nil, fmt.Errorf("fault: bad entry %q (want point:rate)", ent)
		}
		val = strings.TrimSpace(val)
		r := &rule{}
		if strings.ContainsAny(val, ".eE") {
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("fault: bad probability %q for %s", val, point)
			}
			r.prob = p
		} else {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: bad count %q for %s (want a positive integer or a probability)", val, point)
			}
			r.count = n
		}
		inj.rules[point] = r
	}
	if len(inj.rules) == 0 {
		return nil, errors.New("fault: empty spec")
	}
	return inj, nil
}

// Set installs inj as the process-wide injector (nil disarms) and
// returns a function restoring the previous one. Tests defer the
// restore so injection never leaks across test cases.
func Set(inj *Injector) (restore func()) {
	prev := active.Swap(inj)
	return func() { active.Store(prev) }
}

// Enabled reports whether any injector is armed. Subsystems whose taps
// sit slightly off the zero-cost path (e.g. per-frame connection drops)
// may check it first.
func Enabled() bool { return active.Load() != nil }

// splitmix64 is the standard 64-bit finalizing mix; good avalanche,
// no state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashPoint folds a point name into the seed.
func hashPoint(seed uint64, point string) uint64 {
	h := seed
	for i := 0; i < len(point); i++ {
		h = splitmix64(h ^ uint64(point[i]))
	}
	return h
}

// should decides whether the n-th call (1-based) of point fails.
func (inj *Injector) should(point string) bool {
	r, ok := inj.rules[point]
	if !ok {
		return false
	}
	n := r.calls.Add(1)
	if r.count > 0 {
		return n <= r.count
	}
	if r.prob <= 0 {
		return false
	}
	if r.prob >= 1 {
		return true
	}
	u := splitmix64(hashPoint(inj.seed, point) ^ uint64(n))
	return float64(u>>11)/float64(1<<53) < r.prob*(1-math.SmallestNonzeroFloat64)
}

// Should reports whether this call of point should fail. Each call
// advances the point's ordinal whether or not it fires.
func Should(point string) bool {
	inj := active.Load()
	return inj != nil && inj.should(point)
}

// Failure returns an injected error for this call of point, or nil. The
// returned error wraps ErrInjected.
func Failure(point string) error {
	if !Should(point) {
		return nil
	}
	return fmt.Errorf("%s: %w", point, ErrInjected)
}
