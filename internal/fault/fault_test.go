package fault

import (
	"errors"
	"testing"
)

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", ";seed=1", "spill.write", "spill.write:2.0", "spill.write:-1",
		"spill.write:0", "spill.write:abc", "spill.write:0.1;tilt=3", "spill.write:0.1;seed=x",
	} {
		if _, err := New(spec); err == nil {
			t.Errorf("New(%q) succeeded, want error", spec)
		}
	}
}

func TestCountingRuleFailsFirstN(t *testing.T) {
	inj, err := New("spill.write:2")
	if err != nil {
		t.Fatal(err)
	}
	defer Set(inj)()
	if err := Failure("spill.write"); !errors.Is(err, ErrInjected) {
		t.Fatalf("call 1: %v, want injected", err)
	}
	if err := Failure("spill.write"); !errors.Is(err, ErrInjected) {
		t.Fatalf("call 2: %v, want injected", err)
	}
	for i := 3; i < 10; i++ {
		if err := Failure("spill.write"); err != nil {
			t.Fatalf("call %d: %v, want nil", i, err)
		}
	}
	// Unconfigured points never fire.
	if Should("mem.grow") {
		t.Fatal("unconfigured point fired")
	}
}

func TestProbabilisticRuleIsDeterministic(t *testing.T) {
	run := func() []bool {
		inj, err := New("mem.grow:0.3;seed=42")
		if err != nil {
			t.Fatal(err)
		}
		defer Set(inj)()
		out := make([]bool, 200)
		for i := range out {
			out[i] = Should("mem.grow")
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs across identical specs", i)
		}
		if a[i] {
			fired++
		}
	}
	// 200 draws at p=0.3: the count must be in a broad sanity band.
	if fired < 20 || fired > 120 {
		t.Fatalf("fired %d/200 at p=0.3", fired)
	}
	// A different seed produces a different sequence.
	inj, _ := New("mem.grow:0.3;seed=43")
	defer Set(inj)()
	same := true
	for i := range a {
		if Should("mem.grow") != a[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed change did not change the failure sequence")
	}
}

func TestDisarmed(t *testing.T) {
	defer Set(nil)()
	if Enabled() || Should("spill.write") || Failure("spill.read") != nil {
		t.Fatal("disarmed injector fired")
	}
}

func TestSetRestores(t *testing.T) {
	inj, _ := New("spill.read:1")
	restore := Set(inj)
	if !Enabled() {
		t.Fatal("Set did not arm")
	}
	restore()
	if Should("spill.read") {
		t.Fatal("restore did not disarm")
	}
}
