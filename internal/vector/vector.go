// Package vector defines the columnar data representation of the Perm
// engine's vectorized execution path (package vexec): typed column
// vectors with null bitmaps, and fixed-capacity row batches with
// selection vectors. Converting a heap of boxed types.Value rows into
// this layout once per snapshot lets the batch operators run tight,
// monomorphic loops over unboxed Go slices.
package vector

import (
	"sync"

	"perm/internal/types"
)

// BatchSize is the number of rows processed per operator invocation. It
// is a multiple of 64 so batch windows cut null bitmaps at word
// boundaries.
const BatchSize = 1024

// Bitmap is a bit-per-row mask (1 = set). Bit i of word i/64 is row i.
type Bitmap []uint64

// NewBitmap returns a zeroed bitmap covering n rows.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Get reports whether bit i is set.
func (b Bitmap) Get(i int) bool {
	if len(b) == 0 {
		return false
	}
	return b[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// AnySet reports whether any of the first n bits is set.
func (b Bitmap) AnySet(n int) bool {
	full := n >> 6
	for w := 0; w < full; w++ {
		if b[w] != 0 {
			return true
		}
	}
	if rest := n & 63; rest > 0 && full < len(b) {
		if b[full]&(1<<uint(rest)-1) != 0 {
			return true
		}
	}
	return false
}

// Supported reports whether a column of kind k can be stored in a Vec.
// Interval columns and untyped-NULL columns stay on the row engine.
func Supported(k types.Kind) bool {
	switch k {
	case types.KindBool, types.KindInt, types.KindFloat, types.KindString, types.KindDate:
		return true
	default:
		return false
	}
}

// Vec is a typed column vector. Exactly one payload slice (selected by
// Kind) is populated; Nulls marks NULL rows (payload at null positions is
// unspecified). Date values live in I as days since the epoch, exactly
// like types.Value.
type Vec struct {
	Kind  types.Kind
	Nulls Bitmap
	I     []int64
	F     []float64
	B     []bool
	S     []string

	// pooled marks a batch-sized vector obtained from the shared buffer
	// pool (NewBatchVec); Free returns such vectors for reuse and is a
	// no-op on everything else.
	pooled bool
}

// NewVec returns a vector of kind k with capacity for n rows, all
// initially non-NULL zero values.
func NewVec(k types.Kind, n int) *Vec {
	v := &Vec{Kind: k, Nulls: NewBitmap(n)}
	switch k {
	case types.KindBool:
		v.B = make([]bool, n)
	case types.KindInt, types.KindDate:
		v.I = make([]int64, n)
	case types.KindFloat:
		v.F = make([]float64, n)
	case types.KindString:
		v.S = make([]string, n)
	}
	return v
}

// ---------------------------------------------------------------------------
// Batch-buffer pool
//
// The vectorized operators allocate one result vector per expression per
// batch. Those vectors are short-lived — a kernel result is consumed by
// its parent within the same Next call, and an operator's output batch is
// abandoned by its consumer before the next Next call — so recycling them
// through a sync.Pool removes the dominant per-batch allocations from the
// hot path. Vectors whose lifetime is not batch-bounded (snapshot
// columns, windows, accumulators, constant caches) are allocated with
// NewVec and are never pooled.

// poolClass maps a kind to its payload pool (int and date share I).
func poolClass(k types.Kind) int {
	switch k {
	case types.KindBool:
		return 0
	case types.KindInt, types.KindDate:
		return 1
	case types.KindFloat:
		return 2
	case types.KindString:
		return 3
	default:
		return -1
	}
}

var vecPools [4]sync.Pool

// NewBatchVec returns a vector of kind k with n rows (n ≤ BatchSize),
// all initially non-NULL, drawn from the shared buffer pool when
// possible. The caller owns the vector; pass it to Free when its batch
// is done, or leave it for the garbage collector (Free is optional).
func NewBatchVec(k types.Kind, n int) *Vec {
	cls := poolClass(k)
	if cls < 0 || n > BatchSize {
		return NewVec(k, n)
	}
	v, _ := vecPools[cls].Get().(*Vec)
	if v == nil {
		v = NewVec(k, BatchSize)
	}
	v.Kind = k // int and date share a pool
	for w := range v.Nulls {
		v.Nulls[w] = 0
	}
	switch cls {
	case 0:
		v.B = v.B[:n]
	case 1:
		v.I = v.I[:n]
	case 2:
		v.F = v.F[:n]
	case 3:
		v.S = v.S[:n]
	}
	v.pooled = true
	return v
}

// Free returns a pooled vector to the shared buffer pool. It is a no-op
// for vectors that did not come from NewBatchVec, so callers may pass any
// vector whose batch lifetime has ended without tracking provenance.
// String payloads are kept as-is (the next user overwrites its lanes);
// the retained string references die with normal pool churn.
func (v *Vec) Free() {
	if v == nil || !v.pooled {
		return
	}
	v.pooled = false
	cls := poolClass(v.Kind)
	switch cls {
	case 0:
		v.B = v.B[:cap(v.B)]
	case 1:
		v.I = v.I[:cap(v.I)]
	case 2:
		v.F = v.F[:cap(v.F)]
	case 3:
		v.S = v.S[:cap(v.S)]
	}
	vecPools[cls].Put(v)
}

// Unpool detaches the vector from the buffer pool (subsequent Free calls
// are no-ops). Operators call it when a pooled vector escapes into a
// structure that outlives its batch.
func (v *Vec) Unpool() { v.pooled = false }

// Len returns the number of rows in the vector.
func (v *Vec) Len() int {
	switch v.Kind {
	case types.KindBool:
		return len(v.B)
	case types.KindInt, types.KindDate:
		return len(v.I)
	case types.KindFloat:
		return len(v.F)
	case types.KindString:
		return len(v.S)
	default:
		return len(v.Nulls) * 64
	}
}

// IsNull reports whether row i is NULL.
func (v *Vec) IsNull(i int) bool { return v.Nulls.Get(i) }

// SetNull marks row i NULL.
func (v *Vec) SetNull(i int) { v.Nulls.Set(i) }

// Set stores a types.Value at row i. The value must be NULL or of the
// vector's kind (numeric values are coerced across int/float).
func (v *Vec) Set(i int, val types.Value) {
	if val.Null {
		v.Nulls.Set(i)
		return
	}
	v.Nulls.Clear(i)
	switch v.Kind {
	case types.KindBool:
		v.B[i] = val.B
	case types.KindInt, types.KindDate:
		if val.K == types.KindFloat {
			v.I[i] = int64(val.F)
		} else {
			v.I[i] = val.I
		}
	case types.KindFloat:
		v.F[i] = val.AsFloat()
	case types.KindString:
		v.S[i] = val.S
	}
}

// Value boxes row i back into a types.Value (the batch→row boundary).
func (v *Vec) Value(i int) types.Value {
	if v.Nulls.Get(i) {
		return types.NewNull(v.Kind)
	}
	switch v.Kind {
	case types.KindBool:
		return types.NewBool(v.B[i])
	case types.KindInt:
		return types.NewInt(v.I[i])
	case types.KindDate:
		return types.NewDate(v.I[i])
	case types.KindFloat:
		return types.NewFloat(v.F[i])
	case types.KindString:
		return types.NewString(v.S[i])
	default:
		return types.NewNull(v.Kind)
	}
}

// AppendFrom appends row i of src (which must have the same kind) to the
// end of the vector, growing it by one row. Use NewVec(kind, 0) to start
// an appendable vector.
func (v *Vec) AppendFrom(src *Vec, i int) {
	n := v.Len()
	switch v.Kind {
	case types.KindBool:
		v.B = append(v.B, src.B[i])
	case types.KindInt, types.KindDate:
		v.I = append(v.I, src.I[i])
	case types.KindFloat:
		v.F = append(v.F, src.F[i])
	case types.KindString:
		v.S = append(v.S, src.S[i])
	}
	if n>>6 >= len(v.Nulls) {
		v.Nulls = append(v.Nulls, 0)
	}
	if src.Nulls.Get(i) {
		v.Nulls.Set(n)
	}
}

// AppendLanes appends the src rows listed in lanes to the end of the
// vector (kinds must match). It is the bulk form of AppendFrom used by
// materializing operators (sort, set ops, hash-join build) to compact
// live batch lanes into growable accumulator columns: the payload
// extends in one monomorphic loop and the null bitmap is only walked
// when the source window actually carries NULLs.
func (v *Vec) AppendLanes(src *Vec, lanes []int) {
	n := v.Len()
	switch v.Kind {
	case types.KindBool:
		for _, i := range lanes {
			v.B = append(v.B, src.B[i])
		}
	case types.KindInt, types.KindDate:
		for _, i := range lanes {
			v.I = append(v.I, src.I[i])
		}
	case types.KindFloat:
		for _, i := range lanes {
			v.F = append(v.F, src.F[i])
		}
	case types.KindString:
		for _, i := range lanes {
			v.S = append(v.S, src.S[i])
		}
	}
	for need := (n + len(lanes) + 63) >> 6; len(v.Nulls) < need; {
		v.Nulls = append(v.Nulls, 0)
	}
	// AnySet masks bits beyond the window length, so shared trailing
	// words of a parent vector cannot defeat the null-free fast path.
	if src.Nulls.AnySet(src.Len()) {
		for o, i := range lanes {
			if src.Nulls.Get(i) {
				v.Nulls.Set(n + o)
			}
		}
	}
}

// CopyLanes copies the src rows listed in lanes into this vector
// starting at position at (which must leave room for len(lanes) rows).
// Kinds must match.
func (v *Vec) CopyLanes(at int, src *Vec, lanes []int) {
	switch v.Kind {
	case types.KindBool:
		for o, i := range lanes {
			v.B[at+o] = src.B[i]
		}
	case types.KindInt, types.KindDate:
		for o, i := range lanes {
			v.I[at+o] = src.I[i]
		}
	case types.KindFloat:
		for o, i := range lanes {
			v.F[at+o] = src.F[i]
		}
	case types.KindString:
		for o, i := range lanes {
			v.S[at+o] = src.S[i]
		}
	}
	for o, i := range lanes {
		if src.Nulls.Get(i) {
			v.Nulls.Set(at + o)
		}
	}
}

// Gather copies the src rows at the given indices into a fresh vector
// of kind k (src's kind, or a compatible one for all-NULL gathers). A
// negative index produces a NULL row (outer-join null extension).
func Gather(src *Vec, idx []int32, k types.Kind) *Vec {
	return gatherInto(NewVec(k, len(idx)), src, idx, k)
}

// GatherBatch is Gather drawing its output from the batch-buffer pool
// (len(idx) ≤ BatchSize); the caller owns the result and may Free it
// once the emitted batch has been abandoned by its consumer.
func GatherBatch(src *Vec, idx []int32, k types.Kind) *Vec {
	return gatherInto(NewBatchVec(k, len(idx)), src, idx, k)
}

func gatherInto(out *Vec, src *Vec, idx []int32, k types.Kind) *Vec {
	for o, i := range idx {
		if i < 0 || src.Nulls.Get(int(i)) {
			out.Nulls.Set(o)
			continue
		}
		switch k {
		case types.KindBool:
			out.B[o] = src.B[i]
		case types.KindInt, types.KindDate:
			out.I[o] = src.I[i]
		case types.KindFloat:
			out.F[o] = src.F[i]
		case types.KindString:
			out.S[o] = src.S[i]
		}
	}
	return out
}

// Window returns a view of rows [lo, hi) sharing the vector's backing
// arrays. lo must be a multiple of 64 so the null bitmap slices cleanly;
// batch windows at BatchSize boundaries always satisfy this.
func (v *Vec) Window(lo, hi int) *Vec {
	w := &Vec{}
	v.WindowInto(lo, hi, w)
	return w
}

// WindowInto points w (an existing, reusable Vec struct) at rows
// [lo, hi) of v, sharing the backing arrays. Scans use it to avoid one
// allocation per column per batch.
func (v *Vec) WindowInto(lo, hi int, w *Vec) {
	if lo&63 != 0 {
		panic("vector: window start must be a multiple of 64")
	}
	*w = Vec{Kind: v.Kind}
	wordLo := lo >> 6
	wordHi := (hi + 63) >> 6
	if wordHi > len(v.Nulls) {
		wordHi = len(v.Nulls)
	}
	if wordLo < wordHi {
		w.Nulls = v.Nulls[wordLo:wordHi]
	}
	switch v.Kind {
	case types.KindBool:
		w.B = v.B[lo:hi]
	case types.KindInt, types.KindDate:
		w.I = v.I[lo:hi]
	case types.KindFloat:
		w.F = v.F[lo:hi]
	case types.KindString:
		w.S = v.S[lo:hi]
	}
}

// FromRows pivots rows into column vectors of the given kinds. It
// returns ok=false when some non-NULL value does not fit its declared
// column kind (the caller then falls back to row execution).
func FromRows(rows []types.Row, kinds []types.Kind) (cols []*Vec, ok bool) {
	cols = make([]*Vec, len(kinds))
	for j, k := range kinds {
		if !Supported(k) {
			return nil, false
		}
		cols[j] = NewVec(k, len(rows))
	}
	for i, r := range rows {
		if len(r) != len(kinds) {
			return nil, false
		}
		for j, val := range r {
			if !val.Null && !kindFits(val.K, kinds[j]) {
				return nil, false
			}
			cols[j].Set(i, val)
		}
	}
	return cols, true
}

// kindFits reports whether a value of kind k can be stored losslessly in
// a column declared as kind col.
func kindFits(k, col types.Kind) bool {
	if k == col {
		return true
	}
	return k == types.KindInt && col == types.KindFloat
}

// Batch is a horizontal slice of rows in columnar form. Sel, when
// non-nil, lists the live row positions in increasing order (a selection
// vector); nil means all N rows are live.
type Batch struct {
	N    int
	Cols []*Vec
	Sel  []int
}

// Live returns the number of live rows.
func (b *Batch) Live() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Row boxes physical row i into a types.Row.
func (b *Batch) Row(i int) types.Row {
	r := make(types.Row, len(b.Cols))
	for j, c := range b.Cols {
		r[j] = c.Value(i)
	}
	return r
}
