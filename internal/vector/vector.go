// Package vector defines the columnar data representation of the Perm
// engine's vectorized execution path (package vexec): typed column
// vectors with null bitmaps, and fixed-capacity row batches with
// selection vectors. Converting a heap of boxed types.Value rows into
// this layout once per snapshot lets the batch operators run tight,
// monomorphic loops over unboxed Go slices.
package vector

import (
	"perm/internal/types"
)

// BatchSize is the number of rows processed per operator invocation. It
// is a multiple of 64 so batch windows cut null bitmaps at word
// boundaries.
const BatchSize = 1024

// Bitmap is a bit-per-row mask (1 = set). Bit i of word i/64 is row i.
type Bitmap []uint64

// NewBitmap returns a zeroed bitmap covering n rows.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Get reports whether bit i is set.
func (b Bitmap) Get(i int) bool {
	if len(b) == 0 {
		return false
	}
	return b[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// AnySet reports whether any of the first n bits is set.
func (b Bitmap) AnySet(n int) bool {
	full := n >> 6
	for w := 0; w < full; w++ {
		if b[w] != 0 {
			return true
		}
	}
	if rest := n & 63; rest > 0 && full < len(b) {
		if b[full]&(1<<uint(rest)-1) != 0 {
			return true
		}
	}
	return false
}

// Supported reports whether a column of kind k can be stored in a Vec.
// Interval columns and untyped-NULL columns stay on the row engine.
func Supported(k types.Kind) bool {
	switch k {
	case types.KindBool, types.KindInt, types.KindFloat, types.KindString, types.KindDate:
		return true
	default:
		return false
	}
}

// Vec is a typed column vector. Exactly one payload slice (selected by
// Kind) is populated; Nulls marks NULL rows (payload at null positions is
// unspecified). Date values live in I as days since the epoch, exactly
// like types.Value.
type Vec struct {
	Kind  types.Kind
	Nulls Bitmap
	I     []int64
	F     []float64
	B     []bool
	S     []string
}

// NewVec returns a vector of kind k with capacity for n rows, all
// initially non-NULL zero values.
func NewVec(k types.Kind, n int) *Vec {
	v := &Vec{Kind: k, Nulls: NewBitmap(n)}
	switch k {
	case types.KindBool:
		v.B = make([]bool, n)
	case types.KindInt, types.KindDate:
		v.I = make([]int64, n)
	case types.KindFloat:
		v.F = make([]float64, n)
	case types.KindString:
		v.S = make([]string, n)
	}
	return v
}

// Len returns the number of rows in the vector.
func (v *Vec) Len() int {
	switch v.Kind {
	case types.KindBool:
		return len(v.B)
	case types.KindInt, types.KindDate:
		return len(v.I)
	case types.KindFloat:
		return len(v.F)
	case types.KindString:
		return len(v.S)
	default:
		return len(v.Nulls) * 64
	}
}

// IsNull reports whether row i is NULL.
func (v *Vec) IsNull(i int) bool { return v.Nulls.Get(i) }

// SetNull marks row i NULL.
func (v *Vec) SetNull(i int) { v.Nulls.Set(i) }

// Set stores a types.Value at row i. The value must be NULL or of the
// vector's kind (numeric values are coerced across int/float).
func (v *Vec) Set(i int, val types.Value) {
	if val.Null {
		v.Nulls.Set(i)
		return
	}
	v.Nulls.Clear(i)
	switch v.Kind {
	case types.KindBool:
		v.B[i] = val.B
	case types.KindInt, types.KindDate:
		if val.K == types.KindFloat {
			v.I[i] = int64(val.F)
		} else {
			v.I[i] = val.I
		}
	case types.KindFloat:
		v.F[i] = val.AsFloat()
	case types.KindString:
		v.S[i] = val.S
	}
}

// Value boxes row i back into a types.Value (the batch→row boundary).
func (v *Vec) Value(i int) types.Value {
	if v.Nulls.Get(i) {
		return types.NewNull(v.Kind)
	}
	switch v.Kind {
	case types.KindBool:
		return types.NewBool(v.B[i])
	case types.KindInt:
		return types.NewInt(v.I[i])
	case types.KindDate:
		return types.NewDate(v.I[i])
	case types.KindFloat:
		return types.NewFloat(v.F[i])
	case types.KindString:
		return types.NewString(v.S[i])
	default:
		return types.NewNull(v.Kind)
	}
}

// AppendFrom appends row i of src (which must have the same kind) to the
// end of the vector, growing it by one row. Use NewVec(kind, 0) to start
// an appendable vector.
func (v *Vec) AppendFrom(src *Vec, i int) {
	n := v.Len()
	switch v.Kind {
	case types.KindBool:
		v.B = append(v.B, src.B[i])
	case types.KindInt, types.KindDate:
		v.I = append(v.I, src.I[i])
	case types.KindFloat:
		v.F = append(v.F, src.F[i])
	case types.KindString:
		v.S = append(v.S, src.S[i])
	}
	if n>>6 >= len(v.Nulls) {
		v.Nulls = append(v.Nulls, 0)
	}
	if src.Nulls.Get(i) {
		v.Nulls.Set(n)
	}
}

// CopyLanes copies the src rows listed in lanes into this vector
// starting at position at (which must leave room for len(lanes) rows).
// Kinds must match.
func (v *Vec) CopyLanes(at int, src *Vec, lanes []int) {
	switch v.Kind {
	case types.KindBool:
		for o, i := range lanes {
			v.B[at+o] = src.B[i]
		}
	case types.KindInt, types.KindDate:
		for o, i := range lanes {
			v.I[at+o] = src.I[i]
		}
	case types.KindFloat:
		for o, i := range lanes {
			v.F[at+o] = src.F[i]
		}
	case types.KindString:
		for o, i := range lanes {
			v.S[at+o] = src.S[i]
		}
	}
	for o, i := range lanes {
		if src.Nulls.Get(i) {
			v.Nulls.Set(at + o)
		}
	}
}

// Gather copies the src rows at the given indices into a fresh vector
// of kind k (src's kind, or a compatible one for all-NULL gathers). A
// negative index produces a NULL row (outer-join null extension).
func Gather(src *Vec, idx []int32, k types.Kind) *Vec {
	out := NewVec(k, len(idx))
	for o, i := range idx {
		if i < 0 || src.Nulls.Get(int(i)) {
			out.Nulls.Set(o)
			continue
		}
		switch k {
		case types.KindBool:
			out.B[o] = src.B[i]
		case types.KindInt, types.KindDate:
			out.I[o] = src.I[i]
		case types.KindFloat:
			out.F[o] = src.F[i]
		case types.KindString:
			out.S[o] = src.S[i]
		}
	}
	return out
}

// Window returns a view of rows [lo, hi) sharing the vector's backing
// arrays. lo must be a multiple of 64 so the null bitmap slices cleanly;
// batch windows at BatchSize boundaries always satisfy this.
func (v *Vec) Window(lo, hi int) *Vec {
	if lo&63 != 0 {
		panic("vector: window start must be a multiple of 64")
	}
	w := &Vec{Kind: v.Kind}
	wordLo := lo >> 6
	wordHi := (hi + 63) >> 6
	if wordHi > len(v.Nulls) {
		wordHi = len(v.Nulls)
	}
	if wordLo < wordHi {
		w.Nulls = v.Nulls[wordLo:wordHi]
	}
	switch v.Kind {
	case types.KindBool:
		w.B = v.B[lo:hi]
	case types.KindInt, types.KindDate:
		w.I = v.I[lo:hi]
	case types.KindFloat:
		w.F = v.F[lo:hi]
	case types.KindString:
		w.S = v.S[lo:hi]
	}
	return w
}

// FromRows pivots rows into column vectors of the given kinds. It
// returns ok=false when some non-NULL value does not fit its declared
// column kind (the caller then falls back to row execution).
func FromRows(rows []types.Row, kinds []types.Kind) (cols []*Vec, ok bool) {
	cols = make([]*Vec, len(kinds))
	for j, k := range kinds {
		if !Supported(k) {
			return nil, false
		}
		cols[j] = NewVec(k, len(rows))
	}
	for i, r := range rows {
		if len(r) != len(kinds) {
			return nil, false
		}
		for j, val := range r {
			if !val.Null && !kindFits(val.K, kinds[j]) {
				return nil, false
			}
			cols[j].Set(i, val)
		}
	}
	return cols, true
}

// kindFits reports whether a value of kind k can be stored losslessly in
// a column declared as kind col.
func kindFits(k, col types.Kind) bool {
	if k == col {
		return true
	}
	return k == types.KindInt && col == types.KindFloat
}

// Batch is a horizontal slice of rows in columnar form. Sel, when
// non-nil, lists the live row positions in increasing order (a selection
// vector); nil means all N rows are live.
type Batch struct {
	N    int
	Cols []*Vec
	Sel  []int
}

// Live returns the number of live rows.
func (b *Batch) Live() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Row boxes physical row i into a types.Row.
func (b *Batch) Row(i int) types.Row {
	r := make(types.Row, len(b.Cols))
	for j, c := range b.Cols {
		r[j] = c.Value(i)
	}
	return r
}
