package vector

import (
	"fmt"
	"testing"

	"perm/internal/types"
)

func TestBitmapSemantics(t *testing.T) {
	b := NewBitmap(130)
	if b.AnySet(130) {
		t.Fatal("fresh bitmap must be clear")
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(65) || b.Get(128) {
		t.Fatal("unexpected bits set")
	}
	if !b.AnySet(130) || !b.AnySet(1) {
		t.Fatal("AnySet must see set bits")
	}
	b.Clear(0)
	b.Clear(63)
	if b.AnySet(63) {
		t.Fatal("AnySet(63) must ignore bits >= 63")
	}
	b.Clear(64)
	b.Clear(129)
	if b.AnySet(130) {
		t.Fatal("all bits cleared")
	}
}

func TestVecNullSemantics(t *testing.T) {
	v := NewVec(types.KindInt, 3)
	v.Set(0, types.NewInt(7))
	v.Set(1, types.NewNull(types.KindInt))
	v.Set(2, types.NewInt(-2))
	if v.IsNull(0) || !v.IsNull(1) || v.IsNull(2) {
		t.Fatalf("null bitmap wrong: %v %v %v", v.IsNull(0), v.IsNull(1), v.IsNull(2))
	}
	if got := v.Value(1); !got.Null || got.K != types.KindInt {
		t.Fatalf("Value(1) = %+v, want typed NULL", got)
	}
	// Overwriting a NULL lane with a value must clear the bit.
	v.Set(1, types.NewInt(5))
	if v.IsNull(1) || v.Value(1).I != 5 {
		t.Fatalf("Set must clear the null bit, got %+v", v.Value(1))
	}
	// Numeric coercion: int value into a float column.
	f := NewVec(types.KindFloat, 1)
	f.Set(0, types.NewInt(3))
	if f.Value(0).F != 3.0 {
		t.Fatalf("int into float column = %+v", f.Value(0))
	}
}

func TestFromRowsRoundTrip(t *testing.T) {
	kinds := []types.Kind{types.KindInt, types.KindString, types.KindBool, types.KindFloat, types.KindDate}
	rows := []types.Row{
		{types.NewInt(1), types.NewString("a"), types.NewBool(true), types.NewFloat(1.5), types.NewDate(100)},
		{types.NewNull(types.KindInt), types.NewNull(types.KindString), types.NewNull(types.KindBool),
			types.NewNull(types.KindFloat), types.NewNull(types.KindDate)},
		{types.NewInt(-3), types.NewString(""), types.NewBool(false), types.NewFloat(-0.25), types.NewDate(-1)},
	}
	cols, ok := FromRows(rows, kinds)
	if !ok {
		t.Fatal("FromRows failed")
	}
	for i, r := range rows {
		for j := range kinds {
			got := cols[j].Value(i)
			if types.Distinct(got, r[j]) {
				t.Fatalf("row %d col %d: got %v want %v", i, j, got, r[j])
			}
		}
	}
	// A value that does not fit its declared kind must reject the pivot.
	bad := []types.Row{{types.NewString("x"), types.NewString("y"), types.NewBool(true), types.NewFloat(0), types.NewDate(0)}}
	if _, ok := FromRows(bad, kinds); ok {
		t.Fatal("FromRows must reject a string in an int column")
	}
	// Unsupported column kinds reject the pivot.
	if _, ok := FromRows(nil, []types.Kind{types.KindInterval}); ok {
		t.Fatal("FromRows must reject interval columns")
	}
}

func TestBatchSelectionApplication(t *testing.T) {
	v := NewVec(types.KindInt, 5)
	for i := 0; i < 5; i++ {
		v.Set(i, types.NewInt(int64(i*10)))
	}
	b := &Batch{N: 5, Cols: []*Vec{v}}
	if b.Live() != 5 {
		t.Fatalf("Live() = %d, want 5 with nil selection", b.Live())
	}
	b.Sel = []int{1, 4}
	if b.Live() != 2 {
		t.Fatalf("Live() = %d, want 2", b.Live())
	}
	// Physical positions remain addressable regardless of the selection.
	if got := b.Row(4); got[0].I != 40 {
		t.Fatalf("Row(4) = %v", got)
	}
	got := make([]int64, 0, 2)
	for _, lane := range b.Sel {
		got = append(got, b.Row(lane)[0].I)
	}
	if fmt.Sprint(got) != "[10 40]" {
		t.Fatalf("selected rows = %v", got)
	}
}

// TestBatchBoundaries covers the batch boundary conditions: an empty
// vector, exactly BatchSize rows, and a trailing partial batch.
func TestBatchBoundaries(t *testing.T) {
	window := func(n int) [][2]int {
		var spans [][2]int
		for lo := 0; lo < n; lo += BatchSize {
			hi := lo + BatchSize
			if hi > n {
				hi = n
			}
			spans = append(spans, [2]int{lo, hi})
		}
		return spans
	}
	if got := window(0); got != nil {
		t.Fatalf("empty input must produce no batches, got %v", got)
	}
	for _, n := range []int{BatchSize, BatchSize + 1, 2*BatchSize + 7} {
		v := NewVec(types.KindInt, n)
		for i := 0; i < n; i++ {
			v.Set(i, types.NewInt(int64(i)))
			if i%5 == 0 {
				v.SetNull(i)
			}
		}
		total := 0
		for _, span := range window(n) {
			w := v.Window(span[0], span[1])
			if w.Len() != span[1]-span[0] {
				t.Fatalf("window %v length %d", span, w.Len())
			}
			for i := 0; i < w.Len(); i++ {
				phys := span[0] + i
				if w.IsNull(i) != (phys%5 == 0) {
					t.Fatalf("n=%d window %v lane %d: null bit mismatch", n, span, i)
				}
				if !w.IsNull(i) && w.Value(i).I != int64(phys) {
					t.Fatalf("n=%d window %v lane %d: got %v", n, span, i, w.Value(i))
				}
			}
			total += w.Len()
		}
		if total != n {
			t.Fatalf("windows covered %d of %d rows", total, n)
		}
	}
}

func TestAppendFromAndCopyLanes(t *testing.T) {
	src := NewVec(types.KindString, 4)
	src.Set(0, types.NewString("a"))
	src.SetNull(1)
	src.Set(2, types.NewString("c"))
	src.Set(3, types.NewString("d"))

	app := NewVec(types.KindString, 0)
	for _, i := range []int{3, 1, 0} {
		app.AppendFrom(src, i)
	}
	if app.Len() != 3 || app.Value(0).S != "d" || !app.IsNull(1) || app.Value(2).S != "a" {
		t.Fatalf("AppendFrom result wrong: len=%d", app.Len())
	}

	dst := NewVec(types.KindString, 3)
	dst.CopyLanes(1, src, []int{1, 2})
	if !dst.IsNull(1) || dst.Value(2).S != "c" {
		t.Fatal("CopyLanes result wrong")
	}
}
