// Package trio reimplements the provenance mechanism of the Trio system
// (Agrawal et al., "An introduction to ULDBs and the Trio system"), the
// baseline of the paper's §V-C comparison.
//
// Trio computes lineage eagerly: when a derived table is created, the
// system records, per result tuple, which input tuples contributed, in
// separate lineage relations. Querying provenance then traces tuples
// iteratively through the lineage relations — one lookup per result tuple
// per transformation step — rather than as a single set-oriented query.
// This per-tuple tracing is the behaviour the paper measures against
// Perm's lazy, single-query rewriting (Fig. 15).
//
// Like the original Trio, the baseline supports only a subset of SQL:
// select-project-join queries and single set operations over base tables
// whose first column is a unique key (Trio's tuple identifiers). It
// supports neither aggregation nor subqueries, as noted in the paper's
// related-work section.
package trio

import (
	"fmt"
	"strings"

	"perm"
)

// System is a Trio-style eager provenance layer over a Perm database.
type System struct {
	db *perm.Database
	// derived tracks the lineage relations of each derived table.
	derived map[string]*derivedTable
	// keyCols caches the first (key) column name per base relation.
	keyCols map[string]string
	seq     int
}

type derivedTable struct {
	name    string
	lineage string   // name of the lineage relation
	sources []string // source base relations, in provenance-column order
	rows    int
}

// New wraps a Perm database with a Trio-style provenance layer.
func New(db *perm.Database) *System {
	return &System{
		db:      db,
		derived: make(map[string]*derivedTable),
		keyCols: make(map[string]string),
	}
}

// Derive executes a query eagerly and stores (a) the result as base table
// name, extended with a tid tuple identifier, and (b) a lineage relation
// name__lineage(tid, source relation, source key) — Trio's
// at-derivation-time provenance computation.
//
// The query must be an SPJ query or single set operation over base tables
// whose first column is the tuple key; aggregation and sublinks are
// rejected, matching Trio's documented limitations.
func (s *System) Derive(name, query string) error {
	if err := checkSupported(query); err != nil {
		return err
	}
	// Run the provenance-computing form once (standing in for Trio's
	// instrumented operators: the lineage content is identical).
	provQuery, err := injectProvenance(query)
	if err != nil {
		return err
	}
	res, err := s.db.Query(provQuery)
	if err != nil {
		return fmt.Errorf("trio: derivation failed: %w", err)
	}

	// Identify the original and provenance columns.
	origWidth := 0
	for i, isProv := range res.ProvColumns {
		if !isProv {
			origWidth = i + 1
		}
	}
	// Group provenance columns by source relation. Rule R1 duplicates a
	// base relation's columns in order, so a relation's group starts at
	// the provenance copy of its first (key) column.
	type provGroup struct {
		rel    string
		keyCol int
	}
	var groups []provGroup
	tables := s.db.Tables()
	for i := origWidth; i < len(res.Columns); i++ {
		colName := res.Columns[i]
		if i >= len(res.ProvColumns) || !res.ProvColumns[i] {
			continue
		}
		rel := sourceRelOf(colName, tables)
		keyCol, err := s.keyColumn(rel)
		if err != nil {
			return err
		}
		rest := strings.TrimPrefix(colName, "prov_")
		if strings.HasSuffix(rest, "_"+keyCol) {
			groups = append(groups, provGroup{rel: rel, keyCol: i})
		}
	}

	// Store the result with tids. Distinct original tuples share a tid;
	// duplicated provenance rows become lineage entries.
	createCols := []string{"tid int"}
	for i := 0; i < origWidth; i++ {
		createCols = append(createCols, fmt.Sprintf("%s %s", res.Columns[i], "text"))
	}
	if _, err := s.db.Exec(fmt.Sprintf("CREATE TABLE %s (%s)", name, strings.Join(createCols, ", "))); err != nil {
		return err
	}
	lineageName := name + "__lineage"
	if _, err := s.db.Exec(fmt.Sprintf(
		"CREATE TABLE %s (tid int, srcrel text, srckey int)", lineageName)); err != nil {
		return err
	}

	tids := make(map[string]int64)
	var inserts strings.Builder
	var lineageInserts strings.Builder
	nextTid := int64(0)
	for _, row := range res.Rows {
		fp := ""
		for i := 0; i < origWidth; i++ {
			fp += row[i].String() + "|"
		}
		tid, seen := tids[fp]
		if !seen {
			tid = nextTid
			nextTid++
			tids[fp] = tid
			vals := []string{fmt.Sprintf("%d", tid)}
			for i := 0; i < origWidth; i++ {
				vals = append(vals, sqlString(row[i].String()))
			}
			fmt.Fprintf(&inserts, "INSERT INTO %s VALUES (%s);\n", name, strings.Join(vals, ", "))
		}
		for _, g := range groups {
			if g.keyCol >= len(row) || row[g.keyCol].IsNull() {
				continue
			}
			fmt.Fprintf(&lineageInserts, "INSERT INTO %s VALUES (%d, %s, %d);\n",
				lineageName, tid, sqlString(g.rel), row[g.keyCol].Int())
		}
	}
	if inserts.Len() > 0 {
		if _, err := s.db.Exec(inserts.String()); err != nil {
			return err
		}
	}
	if lineageInserts.Len() > 0 {
		if _, err := s.db.Exec(lineageInserts.String()); err != nil {
			return err
		}
	}
	sources := make([]string, 0, len(groups))
	for _, g := range groups {
		sources = append(sources, g.rel)
	}
	s.derived[name] = &derivedTable{
		name: name, lineage: lineageName, sources: sources, rows: int(nextTid),
	}
	return nil
}

// Trace returns the source tuples contributing to result tuple tid of a
// derived table, per source relation — one lineage lookup plus one source
// fetch per contributing tuple, Trio's iterative tracing strategy.
func (s *System) Trace(name string, tid int64) (map[string][][]perm.Value, error) {
	d, ok := s.derived[name]
	if !ok {
		return nil, fmt.Errorf("trio: %q is not a derived table", name)
	}
	lres, err := s.db.Query(fmt.Sprintf(
		"SELECT srcrel, srckey FROM %s WHERE tid = %d", d.lineage, tid))
	if err != nil {
		return nil, err
	}
	out := make(map[string][][]perm.Value)
	for _, lrow := range lres.Rows {
		rel := lrow[0].String()
		key := lrow[1].Int()
		keyCol, err := s.keyColumn(rel)
		if err != nil {
			return nil, err
		}
		srcRes, err := s.db.Query(fmt.Sprintf(
			"SELECT * FROM %s WHERE %s = %d", rel, keyCol, key))
		if err != nil {
			return nil, err
		}
		out[rel] = append(out[rel], srcRes.Rows...)
	}
	return out, nil
}

// TraceAll traces the provenance of every tuple of a derived table and
// returns the total number of source tuples fetched. This is the
// "querying the stored provenance" measurement of Fig. 15.
func (s *System) TraceAll(name string) (int, error) {
	d, ok := s.derived[name]
	if !ok {
		return 0, fmt.Errorf("trio: %q is not a derived table", name)
	}
	total := 0
	for tid := int64(0); tid < int64(d.rows); tid++ {
		m, err := s.Trace(name, tid)
		if err != nil {
			return total, err
		}
		for _, rows := range m {
			total += len(rows)
		}
	}
	return total, nil
}

// Drop removes a derived table and its lineage relation.
func (s *System) Drop(name string) error {
	d, ok := s.derived[name]
	if !ok {
		return fmt.Errorf("trio: %q is not a derived table", name)
	}
	if _, err := s.db.Exec("DROP TABLE " + d.name); err != nil {
		return err
	}
	if _, err := s.db.Exec("DROP TABLE " + d.lineage); err != nil {
		return err
	}
	delete(s.derived, name)
	return nil
}

// FreshName returns a unique derived-table name.
func (s *System) FreshName() string {
	s.seq++
	return fmt.Sprintf("trio_derived_%d", s.seq)
}

// DerivedRowCount returns the number of tuples in a derived table.
func (s *System) DerivedRowCount(name string) (int, error) {
	d, ok := s.derived[name]
	if !ok {
		return 0, fmt.Errorf("trio: %q is not a derived table", name)
	}
	return d.rows, nil
}

// keyColumn returns the first column name of a base relation (Trio's
// tuple identifier), cached per relation.
func (s *System) keyColumn(rel string) (string, error) {
	if col, ok := s.keyCols[rel]; ok {
		return col, nil
	}
	res, err := s.db.Query("SELECT * FROM " + rel + " LIMIT 1")
	if err != nil {
		return "", err
	}
	if len(res.Columns) == 0 {
		return "", fmt.Errorf("trio: relation %q has no columns", rel)
	}
	s.keyCols[rel] = res.Columns[0]
	return res.Columns[0], nil
}

// checkSupported rejects query shapes outside Trio's documented subset.
func checkSupported(query string) error {
	upper := strings.ToUpper(query)
	for _, kw := range []string{"GROUP BY", "HAVING", "SUM(", "COUNT(", "AVG(", "MIN(", "MAX("} {
		if strings.Contains(upper, kw) {
			return fmt.Errorf("trio: aggregation is not supported (as in the original system)")
		}
	}
	if strings.Count(upper, "SELECT") > 1 && !strings.Contains(upper, "UNION") &&
		!strings.Contains(upper, "INTERSECT") && !strings.Contains(upper, "EXCEPT") {
		return fmt.Errorf("trio: subqueries are not supported (as in the original system)")
	}
	setOps := strings.Count(upper, "UNION") + strings.Count(upper, "INTERSECT") + strings.Count(upper, "EXCEPT")
	if setOps > 1 {
		return fmt.Errorf("trio: only single set operations are supported (as in the original system)")
	}
	return nil
}

// injectProvenance adds the PROVENANCE keyword to every SELECT of the
// query (for set operations, every branch must be rewritten).
func injectProvenance(query string) (string, error) {
	var sb strings.Builder
	upper := strings.ToUpper(query)
	last := 0
	for i := 0; i+6 <= len(query); i++ {
		if upper[i:i+6] == "SELECT" && (i == 0 || !isWordByte(upper[i-1])) &&
			(i+6 == len(query) || !isWordByte(upper[i+6])) {
			sb.WriteString(query[last : i+6])
			sb.WriteString(" PROVENANCE")
			last = i + 6
		}
	}
	sb.WriteString(query[last:])
	return sb.String(), nil
}

func isWordByte(b byte) bool {
	return b == '_' || (b >= 'A' && b <= 'Z') || (b >= 'a' && b <= 'z') || (b >= '0' && b <= '9')
}

func sqlString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// sourceRelOf extracts the base relation name from a provenance attribute
// name (prov_<rel>[_<n>]_<attr>), matching against the known tables.
func sourceRelOf(colName string, tables []string) string {
	rest := strings.TrimPrefix(colName, "prov_")
	best := ""
	for _, t := range tables {
		if strings.HasPrefix(rest, t+"_") && len(t) > len(best) {
			best = t
		}
	}
	if best == "" {
		// Fall back to the first underscore-delimited token.
		if i := strings.Index(rest, "_"); i > 0 {
			return rest[:i]
		}
		return rest
	}
	return best
}
