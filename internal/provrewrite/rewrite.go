// Package provrewrite implements the Perm provenance rewriter — the core
// contribution of the paper (§III-C, §IV-B..E). It transforms an analyzed
// query node q into a query node q+ that computes the same result extended
// with provenance attributes, propagating influence-contribution (Why-)
// provenance purely inside the relational model.
//
// The rewriter implements the rules of Fig. 3 on PostgreSQL-style query
// trees, distinguishing the three node cases of Fig. 6:
//
//	SPJ   — rewrite the range-table entries and append their provenance
//	        attributes to the target list (rules R1-R4 folded, §IV-B1).
//	ASPJ  — duplicate the node, strip aggregation from the duplicate,
//	        rewrite it, and join it back to the original aggregation on the
//	        grouping expressions (rule R5, §IV-B2).
//	SetOp — keep the original set operation and join it with the rewritten
//	        duplicates of its two top-level branches (rules R6-R9, variant
//	        Fig. 6(3b); the flattened 3a variant is available as an option).
//
// Uncorrelated sublinks are rewritten per §IV-E: the rewritten sublink
// query joins the outer query with a condition determined by the sublink's
// boolean context (conjunctive, negated, or disjunctive).
package provrewrite

import (
	"fmt"
	"strconv"

	"perm/internal/algebra"
	"perm/internal/types"
)

// Options tune rewrite strategy choices called out in the paper.
type Options struct {
	// FlattenSetOps selects the Fig. 6(3a) variant that joins the original
	// set-operation query with every rewritten branch directly, avoiding
	// the intermediate results of the recursive 3b variant. The paper's
	// prototype used 3b ("Note that the current version of Perm uses the
	// simpler version of set operation rewriting"); 3a is the improvement
	// §V-B1 predicts a speedup for.
	FlattenSetOps bool
}

// Rewriter rewrites query trees. A Rewriter carries the provenance
// attribute naming state (per-relation reference counters) for one
// top-level query, so provenance attribute names are unique "in the scope
// of q" (§III-B, footnote 2).
type Rewriter struct {
	opts     Options
	relCount map[string]int
}

// New returns a rewriter with the given options.
func New(opts Options) *Rewriter {
	return &Rewriter{opts: opts, relCount: make(map[string]int)}
}

// RewriteTree walks the query tree and rewrites every node marked with
// SELECT PROVENANCE (traverseQueryTree of Fig. 7). It returns the possibly
// replaced root.
func RewriteTree(q *algebra.Query, opts Options) (*algebra.Query, error) {
	if q == nil {
		return nil, nil
	}
	if q.ProvenanceRequested {
		r := New(opts)
		return r.RewriteNode(q)
	}
	// Recurse into range-table subqueries and sublinks.
	for _, rte := range q.RangeTable {
		if rte.Subquery == nil {
			continue
		}
		sub, err := RewriteTree(rte.Subquery, opts)
		if err != nil {
			return nil, err
		}
		if sub != rte.Subquery {
			rte.Subquery = sub
			rte.Cols = sub.Schema()
			if rte.ProvCols == nil {
				rte.ProvCols = sub.ProvCols
			}
		}
	}
	var walkErr error
	q.VisitExprs(func(e algebra.Expr) {
		algebra.WalkExpr(e, func(x algebra.Expr) {
			if walkErr != nil {
				return
			}
			if link, ok := x.(*algebra.SubLink); ok && link.Query != nil {
				sub, err := RewriteTree(link.Query, opts)
				if err != nil {
					walkErr = err
					return
				}
				link.Query = sub
			}
		})
	})
	if walkErr != nil {
		return nil, walkErr
	}
	return q, nil
}

// RewriteNode computes q+ for a single query node (rewriteQueryNode of
// Fig. 7), dispatching on the node's shape. The returned node's ProvCols
// is the P-list of the rewrite rules.
func (r *Rewriter) RewriteNode(q *algebra.Query) (*algebra.Query, error) {
	q.ProvenanceRequested = false
	switch {
	case q.Limit != nil || q.Offset != nil:
		return r.rewriteLimit(q)
	case q.IsSetOp():
		return r.rewriteSetOp(q)
	case q.HasAggs:
		return r.rewriteASPJ(q)
	default:
		return r.rewriteSPJ(q)
	}
}

// provName builds a provenance attribute name per §IV-A1: the prefix
// "prov_", the base relation name (numbered on repeated references), and
// the attribute name, joined by underscores.
func (r *Rewriter) provName(rel, attr string) string {
	return "prov_" + rel + "_" + attr
}

// relInstance returns the (possibly numbered) relation-name component for
// a fresh reference to rel.
func (r *Rewriter) relInstance(rel string) string {
	r.relCount[rel]++
	if n := r.relCount[rel]; n > 1 {
		return rel + "_" + strconv.Itoa(n)
	}
	return rel
}

// ---------------------------------------------------------------------------
// SPJ

// rewriteSPJ implements case 1 of §IV-B: q+ is q with every range-table
// entry rewritten and all provenance attributes appended to the target
// list. Where-clause sublinks are attached per §IV-E before the provenance
// targets are appended.
func (r *Rewriter) rewriteSPJ(q *algebra.Query) (*algebra.Query, error) {
	for _, rte := range q.RangeTable {
		if err := r.rewriteRTE(rte); err != nil {
			return nil, err
		}
	}
	if err := r.attachWhereSublinks(q); err != nil {
		return nil, err
	}
	r.appendProvTargets(q)
	return q, nil
}

// rewriteRTE rewrites one range-table entry, setting its ProvCols (the
// entry's P-list). Entries already carrying provenance (external provenance
// annotations, §IV-A3, or previously rewritten subqueries) are left
// untouched. BASERELATION entries and base relations use rule R1.
func (r *Rewriter) rewriteRTE(rte *algebra.RTE) error {
	if rte.ProvCols != nil {
		return nil // already rewritten or externally annotated
	}
	if rte.Kind == algebra.RTERelation || rte.BaseRelation {
		// Rule R1: duplicate the visible attributes under provenance names.
		// The duplication is logical: provenance targets reference the same
		// columns; the physical copy happens in the enclosing projection.
		name := rte.RelName
		if rte.Kind != algebra.RTERelation {
			name = rte.Alias
		}
		inst := r.relInstance(name)
		rte.ProvCols = make([]algebra.ProvCol, len(rte.Cols))
		for i, col := range rte.Cols {
			rte.ProvCols[i] = algebra.ProvCol{Col: i, Name: r.provName(inst, col.Name)}
		}
		return nil
	}
	if rte.Kind == algebra.RTESubquery {
		sub, err := r.RewriteNode(rte.Subquery)
		if err != nil {
			return err
		}
		rte.Subquery = sub
		rte.Cols = sub.Schema()
		rte.ProvCols = sub.ProvCols
		return nil
	}
	return fmt.Errorf("provenance rewrite: unsupported range table entry kind %d", rte.Kind)
}

// appendProvTargets appends the provenance attributes of every range-table
// entry (in range-table order — the I concatenation of Fig. 3) to the
// target list and records the node's P-list.
func (r *Rewriter) appendProvTargets(q *algebra.Query) {
	for rt, rte := range q.RangeTable {
		for _, pc := range rte.ProvCols {
			pos := len(q.TargetList)
			q.TargetList = append(q.TargetList, algebra.TargetEntry{
				Expr: &algebra.Var{RT: rt, Col: pc.Col, Name: pc.Name, Typ: rte.Cols[pc.Col].Type},
				Name: pc.Name,
			})
			q.ProvCols = append(q.ProvCols, algebra.ProvCol{Col: pos, Name: pc.Name})
		}
	}
}

// ---------------------------------------------------------------------------
// ASPJ (rule R5)

// rewriteASPJ implements case 2 of §IV-B: the original aggregation node
// Qagg is kept, a duplicate with aggregation stripped is rewritten, and a
// new top node joins the two on the grouping expressions.
func (r *Rewriter) rewriteASPJ(q *algebra.Query) (*algebra.Query, error) {
	origWidth := len(q.TargetList)

	// The duplicate d: strip aggregation, HAVING, DISTINCT and ordering;
	// its target list becomes the grouping expressions (Π_{G→Ĝ} of R5).
	d := algebra.CopyQuery(q)
	d.TargetList = nil
	d.Having = nil
	d.HasAggs = false
	d.Distinct = false
	d.OrderBy = nil
	groupBy := d.GroupBy
	d.GroupBy = nil
	for i, g := range groupBy {
		d.TargetList = append(d.TargetList, algebra.TargetEntry{
			Expr: g,
			Name: "group_expr_" + strconv.Itoa(i+1),
		})
	}
	if len(groupBy) == 0 {
		// No grouping: d must still be a valid query; project a constant.
		// The join condition below degenerates to TRUE (every input tuple
		// contributes to the single aggregate row).
		d.TargetList = []algebra.TargetEntry{{
			Expr: &algebra.Const{Val: types.NewInt(1)},
			Name: "group_dummy",
		}}
	}
	dPlus, err := r.rewriteSPJ(d)
	if err != nil {
		return nil, err
	}

	// Qagg: the original node, with grouping expressions appended as hidden
	// targets when not already projected, so the top node can join on them.
	qAgg := q
	havingSublinks := collectSublinkRefs(qAgg.Having)
	groupPos := make([]int, len(qAgg.GroupBy))
	for i, g := range qAgg.GroupBy {
		pos := -1
		for ti, te := range qAgg.TargetList {
			if ti < origWidth && algebra.EqualExpr(te.Expr, g) {
				pos = ti
				break
			}
		}
		if pos < 0 {
			pos = len(qAgg.TargetList)
			qAgg.TargetList = append(qAgg.TargetList, algebra.TargetEntry{
				Expr: algebra.CopyExpr(g),
				Name: "group_hidden_" + strconv.Itoa(i+1),
			})
		}
		groupPos[i] = pos
	}

	// Top node: Qagg ⋈ d+ on pairwise null-safe equality of the grouping
	// expressions. Null-safe equality keeps NULL groups associated with
	// their provenance (G = Ĝ in R5 is the grouping equivalence, which
	// treats NULLs as one group).
	top := &algebra.Query{}
	aggRTE := &algebra.RTE{
		Kind: algebra.RTESubquery, Alias: "perm_agg", Subquery: qAgg, Cols: qAgg.Schema(),
	}
	provRTE := &algebra.RTE{
		Kind: algebra.RTESubquery, Alias: "perm_agg_prov", Subquery: dPlus, Cols: dPlus.Schema(),
	}
	top.RangeTable = []*algebra.RTE{aggRTE, provRTE}
	var conds []algebra.Expr
	for i := range groupPos {
		conds = append(conds, &algebra.DistinctFrom{
			Not:   true,
			Left:  &algebra.Var{RT: 0, Col: groupPos[i], Name: aggRTE.Cols[groupPos[i]].Name, Typ: aggRTE.Cols[groupPos[i]].Type},
			Right: &algebra.Var{RT: 1, Col: i, Name: provRTE.Cols[i].Name, Typ: provRTE.Cols[i].Type},
		})
	}
	cond := algebra.AndAll(conds)
	if cond == nil {
		cond = &algebra.Const{Val: types.NewBool(true)}
	}
	top.From = []algebra.FromItem{&algebra.FromJoin{
		Kind:  algebra.JoinInner,
		Left:  &algebra.FromRef{RT: 0},
		Right: &algebra.FromRef{RT: 1},
		Cond:  cond,
	}}
	// Project the original output columns and the provenance attributes.
	for i := 0; i < origWidth; i++ {
		top.TargetList = append(top.TargetList, algebra.TargetEntry{
			Expr: &algebra.Var{RT: 0, Col: i, Name: aggRTE.Cols[i].Name, Typ: aggRTE.Cols[i].Type},
			Name: aggRTE.Cols[i].Name,
		})
	}
	for _, pc := range dPlus.ProvCols {
		pos := len(top.TargetList)
		top.TargetList = append(top.TargetList, algebra.TargetEntry{
			Expr: &algebra.Var{RT: 1, Col: pc.Col, Name: pc.Name, Typ: provRTE.Cols[pc.Col].Type},
			Name: pc.Name,
		})
		top.ProvCols = append(top.ProvCols, algebra.ProvCol{Col: pos, Name: pc.Name})
	}

	// HAVING sublinks contribute their accessed tuples too (§IV-E); they
	// are attached at the top node. Scalar and EXISTS sublinks join on
	// TRUE (the whole subquery input contributes).
	if len(havingSublinks) > 0 {
		if err := r.attachSublinks(top, havingSublinks, func(link *algebra.SubLink, subRT int) (algebra.Expr, error) {
			return r.sublinkJoinCond(link, subRT, func(test algebra.Expr) (algebra.Expr, error) {
				return mapExprToOutputs(test, qAgg, 0)
			})
		}); err != nil {
			return nil, err
		}
	}

	// ORDER BY of the original aggregation applies to the top node's
	// pass-through columns.
	top.OrderBy = liftOrderBy(qAgg, origWidth)
	qAgg.OrderBy = nil
	return top, nil
}

// liftOrderBy moves output-column ORDER BY entries from a wrapped node to
// the wrapping top node (non-output entries are dropped: ordering is not
// semantically load-bearing for provenance computation).
func liftOrderBy(q *algebra.Query, width int) []algebra.SortItem {
	var out []algebra.SortItem
	for _, si := range q.OrderBy {
		if v, ok := si.Expr.(*algebra.Var); ok && v.RT == -1 && v.Col < width {
			out = append(out, algebra.SortItem{
				Expr: &algebra.Var{RT: -1, Col: v.Col, Name: v.Name, Typ: v.Typ},
				Desc: si.Desc,
			})
		}
	}
	return out
}

// mapExprToOutputs rewrites an expression over q's internals into one over
// q's output columns (Vars on the wrapping node's range-table entry rt),
// by structural matching against q's target entries. This is how HAVING
// sublink test expressions (which may contain aggregates) are re-expressed
// at the top join node.
func mapExprToOutputs(e algebra.Expr, q *algebra.Query, rt int) (algebra.Expr, error) {
	schema := q.Schema()
	var mapErr error
	mapped := mapMatch(e, q, rt, schema, &mapErr)
	if mapErr != nil {
		return nil, mapErr
	}
	return mapped, nil
}

func mapMatch(e algebra.Expr, q *algebra.Query, rt int, schema algebra.Schema, mapErr *error) algebra.Expr {
	if e == nil {
		return nil
	}
	for i, te := range q.TargetList {
		if algebra.EqualExpr(te.Expr, e) {
			return &algebra.Var{RT: rt, Col: i, Name: schema[i].Name, Typ: schema[i].Type}
		}
	}
	switch n := e.(type) {
	case *algebra.Const:
		c := *n
		return &c
	case *algebra.BinOp:
		c := *n
		c.Left = mapMatch(n.Left, q, rt, schema, mapErr)
		c.Right = mapMatch(n.Right, q, rt, schema, mapErr)
		return &c
	case *algebra.UnOp:
		c := *n
		c.Expr = mapMatch(n.Expr, q, rt, schema, mapErr)
		return &c
	case *algebra.Cast:
		c := *n
		c.Expr = mapMatch(n.Expr, q, rt, schema, mapErr)
		return &c
	case *algebra.FuncCall:
		c := *n
		c.Args = make([]algebra.Expr, len(n.Args))
		for i, a := range n.Args {
			c.Args[i] = mapMatch(a, q, rt, schema, mapErr)
		}
		return &c
	default:
		if *mapErr == nil {
			*mapErr = fmt.Errorf("cannot re-express %T over the aggregation output", e)
		}
		return e
	}
}

// ---------------------------------------------------------------------------
// Set operations (rules R6-R9)

// rewriteSetOp implements case 3 of §IV-B. The default strategy is the
// recursive split of Fig. 6(3b): the original set-operation node is kept
// whole and joined with the rewritten duplicates of the two branches of
// its top-level operation. With Options.FlattenSetOps, difference-free
// trees instead join the original with every rewritten leaf directly
// (Fig. 6(3a)).
func (r *Rewriter) rewriteSetOp(q *algebra.Query) (*algebra.Query, error) {
	if r.opts.FlattenSetOps && !containsExcept(q.SetOp) {
		return r.rewriteSetOpFlat(q)
	}
	origWidth := len(q.TargetList)
	node := q.SetOp

	// Build standalone query nodes for the two branches of the top-level
	// operation.
	left, err := branchQuery(q, node.Left)
	if err != nil {
		return nil, err
	}
	right, err := branchQuery(q, node.Right)
	if err != nil {
		return nil, err
	}
	dLeft, err := r.RewriteNode(left)
	if err != nil {
		return nil, err
	}
	dRight, err := r.RewriteNode(right)
	if err != nil {
		return nil, err
	}

	top := &algebra.Query{}
	origRTE := &algebra.RTE{Kind: algebra.RTESubquery, Alias: "perm_setop", Subquery: q, Cols: q.Schema()}
	leftRTE := &algebra.RTE{Kind: algebra.RTESubquery, Alias: "perm_setop_left", Subquery: dLeft, Cols: dLeft.Schema()}
	rightRTE := &algebra.RTE{Kind: algebra.RTESubquery, Alias: "perm_setop_right", Subquery: dRight, Cols: dRight.Schema()}
	top.RangeTable = []*algebra.RTE{origRTE, leftRTE, rightRTE}

	leftCond := rowEqCond(origRTE, 0, leftRTE, 1, origWidth)
	var rightCond algebra.Expr
	var leftJoinKind, rightJoinKind algebra.JoinKind
	switch node.Op {
	case algebra.SetUnion:
		// R6: left outer joins — a result tuple may stem from either side.
		leftJoinKind, rightJoinKind = algebra.JoinLeft, algebra.JoinLeft
		rightCond = rowEqCond(origRTE, 0, rightRTE, 2, origWidth)
	case algebra.SetIntersect:
		// R7: inner joins — a result tuple has contributors on both sides.
		leftJoinKind, rightJoinKind = algebra.JoinInner, algebra.JoinInner
		rightCond = rowEqCond(origRTE, 0, rightRTE, 2, origWidth)
	case algebra.SetExcept:
		// R8/R9: every tuple of T2 "different from t" contributes. For the
		// set-semantics difference the condition can be omitted (equal
		// tuples cannot appear in the result); for bag semantics the
		// inequality T1 <> T2 is joined explicitly.
		leftJoinKind, rightJoinKind = algebra.JoinInner, algebra.JoinLeft
		if node.All {
			rightCond = &algebra.UnOp{
				Op:   "NOT",
				Expr: rowEqCond(origRTE, 0, rightRTE, 2, origWidth),
				Typ:  types.KindBool,
			}
		} else {
			rightCond = &algebra.Const{Val: types.NewBool(true)}
		}
	}
	top.From = []algebra.FromItem{&algebra.FromJoin{
		Kind: rightJoinKind,
		Left: &algebra.FromJoin{
			Kind:  leftJoinKind,
			Left:  &algebra.FromRef{RT: 0},
			Right: &algebra.FromRef{RT: 1},
			Cond:  leftCond,
		},
		Right: &algebra.FromRef{RT: 2},
		Cond:  rightCond,
	}}

	for i := 0; i < origWidth; i++ {
		top.TargetList = append(top.TargetList, algebra.TargetEntry{
			Expr: &algebra.Var{RT: 0, Col: i, Name: origRTE.Cols[i].Name, Typ: origRTE.Cols[i].Type},
			Name: origRTE.Cols[i].Name,
		})
	}
	appendWrappedProv(top, 1, leftRTE, dLeft.ProvCols)
	appendWrappedProv(top, 2, rightRTE, dRight.ProvCols)

	top.OrderBy = liftOrderBy(q, origWidth)
	q.OrderBy = nil
	return top, nil
}

// rewriteSetOpFlat implements the Fig. 6(3a) variant for difference-free
// set operation trees: the original query joins directly with every
// rewritten leaf. UNION leaves use left outer joins, INTERSECT leaves
// inner joins.
func (r *Rewriter) rewriteSetOpFlat(q *algebra.Query) (*algebra.Query, error) {
	origWidth := len(q.TargetList)

	// Collect the leaves in order, remembering whether any UNION appears
	// on the path (then a tuple need not have contributors in every leaf,
	// so left joins are needed).
	type leafInfo struct {
		rte      *algebra.RTE
		underAll bool // true when only INTERSECT ancestors: contributor guaranteed
	}
	var leaves []leafInfo
	var collect func(item algebra.SetOpItem, onlyIntersect bool)
	collect = func(item algebra.SetOpItem, onlyIntersect bool) {
		switch n := item.(type) {
		case *algebra.SetOpLeaf:
			leaves = append(leaves, leafInfo{rte: q.RangeTable[n.RT], underAll: onlyIntersect})
		case *algebra.SetOpNode:
			next := onlyIntersect && n.Op == algebra.SetIntersect
			collect(n.Left, next)
			collect(n.Right, next)
		}
	}
	collect(q.SetOp, true)

	top := &algebra.Query{}
	origRTE := &algebra.RTE{Kind: algebra.RTESubquery, Alias: "perm_setop", Subquery: q, Cols: q.Schema()}
	top.RangeTable = []*algebra.RTE{origRTE}
	var from algebra.FromItem = &algebra.FromRef{RT: 0}
	type provInfo struct {
		rt   int
		rte  *algebra.RTE
		prov []algebra.ProvCol
	}
	var provs []provInfo
	for _, leaf := range leaves {
		d, err := r.RewriteNode(algebra.CopyQuery(leaf.rte.Subquery))
		if err != nil {
			return nil, err
		}
		rte := &algebra.RTE{Kind: algebra.RTESubquery, Alias: "perm_setop_branch", Subquery: d, Cols: d.Schema()}
		rt := len(top.RangeTable)
		top.RangeTable = append(top.RangeTable, rte)
		kind := algebra.JoinLeft
		if leaf.underAll {
			kind = algebra.JoinInner
		}
		from = &algebra.FromJoin{
			Kind:  kind,
			Left:  from,
			Right: &algebra.FromRef{RT: rt},
			Cond:  rowEqCond(origRTE, 0, rte, rt, origWidth),
		}
		provs = append(provs, provInfo{rt: rt, rte: rte, prov: d.ProvCols})
	}
	top.From = []algebra.FromItem{from}

	for i := 0; i < origWidth; i++ {
		top.TargetList = append(top.TargetList, algebra.TargetEntry{
			Expr: &algebra.Var{RT: 0, Col: i, Name: origRTE.Cols[i].Name, Typ: origRTE.Cols[i].Type},
			Name: origRTE.Cols[i].Name,
		})
	}
	for _, p := range provs {
		appendWrappedProv(top, p.rt, p.rte, p.prov)
	}
	top.OrderBy = liftOrderBy(q, origWidth)
	q.OrderBy = nil
	return top, nil
}

func containsExcept(item algebra.SetOpItem) bool {
	n, ok := item.(*algebra.SetOpNode)
	if !ok {
		return false
	}
	if n.Op == algebra.SetExcept {
		return true
	}
	return containsExcept(n.Left) || containsExcept(n.Right)
}

// branchQuery builds a standalone query node for one branch of a
// set-operation tree: a leaf becomes a copy of its subquery; an internal
// node becomes a new set-operation query over copies of the referenced
// entries. Copies are required because the original set-operation query is
// kept whole in the rewritten top node while the branch duplicates are
// rewritten destructively (the d1/d2 duplicates of Fig. 7).
func branchQuery(q *algebra.Query, item algebra.SetOpItem) (*algebra.Query, error) {
	switch n := item.(type) {
	case *algebra.SetOpLeaf:
		return algebra.CopyQuery(q.RangeTable[n.RT].Subquery), nil
	case *algebra.SetOpNode:
		sub := &algebra.Query{}
		tree, err := rebaseSetOp(q, n, sub)
		if err != nil {
			return nil, err
		}
		sub.SetOp = tree.(*algebra.SetOpNode)
		first := firstSetOpLeaf(sub.SetOp)
		branch := sub.RangeTable[first.RT]
		for ci, col := range branch.Cols {
			sub.TargetList = append(sub.TargetList, algebra.TargetEntry{
				Expr: &algebra.Var{RT: first.RT, Col: ci, Name: col.Name, Typ: col.Type},
				Name: col.Name,
			})
		}
		return sub, nil
	default:
		return nil, fmt.Errorf("provenance rewrite: unknown set operation item %T", item)
	}
}

// rebaseSetOp copies a set-op subtree into sub, moving the referenced
// range-table entries and renumbering leaves.
func rebaseSetOp(q *algebra.Query, item algebra.SetOpItem, sub *algebra.Query) (algebra.SetOpItem, error) {
	switch n := item.(type) {
	case *algebra.SetOpLeaf:
		orig := q.RangeTable[n.RT]
		rte := *orig
		rte.Subquery = algebra.CopyQuery(orig.Subquery)
		rte.Cols = append(algebra.Schema(nil), orig.Cols...)
		rte.ProvCols = append([]algebra.ProvCol(nil), orig.ProvCols...)
		rt := len(sub.RangeTable)
		sub.RangeTable = append(sub.RangeTable, &rte)
		return &algebra.SetOpLeaf{RT: rt}, nil
	case *algebra.SetOpNode:
		left, err := rebaseSetOp(q, n.Left, sub)
		if err != nil {
			return nil, err
		}
		right, err := rebaseSetOp(q, n.Right, sub)
		if err != nil {
			return nil, err
		}
		return &algebra.SetOpNode{Op: n.Op, All: n.All, Left: left, Right: right}, nil
	default:
		return nil, fmt.Errorf("provenance rewrite: unknown set operation item %T", item)
	}
}

func firstSetOpLeaf(item algebra.SetOpItem) *algebra.SetOpLeaf {
	for {
		switch n := item.(type) {
		case *algebra.SetOpLeaf:
			return n
		case *algebra.SetOpNode:
			item = n.Left
		default:
			return nil
		}
	}
}

// rowEqCond builds the pairwise null-safe equality T = T̂ between the first
// width columns of two wrapped subqueries (the join conditions of rules
// R5-R9).
func rowEqCond(a *algebra.RTE, aRT int, b *algebra.RTE, bRT int, width int) algebra.Expr {
	var conds []algebra.Expr
	for i := 0; i < width; i++ {
		conds = append(conds, &algebra.DistinctFrom{
			Not:   true,
			Left:  &algebra.Var{RT: aRT, Col: i, Name: a.Cols[i].Name, Typ: a.Cols[i].Type},
			Right: &algebra.Var{RT: bRT, Col: i, Name: b.Cols[i].Name, Typ: b.Cols[i].Type},
		})
	}
	cond := algebra.AndAll(conds)
	if cond == nil {
		cond = &algebra.Const{Val: types.NewBool(true)}
	}
	return cond
}

// appendWrappedProv appends provenance targets referencing a wrapped
// subquery's provenance columns to the top node.
func appendWrappedProv(top *algebra.Query, rt int, rte *algebra.RTE, prov []algebra.ProvCol) {
	for _, pc := range prov {
		pos := len(top.TargetList)
		top.TargetList = append(top.TargetList, algebra.TargetEntry{
			Expr: &algebra.Var{RT: rt, Col: pc.Col, Name: pc.Name, Typ: rte.Cols[pc.Col].Type},
			Name: pc.Name,
		})
		top.ProvCols = append(top.ProvCols, algebra.ProvCol{Col: pos, Name: pc.Name})
	}
}

// ---------------------------------------------------------------------------
// LIMIT queries

// rewriteLimit handles nodes with LIMIT/OFFSET. LIMIT is not part of the
// paper's algebra; it is handled like a set operation: the original
// limited query is kept whole and joined back (null-safe, on all output
// columns) to the rewritten duplicate without the limit, so provenance is
// attached only to the rows that survive the limit. Duplicate result rows
// share their provenance, as under rules R6/R7.
func (r *Rewriter) rewriteLimit(q *algebra.Query) (*algebra.Query, error) {
	origWidth := len(q.TargetList)
	d := algebra.CopyQuery(q)
	d.Limit = nil
	d.Offset = nil
	d.OrderBy = nil
	dPlus, err := r.RewriteNode(d)
	if err != nil {
		return nil, err
	}
	top := &algebra.Query{}
	origRTE := &algebra.RTE{Kind: algebra.RTESubquery, Alias: "perm_limit", Subquery: q, Cols: q.Schema()}
	provRTE := &algebra.RTE{Kind: algebra.RTESubquery, Alias: "perm_limit_prov", Subquery: dPlus, Cols: dPlus.Schema()}
	top.RangeTable = []*algebra.RTE{origRTE, provRTE}
	top.From = []algebra.FromItem{&algebra.FromJoin{
		Kind:  algebra.JoinLeft,
		Left:  &algebra.FromRef{RT: 0},
		Right: &algebra.FromRef{RT: 1},
		Cond:  rowEqCond(origRTE, 0, provRTE, 1, origWidth),
	}}
	for i := 0; i < origWidth; i++ {
		top.TargetList = append(top.TargetList, algebra.TargetEntry{
			Expr: &algebra.Var{RT: 0, Col: i, Name: origRTE.Cols[i].Name, Typ: origRTE.Cols[i].Type},
			Name: origRTE.Cols[i].Name,
		})
	}
	appendWrappedProv(top, 1, provRTE, dPlus.ProvCols)
	return top, nil
}

// ---------------------------------------------------------------------------
// Sublinks (§IV-E)

// sublinkCtx describes the boolean context a sublink occurs in, which
// determines its contribution per Cui's definition (§IV-E).
type sublinkCtx struct {
	link *algebra.SubLink
	// negated: the sublink appears under an odd number of NOTs.
	negated bool
	// disjunctive: the enclosing condition can be true independently of
	// the sublink's truth value (the sublink sits under an OR, or under a
	// NOT over a conjunction). Then the whole subquery input contributes.
	disjunctive bool
}

// collectSublinkCtx walks a boolean expression recording every sublink
// with its context.
func collectSublinkCtx(e algebra.Expr, negated, disjunctive bool, out *[]sublinkCtx) {
	switch n := e.(type) {
	case nil:
		return
	case *algebra.SubLink:
		*out = append(*out, sublinkCtx{link: n, negated: negated, disjunctive: disjunctive})
		// The test expression cannot contain further sublinks (enforced at
		// analysis by expression shape), but walk defensively.
		collectSublinkCtx(n.Test, negated, disjunctive, out)
	case *algebra.BinOp:
		switch n.Op {
		case "AND":
			d := disjunctive || negated // under NOT, AND acts as OR
			collectSublinkCtx(n.Left, negated, d, out)
			collectSublinkCtx(n.Right, negated, d, out)
		case "OR":
			d := disjunctive || !negated // under NOT, OR acts as AND
			collectSublinkCtx(n.Left, negated, d, out)
			collectSublinkCtx(n.Right, negated, d, out)
		default:
			// Comparison with a (scalar) sublink operand: the comparison's
			// truth depends on the sublink value; context propagates.
			collectSublinkCtx(n.Left, negated, disjunctive, out)
			collectSublinkCtx(n.Right, negated, disjunctive, out)
		}
	case *algebra.UnOp:
		if n.Op == "NOT" {
			collectSublinkCtx(n.Expr, !negated, disjunctive, out)
			return
		}
		collectSublinkCtx(n.Expr, negated, disjunctive, out)
	case *algebra.IsNull:
		collectSublinkCtx(n.Expr, negated, true, out)
	case *algebra.DistinctFrom:
		collectSublinkCtx(n.Left, negated, disjunctive, out)
		collectSublinkCtx(n.Right, negated, disjunctive, out)
	case *algebra.FuncCall:
		for _, a := range n.Args {
			collectSublinkCtx(a, negated, true, out)
		}
	case *algebra.CaseExpr:
		for _, w := range n.Whens {
			collectSublinkCtx(w.Cond, negated, true, out)
			collectSublinkCtx(w.Result, negated, true, out)
		}
		collectSublinkCtx(n.Else, negated, true, out)
	case *algebra.Cast:
		collectSublinkCtx(n.Expr, negated, disjunctive, out)
	case *algebra.AggRef:
		collectSublinkCtx(n.Arg, negated, true, out)
	}
}

func collectSublinkRefs(e algebra.Expr) []sublinkCtx {
	var out []sublinkCtx
	collectSublinkCtx(e, false, false, &out)
	return out
}

// attachWhereSublinks rewrites the sublinks of q.Where per §IV-E: each
// rewritten sublink query is added to the range table and left-joined to
// the rest of the FROM clause on a condition derived from its context.
// The original WHERE (still containing the sublink expressions) continues
// to filter the original semantics.
func (r *Rewriter) attachWhereSublinks(q *algebra.Query) error {
	refs := collectSublinkRefs(q.Where)
	// Sublinks in the select list contribute their whole input (their value
	// is copied into every result tuple), so they attach with a TRUE join.
	for _, te := range q.TargetList {
		var tRefs []sublinkCtx
		collectSublinkCtx(te.Expr, false, true, &tRefs)
		refs = append(refs, tRefs...)
	}
	if len(refs) == 0 {
		return nil
	}
	return r.attachSublinks(q, refs, func(link *algebra.SubLink, subRT int) (algebra.Expr, error) {
		return r.sublinkJoinCond(link, subRT, func(test algebra.Expr) (algebra.Expr, error) {
			return algebra.CopyExpr(test), nil // test is already in q's scope
		})
	})
}

// attachSublinks adds one RTE per sublink to q, joined via a LEFT JOIN so
// that original result tuples survive even when no subquery tuple matches
// the context condition.
func (r *Rewriter) attachSublinks(q *algebra.Query, refs []sublinkCtx,
	condFor func(link *algebra.SubLink, subRT int) (algebra.Expr, error)) error {

	for _, ref := range refs {
		subPlus, err := r.RewriteNode(algebra.CopyQuery(ref.link.Query))
		if err != nil {
			return err
		}
		rte := &algebra.RTE{
			Kind:     algebra.RTESubquery,
			Alias:    fmt.Sprintf("perm_sublink_%d", len(q.RangeTable)+1),
			Subquery: subPlus,
			Cols:     subPlus.Schema(),
			ProvCols: subPlus.ProvCols,
		}
		subRT := len(q.RangeTable)
		q.RangeTable = append(q.RangeTable, rte)

		var cond algebra.Expr
		if ref.disjunctive {
			// The condition can hold independently of the sublink: per the
			// contribution definition the whole subquery input contributes
			// (the cross product of the accessed relations, §IV-E).
			cond = &algebra.Const{Val: types.NewBool(true)}
		} else {
			cond, err = condFor(ref.link, subRT)
			if err != nil {
				return err
			}
			if ref.negated {
				if _, isConst := cond.(*algebra.Const); !isConst {
					cond = &algebra.UnOp{Op: "NOT", Expr: cond, Typ: types.KindBool}
				}
			}
		}

		// Join the sublink entry to the rest of the FROM clause.
		if len(q.From) == 0 {
			// FROM-less query (e.g. a scalar sublink in the select list):
			// the sublink entry becomes the only FROM item; the condition
			// is necessarily TRUE in this shape.
			q.From = []algebra.FromItem{&algebra.FromRef{RT: subRT}}
			continue
		}
		var left algebra.FromItem
		if len(q.From) == 1 {
			left = q.From[0]
		} else {
			// Fold the implicit cross product into an explicit join tree.
			left = q.From[0]
			for _, fi := range q.From[1:] {
				left = &algebra.FromJoin{Kind: algebra.JoinCross, Left: left, Right: fi}
			}
		}
		q.From = []algebra.FromItem{&algebra.FromJoin{
			Kind:  algebra.JoinLeft,
			Left:  left,
			Right: &algebra.FromRef{RT: subRT},
			Cond:  cond,
		}}
	}
	return nil
}

// sublinkJoinCond derives the join condition for a sublink in a
// conjunctive (non-disjunctive) context. mapTest re-expresses the sublink's
// test expression in the attaching query's scope.
func (r *Rewriter) sublinkJoinCond(link *algebra.SubLink, subRT int,
	mapTest func(algebra.Expr) (algebra.Expr, error)) (algebra.Expr, error) {

	switch link.Kind {
	case algebra.SubAny:
		// x op ANY(S): the matching tuples contribute.
		test, err := mapTest(link.Test)
		if err != nil {
			return nil, err
		}
		subCol := &algebra.Var{RT: subRT, Col: 0, Name: "sub", Typ: link.Query.Schema()[0].Type}
		return &algebra.BinOp{Op: link.Op, Left: test, Right: subCol, Typ: types.KindBool}, nil
	case algebra.SubAll, algebra.SubExists, algebra.SubScalar:
		// Every tuple of the subquery influences the comparison outcome.
		return &algebra.Const{Val: types.NewBool(true)}, nil
	default:
		return nil, fmt.Errorf("provenance rewrite: unsupported sublink kind %d", link.Kind)
	}
}
