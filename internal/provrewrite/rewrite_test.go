package provrewrite_test

import (
	"strings"
	"testing"

	"perm/internal/algebra"
	"perm/internal/analyze"
	"perm/internal/catalog"
	"perm/internal/optimize"
	. "perm/internal/provrewrite"
	"perm/internal/sql"
	"perm/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	if _, err := cat.CreateTable("r", []catalog.Column{
		{Name: "a", Type: types.KindInt},
		{Name: "b", Type: types.KindString},
	}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable("s", []catalog.Column{
		{Name: "a", Type: types.KindInt},
		{Name: "c", Type: types.KindInt},
	}, false); err != nil {
		t.Fatal(err)
	}
	return cat
}

func rewriteSQL(t *testing.T, cat *catalog.Catalog, src string) *algebra.Query {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analyze.New(cat).AnalyzeSelect(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	out, err := RewriteTree(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func provNames(q *algebra.Query) []string {
	var names []string
	for _, pc := range q.ProvCols {
		names = append(names, pc.Name)
	}
	return names
}

func TestSPJRewriteShape(t *testing.T) {
	cat := testCatalog(t)
	q := rewriteSQL(t, cat, "SELECT PROVENANCE b FROM r WHERE a > 1")
	// The SPJ node is rewritten in place: one RTE, extended target list.
	if q.IsSetOp() || q.HasAggs {
		t.Fatal("SPJ rewrite changed the node shape")
	}
	if len(q.RangeTable) != 1 {
		t.Fatalf("range table = %d entries", len(q.RangeTable))
	}
	got := strings.Join(provNames(q), ",")
	if got != "prov_r_a,prov_r_b" {
		t.Errorf("P-list = %s", got)
	}
	// Original target preserved at position 0.
	if q.TargetList[0].Name != "b" {
		t.Errorf("original target renamed: %v", q.TargetList[0].Name)
	}
	if q.ProvenanceRequested {
		t.Error("flag must be cleared after rewriting")
	}
}

func TestASPJRewriteShape(t *testing.T) {
	cat := testCatalog(t)
	q := rewriteSQL(t, cat, "SELECT PROVENANCE b, sum(a) FROM r GROUP BY b")
	// Rule R5 produces a new top node joining Qagg with the rewritten
	// duplicate.
	if q.HasAggs {
		t.Fatal("top node must not aggregate")
	}
	if len(q.RangeTable) != 2 {
		t.Fatalf("top range table = %d entries, want 2", len(q.RangeTable))
	}
	agg := q.RangeTable[0].Subquery
	dup := q.RangeTable[1].Subquery
	if agg == nil || !agg.HasAggs {
		t.Error("RTE 0 must hold the original aggregation")
	}
	if dup == nil || dup.HasAggs {
		t.Error("RTE 1 must hold the aggregation-stripped duplicate")
	}
	join, ok := q.From[0].(*algebra.FromJoin)
	if !ok || join.Kind != algebra.JoinInner {
		t.Fatalf("top join = %#v", q.From[0])
	}
	df, ok := join.Cond.(*algebra.DistinctFrom)
	if !ok || !df.Not {
		t.Errorf("group join condition must be null-safe equality, got %#v", join.Cond)
	}
	if got := strings.Join(provNames(q), ","); got != "prov_r_a,prov_r_b" {
		t.Errorf("P-list = %s", got)
	}
}

func TestSetOpRewriteShape(t *testing.T) {
	cat := testCatalog(t)
	q := rewriteSQL(t, cat, "SELECT PROVENANCE a FROM r UNION SELECT a FROM s")
	if q.IsSetOp() {
		t.Fatal("rewritten set operation must be wrapped in a join node")
	}
	if len(q.RangeTable) != 3 {
		t.Fatalf("range table = %d, want 3 (original + two rewritten branches)", len(q.RangeTable))
	}
	if q.RangeTable[0].Subquery == nil || !q.RangeTable[0].Subquery.IsSetOp() {
		t.Error("RTE 0 must hold the original set operation, unrewritten")
	}
	// UNION uses left outer joins on both branches.
	outer, ok := q.From[0].(*algebra.FromJoin)
	if !ok || outer.Kind != algebra.JoinLeft {
		t.Fatalf("outer join = %#v", q.From[0])
	}
	inner, ok := outer.Left.(*algebra.FromJoin)
	if !ok || inner.Kind != algebra.JoinLeft {
		t.Fatalf("inner join = %#v", outer.Left)
	}
	if got := strings.Join(provNames(q), ","); got != "prov_r_a,prov_r_b,prov_s_a,prov_s_c" {
		t.Errorf("P-list = %s", got)
	}
}

func TestIntersectUsesInnerJoins(t *testing.T) {
	cat := testCatalog(t)
	q := rewriteSQL(t, cat, "SELECT PROVENANCE a FROM r INTERSECT SELECT a FROM s")
	outer := q.From[0].(*algebra.FromJoin)
	inner := outer.Left.(*algebra.FromJoin)
	if outer.Kind != algebra.JoinInner || inner.Kind != algebra.JoinInner {
		t.Errorf("intersect joins = %v / %v, want inner/inner", inner.Kind, outer.Kind)
	}
}

func TestExceptJoinConditions(t *testing.T) {
	cat := testCatalog(t)
	// Set difference: right side joined on TRUE.
	q := rewriteSQL(t, cat, "SELECT PROVENANCE a FROM r EXCEPT SELECT a FROM s")
	outer := q.From[0].(*algebra.FromJoin)
	if c, ok := outer.Cond.(*algebra.Const); !ok || !c.Val.B {
		t.Errorf("set-difference right join condition = %#v, want TRUE", outer.Cond)
	}
	// Bag difference: right side joined on NOT(row equality).
	q = rewriteSQL(t, cat, "SELECT PROVENANCE a FROM r EXCEPT ALL SELECT a FROM s")
	outer = q.From[0].(*algebra.FromJoin)
	if u, ok := outer.Cond.(*algebra.UnOp); !ok || u.Op != "NOT" {
		t.Errorf("bag-difference right join condition = %#v, want NOT(...)", outer.Cond)
	}
}

func TestSublinkAttachment(t *testing.T) {
	cat := testCatalog(t)
	q := rewriteSQL(t, cat, "SELECT PROVENANCE b FROM r WHERE a IN (SELECT a FROM s)")
	if len(q.RangeTable) != 2 {
		t.Fatalf("range table = %d entries, want 2 (r + sublink)", len(q.RangeTable))
	}
	join, ok := q.From[0].(*algebra.FromJoin)
	if !ok || join.Kind != algebra.JoinLeft {
		t.Fatalf("sublink join = %#v", q.From[0])
	}
	// Positive conjunctive IN: join condition is test = subquery column.
	if b, ok := join.Cond.(*algebra.BinOp); !ok || b.Op != "=" {
		t.Errorf("join condition = %#v, want equality", join.Cond)
	}
	// The WHERE still contains the sublink for normal filtering.
	if !algebra.ContainsSubLink(q.Where) {
		t.Error("original WHERE sublink must be preserved")
	}
	if got := strings.Join(provNames(q), ","); got != "prov_r_a,prov_r_b,prov_s_a,prov_s_c" {
		t.Errorf("P-list = %s", got)
	}
}

func TestSublinkContexts(t *testing.T) {
	cat := testCatalog(t)
	// Disjunctive: TRUE condition.
	q := rewriteSQL(t, cat, "SELECT PROVENANCE b FROM r WHERE a > 5 OR a IN (SELECT a FROM s)")
	join := q.From[0].(*algebra.FromJoin)
	if c, ok := join.Cond.(*algebra.Const); !ok || !c.Val.B {
		t.Errorf("disjunctive sublink condition = %#v, want TRUE", join.Cond)
	}
	// Negated: NOT(test = col).
	q = rewriteSQL(t, cat, "SELECT PROVENANCE b FROM r WHERE a NOT IN (SELECT a FROM s)")
	join = q.From[0].(*algebra.FromJoin)
	if u, ok := join.Cond.(*algebra.UnOp); !ok || u.Op != "NOT" {
		t.Errorf("negated sublink condition = %#v, want NOT(...)", join.Cond)
	}
	// EXISTS: whole input contributes.
	q = rewriteSQL(t, cat, "SELECT PROVENANCE b FROM r WHERE EXISTS (SELECT 1 FROM s)")
	join = q.From[0].(*algebra.FromJoin)
	if c, ok := join.Cond.(*algebra.Const); !ok || !c.Val.B {
		t.Errorf("EXISTS sublink condition = %#v, want TRUE", join.Cond)
	}
}

func TestRewriteIdempotentOnUnmarked(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := sql.Parse("SELECT a FROM r")
	if err != nil {
		t.Fatal(err)
	}
	q, err := analyze.New(cat).AnalyzeSelect(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	out, err := RewriteTree(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out != q || len(out.ProvCols) != 0 || len(out.TargetList) != 1 {
		t.Error("unmarked query must pass through unchanged")
	}
}

func TestExternalProvPassThrough(t *testing.T) {
	cat := testCatalog(t)
	// An RTE annotated with external provenance is not rewritten; its
	// marked columns form the P-list.
	q := rewriteSQL(t, cat, "SELECT PROVENANCE a FROM r PROVENANCE (b)")
	if got := strings.Join(provNames(q), ","); got != "b" {
		t.Errorf("P-list = %q, want b", got)
	}
}

func TestBaseRelationRTE(t *testing.T) {
	cat := testCatalog(t)
	q := rewriteSQL(t, cat,
		"SELECT PROVENANCE total FROM (SELECT sum(a) AS total FROM r) BASERELATION AS sub")
	if got := strings.Join(provNames(q), ","); got != "prov_sub_total" {
		t.Errorf("P-list = %q", got)
	}
	// The inner aggregation must NOT have been rewritten.
	if q.RangeTable[0].Subquery == nil || !q.RangeTable[0].Subquery.HasAggs {
		t.Error("BASERELATION subquery must stay unrewritten")
	}
}

// TestRewrittenShapesAreOptimizable asserts the structural contract the
// logical optimizer (package optimize) depends on: the rewriter's nested
// shells are plain SPJ blocks wherever the rules permit, so the optimizer
// can flatten them away — exactly the normalization the paper (§VI)
// delegates to the PostgreSQL optimizer.
func TestRewrittenShapesAreOptimizable(t *testing.T) {
	cat := testCatalog(t)

	// SPJ rewrite happens in place: no wrapper node, no new nesting.
	q := rewriteSQL(t, cat, "SELECT PROVENANCE r.a FROM r, s WHERE r.a = s.a")
	for _, rte := range q.RangeTable {
		if rte.Kind == algebra.RTESubquery {
			t.Errorf("SPJ rewrite introduced a subquery shell %q", rte.Alias)
		}
	}

	// ASPJ rewrite: the rewritten duplicate (perm_agg_prov) must be a
	// plain SPJ block — mergeable into the join-back top node — while the
	// original aggregation keeps its boundary.
	q = rewriteSQL(t, cat, "SELECT PROVENANCE b, count(*) FROM r GROUP BY b")
	var dup *algebra.Query
	for _, rte := range q.RangeTable {
		if rte.Alias == "perm_agg_prov" {
			dup = rte.Subquery
		}
	}
	if dup == nil {
		t.Fatal("rewritten aggregation lacks the perm_agg_prov duplicate")
	}
	if dup.HasAggs || dup.Distinct || len(dup.GroupBy) > 0 || dup.IsSetOp() ||
		dup.Limit != nil || len(dup.OrderBy) > 0 {
		t.Errorf("perm_agg_prov duplicate is not a plain SPJ block: %v", dup)
	}

	// After optimization the duplicate disappears entirely: the top node
	// joins the aggregation against the base relation directly.
	opt := optimize.Query(q)
	aliases := make([]string, 0, len(opt.RangeTable))
	baseRels := 0
	for _, rte := range opt.RangeTable {
		aliases = append(aliases, rte.Alias)
		if rte.Kind == algebra.RTERelation {
			baseRels++
		}
	}
	if baseRels != 1 {
		t.Errorf("optimized join-back should scan the base relation directly, got %v", aliases)
	}

	// Set-operation rewrite: every branch duplicate bottoms out in SPJ
	// leaves the optimizer can flatten; provenance columns survive.
	q = rewriteSQL(t, cat, "SELECT PROVENANCE a FROM r UNION SELECT a FROM s")
	before := provNames(q)
	opt = optimize.Query(q)
	after := provNames(opt)
	if strings.Join(before, ",") != strings.Join(after, ",") {
		t.Errorf("optimization changed the P-list: %v vs %v", before, after)
	}
}
