package provrewrite

import (
	"testing"

	"perm/internal/algebra"
	"perm/internal/types"
)

func TestCollectSublinkCtxPolarity(t *testing.T) {
	link := &algebra.SubLink{Kind: algebra.SubAny, Op: "=", Typ: types.KindBool}
	tru := &algebra.Const{Val: types.NewBool(true)}

	// NOT(NOT(link)) → positive.
	e := algebra.Expr(&algebra.UnOp{Op: "NOT", Typ: types.KindBool,
		Expr: &algebra.UnOp{Op: "NOT", Expr: link, Typ: types.KindBool}})
	refs := collectSublinkRefs(e)
	if len(refs) != 1 || refs[0].negated || refs[0].disjunctive {
		t.Errorf("double negation: %+v", refs)
	}

	// AND under NOT behaves like OR → disjunctive.
	e = &algebra.UnOp{Op: "NOT", Typ: types.KindBool,
		Expr: &algebra.BinOp{Op: "AND", Left: tru, Right: link, Typ: types.KindBool}}
	refs = collectSublinkRefs(e)
	if len(refs) != 1 || !refs[0].disjunctive || !refs[0].negated {
		t.Errorf("NOT(AND): %+v", refs)
	}

	// OR under NOT behaves like AND → conjunctive (not disjunctive).
	e = &algebra.UnOp{Op: "NOT", Typ: types.KindBool,
		Expr: &algebra.BinOp{Op: "OR", Left: tru, Right: link, Typ: types.KindBool}}
	refs = collectSublinkRefs(e)
	if len(refs) != 1 || refs[0].disjunctive || !refs[0].negated {
		t.Errorf("NOT(OR): %+v", refs)
	}
}

func TestProvNameNumbering(t *testing.T) {
	r := New(Options{})
	if got := r.relInstance("shop"); got != "shop" {
		t.Errorf("first instance = %q", got)
	}
	if got := r.relInstance("shop"); got != "shop_2" {
		t.Errorf("second instance = %q", got)
	}
	if got := r.provName("shop", "name"); got != "prov_shop_name" {
		t.Errorf("provName = %q", got)
	}
}
