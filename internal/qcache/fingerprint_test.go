package qcache

import "testing"

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT * FROM shop WHERE name = 'Merdies'", "select * from shop where name = ?"},
		{"select *   from\n\tshop", "select * from shop"},
		{"SELECT a + 10 FROM t WHERE b < 2.5e3", "select a + ? from t where b < ?"},
		{"SELECT 'it''s' FROM t2", "select ? from t2"}, // digit inside identifier survives
		{"  SELECT 1  ", "select ?"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Fatalf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNormalizeNegativeLiterals pins the unary-minus fold: a sign
// directly before a number after an opener, separator or operator is
// part of the literal, while binary subtraction keeps its operator.
func TestNormalizeNegativeLiterals(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT a FROM t WHERE b = -5", "select a from t where b = ?"},
		{"SELECT a FROM t WHERE b > -2.5e3", "select a from t where b > ?"},
		{"INSERT INTO t VALUES (-1, -2)", "insert into t values (?, ?)"},
		{"SELECT a - 5 FROM t", "select a - ? from t"},
		{"SELECT a -5 FROM t", "select a -? from t"}, // still subtraction
		{"SELECT a - -5 FROM t", "select a - ? from t"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Fatalf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if Fingerprint("SELECT a FROM t WHERE b = -5") != Fingerprint("SELECT a FROM t WHERE b = 17") {
		t.Fatal("negative and positive literal variants fingerprint differently")
	}
}

// TestNormalizeInListArity pins the IN-list collapse: lists of literals
// normalize to one placeholder regardless of arity, while lists
// containing anything but literals are preserved.
func TestNormalizeInListArity(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT a FROM t WHERE b IN (1, 2)", "select a from t where b in (?)"},
		{"SELECT a FROM t WHERE b IN (1,2,3)", "select a from t where b in (?)"},
		{"SELECT a FROM t WHERE b IN(-1, 'x')", "select a from t where b in (?)"},
		{"SELECT a FROM t WHERE b IN (c, 2)", "select a from t where b in (c, ?)"},
		{"SELECT a FROM t WHERE b IN (SELECT a FROM s)", "select a from t where b in (select a from s)"},
		{"SELECT inv FROM t WHERE inv = 3", "select inv from t where inv = ?"}, // "in" prefix of identifier
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Fatalf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	a := Fingerprint("SELECT a FROM t WHERE b IN (1, 2)")
	b := Fingerprint("SELECT a FROM t WHERE b IN (4, 5, 6, 7)")
	if a != b {
		t.Fatalf("IN-list arity variants fingerprint differently: %s vs %s", a, b)
	}
}

// TestFingerprint pins the parameterization property: same shape,
// different literals → same fingerprint; different shape → different.
func TestFingerprint(t *testing.T) {
	a := Fingerprint("SELECT name FROM shop WHERE numempl > 3")
	b := Fingerprint("select name from  shop where numempl > 100")
	if a != b {
		t.Fatalf("literal-only variants fingerprint differently: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex digits", a)
	}
	if c := Fingerprint("SELECT name FROM sales WHERE numempl > 3"); c == a {
		t.Fatalf("distinct statements share fingerprint %s", a)
	}
}

func TestContainsDoesNotCount(t *testing.T) {
	c := New(8)
	c.Put("k", 1, 7)
	if !c.Contains("k", 7) {
		t.Fatal("Contains missed a live entry")
	}
	if c.Contains("k", 8) {
		t.Fatal("Contains matched a stale version")
	}
	if c.Contains("other", 7) {
		t.Fatal("Contains matched a missing key")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Contains moved the counters: %+v", st)
	}
}
