package qcache

import "testing"

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT * FROM shop WHERE name = 'Merdies'", "select * from shop where name = ?"},
		{"select *   from\n\tshop", "select * from shop"},
		{"SELECT a + 10 FROM t WHERE b < 2.5e3", "select a + ? from t where b < ?"},
		{"SELECT 'it''s' FROM t2", "select ? from t2"}, // digit inside identifier survives
		{"  SELECT 1  ", "select ?"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Fatalf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestFingerprint pins the parameterization property: same shape,
// different literals → same fingerprint; different shape → different.
func TestFingerprint(t *testing.T) {
	a := Fingerprint("SELECT name FROM shop WHERE numempl > 3")
	b := Fingerprint("select name from  shop where numempl > 100")
	if a != b {
		t.Fatalf("literal-only variants fingerprint differently: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex digits", a)
	}
	if c := Fingerprint("SELECT name FROM sales WHERE numempl > 3"); c == a {
		t.Fatalf("distinct statements share fingerprint %s", a)
	}
}

func TestContainsDoesNotCount(t *testing.T) {
	c := New(8)
	c.Put("k", 1, 7)
	if !c.Contains("k", 7) {
		t.Fatal("Contains missed a live entry")
	}
	if c.Contains("k", 8) {
		t.Fatal("Contains matched a stale version")
	}
	if c.Contains("other", 7) {
		t.Fatal("Contains matched a missing key")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Contains moved the counters: %+v", st)
	}
}
