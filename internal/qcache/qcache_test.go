package qcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHitMiss(t *testing.T) {
	c := New(8)
	if _, ok := c.Get("q1", 1); ok {
		t.Fatal("empty cache produced a hit")
	}
	c.Put("q1", "artifact-1", 1)
	v, ok := c.Get("q1", 1)
	if !ok || v.(string) != "artifact-1" {
		t.Fatalf("expected hit with artifact-1, got %v %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestVersionInvalidation(t *testing.T) {
	c := New(8)
	c.Put("q1", "compiled@3", 3)
	// Catalog moved on: the stale artifact must not be served.
	if _, ok := c.Get("q1", 4); ok {
		t.Fatal("served artifact compiled under an older catalog version")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not removed; len = %d", c.Len())
	}
	// Recompiled under the new version: hit again.
	c.Put("q1", "compiled@4", 4)
	v, ok := c.Get("q1", 4)
	if !ok || v.(string) != "compiled@4" {
		t.Fatalf("expected recompiled artifact, got %v %v", v, ok)
	}
}

func TestOlderVersionLookupInvalidates(t *testing.T) {
	// A lookup under a version older than the entry's is equally a
	// mismatch (cannot happen with a monotonic catalog, but the cache
	// must not serve it either way).
	c := New(8)
	c.Put("q1", "compiled@5", 5)
	if _, ok := c.Get("q1", 2); ok {
		t.Fatal("served artifact from a different version world")
	}
}

func TestPutReplaces(t *testing.T) {
	c := New(8)
	c.Put("q1", "old", 1)
	c.Put("q1", "new", 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	v, ok := c.Get("q1", 2)
	if !ok || v.(string) != "new" {
		t.Fatalf("expected replaced artifact, got %v %v", v, ok)
	}
}

func TestLRUEviction(t *testing.T) {
	// A single-shard-sized cache: overfilling one shard must evict its
	// least recently used entry. Use a capacity of numShards so each
	// shard holds exactly one entry; inserting two keys that land in the
	// same shard evicts the older.
	c := New(1) // rounds to 1 entry per shard
	// Find two keys in the same shard.
	var k1, k2 string
	k1 = "key-0"
	s1 := c.shard(k1)
	for i := 1; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shard(k) == s1 {
			k2 = k
			break
		}
	}
	c.Put(k1, 1, 1)
	c.Put(k2, 2, 1)
	if _, ok := c.Get(k1, 1); ok {
		t.Fatal("LRU entry not evicted")
	}
	if v, ok := c.Get(k2, 1); !ok || v.(int) != 2 {
		t.Fatal("most recent entry evicted")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := New(1)
	// Three same-shard keys, capacity one per shard.
	s0 := c.shard("k0")
	keys := []string{"k0"}
	for i := 1; len(keys) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == s0 {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 0, 1)
	c.Get(keys[0], 1) // touch
	c.Put(keys[1], 1, 1)
	// keys[0] was evicted by keys[1] (cap 1); keys[1] must be present.
	if _, ok := c.Get(keys[1], 1); !ok {
		t.Fatal("expected most-recent key present")
	}
}

func TestPurge(t *testing.T) {
	c := New(64)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("q%d", i), i, 1)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("q%d", i%40)
				if v, ok := c.Get(key, uint64(i%3)); ok {
					if v.(string) != key {
						t.Errorf("wrong artifact for %s: %v", key, v)
					}
				} else {
					c.Put(key, key, uint64(i%3))
				}
			}
		}(g)
	}
	wg.Wait()
}
