package qcache

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Normalize returns the parameterized form of a statement text: string
// and numeric literals are replaced with '?' (a unary minus directly
// before a number folds into the literal, so -5 and 42 normalize alike),
// identifiers and keywords are lowercased, whitespace runs collapse to
// single spaces, and IN lists of literals collapse to a single
// placeholder — IN (1,2) and IN (1,2,3) are one query shape, not two.
// Two statements that differ only in their literal values normalize to
// the same text — the key shape a parameterized plan cache wants.
//
// The compiled-query cache itself still keys on the raw text: its
// artifacts are optimized trees with the literals folded in (constant
// folding, stats-driven join orders), so serving them across literals
// would be wrong. Normalize exists for identity, not for artifact reuse:
// the slow-query log and EXPLAIN ANALYZE fingerprint statements with it
// so one query shape aggregates across its parameter values.
func Normalize(text string) string {
	var sb strings.Builder
	sb.Grow(len(text))
	prevIdent := false // previous emitted byte continues an identifier
	pendingSpace := false
	var lastSig byte // last significant (non-space) byte emitted
	emit := func(b byte) {
		if pendingSpace {
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			pendingSpace = false
		}
		sb.WriteByte(b)
		lastSig = b
	}
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == '\'':
			// String literal with '' escapes.
			i++
			for i < len(text) {
				if text[i] == '\'' {
					if i+1 < len(text) && text[i+1] == '\'' {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
			emit('?')
			prevIdent = false
			continue
		case c == '-' && i+1 < len(text) && isDigit(text[i+1]) && signContext(lastSig):
			// Unary minus folded into the literal it signs: the previous
			// significant byte is an opener, separator or operator, so this
			// '-' cannot be binary subtraction. (After a word — "SELECT -1" —
			// the sign is kept: keywords and identifiers are lexically
			// indistinguishable, and "a -1" must stay a subtraction.)
			i++
			continue
		case c >= '0' && c <= '9' && !prevIdent:
			// Numeric literal (digits, optional fraction and exponent).
			j := i
			for j < len(text) && isDigit(text[j]) {
				j++
			}
			if j < len(text) && text[j] == '.' {
				j++
				for j < len(text) && isDigit(text[j]) {
					j++
				}
			}
			if j < len(text) && (text[j] == 'e' || text[j] == 'E') {
				k := j + 1
				if k < len(text) && (text[k] == '+' || text[k] == '-') {
					k++
				}
				if k < len(text) && isDigit(text[k]) {
					for k < len(text) && isDigit(text[k]) {
						k++
					}
					j = k
				}
			}
			i = j
			emit('?')
			prevIdent = false
			continue
		case isIdentByte(c):
			lc := c
			if c >= 'A' && c <= 'Z' {
				lc = c + ('a' - 'A')
			}
			emit(lc)
			prevIdent = true
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pendingSpace = true
			prevIdent = false
		default:
			emit(c)
			prevIdent = false
		}
		i++
	}
	return collapseInLists(sb.String())
}

// signContext reports whether a '-' emitted after this byte signs a
// numeric literal rather than subtracting: at the start of the text or
// after an opener, separator or operator.
func signContext(last byte) bool {
	switch last {
	case 0, '(', ',', '=', '<', '>', '+', '-', '*', '/', '%':
		return true
	}
	return false
}

// collapseInLists rewrites every fully parameterized IN list in a
// normalized text — "in (?,?,?)", any arity, any spacing — to the
// arity-independent "in (?)". IN (1,2) and IN (1,2,3) differ only in
// how many values the client batched this time; for fingerprint
// identity they are the same statement. Lists containing anything but
// placeholders (column references, subqueries) are left untouched.
func collapseInLists(s string) string {
	if !strings.Contains(s, "in") {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); {
		if inWordAt(s, i) {
			k := i + 2
			if k < len(s) && s[k] == ' ' {
				k++
			}
			if k < len(s) && s[k] == '(' {
				m := k + 1
				placeholders := 0
				listOnly := true
			scan:
				for ; m < len(s); m++ {
					switch s[m] {
					case '?':
						placeholders++
					case ',', ' ':
					default:
						if s[m] != ')' {
							listOnly = false
						}
						break scan
					}
				}
				if listOnly && m < len(s) && s[m] == ')' && placeholders > 0 {
					sb.WriteString("in (?)")
					i = m + 1
					continue
				}
			}
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

// inWordAt reports whether the standalone word "in" starts at s[i].
func inWordAt(s string, i int) bool {
	if i+2 > len(s) || s[i] != 'i' || s[i+1] != 'n' {
		return false
	}
	if i > 0 && isIdentByte(s[i-1]) {
		return false
	}
	return i+2 == len(s) || !isIdentByte(s[i+2])
}

// Fingerprint returns a 16-hex-digit hash of Normalize(text): a stable
// identity for a query shape, shared by the slow-query log, EXPLAIN
// ANALYZE output, the statement-statistics registry and benchmark
// tooling.
func Fingerprint(text string) string {
	return FingerprintNormalized(Normalize(text))
}

// FingerprintNormalized hashes an already-normalized statement text
// (callers that also need the normalized form avoid normalizing twice).
func FingerprintNormalized(norm string) string {
	h := fnv.New64a()
	h.Write([]byte(norm)) //nolint:errcheck — fnv never fails
	return fmt.Sprintf("%016x", h.Sum64())
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
