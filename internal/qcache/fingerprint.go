package qcache

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Normalize returns the parameterized form of a statement text: string
// and numeric literals are replaced with '?', identifiers and keywords
// are lowercased, and whitespace runs collapse to single spaces. Two
// statements that differ only in their literal values normalize to the
// same text — the key shape a parameterized plan cache wants.
//
// The compiled-query cache itself still keys on the raw text: its
// artifacts are optimized trees with the literals folded in (constant
// folding, stats-driven join orders), so serving them across literals
// would be wrong. Normalize exists for identity, not for artifact reuse:
// the slow-query log and EXPLAIN ANALYZE fingerprint statements with it
// so one query shape aggregates across its parameter values.
func Normalize(text string) string {
	var sb strings.Builder
	sb.Grow(len(text))
	prevIdent := false // previous emitted byte continues an identifier
	pendingSpace := false
	emit := func(b byte) {
		if pendingSpace {
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			pendingSpace = false
		}
		sb.WriteByte(b)
	}
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == '\'':
			// String literal with '' escapes.
			i++
			for i < len(text) {
				if text[i] == '\'' {
					if i+1 < len(text) && text[i+1] == '\'' {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
			emit('?')
			prevIdent = false
			continue
		case c >= '0' && c <= '9' && !prevIdent:
			// Numeric literal (digits, optional fraction and exponent).
			j := i
			for j < len(text) && isDigit(text[j]) {
				j++
			}
			if j < len(text) && text[j] == '.' {
				j++
				for j < len(text) && isDigit(text[j]) {
					j++
				}
			}
			if j < len(text) && (text[j] == 'e' || text[j] == 'E') {
				k := j + 1
				if k < len(text) && (text[k] == '+' || text[k] == '-') {
					k++
				}
				if k < len(text) && isDigit(text[k]) {
					for k < len(text) && isDigit(text[k]) {
						k++
					}
					j = k
				}
			}
			i = j
			emit('?')
			prevIdent = false
			continue
		case isIdentByte(c):
			lc := c
			if c >= 'A' && c <= 'Z' {
				lc = c + ('a' - 'A')
			}
			emit(lc)
			prevIdent = true
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pendingSpace = true
			prevIdent = false
		default:
			emit(c)
			prevIdent = false
		}
		i++
	}
	return sb.String()
}

// Fingerprint returns a 16-hex-digit hash of Normalize(text): a stable
// identity for a query shape, shared by the slow-query log, EXPLAIN
// ANALYZE output, the statement-statistics registry and benchmark
// tooling.
func Fingerprint(text string) string {
	return FingerprintNormalized(Normalize(text))
}

// FingerprintNormalized hashes an already-normalized statement text
// (callers that also need the normalized form avoid normalizing twice).
func FingerprintNormalized(norm string) string {
	h := fnv.New64a()
	h.Write([]byte(norm)) //nolint:errcheck — fnv never fails
	return fmt.Sprintf("%016x", h.Sum64())
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
