// Package qcache implements the shared compiled-query cache of the Perm
// engine: a sharded LRU of compilation artifacts (analyzed, provenance-
// rewritten and optimized query trees) keyed by SQL text plus an options
// fingerprint.
//
// Every entry is tagged with the catalog version it was compiled under.
// Lookups present the current version; an entry compiled under an older
// version is treated as a miss and dropped (the catalog bumps its version
// on every DDL and DML statement, so stale artifacts can never be
// served). Because compiled artifacts are immutable after optimization,
// a hit can be shared by any number of concurrent sessions without
// copying; only per-execution state (physical plans, iterators, data
// snapshots) is rebuilt per call.
package qcache

import (
	"container/list"
	"hash/maphash"
	"strconv"
	"sync"
	"sync/atomic"

	"perm/internal/obs"
)

// numShards spreads contention across independently-locked LRU shards.
// Keys are distributed by hash, so concurrent sessions compiling
// different statements rarely collide on a shard lock.
const numShards = 16

// Entry is one cached compilation artifact.
type Entry struct {
	// Value is the compiled artifact. It must be immutable: hits hand
	// the same pointer to concurrent sessions.
	Value any
	// Version is the catalog version the artifact was compiled under.
	Version uint64
}

// Stats are cumulative cache counters.
type Stats struct {
	Hits          uint64 // lookups served from the cache
	Misses        uint64 // lookups that found no entry
	Invalidations uint64 // entries dropped because the catalog version moved
	Evictions     uint64 // entries dropped by LRU capacity pressure
}

// Cache is a sharded LRU cache of compiled-query artifacts. The zero
// value is not usable; use New.
type Cache struct {
	seed   maphash.Seed
	shards [numShards]shard

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	evictions     atomic.Uint64
}

type shard struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recently used
	items map[string]*list.Element // key → element; element value is *node
}

type node struct {
	key   string
	entry Entry
}

// New returns a cache holding at most capacity entries in total
// (rounded up to a multiple of the shard count; a non-positive capacity
// defaults to 256).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 256
	}
	perShard := (capacity + numShards - 1) / numShards
	c := &Cache{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].order = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

func (c *Cache) shard(key string) *shard {
	return &c.shards[maphash.String(c.seed, key)%numShards]
}

// Get returns the artifact cached under key, if it was compiled under
// the given catalog version. An entry compiled under a different
// version is removed and reported as a miss (counted as an
// invalidation), so callers always recompile against the current
// catalog.
func (c *Cache) Get(key string, version uint64) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	n := el.Value.(*node)
	if n.entry.Version != version {
		stale := n.entry.Version
		s.order.Remove(el)
		delete(s.items, key)
		s.mu.Unlock()
		c.invalidations.Add(1)
		c.misses.Add(1)
		obs.Events.Record(obs.EventCacheInvalidation, "", "",
			"compiled artifact from catalog version "+strconv.FormatUint(stale, 10)+
				" dropped at version "+strconv.FormatUint(version, 10))
		return nil, false
	}
	s.order.MoveToFront(el)
	v := n.entry.Value
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Contains reports whether key is cached under the given catalog
// version without touching the LRU order or the hit/miss counters. The
// slow-query log uses it to label a statement's cache outcome without
// distorting the stats the statement itself is about to move.
func (c *Cache) Contains(key string, version uint64) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	return ok && el.Value.(*node).entry.Version == version
}

// Put stores an artifact compiled under the given catalog version,
// evicting the least recently used entry of the shard if it is full. A
// concurrent Put for the same key wins by recency (last writer stays).
func (c *Cache) Put(key string, value any, version uint64) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		n := el.Value.(*node)
		n.entry = Entry{Value: value, Version: version}
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[key] = s.order.PushFront(&node{key: key, entry: Entry{Value: value, Version: version}})
	var evicted bool
	if s.order.Len() > s.cap {
		oldest := s.order.Back()
		n := oldest.Value.(*node)
		s.order.Remove(oldest)
		delete(s.items, n.key)
		evicted = true
	}
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// Len returns the number of cached entries (including any not yet
// invalidated by catalog-version drift).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge drops every entry.
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.order.Init()
		s.items = make(map[string]*list.Element)
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Evictions:     c.evictions.Load(),
	}
}
