// Package mem implements the hierarchical memory accountant of the Perm
// engine: a per-engine Governor at the root, per-session Budgets below
// it, and per-operator Reservations at the leaves. Materializing
// operators (sorts, hash-join builds, hash aggregation, DISTINCT, set
// operations) ask their reservation for memory as they accumulate data;
// a denied grant is the signal to spill to disk (package spill) rather
// than to fail the query, so a budget is a performance knob, never a
// correctness hazard.
//
// Every grant is accounted at both the session and the engine level
// atomically: concurrent sessions can exhaust their own budgets (and
// start spilling) without ever pushing another session over the engine
// limit unobserved. All counters are lock-free.
package mem

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"perm/internal/fault"
	"perm/internal/obs"
)

// Stats is a snapshot of an accountant level's cumulative counters.
type Stats struct {
	// InUse is the currently granted memory in bytes.
	InUse int64
	// Peak is the high-water mark of granted memory in bytes.
	Peak int64
	// BytesSpilled counts bytes written to spill files by operators
	// charging this level.
	BytesSpilled int64
	// SpillEvents counts spill activations (runs/partitions written).
	SpillEvents int64
}

// counters is one accounting level (the Governor root or a session
// Budget share the same arithmetic).
type counters struct {
	limit        atomic.Int64
	used         atomic.Int64
	peak         atomic.Int64
	bytesSpilled atomic.Int64
	spillEvents  atomic.Int64
}

// tryGrow attempts to add n bytes at this level; over-limit attempts are
// rolled back and denied. A limit of 0 means unlimited.
func (c *counters) tryGrow(n int64) bool {
	nu := c.used.Add(n)
	if lim := c.limit.Load(); lim > 0 && nu > lim {
		c.used.Add(-n)
		return false
	}
	c.bumpPeak(nu)
	return true
}

// grow adds n bytes unconditionally (forced accounting after a spill
// could not free enough, so Release stays symmetric).
func (c *counters) grow(n int64) {
	c.bumpPeak(c.used.Add(n))
}

func (c *counters) bumpPeak(nu int64) {
	for {
		p := c.peak.Load()
		if nu <= p || c.peak.CompareAndSwap(p, nu) {
			return
		}
	}
}

func (c *counters) release(n int64) { c.used.Add(-n) }

func (c *counters) noteSpill(bytes int64) {
	c.bytesSpilled.Add(bytes)
	c.spillEvents.Add(1)
}

func (c *counters) stats() Stats {
	return Stats{
		InUse:        c.used.Load(),
		Peak:         c.peak.Load(),
		BytesSpilled: c.bytesSpilled.Load(),
		SpillEvents:  c.spillEvents.Load(),
	}
}

// Governor is the engine-wide accounting root. A limit of 0 means the
// engine total is unbounded (sessions may still be individually
// bounded).
type Governor struct {
	c counters
}

// NewGovernor returns a governor with the given engine-wide limit in
// bytes (0 = unlimited).
func NewGovernor(limit int64) *Governor {
	g := &Governor{}
	g.c.limit.Store(limit)
	return g
}

// SetLimit changes the engine-wide limit (0 = unlimited). In-flight
// grants are unaffected; the next grow observes the new limit.
func (g *Governor) SetLimit(n int64) {
	if g == nil {
		return
	}
	g.c.limit.Store(n)
}

// Limit returns the engine-wide limit (0 = unlimited).
func (g *Governor) Limit() int64 {
	if g == nil {
		return 0
	}
	return g.c.limit.Load()
}

// Stats returns the engine-wide counters.
func (g *Governor) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	return g.c.stats()
}

// Session creates a session-level budget below the governor with the
// given limit in bytes (0 = unlimited; the engine limit still applies).
func (g *Governor) Session(limit int64) *Budget {
	b := &Budget{gov: g}
	b.c.limit.Store(limit)
	return b
}

// Budget is a session-level accounting node. Reservations drawn from it
// charge both the session and the engine.
type Budget struct {
	gov *Governor
	c   counters
}

// Limit returns the session limit (0 = unlimited).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.c.limit.Load()
}

// SetLimit changes the session limit (0 = unlimited).
func (b *Budget) SetLimit(n int64) {
	if b == nil {
		return
	}
	b.c.limit.Store(n)
}

// Limited reports whether any level above an operator bounds its memory
// (i.e. whether a denied grant — and therefore spilling — is possible).
func (b *Budget) Limited() bool {
	if b == nil {
		return false
	}
	return b.c.limit.Load() > 0 || b.gov.Limit() > 0
}

// Stats returns the session counters.
func (b *Budget) Stats() Stats {
	if b == nil {
		return Stats{}
	}
	return b.c.stats()
}

// Reserve opens an operator-level reservation named for diagnostics.
// The zero-value/nil reservation is valid and unlimited.
func (b *Budget) Reserve(op string) *Reservation {
	if b == nil {
		return nil
	}
	return &Reservation{b: b, op: op}
}

// Reservation is one operator's claim on a session budget. All methods
// are safe on a nil reservation (no budget: every grant succeeds and
// nothing is tracked), so operators can hold one unconditionally.
type Reservation struct {
	b    *Budget
	op   string
	used atomic.Int64
	// peak and the spill counters feed EXPLAIN ANALYZE's per-operator
	// annotations; they accumulate across Opens of the same plan node.
	peak        atomic.Int64
	spillBytes  atomic.Int64
	spillEvents atomic.Int64
}

// Op returns the operator tag the reservation was opened with.
func (r *Reservation) Op() string {
	if r == nil {
		return ""
	}
	return r.op
}

// Limited reports whether the reservation can ever deny a grant.
func (r *Reservation) Limited() bool {
	return r != nil && r.b.Limited()
}

// Grow requests n more bytes. A false return means some level's limit
// would be exceeded and nothing was granted: the operator should spill,
// Release what it freed, and retry (or Force as a last resort).
func (r *Reservation) Grow(n int64) bool {
	if r == nil || n <= 0 {
		return true
	}
	// The fault tap denies grants only on limited reservations: operators
	// treat a denial as "spill now", and only budgeted operators carry
	// the spill machinery an injected denial exercises.
	if r.b.Limited() && fault.Should(fault.PointMemGrow) {
		obs.MemDenials.Inc()
		return false
	}
	if !r.b.c.tryGrow(n) {
		obs.MemDenials.Inc()
		return false
	}
	if !r.b.gov.c.tryGrow(n) {
		r.b.c.release(n)
		obs.MemDenials.Inc()
		return false
	}
	obs.MemGrants.Inc()
	r.bumpPeak(r.used.Add(n))
	return true
}

// bumpPeak lifts the reservation's high-water mark to nu if it grew.
func (r *Reservation) bumpPeak(nu int64) {
	for {
		p := r.peak.Load()
		if nu <= p || r.peak.CompareAndSwap(p, nu) {
			return
		}
	}
}

// Force accounts n bytes unconditionally. Operators use it when a single
// unit of work (one input batch) exceeds the remaining budget even after
// spilling everything else: the query must still complete, so the
// overshoot is recorded rather than hidden.
func (r *Reservation) Force(n int64) {
	if r == nil || n <= 0 {
		return
	}
	r.b.c.grow(n)
	r.b.gov.c.grow(n)
	obs.MemGrants.Inc()
	r.bumpPeak(r.used.Add(n))
}

// Release returns n bytes to the budget.
func (r *Reservation) Release(n int64) {
	if r == nil || n <= 0 {
		return
	}
	r.used.Add(-n)
	r.b.c.release(n)
	r.b.gov.c.release(n)
}

// ReleaseAll returns everything the reservation holds (operator Close).
// The reservation stays usable for a subsequent Open.
func (r *Reservation) ReleaseAll() {
	if r == nil {
		return
	}
	n := r.used.Swap(0)
	if n != 0 {
		r.b.c.release(n)
		r.b.gov.c.release(n)
	}
}

// Used returns the bytes currently held by the reservation.
func (r *Reservation) Used() int64 {
	if r == nil {
		return 0
	}
	return r.used.Load()
}

// NoteSpill records bytes written to a spill file under this
// reservation; the counters propagate to the session and engine levels.
func (r *Reservation) NoteSpill(bytes int64) {
	if r == nil {
		return
	}
	r.spillBytes.Add(bytes)
	if r.spillEvents.Add(1) == 1 {
		// Spill onset — the first run/partition this operator writes — is
		// an engine event; subsequent writes only move the counters.
		obs.Events.Record(obs.EventSpill, "", "", r.op+" began spilling")
	}
	r.b.c.noteSpill(bytes)
	r.b.gov.c.noteSpill(bytes)
}

// Peak returns the reservation's own high-water mark in bytes.
func (r *Reservation) Peak() int64 {
	if r == nil {
		return 0
	}
	return r.peak.Load()
}

// SpillBytes returns the bytes this reservation's operator wrote to
// spill files.
func (r *Reservation) SpillBytes() int64 {
	if r == nil {
		return 0
	}
	return r.spillBytes.Load()
}

// SpillEvents returns how many spill activations this reservation's
// operator recorded.
func (r *Reservation) SpillEvents() int64 {
	if r == nil {
		return 0
	}
	return r.spillEvents.Load()
}

// ParseSize parses a human-readable byte size: a plain integer is bytes;
// suffixes KB/MB/GB/TB are decimal and KiB/MiB/GiB/TiB binary (a bare
// K/M/G/T is binary, matching PostgreSQL's work_mem units). The strings
// "off", "unlimited" and "-1" parse to -1 (explicitly unlimited).
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	switch t {
	case "off", "unlimited", "-1":
		return -1, nil
	}
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30}, {"tib", 1 << 40},
		{"kb", 1000}, {"mb", 1000 * 1000}, {"gb", 1000 * 1000 * 1000}, {"tb", 1000 * 1000 * 1000 * 1000},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30}, {"t", 1 << 40},
		{"b", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t = strings.TrimSpace(strings.TrimSuffix(t, u.suffix))
			mult = u.mult
			break
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n < 0 {
		// Negative sizes other than the literal "-1" are rejected: a typo
		// like "-64MiB" must not silently disarm the governor.
		return 0, fmt.Errorf("invalid memory size %q (want e.g. 67108864, 64MiB, 64MB, or off)", s)
	}
	return n * mult, nil
}
