package mem

import (
	"sync"
	"testing"
)

func TestReservationGrowDenyAtSessionLimit(t *testing.T) {
	g := NewGovernor(0)
	b := g.Session(100)
	r := b.Reserve("sort")
	if !r.Grow(60) || !r.Grow(40) {
		t.Fatal("grants within the limit must succeed")
	}
	if r.Grow(1) {
		t.Fatal("grant beyond the session limit must be denied")
	}
	if got := r.Used(); got != 100 {
		t.Fatalf("used = %d, want 100", got)
	}
	r.Release(50)
	if !r.Grow(30) {
		t.Fatal("grant after release must succeed")
	}
	r.ReleaseAll()
	if got := b.Stats().InUse; got != 0 {
		t.Fatalf("session in-use after ReleaseAll = %d, want 0", got)
	}
	if got := b.Stats().Peak; got != 100 {
		t.Fatalf("session peak = %d, want 100", got)
	}
}

func TestEngineLimitBoundsIndependentSessions(t *testing.T) {
	g := NewGovernor(100)
	b1, b2 := g.Session(0), g.Session(0)
	r1, r2 := b1.Reserve("a"), b2.Reserve("b")
	if !r1.Grow(70) {
		t.Fatal("first session grant must succeed")
	}
	if r2.Grow(40) {
		t.Fatal("grant pushing the engine over its limit must be denied")
	}
	// The denied grant must have been rolled back everywhere.
	if got := b2.Stats().InUse; got != 0 {
		t.Fatalf("denied session in-use = %d, want 0", got)
	}
	if got := g.Stats().InUse; got != 70 {
		t.Fatalf("engine in-use = %d, want 70", got)
	}
	if !r2.Grow(30) {
		t.Fatal("grant within the remaining engine budget must succeed")
	}
	r1.ReleaseAll()
	r2.ReleaseAll()
}

func TestSessionLimitDenyRollsBackEngine(t *testing.T) {
	g := NewGovernor(0)
	b := g.Session(10)
	r := b.Reserve("x")
	if r.Grow(11) {
		t.Fatal("grant over the session limit must be denied")
	}
	if got := g.Stats().InUse; got != 0 {
		t.Fatalf("engine in-use after denied session grant = %d, want 0", got)
	}
}

func TestForceOvershootsAndReleases(t *testing.T) {
	g := NewGovernor(0)
	b := g.Session(10)
	r := b.Reserve("sort")
	r.Force(25)
	if got := b.Stats().InUse; got != 25 {
		t.Fatalf("in-use after Force = %d, want 25", got)
	}
	r.ReleaseAll()
	if got, eg := b.Stats().InUse, g.Stats().InUse; got != 0 || eg != 0 {
		t.Fatalf("in-use after ReleaseAll = session %d engine %d, want 0/0", got, eg)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Reservation
	if !r.Grow(1 << 40) {
		t.Fatal("nil reservation must grant everything")
	}
	r.Force(1)
	r.Release(1)
	r.ReleaseAll()
	r.NoteSpill(1)
	if r.Limited() {
		t.Fatal("nil reservation must be unlimited")
	}
	var b *Budget
	if b.Reserve("x") != nil {
		t.Fatal("nil budget must hand out nil reservations")
	}
	if b.Limited() {
		t.Fatal("nil budget must be unlimited")
	}
}

func TestLimited(t *testing.T) {
	g := NewGovernor(0)
	if g.Session(0).Limited() {
		t.Fatal("no limits anywhere: not limited")
	}
	if !g.Session(5).Limited() {
		t.Fatal("session limit: limited")
	}
	if !NewGovernor(5).Session(0).Limited() {
		t.Fatal("engine limit: limited")
	}
}

func TestSpillStatsPropagate(t *testing.T) {
	g := NewGovernor(0)
	b := g.Session(0)
	r := b.Reserve("agg")
	r.NoteSpill(1000)
	r.NoteSpill(24)
	for _, st := range []Stats{b.Stats(), g.Stats()} {
		if st.BytesSpilled != 1024 || st.SpillEvents != 2 {
			t.Fatalf("spill stats = %+v, want 1024 bytes / 2 events", st)
		}
	}
}

func TestConcurrentGrantsNeverExceedLimitGrossly(t *testing.T) {
	g := NewGovernor(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := g.Session(256 << 10)
			r := b.Reserve("w")
			for i := 0; i < 1000; i++ {
				if r.Grow(4096) {
					r.Release(4096)
				}
			}
			r.ReleaseAll()
		}()
	}
	wg.Wait()
	if got := g.Stats().InUse; got != 0 {
		t.Fatalf("engine in-use after all released = %d, want 0", got)
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"123", 123},
		{"4MiB", 4 << 20},
		{"4mb", 4_000_000},
		{"64KiB", 64 << 10},
		{"64K", 64 << 10},
		{"1GiB", 1 << 30},
		{"2g", 2 << 30},
		{"10b", 10},
		{" 8 MiB ", 8 << 20},
		{"off", -1},
		{"unlimited", -1},
		{"-1", -1},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Fatalf("ParseSize(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "lots", "4XB", "1.5MiB", "-64MiB", "-2"} {
		if _, err := ParseSize(bad); err == nil {
			t.Fatalf("ParseSize(%q): expected error", bad)
		}
	}
}
