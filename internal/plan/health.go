// Plan-health plumbing: harvesting per-operator (estimate, actual)
// pairs from an instrumented tree for the misestimation store, and the
// structural plan hash behind the plan-flip history.
package plan

import (
	"perm/internal/exec"
	"perm/internal/obs"
	"perm/internal/vexec"
)

// OperatorEstimates harvests, after execution, one (operator label,
// estimated rows, actual rows) triple per probed operator that carries a
// planner estimate. The triples feed the per-fingerprint misestimation
// store behind perm_stat_estimates. Operators without an estimate or
// without a probe (parallel worker replicas) are skipped — their
// enclosing parallel operator is probed as a unit and reports for them.
func OperatorEstimates(n exec.Node) []obs.OpEst {
	var out []obs.OpEst
	opEsts(n, &out)
	return out
}

func harvestOp(n interface{}, st *obs.OpStats, out *[]obs.OpEst) {
	if st == nil {
		return
	}
	if est := estOf(n); est > 0 {
		*out = append(*out, obs.OpEst{Op: opName(n), EstRows: est, ActRows: st.Rows})
	}
}

func opEsts(n exec.Node, out *[]obs.OpEst) {
	var st *obs.OpStats
	if p, ok := n.(*exec.Probe); ok {
		st, n = p.Stats, p.Input
	}
	harvestOp(n, st, out)
	switch x := n.(type) {
	case *exec.Filter:
		opEsts(x.Input, out)
	case *exec.Project:
		opEsts(x.Input, out)
	case *exec.NestedLoopJoin:
		opEsts(x.Left, out)
		opEsts(x.Right, out)
	case *exec.HashJoin:
		opEsts(x.Left, out)
		opEsts(x.Right, out)
	case *exec.HashAgg:
		opEsts(x.Input, out)
	case *exec.Sort:
		opEsts(x.Input, out)
	case *exec.Limit:
		opEsts(x.Input, out)
	case *exec.Distinct:
		opEsts(x.Input, out)
	case *exec.SetOp:
		opEsts(x.Left, out)
		opEsts(x.Right, out)
	case *vexec.RowSource:
		opEstsV(x.Input, out)
	}
}

func opEstsV(n vexec.Node, out *[]obs.OpEst) {
	if t, ok := n.(*vexec.MorselTap); ok {
		opEstsV(t.Input, out)
		return
	}
	var st *obs.OpStats
	if p, ok := n.(*vexec.Probe); ok {
		st, n = p.Stats, p.Input
	}
	harvestOp(n, st, out)
	switch x := n.(type) {
	case *vexec.Filter:
		opEstsV(x.Input, out)
	case *vexec.Project:
		opEstsV(x.Input, out)
	case *vexec.HashJoin:
		opEstsV(x.Left, out)
		opEstsV(x.Right, out)
	case *vexec.NLJoin:
		opEstsV(x.Left, out)
		opEstsV(x.Right, out)
	case *vexec.HashAgg:
		opEstsV(x.Input, out)
	case *vexec.VecSort:
		opEstsV(x.Input, out)
	case *vexec.VecTopN:
		opEstsV(x.Input, out)
	case *vexec.VecLimit:
		opEstsV(x.Input, out)
	case *vexec.VecDistinct:
		opEstsV(x.Input, out)
	case *vexec.VecSetOp:
		opEstsV(x.Left, out)
		opEstsV(x.Right, out)
	}
}

// Hash returns a structural fingerprint of a physical plan: FNV-64a over
// the EXPLAIN rendering with every digit run collapsed to one mask byte,
// then over the plan's scan relation names in traversal order. Masking
// digits keeps the hash stable across pure cardinality drift — scan row
// counts change with every DML, and a LIMIT constant is a literal, not a
// shape — while anything structural (operator choice, join order, build
// side, vectorized vs row placement, spill mode, runtime-filter wiring,
// parallel operators) changes the rendered text and therefore the hash.
// Scan names are folded in separately because EXPLAIN renders scans
// anonymously: a build-side swap between two equally-shaped scans moves
// which relation sits where, which only the names can distinguish.
// Computed on fresh compiles only, so the cache-hit hot path never
// renders a plan.
func Hash(n exec.Node) uint64 {
	s := Explain(n)
	h := fnvOffset64
	inDigits := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= '0' && c <= '9' {
			if !inDigits {
				h = fnvByte(h, '#')
				inDigits = true
			}
			continue
		}
		inDigits = false
		h = fnvByte(h, c)
	}
	hashScans(n, &h)
	return h
}

const (
	fnvOffset64 = uint64(14695981039346656037)
	fnvPrime64  = uint64(1099511628211)
)

func fnvByte(h uint64, c byte) uint64 {
	h ^= uint64(c)
	h *= fnvPrime64
	return h
}

func hashName(h *uint64, name string) {
	*h = fnvByte(*h, 0)
	for i := 0; i < len(name); i++ {
		*h = fnvByte(*h, name[i])
	}
}

// hashScans folds every scan's relation name into the hash, in the same
// deterministic traversal order EXPLAIN uses. Parallel operators fold
// their first worker replica: replication is validated to be
// shape-identical, so one replica carries the full structure.
func hashScans(n exec.Node, h *uint64) {
	switch x := n.(type) {
	case *exec.Scan:
		hashName(h, x.Table)
	case *exec.Filter:
		hashScans(x.Input, h)
	case *exec.Project:
		hashScans(x.Input, h)
	case *exec.NestedLoopJoin:
		hashScans(x.Left, h)
		hashScans(x.Right, h)
	case *exec.HashJoin:
		hashScans(x.Left, h)
		hashScans(x.Right, h)
	case *exec.HashAgg:
		hashScans(x.Input, h)
	case *exec.Sort:
		hashScans(x.Input, h)
	case *exec.Limit:
		hashScans(x.Input, h)
	case *exec.Distinct:
		hashScans(x.Input, h)
	case *exec.SetOp:
		hashScans(x.Left, h)
		hashScans(x.Right, h)
	case *vexec.RowSource:
		hashScansV(x.Input, h)
	}
}

func hashScansV(n vexec.Node, h *uint64) {
	switch x := n.(type) {
	case *vexec.ColScan:
		hashName(h, x.Table)
	case *vexec.MorselTap:
		hashScansV(x.Input, h)
	case *vexec.Filter:
		hashScansV(x.Input, h)
	case *vexec.Project:
		hashScansV(x.Input, h)
	case *vexec.HashJoin:
		hashScansV(x.Left, h)
		hashScansV(x.Right, h)
	case *vexec.NLJoin:
		hashScansV(x.Left, h)
		hashScansV(x.Right, h)
	case *vexec.HashAgg:
		hashScansV(x.Input, h)
	case *vexec.VecSort:
		hashScansV(x.Input, h)
	case *vexec.VecTopN:
		hashScansV(x.Input, h)
	case *vexec.VecLimit:
		hashScansV(x.Input, h)
	case *vexec.VecDistinct:
		hashScansV(x.Input, h)
	case *vexec.VecSetOp:
		hashScansV(x.Left, h)
		hashScansV(x.Right, h)
	case *vexec.Exchange:
		if len(x.Workers) > 0 {
			hashScansV(x.Workers[0], h)
		}
	case *vexec.ParallelAgg:
		if len(x.Workers) > 0 {
			hashScansV(x.Workers[0], h)
		}
	case *vexec.ParallelSort:
		if len(x.Workers) > 0 {
			hashScansV(x.Workers[0], h)
		}
	}
}
