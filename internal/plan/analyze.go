// EXPLAIN ANALYZE: post-plan instrumentation and annotated rendering.
//
// Instrument wraps a freshly planned tree with probe nodes (exec.Probe /
// vexec.Probe) that time every operator and count what it emits; the
// tree then executes exactly as planned — probes forward batches and
// rows by pointer — and ExplainAnalyzed re-renders the same EXPLAIN tree
// with the observed runtime per operator attached. Instrumentation
// happens after parallelize, so plan shape validation (which renders
// replica trees to strings) never sees a probe, and parallel worker
// subtrees — which run on their own goroutines — are never wrapped: the
// parallel operator itself is probed as a unit, and worker-local detail
// (per-worker morsel counts, worker spills) is read from the replica
// trees after the operators' own barriers have published it.
package plan

import (
	"fmt"
	"strings"
	"time"

	"perm/internal/exec"
	"perm/internal/obs"
	"perm/internal/spill"
	"perm/internal/vexec"
)

// Instrument wraps every operator of a planned tree with an EXPLAIN
// ANALYZE probe and returns the instrumented root. The tree is modified
// in place (children are rewrapped); plan trees are per-execution, so
// nothing shared is touched.
func Instrument(n exec.Node) exec.Node {
	return instrumentNode(n)
}

func instrumentNode(n exec.Node) exec.Node {
	switch x := n.(type) {
	case *exec.Scan:
	case *exec.Filter:
		x.Input = instrumentNode(x.Input)
	case *exec.Project:
		x.Input = instrumentNode(x.Input)
	case *exec.NestedLoopJoin:
		x.Left = instrumentNode(x.Left)
		x.Right = instrumentNode(x.Right)
	case *exec.HashJoin:
		x.Left = instrumentNode(x.Left)
		x.Right = instrumentNode(x.Right)
	case *exec.HashAgg:
		x.Input = instrumentNode(x.Input)
	case *exec.Sort:
		x.Input = instrumentNode(x.Input)
	case *exec.Limit:
		x.Input = instrumentNode(x.Input)
	case *exec.Distinct:
		x.Input = instrumentNode(x.Input)
	case *exec.SetOp:
		x.Left = instrumentNode(x.Left)
		x.Right = instrumentNode(x.Right)
	case *vexec.RowSource:
		x.Input = instrumentVNode(x.Input)
	}
	return exec.NewProbe(n)
}

func instrumentVNode(n vexec.Node) vexec.Node {
	switch x := n.(type) {
	case *vexec.ColScan:
	case *vexec.Filter:
		x.Input = instrumentVNode(x.Input)
	case *vexec.Project:
		x.Input = instrumentVNode(x.Input)
	case *vexec.HashJoin:
		x.Left = instrumentVNode(x.Left)
		x.Right = instrumentVNode(x.Right)
	case *vexec.NLJoin:
		x.Left = instrumentVNode(x.Left)
		x.Right = instrumentVNode(x.Right)
	case *vexec.HashAgg:
		x.Input = instrumentVNode(x.Input)
	case *vexec.VecSort:
		x.Input = instrumentVNode(x.Input)
	case *vexec.VecTopN:
		x.Input = instrumentVNode(x.Input)
	case *vexec.VecLimit:
		x.Input = instrumentVNode(x.Input)
	case *vexec.VecDistinct:
		x.Input = instrumentVNode(x.Input)
	case *vexec.VecSetOp:
		x.Left = instrumentVNode(x.Left)
		x.Right = instrumentVNode(x.Right)
	case *vexec.Exchange, *vexec.ParallelAgg, *vexec.ParallelSort:
		// Probed as a unit; worker subtrees run concurrently and must not
		// share a coordinator-side collector.
	}
	return vexec.NewProbe(n)
}

// ExplainAnalyzed renders an instrumented tree after execution: the
// EXPLAIN plan with per-operator runtime annotations, followed by a
// plan-total summary line (wall time, peak memory reservation, spilled
// bytes) so operators need not sum the per-operator rows by hand.
func ExplainAnalyzed(n exec.Node, total time.Duration, peakMem, spilled int64) string {
	var sb []byte
	analyzeNode(n, 0, &sb)
	sb = append(sb, fmt.Sprintf("Execution time: %s (peak memory %dB, spilled %dB)\n",
		fmtDur(total.Nanoseconds()), peakMem, spilled)...)
	return string(sb)
}

// OperatorSpans harvests the probe measurements of an instrumented tree
// as trace spans, one per probed operator in plan (pre-order) position,
// nested one level below the execute phase span. Start offsets are not
// knowable from cumulative probe counters, so spans carry durations
// only.
func OperatorSpans(n exec.Node) []obs.Span {
	var spans []obs.Span
	opSpans(n, 1, &spans)
	return spans
}

func opSpans(n exec.Node, depth int, out *[]obs.Span) {
	var st *obs.OpStats
	if p, ok := n.(*exec.Probe); ok {
		st, n = p.Stats, p.Input
	}
	if st != nil {
		*out = append(*out, obs.Span{Name: opName(n), Depth: depth, DurNS: st.TotalNS(), Rows: st.Rows})
	}
	switch x := n.(type) {
	case *exec.Filter:
		opSpans(x.Input, depth+1, out)
	case *exec.Project:
		opSpans(x.Input, depth+1, out)
	case *exec.NestedLoopJoin:
		opSpans(x.Left, depth+1, out)
		opSpans(x.Right, depth+1, out)
	case *exec.HashJoin:
		opSpans(x.Left, depth+1, out)
		opSpans(x.Right, depth+1, out)
	case *exec.HashAgg:
		opSpans(x.Input, depth+1, out)
	case *exec.Sort:
		opSpans(x.Input, depth+1, out)
	case *exec.Limit:
		opSpans(x.Input, depth+1, out)
	case *exec.Distinct:
		opSpans(x.Input, depth+1, out)
	case *exec.SetOp:
		opSpans(x.Left, depth+1, out)
		opSpans(x.Right, depth+1, out)
	case *vexec.RowSource:
		opSpansV(x.Input, depth+1, out)
	}
}

func opSpansV(n vexec.Node, depth int, out *[]obs.Span) {
	if t, ok := n.(*vexec.MorselTap); ok {
		opSpansV(t.Input, depth, out)
		return
	}
	var st *obs.OpStats
	if p, ok := n.(*vexec.Probe); ok {
		st, n = p.Stats, p.Input
	}
	if st != nil {
		*out = append(*out, obs.Span{Name: opName(n), Depth: depth, DurNS: st.TotalNS(), Rows: st.Rows})
	}
	switch x := n.(type) {
	case *vexec.Filter:
		opSpansV(x.Input, depth+1, out)
	case *vexec.Project:
		opSpansV(x.Input, depth+1, out)
	case *vexec.HashJoin:
		opSpansV(x.Left, depth+1, out)
		opSpansV(x.Right, depth+1, out)
	case *vexec.NLJoin:
		opSpansV(x.Left, depth+1, out)
		opSpansV(x.Right, depth+1, out)
	case *vexec.HashAgg:
		opSpansV(x.Input, depth+1, out)
	case *vexec.VecSort:
		opSpansV(x.Input, depth+1, out)
	case *vexec.VecTopN:
		opSpansV(x.Input, depth+1, out)
	case *vexec.VecLimit:
		opSpansV(x.Input, depth+1, out)
	case *vexec.VecDistinct:
		opSpansV(x.Input, depth+1, out)
	case *vexec.VecSetOp:
		opSpansV(x.Left, depth+1, out)
		opSpansV(x.Right, depth+1, out)
	case *vexec.Exchange:
		opSpansV(x.Workers[0].Input, depth+1, out)
	case *vexec.ParallelAgg:
		opSpansV(x.Workers[0].Input, depth+1, out)
	case *vexec.ParallelSort:
		opSpansV(x.Workers[0].Input, depth+1, out)
	}
}

// opName returns the operator's EXPLAIN label stem for trace spans.
func opName(n interface{}) string {
	switch n.(type) {
	case *exec.Scan:
		return "Scan"
	case *exec.Filter:
		return "Filter"
	case *exec.Project:
		return "Project"
	case *exec.NestedLoopJoin:
		return "NestedLoopJoin"
	case *exec.HashJoin:
		return "HashJoin"
	case *exec.HashAgg:
		return "HashAggregate"
	case *exec.Sort:
		return "Sort"
	case *exec.Limit:
		return "Limit"
	case *exec.Distinct:
		return "Distinct"
	case *exec.SetOp:
		return "SetOp"
	case *vexec.RowSource:
		return "BatchToRow"
	case *vexec.ColScan:
		return "VecScan"
	case *vexec.Filter:
		return "VecFilter"
	case *vexec.Project:
		return "VecProject"
	case *vexec.HashJoin:
		return "VecHashJoin"
	case *vexec.NLJoin:
		return "VecNestedLoopJoin"
	case *vexec.HashAgg:
		return "VecHashAggregate"
	case *vexec.VecSort:
		return "VecSort"
	case *vexec.VecTopN:
		return "VecTopN"
	case *vexec.VecLimit:
		return "VecLimit"
	case *vexec.VecDistinct:
		return "VecDistinct"
	case *vexec.VecSetOp:
		return "VecSetOp"
	case *vexec.Exchange:
		return "Exchange"
	case *vexec.ParallelAgg:
		return "ParallelAgg"
	case *vexec.ParallelSort:
		return "ParallelSort"
	default:
		return fmt.Sprintf("%T", n)
	}
}

func analyzeNode(n exec.Node, depth int, out *[]byte) {
	var st *obs.OpStats
	if p, ok := n.(*exec.Probe); ok {
		st, n = p.Stats, p.Input
	}
	est := estOf(n)
	line := func(label string, extra ...string) {
		*out = append(*out, indent(depth)...)
		*out = append(*out, label...)
		*out = append(*out, annot(st, false, est, extra)...)
		*out = append(*out, '\n')
	}
	switch x := n.(type) {
	case *exec.Scan:
		line(fmt.Sprintf("Scan (%d rows)", len(x.Rows)))
	case *exec.Filter:
		line("Filter")
		analyzeNode(x.Input, depth+1, out)
	case *exec.Project:
		line(fmt.Sprintf("Project (%d cols)", len(x.Exprs)))
		analyzeNode(x.Input, depth+1, out)
	case *exec.NestedLoopJoin:
		line(fmt.Sprintf("NestedLoopJoin (%s)", joinName(x.Type)))
		analyzeNode(x.Left, depth+1, out)
		analyzeNode(x.Right, depth+1, out)
	case *exec.HashJoin:
		line(fmt.Sprintf("HashJoin (%s, %d keys)", joinName(x.Type), len(x.LeftKeys)))
		analyzeNode(x.Left, depth+1, out)
		analyzeNode(x.Right, depth+1, out)
	case *exec.HashAgg:
		line(fmt.Sprintf("HashAggregate (%d groups, %d aggs)", len(x.Groups), len(x.Aggs)))
		analyzeNode(x.Input, depth+1, out)
	case *exec.Sort:
		line(fmt.Sprintf("Sort (%d keys%s)", len(x.Keys), spillTag(x.Spill)), resAnnot(x.Spill)...)
		analyzeNode(x.Input, depth+1, out)
	case *exec.Limit:
		line("Limit")
		analyzeNode(x.Input, depth+1, out)
	case *exec.Distinct:
		line("Distinct")
		analyzeNode(x.Input, depth+1, out)
	case *exec.SetOp:
		line(fmt.Sprintf("SetOp (%s, all=%v)", setOpName(x.Kind), x.All))
		analyzeNode(x.Left, depth+1, out)
		analyzeNode(x.Right, depth+1, out)
	case *vexec.RowSource:
		line("BatchToRow")
		analyzeVNode(x.Input, depth+1, out)
	default:
		line(fmt.Sprintf("%T", n))
	}
}

func analyzeVNode(n vexec.Node, depth int, out *[]byte) {
	if t, ok := n.(*vexec.MorselTap); ok {
		analyzeVNode(t.Input, depth, out)
		return
	}
	var st *obs.OpStats
	if p, ok := n.(*vexec.Probe); ok {
		st, n = p.Stats, p.Input
	}
	est := estOf(n)
	line := func(label string, extra ...string) {
		*out = append(*out, indent(depth)...)
		*out = append(*out, label...)
		*out = append(*out, annot(st, true, est, extra)...)
		*out = append(*out, '\n')
	}
	switch x := n.(type) {
	case *vexec.ColScan:
		label := fmt.Sprintf("VecScan (%d rows)", x.NumRows)
		if x.HasRuntimeFilters() {
			label = fmt.Sprintf("VecScan (%d rows, RuntimeFilter)", x.NumRows)
		}
		line(label, scanAnnot(x)...)
	case *vexec.Filter:
		line("VecFilter")
		analyzeVNode(x.Input, depth+1, out)
	case *vexec.Project:
		line(fmt.Sprintf("VecProject (%d cols)", len(x.Exprs)))
		analyzeVNode(x.Input, depth+1, out)
	case *vexec.HashJoin:
		rf := ""
		if x.PublishesFilters() {
			rf = ", RuntimeFilter"
		}
		line(fmt.Sprintf("VecHashJoin (%s, %d keys%s%s)", vecJoinName(x.Type), len(x.LeftKeys), rf, spillTag(x.Spill)),
			resAnnot(x.Spill)...)
		analyzeVNode(x.Left, depth+1, out)
		analyzeVNode(x.Right, depth+1, out)
	case *vexec.NLJoin:
		line(fmt.Sprintf("VecNestedLoopJoin (%s)", vecJoinName(x.Type)))
		analyzeVNode(x.Left, depth+1, out)
		analyzeVNode(x.Right, depth+1, out)
	case *vexec.HashAgg:
		line(fmt.Sprintf("VecHashAggregate (%d groups, %d aggs%s)", len(x.Groups), len(x.Aggs), spillTag(x.Spill)),
			resAnnot(x.Spill)...)
		analyzeVNode(x.Input, depth+1, out)
	case *vexec.VecSort:
		line(fmt.Sprintf("VecSort (%d keys%s)", len(x.Keys), spillTag(x.Spill)), resAnnot(x.Spill)...)
		analyzeVNode(x.Input, depth+1, out)
	case *vexec.VecTopN:
		line(fmt.Sprintf("VecTopN (%d keys, keep %d)", len(x.Keys), x.Offset+x.Count))
		analyzeVNode(x.Input, depth+1, out)
	case *vexec.VecLimit:
		line("VecLimit")
		analyzeVNode(x.Input, depth+1, out)
	case *vexec.VecDistinct:
		if tag := spillTag(x.Spill); tag != "" {
			line(fmt.Sprintf("VecDistinct (%s)", tag[2:]), resAnnot(x.Spill)...)
		} else {
			line("VecDistinct")
		}
		analyzeVNode(x.Input, depth+1, out)
	case *vexec.VecSetOp:
		line(fmt.Sprintf("VecSetOp (%s, all=%v%s)", setOpName(x.Kind), x.All, spillTag(x.Spill)),
			resAnnot(x.Spill)...)
		analyzeVNode(x.Left, depth+1, out)
		analyzeVNode(x.Right, depth+1, out)
	case *vexec.Exchange:
		drivers := make([]*vexec.ColScan, len(x.Workers))
		for i, w := range x.Workers {
			drivers[i] = spineDriver(w.Input)
		}
		line(fmt.Sprintf("Exchange (workers=%d)", len(x.Workers)), workerAnnot(drivers, nil)...)
		analyzeVNode(x.Workers[0].Input, depth+1, out)
	case *vexec.ParallelAgg:
		h := x.Workers[0]
		drivers := make([]*vexec.ColScan, len(x.Workers))
		res := make([]spill.Resources, len(x.Workers))
		for i, w := range x.Workers {
			drivers[i] = spineDriver(w.Input)
			res[i] = w.Spill
		}
		line(fmt.Sprintf("VecHashAggregate (%d groups, %d aggs%s, workers=%d)",
			len(h.Groups), len(h.Aggs), spillTag(h.Spill), len(x.Workers)), workerAnnot(drivers, res)...)
		analyzeVNode(h.Input, depth+1, out)
	case *vexec.ParallelSort:
		w0 := x.Workers[0]
		drivers := make([]*vexec.ColScan, len(x.Workers))
		res := make([]spill.Resources, len(x.Workers))
		for i, w := range x.Workers {
			drivers[i] = spineDriver(w.Input)
			res[i] = w.Spill
		}
		line(fmt.Sprintf("VecSort (%d keys%s, workers=%d)",
			len(w0.Keys), spillTag(w0.Spill), len(x.Workers)), workerAnnot(drivers, res)...)
		analyzeVNode(w0.Input, depth+1, out)
	default:
		line(fmt.Sprintf("%T", n))
	}
}

// annot renders the shared probe annotation: wall time, emitted rows,
// and (vectorized) batches, then the planner's cardinality estimate next
// to the observed actual and their q-error, plus any operator-specific
// extras. Nodes without a probe (worker replica subtrees) still show
// their estimate and extras.
func annot(st *obs.OpStats, vec bool, est float64, extra []string) string {
	var parts []string
	if st != nil {
		parts = append(parts, "time="+fmtDur(st.TotalNS()), fmt.Sprintf("rows=%d", st.Rows))
		if vec {
			parts = append(parts, fmt.Sprintf("batches=%d", st.Batches))
		}
	}
	if est > 0 {
		parts = append(parts, fmt.Sprintf("est=%.0f", est))
		if st != nil {
			parts = append(parts, fmt.Sprintf("act=%d", st.Rows),
				fmt.Sprintf("qerr=%.2f", obs.QError(est, st.Rows)))
		}
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return " (actual " + strings.Join(parts, " ") + ")"
}

// estOf reads a node's planner cardinality estimate, looking through
// probes, morsel taps and estimate-less batch→row adapters (the adapter
// emits exactly what its input does). 0 means no estimate.
func estOf(n interface{}) float64 {
	switch x := n.(type) {
	case *exec.Probe:
		return estOf(x.Input)
	case *vexec.Probe:
		return estOf(x.Input)
	case *vexec.MorselTap:
		return estOf(x.Input)
	case *vexec.RowSource:
		if x.EstRows > 0 {
			return x.EstRows
		}
		return estOf(x.Input)
	}
	if c, ok := n.(interface{ EstimatedRows() float64 }); ok {
		return c.EstimatedRows()
	}
	return 0
}

// resAnnot renders a spill-capable operator's memory annotation from its
// reservation: peak bytes held, and spill events/bytes when it spilled.
func resAnnot(res spill.Resources) []string {
	r := res.Res
	if r == nil {
		return nil
	}
	var parts []string
	if p := r.Peak(); p > 0 {
		parts = append(parts, fmt.Sprintf("mem=%dB", p))
	}
	if e := r.SpillEvents(); e > 0 {
		parts = append(parts, fmt.Sprintf("spills=%d spilled=%dB", e, r.SpillBytes()))
	}
	return parts
}

// scanAnnot renders a columnar scan's morsel count (parallel workers)
// and runtime-filter selectivity.
func scanAnnot(s *vexec.ColScan) []string {
	var parts []string
	if n := s.MorselsTaken(); n > 0 {
		parts = append(parts, fmt.Sprintf("morsels=%d", n))
	}
	if s.HasRuntimeFilters() {
		tested, admitted := s.RuntimeFilterStats()
		parts = append(parts, fmt.Sprintf("rf=%d/%d admitted", admitted, tested))
	}
	return parts
}

// workerAnnot renders a parallel operator's per-worker morsel counts and
// aggregated worker spill counters (read after the operator's barrier).
func workerAnnot(drivers []*vexec.ColScan, res []spill.Resources) []string {
	counts := make([]int, len(drivers))
	for i, d := range drivers {
		if d != nil {
			counts[i] = d.MorselsTaken()
		}
	}
	parts := []string{fmt.Sprintf("morsels/worker=%v", counts)}
	var events, bytes int64
	for _, rs := range res {
		events += rs.Res.SpillEvents()
		bytes += rs.Res.SpillBytes()
	}
	if events > 0 {
		parts = append(parts, fmt.Sprintf("spills=%d spilled=%dB", events, bytes))
	}
	return parts
}

func indent(depth int) []byte {
	b := make([]byte, depth*2)
	for i := range b {
		b[i] = ' '
	}
	return b
}

// fmtDur renders nanoseconds rounded to the microsecond (exact below
// that), so annotations stay readable without losing nonzero timings.
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	if r := d.Round(time.Microsecond); r != 0 {
		d = r
	}
	return d.String()
}
