package plan_test

import (
	"strings"
	"testing"

	"perm/internal/analyze"
	"perm/internal/catalog"
	"perm/internal/exec"
	"perm/internal/plan"
	"perm/internal/provrewrite"
	"perm/internal/sql"
	"perm/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	create := func(name string, n int, cols ...catalog.Column) {
		t.Helper()
		tab, err := cat.CreateTable(name, cols, false)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			row := make(types.Row, len(cols))
			for j := range cols {
				row[j] = types.NewInt(int64(i + j))
			}
			if err := tab.Heap.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	create("big", 1000,
		catalog.Column{Name: "a", Type: types.KindInt},
		catalog.Column{Name: "b", Type: types.KindInt})
	create("small", 10,
		catalog.Column{Name: "a", Type: types.KindInt},
		catalog.Column{Name: "c", Type: types.KindInt})
	create("tiny", 2,
		catalog.Column{Name: "a", Type: types.KindInt})
	return cat
}

func planFor(t *testing.T, cat *catalog.Catalog, src string) exec.Node {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analyze.New(cat).AnalyzeSelect(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	q, err = provrewrite.RewriteTree(q, provrewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.New(cat).Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	return node
}

func TestEquiJoinPlansHashJoin(t *testing.T) {
	cat := testCatalog(t)
	node := planFor(t, cat, "SELECT big.b FROM big, small WHERE big.a = small.a")
	out := plan.Explain(node)
	if !strings.Contains(out, "HashJoin") {
		t.Errorf("equi join should use HashJoin:\n%s", out)
	}
	if strings.Contains(out, "NestedLoopJoin") {
		t.Errorf("no nested loop expected:\n%s", out)
	}
}

func TestNonEquiJoinFallsBackToNestedLoop(t *testing.T) {
	cat := testCatalog(t)
	node := planFor(t, cat, "SELECT big.b FROM big, tiny WHERE big.a < tiny.a")
	out := plan.Explain(node)
	if !strings.Contains(out, "NestedLoopJoin") {
		t.Errorf("non-equi join should use NestedLoopJoin:\n%s", out)
	}
}

func TestRewrittenAggregationUsesHashJoin(t *testing.T) {
	cat := testCatalog(t)
	// The provenance join-back for aggregation uses IS NOT DISTINCT FROM;
	// the planner must still recognize it as a hash-joinable key.
	node := planFor(t, cat, "SELECT PROVENANCE a, count(*) FROM small GROUP BY a")
	out := plan.Explain(node)
	if !strings.Contains(out, "HashJoin") {
		t.Errorf("null-safe join-back should be a HashJoin:\n%s", out)
	}
}

func TestFilterPushdown(t *testing.T) {
	cat := testCatalog(t)
	// The single-table predicate must be applied below the join (the
	// Filter appears beneath the HashJoin in the explain tree).
	node := planFor(t, cat,
		"SELECT big.b FROM big, small WHERE big.a = small.a AND small.c < 5")
	out := plan.Explain(node)
	joinIdx := strings.Index(out, "HashJoin")
	filterIdx := strings.Index(out, "Filter")
	if joinIdx < 0 || filterIdx < 0 {
		t.Fatalf("missing nodes:\n%s", out)
	}
	if filterIdx < joinIdx {
		t.Errorf("filter should be pushed below the join:\n%s", out)
	}
}

func TestGreedyOrderingAvoidsCrossProducts(t *testing.T) {
	cat := testCatalog(t)
	// big ⋈ small ⋈ tiny chained by predicates: no cross product should
	// appear even though the FROM order interleaves them.
	node := planFor(t, cat,
		"SELECT count(*) FROM big, tiny, small WHERE big.a = small.a AND small.a = tiny.a")
	out := plan.Explain(node)
	if strings.Count(out, "HashJoin") != 2 {
		t.Errorf("want two hash joins:\n%s", out)
	}
	rows, err := exec.Collect(node)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].I != 2 {
		t.Errorf("result = %v, want count 2", rows)
	}
}

func TestSubLinkPlanCaching(t *testing.T) {
	cat := testCatalog(t)
	// The uncorrelated sublink is evaluated once, not per row: with a
	// 1000-row outer table this finishes instantly only when cached.
	node := planFor(t, cat,
		"SELECT a FROM big WHERE a > (SELECT max(a) FROM small) AND a IN (SELECT a FROM small)")
	rows, err := exec.Collect(node)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows = %d (a > max(small.a) AND a IN small is unsatisfiable)", len(rows))
	}
}

func TestPlanExecutesRepeatedly(t *testing.T) {
	cat := testCatalog(t)
	node := planFor(t, cat, "SELECT a FROM tiny ORDER BY a")
	for i := 0; i < 3; i++ {
		rows, err := exec.Collect(node)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("pass %d: %d rows", i, len(rows))
		}
	}
}

func TestValuesRTE(t *testing.T) {
	// Direct check of the FROM-less constant query path.
	cat := catalog.New()
	node := planFor(t, cat, "SELECT 1 + 1")
	rows, err := exec.Collect(node)
	if err != nil || len(rows) != 1 || rows[0][0].I != 2 {
		t.Fatalf("constant query = %v, %v", rows, err)
	}
}

func TestOrConjunctHoisting(t *testing.T) {
	cat := testCatalog(t)
	// The equi-join predicate appears in every OR branch (the TPC-H Q19
	// shape); the planner must hoist it and use a hash join.
	node := planFor(t, cat, `
		SELECT count(*) FROM big, small
		WHERE (big.a = small.a AND small.c < 3)
		   OR (big.a = small.a AND small.c > 8)`)
	out := plan.Explain(node)
	if !strings.Contains(out, "HashJoin") {
		t.Errorf("common OR conjunct not hoisted:\n%s", out)
	}
	rows, err := exec.Collect(node)
	if err != nil {
		t.Fatal(err)
	}
	// small rows: a=i, c=i+1 for i in 0..9; c<3 → i∈{0,1}; c>8 → i∈{8,9};
	// all four join big.
	if rows[0][0].I != 4 {
		t.Errorf("count = %s, want 4", rows[0][0])
	}
}

func TestOrHoistingPreservesSemantics(t *testing.T) {
	cat := testCatalog(t)
	// A branch that is exactly the common conjunct collapses the residual
	// OR to true: (A) OR (A AND x) ≡ A.
	node := planFor(t, cat, `
		SELECT count(*) FROM big, small
		WHERE (big.a = small.a) OR (big.a = small.a AND small.c < 3)`)
	rows, err := exec.Collect(node)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].I != 10 {
		t.Errorf("count = %s, want 10", rows[0][0])
	}
}

// TestJoinTreeConjunctRouting: WHERE conjuncts and inner ON conjuncts
// must sink through explicit join trees down to the scans (the shapes the
// logical optimizer emits put base relations under explicit joins).
func TestJoinTreeConjunctRouting(t *testing.T) {
	cat := testCatalog(t)
	node := planFor(t, cat,
		"SELECT big.b FROM (big JOIN small ON big.a = small.a) WHERE small.c < 5 AND big.b > 1")
	out := plan.Explain(node)
	if !strings.Contains(out, "HashJoin") {
		t.Fatalf("inner ON equality should hash-join:\n%s", out)
	}
	// Both single-table predicates must appear below the join
	// ("Filter\n" matches the filter nodes but not RuntimeFilter labels).
	joinIdx := strings.Index(out, "HashJoin")
	if strings.Count(out[joinIdx:], "Filter\n") != 2 {
		t.Errorf("want both filters pushed below the join:\n%s", out)
	}
}

// TestOuterJoinNullableSideFilter: an ON conjunct referencing only the
// nullable side filters that input before the join; a conjunct on the
// preserved side alone must stay in the join condition (filtering the
// preserved input would change which rows are null-extended).
func TestOuterJoinNullableSideFilter(t *testing.T) {
	cat := testCatalog(t)
	node := planFor(t, cat,
		"SELECT big.b FROM big LEFT JOIN small ON big.a = small.a AND small.c < 5")
	out := plan.Explain(node)
	if !strings.Contains(out, "HashJoin (left") {
		t.Fatalf("expected left hash join:\n%s", out)
	}
	joinIdx := strings.Index(out, "HashJoin")
	if strings.Index(out[joinIdx:], "Filter") < 0 {
		t.Errorf("nullable-side ON conjunct should filter the scan:\n%s", out)
	}
	rows, err := exec.Collect(node)
	if err != nil {
		t.Fatal(err)
	}
	// All 1000 big rows survive the left join regardless of the filter.
	if len(rows) != 1000 {
		t.Errorf("left join lost preserved rows: %d", len(rows))
	}

	// Preserved-side-only conjunct: stays in the condition, so unmatched
	// preserved rows are still emitted (null-extended), not filtered.
	node = planFor(t, cat,
		"SELECT big.b, small.c FROM big LEFT JOIN small ON big.a = small.a AND big.a < 3")
	rows, err = exec.Collect(node)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1000 {
		t.Errorf("preserved-side ON conjunct must not filter input rows: %d", len(rows))
	}
	matched := 0
	for _, r := range rows {
		if !r[1].Null {
			matched++
		}
	}
	if matched != 3 {
		t.Errorf("matched rows = %d, want 3 (a in 0..2)", matched)
	}
}

// TestConstantInnerJoinCondUnderFullJoin: a variable-free ON condition of
// an inner join nested under a FULL JOIN must not be dropped (regression:
// conjunct-pool leftovers under FULL JOIN's isolated pools were
// discarded, turning `JOIN ... ON 1=0` into a cross join).
func TestConstantInnerJoinCondUnderFullJoin(t *testing.T) {
	cat := testCatalog(t)
	node := planFor(t, cat,
		"SELECT tiny.a, small.a, big.a FROM tiny FULL JOIN (small JOIN big ON 1 = 0) ON tiny.a = small.a")
	rows, err := exec.Collect(node)
	if err != nil {
		t.Fatal(err)
	}
	// The inner join is empty, so every tiny row null-extends and nothing
	// comes from the right side.
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 null-extended tiny rows", len(rows))
	}
	for _, r := range rows {
		if !r[1].Null || !r[2].Null {
			t.Errorf("right side must be null-extended: %v", r)
		}
	}
}
