// Morsel-driven parallelization of vectorized plans. After a query is
// planned serially, the planner looks for one parallel site — the lowest
// subtree whose probe spine bottoms out in a columnar scan big enough to
// morsel — and replaces it with a parallel operator over N independently
// planned replicas of the same subtree (compiled batch expressions carry
// per-instance scratch state, so workers can never share one tree):
//
//   - a mergeable hash aggregate becomes a ParallelAgg (partial
//     aggregation per worker, partition-wise merge),
//   - a sort becomes a ParallelSort (worker runs + ordered fan-in),
//   - any other spine top gets an Exchange, which replays the serial
//     output stream from sequence-tagged worker batches. Aggregates the
//     merge cannot reproduce bit-exactly (float SUM/AVG, where partial
//     reassociation would change the formatted output) keep serial
//     accumulation and get the Exchange below them instead.
//
// Replication is validated, not assumed: every replica must render to
// the same plan shape and its driver scan must see the same columnar
// snapshot (pointer-identical vectors — SnapshotColumns caches per heap
// version); any mismatch falls back to the serial plan. Each replica is
// planned with its own spill reservations, so worker memory draws
// against the session budget exactly like serial operators and spilling
// composes with parallelism instead of escaping the governor.
package plan

import (
	"perm/internal/algebra"
	"perm/internal/obs"
	"perm/internal/types"
	"perm/internal/vexec"
)

// SetParallelism sets the worker count for intra-query parallelism
// (values below 2 plan serially).
func (p *Planner) SetParallelism(n int) *Planner {
	p.parallelism = n
	return p
}

// siteKind classifies what the parallel operator at a site will be.
type siteKind int

const (
	siteNone     siteKind = iota
	siteExchange          // replicate the subtree, merge its output stream
	siteAgg               // partial aggregation per worker, merged
	siteSort              // sorted runs per worker, merged
)

// parallelize rewrites the plan's vectorized tree around one parallel
// site, replanning the query once per extra worker. Any irregularity —
// replica shape drift, a snapshot change between replans, an ineligible
// spine — leaves the serial plan untouched.
func (p *Planner) parallelize(q *algebra.Query, pl *planned) {
	site, kind, depth := findSite(pl.vnode, 0)
	if kind == siteNone {
		return
	}
	driver0 := spineDriver(siteSpine(site, kind))
	shape := vnodeShape(pl.vnode)
	sites := []vexec.Node{site}
	drivers := []*vexec.ColScan{driver0}
	for i := 1; i < p.parallelism; i++ {
		rpl, err := p.planQuery(q)
		if err != nil || rpl.vnode == nil || vnodeShape(rpl.vnode) != shape {
			obs.SerialFallbacks.Inc()
			return
		}
		rsite := nthWrapperChild(rpl.vnode, depth)
		if rsite == nil {
			obs.SerialFallbacks.Inc()
			return
		}
		rdriver := spineDriver(siteSpine(rsite, kind))
		if rdriver == nil || !sameSnapshot(driver0, rdriver) {
			obs.SerialFallbacks.Inc()
			return
		}
		sites = append(sites, rsite)
		drivers = append(drivers, rdriver)
	}
	obs.ParallelPlans.Inc()
	obs.ParallelWorkers.Add(int64(len(sites)))
	disp := vexec.NewMorsels(driver0.NumRows)
	if p.activity != nil {
		disp.AQ = p.activity
		p.activity.SetMorselTotal(disp.Total())
	}
	var pn vexec.Node
	switch kind {
	case siteExchange:
		srcs := make([]vexec.TagSource, len(sites))
		for i, s := range sites {
			srcs[i] = wireSpineTags(s)
		}
		pn = vexec.NewExchange(sites, drivers, srcs, disp)
	case siteAgg:
		aggs := make([]*vexec.HashAgg, len(sites))
		srcs := make([]vexec.TagSource, len(sites))
		for i, s := range sites {
			aggs[i] = s.(*vexec.HashAgg)
			srcs[i] = wireSpineTags(aggs[i].Input)
		}
		pn = vexec.NewParallelAgg(aggs, drivers, srcs, disp)
	case siteSort:
		sorts := make([]*vexec.VecSort, len(sites))
		srcs := make([]vexec.TagSource, len(sites))
		for i, s := range sites {
			sorts[i] = s.(*vexec.VecSort)
			srcs[i] = wireSpineTags(sorts[i].Input)
		}
		pn = vexec.NewParallelSort(sorts, drivers, srcs, disp)
	}
	// The parallel operator emits exactly what the serial site it
	// replaces would have: carry the site's cardinality estimate over.
	if c, ok := site.(interface{ EstimatedRows() float64 }); ok {
		setEstNode(pn, c.EstimatedRows())
	}
	if depth == 0 {
		p.setVNode(pl, pn)
		if c, ok := pn.(interface{ EstimatedRows() float64 }); ok {
			setEstNode(pl.node, c.EstimatedRows())
		}
		return
	}
	setWrapperChild(nthWrapperChild(pl.vnode, depth-1), pn)
}

// findSite walks down through order-restoring wrappers to the highest
// parallelizable operator. depth counts wrapper hops so the same
// position can be replayed in a replica plan.
func findSite(n vexec.Node, depth int) (vexec.Node, siteKind, int) {
	switch x := n.(type) {
	case *vexec.ColScan:
		if eligibleSpine(n) {
			return n, siteExchange, depth
		}
		return nil, siteNone, 0
	case *vexec.Filter:
		if eligibleSpine(n) {
			return n, siteExchange, depth
		}
		return findSite(x.Input, depth+1)
	case *vexec.Project:
		if eligibleSpine(n) {
			return n, siteExchange, depth
		}
		return findSite(x.Input, depth+1)
	case *vexec.HashJoin:
		if eligibleSpine(n) {
			return n, siteExchange, depth
		}
		return findSite(x.Left, depth+1)
	case *vexec.NLJoin:
		if eligibleSpine(n) {
			return n, siteExchange, depth
		}
		return findSite(x.Left, depth+1)
	case *vexec.HashAgg:
		if aggsMergeExact(x.Aggs) && eligibleSpine(x.Input) {
			return n, siteAgg, depth
		}
		return findSite(x.Input, depth+1)
	case *vexec.VecSort:
		if eligibleSpine(x.Input) {
			return n, siteSort, depth
		}
		return findSite(x.Input, depth+1)
	case *vexec.VecTopN:
		return findSite(x.Input, depth+1)
	case *vexec.VecLimit:
		return findSite(x.Input, depth+1)
	case *vexec.VecDistinct:
		return findSite(x.Input, depth+1)
	case *vexec.VecSetOp:
		return findSite(x.Left, depth+1)
	}
	return nil, siteNone, 0
}

// siteSpine returns the probe spine a site's morsels flow through: the
// site itself for an exchange, the operator's input for agg and sort.
func siteSpine(site vexec.Node, kind siteKind) vexec.Node {
	switch kind {
	case siteAgg:
		if a, ok := site.(*vexec.HashAgg); ok {
			return a.Input
		}
		return nil
	case siteSort:
		if s, ok := site.(*vexec.VecSort); ok {
			return s.Input
		}
		return nil
	}
	return site
}

// eligibleSpine reports whether a subtree's probe spine reaches a
// columnar scan with enough rows to be worth morseling.
func eligibleSpine(n vexec.Node) bool {
	d := spineDriver(n)
	return d != nil && d.NumRows >= vexec.ParallelMinRows
}

// spineDriver descends the streaming probe spine — filter and projection
// inputs, the probe (left) side of joins — to the driver columnar scan.
// Anything else breaks the spine (nil).
func spineDriver(n vexec.Node) *vexec.ColScan {
	switch x := n.(type) {
	case *vexec.ColScan:
		return x
	case *vexec.Filter:
		return spineDriver(x.Input)
	case *vexec.Project:
		return spineDriver(x.Input)
	case *vexec.HashJoin:
		return spineDriver(x.Left)
	case *vexec.NLJoin:
		return spineDriver(x.Left)
	case *vexec.MorselTap:
		// Wired worker pipelines (ParallelAgg/ParallelSort inputs) carry a
		// tap above the spine; EXPLAIN ANALYZE walks through it to reach
		// the driver scan for per-worker morsel counts.
		return spineDriver(x.Input)
	}
	return nil
}

// wireSpineTags threads the morsel tag chain through a worker spine:
// each spine hash join learns the nearest tag source below its probe
// side (so Grace mode can keep globally ordered sequence tags), and the
// topmost source is what the worker's tap reads.
func wireSpineTags(n vexec.Node) vexec.TagSource {
	switch x := n.(type) {
	case *vexec.ColScan:
		return x
	case *vexec.Filter:
		return wireSpineTags(x.Input)
	case *vexec.Project:
		return wireSpineTags(x.Input)
	case *vexec.HashJoin:
		x.TagSrc = wireSpineTags(x.Left)
		return x
	case *vexec.NLJoin:
		return wireSpineTags(x.Left)
	}
	return nil
}

// aggsMergeExact reports whether partial aggregation merges to exactly
// the serial result. COUNT, MIN and MAX always do; SUM and AVG only over
// non-float arguments — float addition is not associative, and since
// results are formatted with strconv's shortest representation, even a
// 1-ulp reassociation difference would be visible. Float SUM/AVG keeps
// serial accumulation (the planner puts the exchange below the agg).
func aggsMergeExact(aggs []vexec.AggSpec) bool {
	for i := range aggs {
		switch aggs[i].Fn {
		case algebra.AggSum, algebra.AggAvg:
			if aggs[i].Arg == nil || aggs[i].Arg.Kind() == types.KindFloat {
				return false
			}
		}
	}
	return true
}

// nthWrapperChild replays a findSite descent on another tree: starting
// at root, take the wrapper child depth times. Shape equality between
// the trees guarantees the same node types appear at every hop.
func nthWrapperChild(n vexec.Node, depth int) vexec.Node {
	for ; depth > 0 && n != nil; depth-- {
		n = wrapperChild(n)
	}
	return n
}

func wrapperChild(n vexec.Node) vexec.Node {
	switch x := n.(type) {
	case *vexec.VecTopN:
		return x.Input
	case *vexec.VecLimit:
		return x.Input
	case *vexec.VecDistinct:
		return x.Input
	case *vexec.VecSetOp:
		return x.Left
	case *vexec.HashAgg:
		return x.Input
	case *vexec.VecSort:
		return x.Input
	case *vexec.Filter:
		return x.Input
	case *vexec.Project:
		return x.Input
	case *vexec.HashJoin:
		return x.Left
	case *vexec.NLJoin:
		return x.Left
	}
	return nil
}

func setWrapperChild(n, child vexec.Node) {
	switch x := n.(type) {
	case *vexec.VecTopN:
		x.Input = child
	case *vexec.VecLimit:
		x.Input = child
	case *vexec.VecDistinct:
		x.Input = child
	case *vexec.VecSetOp:
		x.Left = child
	case *vexec.HashAgg:
		x.Input = child
	case *vexec.VecSort:
		x.Input = child
	case *vexec.Filter:
		x.Input = child
	case *vexec.Project:
		x.Input = child
	case *vexec.HashJoin:
		x.Left = child
	case *vexec.NLJoin:
		x.Left = child
	}
}

// vnodeShape renders a vectorized tree to its EXPLAIN string, the
// structural fingerprint replicas are validated against.
func vnodeShape(n vexec.Node) string {
	var sb []byte
	explainVNode(n, 0, &sb)
	return string(sb)
}

// sameSnapshot reports whether two scans read the identical columnar
// snapshot. SnapshotColumns caches pointer-stable vectors per heap
// version, so pointer equality is exact: any DML between replans yields
// fresh vectors and fails the check.
func sameSnapshot(a, b *vexec.ColScan) bool {
	if a.NumRows != b.NumRows || len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	return true
}
